//! Millions-of-flows scenario: streaming scans through a bounded flow
//! table.
//!
//! An edge deployment does not see whole payloads; it sees a firehose of
//! interleaved packets, each belonging to some flow, with patterns
//! routinely straddling packet boundaries. This example builds the full
//! flow pipeline:
//!
//! 1. a large ruleset, sharded into cache-sized automata
//!    ([`ShardedMatcher`]);
//! 2. generated flows chopped at **adversarial** boundaries (every
//!    injected occurrence cut mid-pattern) and interleaved into one
//!    packet arrival order ([`ChopProfile::MidPattern`]);
//! 3. a bounded [`FlowTable`] carrying each flow's resumable
//!    [`ShardedScanState`] between packets, scanning every packet as it
//!    arrives.
//!
//! Every injected occurrence is found at its exact stream offset even
//! though every one of them straddles a packet boundary — the point of
//! the resumable scan core. The batch entry points
//! ([`ShardedMatcher::scan_stream_into`] / `scan_flows_with`) are shown
//! for contrast.
//!
//! Run with: `cargo run --release --example flow_scan`
//!
//! [`ShardedMatcher`]: dpi_accel::core::ShardedMatcher
//! [`ShardedMatcher::scan_stream_into`]: dpi_accel::core::ShardedMatcher::scan_stream_into
//! [`FlowTable`]: dpi_accel::core::FlowTable
//! [`ShardedScanState`]: dpi_accel::core::ShardedScanState
//! [`ChopProfile::MidPattern`]: dpi_accel::rulesets::ChopProfile

use dpi_accel::core::FlowTable;
use dpi_accel::prelude::*;
use dpi_accel::rulesets::{
    chop, extract_preserving, master_ruleset, ChopProfile, HttpMalformation, Segment,
    SegmentProfile,
};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 1,500-rule slice of the master ruleset: big enough that the
    // monolithic automaton outgrows a per-core cache.
    let set = extract_preserving(&master_ruleset(), 1500, 0xF10);
    let sharded = ShardedMatcher::build(&set, &ShardedConfig::default())?;
    println!(
        "ruleset: {} strings; sharded into {} automata ({} split) of {} KiB total, {} cores",
        set.len(),
        sharded.shard_count(),
        sharded.strategy(),
        sharded.memory_bytes() / 1024,
        sharded.cores()
    );

    // 512 flows; every fourth one carries an injected occurrence. Each
    // flow is chopped with a boundary *inside* every injected pattern —
    // the case a payload-at-once scanner cannot see.
    let mut gen = TrafficGenerator::new(0xF7F);
    let mut flows: Vec<dpi_accel::rulesets::Packet> = Vec::new();
    let mut ground_truth: Vec<(usize, PatternId, usize)> = Vec::new();
    for i in 0..512 {
        let len = [480usize, 1400, 2900, 240][i % 4];
        let p = if i % 4 == 0 {
            let p = gen.infected_packet(len, &set, 2);
            for &(id, end) in &p.injected {
                ground_truth.push((i, id, end));
            }
            p
        } else {
            gen.clean_packet(len)
        };
        flows.push(p);
    }
    let segments: Vec<Vec<&[u8]>> = flows
        .iter()
        .map(|p| {
            let cuts = gen.chop_points(p, &set, ChopProfile::MidPattern { mtu: 536 });
            chop(&p.payload, &cuts)
        })
        .collect();
    let total_bytes: usize = flows.iter().map(|p| p.payload.len()).sum();
    let total_packets: usize = segments.iter().map(Vec::len).sum();
    let schedule =
        gen.interleave_schedule(&segments.iter().map(Vec::len).collect::<Vec<_>>());

    // The flow pipeline: bounded table of resumable per-flow states; one
    // scratch + one state template, allocation-free once warm. The table
    // is set-associative, so raw capacity does not guarantee residency —
    // a set can overflow while the table is half empty. The exact-offset
    // ground-truth assertion below needs every flow resident for its
    // whole life, so the table is sized with headroom and the
    // no-eviction condition is asserted explicitly (if a future change
    // overflows a set, fail loudly here, not with a confusing miss).
    let mut table = FlowTable::new(8192, sharded.flow_state());
    let mut scratch = sharded.scratch();
    let mut cursors = vec![0usize; segments.len()];
    let mut alerts: Vec<(usize, Match)> = Vec::new();
    let start = Instant::now();
    let mut chunk_matches = Vec::new();
    for &flow in &schedule {
        let segment = segments[flow][cursors[flow]];
        cursors[flow] += 1;
        let (state, _) = table.touch(FlowKey(flow as u128));
        chunk_matches.clear();
        sharded.scan_chunk_into(state, segment, &mut scratch, &mut chunk_matches);
        alerts.extend(chunk_matches.iter().map(|&m| (flow, m)));
    }
    let elapsed = start.elapsed().as_secs_f64();
    let stats = table.stats();
    println!(
        "\nflow pipeline: {} packets of {} flows ({} bytes) -> {:.0} MB/s",
        total_packets,
        segments.len(),
        total_bytes,
        total_bytes as f64 / elapsed / 1e6
    );
    println!(
        "flow table: {} resident / {} capacity; {} hits, {} misses, {} evictions",
        table.len(),
        table.capacity(),
        stats.hits,
        stats.misses,
        stats.evictions
    );
    assert_eq!(
        stats.evictions, 0,
        "table must hold every flow for the exact-offset check below"
    );
    // Every injected occurrence straddles a packet boundary by
    // construction, yet must be reported at its exact stream offset.
    for &(flow, id, end) in &ground_truth {
        assert!(
            alerts
                .iter()
                .any(|&(f, m)| f == flow && m.pattern == id && m.end == end),
            "pipeline missed pattern {id} in flow {flow} at ..{end}"
        );
    }
    println!(
        "ok: all {} injected occurrences detected across packet boundaries",
        ground_truth.len()
    );

    // Contrast 1: the per-flow batch shape (state carried between
    // batches, flows pinned to cores by index).
    let first_chunks: Vec<&[u8]> = segments.iter().map(|s| s[0]).collect();
    let mut states: Vec<_> = (0..segments.len()).map(|_| sharded.flow_state()).collect();
    let mut stream_scratch = sharded.stream_scratch();
    let mut batch_out = Vec::new();
    sharded.scan_flows_with(&first_chunks, &mut states, &mut stream_scratch, &mut batch_out);
    println!(
        "\nbatch shape: first segment of every flow scanned in one call -> {} matches",
        batch_out.iter().map(Vec::len).sum::<usize>()
    );

    // Contrast 2: whole-payload fan-out on a reassembled stream.
    let stream: Vec<u8> = flows.iter().flat_map(|p| p.payload.clone()).collect();
    let mut out = Vec::new();
    let start = Instant::now();
    sharded.scan_into(&stream, &mut scratch, &mut out);
    let elapsed = start.elapsed().as_secs_f64();
    println!(
        "fan-out scan of the reassembled {} KiB stream -> {:.0} MB/s, {} matches",
        stream.len() / 1024,
        stream.len() as f64 / elapsed / 1e6,
        out.len()
    );
    // Reassembly can only add matches (occurrences straddling flow
    // boundaries), never lose them.
    assert!(out.len() >= alerts.len());

    // Contrast 3: hostile arrival. The same flows now show up as raw TCP
    // segments — reordered, retransmitted, and overlapped with
    // *conflicting* bytes (the classic IDS evasion). Wrapping each
    // flow's scanner state in a budgeted [`StreamFlow`] reassembler
    // restores the in-order byte stream: every injected occurrence is
    // still found at its exact stream offset, and the evasion attempt
    // itself shows up in the counters.
    let profiles = [
        SegmentProfile::Reorder { window: 4 },
        SegmentProfile::OverlapConflicting { extend: 16 },
        SegmentProfile::Retransmit { every: 3 },
    ];
    let schedules: Vec<Vec<Segment>> = flows
        .iter()
        .enumerate()
        .map(|(i, p)| {
            gen.segment_schedule(p, &set, ChopProfile::MidPattern { mtu: 536 }, profiles[i % 3])
        })
        .collect();
    let adv_bytes: usize = schedules
        .iter()
        .flatten()
        .map(|s| s.bytes.len())
        .sum();
    let arrival =
        gen.interleave_schedule(&schedules.iter().map(Vec::len).collect::<Vec<_>>());
    let mut adv_table = FlowTable::new(
        8192,
        StreamFlow::new(ReassemblyConfig::new(8 * 1024), sharded.flow_state()),
    );
    let mut cursors = vec![0usize; schedules.len()];
    let mut adv_alerts: Vec<(usize, Match)> = Vec::new();
    let mut flow_matches = Vec::new();
    let start = Instant::now();
    for &flow in &arrival {
        let seg = &schedules[flow][cursors[flow]];
        cursors[flow] += 1;
        adv_table.ingest_segments(
            [FlowSegment {
                key: FlowKey(flow as u128),
                seq: seg.seq,
                payload: &seg.bytes,
            }],
            |state, chunk, out| sharded.scan_chunk_into(state, chunk, &mut scratch, out),
            &mut flow_matches,
        );
        adv_alerts.extend(flow_matches.iter().map(|a| (a.key.0 as usize, a.matched)));
    }
    adv_table.flush_flows(
        |state, chunk, out| sharded.scan_chunk_into(state, chunk, &mut scratch, out),
        &mut flow_matches,
    );
    adv_alerts.extend(flow_matches.iter().map(|a| (a.key.0 as usize, a.matched)));
    let elapsed = start.elapsed().as_secs_f64();
    let r = adv_table.stats().reassembly;
    println!(
        "\nadversarial arrival: {} segments ({} bytes incl. retransmits) -> {:.0} MB/s",
        arrival.len(),
        adv_bytes,
        adv_bytes as f64 / elapsed / 1e6
    );
    println!(
        "reassembly: {} segments buffered, {} dup bytes clipped, {} overlaps ({} conflicting), held-peak {} B",
        r.segments_buffered, r.dup_bytes, r.overlap_bytes, r.overlap_conflicts, r.bytes_held_peak
    );
    assert!(
        r.overlap_conflicts > 0,
        "the conflicting-overlap schedules must register as evasion attempts"
    );
    assert_eq!(adv_table.buffered_bytes(), 0, "flush must drain every flow");
    for &(flow, id, end) in &ground_truth {
        assert!(
            adv_alerts
                .iter()
                .any(|&(f, m)| f == flow && m.pattern == id && m.end == end),
            "reassembly pipeline missed pattern {id} in flow {flow} at ..{end}"
        );
    }
    println!(
        "ok: all {} injected occurrences detected despite reorder/retransmit/conflicting overlap",
        ground_truth.len()
    );

    // Contrast 4: hostile protocol framing. An attacker hides a
    // signature by splitting it across HTTP chunk bodies — the wire
    // never carries the string contiguously, so even a perfect
    // reassembler + raw scanner misses it. The detect → normalize stage
    // decodes the framing and feeds the scanner the decoded stream;
    // malformed or mimicked traffic fails open to raw scanning with
    // every downgrade counted and no byte unaccounted.
    let sig_set = PatternSet::new(["attack-sig", "evil-payload"])?;
    let rules = ScopedRuleset::build(&sig_set);
    let run_proto = |config: ProtoConfig, wire: &[u8]| -> (Vec<Match>, ProtocolStats) {
        let mut flow = ProtoFlow::new(ScanState::fresh(), config);
        let mut stats = ProtocolStats::default();
        let mut hits = Vec::new();
        for chunk in wire.chunks(536) {
            flow.deliver(
                chunk,
                false,
                &mut stats,
                |lane, scan: &mut ScanState, bytes, out| {
                    rules.lane(lane).scan_chunk_into(scan, bytes, out)
                },
                &mut hits,
            );
        }
        assert_eq!(stats.unaccounted_bytes(), 0, "fail-open ledger must balance");
        (hits, stats)
    };

    let evasion = gen.chunked_evasion_stream(&sig_set, 6);
    let (hits, pstats) = run_proto(ProtoConfig::default(), &evasion.wire);
    let caught = evasion
        .injected
        .iter()
        .filter(|&&(id, end)| hits.iter().any(|m| m.pattern == id && m.end == end))
        .count();
    let raw_only = ProtoConfig { enabled: false, ..ProtoConfig::default() };
    let (raw_hits, _) = run_proto(raw_only, &evasion.wire);
    println!(
        "\nhostile framing: {}/{} chunk-split signatures caught post-normalization \
         (raw scan of the same wire: {}); {} B wire -> {} B decoded",
        caught,
        evasion.injected.len(),
        raw_hits.len(),
        evasion.wire.len(),
        pstats.emitted_bytes + pstats.raw_bytes,
    );
    assert_eq!(caught, evasion.injected.len(), "normalizer must catch every split");
    assert!(raw_hits.is_empty(), "every occurrence is split; raw must miss them all");

    // Mimicry: the port hint promises TLS, the content is HTTP. Trust
    // neither — downgrade to raw scanning and still find the payload.
    let mut mimic = gen.mimicry_stream(256);
    mimic.extend_from_slice(b"..evil-payload..");
    let tls_hint = ProtoConfig { hint: Some(ProtocolId::Tls), ..ProtoConfig::default() };
    let (hits, pstats) = run_proto(tls_hint, &mimic);
    assert_eq!(pstats.mimicry_suspected, 1);
    assert!(
        hits.iter().any(|m| m.pattern.index() == 1),
        "raw fallback must still scan the mimicked flow"
    );
    println!(
        "mimicry: TLS port hint vs HTTP content -> {} downgrade counted, \
         flow scanned raw, signature still found",
        pstats.mimicry_suspected
    );

    // Malformed framing: a hostile chunk-size line kills the parser;
    // the flow fails open and the remainder is scanned raw.
    let mut bad = gen.malformed_http_stream(HttpMalformation::BadChunkSize);
    bad.extend_from_slice(b"....attack-sig....");
    let (hits, pstats) = run_proto(ProtoConfig::default(), &bad);
    assert_eq!(pstats.malformed_downgrades, 1);
    assert!(
        hits.iter().any(|m| m.pattern.index() == 0),
        "signature after the malformation must be caught by the raw fallback"
    );
    println!(
        "malformed chunk size: 1 fail-open downgrade, remainder raw-scanned, \
         signature still found ({} raw bytes)",
        pstats.raw_bytes
    );
    Ok(())
}
