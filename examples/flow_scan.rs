//! Millions-of-flows scenario: sharded scanning of many small payloads.
//!
//! An edge deployment does not see one giant payload; it sees a firehose
//! of flows, most of them small. This example builds a large ruleset,
//! generates a batch of mixed clean/infected flows, and drives the two
//! sharded entry points:
//!
//! - [`ShardedMatcher::scan_stream_into`] — flows partitioned across
//!   cores, each core running every (cache-resident) shard over its own
//!   flows: per-flow results never cross threads;
//! - [`ShardedMatcher::scan_into`] — the single-payload fan-out shape,
//!   shown on a reassembled stream for contrast.
//!
//! Run with: `cargo run --release --example flow_scan`
//!
//! [`ShardedMatcher::scan_stream_into`]: dpi_accel::core::ShardedMatcher::scan_stream_into
//! [`ShardedMatcher::scan_into`]: dpi_accel::core::ShardedMatcher::scan_into

use dpi_accel::prelude::*;
use dpi_accel::rulesets::extract_preserving;
use dpi_accel::rulesets::master_ruleset;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 1,500-rule slice of the master ruleset: big enough that the
    // monolithic automaton outgrows a per-core cache.
    let set = extract_preserving(&master_ruleset(), 1500, 0xF10);
    let sharded = ShardedMatcher::build(&set, &ShardedConfig::default());
    println!(
        "ruleset: {} strings; sharded into {} automata ({} split) of {} KiB total, {} cores",
        set.len(),
        sharded.shard_count(),
        sharded.strategy(),
        sharded.memory_bytes() / 1024,
        sharded.cores()
    );
    for s in 0..sharded.shard_count() {
        println!(
            "  shard {s}: {} patterns, {} KiB arena",
            sharded.shard_len(s),
            sharded.shard_memory_bytes(s) / 1024
        );
    }

    // 2,000 flows, mostly small, every eighth one infected.
    let mut gen = TrafficGenerator::new(0xF7F);
    let mut flows: Vec<Vec<u8>> = Vec::new();
    let mut ground_truth: Vec<(usize, PatternId, usize)> = Vec::new();
    for i in 0..2000 {
        let len = [220usize, 640, 1500, 64][i % 4];
        let p = if i % 8 == 0 {
            let p = gen.infected_packet(len, &set, 1);
            for &(id, end) in &p.injected {
                ground_truth.push((i, id, end));
            }
            p
        } else {
            gen.clean_packet(len)
        };
        flows.push(p.payload);
    }
    let total_bytes: usize = flows.iter().map(Vec::len).sum();

    // Stream shape: flows across cores, shards within a core.
    let mut per_flow = Vec::new();
    let start = Instant::now();
    sharded.scan_stream_into(&flows, &mut per_flow);
    let elapsed = start.elapsed().as_secs_f64();
    let alerts: usize = per_flow.iter().map(Vec::len).sum();
    println!(
        "\nstream scan: {} flows, {} bytes -> {:.0} MB/s, {} alerts ({} injected)",
        flows.len(),
        total_bytes,
        total_bytes as f64 / elapsed / 1e6,
        alerts,
        ground_truth.len()
    );
    // Per-occurrence detection check: every injected (flow, pattern, end)
    // must be among that flow's matches — a count comparison could mask a
    // missed injection behind incidental matches elsewhere.
    for &(flow, id, end) in &ground_truth {
        assert!(
            per_flow[flow].iter().any(|m| m.pattern == id && m.end == end),
            "stream scan missed pattern {id} in flow {flow} at ..{end}"
        );
    }

    // Fan-out shape on a reassembled stream, with reused scratch.
    let stream: Vec<u8> = flows.concat();
    let mut scratch = sharded.scratch();
    let mut out = Vec::new();
    let start = Instant::now();
    sharded.scan_into(&stream, &mut scratch, &mut out);
    let elapsed = start.elapsed().as_secs_f64();
    println!(
        "fan-out scan of the reassembled {} KiB stream -> {:.0} MB/s, {} matches",
        stream.len() / 1024,
        stream.len() as f64 / elapsed / 1e6,
        out.len()
    );
    // Reassembly can only add matches (occurrences straddling flow
    // boundaries), never lose them.
    assert!(out.len() >= alerts);
    println!(
        "ok: all {} injected occurrences detected in their flows",
        ground_truth.len()
    );
    Ok(())
}
