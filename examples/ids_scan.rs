//! Intrusion-detection scenario: a Snort-like ruleset deployed on the
//! simulated Cyclone 3 accelerator, scanning traffic with injected
//! attacks.
//!
//! Demonstrates the paper's motivating use case (§I): moving DPI string
//! matching from end hosts to an edge router's line card. Every injected
//! occurrence must be detected, whatever packet it lands in and wherever
//! the accelerator's engines are in their schedules.
//!
//! The second half shows the intended *software* deployment pattern for
//! hosts without an accelerator: compile the reduced automaton once, keep
//! one match buffer per worker, and scan with the allocation-free
//! [`CompiledMatcher::scan_into`] (plus the round-robin [`BatchScanner`]).
//!
//! Run with: `cargo run --release --example ids_scan`

use dpi_accel::prelude::*;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 500-rule Snort-like ruleset (Figure 6 distribution).
    let set = paper_ruleset(PaperRuleset::S500);
    println!(
        "ruleset: {} strings, {} characters",
        set.len(),
        set.total_bytes()
    );

    // Deploy on the paper's low-power device.
    let acc = Accelerator::build(&set, AcceleratorConfig::CYCLONE3)?;
    println!(
        "deployed on Cyclone 3: {} blocks in {} group(s) of {}, peak {:.1} Gbps",
        acc.config().blocks,
        acc.group_count(),
        acc.group_size(),
        acc.peak_throughput_bps() / 1e9
    );

    // 48 packets of 1,500 bytes; half carry two injected attack strings.
    let mut traffic = TrafficGenerator::new(2010);
    let mut packets = Vec::new();
    let mut ground_truth = Vec::new();
    for i in 0..48 {
        let p = if i % 2 == 0 {
            traffic.infected_packet(1500, &set, 2)
        } else {
            traffic.clean_packet(1500)
        };
        for &(id, end) in &p.injected {
            ground_truth.push((i, id, end));
        }
        packets.push(p.payload);
    }

    let report = acc.scan(&packets);
    println!(
        "scanned {} bytes in {} memory cycles -> {:.2} Gbps at f_max",
        report.bytes_scanned,
        report.mem_cycles,
        report.throughput_bps(acc.config().fmax_hz) / 1e9
    );
    println!("alerts raised: {}", report.matches.len());

    // Every injected occurrence must be among the alerts.
    let mut missed = 0;
    for &(packet, id, end) in &ground_truth {
        let hit = report
            .matches
            .iter()
            .any(|m| m.packet == packet && m.pattern == id && m.end == end);
        if !hit {
            missed += 1;
            eprintln!("MISSED: pattern {id} in packet {packet} at ..{end}");
        }
    }
    println!(
        "detection: {}/{} injected occurrences found",
        ground_truth.len() - missed,
        ground_truth.len()
    );
    assert_eq!(missed, 0, "the accelerator must never miss");

    // ---- software fast path: the same ruleset without an accelerator ----
    //
    // Production shape: compile once — with the anchor-byte prefilter,
    // the clean-traffic fast lane that is on by default — and reuse one
    // match buffer per worker.
    let dfa = Dfa::build(&set);
    let reduced = ReducedAutomaton::reduce(&dfa, DtpConfig::PAPER);
    let anchors = AnchorSet::build(&dfa, &set, AnchorSet::DEFAULT_HORIZON);
    println!(
        "\nanchor analysis: {} skippable byte values, {} exit pairs",
        anchors.skippable_bytes(),
        anchors.pair_count()
    );
    let compiled = CompiledAutomaton::compile_with_prefilter(&reduced, anchors);
    let matcher = CompiledMatcher::new(&compiled, &set);
    println!(
        "software fast path: compiled engine, {} states, {} KiB flat memory, prefilter {}",
        compiled.len(),
        compiled.memory_bytes() / 1024,
        if matcher.prefilter() { "on" } else { "off" }
    );

    let total_bytes: usize = packets.iter().map(Vec::len).sum();
    let mut alerts = 0usize;
    let mut matches = Vec::new(); // reused across every packet — no per-scan allocation
    let start = Instant::now();
    for payload in &packets {
        matcher.scan_into(payload, &mut matches);
        alerts += matches.len();
    }
    let elapsed = start.elapsed().as_secs_f64();
    println!(
        "sequential scan_into: {} alerts over {} bytes -> {:.0} MB/s",
        alerts,
        total_bytes,
        total_bytes as f64 / elapsed / 1e6
    );

    // Batch mode: interleave 8 packets round-robin through independent
    // state registers (the software analogue of the parallel engines).
    let scanner = BatchScanner::new(&compiled, &set, 8);
    let mut per_packet = Vec::new();
    let start = Instant::now();
    scanner.scan_batch_into(&packets, &mut per_packet);
    let elapsed = start.elapsed().as_secs_f64();
    let batch_alerts: usize = per_packet.iter().map(Vec::len).sum();
    println!(
        "batch(8) scan:        {} alerts over {} bytes -> {:.0} MB/s",
        batch_alerts,
        total_bytes,
        total_bytes as f64 / elapsed / 1e6
    );
    assert_eq!(batch_alerts, alerts, "batch and sequential scans must agree");

    // The software path must detect every injected occurrence too.
    for &(packet, id, end) in &ground_truth {
        assert!(
            per_packet[packet].iter().any(|m| m.pattern == id && m.end == end),
            "software path missed pattern {id} in packet {packet}"
        );
    }
    println!("software detection: {}/{} injected occurrences found", ground_truth.len(), ground_truth.len());

    // Shard-per-core mode: the multi-core deployment shape. The ruleset
    // is split into cache-sized automata (the software analogue of the
    // paper's per-block memories) and each packet batch streams across
    // every core's shards; matches come back with global pattern ids.
    let sharded = ShardedMatcher::build(&set, &ShardedConfig::with_cores(4))?;
    println!(
        "\nsharded fast path: {} shards ({} split), {} KiB total flat memory, {} cores",
        sharded.shard_count(),
        sharded.strategy(),
        sharded.memory_bytes() / 1024,
        sharded.cores()
    );
    let mut stream_out = Vec::new();
    let start = Instant::now();
    sharded.scan_stream_into(&packets, &mut stream_out);
    let elapsed = start.elapsed().as_secs_f64();
    let sharded_alerts: usize = stream_out.iter().map(Vec::len).sum();
    println!(
        "sharded stream scan:  {} alerts over {} bytes -> {:.0} MB/s",
        sharded_alerts,
        total_bytes,
        total_bytes as f64 / elapsed / 1e6
    );
    assert_eq!(
        sharded_alerts, alerts,
        "sharded and sequential scans must agree"
    );
    for &(packet, id, end) in &ground_truth {
        assert!(
            stream_out[packet].iter().any(|m| m.pattern == id && m.end == end),
            "sharded path missed pattern {id} in packet {packet}"
        );
    }
    println!(
        "sharded detection: {}/{} injected occurrences found",
        ground_truth.len(),
        ground_truth.len()
    );
    Ok(())
}
