//! Intrusion-detection scenario: a Snort-like ruleset deployed on the
//! simulated Cyclone 3 accelerator, scanning traffic with injected
//! attacks.
//!
//! Demonstrates the paper's motivating use case (§I): moving DPI string
//! matching from end hosts to an edge router's line card. Every injected
//! occurrence must be detected, whatever packet it lands in and wherever
//! the accelerator's engines are in their schedules.
//!
//! Run with: `cargo run --release --example ids_scan`

use dpi_accel::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 500-rule Snort-like ruleset (Figure 6 distribution).
    let set = paper_ruleset(PaperRuleset::S500);
    println!(
        "ruleset: {} strings, {} characters",
        set.len(),
        set.total_bytes()
    );

    // Deploy on the paper's low-power device.
    let acc = Accelerator::build(&set, AcceleratorConfig::CYCLONE3)?;
    println!(
        "deployed on Cyclone 3: {} blocks in {} group(s) of {}, peak {:.1} Gbps",
        acc.config().blocks,
        acc.group_count(),
        acc.group_size(),
        acc.peak_throughput_bps() / 1e9
    );

    // 48 packets of 1,500 bytes; half carry two injected attack strings.
    let mut traffic = TrafficGenerator::new(2010);
    let mut packets = Vec::new();
    let mut ground_truth = Vec::new();
    for i in 0..48 {
        let p = if i % 2 == 0 {
            traffic.infected_packet(1500, &set, 2)
        } else {
            traffic.clean_packet(1500)
        };
        for &(id, end) in &p.injected {
            ground_truth.push((i, id, end));
        }
        packets.push(p.payload);
    }

    let report = acc.scan(&packets);
    println!(
        "scanned {} bytes in {} memory cycles -> {:.2} Gbps at f_max",
        report.bytes_scanned,
        report.mem_cycles,
        report.throughput_bps(acc.config().fmax_hz) / 1e9
    );
    println!("alerts raised: {}", report.matches.len());

    // Every injected occurrence must be among the alerts.
    let mut missed = 0;
    for &(packet, id, end) in &ground_truth {
        let hit = report
            .matches
            .iter()
            .any(|m| m.packet == packet && m.pattern == id && m.end == end);
        if !hit {
            missed += 1;
            eprintln!("MISSED: pattern {id} in packet {packet} at ..{end}");
        }
    }
    println!(
        "detection: {}/{} injected occurrences found",
        ground_truth.len() - missed,
        ground_truth.len()
    );
    assert_eq!(missed, 0, "the accelerator must never miss");
    Ok(())
}
