//! Memory analysis of a ruleset: the paper's Table II/III numbers for a
//! ruleset you choose.
//!
//! Prints the original Aho-Corasick pointer census, the running reduction
//! as depth-1/2/3 defaults are added, the packed hardware image size, and
//! the Tuck et al. baselines' memory for the same strings.
//!
//! Run with: `cargo run --release --example memory_analysis [strings]`
//! (default 634, the paper's single-Stratix-block ruleset).

use dpi_accel::prelude::*;
use dpi_accel::baselines::{BitmapAc, PathAc};
use dpi_accel::fpga::{plan, FpgaDevice};
use dpi_accel::rulesets::{extract_preserving, master_ruleset};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(634);
    let master = master_ruleset();
    let set = if n >= master.len() {
        master
    } else {
        extract_preserving(&master, n, 0xA11A)
    };
    println!(
        "ruleset: {} strings, {} characters\n",
        set.len(),
        set.total_bytes()
    );

    // Reduction statistics (Table II's left column block).
    let report = ReductionReport::compute(&set, DtpConfig::PAPER);
    println!("states:                     {}", report.states);
    println!("original avg pointers:      {:.2}", report.original_avg);
    println!(
        "d1 defaults:                {:>6}   -> avg {:.2}",
        report.d1_entries, report.avg_after_d1
    );
    println!(
        "d1+d2 defaults:             {:>6}   -> avg {:.2}",
        report.d1_d2_entries, report.avg_after_d2
    );
    println!(
        "d1+d2+d3 defaults:          {:>6}   -> avg {:.2}",
        report.d1_d2_d3_entries, report.avg_after_d3
    );
    println!(
        "pointer reduction:          {:.1}%  (max {} pointers in any state)",
        report.reduction_percent(),
        report.max_pointers_after_d3
    );

    // Deployment and memory on both devices.
    let mut ours = None;
    for device in [FpgaDevice::stratix3(), FpgaDevice::cyclone3()] {
        match plan(&set, &device) {
            Ok(p) => {
                println!(
                    "\n{}: {} block(s) per packet, {} bytes total, {:.1} Gbps",
                    device.family,
                    p.group_size,
                    p.memory_bytes,
                    p.throughput_bps / 1e9
                );
                ours.get_or_insert(p.memory_bytes);
            }
            Err(e) => println!("\n{}: does not fit ({e})", device.family),
        }
    }
    let ours = ours.ok_or("ruleset fits neither device")?;

    // Baselines on the same strings (Table III's comparison).
    let bitmap = BitmapAc::build(&set);
    let path = PathAc::build(&set);
    println!("\nmemory comparison (same strings):");
    println!("  our method          {:>10} bytes", ours);
    println!(
        "  bitmap (Tuck)       {:>10} bytes  ({:.1}x ours)",
        bitmap.memory_bytes(),
        bitmap.memory_bytes() as f64 / ours as f64
    );
    println!(
        "  path-comp. (Tuck)   {:>10} bytes  ({:.1}x ours)",
        path.memory_bytes(),
        path.memory_bytes() as f64 / ours as f64
    );
    Ok(())
}
