//! Quickstart: the paper's running example (Figure 1/2) end to end.
//!
//! Builds the four-string ruleset {he, she, his, hers}, shows the
//! default-transition-pointer reduction, packs the hardware memory image
//! and scans a packet on the simulated Stratix 3 accelerator.
//!
//! Run with: `cargo run --example quickstart`

use dpi_accel::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A pattern set (Figure 1 of the paper).
    let set = PatternSet::new(["he", "she", "his", "hers"])?;
    println!("patterns: {:?}", ["he", "she", "his", "hers"]);

    // 2. The full Aho-Corasick move-function DFA: one lookup per byte,
    //    but lots of stored transition pointers.
    let dfa = Dfa::build(&set);
    let original = dpi_accel::automaton::DfaStats::compute(&dfa);
    println!(
        "full DFA: {} states, {} non-start pointers ({:.1} per state)",
        original.states, original.non_start_pointers, original.avg_pointers
    );

    // 3. Default-transition-pointer reduction (the paper's contribution).
    let reduced = ReducedAutomaton::reduce(&dfa, DtpConfig::PAPER);
    let (d1, d2, d3) = reduced.lut().entry_counts();
    println!(
        "after DTP reduction: {} stored pointers ({:.1} per state), lookup table holds {d1}+{d2}+{d3} defaults",
        reduced.stored_pointers(),
        reduced.avg_pointers(),
    );
    assert!(reduced.verify_against(&dfa).is_none(), "exact equivalence");

    // 4. Scan in software.
    let matches = DtpMatcher::new(&reduced, &set).find_all(b"ushers");
    for m in &matches {
        println!(
            "software match: {:?} at {:?}",
            String::from_utf8_lossy(set.pattern(m.pattern)),
            m.range(&set)
        );
    }

    // 5. Pack the hardware image and scan on the simulated accelerator.
    let image = HwImage::build(&reduced)?;
    println!(
        "hardware image: {} words of 324 bits, fill ratio {:.3}, {} bytes total",
        image.words_used(),
        image.layout().fill_ratio(),
        image.stats().total_bytes()
    );
    let acc = Accelerator::build(&set, AcceleratorConfig::STRATIX3)?;
    let report = acc.scan(&[b"ushers".to_vec()]);
    println!(
        "accelerator: {} matches, peak {:.1} Gbps ({} groups x 16 x f_max)",
        report.matches.len(),
        acc.peak_throughput_bps() / 1e9,
        acc.group_count()
    );
    assert_eq!(report.matches.len(), matches.len());
    Ok(())
}
