//! The guaranteed-throughput experiment: why the paper eliminates fail
//! pointers.
//!
//! Fail-pointer designs (classic Aho-Corasick, the Tuck et al. baselines)
//! spend a variable number of state lookups per byte; an attacker can
//! craft traffic that maximizes fail-chain walking and "flood a system
//! with packets it performs poorly on" (§I). The DATE 2010 design performs
//! exactly one lookup per byte regardless of input. This example measures
//! the gap on crafted versus benign traffic.
//!
//! Run with: `cargo run --release --example adversarial_traffic`

use dpi_accel::baselines::{BitmapAc, PathAc};
use dpi_accel::prelude::*;
use dpi_accel::rulesets::{adversarial_payload, extract_preserving, master_ruleset};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A modest ruleset keeps fail chains deep and the demo quick.
    let set = extract_preserving(&master_ruleset(), 300, 0xBAD);
    println!("ruleset: {} strings\n", set.len());

    let nfa = Nfa::build(&set);
    let bitmap = BitmapAc::build(&set);
    let path = PathAc::build(&set);
    let dfa = Dfa::build(&set);
    let reduced = ReducedAutomaton::reduce(&dfa, DtpConfig::PAPER);
    assert!(reduced.verify_against(&dfa).is_none());

    let mut benign = TrafficGenerator::new(7).clean_packet(16_384).payload;
    // Sprinkle some genuine matches into the benign traffic.
    let needle = set.pattern(PatternId(0)).to_vec();
    benign[100..100 + needle.len()].copy_from_slice(&needle);
    let crafted = adversarial_payload(&set, 16_384);

    println!("state lookups per byte (lower is better; 1.0 is the floor):");
    println!("{:<28}{:>10}{:>12}", "matcher", "benign", "adversarial");
    let nm = NfaMatcher::new(&nfa, &set);
    {
        let (name, b, a) = (
            "AC with fail pointers",
            nm.scan_counting(&benign),
            nm.scan_counting(&crafted),
        );
        println!(
            "{:<28}{:>10.3}{:>12.3}   (worst byte: {} lookups)",
            name,
            b.lookups as f64 / benign.len() as f64,
            a.lookups as f64 / crafted.len() as f64,
            a.max_lookups_per_byte
        );
    }
    for (name, b, a) in [
        (
            "bitmap AC (Tuck)",
            bitmap.scan_counting(&set, &benign),
            bitmap.scan_counting(&set, &crafted),
        ),
        (
            "path-compressed AC (Tuck)",
            path.scan_counting(&set, &benign),
            path.scan_counting(&set, &crafted),
        ),
    ] {
        println!(
            "{:<28}{:>10.3}{:>12.3}   (worst byte: {} lookups)",
            name,
            b.lookups as f64 / benign.len() as f64,
            a.lookups as f64 / crafted.len() as f64,
            a.max_lookups_per_byte
        );
    }
    // Ours: the cycle-accurate engine consumes 1 byte per cycle, always.
    let image = HwImage::build(&reduced)?;
    let block = dpi_accel::sim::Block::from_image(image, set.clone());
    let rep_benign = block.run(vec![dpi_accel::sim::SimPacket {
        id: 0,
        bytes: benign.clone(),
    }]);
    let rep_crafted = block.run(vec![dpi_accel::sim::SimPacket {
        id: 0,
        bytes: crafted.clone(),
    }]);
    let per_byte = |r: &dpi_accel::sim::BlockReport| {
        r.port_state_reads.iter().sum::<usize>() as f64 / r.bytes_scanned as f64
    };
    println!(
        "{:<28}{:>10.3}{:>12.3}   (guaranteed by construction)",
        "this paper (DTP, no fail)",
        per_byte(&rep_benign),
        per_byte(&rep_crafted)
    );

    // The punchline: identical match results, guaranteed cycle budget.
    let ours: Vec<(usize, u32)> = rep_crafted
        .matches
        .iter()
        .map(|m| (m.end, m.pattern.0))
        .collect();
    let theirs: Vec<(usize, u32)> = nm
        .find_all(&crafted)
        .into_iter()
        .map(|m| (m.end, m.pattern.0))
        .collect();
    let mut ours_sorted = ours;
    ours_sorted.sort_unstable();
    let mut theirs_sorted = theirs;
    theirs_sorted.sort_unstable();
    assert_eq!(ours_sorted, theirs_sorted, "same detections either way");
    println!("\nall matchers agree on the detections; only the cycle bills differ");

    // On diverse rulesets fail chains are shallow; the gap explodes on
    // self-overlapping rules (shellcode NOP sleds — a staple of real
    // Snort signatures).
    let mut sleds: Vec<Vec<u8>> = (2..=32).map(|k| vec![0x90u8; k]).collect();
    sleds.push(b"/bin/sh".to_vec());
    let sled_set = PatternSet::new(&sleds)?;
    let sled_nfa = Nfa::build(&sled_set);
    let sled_nm = NfaMatcher::new(&sled_nfa, &sled_set);
    let sled_crafted = adversarial_payload(&sled_set, 8192);
    let counted = sled_nm.scan_counting(&sled_crafted);
    println!(
        "\nNOP-sled ruleset, crafted traffic: fail-pointer AC pays up to {} lookups\nfor a single byte; this architecture still pays exactly 1 — that is the\npaper's guaranteed-throughput argument in one number",
        counted.max_lookups_per_byte
    );
    Ok(())
}
