//! # dpi-accel
//!
//! A production-quality Rust reproduction of **"Ultra-High Throughput
//! String Matching for Deep Packet Inspection"** (Alan Kennedy, Xiaojun
//! Wang, Zhen Liu, Bin Liu — DATE 2010): an Aho-Corasick-based fixed-string
//! matching accelerator that guarantees one input character per clock cycle
//! and cuts transition-pointer storage by over 96 % with **default
//! transition pointers**, packaged with a bit-exact hardware memory layout,
//! a cycle-accurate simulator of its FPGA architecture, the Tuck et al.
//! baselines it is compared against, and a benchmark harness regenerating
//! every table and figure of the paper.
//!
//! This crate is a facade re-exporting the workspace's subsystems:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`automaton`] | `dpi-automaton` | patterns, trie, AC NFA/DFA, naive matcher |
//! | [`core`] | `dpi-core` | default-transition-pointer reduction (the paper's contribution) |
//! | [`hw`] | `dpi-hw` | 324-bit words, 15 state types, match & lookup-table memories |
//! | [`sim`] | `dpi-sim` | cycle-accurate engines / blocks / accelerator |
//! | [`baselines`] | `dpi-baselines` | Tuck et al. bitmap & path-compressed AC |
//! | [`rulesets`] | `dpi-rulesets` | Snort-like workloads (Figure 6), traffic generators |
//! | [`fpga`] | `dpi-fpga` | device, resource (Table I) and power (Figures 7–8) models |
//!
//! ## Quickstart
//!
//! ```
//! use dpi_accel::prelude::*;
//!
//! // Build the paper's Figure 1 example and scan a packet end to end on
//! // the simulated Stratix 3 accelerator.
//! let set = PatternSet::new(["he", "she", "his", "hers"])?;
//! let acc = Accelerator::build(&set, AcceleratorConfig::STRATIX3)?;
//! let report = acc.scan(&[b"ushers".to_vec()]);
//! assert_eq!(report.matches.len(), 3);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use dpi_automaton as automaton;
pub use dpi_baselines as baselines;
pub use dpi_core as core;
pub use dpi_fpga as fpga;
pub use dpi_hw as hw;
pub use dpi_rulesets as rulesets;
pub use dpi_sim as sim;

/// The most commonly used types, for glob import.
pub mod prelude {
    pub use dpi_automaton::{
        AnchorSet, Dfa, DfaMatcher, Match, MultiMatcher, Nfa, NfaMatcher, PairTable, PatternId,
        PatternSet, ScanState, StateId,
    };
    pub use dpi_automaton::{ShardPlan, ShardPlanError, ShardSpec, SplitStrategy};
    pub use dpi_core::{
        BatchScanner, CompiledAutomaton, CompiledMatcher, DtpConfig, DtpMatcher, FlowKey,
        FlowLookup, FlowMatch, FlowPacket, FlowReassembler, FlowSegment, FlowTable,
        FlowTableStats, OverlapPolicy, ReassemblyConfig, ReassemblyStats, ReducedAutomaton,
        ReductionReport, ShardedConfig, ShardedMatcher, ShardedScanState, ShardedScratch,
        StreamFlow, StreamScratch, TwoStageConfig, TwoStageMatcher, TwoStageScratch,
        TwoStageState, TwoStageStats,
    };
    pub use dpi_core::{
        FaultKind, FaultPlan, FidelityTier, LadderConfig, LatencyHistogram, RulesetArena,
        Service, ServiceConfig, ServiceReport, ServiceSim, ServiceStats, ShedConfig,
    };
    pub use dpi_core::{
        Lane, LaneMatcher, ProtoConfig, ProtoFlow, ProtocolId, ProtocolStats, ScopedRuleset,
        TAG_ANY, TAG_HTTP, TAG_TLS,
    };
    pub use dpi_hw::{HwImage, HwMatcher};
    pub use dpi_rulesets::{paper_ruleset, PaperRuleset, RulesetGenerator, TrafficGenerator};
    pub use dpi_sim::{Accelerator, AcceleratorConfig};
}
