//! End-to-end cycle-accurate accelerator tests: detection completeness,
//! the architectural throughput contract, and both deployment modes on
//! both paper devices.

use dpi_accel::prelude::*;
use dpi_accel::rulesets::{extract_preserving, master_ruleset};
use dpi_accel::sim::{Block, SimPacket};

/// Ground truth of injected occurrences: `(packet, pattern, end)` rows.
type GroundTruth = Vec<(usize, PatternId, usize)>;

fn workload(
    set: &PatternSet,
    packets: usize,
    len: usize,
    injections: usize,
    seed: u64,
) -> (Vec<Vec<u8>>, GroundTruth) {
    let mut gen = TrafficGenerator::new(seed);
    let mut payloads = Vec::new();
    let mut truth = Vec::new();
    for i in 0..packets {
        let p = gen.infected_packet(len, set, injections);
        for &(id, end) in &p.injected {
            truth.push((i, id, end));
        }
        payloads.push(p.payload);
    }
    (payloads, truth)
}

#[test]
fn stratix_independent_mode_finds_all_injections() {
    let set = extract_preserving(&master_ruleset(), 250, 1);
    let acc = Accelerator::build(&set, AcceleratorConfig::STRATIX3).unwrap();
    assert_eq!(acc.group_size(), 1, "250 strings fit one block");
    let (payloads, truth) = workload(&set, 24, 1200, 3, 2);
    let report = acc.scan(&payloads);
    for (packet, id, end) in truth {
        assert!(
            report
                .matches
                .iter()
                .any(|m| m.packet == packet && m.pattern == id && m.end == end),
            "missed {id:?} in packet {packet} at ..{end}"
        );
    }
}

#[test]
fn grouped_mode_finds_all_injections_with_global_ids() {
    // Shrink block memory to force a grouped deployment.
    let set = extract_preserving(&master_ruleset(), 400, 3);
    let config = dpi_accel::sim::AcceleratorConfig {
        blocks: 4,
        words_per_block: 700,
        fmax_hz: 233.15e6,
    };
    let acc = Accelerator::build(&set, config).unwrap();
    assert!(acc.group_size() > 1, "expected grouping");
    let (payloads, truth) = workload(&set, 12, 900, 2, 4);
    let report = acc.scan(&payloads);
    for (packet, id, end) in truth {
        assert!(
            report
                .matches
                .iter()
                .any(|m| m.packet == packet && m.pattern == id && m.end == end),
            "missed {id:?} in packet {packet} at ..{end}"
        );
    }
}

#[test]
fn saturated_block_meets_throughput_contract() {
    let set = PatternSet::new(["virus", "worm"]).unwrap();
    let block = Block::build(&set, 4096).unwrap();
    let packets: Vec<SimPacket> = (0..6)
        .map(|id| SimPacket {
            id,
            bytes: vec![b'z'; 3000],
        })
        .collect();
    let report = block.run(packets);
    // 6 engines × 8 bits ÷ 3 = 16 bits per memory cycle at saturation.
    assert!(report.bits_per_mem_cycle() > 15.5);
    // Port accounting: each port served its three engines' bytes.
    assert_eq!(report.port_state_reads[0] + report.port_state_reads[1], 18_000);
    // At the paper's Stratix 3 clock this is the per-block 7.36 Gbps.
    let gbps = report.throughput_bps(460.19e6) / 1e9;
    assert!((7.2..7.4).contains(&gbps), "per-block {gbps} Gbps");
}

#[test]
fn uneven_packets_still_complete_and_report() {
    let set = PatternSet::new(["needle"]).unwrap();
    let block = Block::build(&set, 4096).unwrap();
    let mut packets: Vec<SimPacket> = Vec::new();
    for id in 0..10 {
        let mut bytes = vec![b'x'; 37 * (id + 1)];
        if id % 2 == 0 {
            let at = bytes.len() / 2;
            bytes[at..at + 6].copy_from_slice(b"needle");
        }
        packets.push(SimPacket { id, bytes });
    }
    let report = block.run(packets);
    assert_eq!(report.matches.len(), 5);
    for m in &report.matches {
        assert_eq!(m.packet % 2, 0);
    }
    let total: usize = (1..=10).map(|k| 37 * k).sum();
    assert_eq!(report.bytes_scanned, total);
}

#[test]
fn match_flood_is_fully_drained() {
    // Single-byte pattern: a match on every payload byte. The scheduler
    // must drain everything even though arrivals outpace the one-word-per-
    // cycle drain rate for a while.
    let set = PatternSet::new(["a"]).unwrap();
    let block = Block::build(&set, 4096).unwrap();
    let packets: Vec<SimPacket> = (0..6)
        .map(|id| SimPacket {
            id,
            bytes: vec![b'a'; 500],
        })
        .collect();
    let report = block.run(packets);
    assert_eq!(report.matches.len(), 6 * 500);
    assert!(report.scheduler[0].max_depth > 0);
}

#[test]
fn both_paper_devices_deploy_the_500_ruleset() {
    let set = dpi_accel::rulesets::paper_ruleset(PaperRuleset::S500);
    for config in [AcceleratorConfig::STRATIX3, AcceleratorConfig::CYCLONE3] {
        let acc = Accelerator::build(&set, config).unwrap();
        assert_eq!(acc.group_size(), 1);
        let (payloads, truth) = workload(&set, 8, 1000, 2, 5);
        let report = acc.scan(&payloads);
        assert!(report.matches.len() >= truth.len());
    }
}

#[test]
fn throughput_scales_inversely_with_group_size() {
    let set = extract_preserving(&master_ruleset(), 600, 9);
    let mk = |words| dpi_accel::sim::AcceleratorConfig {
        blocks: 4,
        words_per_block: words,
        fmax_hz: 100e6,
    };
    let roomy = Accelerator::build(&set, mk(4096)).unwrap();
    let tight = Accelerator::build(&set, mk(900)).unwrap();
    assert_eq!(roomy.group_size(), 1);
    assert!(tight.group_size() >= 2);
    let ratio = roomy.peak_throughput_bps() / tight.peak_throughput_bps();
    assert!(
        (ratio - (tight.group_size() as f64 / roomy.group_size() as f64)).abs() < 1e-9
            || ratio >= 2.0,
        "peak throughput must divide by the group count ratio (got {ratio})"
    );
}
