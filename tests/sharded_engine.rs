//! Differential suite for the sharded per-core scan engine: whatever the
//! shard count, core count, split strategy, DTP configuration or scan
//! entry point, `ShardedMatcher` must report exactly the matches of the
//! monolithic `CompiledMatcher` (and through it the reference
//! `DtpMatcher` and the full DFA), with global pattern ids in canonical
//! `(end, pattern)` order.

use dpi_accel::automaton::NaiveMatcher;
use dpi_accel::core::sharded::{ShardedConfig, ShardedMatcher};
use dpi_accel::prelude::*;
use dpi_accel::rulesets::{extract_preserving, master_ruleset};
use proptest::prelude::*;

fn monolith_find_all(set: &PatternSet, config: DtpConfig, text: &[u8]) -> Vec<Match> {
    let dfa = Dfa::build(set);
    let reduced = ReducedAutomaton::reduce(&dfa, config);
    let compiled = CompiledAutomaton::compile(&reduced);
    CompiledMatcher::new(&compiled, set).find_all(text)
}

/// Sharded results must equal the monolith's on generated traffic, for
/// every core count and for tight budgets that force many shards.
#[test]
fn sharded_equals_compiled_and_dtp_on_generated_traffic() {
    let set = extract_preserving(&master_ruleset(), 200, 0x5AD);
    let dfa = Dfa::build(&set);
    let reduced = ReducedAutomaton::reduce(&dfa, DtpConfig::PAPER);
    let compiled = CompiledAutomaton::compile(&reduced);
    let fast = CompiledMatcher::new(&compiled, &set);
    let dtp = DtpMatcher::new(&reduced, &set);

    let mut gen = TrafficGenerator::new(21);
    let packets: Vec<Vec<u8>> = (0..4)
        .map(|i| {
            if i % 2 == 0 {
                gen.infected_packet(4096, &set, 8).payload
            } else {
                gen.clean_packet(4096).payload
            }
        })
        .collect();

    for cores in [1usize, 2, 3, 4] {
        for budget in [usize::MAX, 64 * 1024, 16 * 1024] {
            let mut config = ShardedConfig::with_cores(cores);
            if budget != usize::MAX {
                config.budget_bytes = budget;
            }
            let sharded = ShardedMatcher::build(&set, &config)
                .expect("budgets stay above the single-pattern floor");
            let mut scratch = sharded.scratch();
            let mut out = Vec::new();
            for packet in &packets {
                sharded.scan_into(packet, &mut scratch, &mut out);
                let want = fast.find_all(packet);
                assert_eq!(
                    out, want,
                    "sharded({}) diverged from compiled at cores={cores} budget={budget}",
                    sharded.shard_count()
                );
                assert_eq!(out, dtp.find_all(packet), "diverged from dtp");
            }
        }
    }
}

/// Every DTP configuration the compiled engine supports must shard too —
/// including the degenerate ones that trigger dense-row escalation.
#[test]
fn sharded_equals_compiled_under_every_config() {
    let set = extract_preserving(&master_ruleset(), 120, 7);
    let mut gen = TrafficGenerator::new(9);
    let packet = gen.infected_packet(2048, &set, 6).payload;
    for dtp in [
        DtpConfig::PAPER,
        DtpConfig { depth1: true, k2: 4, k3: 0 },
        DtpConfig { depth1: true, k2: 0, k3: 0 },
        DtpConfig { depth1: false, k2: 0, k3: 0 },
        DtpConfig { depth1: true, k2: 1, k3: 2 },
    ] {
        let mut config = ShardedConfig::with_cores(3);
        config.dtp = dtp;
        let sharded = ShardedMatcher::build(&set, &config).expect("fits default budget");
        assert_eq!(
            sharded.find_all(&packet),
            monolith_find_all(&set, dtp, &packet),
            "diverged under {dtp:?}"
        );
    }
}

/// A pattern set whose bytes pile onto few start characters (overlapping
/// prefixes) must still shard correctly, whatever strategy the planner
/// picks for it.
#[test]
fn overlapping_prefix_sets_shard_correctly() {
    // All patterns start with "ab"; deep shared spines + divergent tails.
    let mut strings: Vec<String> = (0..30).map(|i| format!("ab{i:03}")).collect();
    strings.push("ab".into());
    strings.push("abab".repeat(40)); // one long self-overlapping pattern
    let set = PatternSet::new(&strings).unwrap();
    let mut config = ShardedConfig::with_cores(4);
    config.budget_bytes = 16 * 1024; // force several shards (above any single-pattern floor)
    let sharded = ShardedMatcher::build(&set, &config).expect("budget above single-pattern floor");
    assert!(sharded.shard_count() > 1);
    let mut hay = b"ab012ab".to_vec();
    hay.extend_from_slice("abab".repeat(41).as_bytes());
    let want = NaiveMatcher::new(&set).find_all(&hay);
    assert_eq!(sharded.find_all(&hay), want);
    assert_eq!(monolith_find_all(&set, DtpConfig::PAPER, &hay), want);
}

/// Single-pattern sets, empty haystacks, and more cores than patterns.
#[test]
fn degenerate_shapes() {
    let set = PatternSet::new(["x"]).unwrap();
    let sharded = ShardedMatcher::build(&set, &ShardedConfig::with_cores(8)).unwrap();
    assert_eq!(sharded.shard_count(), 1);
    assert!(sharded.find_all(b"").is_empty());
    assert_eq!(sharded.find_all(b"xxx").len(), 3);

    let set = PatternSet::new_nocase(["Attack", "EXPLOIT"]).unwrap();
    let sharded = ShardedMatcher::build(&set, &ShardedConfig::with_cores(2)).unwrap();
    let found = sharded.find_all(b"ATTACK and exploit");
    assert_eq!(found.len(), 2);
}

/// The stream entry point must agree with per-payload scanning across
/// ragged batches (empty payloads included) and core counts.
#[test]
fn stream_scan_equals_per_payload_on_ragged_batches() {
    let set = extract_preserving(&master_ruleset(), 150, 3);
    let mut gen = TrafficGenerator::new(77);
    let mut payloads: Vec<Vec<u8>> = Vec::new();
    for (i, len) in [1500usize, 64, 0, 900, 40, 7, 300, 1200, 2, 600]
        .into_iter()
        .enumerate()
    {
        if len == 0 {
            payloads.push(Vec::new());
        } else if i % 3 == 0 {
            payloads.push(gen.infected_packet(len.max(32), &set, 1).payload);
        } else {
            payloads.push(gen.clean_packet(len).payload);
        }
    }
    let want: Vec<Vec<Match>> = payloads
        .iter()
        .map(|p| monolith_find_all(&set, DtpConfig::PAPER, p))
        .collect();
    for cores in [1usize, 2, 4, 16] {
        let sharded = ShardedMatcher::build(&set, &ShardedConfig::with_cores(cores)).unwrap();
        let mut out = Vec::new();
        sharded.scan_stream_into(&payloads, &mut out);
        assert_eq!(out, want, "stream(cores={cores}) diverged");
    }
}

/// Prefetch on/off is scan-invisible for both the monolithic and the
/// sharded engines.
#[test]
fn prefetch_ab_is_scan_invisible() {
    let set = extract_preserving(&master_ruleset(), 100, 13);
    let dfa = Dfa::build(&set);
    let reduced = ReducedAutomaton::reduce(&dfa, DtpConfig::PAPER);
    let compiled = CompiledAutomaton::compile(&reduced);
    let plain = CompiledMatcher::new(&compiled, &set);
    let touched = CompiledMatcher::new(&compiled, &set).with_prefetch(true);
    let mut config = ShardedConfig::with_cores(2);
    config.prefetch = true;
    let sharded_pf = ShardedMatcher::build(&set, &config).unwrap();
    let mut gen = TrafficGenerator::new(31);
    for _ in 0..3 {
        let packet = gen.infected_packet(2048, &set, 4).payload;
        let want = plain.find_all(&packet);
        assert_eq!(touched.find_all(&packet), want, "prefetch changed compiled");
        assert_eq!(sharded_pf.find_all(&packet), want, "prefetch changed sharded");
    }
}

/// The MultiMatcher surface (find_all / find_all_into / is_match) must
/// behave like every other matcher in the workspace.
#[test]
fn multi_matcher_wiring() {
    let set = extract_preserving(&master_ruleset(), 80, 5);
    let sharded = ShardedMatcher::build(&set, &ShardedConfig::with_cores(2)).unwrap();
    let mut gen = TrafficGenerator::new(11);
    let infected = gen.infected_packet(2048, &set, 5).payload;
    let clean = b"............................".to_vec();

    let want = monolith_find_all(&set, DtpConfig::PAPER, &infected);
    assert!(!want.is_empty());
    assert_eq!(sharded.find_all(&infected), want);
    // Seed garbage to prove the buffer is cleared.
    let mut buf = vec![Match {
        end: usize::MAX,
        pattern: PatternId(u32::MAX),
    }];
    sharded.find_all_into(&infected, &mut buf);
    assert_eq!(buf, want);
    assert!(sharded.is_match(&infected));
    assert_eq!(
        sharded.is_match(&clean),
        !monolith_find_all(&set, DtpConfig::PAPER, &clean).is_empty()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Property: for random dense-alphabet pattern sets and haystacks,
    /// the sharded scan equals the naive reference for every core count
    /// and shard-forcing budget.
    #[test]
    fn sharded_matches_naive_reference(
        patterns in proptest::collection::vec(
            proptest::collection::vec(prop_oneof![Just(b'a'), Just(b'b'), Just(b'c')], 1..6),
            1..10,
        ),
        haystack in proptest::collection::vec(prop_oneof![Just(b'a'), Just(b'b'), Just(b'c')], 0..150),
        cores in 1usize..5,
        tight_budget in any::<bool>(),
    ) {
        let Ok(set) = PatternSet::new(&patterns) else {
            return Ok(()); // duplicates — not this test's concern
        };
        let mut config = ShardedConfig::with_cores(cores);
        if tight_budget {
            // Just above any single-pattern floor (patterns are <= 5
            // bytes), but below any two-pattern shard: forces the cap.
            config.budget_bytes = 11_264 + 26 * 7;
            config.max_shards = 4;
        }
        let sharded = ShardedMatcher::build(&set, &config)
            .expect("budget stays above the single-pattern floor");
        let want = NaiveMatcher::new(&set).find_all(&haystack);
        prop_assert_eq!(sharded.find_all(&haystack), want);
    }

    /// Property: stream scanning a random batch equals scanning each
    /// payload alone.
    #[test]
    fn stream_equals_individual_scans(
        patterns in proptest::collection::vec(
            proptest::collection::vec(prop_oneof![Just(b'a'), Just(b'b')], 1..5),
            1..6,
        ),
        payloads in proptest::collection::vec(
            proptest::collection::vec(prop_oneof![Just(b'a'), Just(b'b')], 0..60),
            1..8,
        ),
        cores in 1usize..4,
    ) {
        let Ok(set) = PatternSet::new(&patterns) else { return Ok(()); };
        let sharded = ShardedMatcher::build(&set, &ShardedConfig::with_cores(cores)).unwrap();
        let mut out = Vec::new();
        sharded.scan_stream_into(&payloads, &mut out);
        prop_assert_eq!(out.len(), payloads.len());
        for (payload, got) in payloads.iter().zip(&out) {
            prop_assert_eq!(got, &sharded.find_all(payload));
        }
    }
}
