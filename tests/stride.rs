//! Stride-2 pair-lane equivalence suite: the pair layer must be
//! *scan-invisible*.
//!
//! For every workload shape — clean, infected and adversarial payloads,
//! whole or packetized under every [`ChopProfile`] (including cuts at
//! odd stream offsets and inside calm-pair windows), case-sensitive and
//! nocase, at every anchor horizon, with the prefilter on or off —
//! scanning with the pair layer enabled must report byte-for-byte the
//! matches of the pairs-off scan, which in turn equals the reference
//! matchers. Covers [`CompiledMatcher`] (both the composed lane and the
//! pairs-only core) and [`ShardedMatcher`], plus budget shapes from
//! region-rows-only up to the profiled default.

use dpi_accel::automaton::NaiveMatcher;
use dpi_accel::prelude::*;
use dpi_accel::rulesets::{
    adversarial_payload, chop, extract_preserving, master_ruleset, ChopProfile,
};
use proptest::prelude::*;

/// Compiles `set` with anchors at `horizon` plus a pair layer under
/// `budget` (and the reference reduced automaton).
fn build(
    set: &PatternSet,
    horizon: u8,
    budget: usize,
) -> (ReducedAutomaton, CompiledAutomaton) {
    let dfa = Dfa::build(set);
    let reduced = ReducedAutomaton::reduce(&dfa, DtpConfig::PAPER);
    let anchors = AnchorSet::build(&dfa, set, horizon);
    let pairs = PairTable::build_with_region(&dfa, set, &anchors, budget);
    let compiled =
        CompiledAutomaton::compile_with_prefilter(&reduced, anchors).with_pair_table(pairs);
    (reduced, compiled)
}

/// The budget shapes worth distinguishing: region rows alone (stride-2
/// walk, no excursion stepping), hot rows riding along, and the
/// default.
fn budgets() -> [usize; 3] {
    [
        PairTable::REGION_ROW_BYTES,
        PairTable::REGION_ROW_BYTES + 2 * PairTable::ROW_BYTES,
        PairTable::DEFAULT_BUDGET,
    ]
}

/// Pairs-on ≡ pairs-off ≡ DtpMatcher on generated traffic, across
/// horizons, budgets, and the prefilter switch.
#[test]
fn generated_traffic_equivalence_across_horizons_and_budgets() {
    let master = master_ruleset();
    for n in [40usize, 300] {
        let set = extract_preserving(&master, n, 42);
        let mut gen = TrafficGenerator::new(7);
        let clean = gen.clean_packet(16 << 10).payload;
        let infected = gen.infected_packet(16 << 10, &set, 24).payload;
        let crafted = adversarial_payload(&set, 4 << 10);
        for horizon in 0..=AnchorSet::MAX_HORIZON {
            for budget in budgets() {
                let (reduced, compiled) = build(&set, horizon, budget);
                let dtp = DtpMatcher::new(&reduced, &set);
                let both = CompiledMatcher::new(&compiled, &set);
                let lane_only = CompiledMatcher::new(&compiled, &set).with_pairs(false);
                let pairs_only = CompiledMatcher::new(&compiled, &set).with_prefilter(false);
                for (label, payload) in
                    [("clean", &clean), ("infected", &infected), ("adversarial", &crafted)]
                {
                    let want = dtp.find_all(payload);
                    for (name, m) in [
                        ("lane+pairs", &both),
                        ("lane-only", &lane_only),
                        ("pairs-only", &pairs_only),
                    ] {
                        assert_eq!(
                            m.find_all(payload),
                            want,
                            "{name} diverged (n={n} h={horizon} budget={budget} {label})"
                        );
                        assert_eq!(m.count(payload), want.len());
                        assert_eq!(m.is_match(payload), !want.is_empty());
                    }
                }
            }
        }
    }
}

/// Every chop profile resumed through one `ScanState`, with the cut
/// offsets forced **odd** so pair alignment never coincides with the
/// packetization, equals the whole-payload reference — for the pair
/// lane, the pairs-only core, and the sharded matcher, including
/// chunks alternating between the stride-2 and byte-stepper matchers.
#[test]
fn odd_offset_chop_profiles_with_alternating_resume() {
    let master = master_ruleset();
    let set = extract_preserving(&master, 120, 9);
    let (reduced, compiled) = build(&set, AnchorSet::DEFAULT_HORIZON, budgets()[2]);
    let dtp = DtpMatcher::new(&reduced, &set);
    let on = CompiledMatcher::new(&compiled, &set);
    let off = CompiledMatcher::new(&compiled, &set).with_pairs(false);
    let pairs_only = CompiledMatcher::new(&compiled, &set).with_prefilter(false);
    assert!(on.pairs() && !off.pairs());
    let sharded = ShardedMatcher::build(&set, &ShardedConfig::with_cores(2)).unwrap();
    assert!(sharded.pairs());
    let mut gen = TrafficGenerator::new(11);
    let packet = gen.infected_packet(6 << 10, &set, 12);
    let whole = dtp.find_all(&packet.payload);
    for profile in [
        ChopProfile::Mtu(1500),
        ChopProfile::Mtu(64),
        ChopProfile::SingleByte,
        ChopProfile::Random { min: 1, max: 48 },
        ChopProfile::MidPattern { mtu: 900 },
    ] {
        // Force every interior cut to an odd stream offset (the
        // stride-2 lane consumes pairs from wherever the scan stands,
        // so odd suspension points are the interesting ones).
        let mut cuts: Vec<usize> = gen
            .chop_points(&packet, &set, profile)
            .into_iter()
            .map(|c| c | 1)
            .filter(|&c| c < packet.payload.len())
            .collect();
        cuts.dedup();
        assert!(cuts.iter().all(|c| c % 2 == 1));
        let segments = chop(&packet.payload, &cuts);

        for (name, m) in [("lane+pairs", &on), ("pairs-only", &pairs_only)] {
            let mut state = ScanState::fresh();
            let mut got = Vec::new();
            for seg in &segments {
                m.scan_chunk_into(&mut state, seg, &mut got);
            }
            assert_eq!(got, whole, "{name} diverged under odd {profile:?}");
            assert_eq!(state.offset, packet.payload.len() as u64);
        }

        // Alternating stride-2 / byte-stepper resume: a state suspended
        // by the pair lane must resume exactly under the plain lane and
        // vice versa.
        let mut state = ScanState::fresh();
        let mut got = Vec::new();
        for (i, seg) in segments.iter().enumerate() {
            match i % 3 {
                0 => on.scan_chunk_into(&mut state, seg, &mut got),
                1 => off.scan_chunk_into(&mut state, seg, &mut got),
                _ => dtp.scan_chunk_into(&mut state, seg, &mut got),
            }
        }
        assert_eq!(got, whole, "alternating resume diverged under odd {profile:?}");

        let mut flow = sharded.flow_state();
        let mut scratch = sharded.scratch();
        let mut got = Vec::new();
        for seg in &segments {
            sharded.scan_chunk_into(&mut flow, seg, &mut scratch, &mut got);
        }
        assert_eq!(got, whole, "sharded pairs diverged under odd {profile:?}");
    }
    for &(id, end) in &packet.injected {
        assert!(whole.iter().any(|m| m.pattern == id && m.end == end));
    }
}

/// Cuts inside calm-pair windows and mid-pair: a payload engineered so
/// the stride-2 walk is mid-flight at every split point.
#[test]
fn cuts_inside_calm_windows_and_mid_pair() {
    let set = PatternSet::new(["hers", "she", "attack", "x"]).unwrap();
    let (_, compiled) = build(&set, AnchorSet::DEFAULT_HORIZON, budgets()[2]);
    let m = CompiledMatcher::new(&compiled, &set);
    assert!(m.pairs());
    // Candidate-but-calm text around the patterns keeps the walk in
    // stride-2 mode (never the SWAR window).
    let payload = b"the quiet theme there hers the quiet theme attack x end".to_vec();
    let whole = m.find_all(&payload);
    assert!(whole.len() >= 3);
    for cut in 0..=payload.len() {
        let mut state = ScanState::fresh();
        let mut got = Vec::new();
        m.scan_chunk_into(&mut state, &payload[..cut], &mut got);
        m.scan_chunk_into(&mut state, &payload[cut..], &mut got);
        assert_eq!(got, whole, "cut at {cut} diverged");
    }
    // Three-way splits with both boundaries odd.
    for (a, b) in [(3usize, 17usize), (7, 9), (1, 31)] {
        let mut state = ScanState::fresh();
        let mut got = Vec::new();
        m.scan_chunk_into(&mut state, &payload[..a], &mut got);
        m.scan_chunk_into(&mut state, &payload[a..b], &mut got);
        m.scan_chunk_into(&mut state, &payload[b..], &mut got);
        assert_eq!(got, whole, "splits at {a}/{b} diverged");
    }
}

/// A chunk boundary between a danger hit and the lane-register
/// rebuild: the anchor lane exits where `is_danger(prev, byte)` fires,
/// then rebuilds its history registers from the bytes just behind the
/// exit before the stepper takes over. Splitting the payload exactly
/// at the danger byte and exactly one past it puts the suspend/resume
/// seam inside that exit→rebuild window, while rotating the lane mode
/// per chunk (as in `rotating_pair_mode_resume`) so every mode has to
/// resume from a seam another mode produced.
#[test]
fn danger_exit_rebuild_boundary_alignment() {
    let set = extract_preserving(&master_ruleset(), 120, 0x77);
    let dfa = Dfa::build(&set);
    let anchors = AnchorSet::build(&dfa, &set, AnchorSet::DEFAULT_HORIZON);
    let (_, compiled) = build(&set, AnchorSet::DEFAULT_HORIZON, budgets()[2]);
    let mut gen = TrafficGenerator::new(0xD4E);
    let payload = gen.infected_packet(1536, &set, 6).payload;
    let both = CompiledMatcher::new(&compiled, &set);
    let lane = CompiledMatcher::new(&compiled, &set).with_pairs(false);
    let pairs = CompiledMatcher::new(&compiled, &set).with_prefilter(false);
    let whole = NaiveMatcher::new(&set).find_all(&payload);
    assert_eq!(both.find_all(&payload), whole);

    // Every position where the streamed history raises danger.
    let exits: Vec<usize> = (1..payload.len() - 2)
        .filter(|&j| anchors.is_danger(payload[j - 1] as u32, payload[j]))
        .collect();
    assert!(!exits.is_empty(), "payload never leaves the lane");
    let rotation: [&CompiledMatcher; 3] = [&both, &lane, &pairs];
    for &j in &exits {
        // Cut at the danger byte and one past it: chunk 2 is the
        // single byte whose consumption is the lane exit, so the
        // rebuild's look-behind spans both seams.
        for cuts in [[j, j + 1], [j, j + 2], [j + 1, j + 2]] {
            let segments = chop(&payload, &cuts);
            let mut state = ScanState::fresh();
            let mut got = Vec::new();
            for (i, seg) in segments.iter().enumerate() {
                rotation[i % 3].scan_chunk_into(&mut state, seg, &mut got);
            }
            assert_eq!(got, whole, "exit at {j}, cuts {cuts:?} diverged");
        }
    }
}

/// Nocase: the fold is baked into both axes of every pair table, so
/// mixed-case payloads classify identically to the folded scan.
#[test]
fn nocase_pair_lane_equivalence() {
    let set = PatternSet::new_nocase(["Attack", "GET /", "hers", "Z"]).unwrap();
    for horizon in 0..=AnchorSet::MAX_HORIZON {
        for budget in budgets() {
            let (reduced, compiled) = build(&set, horizon, budget);
            let dtp = DtpMatcher::new(&reduced, &set);
            let on = CompiledMatcher::new(&compiled, &set);
            let pairs_only = CompiledMatcher::new(&compiled, &set).with_prefilter(false);
            for payload in [
                &b"ATTACK at dawn: get / HeRs aTtAcK z"[..],
                b"zzzzZZZZzzzzZZZZattackZZZZ",
                b"GeT /index gEt hers HERS Z z",
            ] {
                let want = dtp.find_all(payload);
                assert_eq!(on.find_all(payload), want, "h={horizon} b={budget}");
                assert_eq!(pairs_only.find_all(payload), want, "h={horizon} b={budget}");
            }
        }
    }
}

/// The profiled build is equivalent to the in-degree build whatever the
/// sample (selection changes which states are fast, never what is
/// found) — including a sample that is itself the scanned payload.
#[test]
fn profiled_selection_is_scan_invisible() {
    let master = master_ruleset();
    let set = extract_preserving(&master, 80, 3);
    let dfa = Dfa::build(&set);
    let reduced = ReducedAutomaton::reduce(&dfa, DtpConfig::PAPER);
    let mut gen = TrafficGenerator::new(5);
    let payload = gen.infected_packet(8 << 10, &set, 10).payload;
    let dtp = DtpMatcher::new(&reduced, &set);
    let want = dtp.find_all(&payload);
    for sample in [&b""[..], b"zzzz", &payload] {
        let anchors = AnchorSet::build(&dfa, &set, AnchorSet::DEFAULT_HORIZON);
        let pairs = PairTable::build_profiled(
            &dfa,
            &set,
            &anchors,
            PairTable::DEFAULT_BUDGET,
            sample,
        );
        let compiled =
            CompiledAutomaton::compile_with_prefilter(&reduced, anchors).with_pair_table(pairs);
        let m = CompiledMatcher::new(&compiled, &set);
        assert_eq!(m.find_all(&payload), want, "sample len {}", sample.len());
    }
}

fn mixed_patterns() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(
        proptest::collection::vec(
            prop_oneof![Just(b'a'), Just(b'b'), Just(b'c'), Just(b'z')],
            1..6,
        ),
        1..8,
    )
}

fn mixed_payload(len: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(
        prop_oneof![
            Just(b'z'),
            Just(b'z'),
            Just(b'z'),
            Just(b'a'),
            Just(b'a'),
            Just(b'b'),
            Just(b'c'),
            Just(b'x'),
        ],
        0..len,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any packetization, any horizon, any budget shape: the pair lane
    /// and pairs-only core stream exactly the naive whole-payload scan.
    #[test]
    fn pair_lane_streaming_equivalence(
        patterns in mixed_patterns(),
        payload in mixed_payload(160),
        raw_cuts in proptest::collection::vec(any::<prop::sample::Index>(), 0..24),
        horizon in 0..3u8,
        budget_idx in 0..3usize,
    ) {
        let Ok(set) = PatternSet::new(&patterns) else { return Ok(()); };
        let naive = NaiveMatcher::new(&set).find_all(&payload);
        let mut cuts: Vec<usize> = if payload.len() < 2 {
            Vec::new()
        } else {
            raw_cuts.iter().map(|i| 1 + i.index(payload.len() - 1)).collect()
        };
        cuts.sort_unstable();
        cuts.dedup();
        let segments = chop(&payload, &cuts);

        let (_, compiled) = build(&set, horizon, budgets()[budget_idx]);
        for (name, m) in [
            ("lane+pairs", CompiledMatcher::new(&compiled, &set)),
            ("pairs-only", CompiledMatcher::new(&compiled, &set).with_prefilter(false)),
        ] {
            let mut state = ScanState::fresh();
            let mut got = Vec::new();
            for seg in &segments {
                m.scan_chunk_into(&mut state, seg, &mut got);
            }
            prop_assert_eq!(&got, &naive, "{} h={} cuts {:?}", name, horizon, cuts);
            prop_assert_eq!(m.find_all(&payload), naive.clone());
            prop_assert_eq!(m.is_match(&payload), !naive.is_empty());
        }
    }

    /// Suspended states are interchangeable between the pair lane, the
    /// plain lane, and the pairs-only core — rotating per chunk still
    /// equals the whole-payload scan.
    #[test]
    fn rotating_pair_mode_resume(
        patterns in mixed_patterns(),
        payload in mixed_payload(120),
        raw_cuts in proptest::collection::vec(any::<prop::sample::Index>(), 0..12),
    ) {
        let Ok(set) = PatternSet::new(&patterns) else { return Ok(()); };
        let naive = NaiveMatcher::new(&set).find_all(&payload);
        let mut cuts: Vec<usize> = if payload.len() < 2 {
            Vec::new()
        } else {
            raw_cuts.iter().map(|i| 1 + i.index(payload.len() - 1)).collect()
        };
        cuts.sort_unstable();
        cuts.dedup();
        let segments = chop(&payload, &cuts);
        let (_, compiled) = build(&set, AnchorSet::DEFAULT_HORIZON, budgets()[1]);
        let both = CompiledMatcher::new(&compiled, &set);
        let lane = CompiledMatcher::new(&compiled, &set).with_pairs(false);
        let pairs = CompiledMatcher::new(&compiled, &set).with_prefilter(false);
        let mut state = ScanState::fresh();
        let mut got = Vec::new();
        for (i, seg) in segments.iter().enumerate() {
            match i % 3 {
                0 => both.scan_chunk_into(&mut state, seg, &mut got),
                1 => lane.scan_chunk_into(&mut state, seg, &mut got),
                _ => pairs.scan_chunk_into(&mut state, seg, &mut got),
            }
        }
        prop_assert_eq!(got, naive, "rotation diverged at {:?}", cuts);
    }
}
