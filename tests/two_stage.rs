//! Two-stage scan equivalence suite: the pre-classifier + windowed
//! verifier must be **observationally identical** to the single-stage
//! exact engine — same matches, same order, same stream offsets — under
//! every chunking an adversarial transport can produce, including cuts
//! strictly inside flagged windows (`ChopProfile::MidPattern` forces a
//! boundary inside every injected occurrence, which by construction
//! lies inside a flagged window).
//!
//! The soundness half (approximate accepts ⊇ exact accepts over drawn
//! rulesets and budgets) is property-pinned in
//! `crates/automaton/src/proptests.rs`; this suite pins the
//! *composition*: that window replay through the sharded engine loses
//! nothing and invents nothing.

use dpi_accel::automaton::ApproxConfig;
use dpi_accel::prelude::*;
use dpi_accel::rulesets::{extract_preserving, master_ruleset, ChopProfile};
use proptest::prelude::*;

/// Every chop profile, including the two that cut inside flagged
/// windows (`SingleByte` cuts everywhere; `MidPattern` cuts inside
/// every injected occurrence).
fn chop_profiles() -> Vec<ChopProfile> {
    vec![
        ChopProfile::Mtu(1500),
        ChopProfile::Mtu(97),
        ChopProfile::SingleByte,
        ChopProfile::Random { min: 3, max: 211 },
        ChopProfile::MidPattern { mtu: 256 },
    ]
}

/// Streams `payload` through `matcher` in pieces, returning the
/// stream-absolute matches and final per-flow stats.
fn scan_chunked(
    matcher: &TwoStageMatcher,
    payload: &[u8],
    cuts: &[usize],
) -> (Vec<Match>, TwoStageStats) {
    let mut state = matcher.flow_state();
    let mut scratch = matcher.scratch();
    let mut out = Vec::new();
    let mut bounds = vec![0usize];
    bounds.extend_from_slice(cuts);
    bounds.push(payload.len());
    for pair in bounds.windows(2) {
        matcher.scan_chunk_into(&mut state, &payload[pair[0]..pair[1]], &mut scratch, &mut out);
    }
    matcher.finish_flow(&mut state, &mut out);
    (out, state.stats())
}

#[test]
fn two_stage_equals_single_stage_across_every_chop_profile() {
    let set = extract_preserving(&master_ruleset(), 300, 42);
    let exact = ShardedMatcher::build(&set, &ShardedConfig::with_cores(2)).unwrap();
    // Both pre-classifier kinds: the natural pick, and a budget so
    // tight the cover degenerates to depth-1 (maximum over-accept).
    let configs = [
        ShardedConfig::with_cores(2).two_stage(ApproxConfig::default()),
        ShardedConfig::with_cores(2).two_stage(ApproxConfig::with_budget(1)),
    ];
    let mut gen = TrafficGenerator::new(0x75_57A6E);
    for config in &configs {
        let two = TwoStageMatcher::build(&set, config).unwrap();
        for profile in chop_profiles() {
            let packet = gen.infected_packet(4096, &set, 6);
            let cuts = gen.chop_points(&packet, &set, profile);

            // Reference: the exact engine over the whole payload.
            let mut want = Vec::new();
            let mut scratch = exact.scratch();
            let mut st = exact.flow_state();
            exact.scan_chunk_into(&mut st, &packet.payload, &mut scratch, &mut want);

            let (got, stats) = scan_chunked(&two, &packet.payload, &cuts);
            assert_eq!(
                got, want,
                "{}-cover diverged under {profile:?}",
                two.pre_kind()
            );
            for &(id, end) in &packet.injected {
                assert!(
                    got.iter().any(|m| m.pattern == id && m.end == end),
                    "missed injected {id:?} at ..{end} under {profile:?}"
                );
            }
            // Sanity on the counters the repro reports: replay windows
            // feed every stream byte at most once, and a confirm flag
            // examines at most one residual's worth — so stage-2 work
            // is bounded by the stream plus a longest-pattern read per
            // verification episode (stacked depth-1 flags may
            // re-examine overlapping bytes). Infected traffic must be
            // noticed by stage 1. Under the generous default budget the
            // cover holds every pattern whole, so injections surface as
            // exact stage-1 emissions with zero windows; only the
            // degenerate 1-byte budget is forced to verify.
            let longest = set.iter().map(|(_, p)| p.len() as u64).max().unwrap();
            assert!(
                stats.verified_bytes <= packet.payload.len() as u64 + stats.windows * longest
            );
            assert!(stats.flags > 0, "infected traffic must flag");
            if config.approx.budget_bytes == 1 {
                assert!(stats.windows > 0, "truncated covers must window");
            }
        }
    }
}

#[test]
fn clean_tls_traffic_stays_off_the_verifier() {
    // The fast-path claim behind the tentpole: long-span encrypted
    // traffic should flow through stage 1 with (near-)zero replay. A
    // loose bound — the generator is free to brush a rule stem once in
    // a while — but an order-of-magnitude regression fails loudly.
    let set = extract_preserving(&master_ruleset(), 300, 42);
    let config = ShardedConfig::with_cores(2).two_stage(ApproxConfig::default());
    let matcher = TwoStageMatcher::build(&set, &config).unwrap();
    let stream = TrafficGenerator::new(9).tls_stream(1 << 18);
    let mut out = Vec::new();
    let mut scratch = matcher.scratch();
    let stats = matcher.scan_into(&stream.payload, &mut scratch, &mut out);
    assert!(
        stats.replay_fraction() < 0.20,
        "clean TLS replayed {:.1}% of the stream",
        100.0 * stats.replay_fraction()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random small rulesets, random budgets, random cut lists — chunked
    /// two-stage equals whole-payload single-stage, and whole-payload
    /// two-stage equals both.
    #[test]
    fn two_stage_matches_exact_on_random_inputs(
        patterns in proptest::collection::vec(
            proptest::collection::vec(
                prop_oneof![Just(b'a'), Just(b'b'), Just(b'c'), any::<u8>()],
                1..10,
            ),
            1..12,
        ),
        budget in prop_oneof![Just(1usize), 128usize..4096, Just(1usize << 19)],
        fill in proptest::collection::vec(any::<u8>(), 1..400),
        picks in proptest::collection::vec(0usize..12 * 400, 0..10),
        cuts in proptest::collection::vec(1usize..400, 0..8),
    ) {
        let Ok(set) = PatternSet::new(&patterns) else { return Ok(()); };
        let mut hay = fill;
        for &pick in &picks {
            let p = &patterns[(pick / 400) % patterns.len()];
            let pos = (pick % 400) % (hay.len() + 1);
            hay.splice(pos..pos, p.iter().copied());
        }
        let mut cuts: Vec<usize> = cuts.iter().map(|&c| c % hay.len()).collect();
        cuts.sort_unstable();
        cuts.dedup();
        cuts.retain(|&c| c > 0);

        let exact = ShardedMatcher::build(&set, &ShardedConfig::with_cores(2)).unwrap();
        let mut want = Vec::new();
        let mut scratch = exact.scratch();
        let mut st = exact.flow_state();
        exact.scan_chunk_into(&mut st, &hay, &mut scratch, &mut want);

        let config = ShardedConfig::with_cores(2).two_stage(ApproxConfig::with_budget(budget));
        let two = TwoStageMatcher::build(&set, &config).unwrap();
        let (chunked, _) = scan_chunked(&two, &hay, &cuts);
        prop_assert_eq!(&chunked, &want, "chunked two-stage diverged (budget {})", budget);

        let mut whole = Vec::new();
        let mut scratch = two.scratch();
        two.scan_into(&hay, &mut scratch, &mut whole);
        prop_assert_eq!(&whole, &want, "whole-payload two-stage diverged");
    }
}
