//! Workload-substrate properties: the guarantees the evaluation rests on
//! (deterministic rulesets, preserved distributions, truthful traffic
//! ground truth, planner consistency).

use dpi_accel::automaton::{MultiMatcher, NaiveMatcher};
use dpi_accel::fpga::{plan, FpgaDevice};
use dpi_accel::prelude::*;
use dpi_accel::rulesets::{
    extract_chars, extract_preserving, master_ruleset, LengthDistribution, RulesetGenerator,
    TABLE3_CHAR_COUNT,
};
use proptest::prelude::*;

#[test]
fn builtin_rulesets_are_reproducible() {
    // Two independent generations must be byte-identical — every number in
    // EXPERIMENTS.md depends on this.
    assert_eq!(
        paper_ruleset(PaperRuleset::S500),
        paper_ruleset(PaperRuleset::S500)
    );
    assert_eq!(
        RulesetGenerator::new().generate(700),
        RulesetGenerator::new().generate(700)
    );
}

#[test]
fn extraction_preserves_figure6_shape() {
    let master = master_ruleset();
    let sub = extract_preserving(&master, 634, 1);
    let mean_master = master.total_bytes() as f64 / master.len() as f64;
    let mean_sub = sub.total_bytes() as f64 / sub.len() as f64;
    assert!((mean_master - mean_sub).abs() / mean_master < 0.08);
    // Peak individual-length bucket stays in the 4..=13 band of Figure 6
    // (the pooled 50+ bar is excluded — it aggregates 60 lengths).
    let lengths: Vec<usize> = sub.iter().map(|(_, p)| p.len()).collect();
    let hist = LengthDistribution::figure6_histogram(&lengths);
    let peak = hist
        .iter()
        .filter(|&&(l, _)| l < 50)
        .max_by_key(|&&(_, c)| c)
        .unwrap()
        .0;
    assert!((4..=13).contains(&peak), "peak at {peak}");
}

#[test]
fn table3_ruleset_char_budget() {
    let set = dpi_accel::rulesets::table3_ruleset();
    let bytes = set.total_bytes();
    assert!(bytes <= TABLE3_CHAR_COUNT + 200);
    assert!(bytes as f64 >= TABLE3_CHAR_COUNT as f64 * 0.95);
}

#[test]
fn char_extraction_monotone_in_budget() {
    let master = master_ruleset();
    let small = extract_chars(&master, 5_000, 3);
    let large = extract_chars(&master, 15_000, 3);
    assert!(small.total_bytes() < large.total_bytes());
    assert!(small.len() < large.len());
}

#[test]
fn infected_traffic_ground_truth_is_sound() {
    let set = paper_ruleset(PaperRuleset::S500);
    let mut gen = TrafficGenerator::new(123);
    let naive = NaiveMatcher::new(&set);
    for _ in 0..5 {
        let p = gen.infected_packet(2000, &set, 4);
        let found = naive.find_all(&p.payload);
        for &(id, end) in &p.injected {
            assert!(
                found.iter().any(|m| m.pattern == id && m.end == end),
                "ground truth entry not actually present"
            );
        }
    }
}

#[test]
fn planner_agrees_with_cycle_simulator_on_group_size() {
    // The analytic planner and the simulator's deployment logic must pick
    // the same group size for the same capacity (they implement the same
    // constraints independently).
    let set = extract_preserving(&master_ruleset(), 800, 17);
    let device = FpgaDevice {
        words_per_block: 1024,
        ..FpgaDevice::stratix3()
    };
    let p = plan(&set, &device).unwrap();
    let acc = Accelerator::build(
        &set,
        dpi_accel::sim::AcceleratorConfig {
            blocks: device.blocks,
            words_per_block: device.words_per_block,
            fmax_hz: device.fmax_hz,
        },
    )
    .unwrap();
    assert_eq!(p.group_size, acc.group_size());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn extraction_always_yields_requested_count(
        target in 1usize..200,
        seed in any::<u64>(),
    ) {
        let master = RulesetGenerator::new().generate(200);
        let sub = extract_preserving(&master, target, seed);
        prop_assert_eq!(sub.len(), target);
        // Subset property.
        let all: std::collections::HashSet<&[u8]> = master.iter().map(|(_, p)| p).collect();
        for (_, p) in sub.iter() {
            prop_assert!(all.contains(p));
        }
    }

    #[test]
    fn clean_packets_have_exact_length(len in 1usize..4000, seed in any::<u64>()) {
        let mut gen = TrafficGenerator::new(seed);
        prop_assert_eq!(gen.clean_packet(len).payload.len(), len);
    }

    #[test]
    fn adversarial_payload_has_requested_length(
        len in 1usize..512,
        seed in any::<u64>(),
    ) {
        let set = RulesetGenerator::new().with_seed(seed).generate(20);
        let p = dpi_accel::rulesets::adversarial_payload(&set, len);
        prop_assert_eq!(p.len(), len);
    }
}
