//! Integration tests for the extension features built beyond the paper:
//! match-list sharing, MIF serialization, the M144K capacity extension and
//! the ASIC projection.

use dpi_accel::fpga::{
    plan_with_options, AsicModel, FpgaDevice, PlanOptions, PowerModel,
};
use dpi_accel::hw::{parse_mif, to_mif, BlockMemory, HwImage, HwMatcher, ImageOptions};
use dpi_accel::prelude::*;
use dpi_accel::rulesets::{extract_preserving, master_ruleset};

#[test]
fn shared_match_lists_preserve_matching_and_save_words() {
    let set = extract_preserving(&master_ruleset(), 200, 0xE0);
    let dfa = Dfa::build(&set);
    let reduced = ReducedAutomaton::reduce(&dfa, DtpConfig::PAPER);
    let private = HwImage::build(&reduced).unwrap();
    let shared = HwImage::build_with_options(
        &reduced,
        ImageOptions {
            shared_match_lists: true,
            ..ImageOptions::default()
        },
    )
    .unwrap();
    assert!(shared.stats().match_words_used <= private.stats().match_words_used);
    // Matching behaviour is identical.
    let mut gen = TrafficGenerator::new(5);
    for _ in 0..3 {
        let p = gen.infected_packet(1024, &set, 4);
        assert_eq!(
            HwMatcher::new(&shared, &set).find_all(&p.payload),
            HwMatcher::new(&private, &set).find_all(&p.payload),
        );
    }
}

#[test]
fn shared_lists_reduce_group_size_on_master() {
    // The headline of the extension: the 6,275-string master needs one
    // less block per group with shared match lists.
    let master = master_ruleset();
    let device = FpgaDevice::stratix3();
    let private = plan_with_options(&master, &device, PlanOptions::default()).unwrap();
    let shared = plan_with_options(
        &master,
        &device,
        PlanOptions {
            shared_match_lists: true,
            ..PlanOptions::default()
        },
    )
    .unwrap();
    assert!(shared.group_size < private.group_size);
}

#[test]
fn mif_files_cover_all_memories_and_roundtrip() {
    let set = extract_preserving(&master_ruleset(), 80, 0x3F);
    let dfa = Dfa::build(&set);
    let reduced = ReducedAutomaton::reduce(&dfa, DtpConfig::PAPER);
    let image = HwImage::build(&reduced).unwrap();
    for memory in BlockMemory::ALL {
        let text = to_mif(&image, memory);
        let (width, rows) = parse_mif(&text).unwrap();
        assert_eq!(width, memory.width());
        assert!(!rows.is_empty());
        // Deterministic.
        assert_eq!(text, to_mif(&image, memory));
    }
}

#[test]
fn m144k_respects_pointer_address_space() {
    let extended = FpgaDevice::stratix3().with_m144k();
    assert!(extended.words_per_block <= 4096, "12-bit addresses");
    assert!(extended.words_per_block > FpgaDevice::stratix3().words_per_block);
}

#[test]
fn asic_projection_orders_sanely() {
    let model = AsicModel::tsmc65();
    let stratix = FpgaDevice::stratix3();
    // Faster clock, lower power than the FPGA at the same block count.
    assert!(model.peak_throughput_bps(6) > stratix.peak_throughput_bps());
    let fpga_w = PowerModel::for_device(&stratix).power_w(stratix.fmax_hz);
    assert!(model.power_w(&stratix, 6) < fpga_w);
    // Area monotone in blocks and bits.
    assert!(model.area_mm2(2, 1_000_000) > model.area_mm2(1, 1_000_000));
    assert!(model.area_mm2(1, 2_000_000) > model.area_mm2(1, 1_000_000));
}
