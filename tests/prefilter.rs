//! Prefilter equivalence suite: the anchor-byte fast lane must be
//! *scan-invisible*.
//!
//! For every workload shape we can produce — clean, infected and
//! adversarial payloads, whole or packetized under every [`ChopProfile`]
//! (including cuts landing inside a SWAR skip window), case-sensitive
//! and nocase, at every supported anchor horizon — scanning with the
//! prefilter enabled must report byte-for-byte the matches of the
//! prefilter-off scan, which in turn equals the reference matchers.
//! Covers [`CompiledMatcher`] and [`ShardedMatcher`], plus the
//! flow-table ingest path the lane composes with.

use dpi_accel::automaton::{AnchorSet, NaiveMatcher};
use dpi_accel::core::{FlowKey, FlowPacket, FlowTable};
use dpi_accel::prelude::*;
use dpi_accel::rulesets::{
    adversarial_payload, chop, extract_preserving, master_ruleset, ChopProfile,
};
use proptest::prelude::*;

/// Compiles `set` with prefilter tables at `horizon` (plus the reference
/// reduced automaton).
fn build(set: &PatternSet, horizon: u8) -> (Dfa, ReducedAutomaton, CompiledAutomaton) {
    let dfa = Dfa::build(set);
    let reduced = ReducedAutomaton::reduce(&dfa, DtpConfig::PAPER);
    let anchors = AnchorSet::build(&dfa, set, horizon);
    let compiled = CompiledAutomaton::compile_with_prefilter(&reduced, anchors);
    (dfa, reduced, compiled)
}

/// Prefilter-on ≡ prefilter-off ≡ DtpMatcher on every generated traffic
/// profile, at every horizon, for two ruleset sizes.
#[test]
fn generated_traffic_equivalence_across_horizons() {
    let master = master_ruleset();
    for n in [40usize, 300] {
        let set = extract_preserving(&master, n, 42);
        let mut gen = TrafficGenerator::new(7);
        let clean = gen.clean_packet(16 << 10).payload;
        let infected = gen.infected_packet(16 << 10, &set, 24).payload;
        let crafted = adversarial_payload(&set, 4 << 10);
        for horizon in 0..=AnchorSet::MAX_HORIZON {
            let (_, reduced, compiled) = build(&set, horizon);
            let on = CompiledMatcher::new(&compiled, &set);
            assert!(on.prefilter());
            let off = CompiledMatcher::new(&compiled, &set).with_prefilter(false);
            let dtp = DtpMatcher::new(&reduced, &set);
            for (label, payload) in
                [("clean", &clean), ("infected", &infected), ("adversarial", &crafted)]
            {
                let want = dtp.find_all(payload);
                assert_eq!(
                    on.find_all(payload),
                    want,
                    "prefilter-on diverged (n={n} h={horizon} {label})"
                );
                assert_eq!(
                    off.find_all(payload),
                    want,
                    "prefilter-off diverged (n={n} h={horizon} {label})"
                );
                assert_eq!(on.count(payload), want.len());
                assert_eq!(on.is_match(payload), !want.is_empty());
            }
        }
    }
}

/// Packetized streams: every chop profile (MTU, single-byte, random,
/// forced mid-pattern cuts) resumed through one `ScanState` equals the
/// whole-payload scan — prefilter on, for the compiled and sharded
/// matchers.
#[test]
fn chop_profile_streaming_equivalence() {
    let master = master_ruleset();
    let set = extract_preserving(&master, 120, 9);
    let (_, _, compiled) = build(&set, AnchorSet::DEFAULT_HORIZON);
    let on = CompiledMatcher::new(&compiled, &set);
    let off = CompiledMatcher::new(&compiled, &set).with_prefilter(false);
    let sharded = ShardedMatcher::build(&set, &ShardedConfig::with_cores(2)).unwrap();
    assert!(sharded.prefilter());
    let mut gen = TrafficGenerator::new(11);
    let packet = gen.infected_packet(6 << 10, &set, 12);
    let whole = off.find_all(&packet.payload);
    for profile in [
        ChopProfile::Mtu(1500),
        ChopProfile::Mtu(64),
        ChopProfile::SingleByte,
        ChopProfile::Random { min: 1, max: 48 },
        ChopProfile::MidPattern { mtu: 900 },
    ] {
        let cuts = gen.chop_points(&packet, &set, profile);
        let segments = chop(&packet.payload, &cuts);
        let mut state = ScanState::fresh();
        let mut got = Vec::new();
        for seg in &segments {
            on.scan_chunk_into(&mut state, seg, &mut got);
        }
        assert_eq!(got, whole, "compiled prefilter diverged under {profile:?}");
        assert_eq!(state.offset, packet.payload.len() as u64);

        let mut flow = sharded.flow_state();
        let mut scratch = sharded.scratch();
        let mut got = Vec::new();
        for seg in &segments {
            sharded.scan_chunk_into(&mut flow, seg, &mut scratch, &mut got);
        }
        assert_eq!(got, whole, "sharded prefilter diverged under {profile:?}");
    }
    // Ground truth: every injected occurrence is in the whole-scan set.
    for &(id, end) in &packet.injected {
        assert!(whole.iter().any(|m| m.pattern == id && m.end == end));
    }
}

/// Cuts landing *inside* a SWAR skip window: a long skippable run split
/// at every offset must resume mid-skip (state suspends on START with
/// the run-tail history) and still find the pattern straddling or
/// following the run.
#[test]
fn cuts_inside_swar_skip_windows() {
    let set = PatternSet::new(["hers", "she", "attack"]).unwrap();
    let (dfa, _, compiled) = build(&set, AnchorSet::DEFAULT_HORIZON);
    let anchors = AnchorSet::build(&dfa, &set, AnchorSet::DEFAULT_HORIZON);
    let skip_byte = (0u8..=255)
        .find(|&b| anchors.is_skippable(b))
        .expect("tiny set has skippable bytes");
    let m = CompiledMatcher::new(&compiled, &set);
    assert!(m.prefilter());
    // run(32) + "hers" + run(32) + "attack": skip windows on both sides.
    let mut payload = vec![skip_byte; 32];
    payload.extend_from_slice(b"hers");
    payload.extend(vec![skip_byte; 32]);
    payload.extend_from_slice(b"attack");
    let whole = m.find_all(&payload);
    assert_eq!(whole.len(), 2);
    for cut in 0..=payload.len() {
        let mut state = ScanState::fresh();
        let mut got = Vec::new();
        m.scan_chunk_into(&mut state, &payload[..cut], &mut got);
        m.scan_chunk_into(&mut state, &payload[cut..], &mut got);
        assert_eq!(got, whole, "cut at {cut} diverged");
    }
    // Three-way splits inside the first run: both boundaries mid-skip.
    for (a, b) in [(3usize, 17usize), (8, 9), (1, 31)] {
        let mut state = ScanState::fresh();
        let mut got = Vec::new();
        m.scan_chunk_into(&mut state, &payload[..a], &mut got);
        m.scan_chunk_into(&mut state, &payload[a..b], &mut got);
        m.scan_chunk_into(&mut state, &payload[b..], &mut got);
        assert_eq!(got, whole, "splits at {a}/{b} diverged");
    }
}

/// Nocase sets: the fold is baked into the anchor tables, so mixed-case
/// payloads must classify identically to the folded scan.
#[test]
fn nocase_prefilter_equivalence() {
    let set = PatternSet::new_nocase(["Attack", "GET /", "hers"]).unwrap();
    for horizon in 0..=AnchorSet::MAX_HORIZON {
        let (_, reduced, compiled) = build(&set, horizon);
        let on = CompiledMatcher::new(&compiled, &set);
        let dtp = DtpMatcher::new(&reduced, &set);
        for payload in [
            &b"ATTACK at dawn: get / HeRs aTtAcK"[..],
            b"zzzzZZZZzzzzZZZZattackZZZZ",
            b"GeT /index gEt hers HERS",
        ] {
            assert_eq!(on.find_all(payload), dtp.find_all(payload), "h={horizon}");
        }
    }
}

/// The flow-table ingest path with a prefiltered sharded matcher:
/// interleaved flows, per-flow results equal whole-payload scans.
#[test]
fn flow_table_ingest_with_prefiltered_sharded_matcher() {
    let master = master_ruleset();
    let set = extract_preserving(&master, 80, 3);
    let sharded = ShardedMatcher::build(&set, &ShardedConfig::with_cores(2)).unwrap();
    assert!(sharded.prefilter());
    let mut gen = TrafficGenerator::new(21);
    let flows: Vec<Vec<u8>> = (0..4)
        .map(|i| gen.infected_packet(2048, &set, 2 + i).payload)
        .collect();
    let segmented: Vec<Vec<&[u8]>> = flows.iter().map(|f| f.chunks(97).collect()).collect();
    let counts: Vec<usize> = segmented.iter().map(Vec::len).collect();
    let schedule = gen.interleave_schedule(&counts);
    let mut table = FlowTable::new(64, sharded.flow_state());
    let mut scratch = sharded.scratch();
    let mut cursors = vec![0usize; flows.len()];
    let mut per_flow: Vec<Vec<Match>> = vec![Vec::new(); flows.len()];
    let mut alerts = Vec::new();
    for &f in &schedule {
        let packet = FlowPacket {
            key: FlowKey(f as u128 + 1),
            payload: segmented[f][cursors[f]],
        };
        cursors[f] += 1;
        table.ingest_batch(
            [packet],
            |state, chunk, out| sharded.scan_chunk_into(state, chunk, &mut scratch, out),
            &mut alerts,
        );
        per_flow[f].extend(alerts.iter().map(|a| a.matched));
    }
    let mut plain = sharded.scratch();
    for (f, flow) in flows.iter().enumerate() {
        let mut want = Vec::new();
        sharded.scan_into(flow, &mut plain, &mut want);
        assert_eq!(per_flow[f], want, "flow {f} diverged through the table");
    }
}

fn mixed_patterns() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(
        proptest::collection::vec(
            prop_oneof![Just(b'a'), Just(b'b'), Just(b'c'), Just(b'z')],
            1..6,
        ),
        1..8,
    )
}

/// Payload alphabet wider than the patterns': 'x'..'z' runs are mostly
/// skippable, so SWAR windows, lane walks and stepper excursions all
/// exercise; 'a'..'c' regions stress lane exits.
fn mixed_payload(len: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(
        prop_oneof![
            Just(b'z'),
            Just(b'z'),
            Just(b'z'),
            Just(b'a'),
            Just(b'a'),
            Just(b'b'),
            Just(b'c'),
            Just(b'x'),
        ],
        0..len,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any packetization, any horizon: prefilter-on streaming equals the
    /// naive whole-payload scan for compiled and sharded matchers.
    #[test]
    fn prefilter_streaming_equivalence(
        patterns in mixed_patterns(),
        payload in mixed_payload(160),
        raw_cuts in proptest::collection::vec(any::<prop::sample::Index>(), 0..24),
        horizon in 0..3u8,
    ) {
        let Ok(set) = PatternSet::new(&patterns) else { return Ok(()); };
        let naive = NaiveMatcher::new(&set).find_all(&payload);
        let mut cuts: Vec<usize> = if payload.len() < 2 {
            Vec::new()
        } else {
            raw_cuts.iter().map(|i| 1 + i.index(payload.len() - 1)).collect()
        };
        cuts.sort_unstable();
        cuts.dedup();
        let segments = chop(&payload, &cuts);

        let (_, _, compiled) = build(&set, horizon);
        let m = CompiledMatcher::new(&compiled, &set);
        prop_assert!(m.prefilter());
        let mut state = ScanState::fresh();
        let mut got = Vec::new();
        for seg in &segments {
            m.scan_chunk_into(&mut state, seg, &mut got);
        }
        prop_assert_eq!(&got, &naive, "compiled h={} cuts {:?}", horizon, cuts);
        prop_assert_eq!(m.find_all(&payload), naive.clone());
        prop_assert_eq!(m.is_match(&payload), !naive.is_empty());

        let mut config = ShardedConfig::with_cores(2);
        config.anchor_horizon = horizon;
        let sharded = ShardedMatcher::build(&set, &config).unwrap();
        let mut flow = sharded.flow_state();
        let mut scratch = sharded.scratch();
        let mut got = Vec::new();
        for seg in &segments {
            sharded.scan_chunk_into(&mut flow, seg, &mut scratch, &mut got);
        }
        prop_assert_eq!(&got, &naive, "sharded h={} cuts {:?}", horizon, cuts);
    }

    /// Suspended states are interchangeable between the prefiltered and
    /// plain scans: alternating per chunk must still equal the whole.
    #[test]
    fn alternating_prefilter_resume(
        patterns in mixed_patterns(),
        payload in mixed_payload(120),
        raw_cuts in proptest::collection::vec(any::<prop::sample::Index>(), 0..12),
    ) {
        let Ok(set) = PatternSet::new(&patterns) else { return Ok(()); };
        let naive = NaiveMatcher::new(&set).find_all(&payload);
        let mut cuts: Vec<usize> = if payload.len() < 2 {
            Vec::new()
        } else {
            raw_cuts.iter().map(|i| 1 + i.index(payload.len() - 1)).collect()
        };
        cuts.sort_unstable();
        cuts.dedup();
        let segments = chop(&payload, &cuts);
        let (_, _, compiled) = build(&set, AnchorSet::DEFAULT_HORIZON);
        let on = CompiledMatcher::new(&compiled, &set);
        let off = CompiledMatcher::new(&compiled, &set).with_prefilter(false);
        let mut state = ScanState::fresh();
        let mut got = Vec::new();
        for (i, seg) in segments.iter().enumerate() {
            if i % 2 == 0 {
                on.scan_chunk_into(&mut state, seg, &mut got);
            } else {
                off.scan_chunk_into(&mut state, seg, &mut got);
            }
        }
        prop_assert_eq!(got, naive, "alternating diverged at {:?}", cuts);
    }
}
