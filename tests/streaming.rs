//! Streaming equivalence suite: the defining property of the resumable
//! scan core.
//!
//! For every matcher with the resumable API (`CompiledMatcher`,
//! `ShardedMatcher`, the reference `DtpMatcher`, and the `DfaMatcher` /
//! `NfaMatcher` baselines), scanning any payload split at **arbitrary**
//! chunk boundaries through one `ScanState` must report exactly the same
//! `Match`es — same pattern ids, same absolute end offsets — as a single
//! whole-payload scan. That includes occurrences straddling chunk
//! boundaries and DTP depth-2/3 default transitions whose history bytes
//! live in the previous chunk.
//!
//! Also covered: the `FlowTable` pipeline with interleaved flows (flow
//! isolation + equivalence when no eviction occurs, graceful and *only*
//! boundary-local loss when state is evicted mid-flow).

use dpi_accel::automaton::NaiveMatcher;
use dpi_accel::core::{FlowKey, FlowPacket, FlowTable};
use dpi_accel::prelude::*;
use dpi_accel::rulesets::{chop, extract_preserving, master_ruleset, ChopProfile};
use proptest::prelude::*;

/// Compiles `set` with the full default fast-path stack: anchors at the
/// default horizon plus a pair layer with region rows and two hot rows.
fn compiled_with_pairs(set: &PatternSet) -> CompiledAutomaton {
    let dfa = Dfa::build(set);
    let reduced = ReducedAutomaton::reduce(&dfa, DtpConfig::PAPER);
    let anchors = AnchorSet::build(&dfa, set, AnchorSet::DEFAULT_HORIZON);
    let pairs = PairTable::build_with_region(
        &dfa,
        set,
        &anchors,
        PairTable::REGION_ROW_BYTES + 2 * PairTable::ROW_BYTES,
    );
    CompiledAutomaton::compile_with_prefilter(&reduced, anchors).with_pair_table(pairs)
}

/// Splits `payload` at the (possibly ragged) cut offsets drawn from
/// `cuts` indices — the random packetization used by the properties.
fn cuts_from_indices(len: usize, raw: &[prop::sample::Index]) -> Vec<usize> {
    if len < 2 {
        return Vec::new();
    }
    let mut cuts: Vec<usize> = raw.iter().map(|i| 1 + i.index(len - 1)).collect();
    cuts.sort_unstable();
    cuts.dedup();
    cuts
}

/// Scans `payload` chunk-by-chunk through every resumable matcher and
/// asserts each equals the whole-payload reference.
fn streaming_agrees(patterns: Vec<Vec<u8>>, payload: Vec<u8>, cuts: Vec<usize>) {
    let Ok(set) = PatternSet::new(&patterns) else {
        return; // duplicates — not this suite's concern
    };
    let naive = NaiveMatcher::new(&set).find_all(&payload);
    let segments = chop(&payload, &cuts);

    let dfa = Dfa::build(&set);
    let reduced = ReducedAutomaton::reduce(&dfa, DtpConfig::PAPER);
    let compiled = CompiledAutomaton::compile(&reduced);

    // DFA baseline.
    let m = DfaMatcher::new(&dfa, &set);
    let mut state = ScanState::fresh();
    let mut got = Vec::new();
    for seg in &segments {
        m.scan_chunk_into(&mut state, seg, &mut got);
    }
    assert_eq!(got, naive, "dfa streaming diverged at cuts {cuts:?}");

    // NFA baseline.
    let nfa = Nfa::build(&set);
    let m = NfaMatcher::new(&nfa, &set);
    let mut state = ScanState::fresh();
    let mut got = Vec::new();
    for seg in &segments {
        m.scan_chunk_into(&mut state, seg, &mut got);
    }
    assert_eq!(got, naive, "nfa streaming diverged at cuts {cuts:?}");

    // Reference DTP matcher (history across boundaries).
    let dtp = DtpMatcher::new(&reduced, &set);
    let mut state = ScanState::fresh();
    let mut got = Vec::new();
    for seg in &segments {
        dtp.scan_chunk_into(&mut state, seg, &mut got);
    }
    assert_eq!(got, naive, "dtp streaming diverged at cuts {cuts:?}");
    assert_eq!(state.offset, payload.len() as u64);

    // Compiled fast path.
    let fast = CompiledMatcher::new(&compiled, &set);
    let mut state = ScanState::fresh();
    let mut got = Vec::new();
    for seg in &segments {
        fast.scan_chunk_into(&mut state, seg, &mut got);
    }
    assert_eq!(got, naive, "compiled streaming diverged at cuts {cuts:?}");

    // Stride-2 pair lane (with the anchor lane, and alone): pair
    // alignment is taken from wherever a chunk resumes, so every cut —
    // odd offsets included — exercises the suspend/resume path.
    let paired = compiled_with_pairs(&set);
    for (name, m) in [
        ("lane+pairs", CompiledMatcher::new(&paired, &set)),
        (
            "pairs-only",
            CompiledMatcher::new(&paired, &set).with_prefilter(false),
        ),
    ] {
        let mut state = ScanState::fresh();
        let mut got = Vec::new();
        for seg in &segments {
            m.scan_chunk_into(&mut state, seg, &mut got);
        }
        assert_eq!(got, naive, "{name} streaming diverged at cuts {cuts:?}");
    }

    // A suspended compiled state must resume identically under the
    // reference matcher and vice versa (states are interchangeable
    // across implementations of the same automaton).
    if segments.len() >= 2 {
        let mut state = ScanState::fresh();
        let mut got = Vec::new();
        for (i, seg) in segments.iter().enumerate() {
            if i % 2 == 0 {
                fast.scan_chunk_into(&mut state, seg, &mut got);
            } else {
                dtp.scan_chunk_into(&mut state, seg, &mut got);
            }
        }
        assert_eq!(got, naive, "alternating matchers diverged at {cuts:?}");
    }

    // Sharded engine, a couple of core counts.
    for cores in [1usize, 3] {
        let sharded = ShardedMatcher::build(&set, &ShardedConfig::with_cores(cores))
            .expect("tiny sets fit the default budget");
        let mut scratch = sharded.scratch();
        let mut flow = sharded.flow_state();
        let mut got = Vec::new();
        for seg in &segments {
            sharded.scan_chunk_into(&mut flow, seg, &mut scratch, &mut got);
        }
        assert_eq!(
            got, naive,
            "sharded({cores}) streaming diverged at cuts {cuts:?}"
        );
    }
}

fn dense_patterns() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(
        proptest::collection::vec(prop_oneof![Just(b'a'), Just(b'b'), Just(b'c')], 1..6),
        1..8,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any packetization of any dense-alphabet payload is equivalent to
    /// the whole-payload scan, across every resumable matcher.
    #[test]
    fn random_packetization_equivalence(
        patterns in dense_patterns(),
        payload in proptest::collection::vec(prop_oneof![Just(b'a'), Just(b'b'), Just(b'c')], 0..160),
        raw_cuts in proptest::collection::vec(any::<prop::sample::Index>(), 0..24),
    ) {
        let cuts = cuts_from_indices(payload.len(), &raw_cuts);
        streaming_agrees(patterns, payload, cuts);
    }

    /// Payloads built by concatenating the patterns themselves, split at
    /// every position in turn — matches are guaranteed and most splits
    /// land mid-pattern.
    #[test]
    fn mid_pattern_boundaries_equivalence(
        patterns in dense_patterns(),
        order in proptest::collection::vec(any::<prop::sample::Index>(), 1..5),
    ) {
        let mut payload = Vec::new();
        for idx in &order {
            payload.extend_from_slice(&patterns[idx.index(patterns.len())]);
        }
        for cut in 1..payload.len() {
            streaming_agrees(patterns.clone(), payload.clone(), vec![cut]);
        }
    }

    /// The degenerate 1-byte packetization (every boundary at once).
    #[test]
    fn single_byte_packetization_equivalence(
        patterns in dense_patterns(),
        payload in proptest::collection::vec(prop_oneof![Just(b'a'), Just(b'b'), Just(b'c')], 0..80),
    ) {
        let cuts: Vec<usize> = (1..payload.len()).collect();
        streaming_agrees(patterns, payload, cuts);
    }

    /// Interleaved flows through a FlowTable big enough to hold them:
    /// per-flow results must equal each flow's whole-payload scan — no
    /// state may leak between flows however their packets interleave.
    #[test]
    fn flow_table_isolation_and_equivalence(
        patterns in dense_patterns(),
        flows in proptest::collection::vec(
            proptest::collection::vec(prop_oneof![Just(b'a'), Just(b'b'), Just(b'c')], 0..60),
            1..5,
        ),
        raw_cuts in proptest::collection::vec(any::<prop::sample::Index>(), 0..12),
        shuffle in proptest::collection::vec(any::<prop::sample::Index>(), 0..24),
    ) {
        let Ok(set) = PatternSet::new(&patterns) else { return Ok(()); };
        let dfa = Dfa::build(&set);
        let reduced = ReducedAutomaton::reduce(&dfa, DtpConfig::PAPER);
        let compiled = CompiledAutomaton::compile(&reduced);
        let matcher = CompiledMatcher::new(&compiled, &set);

        // Chop each flow at random boundaries.
        let segmented: Vec<Vec<&[u8]>> = flows
            .iter()
            .enumerate()
            .map(|(i, f)| {
                let slice = if i < raw_cuts.len() { &raw_cuts[i..] } else { &[][..] };
                chop(f, &cuts_from_indices(f.len(), slice))
            })
            .collect();
        // Deterministic interleave driven by the shuffle indices: pick a
        // flow with segments remaining per step.
        let mut cursors = vec![0usize; segmented.len()];
        let mut arrival: Vec<usize> = Vec::new();
        let total: usize = segmented.iter().map(Vec::len).sum();
        let mut s = 0usize;
        while arrival.len() < total {
            let live: Vec<usize> = (0..segmented.len())
                .filter(|&f| cursors[f] < segmented[f].len())
                .collect();
            let pick = if shuffle.is_empty() {
                0
            } else {
                shuffle[s % shuffle.len()].index(live.len())
            };
            s += 1;
            let flow = live[pick];
            cursors[flow] += 1;
            arrival.push(flow);
        }

        let mut table = FlowTable::new(64, ScanState::fresh());
        let mut cursors = vec![0usize; segmented.len()];
        let mut per_flow: Vec<Vec<Match>> = vec![Vec::new(); segmented.len()];
        let mut alerts = Vec::new();
        for &flow in &arrival {
            let packet = FlowPacket {
                key: FlowKey(flow as u128),
                payload: segmented[flow][cursors[flow]],
            };
            cursors[flow] += 1;
            table.ingest_batch(
                [packet],
                |state, chunk, out| matcher.scan_chunk_into(state, chunk, out),
                &mut alerts,
            );
            per_flow[flow].extend(alerts.iter().map(|f| f.matched));
        }
        prop_assert_eq!(table.stats().evictions, 0, "table was sized to hold all flows");
        for (flow, f) in flows.iter().enumerate() {
            let want = NaiveMatcher::new(&set).find_all(f);
            prop_assert_eq!(&per_flow[flow], &want, "flow {} diverged", flow);
        }
    }
}

/// Eviction mid-flow: state loss is bounded to occurrences straddling
/// the eviction point. Matches wholly inside packets after re-insertion
/// are still found; matches wholly before the eviction were already
/// reported.
#[test]
fn eviction_mid_flow_is_boundary_local() {
    let set = PatternSet::new(["he", "she", "his", "hers"]).unwrap();
    let dfa = Dfa::build(&set);
    let reduced = ReducedAutomaton::reduce(&dfa, DtpConfig::PAPER);
    let compiled = CompiledAutomaton::compile(&reduced);
    let matcher = CompiledMatcher::new(&compiled, &set);

    // Capacity-1 table: two interleaved flows evict each other on every
    // alternation.
    let mut table = FlowTable::with_ways(1, 1, ScanState::fresh());
    let (a, b) = (FlowKey(1), FlowKey(2));
    let packets = [
        FlowPacket { key: a, payload: b"ushe" }, // she/he complete at ..4
        FlowPacket { key: b, payload: b"hi" },   // evicts a
        FlowPacket { key: a, payload: b"rs" },   // "hers" straddled → lost
        FlowPacket { key: b, payload: b"s" },    // evicts a again; "his" straddled → lost
        FlowPacket { key: a, payload: b"hers" }, // whole within packet → found
    ];
    let mut alerts = Vec::new();
    let mut all = Vec::new();
    for p in packets {
        table.ingest_batch(
            [p],
            |state, chunk, out| matcher.scan_chunk_into(state, chunk, out),
            &mut alerts,
        );
        all.extend_from_slice(&alerts);
    }
    let a_pats: Vec<&[u8]> = all
        .iter()
        .filter(|f| f.key == a)
        .map(|f| set.pattern(f.matched.pattern))
        .collect();
    // Flow a: she+he from packet 1; packet 3 finds nothing (state lost);
    // packet 5 restarts and finds he+hers inside itself.
    assert_eq!(a_pats, vec![&b"he"[..], b"she", b"he", b"hers"]);
    // Flow b: "hi" then "s" — "his" straddles the eviction and is lost.
    assert!(all.iter().all(|f| f.key != b));
    assert!(table.stats().evictions >= 3);

    // Same traffic through a table with room for both flows: nothing is
    // lost, including the straddlers.
    let mut table = FlowTable::new(16, ScanState::fresh());
    let mut all = Vec::new();
    for p in packets {
        table.ingest_batch(
            [p],
            |state, chunk, out| matcher.scan_chunk_into(state, chunk, out),
            &mut alerts,
        );
        all.extend_from_slice(&alerts);
    }
    let a_matches: Vec<Match> = all.iter().filter(|f| f.key == a).map(|f| f.matched).collect();
    assert_eq!(a_matches, matcher.find_all(b"ushershers"));
    let b_matches: Vec<Match> = all.iter().filter(|f| f.key == b).map(|f| f.matched).collect();
    assert_eq!(b_matches, matcher.find_all(b"his"));
    assert_eq!(table.stats().evictions, 0);
}

/// End-to-end on realistic workload: a ruleset slice, generated infected
/// flows chopped adversarially (every injected occurrence cut
/// mid-pattern), sharded flow-batch scanning — every injected occurrence
/// must be reported at its exact stream offset.
#[test]
fn adversarial_packetization_on_generated_traffic() {
    let set = extract_preserving(&master_ruleset(), 150, 0x57E);
    let sharded = ShardedMatcher::build(&set, &ShardedConfig::with_cores(2)).unwrap();
    let dfa = Dfa::build(&set);
    let reduced = ReducedAutomaton::reduce(&dfa, DtpConfig::PAPER);
    let compiled = CompiledAutomaton::compile(&reduced);
    let whole = CompiledMatcher::new(&compiled, &set);

    let mut gen = TrafficGenerator::new(0xBEEF);
    let mut scratch = sharded.scratch();
    for profile in [
        ChopProfile::MidPattern { mtu: 256 },
        ChopProfile::SingleByte,
        ChopProfile::Mtu(1500),
        ChopProfile::Random { min: 1, max: 97 },
    ] {
        let packet = gen.infected_packet(2048, &set, 5);
        let cuts = gen.chop_points(&packet, &set, profile);
        let segments = chop(&packet.payload, &cuts);
        let mut flow = sharded.flow_state();
        let mut got = Vec::new();
        for seg in &segments {
            sharded.scan_chunk_into(&mut flow, seg, &mut scratch, &mut got);
        }
        let want = whole.find_all(&packet.payload);
        assert_eq!(got, want, "{profile:?} diverged from whole-payload scan");
        for &(id, end) in &packet.injected {
            assert!(
                got.iter().any(|m| m.pattern == id && m.end == end),
                "{profile:?} missed injected {id:?} at ..{end}"
            );
        }
    }
}
