//! Hardware-image integrity: packing invariants, bit-level round trips and
//! capacity errors, across generated rulesets and adversarial shapes.

use dpi_accel::hw::{
    HwError, HwImage, PackError, StateRecord, MATCH_MEM_WORDS, WORD_BITS,
};
use dpi_accel::prelude::*;
use dpi_accel::rulesets::{extract_preserving, master_ruleset};
use proptest::prelude::*;

fn build_image(patterns: &[&str]) -> (PatternSet, ReducedAutomaton, HwImage) {
    let set = PatternSet::new(patterns).unwrap();
    let dfa = Dfa::build(&set);
    let reduced = ReducedAutomaton::reduce(&dfa, DtpConfig::PAPER);
    let image = HwImage::build(&reduced).unwrap();
    (set, reduced, image)
}

#[test]
fn every_state_decodes_to_its_reduced_form() {
    let set = extract_preserving(&master_ruleset(), 120, 0xCAFE);
    let dfa = Dfa::build(&set);
    let reduced = ReducedAutomaton::reduce(&dfa, DtpConfig::PAPER);
    let image = HwImage::build(&reduced).unwrap();
    for s in reduced.state_ids() {
        let placement = image.layout().placement(s.index());
        let record: StateRecord = image.decode_state(placement);
        let stored = reduced.stored(s);
        assert_eq!(record.pointers.len(), stored.len(), "{s}");
        for (ptr, &(byte, target)) in record.pointers.iter().zip(stored) {
            assert_eq!(ptr.byte, byte);
            assert_eq!(ptr.target, image.layout().placement(target.index()));
        }
        assert_eq!(
            record.match_field.match_addr.is_some(),
            !reduced.output(s).is_empty()
        );
        if let Some(addr) = record.match_field.match_addr {
            let ids = image.match_mem().read_sequence(addr);
            assert_eq!(ids, reduced.output(s), "match list of {s}");
        }
    }
}

#[test]
fn placements_never_overlap() {
    let set = extract_preserving(&master_ruleset(), 200, 0xBEEF);
    let dfa = Dfa::build(&set);
    let reduced = ReducedAutomaton::reduce(&dfa, DtpConfig::PAPER);
    let image = HwImage::build(&reduced).unwrap();
    let mut used: std::collections::HashMap<u16, u16> = Default::default();
    for s in reduced.state_ids() {
        let p = image.layout().placement(s.index());
        let slots = p.ty.class().slots();
        let mask = ((1u16 << slots) - 1) << p.ty.start_slot();
        let w = used.entry(p.addr).or_insert(0);
        assert_eq!(*w & mask, 0, "overlap in word {}", p.addr);
        *w |= mask;
        assert!(p.ty.bit_offset() + p.ty.width_bits() <= WORD_BITS);
    }
}

#[test]
fn fill_ratio_honors_no_gaps_claim() {
    // §IV.A: states are "carefully assigned ... to insure no gaps of
    // unused memory". Realistic rulesets must pack densely.
    let set = extract_preserving(&master_ruleset(), 300, 0xF177);
    let dfa = Dfa::build(&set);
    let reduced = ReducedAutomaton::reduce(&dfa, DtpConfig::PAPER);
    let image = HwImage::build(&reduced).unwrap();
    assert!(
        image.layout().fill_ratio() > 0.9,
        "fill ratio {}",
        image.layout().fill_ratio()
    );
}

#[test]
fn memory_stats_are_internally_consistent() {
    let (_, _, image) = build_image(&["he", "she", "his", "hers"]);
    let stats = image.stats();
    assert_eq!(stats.state_bits, stats.state_words * WORD_BITS);
    assert!(stats.match_words_used <= MATCH_MEM_WORDS);
    assert_eq!(stats.match_bits, MATCH_MEM_WORDS * 27);
    assert!(stats.total_bytes() >= stats.state_bits / 8);
}

#[test]
fn capacity_error_is_informative() {
    let (_, reduced, _) = build_image(&["alpha", "beta", "gamma"]);
    match HwImage::build_with_capacity(&reduced, 1) {
        Err(HwError::Pack(PackError::AddressSpaceExceeded { needed, available })) => {
            assert!(needed > 1);
            assert_eq!(available, 1);
        }
        other => panic!("expected AddressSpaceExceeded, got {other:?}"),
    }
}

#[test]
fn too_many_patterns_rejected_via_string_numbers() {
    // 13-bit string numbers cap patterns at 8191 usable ids; a synthetic
    // overflow must surface as a MatchMem error, not silent truncation.
    let patterns: Vec<String> = (0..8200).map(|i| format!("p{i:05}")).collect();
    let set = PatternSet::new(&patterns).unwrap();
    let dfa = Dfa::build(&set);
    let reduced = ReducedAutomaton::reduce(&dfa, DtpConfig::PAPER);
    match HwImage::build(&reduced) {
        Err(HwError::MatchMem(_)) | Err(HwError::Pack(_)) => {}
        Ok(_) => panic!("8200 patterns must not fit a single block"),
        Err(e) => panic!("unexpected error {e}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_small_sets_roundtrip(
        patterns in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 1..10),
            1..10,
        ),
    ) {
        let Ok(set) = PatternSet::new(&patterns) else { return Ok(()); };
        let dfa = Dfa::build(&set);
        let reduced = ReducedAutomaton::reduce(&dfa, DtpConfig::PAPER);
        let Ok(image) = HwImage::build(&reduced) else { return Ok(()); };
        // Start state pinned; all placements decodable.
        prop_assert_eq!(image.start().addr, 0);
        for s in reduced.state_ids() {
            let rec = image.decode_state(image.layout().placement(s.index()));
            prop_assert_eq!(rec.pointers.len(), reduced.stored(s).len());
        }
    }

    #[test]
    fn word_bits_roundtrip(
        offset in 0usize..300,
        len in 1usize..25,
        value in any::<u64>(),
    ) {
        use dpi_accel::hw::Word324;
        let len = len.min(WORD_BITS - offset).min(24);
        let value = value & ((1u64 << len) - 1);
        let mut w = Word324::ZERO;
        w.set_bits(offset, len, value);
        prop_assert_eq!(w.bits(offset, len), value);
        let bytes = w.to_bytes();
        prop_assert_eq!(Word324::from_bytes(&bytes), w);
    }
}
