//! Cross-implementation differential tests: every matcher in the workspace
//! must report exactly the same occurrences on the same input.
//!
//! The chain under test (weakest to strongest claim):
//! naive reference → classic NFA → full move-function DFA → DTP-reduced
//! automaton (the paper's contribution) → compiled flat-memory engine →
//! bit-packed hardware image → the Tuck et al. baselines. The DTP and
//! compiled matchers are additionally required to be *state-equivalent*
//! to the DFA, byte for byte, which is the precise correctness claim
//! behind the paper's "no wasted transitions" property.

use dpi_accel::baselines::{BitmapAc, BitmapMatcher, PathAc, PathMatcher};
use dpi_accel::prelude::*;
use dpi_accel::automaton::NaiveMatcher;
use dpi_accel::hw::{HwImage, HwMatcher};
use dpi_accel::core::{ShardedConfig, ShardedMatcher};
use proptest::prelude::*;

/// Strategy: small sets of short patterns over a tiny alphabet, so fail
/// chains, suffix overlaps and default-transition collisions are dense.
fn dense_patterns() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(
        proptest::collection::vec(prop_oneof![Just(b'a'), Just(b'b'), Just(b'c')], 1..6),
        1..8,
    )
}

/// Strategy: realistic byte-diverse patterns.
fn diverse_patterns() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..12), 1..12)
}

fn all_matchers_agree(patterns: Vec<Vec<u8>>, haystack: Vec<u8>) {
    let Ok(set) = PatternSet::new(&patterns) else {
        return; // duplicates — not this test's concern
    };
    let naive = NaiveMatcher::new(&set).find_all(&haystack);

    let nfa = Nfa::build(&set);
    prop_assert_eq_plain(&naive, &NfaMatcher::new(&nfa, &set).find_all(&haystack), "nfa");

    let dfa = Dfa::build(&set);
    prop_assert_eq_plain(&naive, &DfaMatcher::new(&dfa, &set).find_all(&haystack), "dfa");

    let reduced = ReducedAutomaton::reduce(&dfa, DtpConfig::PAPER);
    assert!(reduced.verify_against(&dfa).is_none(), "reduction mismatch");
    let dtp = DtpMatcher::new(&reduced, &set);
    prop_assert_eq_plain(&naive, &dtp.find_all(&haystack), "dtp");

    let compiled = CompiledAutomaton::compile(&reduced);
    let fast = CompiledMatcher::new(&compiled, &set);
    prop_assert_eq_plain(&naive, &fast.find_all(&haystack), "compiled");

    // State-trace equivalence, not just match equivalence.
    let (_, dfa_trace) = DfaMatcher::new(&dfa, &set).scan_with_trace(&haystack);
    let (_, dtp_trace) = dtp.scan_with_trace(&haystack);
    assert_eq!(dfa_trace, dtp_trace, "state traces diverged");
    let (_, fast_trace) = fast.scan_with_trace(&haystack);
    assert_eq!(dfa_trace, fast_trace, "compiled state trace diverged");

    // The allocation-free entry point must agree with find_all.
    let mut reused = Vec::new();
    fast.scan_into(&haystack, &mut reused);
    assert_eq!(reused, naive, "scan_into disagrees with find_all");

    if let Ok(image) = HwImage::build(&reduced) {
        prop_assert_eq_plain(
            &naive,
            &HwMatcher::new(&image, &set).find_all(&haystack),
            "hw image",
        );
    }

    let bitmap = BitmapAc::build(&set);
    prop_assert_eq_plain(
        &naive,
        &BitmapMatcher::new(&bitmap, &set).find_all(&haystack),
        "bitmap",
    );
    let path = PathAc::build(&set);
    prop_assert_eq_plain(
        &naive,
        &PathMatcher::new(&path, &set).find_all(&haystack),
        "path",
    );
}

fn prop_assert_eq_plain(want: &[Match], got: &[Match], who: &str) {
    assert_eq!(want, got, "{who} disagrees with the naive reference");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn dense_alphabet_equivalence(
        patterns in dense_patterns(),
        haystack in proptest::collection::vec(prop_oneof![Just(b'a'), Just(b'b'), Just(b'c')], 0..200),
    ) {
        all_matchers_agree(patterns, haystack);
    }

    #[test]
    fn diverse_bytes_equivalence(
        patterns in diverse_patterns(),
        haystack in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        all_matchers_agree(patterns, haystack);
    }

    #[test]
    fn haystack_containing_patterns_equivalence(
        patterns in dense_patterns(),
        glue in proptest::collection::vec(prop_oneof![Just(b'a'), Just(b'x')], 0..16),
        order in proptest::collection::vec(any::<prop::sample::Index>(), 0..6),
    ) {
        // Build a haystack by concatenating actual patterns with glue, so
        // matches are guaranteed to occur (random haystacks rarely match).
        let mut haystack = Vec::new();
        for idx in &order {
            haystack.extend_from_slice(&patterns[idx.index(patterns.len())]);
            haystack.extend_from_slice(&glue);
        }
        all_matchers_agree(patterns, haystack);
    }

    #[test]
    fn every_dtp_config_is_equivalent(
        patterns in dense_patterns(),
        haystack in proptest::collection::vec(prop_oneof![Just(b'a'), Just(b'b'), Just(b'c')], 0..120),
        k2 in 0usize..6,
        k3 in 0usize..3,
        depth1 in any::<bool>(),
    ) {
        let Ok(set) = PatternSet::new(&patterns) else { return Ok(()); };
        let dfa = Dfa::build(&set);
        let cfg = DtpConfig { depth1, k2, k3 };
        let reduced = ReducedAutomaton::reduce(&dfa, cfg);
        prop_assert!(reduced.verify_against(&dfa).is_none());
        let naive = NaiveMatcher::new(&set).find_all(&haystack);
        prop_assert_eq!(&naive, &DtpMatcher::new(&reduced, &set).find_all(&haystack));
        // The compiled engine must agree under every configuration too —
        // including degenerate ones that exercise its dense-row path.
        let compiled = CompiledAutomaton::compile(&reduced);
        prop_assert_eq!(&naive, &CompiledMatcher::new(&compiled, &set).find_all(&haystack));
    }

    #[test]
    fn batch_scanner_agrees_with_sequential(
        patterns in dense_patterns(),
        packets in proptest::collection::vec(
            proptest::collection::vec(prop_oneof![Just(b'a'), Just(b'b'), Just(b'c')], 0..60),
            1..10,
        ),
        lanes in 1usize..9,
    ) {
        // Interleaving packets through the batch scanner must be
        // invisible: per-packet matches equal the sequential scan's.
        let Ok(set) = PatternSet::new(&patterns) else { return Ok(()); };
        let dfa = Dfa::build(&set);
        let reduced = ReducedAutomaton::reduce(&dfa, DtpConfig::PAPER);
        let compiled = CompiledAutomaton::compile(&reduced);
        let matcher = CompiledMatcher::new(&compiled, &set);
        let scanner = BatchScanner::new(&compiled, &set, lanes);
        let batched = scanner.scan_batch(&packets);
        prop_assert_eq!(batched.len(), packets.len());
        for (packet, got) in packets.iter().zip(&batched) {
            let want = matcher.find_all(packet);
            prop_assert_eq!(got, &want, "lane divergence at lanes={}", lanes);
        }
    }

    #[test]
    fn sharded_matcher_agrees_with_sequential(
        patterns in dense_patterns(),
        haystack in proptest::collection::vec(prop_oneof![Just(b'a'), Just(b'b'), Just(b'c')], 0..150),
        cores in 1usize..5,
    ) {
        // Splitting the pattern set across per-core automata must be
        // invisible: global ids, canonical order, identical matches.
        let Ok(set) = PatternSet::new(&patterns) else { return Ok(()); };
        let sharded = ShardedMatcher::build(&set, &ShardedConfig::with_cores(cores))
            .expect("tiny sets fit the default shard budget");
        let naive = NaiveMatcher::new(&set).find_all(&haystack);
        prop_assert_eq!(
            sharded.find_all(&haystack),
            naive,
            "sharded({}) diverged at cores={}",
            sharded.shard_count(),
            cores
        );
    }

    #[test]
    fn per_packet_isolation(
        patterns in dense_patterns(),
        packets in proptest::collection::vec(
            proptest::collection::vec(prop_oneof![Just(b'a'), Just(b'b'), Just(b'c')], 0..40),
            1..5,
        ),
    ) {
        // Scanning packets one at a time must equal scanning each from a
        // fresh matcher: no state or history may leak between packets.
        let Ok(set) = PatternSet::new(&patterns) else { return Ok(()); };
        let dfa = Dfa::build(&set);
        let reduced = ReducedAutomaton::reduce(&dfa, DtpConfig::PAPER);
        let dtp = DtpMatcher::new(&reduced, &set);
        for p in &packets {
            let naive = NaiveMatcher::new(&set).find_all(p);
            prop_assert_eq!(naive, dtp.find_all(p));
        }
    }
}

#[test]
fn figure1_canonical_results() {
    let set = PatternSet::new(["he", "she", "his", "hers"]).unwrap();
    let dfa = Dfa::build(&set);
    let reduced = ReducedAutomaton::reduce(&dfa, DtpConfig::PAPER);
    let image = HwImage::build(&reduced).unwrap();
    let text = b"ushers and she said his hers";
    let want = NaiveMatcher::new(&set).find_all(text);
    assert_eq!(want.len(), 8);
    assert_eq!(DtpMatcher::new(&reduced, &set).find_all(text), want);
    assert_eq!(HwMatcher::new(&image, &set).find_all(text), want);
}

#[test]
fn generated_ruleset_equivalence_medium() {
    // One medium-size end-to-end differential on a realistic ruleset.
    let set = dpi_accel::rulesets::extract_preserving(
        &dpi_accel::rulesets::master_ruleset(),
        150,
        0x5EED,
    );
    let dfa = Dfa::build(&set);
    let reduced = ReducedAutomaton::reduce(&dfa, DtpConfig::PAPER);
    assert!(reduced.verify_against(&dfa).is_none());
    let image = HwImage::build(&reduced).unwrap();
    let mut gen = TrafficGenerator::new(77);
    for _ in 0..4 {
        let packet = gen.infected_packet(2048, &set, 6);
        let want = NaiveMatcher::new(&set).find_all(&packet.payload);
        assert_eq!(DtpMatcher::new(&reduced, &set).find_all(&packet.payload), want);
        assert_eq!(
            HwMatcher::new(&image, &set).find_all(&packet.payload),
            want
        );
        for &(id, end) in &packet.injected {
            assert!(want.iter().any(|m| m.pattern == id && m.end == end));
        }
    }
}

#[test]
fn nocase_equivalence_through_the_stack() {
    let set = PatternSet::new_nocase(["Attack", "EXPLOIT", "rootKIT"]).unwrap();
    let dfa = Dfa::build(&set);
    let reduced = ReducedAutomaton::reduce(&dfa, DtpConfig::PAPER);
    let image = HwImage::build(&reduced).unwrap();
    let text = b"ATTACK exploit ROOTkit attack";
    let want = NaiveMatcher::new(&set).find_all(text);
    assert_eq!(want.len(), 4);
    assert_eq!(DtpMatcher::new(&reduced, &set).find_all(text), want);
    assert_eq!(HwMatcher::new(&image, &set).find_all(text), want);
}
