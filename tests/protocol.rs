//! Protocol normalization fail-open equivalence suite.
//!
//! The robustness contract under test (ISSUE 10 acceptance criteria):
//!
//! 1. **Off ≡ raw** — with the normalizer disabled, and with it enabled
//!    but facing non-protocol traffic, the pipeline's matches are
//!    byte-for-byte identical to a plain raw-scan pipeline, across
//!    every `ChopProfile` × `SegmentProfile` combination.
//! 2. **Normalization is transport-invariant** — for well-formed HTTP,
//!    the scanner sees exactly the decoded stream (`HttpStream`
//!    ground truth) no matter how the wire bytes are chopped,
//!    reordered, retransmitted, or overlapped.
//! 3. **Fail open, never closed** — every `HttpMalformation` shape
//!    downgrades the flow to raw scanning with the downgrade counted;
//!    a signature after the hostile framing is still found.
//! 4. **Ledger** — `delivered == normalized + raw` under arbitrary
//!    byte soups and adversarial segment schedules, and nothing
//!    panics.

use std::sync::Arc;

use dpi_accel::prelude::*;
use dpi_accel::rulesets::{
    ChopProfile, HttpMalformation, Packet, Segment, SegmentProfile, HTTP_MALFORMATIONS,
};
use proptest::prelude::*;

/// Replays `schedule` through the full pipeline — reassemble →
/// detect/normalize → scan — and returns the matches plus both stats
/// blocks. Asserts the fail-open ledger and the reassembly budget on
/// every step.
fn proto_pipeline(
    set: &PatternSet,
    config: ProtoConfig,
    schedule: &[Segment],
    budget: usize,
) -> (Vec<Match>, ProtocolStats, ReassemblyStats) {
    // The sink below maps lanes to the distinct scoped views, so the
    // flow must run scoped (see the ProtoConfig::scoped invariant) —
    // scanner history is masked at lane changes.
    let config = ProtoConfig {
        scoped: true,
        ..config
    };
    let rules = ScopedRuleset::build(set);
    let full = rules.lane(Lane::Raw);
    let http = rules.lane(Lane::Normalized(ProtocolId::Http));
    let tls = rules.lane(Lane::Normalized(ProtocolId::Tls));
    let mut flow = StreamFlow::new(
        ReassemblyConfig::new(budget),
        ProtoFlow::new(ScanState::fresh(), config),
    );
    let mut out = Vec::new();
    let mut rstats = ReassemblyStats::default();
    let mut pstats = ProtocolStats::default();
    {
        let mut scan = |proto: &mut ProtoFlow<ScanState>, chunk: &[u8], out: &mut Vec<Match>| {
            proto.deliver(
                chunk,
                false,
                &mut pstats,
                |lane, scan: &mut ScanState, bytes, out| {
                    let view = match lane {
                        Lane::Raw => &full,
                        Lane::Normalized(ProtocolId::Http) => &http,
                        Lane::Normalized(ProtocolId::Tls) => &tls,
                        Lane::Normalized(_) => &full,
                    };
                    view.scan_chunk_into(scan, bytes, out);
                },
                out,
            );
        };
        for seg in schedule {
            flow.ingest(seg.seq, &seg.bytes, &mut scan, &mut out, &mut rstats);
            assert!(
                flow.reassembler().buffered_bytes() <= budget,
                "reassembly budget exceeded mid-schedule"
            );
        }
        flow.flush(&mut scan, &mut out, &mut rstats);
    }
    assert_eq!(
        pstats.unaccounted_bytes(),
        0,
        "fail-open ledger must balance: {pstats:?}"
    );
    (out, pstats, rstats)
}

/// The reference pipeline: same reassembler, plain `ScanState`, no
/// protocol stage at all.
fn raw_pipeline(set: &PatternSet, schedule: &[Segment], budget: usize) -> Vec<Match> {
    let rules = ScopedRuleset::build(set);
    let full = rules.lane(Lane::Raw);
    let mut flow = StreamFlow::new(ReassemblyConfig::new(budget), ScanState::fresh());
    let mut out = Vec::new();
    let mut rstats = ReassemblyStats::default();
    let mut scan = |scan: &mut ScanState, chunk: &[u8], out: &mut Vec<Match>| {
        full.scan_chunk_into(scan, chunk, out);
    };
    for seg in schedule {
        flow.ingest(seg.seq, &seg.bytes, &mut scan, &mut out, &mut rstats);
    }
    flow.flush(&mut scan, &mut out, &mut rstats);
    out
}

fn all_chops() -> Vec<ChopProfile> {
    vec![
        ChopProfile::Mtu(97),
        ChopProfile::SingleByte,
        ChopProfile::Random { min: 3, max: 41 },
        ChopProfile::MidPattern { mtu: 64 },
    ]
}

fn all_segment_profiles() -> Vec<SegmentProfile> {
    vec![
        SegmentProfile::InOrder,
        SegmentProfile::Reorder { window: 4 },
        SegmentProfile::Retransmit { every: 3 },
        SegmentProfile::OverlapConsistent { extend: 8 },
        SegmentProfile::OverlapConflicting { extend: 8 },
        SegmentProfile::Holes { every: 5 },
    ]
}

// ---------------------------------------------------------------------------
// 1. Off ≡ raw, across every transport adversary.
// ---------------------------------------------------------------------------

#[test]
fn disabled_and_unclassified_normalizers_equal_raw_scan_across_all_profiles() {
    let set = PatternSet::new(["attack-sig", "evil-payload", "he", "hers"]).unwrap();
    let mut gen = TrafficGenerator::new(0xC0FFEE);
    for chop in all_chops() {
        for profile in all_segment_profiles() {
            let mut packet = gen.packets(1, 1200, &set, 2).remove(0);
            // A leading non-protocol byte resolves the content probe to
            // raw immediately, so the enabled pipeline must also be a
            // pure pass-through.
            packet.payload.insert(0, 0x01);
            for inj in &mut packet.injected {
                inj.1 += 1;
            }
            let schedule = gen.segment_schedule(&packet, &set, chop, profile);
            let budget = packet.payload.len() + 128;

            let reference = raw_pipeline(&set, &schedule, budget);
            let disabled = ProtoConfig {
                enabled: false,
                ..ProtoConfig::default()
            };
            let (off, off_stats, _) = proto_pipeline(&set, disabled, &schedule, budget);
            assert_eq!(
                off, reference,
                "disabled normalizer diverged from raw scan under {chop:?}/{profile:?}"
            );
            assert_eq!(off_stats.normalized_bytes, 0);

            let (on, on_stats, _) =
                proto_pipeline(&set, ProtoConfig::default(), &schedule, budget);
            assert_eq!(
                on, reference,
                "unclassified flow diverged from raw scan under {chop:?}/{profile:?}"
            );
            assert_eq!(on_stats.normalized_bytes, 0);
            assert_eq!(on_stats.flows_http + on_stats.flows_tls, 0);
        }
    }
}

// ---------------------------------------------------------------------------
// 2. Normalization is transport-invariant: the scanner sees exactly the
//    decoded stream whatever the wire does.
// ---------------------------------------------------------------------------

#[test]
fn http_normalization_is_cut_and_schedule_invariant() {
    let set = PatternSet::new(["Host: www", "example.com", "attack-sig"]).unwrap();
    let rules = ScopedRuleset::build(&set);
    let full = rules.lane(Lane::Raw);
    let mut gen = TrafficGenerator::new(11);
    let stream = gen.http_stream(4, 300, 1.0);
    let mut expect = Vec::new();
    full.scan_into(&stream.decoded, &mut expect);
    assert!(
        !expect.is_empty(),
        "fixture must produce header matches to compare"
    );

    let packet = Packet {
        payload: stream.wire.clone(),
        injected: Vec::new(),
    };
    // Every in-order-deliverable schedule (Holes genuinely loses
    // bytes, which is a desync, not an equivalence case).
    let deliverable: Vec<SegmentProfile> = all_segment_profiles()
        .into_iter()
        .filter(|p| !matches!(p, SegmentProfile::Holes { .. }))
        .collect();
    for chop in [
        ChopProfile::Mtu(80),
        ChopProfile::SingleByte,
        ChopProfile::Random { min: 2, max: 37 },
    ] {
        for profile in &deliverable {
            let schedule = gen.segment_schedule(&packet, &set, chop, *profile);
            let (got, pstats, _) = proto_pipeline(
                &set,
                ProtoConfig::default(),
                &schedule,
                stream.wire.len() + 256,
            );
            assert_eq!(
                got, expect,
                "normalized matches diverged from decoded-stream scan under {chop:?}/{profile:?}"
            );
            assert_eq!(pstats.flows_http, 1);
            assert_eq!(pstats.malformed_downgrades, 0);
            assert_eq!(pstats.delivered_bytes, stream.wire.len() as u64);
        }
    }
}

#[test]
fn chunk_split_signatures_found_normalized_and_missed_raw() {
    let set = PatternSet::new(["attack-sig", "evil-payload"]).unwrap();
    let mut gen = TrafficGenerator::new(23);
    let stream = gen.chunked_evasion_stream(&set, 4);
    let schedule = vec![Segment {
        seq: 0,
        bytes: stream.wire.clone(),
    }];
    let budget = stream.wire.len() + 64;

    let (got, pstats, _) = proto_pipeline(&set, ProtoConfig::default(), &schedule, budget);
    for &(id, end) in &stream.injected {
        assert!(
            got.iter().any(|m| m.pattern == id && m.end == end),
            "normalized scan must find the split occurrence ({id:?}, {end})"
        );
    }
    assert_eq!(pstats.flows_http, 1);

    let disabled = ProtoConfig {
        enabled: false,
        ..ProtoConfig::default()
    };
    let (raw, _, _) = proto_pipeline(&set, disabled, &schedule, budget);
    assert!(
        raw.is_empty(),
        "every injection is split by chunk framing; the raw scan must miss all of them: {raw:?}"
    );
}

// ---------------------------------------------------------------------------
// 3. Every malformation shape fails open with the downgrade counted.
// ---------------------------------------------------------------------------

#[test]
fn every_malformation_fails_open_and_remainder_is_scanned() {
    let set = PatternSet::new(["attack-sig"]).unwrap();
    for &kind in HTTP_MALFORMATIONS {
        let mut gen = TrafficGenerator::new(31);
        let mut wire = gen.malformed_http_stream(kind);
        wire.extend_from_slice(b"....attack-sig....");
        // Deliver both in one piece and in small in-order segments: the
        // downgrade must not depend on where chunk boundaries land.
        let whole = vec![Segment {
            seq: 0,
            bytes: wire.clone(),
        }];
        let mut pieces = Vec::new();
        let mut seq = 0u64;
        for chunk in wire.chunks(7) {
            pieces.push(Segment {
                seq,
                bytes: chunk.to_vec(),
            });
            seq += chunk.len() as u64;
        }
        for schedule in [&whole, &pieces] {
            let (got, pstats, _) =
                proto_pipeline(&set, ProtoConfig::default(), schedule, wire.len() + 64);
            assert!(
                got.iter().any(|m| m.pattern.index() == 0),
                "{kind:?}: the signature after the hostile framing must still be found"
            );
            if kind == HttpMalformation::TruncatedMidChunk {
                // Truncation is not a parse error — the promised bytes
                // simply never arrive. No downgrade, ledger balanced
                // (asserted inside the pipeline helper), nothing wedged.
                assert_eq!(pstats.malformed_downgrades, 0, "{kind:?}");
            } else {
                assert!(
                    pstats.malformed_downgrades >= 1,
                    "{kind:?} must count a fail-open downgrade"
                );
            }
            assert_eq!(pstats.delivered_bytes, wire.len() as u64);
        }
    }
}

#[test]
fn mimicry_and_probe_exhaustion_fail_open_to_raw_equivalence() {
    let set = PatternSet::new(["attack-sig"]).unwrap();
    let mut gen = TrafficGenerator::new(41);
    let mut wire = gen.mimicry_stream(64);
    wire.extend_from_slice(b"..attack-sig..");
    let schedule = vec![Segment {
        seq: 0,
        bytes: wire.clone(),
    }];
    let budget = wire.len() + 64;
    let reference = raw_pipeline(&set, &schedule, budget);
    assert!(!reference.is_empty());

    // A TLS port hint against plausible HTTP content: trust neither.
    let tls_hint = ProtoConfig {
        hint: Some(ProtocolId::Tls),
        ..ProtoConfig::default()
    };
    let (got, pstats, _) = proto_pipeline(&set, tls_hint, &schedule, budget);
    assert_eq!(pstats.mimicry_suspected, 1);
    assert_eq!(pstats.flows_raw, 1);
    assert_eq!(pstats.flows_http, 0, "the hint mismatch must not normalize");
    assert_eq!(got, reference, "mimicry downgrade must scan raw bytes");

    // A probe budget too small to reach a verdict: count and fall back.
    let tiny = ProtoConfig {
        probe_budget: 2,
        ..ProtoConfig::default()
    };
    let (got, pstats, _) = proto_pipeline(&set, tiny, &schedule, budget);
    assert_eq!(pstats.probe_exhausted, 1);
    assert_eq!(got, reference, "probe exhaustion must scan raw bytes");
}

// ---------------------------------------------------------------------------
// 4. Ledger and no-panic properties under arbitrary input.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn arbitrary_bytes_never_panic_and_ledger_balances(
        prefix_sel in 0usize..5,
        hint_sel in 0usize..3,
        body in proptest::collection::vec(any::<u8>(), 0..1024),
        raw_cuts in proptest::collection::vec(1usize..1024, 0..6),
    ) {
        // Prefixes bias the soup into the interesting parser states:
        // mid-probe, mid-header, mid-chunk, mid-TLS-record, and deep
        // into a chunk-size digit run (any '0' bytes in the soup then
        // push the digit counter toward its cap — the overflow shape).
        let prefixes: [&[u8]; 5] = [
            b"",
            b"GET / HTTP/1.1\r\n",
            b"POST /u HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n5\r\n",
            b"\x16\x03\x01\x00\x06",
            b"POST /z HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n00000000000000",
        ];
        let mut data = prefixes[prefix_sel].to_vec();
        data.extend_from_slice(&body);
        let mut cuts = raw_cuts;
        cuts.retain(|&c| c < data.len());
        cuts.sort_unstable();
        cuts.dedup();
        let mut schedule = Vec::new();
        let mut start = 0usize;
        for &cut in cuts.iter().chain(std::iter::once(&data.len())) {
            schedule.push(Segment { seq: start as u64, bytes: data[start..cut].to_vec() });
            start = cut;
        }
        let set = PatternSet::new(["attack-sig"]).unwrap();
        let hints = [None, Some(ProtocolId::Http), Some(ProtocolId::Tls)];
        let config = ProtoConfig { hint: hints[hint_sel], ..ProtoConfig::default() };
        // The helper asserts ledger balance and budget internally.
        let (_, pstats, _) = proto_pipeline(&set, config, &schedule, data.len() + 64);
        prop_assert_eq!(pstats.delivered_bytes, data.len() as u64);
    }

    #[test]
    fn segment_soup_never_panics_and_ledger_balances(
        seeds in proptest::collection::vec(any::<u64>(), 0..40),
    ) {
        let set = PatternSet::new(["attack-sig"]).unwrap();
        // Each seed expands deterministically into one adversarial
        // segment: arbitrary placement (including zero length), filler
        // derived from the seed.
        let schedule: Vec<Segment> = seeds
            .into_iter()
            .map(|seed| {
                let seq = (seed >> 16) % 2048;
                let len = (seed % 64) as usize;
                let bytes: Vec<u8> = (0..len)
                    .map(|i| (seed.rotate_left((i % 61) as u32) ^ i as u64) as u8)
                    .collect();
                Segment { seq, bytes }
            })
            .collect();
        let (_, pstats, _) =
            proto_pipeline(&set, ProtoConfig::default(), &schedule, 256);
        prop_assert_eq!(pstats.unaccounted_bytes(), 0);
    }
}

// ---------------------------------------------------------------------------
// 5. Pattern scoping and the service-level wiring.
// ---------------------------------------------------------------------------

#[test]
fn scoped_rules_never_scan_the_wrong_lane() {
    let mut set =
        PatternSet::new(["http-only-sig", "tls-only-sig", "anywhere-sig"]).unwrap();
    let http_id = set.iter().map(|(id, _)| id).next().unwrap();
    let ids: Vec<PatternId> = set.iter().map(|(id, _)| id).collect();
    set.set_tag(http_id, TAG_HTTP);
    set.set_tag(ids[1], TAG_TLS);
    // ids[2] stays TAG_ANY.
    let rules = ScopedRuleset::build(&set);
    assert_eq!(rules.lane_len(Lane::Raw), 3);
    assert_eq!(rules.lane_len(Lane::Normalized(ProtocolId::Http)), 2);
    assert_eq!(rules.lane_len(Lane::Normalized(ProtocolId::Tls)), 2);

    let mut out = Vec::new();
    rules
        .lane(Lane::Normalized(ProtocolId::Http))
        .scan_into(b"tls-only-sig anywhere-sig", &mut out);
    assert_eq!(out.len(), 1, "HTTP lane must not see TLS-only rules");
    assert_eq!(out[0].pattern, ids[2], "remapped id must be the global id");
    out.clear();
    rules
        .lane(Lane::Normalized(ProtocolId::Tls))
        .scan_into(b"http-only-sig anywhere-sig", &mut out);
    assert_eq!(out.len(), 1, "TLS lane must not see HTTP-only rules");
    out.clear();
    rules.lane(Lane::Raw).scan_into(
        b"http-only-sig tls-only-sig anywhere-sig",
        &mut out,
    );
    assert_eq!(out.len(), 3, "the raw lane always scans the full set");
}

#[test]
fn service_pipeline_normalizes_and_accounts_protocol_bytes() {
    let set = PatternSet::new(["attack-sig", "evil-payload"]).unwrap();
    let arena = Arc::new(RulesetArena::build(&set, &TwoStageConfig::with_cores(1), 1).unwrap());
    let mut sim = ServiceSim::new(arena, ServiceConfig::with_workers(2)).unwrap();
    let mut gen = TrafficGenerator::new(5);
    let stream = gen.chunked_evasion_stream(&set, 3);
    let key = FlowKey(7);
    let mut time = 0u64;
    for (i, chunk) in stream.wire.chunks(97).enumerate() {
        time += 1;
        assert!(sim.offer(key, (i * 97) as u64, chunk, time));
    }
    let report = sim.finish();
    let p = &report.stats.workers.protocol;
    assert_eq!(p.flows_http, 1, "the service must classify the flow");
    assert_eq!(p.delivered_bytes, stream.wire.len() as u64);
    assert_eq!(p.unaccounted_bytes(), 0);
    for &(id, end) in &stream.injected {
        assert!(
            report
                .matches
                .iter()
                .any(|m| m.key == key && m.matched.pattern == id && m.matched.end == end),
            "service must catch the chunk-split occurrence ({id:?}, {end})"
        );
    }
}
