//! Deterministic differential tests for the compiled flat-memory scan
//! engine on realistic workloads: Snort-like rulesets, infected and
//! adversarial traffic, every DTP configuration, and the batch scanner.
//!
//! `tests/equivalence.rs` covers the same claims property-style on small
//! dense alphabets; this suite pins them on generated rulesets large
//! enough to exercise CSR rows of every width, LUT rows with full
//! depth-2/3 population, and (under `DtpConfig::NONE`) the dense-row
//! escalation path.

use dpi_accel::automaton::NaiveMatcher;
use dpi_accel::hw::{HwImage, HwMatcher};
use dpi_accel::prelude::*;
use dpi_accel::rulesets::{adversarial_payload, extract_preserving, master_ruleset};

fn medium_ruleset(strings: usize, seed: u64) -> PatternSet {
    extract_preserving(&master_ruleset(), strings, seed)
}

/// Compiled scan must be state-trace- and match-equivalent to both the
/// reference DTP matcher and the full DFA on generated traffic.
#[test]
fn compiled_equals_dtp_and_dfa_on_generated_traffic() {
    let set = medium_ruleset(200, 0xC0DE);
    let dfa = Dfa::build(&set);
    let reduced = ReducedAutomaton::reduce(&dfa, DtpConfig::PAPER);
    let compiled = CompiledAutomaton::compile(&reduced);
    let dtp = DtpMatcher::new(&reduced, &set);
    let fast = CompiledMatcher::new(&compiled, &set);
    let full = DfaMatcher::new(&dfa, &set);

    let mut gen = TrafficGenerator::new(42);
    for i in 0..6 {
        let packet = if i % 2 == 0 {
            gen.infected_packet(4096, &set, 8)
        } else {
            gen.clean_packet(4096)
        };
        let (want_m, want_t) = full.scan_with_trace(&packet.payload);
        let (dtp_m, dtp_t) = dtp.scan_with_trace(&packet.payload);
        let (fast_m, fast_t) = fast.scan_with_trace(&packet.payload);
        assert_eq!(fast_t, want_t, "compiled trace diverged from DFA");
        assert_eq!(fast_t, dtp_t, "compiled trace diverged from DTP");
        assert_eq!(fast_m, want_m, "compiled matches diverged from DFA");
        assert_eq!(fast_m, dtp_m, "compiled matches diverged from DTP");
        for &(id, end) in &packet.injected {
            assert!(
                fast_m.iter().any(|m| m.pattern == id && m.end == end),
                "compiled engine missed injected {id:?}@{end}"
            );
        }
    }
}

/// Every DTP configuration — including the degenerate ones that trigger
/// dense-row escalation — must compile to an equivalent engine.
#[test]
fn compiled_equals_dtp_under_every_config() {
    let set = medium_ruleset(120, 7);
    let dfa = Dfa::build(&set);
    let mut gen = TrafficGenerator::new(9);
    let packet = gen.infected_packet(2048, &set, 6).payload;
    let configs = [
        DtpConfig::PAPER,
        DtpConfig::D1,
        DtpConfig::D1_D2,
        DtpConfig::NONE,
        DtpConfig { depth1: false, k2: 4, k3: 1 },
        DtpConfig { depth1: true, k2: 1, k3: 2 },
        DtpConfig { depth1: true, k2: 16, k3: 4 },
    ];
    let mut dense_seen = false;
    for config in configs {
        let reduced = ReducedAutomaton::reduce(&dfa, config);
        let compiled = CompiledAutomaton::compile(&reduced);
        dense_seen |= compiled.dense_states() > 0;
        let (want, want_t) = DtpMatcher::new(&reduced, &set).scan_with_trace(&packet);
        let (got, got_t) = CompiledMatcher::new(&compiled, &set).scan_with_trace(&packet);
        assert_eq!(got_t, want_t, "trace diverged under {config:?}");
        assert_eq!(got, want, "matches diverged under {config:?}");
    }
    assert!(
        dense_seen,
        "expected at least one config to exercise dense-row escalation"
    );
}

/// Adversarial traffic (crafted against fail-pointer designs) must not
/// shake the compiled engine's equivalence either.
#[test]
fn compiled_handles_adversarial_traffic() {
    let set = medium_ruleset(150, 0xADE);
    let dfa = Dfa::build(&set);
    let reduced = ReducedAutomaton::reduce(&dfa, DtpConfig::PAPER);
    let compiled = CompiledAutomaton::compile(&reduced);
    let payload = adversarial_payload(&set, 4096);
    let want = NaiveMatcher::new(&set).find_all(&payload);
    assert_eq!(CompiledMatcher::new(&compiled, &set).find_all(&payload), want);
}

/// The batch scanner must agree with sequential scanning for every lane
/// count, across packets of wildly different lengths (ragged batches).
#[test]
fn batch_scanner_equals_sequential_on_ragged_traffic() {
    let set = medium_ruleset(150, 3);
    let dfa = Dfa::build(&set);
    let reduced = ReducedAutomaton::reduce(&dfa, DtpConfig::PAPER);
    let compiled = CompiledAutomaton::compile(&reduced);
    let matcher = CompiledMatcher::new(&compiled, &set);

    let mut gen = TrafficGenerator::new(77);
    let mut packets: Vec<Vec<u8>> = Vec::new();
    for (i, len) in [1500usize, 64, 0, 900, 40, 1500, 7, 300, 1200, 2, 600, 100]
        .into_iter()
        .enumerate()
    {
        if len == 0 {
            packets.push(Vec::new());
        } else if i % 3 == 0 {
            packets.push(gen.infected_packet(len.max(32), &set, 1).payload);
        } else {
            packets.push(gen.clean_packet(len).payload);
        }
    }
    let want: Vec<Vec<Match>> = packets.iter().map(|p| matcher.find_all(p)).collect();
    for lanes in [1usize, 2, 4, 8, 12, 16] {
        let scanner = BatchScanner::new(&compiled, &set, lanes);
        assert_eq!(
            scanner.scan_batch(&packets),
            want,
            "batch({lanes}) diverged on ragged traffic"
        );
        // And the allocation-reusing entry point.
        let mut out = Vec::new();
        scanner.scan_batch_into(&packets, &mut out);
        assert_eq!(out, want, "scan_batch_into({lanes}) diverged");
    }
}

/// `find_all_into` must agree with `find_all` for every matcher in the
/// workspace (default impl and overrides alike).
#[test]
fn find_all_into_agrees_across_all_matchers() {
    use dpi_accel::baselines::{BitmapAc, BitmapMatcher, PathAc, PathMatcher};

    let set = medium_ruleset(80, 5);
    let dfa = Dfa::build(&set);
    let nfa = Nfa::build(&set);
    let reduced = ReducedAutomaton::reduce(&dfa, DtpConfig::PAPER);
    let compiled = CompiledAutomaton::compile(&reduced);
    let image = HwImage::build(&reduced).expect("fits");
    let bitmap = BitmapAc::build(&set);
    let path = PathAc::build(&set);

    let mut gen = TrafficGenerator::new(11);
    let packet = gen.infected_packet(2048, &set, 5).payload;
    let mut buf = Vec::new();

    let matchers: Vec<(&str, Box<dyn MultiMatcher + '_>)> = vec![
        ("dfa", Box::new(DfaMatcher::new(&dfa, &set))),
        ("nfa", Box::new(NfaMatcher::new(&nfa, &set))),
        ("dtp", Box::new(DtpMatcher::new(&reduced, &set))),
        ("compiled", Box::new(CompiledMatcher::new(&compiled, &set))),
        ("hw", Box::new(HwMatcher::new(&image, &set))),
        ("bitmap", Box::new(BitmapMatcher::new(&bitmap, &set))),
        ("path", Box::new(PathMatcher::new(&path, &set))),
        ("naive", Box::new(NaiveMatcher::new(&set))),
    ];
    let want = matchers[0].1.find_all(&packet);
    assert!(!want.is_empty());
    for (name, matcher) in &matchers {
        assert_eq!(matcher.find_all(&packet), want, "{name} find_all");
        // Seed the buffer with garbage to prove it is cleared.
        buf.push(Match {
            end: usize::MAX,
            pattern: dpi_accel::automaton::PatternId(u32::MAX),
        });
        matcher.find_all_into(&packet, &mut buf);
        assert_eq!(buf, want, "{name} find_all_into");
    }
}

/// Early-exit fast paths agree with the full scan.
#[test]
fn fast_paths_agree_with_full_scan() {
    let set = medium_ruleset(100, 13);
    let dfa = Dfa::build(&set);
    let reduced = ReducedAutomaton::reduce(&dfa, DtpConfig::PAPER);
    let compiled = CompiledAutomaton::compile(&reduced);
    let matcher = CompiledMatcher::new(&compiled, &set);
    let mut gen = TrafficGenerator::new(21);
    for i in 0..8 {
        let packet = if i % 2 == 0 {
            gen.infected_packet(1024, &set, 2).payload
        } else {
            gen.clean_packet(1024).payload
        };
        let full = matcher.find_all(&packet);
        assert_eq!(matcher.is_match(&packet), !full.is_empty(), "is_match");
        assert_eq!(matcher.count(&packet), full.len(), "count");
        let mut visited = Vec::new();
        matcher.for_each_match(&packet, |m| visited.push(m));
        assert_eq!(visited, full, "visitor");
    }
}

/// Compiled engine and bit-packed hardware image, built from the same
/// reduced automaton, must report identical matches — the software fast
/// path and the hardware layout are two projections of one structure.
#[test]
fn compiled_agrees_with_hw_image() {
    let set = medium_ruleset(150, 0x5EED);
    let dfa = Dfa::build(&set);
    let reduced = ReducedAutomaton::reduce(&dfa, DtpConfig::PAPER);
    let compiled = CompiledAutomaton::compile(&reduced);
    let image = HwImage::build(&reduced).expect("fits");
    let mut gen = TrafficGenerator::new(33);
    for _ in 0..3 {
        let packet = gen.infected_packet(2048, &set, 4).payload;
        assert_eq!(
            CompiledMatcher::new(&compiled, &set).find_all(&packet),
            HwMatcher::new(&image, &set).find_all(&packet),
        );
    }
}
