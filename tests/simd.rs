//! Cross-lane SIMD conformance suite: the `simd` feature must be
//! *scan-invisible*.
//!
//! The vector lanes (nibble-box danger walk, shuffle byte-set probes,
//! hot-row prefetch) are pure accelerations of the scalar lanes — they
//! may change how fast bytes are consumed, never which matches come
//! out. This suite pins that differentially:
//!
//! 1. **Lane matrix** — every `CompiledMatcher` configuration
//!    (simd on/off × prefilter on/off × pairs on/off) reports exactly
//!    the reference `DtpMatcher` matches, on clean, infected and
//!    adversarial payloads, whole and under every `ChopProfile`.
//! 2. **Window-interior cuts** — chunk boundaries placed strictly
//!    inside the 16/32-byte probe windows (±1 around every vector
//!    width multiple) and 3-way splits inside a maximal skippable run,
//!    so suspend/resume lands mid-skip at odd offsets.
//! 3. **Horizon sweep** — anchor horizons 0, 1 and 2, and `nocase`
//!    pattern sets (the fold must be applied before any vector probe).
//! 4. **Sharded + reassembly** — `ShardedMatcher` with simd on/off,
//!    and adversarial `SegmentProfile` schedules through a `FlowTable`.
//! 5. **Table models** (feature `simd` only) — the shuffle tables and
//!    the nibble-box danger cover are checked against the exact
//!    `AnchorSet` bitmaps over the full key space, for proptest-drawn
//!    pattern sets: the cover must flag every danger pair (one-sided
//!    soundness), and the candidate tables must equal the skip bitmap
//!    exactly.
//!
//! Built without the feature the matrix still runs (with_simd is
//! inert), so the portable build keeps the same pinning.

use dpi_accel::core::{FlowKey, FlowSegment, FlowTable, ShardedConfig, ShardedMatcher};
use dpi_accel::prelude::*;
use dpi_accel::rulesets::{
    adversarial_payload, chop, extract_preserving, master_ruleset, ChopProfile, Packet, Segment,
    SegmentProfile, TrafficGenerator,
};

/// Anchors + pair layer at `horizon`, the full fast-path stack.
fn build_stack(set: &PatternSet, horizon: u8) -> CompiledAutomaton {
    let dfa = Dfa::build(set);
    let reduced = ReducedAutomaton::reduce(&dfa, DtpConfig::PAPER);
    let anchors = AnchorSet::build(&dfa, set, horizon);
    let pairs = PairTable::build_with_region(
        &dfa,
        set,
        &anchors,
        PairTable::REGION_ROW_BYTES + 2 * PairTable::ROW_BYTES,
    );
    CompiledAutomaton::compile_with_prefilter(&reduced, anchors).with_pair_table(pairs)
}

/// The full lane matrix: simd × prefilter × pairs. Without the `simd`
/// feature the simd half is inert and pins scalar against scalar.
fn lane_matrix<'a>(
    compiled: &'a CompiledAutomaton,
    set: &'a PatternSet,
) -> Vec<(String, CompiledMatcher<'a>)> {
    let mut out = Vec::new();
    for simd in [false, true] {
        for prefilter in [true, false] {
            for pairs in [true, false] {
                out.push((
                    format!("simd={simd}/prefilter={prefilter}/pairs={pairs}"),
                    CompiledMatcher::new(compiled, set)
                        .with_simd(simd)
                        .with_prefilter(prefilter)
                        .with_pairs(pairs),
                ));
            }
        }
    }
    out
}

/// Scans `payload` chunked at `cuts` through every lane configuration
/// and asserts each equals the whole-payload `DtpMatcher` reference.
fn assert_matrix_conforms(
    compiled: &CompiledAutomaton,
    set: &PatternSet,
    reference: &[Match],
    payload: &[u8],
    cuts: &[usize],
    ctx: &str,
) {
    let segments = chop(payload, cuts);
    for (name, m) in lane_matrix(compiled, set) {
        let mut state = ScanState::fresh();
        let mut got = Vec::new();
        for seg in &segments {
            m.scan_chunk_into(&mut state, seg, &mut got);
        }
        assert_eq!(got, reference, "{name} diverged [{ctx}]");
    }
}

fn dtp_reference(set: &PatternSet, payload: &[u8]) -> Vec<Match> {
    let dfa = Dfa::build(set);
    let reduced = ReducedAutomaton::reduce(&dfa, DtpConfig::PAPER);
    DtpMatcher::new(&reduced, set).find_all(payload)
}

/// Lane matrix × traffic kind × chop profile on a realistic 300-rule
/// slice — the ruleset size the SIMD A/B benches run at.
#[test]
fn traffic_and_chop_matrix_conformance() {
    let set = extract_preserving(&master_ruleset(), 300, 42);
    let compiled = build_stack(&set, AnchorSet::DEFAULT_HORIZON);
    let mut gen = TrafficGenerator::new(0x51D0);

    let clean = gen.clean_packet(16 * 1024);
    let infected = gen.infected_packet(16 * 1024, &set, 24);
    let adversarial = Packet {
        payload: adversarial_payload(&set, 8 * 1024),
        injected: Vec::new(),
    };
    for (kind, packet) in [
        ("clean", &clean),
        ("infected", &infected),
        ("adversarial", &adversarial),
    ] {
        let reference = dtp_reference(&set, &packet.payload);
        // Whole payload first, then every chop profile.
        assert_matrix_conforms(&compiled, &set, &reference, &packet.payload, &[], kind);
        for profile in [
            ChopProfile::Mtu(1500),
            ChopProfile::Random { min: 1, max: 97 },
            ChopProfile::MidPattern { mtu: 200 },
        ] {
            let cuts = gen.chop_points(packet, &set, profile);
            assert_matrix_conforms(
                &compiled,
                &set,
                &reference,
                &packet.payload,
                &cuts,
                &format!("{kind}/{profile:?}"),
            );
        }
        // SingleByte on a prefix — the worst case for per-chunk costs.
        let prefix = &packet.payload[..2048.min(packet.payload.len())];
        let reference = dtp_reference(&set, prefix);
        let cuts: Vec<usize> = (1..prefix.len()).collect();
        assert_matrix_conforms(
            &compiled,
            &set,
            &reference,
            prefix,
            &cuts,
            &format!("{kind}/SingleByte"),
        );
    }
}

/// Chunk boundaries strictly inside the vector probe windows: every
/// multiple of 16 and 32 ± 1 (so a probe that would have straddled the
/// cut must be re-formed after resume, from an odd offset), plus 3-way
/// splits inside the longest skippable run (suspend/resume mid-skip).
#[test]
fn cuts_inside_simd_windows() {
    let set = extract_preserving(&master_ruleset(), 300, 42);
    let dfa = Dfa::build(&set);
    let anchors = AnchorSet::build(&dfa, &set, AnchorSet::DEFAULT_HORIZON);
    let compiled = build_stack(&set, AnchorSet::DEFAULT_HORIZON);
    let mut gen = TrafficGenerator::new(0xA11A);
    let packet = gen.infected_packet(4096, &set, 12);
    let payload = &packet.payload;
    let reference = dtp_reference(&set, payload);

    // ±1 around every vector-width multiple, both widths at once —
    // every cut is at an odd offset, so each resumed chunk re-enters
    // the lane (and the stride-2 pair walk) misaligned.
    for width in [16usize, 32] {
        let cuts: Vec<usize> = (1..payload.len() / width)
            .flat_map(|i| [i * width - 1, i * width + 1])
            .collect();
        assert_matrix_conforms(
            &compiled,
            &set,
            &reference,
            payload,
            &cuts,
            &format!("width-{width} interior cuts"),
        );
    }

    // 3-way split inside the longest fully-skippable run: the SWAR /
    // vector skip is interrupted twice mid-run and must resume without
    // losing the (prev, byte) history.
    let mut best = (0usize, 0usize); // (start, len)
    let mut run = 0usize;
    for (i, &b) in payload.iter().enumerate() {
        if anchors.is_skippable(b) {
            run += 1;
            if run > best.1 {
                best = (i + 1 - run, run);
            }
        } else {
            run = 0;
        }
    }
    let (start, len) = best;
    if len >= 3 {
        let cuts = vec![start + len / 3, start + 2 * len / 3];
        assert_matrix_conforms(
            &compiled,
            &set,
            &reference,
            payload,
            &cuts,
            "3-way mid-skip split",
        );
    }
}

/// A calm-pair rescue whose pair straddles a vector probe window must
/// resume *past* the consumed second byte (the scalar walk's `i += 2`),
/// not re-test it as a fresh position — `is_calm` proves region
/// containment only after BOTH bytes, so an exit between them would
/// rebuild an unguaranteed register state.
///
/// The test plants a rescue triple `(p, c, d)` — `p` reachable through
/// filler, `(p, c)` danger (the exact probe fires at `c`), `(c, d)`
/// calm (the rescue consumes both) — followed by a byte `e` that is
/// danger after `d` when one exists (forcing a real exit + register
/// rebuild right behind the rescue). The triple is swept across a full
/// 32-byte span of offsets, so each probe width meets the rescue at
/// every in-window position including the last flag of a window — the
/// alignment where the consumed second byte lands exactly on the next
/// probe's first position. A boundary cut between `c` and `d` rides
/// along (suspend mid-rescue-pair, settle on resume).
#[test]
fn calm_pair_rescue_straddling_probe_windows() {
    let set = extract_preserving(&master_ruleset(), 300, 42);
    let compiled = build_stack(&set, AnchorSet::DEFAULT_HORIZON);
    let dfa = Dfa::build(&set);
    let anchors = AnchorSet::build(&dfa, &set, AnchorSet::DEFAULT_HORIZON);
    let pairs = PairTable::build_with_region(
        &dfa,
        &set,
        &anchors,
        PairTable::REGION_ROW_BYTES + 2 * PairTable::ROW_BYTES,
    );

    let filler = (0..=255u8)
        .find(|&b| anchors.is_skippable(b))
        .expect("300-rule set has skippable bytes");
    let mut triples: Vec<(u8, u8, u8)> = Vec::new();
    for p in 0..=255u8 {
        if anchors.is_danger(filler as u32, p) {
            continue;
        }
        if let Some((c, d)) = (0..=255u8).find_map(|c| {
            (anchors.is_danger(p as u32, c))
                .then(|| (0..=255u8).find(|&d| pairs.is_calm(c, d)).map(|d| (c, d)))
                .flatten()
        }) {
            triples.push((p, c, d));
            if triples.len() >= 4 {
                break;
            }
        }
    }
    assert!(
        !triples.is_empty(),
        "no rescue triple in the 300-rule tables — pick another seed"
    );

    for &(p, c, d) in &triples {
        // A hard successor forces an exit + rebuild right behind the
        // consumed pair; if none exists, filler keeps the lane running.
        let e = (0..=255u8)
            .find(|&e| anchors.is_danger(d as u32, e))
            .unwrap_or(filler);
        for lead in 64usize..64 + 32 {
            let mut payload = vec![filler; lead];
            payload.extend_from_slice(&[p, c, d, e]);
            payload.extend(std::iter::repeat_n(filler, 64));
            let reference = dtp_reference(&set, &payload);
            let ctx = format!("rescue triple ({p:#04x},{c:#04x},{d:#04x})+{e:#04x} lead {lead}");
            assert_matrix_conforms(&compiled, &set, &reference, &payload, &[], &ctx);
            // Suspend between the rescue pair's two bytes.
            let cut = vec![lead + 2];
            assert_matrix_conforms(
                &compiled,
                &set,
                &reference,
                &payload,
                &cut,
                &format!("{ctx} (mid-pair cut)"),
            );
        }
    }
}

/// The cross-table invariant that shields a rescue's consumed second
/// byte: a calm pair is never danger-keyed. `is_calm(c, d)` quantifies
/// over every region state — including the one START reaches through
/// `c`, which is exactly the state the `(c, d)` danger bit is derived
/// from — so `is_calm(c, d) ⇒ !is_danger(c, d)` structurally. The
/// vector walk no longer *relies* on this (a straddling rescue advances
/// past its consumed byte outright), but the invariant is what makes
/// any re-test of a consumed calm-pair byte inert, so pin it.
#[test]
fn calm_pairs_are_never_danger_keyed() {
    for (n, seed) in [(300usize, 42u64), (150, 0x6E0)] {
        let set = extract_preserving(&master_ruleset(), n, seed);
        let dfa = Dfa::build(&set);
        for horizon in 1u8..=2 {
            let anchors = AnchorSet::build(&dfa, &set, horizon);
            let pairs = PairTable::build_with_region(
                &dfa,
                &set,
                &anchors,
                PairTable::REGION_ROW_BYTES + 2 * PairTable::ROW_BYTES,
            );
            if !pairs.has_region_rows() {
                continue;
            }
            for c in 0..=255u8 {
                for d in 0..=255u8 {
                    assert!(
                        !(pairs.is_calm(c, d) && anchors.is_danger(c as u32, d)),
                        "calm pair ({c:#04x}, {d:#04x}) is danger-keyed \
                         ({n} rules, horizon {horizon})"
                    );
                }
            }
        }
    }
}

/// Horizons 0, 1 and 2: the danger relation (and so the nibble-box
/// cover) changes shape with the region depth; each must stay exact.
#[test]
fn horizon_sweep_conformance() {
    let set = extract_preserving(&master_ruleset(), 80, 0x707);
    let mut gen = TrafficGenerator::new(0xBEEF);
    let clean = gen.clean_packet(4096);
    let infected = gen.infected_packet(4096, &set, 8);
    for horizon in 0u8..=2 {
        let compiled = build_stack(&set, horizon);
        for (kind, packet) in [("clean", &clean), ("infected", &infected)] {
            let reference = dtp_reference(&set, &packet.payload);
            let cuts = gen.chop_points(packet, &set, ChopProfile::Random { min: 1, max: 61 });
            assert_matrix_conforms(
                &compiled,
                &set,
                &reference,
                &packet.payload,
                &cuts,
                &format!("horizon-{horizon}/{kind}"),
            );
        }
    }
}

/// `nocase` sets: the ASCII fold is applied *before* classification,
/// so the shuffle tables and the cover see folded bytes — mixed-case
/// occurrences must land identically with simd on and off.
#[test]
fn nocase_conformance() {
    let set = PatternSet::new_nocase([
        b"User-Agent:".as_slice(),
        b"EVIL/1.0",
        b"malware.exe",
        b"GET /admin",
        b"xHeLLoX",
    ])
    .unwrap();
    let compiled = build_stack(&set, AnchorSet::DEFAULT_HORIZON);
    let mut payload = Vec::new();
    let mut gen = TrafficGenerator::new(0x0CA5);
    for case in [
        b"user-agent: EVIL/1.0\r\n".as_slice(),
        b"USER-AGENT: evil/1.0\r\n",
        b"get /ADMIN MALWARE.EXE xhellox",
        b"GeT /aDmIn MaLwArE.eXe XHELLOX",
    ] {
        payload.extend_from_slice(&gen.clean_packet(512).payload);
        payload.extend_from_slice(case);
    }
    let reference = dtp_reference(&set, &payload);
    assert!(!reference.is_empty(), "mixed-case occurrences must match");
    assert_matrix_conforms(&compiled, &set, &reference, &payload, &[], "nocase whole");
    let cuts: Vec<usize> = (1..payload.len() / 16).map(|i| i * 16 + 1).collect();
    assert_matrix_conforms(&compiled, &set, &reference, &payload, &cuts, "nocase cut");
}

/// `ShardedMatcher` with simd on and off, streamed under ragged cuts:
/// per-shard anchor sets each carry their own cover; the merge must
/// stay byte-identical.
#[test]
fn sharded_conformance() {
    let set = extract_preserving(&master_ruleset(), 300, 42);
    let mut gen = TrafficGenerator::new(0x5AD3);
    let packet = gen.infected_packet(8192, &set, 16);
    let reference = dtp_reference(&set, &packet.payload);
    for cores in [1usize, 3] {
        for simd in [false, true] {
            let mut config = ShardedConfig::with_cores(cores);
            config.simd = simd;
            let sharded = ShardedMatcher::build(&set, &config)
                .expect("300 rules fit the default budget");
            let cuts = gen.chop_points(&packet, &set, ChopProfile::Random { min: 3, max: 113 });
            let segments = chop(&packet.payload, &cuts);
            let mut scratch = sharded.scratch();
            let mut flow = sharded.flow_state();
            let mut got = Vec::new();
            for seg in &segments {
                sharded.scan_chunk_into(&mut flow, seg, &mut scratch, &mut got);
            }
            assert_eq!(
                got, reference,
                "sharded(cores={cores}, simd={simd}) diverged"
            );
        }
    }
}

/// Adversarial `SegmentProfile` schedules through a `FlowTable`: the
/// reassembly layer feeds the simd lanes restart-heavy chunk shapes
/// (hole skips reset the scan state mid-stream); simd on/off and the
/// whole-payload reference must all agree.
#[test]
fn reassembly_segment_profiles_conformance() {
    let set = extract_preserving(&master_ruleset(), 150, 0x6E0);
    let compiled = build_stack(&set, AnchorSet::DEFAULT_HORIZON);
    let mut gen = TrafficGenerator::new(0xF10E);

    for profile in [
        SegmentProfile::InOrder,
        SegmentProfile::Reorder { window: 4 },
        SegmentProfile::Retransmit { every: 3 },
        SegmentProfile::OverlapConsistent { extend: 12 },
        SegmentProfile::OverlapConflicting { extend: 12 },
    ] {
        let packet = gen.infected_packet(2048, &set, 5);
        let schedule: Vec<Segment> =
            gen.segment_schedule(&packet, &set, ChopProfile::MidPattern { mtu: 200 }, profile);
        let reference = dtp_reference(&set, &packet.payload);

        for simd in [false, true] {
            let matcher = CompiledMatcher::new(&compiled, &set).with_simd(simd);
            let template = StreamFlow::new(ReassemblyConfig::new(4096), ScanState::fresh());
            let mut table = FlowTable::new(16, template);
            let mut alerts = Vec::new();
            let mut got: Vec<Match> = Vec::new();
            for seg in &schedule {
                table.ingest_segments(
                    [FlowSegment {
                        key: FlowKey(7),
                        seq: seg.seq,
                        payload: &seg.bytes,
                    }],
                    |state, chunk, out| matcher.scan_chunk_into(state, chunk, out),
                    &mut alerts,
                );
                got.extend(alerts.iter().map(|a| a.matched));
            }
            table.flush_flows(
                |state, chunk, out| matcher.scan_chunk_into(state, chunk, out),
                &mut alerts,
            );
            got.extend(alerts.iter().map(|a| a.matched));
            assert_eq!(got, reference, "simd={simd} diverged under {profile:?}");
        }
    }
}

/// Table-model pinning (feature `simd` only): the shuffle tables and
/// the nibble-box cover checked against the exact `AnchorSet` bitmaps
/// over the full key space.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod table_models {
    use super::*;
    use dpi_accel::automaton::simd::{PairCover, SimdToken};
    use proptest::prelude::*;

    fn diverse_patterns() -> impl Strategy<Value = Vec<Vec<u8>>> {
        proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..10), 1..10)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// For any pattern set and horizon: (a) the candidate shuffle
        /// tables equal the skip bitmap exactly on all 256 bytes;
        /// (b) a cover built from the danger relation flags every
        /// danger pair — one-sided soundness — across all 256×256
        /// byte-valued keys (row 256, HIST_NONE, is excluded by
        /// design: the lane settles the entry byte with the exact
        /// bitmap before any vector probe); (c) the carried
        /// `simd_danger()` cover, when the profitability gate admits
        /// one, satisfies the same superset property.
        #[test]
        fn tables_model_anchor_bitmaps(
            patterns in diverse_patterns(),
            horizon in prop_oneof![Just(0u8), Just(1u8), Just(2u8)],
        ) {
            let Ok(set) = PatternSet::new(&patterns) else { return Ok(()) };
            let dfa = Dfa::build(&set);
            let anchors = AnchorSet::build(&dfa, &set, horizon);

            // (a) candidate tables ≡ !skippable, exactly.
            let cand = anchors.simd_candidates();
            for b in 0..=255u8 {
                prop_assert_eq!(
                    cand.model_contains(b),
                    !anchors.is_skippable(b),
                    "candidate table wrong at byte {:#04x}", b
                );
            }

            // (b) fresh cover over the exact danger relation.
            let cover = PairCover::build(|p, c| anchors.is_danger(p as u32, c));
            let mut dangers = 0usize;
            for p in 0..=255u8 {
                for c in 0..=255u8 {
                    if anchors.is_danger(p as u32, c) {
                        dangers += 1;
                        prop_assert!(
                            cover.model_flags(p, c),
                            "cover missed danger pair ({:#04x}, {:#04x})", p, c
                        );
                    }
                }
            }
            let density = dangers as f64 / (256.0 * 256.0);
            prop_assert!(cover.coverage() >= density - 1e-12);
            prop_assert!(cover.coverage() <= 1.0);

            // (c) the production-carried cover, when admitted.
            if let Some(cover) = anchors.simd_danger() {
                prop_assert!(cover.coverage() <= AnchorSet::SIMD_COVER_MAX_COVERAGE);
                for p in 0..=255u8 {
                    for c in 0..=255u8 {
                        if anchors.is_danger(p as u32, c) {
                            prop_assert!(cover.model_flags(p, c));
                        }
                    }
                }
            }
        }
    }

    /// The vector kernels against the models they implement, with the
    /// production 300-rule tables (not synthetic predicates): on a
    /// pseudorandom buffer, `danger_scan`'s flag word must equal the
    /// per-position model, and the membership masks must equal the
    /// candidate model byte-for-byte.
    #[test]
    fn kernels_match_models_on_production_tables() {
        let Some(token) = SimdToken::detect() else {
            eprintln!("no SSSE3 — kernel/model differential skipped");
            return;
        };
        let set = extract_preserving(&master_ruleset(), 300, 42);
        let dfa = Dfa::build(&set);
        let anchors = AnchorSet::build(&dfa, &set, AnchorSet::DEFAULT_HORIZON);
        let Some(cover) = anchors.simd_danger() else {
            eprintln!("profitability gate rejected the 300-rule cover?");
            return;
        };

        // Deterministic xorshift buffer.
        let mut x = 0x2545F4914F6CDD1Du64;
        let buf: Vec<u8> = (0..4096)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x >> 32) as u8
            })
            .collect();

        let mut i = 1usize;
        while i + token.scan_width() <= buf.len() {
            let (base, flags) = token.danger_scan(cover, &buf, i);
            assert!(base >= i);
            // Every position the model flags inside the probed window
            // must be set in the flag word, and vice versa.
            for k in 0..token.scan_width() {
                let j = base + k;
                if j >= buf.len() {
                    break;
                }
                let model = cover.model_flags(buf[j - 1], buf[j]);
                let got = flags & (1 << k) != 0;
                assert_eq!(got, model, "flag mismatch at {j} (base {base})");
            }
            // Consumed positions (i..base) must be model-clean.
            for j in i..base {
                assert!(
                    !cover.model_flags(buf[j - 1], buf[j]),
                    "danger_scan consumed a flagged position {j}"
                );
            }
            i = if flags == 0 {
                base.max(i + 1)
            } else {
                base + flags.trailing_zeros() as usize + 1
            };
        }

        let tables = anchors.simd_candidates();
        for w in (1..buf.len() - 32).step_by(97) {
            let m16 = token.member_mask16(tables, buf[w..w + 16].try_into().unwrap());
            let m32 = token.member_mask32(tables, buf[w..w + 32].try_into().unwrap());
            for k in 0..32usize {
                let model = tables.model_contains(buf[w + k]);
                if k < 16 {
                    assert_eq!(m16 & (1 << k) != 0, model, "mask16 bit {k} at {w}");
                }
                assert_eq!(m32 & (1 << k) != 0, model, "mask32 bit {k} at {w}");
            }
        }
    }
}
