//! Reassembly equivalence suite: the defining properties of the
//! adversary-tolerant TCP layer.
//!
//! Three invariants, each pinned differentially against the
//! whole-payload scan:
//!
//! 1. **Lossless equivalence** — any *in-order-deliverable* schedule
//!    (reordered, retransmitted, consistently- or conflictingly-
//!    overlapped under first-wins) produces byte-identical matches to
//!    the whole-payload scan, across `CompiledMatcher` (prefilter/pairs
//!    on and off) and `ShardedMatcher`.
//! 2. **Boundary-local hole loss** — dropping segments loses exactly
//!    the matches overlapping the dropped ranges: the result equals the
//!    union of whole-payload matches falling entirely inside a
//!    contiguous delivered run.
//! 3. **Strict budget** — per-flow buffered bytes never exceed the
//!    configured budget, whatever the schedule does.

use dpi_accel::automaton::NaiveMatcher;
use dpi_accel::core::{FlowKey, FlowSegment, FlowTable};
use dpi_accel::prelude::*;
use dpi_accel::rulesets::{extract_preserving, master_ruleset, ChopProfile, Segment, SegmentProfile};
use proptest::prelude::*;

/// Compiles `set` with the full default fast-path stack (anchors +
/// pair layer), mirroring `tests/streaming.rs`.
fn compiled_with_pairs(set: &PatternSet) -> CompiledAutomaton {
    let dfa = Dfa::build(set);
    let reduced = ReducedAutomaton::reduce(&dfa, DtpConfig::PAPER);
    let anchors = AnchorSet::build(&dfa, set, AnchorSet::DEFAULT_HORIZON);
    let pairs = PairTable::build_with_region(
        &dfa,
        set,
        &anchors,
        PairTable::REGION_ROW_BYTES + 2 * PairTable::ROW_BYTES,
    );
    CompiledAutomaton::compile_with_prefilter(&reduced, anchors).with_pair_table(pairs)
}

/// Replays `schedule` through a `StreamFlow` wrapping a plain
/// `ScanState`, scanning with `matcher`; flushes at end of stream.
fn reassemble_compiled(
    matcher: &CompiledMatcher,
    schedule: &[Segment],
    budget: usize,
) -> (Vec<Match>, ReassemblyStats) {
    let mut flow = StreamFlow::new(ReassemblyConfig::new(budget), ScanState::fresh());
    let mut out = Vec::new();
    let mut stats = ReassemblyStats::default();
    let mut scan = |s: &mut ScanState, chunk: &[u8], o: &mut Vec<Match>| {
        matcher.scan_chunk_into(s, chunk, o)
    };
    for seg in schedule {
        flow.ingest(seg.seq, &seg.bytes, &mut scan, &mut out, &mut stats);
        assert!(
            flow.reassembler().buffered_bytes() <= budget,
            "budget exceeded mid-schedule"
        );
    }
    flow.flush(&mut scan, &mut out, &mut stats);
    assert_eq!(flow.reassembler().buffered_bytes(), 0, "flush must drain");
    (out, stats)
}

/// Same through a `ShardedMatcher`.
fn reassemble_sharded(
    matcher: &ShardedMatcher,
    schedule: &[Segment],
    budget: usize,
) -> Vec<Match> {
    let mut flow = StreamFlow::new(ReassemblyConfig::new(budget), matcher.flow_state());
    let mut scratch = matcher.scratch();
    let mut out = Vec::new();
    let mut stats = ReassemblyStats::default();
    let mut scan = |s: &mut ShardedScanState, chunk: &[u8], o: &mut Vec<Match>| {
        matcher.scan_chunk_into(s, chunk, &mut scratch, o)
    };
    for seg in schedule {
        flow.ingest(seg.seq, &seg.bytes, &mut scan, &mut out, &mut stats);
        assert!(flow.reassembler().buffered_bytes() <= budget);
    }
    flow.flush(&mut scan, &mut out, &mut stats);
    out
}

fn lossless_profiles() -> Vec<SegmentProfile> {
    vec![
        SegmentProfile::InOrder,
        SegmentProfile::Reorder { window: 4 },
        SegmentProfile::Retransmit { every: 3 },
        SegmentProfile::OverlapConsistent { extend: 12 },
        SegmentProfile::OverlapConflicting { extend: 12 },
    ]
}

/// Invariant 1 on realistic workload: a master-ruleset slice, infected
/// payloads chopped mid-pattern, every lossless adversarial schedule —
/// across the compiled engine (all lane combinations) and the sharded
/// engine. Every injected occurrence must surface at its exact offset.
#[test]
fn lossless_schedules_match_whole_payload_scan() {
    let set = extract_preserving(&master_ruleset(), 150, 0x6E0);
    let dfa = Dfa::build(&set);
    let reduced = ReducedAutomaton::reduce(&dfa, DtpConfig::PAPER);
    let plain = CompiledAutomaton::compile(&reduced);
    let paired = compiled_with_pairs(&set);
    let whole = CompiledMatcher::new(&plain, &set);
    let sharded = ShardedMatcher::build(&set, &ShardedConfig::with_cores(2)).unwrap();

    let mut gen = TrafficGenerator::new(0x5EA);
    for profile in lossless_profiles() {
        let packet = gen.infected_packet(2048, &set, 5);
        let schedule =
            gen.segment_schedule(&packet, &set, ChopProfile::MidPattern { mtu: 200 }, profile);
        let want = whole.find_all(&packet.payload);
        // Budget: documented displacement bound, (window + 1) × max len.
        let max_len = schedule.iter().map(|s| s.bytes.len()).max().unwrap();
        let budget = 5 * max_len;

        for (name, m) in [
            ("compiled", CompiledMatcher::new(&plain, &set)),
            ("lane+pairs", CompiledMatcher::new(&paired, &set)),
            (
                "pairs-only",
                CompiledMatcher::new(&paired, &set).with_prefilter(false),
            ),
        ] {
            let (got, stats) = reassemble_compiled(&m, &schedule, budget);
            assert_eq!(got, want, "{name} diverged under {profile:?}");
            match profile {
                SegmentProfile::InOrder => {
                    assert_eq!(stats.segments_buffered, 0, "in-order must not buffer");
                    assert_eq!(stats.bytes_buffered, 0);
                }
                SegmentProfile::Retransmit { .. } => {
                    assert!(stats.dup_bytes > 0, "retransmits must be clipped as dups");
                }
                SegmentProfile::OverlapConflicting { .. } => {
                    assert!(
                        stats.overlap_conflicts > 0,
                        "conflicting overlaps must be counted"
                    );
                }
                SegmentProfile::OverlapConsistent { .. } => {
                    assert!(stats.overlap_bytes > 0);
                    assert_eq!(stats.overlap_conflicts, 0, "consistent bytes agree");
                }
                _ => {}
            }
            assert_eq!(stats.holes_skipped, 0, "lossless schedules have no holes");
            for &(id, end) in &packet.injected {
                assert!(
                    got.iter().any(|m| m.pattern == id && m.end == end),
                    "{name}/{profile:?} missed injected {id:?} at ..{end}"
                );
            }
        }

        let got = reassemble_sharded(&sharded, &schedule, budget);
        assert_eq!(got, want, "sharded diverged under {profile:?}");
    }
}

/// Replays `schedule` under `policy`, collecting the *delivered byte
/// stream* instead of matches — the reconstruction the policy hands to
/// the scanner.
fn reassemble_bytes(
    schedule: &[Segment],
    budget: usize,
    policy: OverlapPolicy,
) -> (Vec<u8>, ReassemblyStats) {
    let cfg = ReassemblyConfig::new(budget).with_policy(policy);
    let mut flow = StreamFlow::new(cfg, ScanState::fresh());
    let mut delivered = Vec::new();
    let mut out = Vec::new();
    let mut stats = ReassemblyStats::default();
    let mut scan = |_s: &mut ScanState, chunk: &[u8], _o: &mut Vec<Match>| {
        delivered.extend_from_slice(chunk)
    };
    for seg in schedule {
        flow.ingest(seg.seq, &seg.bytes, &mut scan, &mut out, &mut stats);
    }
    flow.flush(&mut scan, &mut out, &mut stats);
    (delivered, stats)
}

/// Overlap-policy differential: on conflicting-overlap schedules the
/// true stream bytes arrive *first* (the generator corrupts the late
/// extension copy), so first-wins reconstructs the original payload
/// while last-wins keeps the attacker's corrupted bytes — same wire,
/// different delivered streams, which is exactly why the policy must
/// match the guarded endpoint's stack. On schedules whose overlaps
/// agree (or that have none) the two policies are indistinguishable.
#[test]
fn overlap_policy_differential_on_conflicting_schedules() {
    let set = extract_preserving(&master_ruleset(), 120, 0x1A57);
    let compiled = {
        let reduced = ReducedAutomaton::reduce(&Dfa::build(&set), DtpConfig::PAPER);
        CompiledAutomaton::compile(&reduced)
    };
    let whole = CompiledMatcher::new(&compiled, &set);

    let mut gen = TrafficGenerator::new(0xD1FF);
    for round in 0..4 {
        let packet = gen.infected_packet(2048, &set, 4);
        let conflicting = gen.segment_schedule(
            &packet,
            &set,
            ChopProfile::MidPattern { mtu: 180 },
            SegmentProfile::OverlapConflicting { extend: 10 },
        );
        let max_len = conflicting.iter().map(|s| s.bytes.len()).max().unwrap();
        let budget = 5 * max_len;

        let (first, first_stats) = reassemble_bytes(&conflicting, budget, OverlapPolicy::FirstWins);
        let (last, last_stats) = reassemble_bytes(&conflicting, budget, OverlapPolicy::LastWins);

        // First-wins reconstructs the truth; last-wins keeps the
        // corrupted extension bytes, so the streams must diverge.
        assert_eq!(first, packet.payload, "round {round}: first-wins must rebuild truth");
        assert_ne!(last, packet.payload, "round {round}: last-wins must keep corruption");
        assert_eq!(first.len(), last.len(), "policy changes bytes, never length");

        // The evasion stays equally observable under either policy.
        assert!(first_stats.overlap_conflicts > 0);
        assert_eq!(first_stats.overlap_conflicts, last_stats.overlap_conflicts);
        assert_eq!(first_stats.overlap_bytes, last_stats.overlap_bytes);

        // Each policy's streaming matches equal a whole scan of the
        // stream *that policy* delivered — the scanner is faithful to
        // the reconstruction either way.
        for (policy, delivered) in
            [(OverlapPolicy::FirstWins, &first), (OverlapPolicy::LastWins, &last)]
        {
            let mut flow = StreamFlow::new(
                ReassemblyConfig::new(budget).with_policy(policy),
                ScanState::fresh(),
            );
            let mut out = Vec::new();
            let mut stats = ReassemblyStats::default();
            let mut scan = |s: &mut ScanState, chunk: &[u8], o: &mut Vec<Match>| {
                whole.scan_chunk_into(s, chunk, o)
            };
            for seg in &conflicting {
                flow.ingest(seg.seq, &seg.bytes, &mut scan, &mut out, &mut stats);
            }
            flow.flush(&mut scan, &mut out, &mut stats);
            assert_eq!(
                out,
                whole.find_all(delivered),
                "round {round}: {policy:?} matches must equal a whole scan of its stream"
            );
        }

        // Consistent overlaps carry true bytes in both copies: the
        // policies converge on the original payload.
        let consistent = gen.segment_schedule(
            &packet,
            &set,
            ChopProfile::MidPattern { mtu: 180 },
            SegmentProfile::OverlapConsistent { extend: 10 },
        );
        let budget = 5 * consistent.iter().map(|s| s.bytes.len()).max().unwrap();
        let (first, _) = reassemble_bytes(&consistent, budget, OverlapPolicy::FirstWins);
        let (last, _) = reassemble_bytes(&consistent, budget, OverlapPolicy::LastWins);
        assert_eq!(first, packet.payload);
        assert_eq!(last, packet.payload, "consistent overlaps are policy-invariant");
    }
}

/// Invariant 2: with segments dropped, the result equals exactly the
/// whole-payload matches lying entirely inside one contiguous delivered
/// run — nothing across a hole, nothing beyond a hole lost.
#[test]
fn hole_skip_loss_is_boundary_local() {
    let set = extract_preserving(&master_ruleset(), 150, 0x401);
    let dfa = Dfa::build(&set);
    let compiled = CompiledAutomaton::compile(&ReducedAutomaton::reduce(&dfa, DtpConfig::PAPER));
    let matcher = CompiledMatcher::new(&compiled, &set);
    let naive = NaiveMatcher::new(&set);

    let mut gen = TrafficGenerator::new(0x9A7);
    for (mtu, every, budget) in [(200usize, 3usize, 4096usize), (128, 4, 256), (64, 2, 96)] {
        let packet = gen.infected_packet(2048, &set, 6);
        let schedule = gen.segment_schedule(
            &packet,
            &set,
            ChopProfile::MidPattern { mtu },
            SegmentProfile::Holes { every },
        );
        // Contiguous delivered runs: merge the survivors' coverage.
        let mut runs: Vec<(usize, usize)> = Vec::new();
        for seg in &schedule {
            let (s, e) = (seg.seq as usize, seg.seq as usize + seg.bytes.len());
            match runs.last_mut() {
                Some(last) if last.1 == s => last.1 = e,
                _ => runs.push((s, e)),
            }
        }
        // Expected: per-run scans, offsets made stream-absolute. A run
        // scanned after a skip starts with masked history, identical to
        // scanning the slice standalone.
        let mut want: Vec<Match> = Vec::new();
        for &(s, e) in &runs {
            want.extend(naive.find_all(&packet.payload[s..e]).into_iter().map(|m| {
                Match {
                    end: m.end + s,
                    pattern: m.pattern,
                }
            }));
        }
        let (got, stats) = reassemble_compiled(&matcher, &schedule, budget);
        assert_eq!(
            got, want,
            "hole loss must be exactly boundary-local (mtu {mtu}, every {every}, budget {budget})"
        );
        if runs.len() > 1 {
            assert!(stats.holes_skipped > 0, "schedule must have forced skips");
        }
        // Sanity in both directions against the full scan.
        let whole = matcher.find_all(&packet.payload);
        for m in &got {
            assert!(whole.contains(m), "reassembly invented a match: {m:?}");
        }
        for m in whole {
            let inside_run = runs
                .iter()
                .any(|&(s, e)| m.end <= e && m.end >= set.pattern_len(m.pattern) + s);
            if inside_run && !got.contains(&m) {
                // Only acceptable if the occurrence spans a hole — but
                // `inside_run` already excludes that (runs are
                // contiguous), so this is a real loss.
                panic!("match {m:?} lies inside a delivered run but was lost");
            }
        }
    }
}

/// Invariant 3: pathological far-future and scattered schedules can
/// never push buffered bytes past the budget (asserted after every
/// single ingest inside the helpers), and the table-level gauge agrees.
#[test]
fn budget_is_strict_under_pathological_schedules() {
    let set = PatternSet::new(["he", "she", "his", "hers", "attack"]).unwrap();
    let compiled =
        CompiledAutomaton::compile(&ReducedAutomaton::reduce(&Dfa::build(&set), DtpConfig::PAPER));
    let matcher = CompiledMatcher::new(&compiled, &set);
    let budget = 64usize;

    let mut flow = StreamFlow::new(ReassemblyConfig::new(budget), ScanState::fresh());
    let mut out = Vec::new();
    let mut stats = ReassemblyStats::default();
    let mut scan = |s: &mut ScanState, chunk: &[u8], o: &mut Vec<Match>| {
        matcher.scan_chunk_into(s, chunk, o)
    };
    // A hostile sender scattering segments across sequence space,
    // including far jumps, stale replays and bursts wider than the
    // whole window.
    let mut seq_points: Vec<u64> = vec![0, 1000, 17, 90, 5000, 4990, 200, 3, 100_000, 64];
    seq_points.extend((0..200).map(|i| (i * 37) % 700));
    let mut prev_next = 0u64;
    for (i, &seq) in seq_points.iter().enumerate() {
        let len = 1 + (i * 13) % 50;
        let payload = vec![b"hx"[i % 2]; len];
        flow.ingest(seq, &payload, &mut scan, &mut out, &mut stats);
        assert!(
            flow.reassembler().buffered_bytes() <= budget,
            "buffered {} > budget {budget} after segment {i}",
            flow.reassembler().buffered_bytes()
        );
        let next = flow.reassembler().next_seq();
        assert!(next >= prev_next, "delivery point must be monotone");
        prev_next = next;
    }
    assert_eq!(stats.bytes_held, flow.reassembler().buffered_bytes() as u64);
    assert!(stats.bytes_held_peak <= budget as u64);
}

/// The table-level ingest path: interleaved multi-flow adversarial
/// schedules, per-flow equivalence, and an honest table-wide held-bytes
/// gauge (including across evictions).
#[test]
fn flow_table_ingest_segments_interleaved() {
    let set = extract_preserving(&master_ruleset(), 120, 0x233);
    let compiled =
        CompiledAutomaton::compile(&ReducedAutomaton::reduce(&Dfa::build(&set), DtpConfig::PAPER));
    let matcher = CompiledMatcher::new(&compiled, &set);

    let mut gen = TrafficGenerator::new(0xC0DE);
    let profiles = [
        SegmentProfile::Reorder { window: 3 },
        SegmentProfile::OverlapConflicting { extend: 8 },
        SegmentProfile::Retransmit { every: 2 },
        SegmentProfile::InOrder,
    ];
    let packets: Vec<_> = (0..8).map(|_| gen.infected_packet(1024, &set, 3)).collect();
    let schedules: Vec<Vec<Segment>> = packets
        .iter()
        .enumerate()
        .map(|(i, p)| {
            gen.segment_schedule(p, &set, ChopProfile::MidPattern { mtu: 128 }, profiles[i % 4])
        })
        .collect();
    let arrival = gen.interleave_schedule(&schedules.iter().map(Vec::len).collect::<Vec<_>>());

    let template = StreamFlow::new(ReassemblyConfig::new(2048), ScanState::fresh());
    let mut table = FlowTable::new(64, template);
    let mut cursors = vec![0usize; schedules.len()];
    let mut per_flow: Vec<Vec<Match>> = vec![Vec::new(); schedules.len()];
    let mut alerts = Vec::new();
    for &f in &arrival {
        let seg = &schedules[f][cursors[f]];
        cursors[f] += 1;
        table.ingest_segments(
            [FlowSegment {
                key: FlowKey(f as u128),
                seq: seg.seq,
                payload: &seg.bytes,
            }],
            |state, chunk, out| matcher.scan_chunk_into(state, chunk, out),
            &mut alerts,
        );
        per_flow[f].extend(alerts.iter().map(|a| a.matched));
        // The gauge tracks the true buffered total at every step.
        assert_eq!(
            table.stats().reassembly.bytes_held,
            table.buffered_bytes() as u64
        );
    }
    table.flush_flows(
        |state, chunk, out| matcher.scan_chunk_into(state, chunk, out),
        &mut alerts,
    );
    for a in &alerts {
        per_flow[a.key.0 as usize].extend([a.matched]);
    }
    assert_eq!(table.stats().evictions, 0);
    assert_eq!(table.buffered_bytes(), 0, "flush must drain every flow");
    assert_eq!(table.stats().reassembly.bytes_held, 0);
    assert!(table.stats().reassembly.overlap_conflicts > 0);
    for (f, p) in packets.iter().enumerate() {
        let want = matcher.find_all(&p.payload);
        assert_eq!(per_flow[f], want, "flow {f} diverged through the table");
    }
}

/// Evicting a flow with buffered out-of-order data must subtract its
/// bytes from the table-wide gauge (no phantom memory accounting).
#[test]
fn eviction_of_buffered_flow_keeps_gauge_honest() {
    let set = PatternSet::new(["hers"]).unwrap();
    let compiled =
        CompiledAutomaton::compile(&ReducedAutomaton::reduce(&Dfa::build(&set), DtpConfig::PAPER));
    let matcher = CompiledMatcher::new(&compiled, &set);
    let scan = |state: &mut ScanState, chunk: &[u8], out: &mut Vec<Match>| {
        matcher.scan_chunk_into(state, chunk, out)
    };

    let template = StreamFlow::new(ReassemblyConfig::new(256), ScanState::fresh());
    // Capacity-1: the second flow evicts the first.
    let mut table = FlowTable::with_ways(1, 1, template);
    let mut alerts = Vec::new();
    // Flow 1 buffers 8 out-of-order bytes behind a hole.
    table.ingest_segments(
        [FlowSegment { key: FlowKey(1), seq: 100, payload: b"AAAABBBB" }],
        scan,
        &mut alerts,
    );
    assert_eq!(table.stats().reassembly.bytes_held, 8);
    // Flow 2 arrives: flow 1 (and its buffer) leaves the table.
    table.ingest_segments(
        [FlowSegment { key: FlowKey(2), seq: 0, payload: b"hers" }],
        scan,
        &mut alerts,
    );
    assert_eq!(table.stats().evictions, 1);
    assert_eq!(table.stats().reassembly.bytes_held, 0);
    assert_eq!(table.buffered_bytes(), 0);
    assert_eq!(alerts.len(), 1, "the new flow scans normally");

    // remove() keeps the gauge honest too.
    table.ingest_segments(
        [FlowSegment { key: FlowKey(2), seq: 50, payload: b"CC" }],
        scan,
        &mut alerts,
    );
    assert_eq!(table.stats().reassembly.bytes_held, 2);
    assert!(table.remove(FlowKey(2)));
    assert_eq!(table.stats().reassembly.bytes_held, 0);

    // evict_idle() on a roomier table: the stale buffered flow retires
    // and its bytes leave the gauge.
    let mut table = FlowTable::new(
        8,
        StreamFlow::new(ReassemblyConfig::new(256), ScanState::fresh()),
    );
    table.ingest_segments(
        [FlowSegment { key: FlowKey(3), seq: 9, payload: b"D" }],
        scan,
        &mut alerts,
    );
    assert_eq!(table.stats().reassembly.bytes_held, 1);
    for i in 0..5u128 {
        table.touch(FlowKey(100 + i));
    }
    table.evict_idle(2);
    assert!(table.stats().idle_evictions >= 1);
    assert_eq!(table.stats().reassembly.bytes_held, 0);
    assert_eq!(table.buffered_bytes(), 0);
}

/// Degenerate-input hardening: zero capacities/ways/budgets must fail
/// loudly at construction, never misbehave at traffic time.
mod degenerate_inputs {
    use super::*;

    #[test]
    #[should_panic(expected = "flow table capacity must be non-zero")]
    fn zero_capacity_table_panics() {
        let _ = FlowTable::new(0, ScanState::fresh());
    }

    #[test]
    #[should_panic(expected = "associativity must be non-zero")]
    fn zero_ways_table_panics() {
        let _ = FlowTable::with_ways(8, 0, ScanState::fresh());
    }

    #[test]
    #[should_panic(expected = "reassembly budget must be non-zero")]
    fn zero_budget_reassembler_panics() {
        let _ = ReassemblyConfig::new(0);
    }
}

fn dense_patterns() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(
        proptest::collection::vec(prop_oneof![Just(b'a'), Just(b'b'), Just(b'c')], 1..6),
        1..8,
    )
}

/// Builds a full-coverage segment schedule from a payload, random cuts
/// and a random arrival permutation (any permutation is
/// in-order-deliverable when the budget covers the payload).
fn permuted_schedule(
    payload: &[u8],
    raw_cuts: &[prop::sample::Index],
    perm: &[prop::sample::Index],
) -> Vec<Segment> {
    let mut cuts: Vec<usize> = if payload.len() < 2 {
        Vec::new()
    } else {
        raw_cuts.iter().map(|i| 1 + i.index(payload.len() - 1)).collect()
    };
    cuts.sort_unstable();
    cuts.dedup();
    let mut segments: Vec<Segment> = Vec::new();
    let mut start = 0usize;
    for &cut in cuts.iter().chain(std::iter::once(&payload.len())) {
        if cut > start {
            segments.push(Segment {
                seq: start as u64,
                bytes: payload[start..cut].to_vec(),
            });
            start = cut;
        }
    }
    // Fisher-Yates driven by the proptest indices.
    for (i, idx) in perm.iter().enumerate() {
        if segments.is_empty() {
            break;
        }
        let len = segments.len();
        let j = idx.index(len);
        segments.swap(i % len, j);
    }
    segments
}

/// SplitMix64 finalizer: expands one proptest-chosen seed into the
/// independent draws a soup segment needs.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Fuzz-style hardening for `FlowTable::ingest_segment_at`:
    /// arbitrary segment soups — random seq/len/content, zero-length
    /// segments, u32-wrap-adjacent sequence numbers, random resyncs,
    /// forced evictions in a tiny table — must never panic, never
    /// exceed the per-flow budget table-wide, and keep the
    /// `bytes_held` gauge honest at every step.
    #[test]
    fn segment_soup_through_the_table_is_safe_and_accounted(
        seeds in proptest::collection::vec(any::<u64>(), 1..120),
    ) {
        let set = PatternSet::new(["abcab", "bca"]).unwrap();
        let compiled = CompiledAutomaton::compile(
            &ReducedAutomaton::reduce(&Dfa::build(&set), DtpConfig::PAPER),
        );
        let matcher = CompiledMatcher::new(&compiled, &set);
        const BUDGET: usize = 96;
        const CAPACITY: usize = 4; // tiny on purpose: the soup evicts
        let template = StreamFlow::new(ReassemblyConfig::new(BUDGET), ScanState::fresh());
        let mut table = FlowTable::with_ways(CAPACITY, 2, template);
        let mut out = Vec::new();
        for (t, &seed) in seeds.iter().enumerate() {
            let (r0, r1, r2, r3) =
                (mix(seed ^ 1), mix(seed ^ 2), mix(seed ^ 3), mix(seed ^ 4));
            let key = FlowKey((r0 % 6) as u128);
            let seq = match r1 % 4 {
                0 => r2 % 64,                       // near stream start
                1 => r2 % 4096,                     // mid-stream chaos
                2 => (u32::MAX as u64) - (r2 % 64), // just below the wrap
                _ => (u32::MAX as u64) + (r2 % 64), // just above the wrap
            };
            let len = (r3 % 48) as usize; // zero-length included
            let payload: Vec<u8> =
                (0..len).map(|i| b"abc"[(mix(r3 ^ i as u64) % 3) as usize]).collect();
            let resync = r1 % 7 == 0;
            table.ingest_segment_at(
                FlowSegment { key, seq, payload: &payload },
                t as u64,
                resync,
                |state, chunk, o| matcher.scan_chunk_into(state, chunk, o),
                &mut out,
            );
            prop_assert_eq!(
                table.stats().reassembly.bytes_held,
                table.buffered_bytes() as u64,
                "gauge diverged from the true buffered total"
            );
            prop_assert!(
                table.buffered_bytes() <= CAPACITY * BUDGET,
                "table-wide buffering exceeded capacity x per-flow budget"
            );
        }
        table.flush_flows(
            |state, chunk, o| matcher.scan_chunk_into(state, chunk, o),
            &mut out,
        );
        prop_assert_eq!(table.buffered_bytes(), 0);
        prop_assert_eq!(table.stats().reassembly.bytes_held, 0);
    }

    /// Any arrival permutation of any packetization reassembles to the
    /// whole-payload scan — compiled engine, generous budget.
    #[test]
    fn any_permutation_is_equivalent(
        patterns in dense_patterns(),
        payload in proptest::collection::vec(prop_oneof![Just(b'a'), Just(b'b'), Just(b'c')], 0..160),
        raw_cuts in proptest::collection::vec(any::<prop::sample::Index>(), 0..24),
        perm in proptest::collection::vec(any::<prop::sample::Index>(), 0..32),
    ) {
        let Ok(set) = PatternSet::new(&patterns) else { return Ok(()); };
        let naive = NaiveMatcher::new(&set).find_all(&payload);
        let compiled = CompiledAutomaton::compile(
            &ReducedAutomaton::reduce(&Dfa::build(&set), DtpConfig::PAPER),
        );
        let matcher = CompiledMatcher::new(&compiled, &set);
        let schedule = permuted_schedule(&payload, &raw_cuts, &perm);
        let budget = payload.len().max(1);
        let (got, stats) = reassemble_compiled(&matcher, &schedule, budget);
        prop_assert_eq!(got, naive, "permuted schedule diverged");
        prop_assert_eq!(stats.holes_skipped, 0, "full coverage + full budget: no holes");
    }

    /// Duplicating arbitrary segments of the permutation changes
    /// nothing: retransmit suppression is exact.
    #[test]
    fn duplicates_never_change_results(
        patterns in dense_patterns(),
        payload in proptest::collection::vec(prop_oneof![Just(b'a'), Just(b'b'), Just(b'c')], 1..120),
        raw_cuts in proptest::collection::vec(any::<prop::sample::Index>(), 0..16),
        dups in proptest::collection::vec(any::<prop::sample::Index>(), 1..8),
    ) {
        let Ok(set) = PatternSet::new(&patterns) else { return Ok(()); };
        let naive = NaiveMatcher::new(&set).find_all(&payload);
        let compiled = CompiledAutomaton::compile(
            &ReducedAutomaton::reduce(&Dfa::build(&set), DtpConfig::PAPER),
        );
        let matcher = CompiledMatcher::new(&compiled, &set);
        let mut schedule = permuted_schedule(&payload, &raw_cuts, &[]);
        // Insert duplicates of earlier segments at arbitrary points.
        for idx in &dups {
            let src = idx.index(schedule.len());
            let seg = schedule[src].clone();
            let at = idx.index(schedule.len() + 1).min(schedule.len());
            schedule.insert(at, seg);
        }
        let (got, _) = reassemble_compiled(&matcher, &schedule, payload.len());
        prop_assert_eq!(got, naive, "duplicated schedule diverged");
    }
}
