//! # dpi-proptest-compat
//!
//! A self-contained subset of the [`proptest`] crate, sufficient to run
//! every property suite in this workspace in hermetic build environments
//! with no crates.io access. It is wired in through a dependency rename
//! (`proptest = { package = "dpi-proptest-compat", ... }`) and provides
//! the surface the suites actually use:
//!
//! - the [`proptest!`] macro (multiple `#[test]` functions with
//!   `arg in strategy` bindings and an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header);
//! - [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`];
//! - [`Strategy`], [`Just`], [`any`], integer/float range strategies,
//!   [`collection::vec`], [`prop_oneof!`] and [`sample::Index`]
//!   (also reachable as `prop::sample::Index`).
//!
//! Differences from real proptest, deliberately accepted:
//!
//! - **no shrinking** — a failing case reports its number and message but
//!   is not minimized;
//! - **derived seeding** — each test's byte stream is seeded from the
//!   test's module path and name (or `PROPTEST_COMPAT_SEED` if set), so
//!   runs are reproducible without a persistence file;
//! - values are drawn uniformly, without proptest's bias toward
//!   structurally "interesting" cases.
//!
//! [`proptest`]: https://docs.rs/proptest

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::marker::PhantomData;
use std::ops::Range;

/// Per-suite configuration. Mirror of `proptest::test_runner::Config`
/// (subset: case count only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property is run against.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property case. Mirror of `proptest::test_runner::TestCaseError`
/// (subset).
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property did not hold; the payload is the assertion message.
    Fail(String),
}

impl TestCaseError {
    /// Creates a failure carrying `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
        }
    }
}

/// Deterministic byte source backing every strategy draw (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator whose stream is a pure function of `label`
    /// (normally the test's `module_path!()::name`), or of the
    /// `PROPTEST_COMPAT_SEED` environment variable when set.
    pub fn deterministic(label: &str) -> TestRng {
        if let Ok(seed) = std::env::var("PROPTEST_COMPAT_SEED") {
            if let Ok(n) = seed.parse::<u64>() {
                return TestRng { state: n };
            }
        }
        // FNV-1a over the label.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in label.as_bytes() {
            h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Returns the next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Draws uniformly from `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be non-zero");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// A source of random values of one type. Mirror of `proptest::strategy::
/// Strategy`, reduced to plain generation (no value trees / shrinking).
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// Strategy producing a constant. Mirror of `proptest::strategy::Just`.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy. Mirror of
/// `proptest::arbitrary::Arbitrary` (subset).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for sample::Index {
    fn arbitrary(rng: &mut TestRng) -> Self {
        sample::Index::from_raw(rng.next_u64() as usize)
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone)]
pub struct AnyStrategy<T>(PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy over all values of `T`. Mirror of `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

macro_rules! impl_strategy_for_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
    )*};
}
impl_strategy_for_int_range!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Uniform choice between boxed alternatives — the expansion target of
/// [`prop_oneof!`]. Mirror of `proptest::strategy::Union` (unweighted).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Creates a union over `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].sample(rng)
    }
}

impl<T> fmt::Debug for Union<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Union({} options)", self.options.len())
    }
}

/// Collection strategies. Mirror of `proptest::collection` (subset).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for vectors with lengths drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.size.start < self.size.end, "empty size range");
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Vector of `element` draws with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

/// Sampling helpers. Mirror of `proptest::sample` (subset).
pub mod sample {
    /// An index into a collection whose length is not yet known — resolved
    /// with [`Index::index`]. Mirror of `proptest::sample::Index`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(usize);

    impl Index {
        /// Creates an index from raw entropy.
        pub fn from_raw(raw: usize) -> Index {
            Index(raw)
        }

        /// Resolves against a collection of length `len`.
        ///
        /// # Panics
        ///
        /// Panics if `len` is zero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "cannot index an empty collection");
            self.0 % len
        }
    }
}

/// Alias namespace so call sites can write `prop::sample::Index`, as with
/// the real crate's prelude.
pub mod prop {
    pub use crate::sample;
}

/// Glob-import surface. Mirror of `proptest::prelude` (subset).
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Asserts a condition inside a property, failing the case (not the whole
/// process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`: {}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` != `{:?}`: {}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {{
        let options: ::std::vec::Vec<::std::boxed::Box<dyn $crate::Strategy<Value = _>>> =
            vec![$(::std::boxed::Box::new($strategy)),+];
        $crate::Union::new(options)
    }};
}

/// Defines property tests: each `#[test] fn name(arg in strategy, ...)`
/// runs its body against `cases` random argument draws.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(<$crate::ProptestConfig as ::core::default::Default>::default(); $($rest)*);
    };
}

/// Implementation detail of [`proptest!`]; do not invoke directly.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::deterministic(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)+
                let outcome: ::core::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!(
                        "property {} failed at case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Doc comments and multiple bindings parse; draws respect ranges.
        #[test]
        fn ranges_respected(x in 3usize..9, y in 0u8..255, flag in any::<bool>()) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(y < 255);
            let _: bool = flag;
        }

        #[test]
        fn vec_strategy_sizes(v in crate::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!((2..5).contains(&v.len()));
        }

        #[test]
        fn oneof_only_yields_listed_values(
            b in prop_oneof![Just(b'a'), Just(b'b'), Just(b'c')],
        ) {
            prop_assert!(b == b'a' || b == b'b' || b == b'c');
        }

        #[test]
        fn early_ok_return_is_supported(n in 0usize..10) {
            if n > 100 {
                return Ok(());
            }
            prop_assert_ne!(n, 100);
        }

        #[test]
        fn index_resolves_in_bounds(i in any::<prop::sample::Index>(), len in 1usize..40) {
            prop_assert!(i.index(len) < len);
        }
    }

    // A failing property must panic with the case number in the message.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        fn always_fails_helper(x in 0usize..4) {
            prop_assert!(x > 100, "x was {}", x);
        }
    }

    #[test]
    fn failing_property_panics_with_case_number() {
        let result = std::panic::catch_unwind(always_fails_helper);
        let err = result.expect_err("property must fail");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("always_fails_helper"), "{msg}");
        assert!(msg.contains("case 1/8"), "{msg}");
    }
}
