//! # dpi-rand-compat
//!
//! A self-contained, dependency-free subset of the [`rand`] crate's API,
//! sufficient for the deterministic workload generators in `dpi-rulesets`.
//! The workspace builds in hermetic environments with no crates.io access,
//! so the real `rand` cannot be fetched; this crate is wired in through a
//! dependency rename (`rand = { package = "dpi-rand-compat", ... }`) and
//! provides the same names and call shapes for the surface actually used:
//!
//! - [`rngs::StdRng`] + [`SeedableRng::seed_from_u64`]
//! - [`Rng::gen`], [`Rng::gen_range`] (integer, `usize`, and `f64` ranges,
//!   exclusive and inclusive), [`Rng::gen_bool`]
//! - [`SliceRandom::choose`] and [`SliceRandom::shuffle`]
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — high quality
//! and fully deterministic per seed, which is all the workspace requires
//! (every ruleset/traffic constant is regenerated from fixed seeds). The
//! *streams differ* from the real `rand::rngs::StdRng` (ChaCha12), which is
//! explicitly permitted: `rand` itself documents `StdRng` streams as
//! non-portable across versions, and no test in this workspace depends on
//! specific draws, only on per-seed determinism.
//!
//! [`rand`]: https://docs.rs/rand

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source. Mirror of `rand::RngCore` (subset).
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction. Mirror of `rand::SeedableRng` (subset).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The workspace's standard deterministic generator (xoshiro256++).
///
/// Not stream-compatible with `rand::rngs::StdRng`; see the crate docs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // An all-zero state would be a fixed point; SplitMix64 cannot
        // produce four zero outputs in a row, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Types that can be drawn uniformly from an [`RngCore`] — the shim's
/// analogue of sampling `rand::distributions::Standard`.
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges a value can be drawn from. Mirror of `rand`'s `SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift bounded draw (Lemire); bias is < 2^-64 per
                // draw, far below anything a deterministic workload test
                // could observe.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                if start == 0 && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (end - start) as u64 + 1;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                start + hi as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = f64::sample_standard(rng);
        self.start + unit * (self.end - self.start)
    }
}

/// User-facing convenience methods. Mirror of `rand::Rng` (subset).
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Random slice operations. Mirror of `rand::seq::SliceRandom` (subset).
pub trait SliceRandom {
    /// Element type of the slice.
    type Item;

    /// Returns a uniformly chosen element, or `None` if the slice is empty.
    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Fisher-Yates shuffles the slice in place.
    fn shuffle<R: RngCore>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }

    fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, rng.gen_range(0..=i));
        }
    }
}

/// Named generators. Mirror of `rand::rngs` (subset).
pub mod rngs {
    pub use crate::StdRng;
}

/// Glob-import surface. Mirror of `rand::prelude` (subset).
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, RngCore, SampleRange, SeedableRng, SliceRandom, Standard};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let draws_a: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let draws_b: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let draws_c: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(draws_a, draws_b);
        assert_ne!(draws_a, draws_c);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..4000 {
            let x: usize = rng.gen_range(8..64);
            assert!((8..64).contains(&x));
            let y: u32 = rng.gen_range(0..3);
            assert!(y < 3);
            let z: usize = rng.gen_range(0..=5);
            assert!(z <= 5);
            let f: f64 = rng.gen_range(0.0..10.0);
            assert!((0.0..10.0).contains(&f));
        }
    }

    #[test]
    fn range_sampling_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 6];
        for _ in 0..600 {
            seen[rng.gen_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.6)).count();
        assert!((5_500..6_500).contains(&hits), "{hits}");
    }

    #[test]
    fn choose_and_shuffle() {
        let mut rng = StdRng::seed_from_u64(5);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let items = [1u8, 2, 3];
        assert!(items.contains(items.choose(&mut rng).unwrap()));
        let mut v: Vec<u32> = (0..50).collect();
        let orig = v.clone();
        v.shuffle(&mut rng);
        assert_ne!(v, orig, "50 elements virtually never shuffle to identity");
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig);
    }

    #[test]
    fn gen_infers_common_types() {
        let mut rng = StdRng::seed_from_u64(9);
        let _: u8 = rng.gen();
        let _: u64 = rng.gen();
        let b: f64 = rng.gen();
        assert!((0.0..1.0).contains(&b));
    }
}
