//! # dpi-criterion-compat
//!
//! A self-contained subset of the [`criterion`] benchmark harness,
//! sufficient to build and run every bench in this workspace in hermetic
//! environments with no crates.io access. It is wired in through a
//! dependency rename (`criterion = { package = "dpi-criterion-compat",
//! ... }`) and provides: [`Criterion`], [`criterion_group!`] /
//! [`criterion_main!`], benchmark groups with [`Throughput`] annotation,
//! [`BenchmarkId`], and [`Bencher::iter`].
//!
//! Compared to real criterion there is no statistical analysis, HTML
//! report, or regression detection: each benchmark is warmed up, then
//! timed over `sample_size` samples, and the per-iteration median is
//! printed together with derived throughput when a [`Throughput`] was
//! declared. Results are also appended as JSON lines to the file named by
//! `BENCH_JSON` (when that environment variable is set) so CI can track
//! numbers across runs.
//!
//! [`criterion`]: https://docs.rs/criterion

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The measured routine processes this many bytes per iteration.
    Bytes(u64),
    /// The measured routine processes this many elements per iteration.
    Elements(u64),
}

/// A two-part benchmark identifier (`function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter display value.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: function.to_string(),
            parameter: parameter.to_string(),
        }
    }

    fn full(&self) -> String {
        if self.parameter.is_empty() {
            self.function.clone()
        } else {
            format!("{}/{}", self.function, self.parameter)
        }
    }
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Measures `routine`, called repeatedly; its return value is passed
    /// through [`black_box`] so the optimizer cannot delete the work.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up + calibration: find an iteration count that makes one
        // sample take roughly 10 ms (bounded so pathological routines
        // still finish).
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(10) || iters >= 1 << 20 {
                if elapsed < Duration::from_micros(1) {
                    iters = 1 << 20;
                } else if elapsed < Duration::from_millis(10) {
                    let scale = Duration::from_millis(10).as_nanos() as f64
                        / elapsed.as_nanos().max(1) as f64;
                    iters = ((iters as f64 * scale).ceil() as u64).clamp(1, 1 << 20);
                }
                break;
            }
            iters = iters.saturating_mul(4);
        }
        self.iters_per_sample = iters;
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }

    fn median_ns_per_iter(&self) -> f64 {
        if self.samples.is_empty() || self.iters_per_sample == 0 {
            return 0.0;
        }
        let mut ns: Vec<u128> = self.samples.iter().map(Duration::as_nanos).collect();
        ns.sort_unstable();
        let mid = ns[ns.len() / 2];
        mid as f64 / self.iters_per_sample as f64
    }
}

fn human_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

fn human_rate(per_sec: f64, unit: &str) -> String {
    if per_sec >= 1e9 {
        format!("{:.2} G{unit}/s", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.2} M{unit}/s", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.2} K{unit}/s", per_sec / 1e3)
    } else {
        format!("{per_sec:.1} {unit}/s")
    }
}

/// Appends one measurement as a JSON line to the file named by the
/// `BENCH_JSON` environment variable (no-op when unset). This is the one
/// definition of the BENCH_JSON schema — every bench goes through it via
/// [`Bencher::iter`] reporting, and non-criterion emitters (the repro
/// binary's throughput experiments) call it directly so CI tracks one
/// stream with one format. Not part of real criterion's API.
pub fn emit_bench_json(full_id: &str, median_ns: f64, bytes_per_iter: u64) {
    let Ok(path) = std::env::var("BENCH_JSON") else {
        return;
    };
    let line = format!(
        "{{\"id\":\"{full_id}\",\"median_ns\":{median_ns:.1},\"bytes_per_iter\":{bytes_per_iter}}}\n"
    );
    use std::io::Write as _;
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        let _ = f.write_all(line.as_bytes());
    }
}

fn report(full_id: &str, median_ns: f64, throughput: Option<Throughput>) {
    let rate = throughput.map(|t| match t {
        Throughput::Bytes(n) => human_rate(n as f64 / (median_ns / 1e9), "B"),
        Throughput::Elements(n) => human_rate(n as f64 / (median_ns / 1e9), "elem"),
    });
    match &rate {
        Some(r) => println!(
            "{full_id:<48} time: [{}]  thrpt: [{r}]",
            human_time(median_ns)
        ),
        None => println!("{full_id:<48} time: [{}]", human_time(median_ns)),
    }
    let bytes = match throughput {
        Some(Throughput::Bytes(n)) => n,
        _ => 0,
    };
    emit_bench_json(full_id, median_ns, bytes);
}

/// A named group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration throughput of subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark identified by `id` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            iters_per_sample: 0,
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher, input);
        let full = format!("{}/{}", self.name, id.full());
        report(&full, bencher.median_ns_per_iter(), self.throughput);
    }

    /// Runs a benchmark identified by a plain name.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            iters_per_sample: 0,
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        let full = format!("{}/{}", self.name, name);
        report(&full, bencher.median_ns_per_iter(), self.throughput);
    }

    /// Ends the group (separator line in the output).
    pub fn finish(self) {
        println!();
    }
}

/// Top-level benchmark driver. Mirror of `criterion::Criterion` (subset).
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            iters_per_sample: 0,
            samples: Vec::new(),
            sample_size: 10,
        };
        f(&mut bencher);
        report(name, bencher.median_ns_per_iter(), None);
        self
    }
}

/// Bundles benchmark functions under one group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("compat_smoke");
        group.throughput(Throughput::Bytes(1024));
        group.sample_size(3);
        let data = vec![1u8; 1024];
        group.bench_with_input(BenchmarkId::new("sum", "1k"), &data, |b, d| {
            b.iter(|| d.iter().map(|&x| x as u64).sum::<u64>());
        });
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.finish();
    }

    #[test]
    fn formatting_helpers() {
        assert!(human_time(12.0).contains("ns"));
        assert!(human_time(12_000.0).contains("µs"));
        assert!(human_time(12_000_000.0).contains("ms"));
        assert!(human_rate(2.5e9, "B").contains("GB/s"));
        assert!(human_rate(2.5e6, "B").contains("MB/s"));
    }

    criterion_group!(smoke, smoke_bench);

    fn smoke_bench(c: &mut Criterion) {
        c.bench_function("macro_smoke", |b| b.iter(|| black_box(2 * 2)));
    }

    #[test]
    fn group_macro_compiles_and_runs() {
        smoke();
    }
}
