//! Naive quadratic reference matcher.
//!
//! Used exclusively as the ground truth in differential and property tests:
//! its correctness is self-evident (it literally checks every pattern at
//! every position), so any disagreement with the automata implicates them.

use crate::match_event::{Match, MultiMatcher};
use crate::pattern::PatternSet;

/// Brute-force matcher: O(haystack × total pattern bytes).
#[derive(Debug, Clone)]
pub struct NaiveMatcher<'a> {
    set: &'a PatternSet,
}

impl<'a> NaiveMatcher<'a> {
    /// Creates a naive matcher over `set`.
    ///
    /// # Examples
    ///
    /// ```
    /// use dpi_automaton::{MultiMatcher, NaiveMatcher, PatternSet};
    /// let set = PatternSet::new(["he", "she"])?;
    /// let naive = NaiveMatcher::new(&set);
    /// assert_eq!(naive.find_all(b"she").len(), 2);
    /// # Ok::<(), dpi_automaton::PatternSetError>(())
    /// ```
    pub fn new(set: &'a PatternSet) -> Self {
        NaiveMatcher { set }
    }
}

impl MultiMatcher for NaiveMatcher<'_> {
    fn find_all(&self, haystack: &[u8]) -> Vec<Match> {
        let folded: Vec<u8> = haystack.iter().map(|&b| self.set.fold(b)).collect();
        let mut out = Vec::new();
        for end in 1..=folded.len() {
            for (id, pattern) in self.set.iter() {
                if pattern.len() <= end && &folded[end - pattern.len()..end] == pattern {
                    out.push(Match { end, pattern: id });
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::PatternId;

    #[test]
    fn finds_overlaps_and_orders_canonically() {
        let set = PatternSet::new(["he", "she", "his", "hers"]).unwrap();
        let naive = NaiveMatcher::new(&set);
        let found = naive.find_all(b"ushers");
        assert_eq!(
            found,
            vec![
                Match { end: 4, pattern: PatternId(0) }, // he
                Match { end: 4, pattern: PatternId(1) }, // she
                Match { end: 6, pattern: PatternId(3) }, // hers
            ]
        );
    }

    #[test]
    fn empty_haystack_no_matches() {
        let set = PatternSet::new(["x"]).unwrap();
        assert!(NaiveMatcher::new(&set).find_all(b"").is_empty());
    }

    #[test]
    fn nocase_matches_any_casing() {
        let set = PatternSet::new_nocase(["Root"]).unwrap();
        let naive = NaiveMatcher::new(&set);
        assert!(naive.is_match(b"ROOT"));
        assert!(naive.is_match(b"rOoT"));
        assert!(!naive.is_match(b"roo"));
    }

    #[test]
    fn self_overlapping_pattern() {
        let set = PatternSet::new(["aaa"]).unwrap();
        let naive = NaiveMatcher::new(&set);
        assert_eq!(naive.find_all(b"aaaaa").len(), 3);
    }
}
