//! Shard planning: splitting one [`PatternSet`] into several smaller sets
//! whose *compiled* automata each fit a per-core cache budget.
//!
//! PR 1 measured why this exists: interleaving scan lanes *within* one
//! core (the software rendering of the paper's engine phasing) loses on
//! large automata, because all lanes walk one big state machine through
//! one shared cache — where the paper's hardware gives every engine its
//! own memory ports. The correct software analogue of the paper's
//! *per-block memories* is therefore the split the paper itself applies
//! to oversized rulesets (§IV.B): partition the patterns, build one
//! independent automaton per partition, and give each partition its own
//! core — its own L1/L2 — instead of its own block RAM.
//!
//! [`PatternSet::plan_shards`] chooses that partition. It prefers
//! [`PatternSet::split_by_prefix`] (keeping a start byte's patterns
//! together minimizes duplicated shallow states, exactly as it minimizes
//! per-block depth-1 LUT entries in the hardware planner) and falls back
//! to the length-balanced [`PatternSet::split`] when the prefix
//! clustering skews — e.g. when most bytes live under one start
//! character, a shape real Snort content sets do exhibit. Shard sizes are
//! judged by [`ShardCostModel`], a calibrated estimate of the flat arena
//! bytes `dpi-core`'s compiled automaton will occupy, so the planner can
//! run *before* any automaton is built (building first and measuring
//! would cost more than the plan is worth: DFA construction dominates
//! compile time).

use crate::pattern::{PatternId, PatternSet};

/// Which split produced a [`ShardPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitStrategy {
    /// [`PatternSet::split_by_prefix`]: start-byte clusters bin-packed by
    /// weight — the default, minimizing duplicated shallow states.
    Prefix,
    /// [`PatternSet::split`]: longest-first round-robin — the fallback
    /// when prefix clustering leaves one shard far above its fair share.
    RoundRobin,
}

impl std::fmt::Display for SplitStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SplitStrategy::Prefix => write!(f, "prefix"),
            SplitStrategy::RoundRobin => write!(f, "round-robin"),
        }
    }
}

/// Linear model of the flat-memory bytes a compiled automaton occupies,
/// used to size shards without building them.
///
/// `dpi-core`'s compiled form (see its `CompiledAutomaton::memory_bytes`)
/// is a fixed 256-row default-transition table plus per-state CSR
/// entries. States of an Aho-Corasick automaton are exactly the distinct
/// pattern prefixes plus the start state — [`PatternSet::trie_states`]
/// counts them without building anything — so the estimate is
/// `fixed_bytes + bytes_per_state × trie_states`.
///
/// # Examples
///
/// ```
/// use dpi_automaton::{PatternSet, ShardCostModel};
/// let set = PatternSet::new(["he", "she", "his", "hers"])?;
/// let model = ShardCostModel::default();
/// // 10 states (Figure 1) dominated by the fixed LUT at this size.
/// assert!(model.estimate(&set) > 11_000);
/// # Ok::<(), dpi_automaton::PatternSetError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardCostModel {
    /// Size-independent bytes: the 256-row compiled LUT under the paper's
    /// `k2 = 4, k3 = 1` configuration is `256 × 11 × 4 = 11,264` bytes.
    pub fixed_bytes: usize,
    /// Bytes per automaton state: three `u32` offset/index entries (12)
    /// plus CSR keys/targets and match-output words. Measured against
    /// `CompiledAutomaton::memory_bytes` on the paper-style rulesets the
    /// real slope runs ~17 B/state at 300 strings up to ~29 B/state at
    /// 6,275 (larger sets store more pointers per state); the default is
    /// calibrated to the large end, where shard planning actually binds,
    /// and deliberately over-estimates small sets (erring toward smaller
    /// shards, never over-budget ones).
    pub bytes_per_state: usize,
}

impl Default for ShardCostModel {
    fn default() -> Self {
        ShardCostModel {
            fixed_bytes: 11_264,
            bytes_per_state: 26,
        }
    }
}

impl ShardCostModel {
    /// Estimated compiled-arena bytes for `set`.
    pub fn estimate(&self, set: &PatternSet) -> usize {
        self.fixed_bytes + self.bytes_per_state * set.trie_states()
    }
}

/// Why a shard plan could not be produced.
///
/// Patterns are atomic: a shard must hold each of its patterns whole, so
/// no shard count can push a shard's estimate below the cost of its
/// single most expensive pattern. When even that floor exceeds the
/// per-shard budget the request is unsatisfiable and
/// [`PatternSet::plan_shards`] reports it as this structured error
/// (instead of panicking or silently returning an over-budget plan the
/// caller would deploy believing it cache-resident).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardPlanError {
    /// One pattern alone estimates above the per-shard budget.
    PatternExceedsBudget {
        /// The offending pattern.
        pattern: PatternId,
        /// Its length in bytes.
        pattern_len: usize,
        /// Estimated compiled-arena bytes of a shard holding only it.
        estimated_bytes: usize,
        /// The per-shard budget it exceeds.
        budget_bytes: usize,
    },
}

impl std::fmt::Display for ShardPlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardPlanError::PatternExceedsBudget {
                pattern,
                pattern_len,
                estimated_bytes,
                budget_bytes,
            } => write!(
                f,
                "pattern {pattern} ({pattern_len} bytes) alone estimates \
                 {estimated_bytes} arena bytes, exceeding the {budget_bytes}-byte \
                 per-shard budget; no shard count can satisfy this spec"
            ),
        }
    }
}

impl std::error::Error for ShardPlanError {}

/// Inputs to [`PatternSet::plan_shards`].
#[derive(Debug, Clone, Copy)]
pub struct ShardSpec {
    /// Preferred shard count — normally the scanning core count. The
    /// planner starts here and only adds shards (in multiples of this
    /// hint, so work still divides evenly across cores) while any shard's
    /// estimate exceeds `budget_bytes`.
    pub shards_hint: usize,
    /// Per-shard arena budget in bytes — the cache level each shard
    /// should fit (typically L2; the default is 1 MiB — conservative for
    /// current per-core L2 sizes while keeping the shard count, and with
    /// it the shards-times-payload work multiplier, as low as possible).
    pub budget_bytes: usize,
    /// Hard ceiling on shard count (also capped by the pattern count).
    pub max_shards: usize,
    /// Maximum tolerated ratio of the largest shard estimate to the fair
    /// share before the prefix split is abandoned for the round-robin
    /// split.
    pub skew_limit: f64,
    /// Arena-byte model used to judge shard sizes.
    pub model: ShardCostModel,
}

impl ShardSpec {
    /// A spec targeting `cores` scanning cores with default budget, cap
    /// and skew tolerance.
    ///
    /// # Examples
    ///
    /// ```
    /// use dpi_automaton::ShardSpec;
    /// let spec = ShardSpec::for_cores(4);
    /// assert_eq!(spec.shards_hint, 4);
    /// assert_eq!(spec.budget_bytes, 1024 * 1024);
    /// ```
    pub fn for_cores(cores: usize) -> ShardSpec {
        ShardSpec {
            shards_hint: cores.max(1),
            budget_bytes: 1024 * 1024,
            max_shards: 64,
            skew_limit: 1.5,
            model: ShardCostModel::default(),
        }
    }
}

/// A planned partition of a [`PatternSet`] into independently compilable
/// shards, produced by [`PatternSet::plan_shards`].
#[derive(Debug, Clone)]
pub struct ShardPlan {
    /// The shards: each a standalone pattern set plus the map from its
    /// local pattern ids back to ids in the original set (`ids[local]` is
    /// the global id, ascending within each shard).
    pub parts: Vec<(PatternSet, Vec<PatternId>)>,
    /// Which split produced the partition.
    pub strategy: SplitStrategy,
    /// Estimated compiled-arena bytes per shard, parallel to `parts`.
    pub estimated_bytes: Vec<usize>,
}

impl ShardPlan {
    /// Number of shards.
    pub fn len(&self) -> usize {
        self.parts.len()
    }

    /// `true` when the plan holds no shards at all. Never true for a plan
    /// produced by [`PatternSet::plan_shards`] (every plan has ≥ 1 shard);
    /// provided for `len`/`is_empty` API completeness.
    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }

    /// Largest per-shard estimate — the quantity compared against the
    /// budget.
    pub fn max_estimated_bytes(&self) -> usize {
        self.estimated_bytes.iter().copied().max().unwrap_or(0)
    }

    /// Ratio of the largest shard estimate to the mean estimate (1.0 is
    /// perfectly balanced).
    pub fn skew(&self) -> f64 {
        if self.estimated_bytes.is_empty() {
            return 1.0;
        }
        let total: usize = self.estimated_bytes.iter().sum();
        let fair = total as f64 / self.estimated_bytes.len() as f64;
        self.max_estimated_bytes() as f64 / fair.max(1.0)
    }
}

impl PatternSet {
    /// Number of states the Aho-Corasick automaton for this set will have:
    /// one per distinct non-empty pattern prefix, plus the start state.
    ///
    /// This is exact — trie construction, subset construction and the
    /// DTP reduction all preserve the state count — and costs one hash
    /// per prefix, far cheaper than building the automaton.
    ///
    /// # Examples
    ///
    /// ```
    /// use dpi_automaton::PatternSet;
    /// // Figure 1 of the paper: {he, she, his, hers} has 10 states.
    /// let set = PatternSet::new(["he", "she", "his", "hers"])?;
    /// assert_eq!(set.trie_states(), 10);
    /// # Ok::<(), dpi_automaton::PatternSetError>(())
    /// ```
    pub fn trie_states(&self) -> usize {
        let mut seen: std::collections::HashSet<&[u8]> = std::collections::HashSet::new();
        for (_, p) in self.iter() {
            for len in 1..=p.len() {
                seen.insert(&p[..len]);
            }
        }
        seen.len() + 1
    }

    /// Plans a shard layout for scanning this set across cores.
    ///
    /// Starts at `spec.shards_hint` shards and grows the count (in
    /// hint-sized steps, capped by `spec.max_shards` and the pattern
    /// count) until every shard's estimated compiled arena fits
    /// `spec.budget_bytes` — or the cap is reached, in which case the
    /// tightest achievable plan is returned. At each count the prefix
    /// split is tried first; if its largest shard exceeds
    /// `spec.skew_limit ×` the fair share, the round-robin split is
    /// used instead when it balances better.
    ///
    /// # Errors
    ///
    /// [`ShardPlanError::PatternExceedsBudget`] when a single pattern's
    /// estimated arena alone exceeds `spec.budget_bytes` — patterns are
    /// atomic, so no shard count could satisfy the spec and growing the
    /// count would only burn the cap to return an over-budget plan.
    ///
    /// # Examples
    ///
    /// ```
    /// use dpi_automaton::{PatternSet, ShardSpec};
    /// let strings: Vec<String> = (0..40)
    ///     .map(|i| format!("{}pattern{i}", (b'a' + (i % 8) as u8) as char))
    ///     .collect();
    /// let set = PatternSet::new(&strings)?;
    /// let plan = set.plan_shards(&ShardSpec::for_cores(4))?;
    /// assert_eq!(plan.len(), 4);
    /// // Every pattern appears in exactly one shard.
    /// let total: usize = plan.parts.iter().map(|(s, _)| s.len()).sum();
    /// assert_eq!(total, set.len());
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn plan_shards(&self, spec: &ShardSpec) -> Result<ShardPlan, ShardPlanError> {
        // Feasibility first: the cheapest shard containing pattern `p`
        // holds `p` alone, at `fixed + bytes_per_state × (len + 1)` (a
        // single pattern's trie is a chain, one state per prefix plus
        // start). If that floor is over budget, no plan satisfies it.
        for (id, p) in self.iter() {
            let floor = spec.model.fixed_bytes + spec.model.bytes_per_state * (p.len() + 1);
            if floor > spec.budget_bytes {
                return Err(ShardPlanError::PatternExceedsBudget {
                    pattern: id,
                    pattern_len: p.len(),
                    estimated_bytes: floor,
                    budget_bytes: spec.budget_bytes,
                });
            }
        }
        let cap = spec.max_shards.clamp(1, self.len());
        let step = spec.shards_hint.max(1);
        let mut n = step.min(cap);
        loop {
            let plan = self.plan_exactly(n, spec);
            if plan.max_estimated_bytes() <= spec.budget_bytes || n >= cap {
                return Ok(plan);
            }
            n = (n + step).min(cap);
        }
    }

    /// One candidate plan with exactly `n` shards (strategy chosen by the
    /// skew rule; `n = 1` is the whole set).
    fn plan_exactly(&self, n: usize, spec: &ShardSpec) -> ShardPlan {
        let estimates =
            |parts: &[(PatternSet, Vec<PatternId>)]| -> Vec<usize> {
                parts.iter().map(|(s, _)| spec.model.estimate(s)).collect()
            };
        if n <= 1 {
            let ids = self.iter().map(|(id, _)| id).collect();
            let parts = vec![(self.clone(), ids)];
            let estimated_bytes = estimates(&parts);
            return ShardPlan {
                parts,
                strategy: SplitStrategy::Prefix,
                estimated_bytes,
            };
        }
        let prefix = self.split_by_prefix(n);
        let prefix_est = estimates(&prefix);
        let total: usize = prefix_est.iter().sum();
        let fair = (total as f64 / n as f64).max(1.0);
        let prefix_max = prefix_est.iter().copied().max().unwrap_or(0);
        if (prefix_max as f64) <= spec.skew_limit * fair {
            return ShardPlan {
                parts: prefix,
                strategy: SplitStrategy::Prefix,
                estimated_bytes: prefix_est,
            };
        }
        // Prefix clustering skewed: fall back to the length-balanced
        // split when it actually improves the worst shard.
        let rr = self.split(n);
        let rr_est = estimates(&rr);
        let rr_max = rr_est.iter().copied().max().unwrap_or(0);
        if rr_max < prefix_max {
            ShardPlan {
                parts: rr,
                strategy: SplitStrategy::RoundRobin,
                estimated_bytes: rr_est,
            }
        } else {
            ShardPlan {
                parts: prefix,
                strategy: SplitStrategy::Prefix,
                estimated_bytes: prefix_est,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diverse_set(count: usize, starts: usize) -> PatternSet {
        let strings: Vec<String> = (0..count)
            .map(|i| format!("{}needle{i:04}", (b'a' + (i % starts) as u8) as char))
            .collect();
        PatternSet::new(&strings).unwrap()
    }

    #[test]
    fn trie_states_matches_figure1() {
        let set = PatternSet::new(["he", "she", "his", "hers"]).unwrap();
        assert_eq!(set.trie_states(), 10);
    }

    #[test]
    fn trie_states_counts_shared_prefixes_once() {
        let set = PatternSet::new(["abc", "abd", "ab"]).unwrap();
        // Prefixes: a, ab, abc, abd → 4 + start.
        assert_eq!(set.trie_states(), 5);
    }

    #[test]
    fn plan_uses_hint_when_budget_is_loose() {
        let set = diverse_set(64, 8);
        let plan = set.plan_shards(&ShardSpec::for_cores(4)).unwrap();
        assert_eq!(plan.len(), 4);
        assert_eq!(plan.strategy, SplitStrategy::Prefix);
    }

    #[test]
    fn plan_partitions_all_patterns_exactly_once() {
        let set = diverse_set(50, 6);
        let plan = set.plan_shards(&ShardSpec::for_cores(3)).unwrap();
        let mut seen: Vec<u32> = plan
            .parts
            .iter()
            .flat_map(|(_, ids)| ids.iter().map(|id| id.0))
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..50).collect::<Vec<_>>());
        // Local pattern i must be the global pattern ids[i].
        for (sub, ids) in &plan.parts {
            for (local, global) in ids.iter().enumerate() {
                assert_eq!(sub.pattern(PatternId(local as u32)), set.pattern(*global));
            }
        }
    }

    #[test]
    fn tight_budget_grows_shard_count_in_hint_steps() {
        let set = diverse_set(200, 16);
        let mut spec = ShardSpec::for_cores(2);
        let one_shard = spec.model.estimate(&set);
        // Force roughly a 4-way split.
        spec.budget_bytes = spec.model.fixed_bytes + (one_shard - spec.model.fixed_bytes) / 4;
        let plan = set.plan_shards(&spec).unwrap();
        assert!(plan.len() > 2, "expected growth past the hint");
        assert_eq!(plan.len() % 2, 0, "growth must keep core multiples");
        assert!(plan.max_estimated_bytes() <= spec.budget_bytes);
    }

    #[test]
    fn single_pattern_over_budget_is_a_structured_error() {
        // A 2,000-byte pattern floors at fixed + 26 × 2001 bytes; any
        // budget below that is unsatisfiable by *any* shard count.
        let mut strings = vec!["z".repeat(2000)];
        strings.push("short".to_string());
        let set = PatternSet::new(&strings).unwrap();
        let mut spec = ShardSpec::for_cores(2);
        let floor = spec.model.fixed_bytes + spec.model.bytes_per_state * 2001;
        spec.budget_bytes = floor - 1;
        spec.max_shards = 64;
        let err = set.plan_shards(&spec).unwrap_err();
        match err {
            ShardPlanError::PatternExceedsBudget {
                pattern,
                pattern_len,
                estimated_bytes,
                budget_bytes,
            } => {
                assert_eq!(set.pattern(pattern).len(), 2000);
                assert_eq!(pattern_len, 2000);
                assert_eq!(estimated_bytes, floor);
                assert_eq!(budget_bytes, floor - 1);
            }
        }
        assert!(err.to_string().contains("per-shard budget"), "{err}");
        // One byte of slack above the floor and planning succeeds again
        // (the giant pattern simply gets a shard of its own at the cap).
        spec.budget_bytes = floor;
        assert!(set.plan_shards(&spec).is_ok());
    }

    #[test]
    fn tight_but_feasible_budget_stops_at_cap() {
        // Budget above every single-pattern floor but below what 8 shards
        // can reach: the planner must stop at the cap and return the
        // tightest achievable (over-budget) plan rather than erroring.
        let set = diverse_set(30, 5);
        let mut spec = ShardSpec::for_cores(2);
        let worst_floor = set
            .iter()
            .map(|(_, p)| spec.model.fixed_bytes + spec.model.bytes_per_state * (p.len() + 1))
            .max()
            .unwrap();
        spec.budget_bytes = worst_floor + 1;
        spec.max_shards = 8;
        let plan = set.plan_shards(&spec).unwrap();
        assert_eq!(plan.len(), 8);
        assert!(plan.max_estimated_bytes() > spec.budget_bytes);
    }

    #[test]
    fn skewed_prefixes_fall_back_to_round_robin() {
        // Byte balance is not state balance: cluster 'a' holds four long
        // patterns sharing nothing past the first byte (~2000 states),
        // cluster 'b' holds forty patterns sharing a 49-byte spine (~90
        // states), and the two clusters weigh the same in bytes. The
        // prefix split keeps each cluster whole — one shard gets nearly
        // all the states — while the round-robin split spreads the 'a'
        // patterns and halves the worst shard.
        let mut strings: Vec<String> = (0..4u8)
            .map(|i| format!("a{}", ((b'c' + i) as char).to_string().repeat(499)))
            .collect();
        for i in 0..40 {
            strings.push(format!("{}{i:02}", "b".repeat(48)));
        }
        let set = PatternSet::new(&strings).unwrap();
        let plan = set.plan_exactly(2, &ShardSpec::for_cores(2));
        assert_eq!(plan.strategy, SplitStrategy::RoundRobin);
        assert_eq!(plan.len(), 2);
        // The fallback must have improved the worst shard.
        let prefix_parts = set.split_by_prefix(2);
        let model = ShardCostModel::default();
        let prefix_max = prefix_parts
            .iter()
            .map(|(s, _)| model.estimate(s))
            .max()
            .unwrap();
        assert!(plan.max_estimated_bytes() < prefix_max);
    }

    #[test]
    fn unsplittable_giant_keeps_prefix_strategy() {
        // A single 3000-byte pattern dominates every possible partition;
        // round-robin cannot improve the worst shard, so the planner must
        // not switch strategies just because the skew check fired.
        let mut strings = vec!["z".repeat(3000)];
        for i in 0..12 {
            strings.push(format!("{}x", (b'a' + i as u8) as char));
        }
        let set = PatternSet::new(&strings).unwrap();
        let plan = set.plan_exactly(4, &ShardSpec::for_cores(4));
        assert_eq!(plan.strategy, SplitStrategy::Prefix);
        assert_eq!(plan.len(), 4);
    }

    #[test]
    fn balanced_prefixes_keep_prefix_strategy() {
        let set = diverse_set(80, 8);
        let plan = set.plan_exactly(4, &ShardSpec::for_cores(4));
        assert_eq!(plan.strategy, SplitStrategy::Prefix);
        assert!(plan.skew() <= 2.0, "skew {}", plan.skew());
    }

    #[test]
    fn more_shards_than_patterns_is_capped() {
        let set = PatternSet::new(["a", "b", "c"]).unwrap();
        let plan = set.plan_shards(&ShardSpec::for_cores(8)).unwrap();
        assert_eq!(plan.len(), 3);
    }

    #[test]
    fn single_core_plan_is_whole_set() {
        let set = diverse_set(20, 4);
        let mut spec = ShardSpec::for_cores(1);
        spec.budget_bytes = usize::MAX;
        let plan = set.plan_shards(&spec).unwrap();
        assert_eq!(plan.len(), 1);
        assert_eq!(plan.parts[0].0.len(), set.len());
    }

    #[test]
    fn estimate_tracks_state_count() {
        let small = diverse_set(10, 2);
        let large = diverse_set(300, 8);
        let model = ShardCostModel::default();
        assert!(model.estimate(&large) > model.estimate(&small));
        assert_eq!(
            model.estimate(&small),
            model.fixed_bytes + model.bytes_per_state * small.trie_states()
        );
    }
}
