//! In-crate property tests for the automaton substrate: structural
//! invariants of the trie, failure function and move function that the
//! rest of the workspace builds on.

#![cfg(test)]

use crate::{Dfa, MultiMatcher, Nfa, PatternSet, StateId, Trie};
use proptest::prelude::*;

fn pattern_vec() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(
        proptest::collection::vec(prop_oneof![Just(b'x'), Just(b'y'), Just(b'z'), any::<u8>()], 1..8),
        1..10,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Trie: depth equals path length; parent/in_byte are consistent;
    /// BFS ids are depth-monotone.
    #[test]
    fn trie_structural_invariants(patterns in pattern_vec()) {
        let Ok(set) = PatternSet::new(&patterns) else { return Ok(()); };
        let trie = Trie::build(&set);
        let mut prev_depth = 0;
        for (id, state) in trie.iter() {
            prop_assert_eq!(trie.path(id).len(), state.depth() as usize);
            prop_assert!(state.depth() >= prev_depth, "BFS order broken");
            prev_depth = state.depth();
            if let Some(parent) = state.parent() {
                let pstate = trie.state(parent);
                prop_assert_eq!(pstate.depth() + 1, state.depth());
                let back = pstate.child(state.in_byte().expect("non-root"));
                prop_assert_eq!(back, Some(id));
            }
        }
        // Every pattern's walk ends at a state marked terminal for it.
        for (pid, pattern) in set.iter() {
            let mut at = StateId::START;
            for &b in pattern {
                at = trie.state(at).child(b).expect("pattern path exists");
            }
            prop_assert!(trie.state(at).terminal().contains(&pid));
        }
    }

    /// Failure function: strictly shallower, and fail(s) is the longest
    /// proper suffix of path(s) that is itself a path in the trie.
    #[test]
    fn fail_links_are_longest_proper_suffixes(patterns in pattern_vec()) {
        let Ok(set) = PatternSet::new(&patterns) else { return Ok(()); };
        let nfa = Nfa::build(&set);
        let trie = nfa.trie();
        // Collect all trie paths for membership checks.
        let paths: std::collections::HashMap<Vec<u8>, StateId> = trie
            .iter()
            .map(|(id, _)| (trie.path(id), id))
            .collect();
        for (id, state) in trie.iter() {
            if id == StateId::START {
                continue;
            }
            let f = nfa.fail(id);
            prop_assert!(trie.state(f).depth() < state.depth());
            let path = trie.path(id);
            let fail_path = trie.path(f);
            // fail path must be a proper suffix of path…
            prop_assert!(path.ends_with(&fail_path));
            prop_assert!(fail_path.len() < path.len());
            // …and no longer proper suffix may be a trie path.
            for start in 1..path.len() - fail_path.len() {
                prop_assert!(
                    !paths.contains_key(&path[start..]),
                    "missed longer suffix {:?}",
                    &path[start..]
                );
            }
        }
    }

    /// Move function vs. fail-function single steps agree from every state
    /// on every byte (the DFA is the NFA's fail-closure).
    #[test]
    fn dfa_equals_nfa_closure(patterns in pattern_vec()) {
        let Ok(set) = PatternSet::new(&patterns) else { return Ok(()); };
        let nfa = Nfa::build(&set);
        let dfa = Dfa::from_nfa(&nfa);
        for i in 0..dfa.len() {
            let s = StateId(i as u32);
            for c in 0..=255u8 {
                prop_assert_eq!(dfa.step(s, c), nfa.step(s, c));
            }
        }
    }

    /// Output closure: outputs of a state = patterns whose bytes suffix
    /// the state's path.
    #[test]
    fn outputs_are_suffix_patterns(patterns in pattern_vec()) {
        let Ok(set) = PatternSet::new(&patterns) else { return Ok(()); };
        let nfa = Nfa::build(&set);
        let trie = nfa.trie();
        for (id, _) in trie.iter() {
            let path = trie.path(id);
            let mut expected: Vec<_> = set
                .iter()
                .filter(|(_, p)| path.ends_with(p))
                .map(|(pid, _)| pid)
                .collect();
            expected.sort_unstable();
            let mut got = nfa.output(id).to_vec();
            got.sort_unstable();
            prop_assert_eq!(got, expected, "outputs at {:?}", path);
        }
    }

    /// NFA lookup accounting: total lookups ≥ bytes, and ≤ 2×bytes +
    /// max-depth (the classic amortized bound).
    #[test]
    fn nfa_lookup_amortized_bound(
        patterns in pattern_vec(),
        haystack in proptest::collection::vec(any::<u8>(), 0..300),
    ) {
        let Ok(set) = PatternSet::new(&patterns) else { return Ok(()); };
        let nfa = Nfa::build(&set);
        let m = crate::NfaMatcher::new(&nfa, &set);
        let counted = m.scan_counting(&haystack);
        prop_assert!(counted.lookups >= haystack.len());
        let bound = 2 * haystack.len() + nfa.trie().max_depth() as usize + 1;
        prop_assert!(
            counted.lookups <= bound,
            "lookups {} exceed amortized bound {}",
            counted.lookups,
            bound
        );
    }

    /// Splits partition the id space and preserve pattern bytes, for both
    /// strategies and any group count.
    #[test]
    fn splits_partition(patterns in pattern_vec(), groups in 1usize..6) {
        let Ok(set) = PatternSet::new(&patterns) else { return Ok(()); };
        let groups = groups.min(set.len());
        for parts in [set.split(groups), set.split_by_prefix(groups)] {
            let mut seen = vec![false; set.len()];
            for (sub, ids) in &parts {
                prop_assert_eq!(sub.len(), ids.len());
                for (local, global) in ids.iter().enumerate() {
                    prop_assert!(!seen[global.index()], "duplicate assignment");
                    seen[global.index()] = true;
                    prop_assert_eq!(
                        sub.pattern(crate::PatternId(local as u32)),
                        set.pattern(*global)
                    );
                }
            }
            prop_assert!(seen.iter().all(|&b| b), "pattern lost in split");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The tentpole soundness invariant of the approximate
    /// pre-classifier: whatever the byte budget, **every** exact match
    /// lies inside some flag's window — for both cover constructions.
    /// A violation here means the two-stage path can drop a match; the
    /// pre-classifier is only ever allowed to over-accept.
    #[test]
    fn approx_windows_cover_every_exact_match(
        patterns in pattern_vec(),
        budget in prop_oneof![Just(1usize), 64usize..4096, Just(1usize << 20)],
        fill in proptest::collection::vec(any::<u8>(), 0..200),
        picks in proptest::collection::vec(0usize..16 * 200, 0..8),
        nocase in any::<bool>(),
    ) {
        let set = if nocase {
            crate::PatternSet::new_nocase(&patterns)
        } else {
            crate::PatternSet::new(&patterns)
        };
        let Ok(set) = set else { return Ok(()); };
        // Haystack: random fill with drawn patterns spliced in, so
        // matches actually occur.
        let mut hay = fill;
        for &pick in &picks {
            let p = &patterns[(pick / 200) % patterns.len()];
            let pos = (pick % 200) % (hay.len() + 1);
            hay.splice(pos..pos, p.iter().copied());
        }
        let exact = crate::NaiveMatcher::new(&set).find_all(&hay);
        let config = crate::ApproxConfig::with_budget(budget);
        let prefix = crate::PrefixCover::build(&set, &config, None);
        let grams = crate::GramCover::build(&set, &config, None);
        for (kind, cover) in [
            ("prefix", &prefix as &dyn crate::PreClassifier),
            ("grams", &grams as &dyn crate::PreClassifier),
        ] {
            let mut windows: Vec<std::ops::Range<u64>> = Vec::new();
            let mut state = crate::ApproxState::fresh();
            cover.scan_flags(&mut state, &hay, &mut |f| windows.push(f.window()));
            for m in &exact {
                let start = (m.end - set.pattern_len(m.pattern)) as u64;
                let end = m.end as u64;
                prop_assert!(
                    windows.iter().any(|w| w.start <= start && end <= w.end),
                    "{kind} cover (budget {budget}) dropped match {:?}..{} of {:?}",
                    start, end, m.pattern
                );
            }
        }
    }

    /// Flags are invariant under chunking: scanning in arbitrary pieces
    /// through one `ApproxState` emits exactly the whole-payload flags.
    #[test]
    fn approx_flags_are_chunking_invariant(
        patterns in pattern_vec(),
        budget in prop_oneof![Just(1usize), 256usize..8192],
        fill in proptest::collection::vec(any::<u8>(), 1..160),
        picks in proptest::collection::vec(0usize..16 * 160, 0..6),
        cuts in proptest::collection::vec(0usize..160, 0..6),
    ) {
        let Ok(set) = crate::PatternSet::new(&patterns) else { return Ok(()); };
        let mut hay = fill;
        for &pick in &picks {
            let p = &patterns[(pick / 160) % patterns.len()];
            let pos = (pick % 160) % (hay.len() + 1);
            hay.splice(pos..pos, p.iter().copied());
        }
        let mut cuts: Vec<usize> = cuts.iter().map(|&c| c % hay.len()).collect();
        cuts.push(0);
        cuts.push(hay.len());
        cuts.sort_unstable();
        cuts.dedup();
        let config = crate::ApproxConfig::with_budget(budget);
        let prefix = crate::PrefixCover::build(&set, &config, None);
        let grams = crate::GramCover::build(&set, &config, None);
        for cover in [&prefix as &dyn crate::PreClassifier, &grams] {
            let mut whole = Vec::new();
            let mut state = crate::ApproxState::fresh();
            cover.scan_flags(&mut state, &hay, &mut |f| whole.push((f.end, f.forward)));
            let mut chunked = Vec::new();
            let mut state = crate::ApproxState::fresh();
            for pair in cuts.windows(2) {
                cover.scan_flags(&mut state, &hay[pair[0]..pair[1]], &mut |f| {
                    chunked.push((f.end, f.forward))
                });
            }
            prop_assert_eq!(&whole, &chunked);
        }
    }
}
