//! Approximate pre-classifiers: small, sound over-approximations of a
//! [`PatternSet`] that flag *windows* of a stream for exact re-scanning.
//!
//! Every engine in this workspace so far scans the whole stream through
//! an automaton whose size grows with the ruleset, and the big levers
//! (anchor skip lane, pair rows) measurably degrade as rules grow. The
//! approximate-NFA FPGA line of work shows the escape: a deliberately
//! over-approximated, much *smaller* classifier sweeps the stream, and
//! only the positions it flags — widened into windows — ever reach the
//! exact engine. Clean traffic never touches the big automaton.
//!
//! Two classifier shapes are provided behind one trait:
//!
//! - [`PrefixCover`] — a **self-reduced prefix automaton**. Conceptually,
//!   take the full Aho-Corasick DFA and merge every state deeper than a
//!   chosen frontier into its frontier ancestor, marking the ancestor
//!   accepting; operationally that is exactly an Aho-Corasick automaton
//!   over *truncated* patterns. The frontier is chosen greedily under a
//!   per-core L2 byte budget, deepening the prefixes that flag most
//!   often (profiled against a traffic sample when one is given), so the
//!   hottest benign prefixes get the deepest — least trigger-happy —
//!   states the budget can afford.
//! - [`GramCover`] — a **Bouma2-style 2-gram atom table**: one 8 KiB
//!   bitmap over all 65,536 byte pairs, with one chosen (rarest) 2-gram
//!   atom per pattern. Quasi-stateless (one previous byte), fixed-size
//!   whatever the ruleset, and therefore the cheaper cover once the
//!   prefix automaton cannot fit the budget — the shape the builder
//!   A/Bs per ruleset.
//!
//! # Soundness invariant
//!
//! For every occurrence of every pattern in any haystack, the classifier
//! emits at least one [`Flag`] whose [window](Flag::window) fully
//! contains the occurrence. Equivalently: the approximate accept set is
//! a **superset** of the exact engine's (only false *positives*, never
//! false negatives). `crate::proptests` pins this property over drawn
//! rulesets, budgets and payloads for both covers; the exact argument is
//! spelled out on [`Flag::window`].
//!
//! # Quick example
//!
//! ```
//! use dpi_automaton::{ApproxConfig, ApproxCover, ApproxState, PatternSet, PreClassifier};
//!
//! let set = PatternSet::new(["evil-payload", "another-sig"])?;
//! let cover = ApproxCover::build(&set, &ApproxConfig::default());
//! let mut state = ApproxState::fresh();
//! let mut windows = Vec::new();
//! cover.scan_flags(&mut state, b"clean traffic with evil-payload inside", &mut |f| {
//!     windows.push(f.window());
//! });
//! // Some window covers the occurrence at bytes 19..31.
//! assert!(windows.iter().any(|w| w.start <= 19 && w.end >= 31));
//! # Ok::<(), dpi_automaton::PatternSetError>(())
//! ```

use std::collections::HashMap;

use crate::pattern::{PatternId, PatternSet};
use crate::shard::ShardCostModel;
use crate::trie::{StateId, Trie};

/// Build-time knobs for [`ApproxCover::build`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ApproxConfig {
    /// Byte budget for the classifier's hot scan tables — the "stay
    /// L2-resident per core" constraint that drives the state-merge
    /// reduction. Defaults to [`ApproxConfig::DEFAULT_BUDGET`].
    pub budget_bytes: usize,
    /// Maximum prefix depth the reduction may refine to. Bounds the
    /// classifier's backward reach ([`PreClassifier::max_back`]) and
    /// with it the lookback a streaming caller must retain.
    pub max_depth: usize,
    /// Maximum in-pattern offset of a [`GramCover`] atom. Like
    /// `max_depth`, bounds backward reach: an atom at offset `o` flags
    /// windows reaching `o + 2` bytes behind the flag position.
    pub gram_offset_cap: usize,
}

impl ApproxConfig {
    /// Default classifier budget: half a MiB, a conservative per-core
    /// L2 slice on current server parts.
    pub const DEFAULT_BUDGET: usize = 512 << 10;

    /// Config with the given byte budget and default depth caps.
    pub fn with_budget(budget_bytes: usize) -> ApproxConfig {
        ApproxConfig {
            budget_bytes,
            ..ApproxConfig::default()
        }
    }
}

impl Default for ApproxConfig {
    fn default() -> ApproxConfig {
        ApproxConfig {
            budget_bytes: ApproxConfig::DEFAULT_BUDGET,
            max_depth: 16,
            gram_offset_cap: 14,
        }
    }
}

/// One pre-classifier hit: a stream position that *may* end (or sit
/// inside) an exact occurrence, plus how far past it the occurrence
/// could extend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flag {
    /// Stream offset one past the byte that fired the classifier.
    pub end: u64,
    /// Bytes past `end` an occurrence covered by this flag may extend.
    pub forward: u32,
    /// Bytes before `end` an occurrence covered by this flag may begin —
    /// the classifier's uniform backward reach
    /// ([`PreClassifier::max_back`]), repeated per flag for convenience.
    pub back: u32,
}

impl Flag {
    /// The stream window `[end - back, end + forward)` that must replay
    /// through the exact engine.
    ///
    /// # Soundness
    ///
    /// Both covers guarantee: an exact occurrence of pattern `p` at
    /// stream range `[s, e)` implies a flag with `end - back <= s` and
    /// `end + forward >= e`.
    ///
    /// - *Prefix cover*: the truncation `t` of `p` occurs at
    ///   `[s, s + len(t))`, so the classifier flags `end = s + len(t)`;
    ///   `back = max_back >= len(t)` reaches `s`, and
    ///   `forward(t) >= len(p) - len(t)` reaches `e`.
    /// - *Gram cover*: `p`'s chosen atom at in-pattern offset `o`
    ///   occurs at `[s + o, s + o + 2)`, so the classifier flags
    ///   `end = s + o + 2`; `back = max_back >= o + 2` reaches `s`, and
    ///   `forward >= len(p) - o - 2` reaches `e`. Length-1 patterns use
    ///   the single-byte escape bitmap with `forward = 0`.
    ///
    /// Backward reach is *uniform* (`max_back`, not the flag's own
    /// prefix length) so window starts are non-decreasing in flag
    /// order — the property that lets a streaming verifier feed bytes
    /// strictly forward, never re-reading a byte an earlier window
    /// already replayed.
    pub fn window(&self) -> std::ops::Range<u64> {
        self.end.saturating_sub(u64::from(self.back))..self.end + u64::from(self.forward)
    }
}

/// Resumable pre-classifier registers: the approximate analogue of
/// [`crate::ScanState`], cheap to suspend per flow.
///
/// Holds the one previous (folded) byte the gram cover needs and the
/// active-state list the reference prefix walk needs; a fresh state is
/// universal across covers.
#[derive(Debug, Clone, Default)]
pub struct ApproxState {
    /// Bytes consumed so far; flag `end` offsets are stream-absolute.
    pub offset: u64,
    /// Previous folded stream byte, `None` before the first (or after a
    /// reset — history masking, as in [`crate::ScanState`]).
    pub prev: Option<u8>,
    /// Active trie states of the reference prefix walk (empty for the
    /// gram cover).
    active: Vec<StateId>,
}

impl ApproxState {
    /// State for a flow that has consumed no bytes.
    pub fn fresh() -> ApproxState {
        ApproxState::default()
    }

    /// Fresh registers that report offsets starting at `offset` —
    /// history is masked exactly as at flow start.
    pub fn fresh_at(offset: u64) -> ApproxState {
        ApproxState {
            offset,
            ..ApproxState::default()
        }
    }

    /// Re-initializes in place; equivalent to `*self = fresh()` but
    /// keeps the active-list allocation.
    pub fn reset(&mut self) {
        self.reset_at(0);
    }

    /// Re-initializes in place at `offset`; see [`ApproxState::fresh_at`].
    pub fn reset_at(&mut self, offset: u64) {
        self.offset = offset;
        self.prev = None;
        self.active.clear();
    }
}

/// Common interface of the approximate pre-classifiers.
///
/// Implementations must uphold the soundness invariant documented on
/// [`Flag::window`]: every exact occurrence is contained in some
/// emitted flag's window.
pub trait PreClassifier {
    /// Resident bytes of the scan tables the classifier touches per
    /// byte — the figure the build budget governs.
    fn memory_bytes(&self) -> usize;

    /// Uniform backward reach of every flag: no window starts more than
    /// this many bytes before its flag position. A streaming caller
    /// needs exactly this much lookback.
    fn max_back(&self) -> u32;

    /// Expected flagged positions per scanned byte under a uniform
    /// random byte model — the builder's cost proxy when no traffic
    /// sample is available.
    fn expected_flag_rate(&self) -> f64;

    /// Expected *replayed* bytes per scanned byte under the same model
    /// (flag rate times mean window width, ignoring merges): the
    /// verifier traffic a cover choice signs up for.
    fn expected_replay(&self) -> f64;

    /// Consumes `chunk`, emitting a [`Flag`] for every classifier hit
    /// with stream-absolute positions, leaving `state` ready for the
    /// next chunk. The defining streaming property (shared with
    /// [`crate::ScanState`]): any chunking of a payload emits the same
    /// flags as one whole-payload scan.
    fn scan_flags(&self, state: &mut ApproxState, chunk: &[u8], emit: &mut dyn FnMut(Flag));
}

/// Greedy frontier refinement candidate: a frontier trie node whose
/// expansion buys `gain` fewer expected flags per `cost` added bytes.
struct Cand {
    score: f64,
    node: StateId,
}

impl PartialEq for Cand {
    fn eq(&self, other: &Self) -> bool {
        self.score == other.score && self.node == other.node
    }
}
impl Eq for Cand {}
impl PartialOrd for Cand {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Cand {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.score
            .total_cmp(&other.score)
            .then_with(|| self.node.0.cmp(&other.node.0))
    }
}

/// The self-reduced prefix automaton: an Aho-Corasick cover over
/// budget-truncated patterns.
///
/// Equivalently (the paper-side view): the exact DFA with every state
/// deeper than a chosen frontier merged into its frontier ancestor and
/// the ancestor marked accepting — each merge only ever *adds* accept
/// positions, which is what keeps the reduction sound. The frontier is
/// refined greedily under [`ApproxConfig::budget_bytes`]: expanding a
/// frontier state costs its child count times the per-state arena
/// estimate ([`ShardCostModel`]) and removes that state's expected flag
/// traffic (its children flag strictly less often), so the refinement
/// spends the budget where flags are — measured against a traffic
/// sample in [`ApproxCover::build_with_sample`], or a uniform byte
/// model otherwise.
///
/// The struct itself carries only the *model*: the truncated
/// [`PatternSet`], per-truncation window metadata, and a trie for the
/// reference scan. Production deployments compile
/// [`PrefixCover::patterns`] through the usual reduce/compile pipeline;
/// [`PrefixCover::memory_bytes`] estimates that compiled footprint.
#[derive(Debug, Clone)]
pub struct PrefixCover {
    patterns: PatternSet,
    forward: Vec<u32>,
    source_trunc: Vec<u32>,
    max_back: u32,
    hot_bytes: usize,
    flag_rate: f64,
    replay: f64,
    trie: Trie,
}

impl PrefixCover {
    /// Builds the cover at several candidate frontier depths and keeps
    /// the one whose **measured** flag-rate/table-size trade is best,
    /// returning the cover and the chosen depth. This replaces
    /// hand-tuning `max_depth` per ruleset scale: each candidate depth
    /// is built for real, its memory read off the finished tables and
    /// its replay fraction measured by [`replay_profile`] over `sample`,
    /// and the cost model scores them as
    ///
    /// `cost(d) = max(1, mem(d) / budget)² × (1 + 16 × replay(d))`
    ///
    /// — the same squared cache-cliff penalty the sharded autotuner
    /// applies when an arena spills its per-core budget, times a replay
    /// term weighting each replayed byte at ~16× a stage-1 byte (the
    /// exact stage walks every shard per byte where stage 1 walks one
    /// L2-resident arena; 16 is the measured order of magnitude at
    /// 25k–100k rules, and the ranking is insensitive to ±2× here
    /// because depth moves the replay fraction by orders of magnitude).
    /// The sweep stops early once a deeper frontier no longer grows the
    /// tables (the budget or the rules' own depth is already the
    /// binding cap). Candidate depths run from 2 to
    /// `min(config.max_depth, 6)` — depth 1 is the degenerate
    /// everything-flags cover, and beyond 6 the table size always
    /// dominates at IDS rule-length distributions.
    pub fn build_depth_tuned(
        set: &PatternSet,
        config: &ApproxConfig,
        sample: &[u8],
    ) -> (PrefixCover, usize) {
        /// Modelled cost of one replayed byte relative to a stage-1 byte.
        const REPLAY_COST: f64 = 16.0;
        let ceiling = config.max_depth.min(6);
        if ceiling < 2 {
            return (PrefixCover::build(set, config, Some(sample)), config.max_depth);
        }
        let mut best: Option<(PrefixCover, usize, f64)> = None;
        let mut prev_memory = 0usize;
        for depth in 2..=ceiling {
            let mut cfg = *config;
            cfg.max_depth = depth;
            let cover = PrefixCover::build(set, &cfg, Some(sample));
            let memory = cover.memory_bytes();
            if depth > 2 && memory == prev_memory {
                break;
            }
            prev_memory = memory;
            let replay = replay_profile(&cover, sample).replay_fraction();
            let pressure = (memory as f64 / config.budget_bytes.max(1) as f64).max(1.0);
            let cost = pressure * pressure * (1.0 + REPLAY_COST * replay);
            // Strict improvement required: ties keep the shallower
            // (smaller, faster-building) frontier.
            let better = match &best {
                Some((_, _, c)) => cost < *c,
                None => true,
            };
            if better {
                best = Some((cover, depth, cost));
            }
        }
        let (cover, depth, _) = best.expect("ceiling >= 2 builds at least one candidate");
        (cover, depth)
    }

    /// Builds the cover for `set` under `config`, optionally profiling
    /// frontier refinement against a traffic `sample`.
    pub fn build(set: &PatternSet, config: &ApproxConfig, sample: Option<&[u8]>) -> PrefixCover {
        let max_depth = config.max_depth.max(1);
        let trie = Trie::build(set);
        let hits = node_hits(&trie, set, sample, max_depth);
        let model = ShardCostModel::default();
        let bps = model.bytes_per_state.max(1);

        // Frontier refinement. `included[n]`: node n is a state of the
        // reduced automaton. Start from the minimum sound cover (all
        // depth-1 nodes), then greedily deepen the frontier node with
        // the best flag-reduction per byte until the budget is spent.
        let mut included = vec![false; trie.len()];
        included[StateId::START.index()] = true;
        let mut cost = model.fixed_bytes + bps;
        let mut heap = std::collections::BinaryHeap::new();
        let root_children: Vec<StateId> = trie
            .state(StateId::START)
            .children()
            .iter()
            .map(|&(_, s)| s)
            .collect();
        for &child in &root_children {
            included[child.index()] = true;
            cost += bps;
            if let Some(cand) = refine_candidate(&trie, &hits, child, max_depth, bps) {
                heap.push(cand);
            }
        }
        while let Some(Cand { node, .. }) = heap.pop() {
            let kids = trie.state(node).children();
            let add = kids.len() * bps;
            if cost + add > config.budget_bytes {
                continue; // a cheaper candidate may still fit
            }
            cost += add;
            for &(_, child) in kids {
                included[child.index()] = true;
                if let Some(cand) = refine_candidate(&trie, &hits, child, max_depth, bps) {
                    heap.push(cand);
                }
            }
        }

        // Per-pattern cut: the longest included prefix. Deduplicate the
        // truncations, folding each original pattern's residual length
        // into the truncation's forward reach.
        let mut ids: HashMap<&[u8], usize> = HashMap::new();
        let mut unique: Vec<&[u8]> = Vec::new();
        let mut forward: Vec<u32> = Vec::new();
        let mut source_trunc: Vec<u32> = Vec::with_capacity(set.len());
        let mut max_back = 1u32;
        for (pid, bytes) in set.iter() {
            debug_assert_eq!(pid.index(), source_trunc.len());
            let mut node = StateId::START;
            let mut depth = 0usize;
            for &b in bytes {
                match trie.state(node).child(b) {
                    Some(next) if included[next.index()] => {
                        node = next;
                        depth += 1;
                    }
                    _ => break,
                }
            }
            debug_assert!(depth >= 1, "depth-1 nodes are always included");
            let trunc = &bytes[..depth];
            let fwd = (bytes.len() - depth) as u32;
            let slot = match ids.get(trunc) {
                Some(&i) => {
                    forward[i] = forward[i].max(fwd);
                    i
                }
                None => {
                    ids.insert(trunc, unique.len());
                    unique.push(trunc);
                    forward.push(fwd);
                    unique.len() - 1
                }
            };
            source_trunc.push(slot as u32);
            max_back = max_back.max(depth as u32);
        }
        let patterns = if set.is_case_insensitive() {
            // Source patterns are already folded, so re-folding is a
            // no-op and no new collisions can appear.
            PatternSet::new_nocase(&unique)
        } else {
            PatternSet::new(&unique)
        }
        .expect("deduplicated non-empty truncations of a valid set");

        let flag_rate: f64 = patterns
            .iter()
            .map(|(_, t)| alphabet_rate(&patterns).powi(t.len() as i32))
            .sum();
        let replay: f64 = patterns
            .iter()
            .zip(forward.iter())
            .map(|((_, t), &f)| {
                alphabet_rate(&patterns).powi(t.len() as i32) * (max_back + f) as f64
            })
            .sum();
        PrefixCover {
            trie: Trie::build(&patterns),
            patterns,
            forward,
            source_trunc,
            max_back,
            hot_bytes: cost,
            flag_rate,
            replay,
        }
    }

    /// The truncated pattern set — compile this through the exact
    /// pipeline to get the production classifier; a match of truncated
    /// pattern `t` at `end` is the flag
    /// `(end, forward = `[`PrefixCover::forward`]`(t), back = max_back)`.
    pub fn patterns(&self) -> &PatternSet {
        &self.patterns
    }

    /// Bytes past a flag from truncated pattern `id` an occurrence may
    /// extend: the longest source pattern sharing that truncation,
    /// minus the truncation.
    pub fn forward(&self, id: PatternId) -> u32 {
        self.forward[id.index()]
    }

    /// Per-truncation forward table, indexed by truncated [`PatternId`].
    pub fn forward_table(&self) -> &[u32] {
        &self.forward
    }

    /// Maps each *source* pattern index to the index of its truncation
    /// in [`PrefixCover::patterns`]. A source pattern is covered
    /// **completely** (its truncation is the whole pattern, so a flag
    /// from it is an exact occurrence, not an approximation) exactly
    /// when its truncation has the same length.
    pub fn truncation_of(&self) -> &[u32] {
        &self.source_trunc
    }
}

/// Mean per-byte symbol probability for the uniform cost model: 1/256
/// case-sensitive, 1/230-ish folded (26 uppercase letters alias their
/// lowercase forms).
fn alphabet_rate(set: &PatternSet) -> f64 {
    if set.is_case_insensitive() {
        1.0 / 230.0
    } else {
        1.0 / 256.0
    }
}

/// Expected flag traffic per trie node: occurrences of the node's
/// prefix in `sample` when given, else the uniform byte model
/// `alphabet_rate^depth` scaled to a nominal 1 MiB of traffic.
fn node_hits(trie: &Trie, set: &PatternSet, sample: Option<&[u8]>, max_depth: usize) -> Vec<f64> {
    let mut hits = vec![0f64; trie.len()];
    match sample {
        Some(sample) => {
            for start in 0..sample.len() {
                let mut node = StateId::START;
                for &raw in sample.iter().skip(start).take(max_depth) {
                    match trie.state(node).child(set.fold(raw)) {
                        Some(next) => {
                            node = next;
                            hits[next.index()] += 1.0;
                        }
                        None => break,
                    }
                }
            }
        }
        None => {
            let rate = alphabet_rate(set);
            for (id, state) in trie.iter() {
                hits[id.index()] = (1 << 20) as f64 * rate.powi(i32::from(state.depth()));
            }
        }
    }
    hits
}

/// Refinement candidate for frontier node `node`, or `None` when the
/// node cannot be refined (leaf, or at the depth cap).
///
/// Nodes where a pattern *terminates* are still refinable: the node
/// stays an accepting truncation for that complete pattern (whose flag
/// needs no forward reach — consumers can verify it exactly), while
/// every longer pattern sharing the prefix moves to a deeper, rarer
/// truncation. Skipping terminals froze whole subtrees at the depth of
/// their shortest member — at Snort-like scale, where almost every
/// 2-byte prefix is itself a rule, that pinned the flag rate to the
/// depth-2 floor no matter the budget.
fn refine_candidate(
    trie: &Trie,
    hits: &[f64],
    node: StateId,
    max_depth: usize,
    bps: usize,
) -> Option<Cand> {
    let state = trie.state(node);
    if state.children().is_empty() || usize::from(state.depth()) >= max_depth {
        return None;
    }
    let child_hits: f64 = state
        .children()
        .iter()
        .map(|&(_, c)| hits[c.index()])
        .sum();
    let gain = (hits[node.index()] - child_hits).max(0.0);
    let cost = (state.children().len() * bps) as f64;
    Some(Cand {
        score: gain / cost,
        node,
    })
}

impl PreClassifier for PrefixCover {
    fn memory_bytes(&self) -> usize {
        self.hot_bytes
    }

    fn max_back(&self) -> u32 {
        self.max_back
    }

    fn expected_flag_rate(&self) -> f64 {
        self.flag_rate
    }

    fn expected_replay(&self) -> f64 {
        self.replay
    }

    /// Reference scan: an explicit active-state Aho-Corasick walk over
    /// the truncation trie (at most [`PreClassifier::max_back`] live
    /// states). Correct and resumable but unoptimized — production
    /// two-stage scanning compiles [`PrefixCover::patterns`] instead.
    fn scan_flags(&self, state: &mut ApproxState, chunk: &[u8], emit: &mut dyn FnMut(Flag)) {
        let mut next: Vec<StateId> = Vec::with_capacity(self.max_back as usize);
        for &raw in chunk {
            let b = self.patterns.fold(raw);
            state.offset += 1;
            next.clear();
            for &s in &state.active {
                if let Some(n) = self.trie.state(s).child(b) {
                    next.push(n);
                }
            }
            if let Some(n) = self.trie.state(StateId::START).child(b) {
                next.push(n);
            }
            std::mem::swap(&mut state.active, &mut next);
            for &s in &state.active {
                for &pid in self.trie.state(s).terminal() {
                    emit(Flag {
                        end: state.offset,
                        forward: self.forward[pid.index()],
                        back: self.max_back,
                    });
                }
            }
        }
        state.prev = chunk.last().map(|&b| self.patterns.fold(b)).or(state.prev);
    }
}

/// The Bouma2-style 2-gram atom table: a 65,536-bit presence bitmap
/// with one chosen atom (byte pair) per pattern.
///
/// Scanning is quasi-stateless — one previous byte, one shift and one
/// bit test per input byte — and the tables are fixed-size whatever the
/// ruleset, so this cover never outgrows a cache budget; the price is a
/// floor on the flag rate (a 2-gram carries at most 16 bits of
/// selectivity). Atoms are chosen per pattern to minimize expected
/// firing: rarest in the traffic sample when one is given, spread for
/// minimal table load otherwise, preferring early in-pattern offsets so
/// the uniform backward reach stays small. Length-1 patterns, which
/// have no 2-gram, use a 256-bit single-byte escape bitmap.
#[derive(Debug, Clone)]
pub struct GramCover {
    bitmap: Vec<u64>,
    singles: [u64; 4],
    forward: Vec<u16>,
    fold: [u8; 256],
    max_back: u32,
    flag_rate: f64,
    replay: f64,
}

impl GramCover {
    /// Builds the atom table for `set`, optionally ranking candidate
    /// atoms by their occurrence count in a traffic `sample`.
    pub fn build(set: &PatternSet, config: &ApproxConfig, sample: Option<&[u8]>) -> GramCover {
        let mut fold = [0u8; 256];
        for (b, slot) in fold.iter_mut().enumerate() {
            *slot = set.fold(b as u8);
        }
        let mut sample_count = vec![0u32; 1 << 16];
        if let Some(sample) = sample {
            for pair in sample.windows(2) {
                let g = usize::from(fold[usize::from(pair[0])]) << 8
                    | usize::from(fold[usize::from(pair[1])]);
                sample_count[g] = sample_count[g].saturating_add(1);
            }
        }

        let mut bitmap = vec![0u64; 1024];
        let mut singles = [0u64; 4];
        let mut forward = vec![0u16; 1 << 16];
        let mut load = vec![0u32; 1 << 16];
        let mut max_back = 1u32;
        let cap = config.gram_offset_cap;
        for (_, bytes) in set.iter() {
            if bytes.len() == 1 {
                singles[usize::from(bytes[0]) >> 6] |= 1 << (bytes[0] & 63);
                continue;
            }
            let best = (0..=(bytes.len() - 2).min(cap))
                .map(|o| {
                    let g = usize::from(bytes[o]) << 8 | usize::from(bytes[o + 1]);
                    // Rarest in sample, then emptiest table slot (new
                    // bits cost uniform flag rate), then earliest
                    // offset (smallest backward reach).
                    ((sample_count[g], load[g], o), o, g)
                })
                .min_by_key(|&(key, ..)| key)
                .map(|(_, o, g)| (o, g))
                .expect("patterns of length >= 2 have a 2-gram");
            let (o, g) = best;
            bitmap[g >> 6] |= 1 << (g & 63);
            load[g] += 1;
            forward[g] = forward[g].max((bytes.len() - o - 2) as u16);
            max_back = max_back.max((o + 2) as u32);
        }

        let rate = alphabet_rate(set);
        let gram_bits = bitmap.iter().map(|w| w.count_ones() as f64).sum::<f64>();
        let single_bits = singles.iter().map(|w| w.count_ones() as f64).sum::<f64>();
        let replay: f64 = bitmap
            .iter()
            .enumerate()
            .flat_map(|(w, &bits)| {
                (0..64).filter_map(move |i| (bits >> i & 1 == 1).then_some(w * 64 + i))
            })
            .map(|g| rate * rate * f64::from(max_back + u32::from(forward[g])))
            .sum::<f64>()
            + single_bits * rate * f64::from(max_back);
        let flag_rate = gram_bits * rate * rate + single_bits * rate;
        GramCover {
            bitmap,
            singles,
            forward,
            fold,
            max_back,
            flag_rate,
            replay,
        }
    }
}

impl PreClassifier for GramCover {
    fn memory_bytes(&self) -> usize {
        // Bitmap + escape bitmap + fold table are touched per byte; the
        // forward table only on flags, but count it — it is resident.
        self.bitmap.len() * 8 + 32 + self.forward.len() * 2 + 256
    }

    fn max_back(&self) -> u32 {
        self.max_back
    }

    fn expected_flag_rate(&self) -> f64 {
        self.flag_rate
    }

    fn expected_replay(&self) -> f64 {
        self.replay
    }

    fn scan_flags(&self, state: &mut ApproxState, chunk: &[u8], emit: &mut dyn FnMut(Flag)) {
        let mut prev = state.prev;
        for &raw in chunk {
            let b = self.fold[usize::from(raw)];
            state.offset += 1;
            if let Some(p) = prev {
                let g = usize::from(p) << 8 | usize::from(b);
                if self.bitmap[g >> 6] >> (g & 63) & 1 == 1 {
                    emit(Flag {
                        end: state.offset,
                        forward: u32::from(self.forward[g]),
                        back: self.max_back,
                    });
                }
            }
            if self.singles[usize::from(b) >> 6] >> (b & 63) & 1 == 1 {
                emit(Flag {
                    end: state.offset,
                    forward: 0,
                    back: self.max_back,
                });
            }
            prev = Some(b);
        }
        state.prev = prev;
    }
}

/// The builder's pick between the two cover shapes; see
/// [`ApproxCover::build`] for the selection rule.
#[derive(Debug, Clone)]
pub enum ApproxCover {
    /// Self-reduced prefix automaton ([`PrefixCover`]).
    Prefix(PrefixCover),
    /// Bouma2-style 2-gram atom table ([`GramCover`]); boxed so the
    /// enum stays close to the `Prefix` variant's size.
    Grams(Box<GramCover>),
}

impl ApproxCover {
    /// Builds both covers for `set` and keeps the cheaper sound one:
    /// among covers fitting `config.budget_bytes`, the one with the
    /// lower expected replay traffic; if neither fits, the smaller.
    pub fn build(set: &PatternSet, config: &ApproxConfig) -> ApproxCover {
        Self::pick(
            PrefixCover::build(set, config, None),
            GramCover::build(set, config, None),
            config,
        )
    }

    /// [`ApproxCover::build`] with refinement, atom choice and the
    /// replay estimate all profiled against a traffic `sample` (the
    /// analogue of `PairTable::build_profiled`).
    pub fn build_with_sample(set: &PatternSet, config: &ApproxConfig, sample: &[u8]) -> ApproxCover {
        let prefix = PrefixCover::build(set, config, Some(sample));
        let grams = GramCover::build(set, config, Some(sample));
        let pr = replay_profile(&prefix, sample);
        let gr = replay_profile(&grams, sample);
        let fits = |c: &dyn PreClassifier| c.memory_bytes() <= config.budget_bytes;
        let pick_prefix = match (fits(&prefix), fits(&grams)) {
            (true, false) => true,
            (false, true) => false,
            _ => pr.replay_fraction() <= gr.replay_fraction(),
        };
        if pick_prefix {
            ApproxCover::Prefix(prefix)
        } else {
            ApproxCover::Grams(Box::new(grams))
        }
    }

    fn pick(prefix: PrefixCover, grams: GramCover, config: &ApproxConfig) -> ApproxCover {
        let pick_prefix = match (
            prefix.memory_bytes() <= config.budget_bytes,
            grams.memory_bytes() <= config.budget_bytes,
        ) {
            (true, false) => true,
            (false, true) => false,
            (true, true) => prefix.expected_replay() <= grams.expected_replay(),
            (false, false) => prefix.memory_bytes() <= grams.memory_bytes(),
        };
        if pick_prefix {
            ApproxCover::Prefix(prefix)
        } else {
            ApproxCover::Grams(Box::new(grams))
        }
    }

    /// Short label for benches and logs.
    pub fn kind(&self) -> &'static str {
        match self {
            ApproxCover::Prefix(_) => "prefix-dfa",
            ApproxCover::Grams(_) => "gram-table",
        }
    }

    /// The inner classifier as a trait object.
    pub fn classifier(&self) -> &dyn PreClassifier {
        match self {
            ApproxCover::Prefix(c) => c,
            ApproxCover::Grams(c) => c.as_ref(),
        }
    }
}

impl PreClassifier for ApproxCover {
    fn memory_bytes(&self) -> usize {
        self.classifier().memory_bytes()
    }
    fn max_back(&self) -> u32 {
        self.classifier().max_back()
    }
    fn expected_flag_rate(&self) -> f64 {
        self.classifier().expected_flag_rate()
    }
    fn expected_replay(&self) -> f64 {
        self.classifier().expected_replay()
    }
    fn scan_flags(&self, state: &mut ApproxState, chunk: &[u8], emit: &mut dyn FnMut(Flag)) {
        self.classifier().scan_flags(state, chunk, emit)
    }
}

/// Measured pre-classifier behaviour on a traffic sample: flags,
/// merged windows, and replayed bytes under the streaming window-merge
/// rule (overlapping or adjacent windows coalesce; each byte replays at
/// most once).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayProfile {
    /// Flags emitted over the sample.
    pub flags: u64,
    /// Merged windows (maximal replay runs).
    pub windows: u64,
    /// Bytes a verifier would replay, clipped to the sample.
    pub replayed_bytes: u64,
    /// Sample length scanned.
    pub sample_bytes: u64,
}

impl ReplayProfile {
    /// Replayed fraction of the sample, in `[0, 1]`.
    pub fn replay_fraction(&self) -> f64 {
        if self.sample_bytes == 0 {
            0.0
        } else {
            self.replayed_bytes as f64 / self.sample_bytes as f64
        }
    }
}

/// Scans `sample` through `cover` and accounts the merged-window replay
/// a two-stage verifier would perform — the measured counterpart of
/// [`PreClassifier::expected_replay`].
pub fn replay_profile(cover: &impl PreClassifier, sample: &[u8]) -> ReplayProfile {
    let mut state = ApproxState::fresh();
    let mut profile = ReplayProfile {
        sample_bytes: sample.len() as u64,
        ..ReplayProfile::default()
    };
    let mut start = 0u64; // current merged window
    let mut window_end = 0u64;
    let mut open = false;
    cover.scan_flags(&mut state, sample, &mut |f| {
        profile.flags += 1;
        let w = f.window();
        if !open || w.start > window_end {
            if open {
                let clipped = window_end.min(sample.len() as u64);
                profile.replayed_bytes += clipped.saturating_sub(start);
            }
            profile.windows += 1;
            start = w.start;
            window_end = w.end;
            open = true;
        } else {
            window_end = window_end.max(w.end);
        }
    });
    if open {
        let clipped = window_end.min(sample.len() as u64);
        profile.replayed_bytes += clipped.saturating_sub(start);
    }
    profile
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::NaiveMatcher;
    use crate::MultiMatcher;

    fn covered(windows: &[std::ops::Range<u64>], s: u64, e: u64) -> bool {
        windows.iter().any(|w| w.start <= s && w.end >= e)
    }

    fn assert_sound(cover: &dyn PreClassifier, set: &PatternSet, haystack: &[u8]) {
        let mut state = ApproxState::fresh();
        let mut windows = Vec::new();
        cover.scan_flags(&mut state, haystack, &mut |f| windows.push(f.window()));
        for m in NaiveMatcher::new(set).find_all(haystack) {
            let len = set.pattern_len(m.pattern) as u64;
            assert!(
                covered(&windows, m.end as u64 - len, m.end as u64),
                "occurrence of {:?} at ..{} not covered; windows {:?}",
                set.pattern(m.pattern),
                m.end,
                windows
            );
        }
    }

    #[test]
    fn prefix_cover_flags_every_occurrence() {
        let set = PatternSet::new(["he", "she", "his", "hers", "banana-split"]).unwrap();
        for budget in [1, 2_000, 16_000, 1 << 20] {
            let cover = PrefixCover::build(&set, &ApproxConfig::with_budget(budget), None);
            assert_sound(&cover, &set, b"ushers banana-splitters say his hers");
        }
    }

    #[test]
    fn depth_tuned_build_is_sound_and_in_range() {
        let set = PatternSet::new(["alpha-signature", "alpaca", "beta-marker", "he"]).unwrap();
        let hay = b"xx alpha-signature yy alpacas and he beta-markers";
        // A flag-heavy sample (every pattern prefix present) so replay
        // pressure is non-trivial, plus filler.
        let sample: Vec<u8> = hay
            .iter()
            .copied()
            .chain((0..2048u32).map(|i| b'a' + (i % 17) as u8))
            .collect();
        let (cover, depth) = PrefixCover::build_depth_tuned(&set, &ApproxConfig::default(), &sample);
        assert!((2..=6).contains(&depth), "chosen depth {depth}");
        assert_sound(&cover, &set, hay);
        // A budget large enough to keep every candidate resident makes
        // the replay term the decider, so the chosen cover's measured
        // replay is no worse than the shallowest candidate's.
        let shallow_cfg = ApproxConfig {
            max_depth: 2,
            ..ApproxConfig::default()
        };
        let shallow = PrefixCover::build(&set, &shallow_cfg, Some(&sample));
        assert!(
            replay_profile(&cover, &sample).replayed_bytes
                <= replay_profile(&shallow, &sample).replayed_bytes
        );
    }

    #[test]
    fn gram_cover_flags_every_occurrence() {
        let set = PatternSet::new(["he", "she", "x", "hers", "banana-split"]).unwrap();
        let cover = GramCover::build(&set, &ApproxConfig::default(), None);
        assert_sound(&cover, &set, b"ushers x banana-splitters say his hers");
    }

    #[test]
    fn truncation_merges_states_under_budget() {
        let set = PatternSet::new(["prefix-one", "prefix-two", "prefix-three"]).unwrap();
        let tight = PrefixCover::build(&set, &ApproxConfig::with_budget(1), None);
        // Minimum sound cover: one shared depth-1 truncation.
        assert_eq!(tight.patterns().len(), 1);
        assert_eq!(tight.patterns().pattern(PatternId(0)), b"p");
        assert_eq!(tight.forward(PatternId(0)), 11); // "prefix-three" minus "p"
        let roomy = PrefixCover::build(&set, &ApproxConfig::default(), None);
        // A 512 KiB budget keeps all three distinct full-depth.
        assert_eq!(roomy.patterns().len(), 3);
        assert!(roomy.memory_bytes() <= ApproxConfig::DEFAULT_BUDGET);
    }

    #[test]
    fn sample_profiling_deepens_hot_prefixes() {
        // 64 patterns share the hot "GET /x*" prefix; a tight budget
        // cannot refine everything, and the sample should steer the
        // refinement toward the prefix the traffic actually hits.
        let patterns: Vec<String> = (0..64)
            .map(|i| format!("GET /x{i:02}/private"))
            .chain((0..64).map(|i| format!("zz-cold-{i:02}-suffix")))
            .collect();
        let set = PatternSet::new(&patterns).unwrap();
        let sample: Vec<u8> = b"GET /index.html HTTP/1.1\r\nHost: a\r\n\r\n"
            .iter()
            .copied()
            .cycle()
            .take(1 << 14)
            .collect();
        let config = ApproxConfig::with_budget(3_000);
        let blind = PrefixCover::build(&set, &config, None);
        let profiled = PrefixCover::build(&set, &config, Some(&sample));
        let blind_replay = replay_profile(&blind, &sample).replay_fraction();
        let prof_replay = replay_profile(&profiled, &sample).replay_fraction();
        assert!(
            prof_replay <= blind_replay,
            "profiled refinement must not replay more of its own sample: {prof_replay} vs {blind_replay}"
        );
    }

    #[test]
    fn builder_picks_gram_cover_when_prefix_is_budget_starved() {
        // 24,000 patterns with divergent 2-byte prefixes: a 200 KB
        // budget can refine only a fraction of them past depth 1, so
        // the prefix cover flags most positions — while the fixed-size
        // gram table holds 24,000 distinct atoms (0.37 of gram space)
        // and wins on expected replay.
        let patterns: Vec<Vec<u8>> = (0u32..24_000)
            .map(|i| vec![(i % 250) as u8, (i / 250) as u8 + 1, 0xAB, 0xCD, 0xEF])
            .collect();
        let set = PatternSet::new(&patterns).unwrap();
        let config = ApproxConfig::with_budget(200_000);
        let prefix = PrefixCover::build(&set, &config, None);
        let grams = GramCover::build(&set, &config, None);
        assert!(grams.expected_replay() < prefix.expected_replay());
        assert_eq!(ApproxCover::build(&set, &config).kind(), "gram-table");

        // A small set under the default budget refines to full depth
        // and the prefix cover wins back.
        let small = PatternSet::new(
            (0u16..300)
                .map(|i| vec![(i % 250) as u8, (i / 250) as u8 + 1, 7, 8, 9])
                .collect::<Vec<_>>(),
        )
        .unwrap();
        assert_eq!(
            ApproxCover::build(&small, &ApproxConfig::default()).kind(),
            "prefix-dfa"
        );
    }

    #[test]
    fn flags_are_chunking_invariant() {
        let set = PatternSet::new(["abcd", "cdef", "q"]).unwrap();
        let payload = b"xxabcdefqxxcdefabcd".to_vec();
        for cover in [
            ApproxCover::Prefix(PrefixCover::build(
                &set,
                &ApproxConfig::with_budget(2_200),
                None,
            )),
            ApproxCover::Grams(Box::new(GramCover::build(&set, &ApproxConfig::default(), None))),
        ] {
            let mut whole = Vec::new();
            cover.scan_flags(&mut ApproxState::fresh(), &payload, &mut |f| whole.push(f));
            for cut in 0..payload.len() {
                let mut chunked = Vec::new();
                let mut state = ApproxState::fresh();
                cover.scan_flags(&mut state, &payload[..cut], &mut |f| chunked.push(f));
                cover.scan_flags(&mut state, &payload[cut..], &mut |f| chunked.push(f));
                assert_eq!(whole, chunked, "cut at {cut} ({})", cover.kind());
            }
        }
    }

    #[test]
    fn nocase_covers_fold_input() {
        let set = PatternSet::new_nocase(["Attack-String"]).unwrap();
        for cover in [
            ApproxCover::Prefix(PrefixCover::build(&set, &ApproxConfig::default(), None)),
            ApproxCover::Grams(Box::new(GramCover::build(&set, &ApproxConfig::default(), None))),
        ] {
            assert_sound(cover.classifier(), &set, b"zzATTACK-STRINGzz");
        }
    }

    #[test]
    fn replay_profile_merges_overlapping_windows() {
        let set = PatternSet::new(["aaaa"]).unwrap();
        let cover = PrefixCover::build(&set, &ApproxConfig::default(), None);
        // 16 a's: flags at 4..=16, windows overlap into one merged run
        // replaying the whole string.
        let profile = replay_profile(&cover, &[b'a'; 16]);
        assert_eq!(profile.windows, 1);
        assert_eq!(profile.flags, 13);
        assert_eq!(profile.replayed_bytes, 16);
        assert!(profile.replay_fraction() > 0.99);
    }
}
