//! Pattern and pattern-set types shared by every matcher in the workspace.
//!
//! A [`PatternSet`] is the validated input to all automaton builders: a
//! non-empty collection of unique, non-empty byte strings. The DATE 2010
//! hardware assigns each string a 13-bit *string number*; that limit is not
//! enforced here (it is a property of the hardware image, checked by
//! `dpi-hw`), but pattern identifiers are stable indices into the set so the
//! mapping to string numbers is trivial.

use std::fmt;

/// Identifier of a pattern within a [`PatternSet`].
///
/// Pattern identifiers are dense indices: the i-th pattern handed to
/// [`PatternSet::new`] receives id `i`. The hardware's *string numbers* are
/// exactly these indices (offset per block when a ruleset is split across
/// string matching blocks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PatternId(pub u32);

impl PatternId {
    /// Returns the id as a `usize` index.
    ///
    /// # Examples
    ///
    /// ```
    /// use dpi_automaton::PatternId;
    /// assert_eq!(PatternId(3).index(), 3);
    /// ```
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PatternId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Maximum accepted pattern length in bytes.
///
/// Snort content strings top out well below this (the paper's Figure 6 shows
/// a "50+" bucket); the cap merely keeps state depths comfortably inside the
/// `u16` used for depth bookkeeping.
pub const MAX_PATTERN_LEN: usize = 4096;

/// Error returned when a [`PatternSet`] cannot be constructed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PatternSetError {
    /// The set contained no patterns at all.
    Empty,
    /// The pattern at `index` was the empty string.
    EmptyPattern {
        /// Position of the offending pattern in the input iterator.
        index: usize,
    },
    /// The pattern at `index` exceeded [`MAX_PATTERN_LEN`].
    TooLong {
        /// Position of the offending pattern in the input iterator.
        index: usize,
        /// Its length in bytes.
        len: usize,
    },
    /// The pattern at `index` is byte-for-byte identical (after any case
    /// folding) to the pattern at `first`.
    Duplicate {
        /// Position of the duplicate.
        index: usize,
        /// Position of the earlier, identical pattern.
        first: usize,
    },
}

impl fmt::Display for PatternSetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatternSetError::Empty => write!(f, "pattern set contains no patterns"),
            PatternSetError::EmptyPattern { index } => {
                write!(f, "pattern {index} is empty")
            }
            PatternSetError::TooLong { index, len } => {
                write!(
                    f,
                    "pattern {index} is {len} bytes long, exceeding the maximum of {MAX_PATTERN_LEN}"
                )
            }
            PatternSetError::Duplicate { index, first } => {
                write!(f, "pattern {index} duplicates pattern {first}")
            }
        }
    }
}

impl std::error::Error for PatternSetError {}

/// A validated, ordered collection of unique byte-string patterns.
///
/// This is the single input type for every matcher in the workspace: the
/// classic Aho-Corasick NFA and full DFA (`dpi-automaton`), the
/// default-transition-pointer matcher (`dpi-core`), the Tuck et al. baselines
/// (`dpi-baselines`) and the hardware image builder (`dpi-hw`).
///
/// # Case-insensitive matching
///
/// Snort content rules may be marked `nocase`. [`PatternSet::new_nocase`]
/// folds the patterns to ASCII lowercase at construction; matchers built from
/// such a set fold every input byte the same way during the scan, so reported
/// match positions refer to the original input.
///
/// # Examples
///
/// ```
/// use dpi_automaton::PatternSet;
///
/// let set = PatternSet::new(["he", "she", "his", "hers"])?;
/// assert_eq!(set.len(), 4);
/// assert_eq!(set.pattern(dpi_automaton::PatternId(1)), b"she");
/// # Ok::<(), dpi_automaton::PatternSetError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternSet {
    patterns: Vec<Vec<u8>>,
    case_insensitive: bool,
    total_bytes: usize,
    /// One opaque scope tag per pattern (same order as `patterns`).
    /// Tag `0` is the untagged default. The automaton layer attaches no
    /// meaning to tags; higher layers use them to carve scoped matcher
    /// views out of one master set (e.g. `dpi-core`'s protocol scoping,
    /// where tag 1 marks HTTP-only rules and tag 2 TLS-only rules).
    /// Tags participate in equality and survive [`PatternSet::split`] /
    /// [`PatternSet::split_by_prefix`] / [`PatternSet::subset_where`].
    tags: Vec<u32>,
}

impl PatternSet {
    /// Builds a case-sensitive pattern set.
    ///
    /// # Errors
    ///
    /// Returns [`PatternSetError`] if the iterator is empty, any pattern is
    /// empty or longer than [`MAX_PATTERN_LEN`], or two patterns are
    /// identical.
    pub fn new<I, P>(patterns: I) -> Result<Self, PatternSetError>
    where
        I: IntoIterator<Item = P>,
        P: AsRef<[u8]>,
    {
        Self::build(patterns, false)
    }

    /// Builds a case-insensitive (ASCII `nocase`) pattern set.
    ///
    /// Patterns are folded to lowercase; two patterns that collide after
    /// folding are reported as duplicates.
    ///
    /// # Errors
    ///
    /// Same conditions as [`PatternSet::new`].
    pub fn new_nocase<I, P>(patterns: I) -> Result<Self, PatternSetError>
    where
        I: IntoIterator<Item = P>,
        P: AsRef<[u8]>,
    {
        Self::build(patterns, true)
    }

    /// Builds a case-sensitive set, silently dropping duplicate patterns.
    ///
    /// Useful when ingesting raw rule dumps where the same content string
    /// appears in several rules; the paper likewise works on *unique*
    /// strings.
    ///
    /// # Errors
    ///
    /// Returns [`PatternSetError`] for empty input, empty patterns or
    /// over-long patterns (duplicates are not an error here).
    pub fn dedup_from<I, P>(patterns: I) -> Result<Self, PatternSetError>
    where
        I: IntoIterator<Item = P>,
        P: AsRef<[u8]>,
    {
        let mut seen = std::collections::HashSet::new();
        let unique: Vec<Vec<u8>> = patterns
            .into_iter()
            .map(|p| p.as_ref().to_vec())
            .filter(|p| seen.insert(p.clone()))
            .collect();
        Self::build(unique, false)
    }

    fn build<I, P>(patterns: I, case_insensitive: bool) -> Result<Self, PatternSetError>
    where
        I: IntoIterator<Item = P>,
        P: AsRef<[u8]>,
    {
        let mut out: Vec<Vec<u8>> = Vec::new();
        let mut seen: std::collections::HashMap<Vec<u8>, usize> = std::collections::HashMap::new();
        let mut total_bytes = 0usize;
        for (index, p) in patterns.into_iter().enumerate() {
            let mut bytes = p.as_ref().to_vec();
            if case_insensitive {
                for b in &mut bytes {
                    *b = b.to_ascii_lowercase();
                }
            }
            if bytes.is_empty() {
                return Err(PatternSetError::EmptyPattern { index });
            }
            if bytes.len() > MAX_PATTERN_LEN {
                return Err(PatternSetError::TooLong {
                    index,
                    len: bytes.len(),
                });
            }
            if let Some(&first) = seen.get(&bytes) {
                return Err(PatternSetError::Duplicate { index, first });
            }
            seen.insert(bytes.clone(), index);
            total_bytes += bytes.len();
            out.push(bytes);
        }
        if out.is_empty() {
            return Err(PatternSetError::Empty);
        }
        let tags = vec![0u32; out.len()];
        Ok(PatternSet {
            patterns: out,
            case_insensitive,
            total_bytes,
            tags,
        })
    }

    /// Number of patterns in the set.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// Returns `true` if the set holds no patterns.
    ///
    /// Always `false` for a successfully constructed set; provided for
    /// API completeness (`C-ITER`-adjacent convention).
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// Total number of pattern bytes (the paper characterizes rulesets by
    /// their character count, e.g. the 19,124-character set of Table III).
    pub fn total_bytes(&self) -> usize {
        self.total_bytes
    }

    /// Whether this set matches case-insensitively.
    pub fn is_case_insensitive(&self) -> bool {
        self.case_insensitive
    }

    /// The (possibly case-folded) bytes of pattern `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this set.
    pub fn pattern(&self, id: PatternId) -> &[u8] {
        &self.patterns[id.index()]
    }

    /// Length in bytes of pattern `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this set.
    pub fn pattern_len(&self, id: PatternId) -> usize {
        self.patterns[id.index()].len()
    }

    /// Iterates over `(PatternId, bytes)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (PatternId, &[u8])> {
        self.patterns
            .iter()
            .enumerate()
            .map(|(i, p)| (PatternId(i as u32), p.as_slice()))
    }

    /// The scope tag of pattern `id` (`0` when never tagged).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this set.
    pub fn tag(&self, id: PatternId) -> u32 {
        self.tags[id.index()]
    }

    /// Sets the scope tag of pattern `id`. Tags are opaque to the
    /// automaton layer; see the field docs on [`PatternSet`].
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this set.
    pub fn set_tag(&mut self, id: PatternId, tag: u32) {
        self.tags[id.index()] = tag;
    }

    /// Builder-style tagging: assigns `tag` to every id in `ids` and
    /// returns the set.
    ///
    /// # Panics
    ///
    /// Panics if any id is out of range.
    pub fn with_tag(mut self, tag: u32, ids: impl IntoIterator<Item = PatternId>) -> PatternSet {
        for id in ids {
            self.set_tag(id, tag);
        }
        self
    }

    /// The subset of patterns whose `(id, tag)` satisfies `keep`, with
    /// the id remap back into this set — the same `(PatternSet, ids)`
    /// shape as [`PatternSet::split`], or `None` when nothing survives
    /// (a [`PatternSet`] cannot be empty). Pattern order, case mode and
    /// tags are preserved.
    pub fn subset_where(
        &self,
        mut keep: impl FnMut(PatternId, u32) -> bool,
    ) -> Option<(PatternSet, Vec<PatternId>)> {
        let picked: Vec<usize> = (0..self.len())
            .filter(|&i| keep(PatternId(i as u32), self.tags[i]))
            .collect();
        if picked.is_empty() {
            return None;
        }
        let ids: Vec<PatternId> = picked.iter().map(|&i| PatternId(i as u32)).collect();
        let patterns: Vec<Vec<u8>> = picked.iter().map(|&i| self.patterns[i].clone()).collect();
        let tags: Vec<u32> = picked.iter().map(|&i| self.tags[i]).collect();
        let total_bytes = patterns.iter().map(Vec::len).sum();
        Some((
            PatternSet {
                patterns,
                case_insensitive: self.case_insensitive,
                total_bytes,
                tags,
            },
            ids,
        ))
    }

    /// Folds one input byte according to this set's case mode.
    ///
    /// Matchers call this on every haystack byte so that `nocase` sets match
    /// case-insensitively without copying the haystack.
    #[inline]
    pub fn fold(&self, byte: u8) -> u8 {
        if self.case_insensitive {
            byte.to_ascii_lowercase()
        } else {
            byte
        }
    }

    /// Splits the set into `groups` subsets, keeping patterns that share a
    /// first byte in the same subset whenever possible.
    ///
    /// Grouping by starting character minimizes duplicated shallow states
    /// across blocks — the paper's per-block depth-1 default counts (Table
    /// II's `d1` row: 110 entries across six blocks for the 6,275-string
    /// set, barely above the ruleset's count of distinct start bytes) are
    /// only achievable with such a split. Start-byte clusters are
    /// bin-packed by total bytes (largest cluster first, into the currently
    /// lightest group).
    ///
    /// Returns the same `(PatternSet, ids)` shape as [`PatternSet::split`].
    ///
    /// # Panics
    ///
    /// Panics if `groups` is zero or exceeds the number of patterns.
    pub fn split_by_prefix(&self, groups: usize) -> Vec<(PatternSet, Vec<PatternId>)> {
        assert!(groups > 0, "groups must be non-zero");
        assert!(
            groups <= self.len(),
            "cannot split {} patterns into {} groups",
            self.len(),
            groups
        );
        // Cluster pattern indices by first byte.
        let mut clusters: std::collections::BTreeMap<u8, (Vec<usize>, usize)> = Default::default();
        for (i, p) in self.patterns.iter().enumerate() {
            let entry = clusters.entry(p[0]).or_default();
            entry.0.push(i);
            entry.1 += p.len();
        }
        let mut clusters: Vec<(Vec<usize>, usize)> = clusters.into_values().collect();
        clusters.sort_by_key(|&(_, bytes)| std::cmp::Reverse(bytes));
        // Bin-pack: largest cluster into the lightest group. Oversized
        // clusters (heavier than a fair share) are split across groups.
        let fair = self.total_bytes().div_ceil(groups);
        let mut buckets: Vec<(Vec<usize>, usize)> = vec![(Vec::new(), 0); groups];
        for (members, bytes) in clusters {
            if bytes > fair && members.len() > 1 {
                // Distribute an oversized cluster round-robin by weight.
                for idx in members {
                    let lightest = buckets
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, (_, b))| *b)
                        .map(|(i, _)| i)
                        .expect("groups > 0");
                    buckets[lightest].0.push(idx);
                    buckets[lightest].1 += self.patterns[idx].len();
                }
            } else {
                let lightest = buckets
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, (_, b))| *b)
                    .map(|(i, _)| i)
                    .expect("groups > 0");
                buckets[lightest].1 += bytes;
                buckets[lightest].0.extend(members);
            }
        }
        // An empty bucket can occur when clusters < groups; steal singles.
        for i in 0..groups {
            if buckets[i].0.is_empty() {
                let donor = buckets
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, (m, _))| m.len())
                    .map(|(j, _)| j)
                    .expect("groups > 0");
                let idx = buckets[donor].0.pop().expect("donor has >1 member");
                let len = self.patterns[idx].len();
                buckets[donor].1 -= len;
                buckets[i].0.push(idx);
                buckets[i].1 += len;
            }
        }
        buckets
            .into_iter()
            .map(|(mut bucket, _)| {
                bucket.sort_unstable();
                let ids: Vec<PatternId> = bucket.iter().map(|&i| PatternId(i as u32)).collect();
                let patterns: Vec<Vec<u8>> =
                    bucket.iter().map(|&i| self.patterns[i].clone()).collect();
                let tags: Vec<u32> = bucket.iter().map(|&i| self.tags[i]).collect();
                let total_bytes = patterns.iter().map(Vec::len).sum();
                (
                    PatternSet {
                        patterns,
                        case_insensitive: self.case_insensitive,
                        total_bytes,
                        tags,
                    },
                    ids,
                )
            })
            .collect()
    }

    /// Splits the set into `groups` nearly-equal subsets for multi-block
    /// deployment, preserving pattern order within each subset.
    ///
    /// The paper splits large rulesets across string matching blocks so each
    /// block's state machine fits its memory. Splitting is round-robin over
    /// patterns sorted by length (longest first), which balances the state
    /// counts of the resulting automata. Returns one `(PatternSet, ids)`
    /// pair per group, where `ids[i]` is the id in `self` of the group's
    /// i-th pattern (needed to translate per-block string numbers back to
    /// global pattern ids).
    ///
    /// # Panics
    ///
    /// Panics if `groups` is zero or exceeds the number of patterns.
    pub fn split(&self, groups: usize) -> Vec<(PatternSet, Vec<PatternId>)> {
        assert!(groups > 0, "groups must be non-zero");
        assert!(
            groups <= self.len(),
            "cannot split {} patterns into {} groups",
            self.len(),
            groups
        );
        let mut order: Vec<usize> = (0..self.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(self.patterns[i].len()));
        let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); groups];
        for (k, idx) in order.into_iter().enumerate() {
            buckets[k % groups].push(idx);
        }
        buckets
            .into_iter()
            .map(|mut bucket| {
                bucket.sort_unstable();
                let ids: Vec<PatternId> = bucket.iter().map(|&i| PatternId(i as u32)).collect();
                let patterns: Vec<Vec<u8>> =
                    bucket.iter().map(|&i| self.patterns[i].clone()).collect();
                let tags: Vec<u32> = bucket.iter().map(|&i| self.tags[i]).collect();
                let total_bytes = patterns.iter().map(Vec::len).sum();
                (
                    PatternSet {
                        patterns,
                        case_insensitive: self.case_insensitive,
                        total_bytes,
                        tags,
                    },
                    ids,
                )
            })
            .collect()
    }
}

impl<'a> IntoIterator for &'a PatternSet {
    type Item = (PatternId, &'a [u8]);
    type IntoIter = Box<dyn Iterator<Item = (PatternId, &'a [u8])> + 'a>;

    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_indexes() {
        let set = PatternSet::new(["he", "she", "his", "hers"]).unwrap();
        assert_eq!(set.len(), 4);
        assert!(!set.is_empty());
        assert_eq!(set.pattern(PatternId(0)), b"he");
        assert_eq!(set.pattern(PatternId(3)), b"hers");
        assert_eq!(set.total_bytes(), 2 + 3 + 3 + 4);
        assert_eq!(set.pattern_len(PatternId(3)), 4);
    }

    #[test]
    fn tags_survive_subsets_and_splits() {
        let set = PatternSet::new(["he", "she", "his", "hers"])
            .unwrap()
            .with_tag(1, [PatternId(1), PatternId(3)]);
        assert_eq!(set.tag(PatternId(0)), 0);
        assert_eq!(set.tag(PatternId(1)), 1);

        let (sub, ids) = set.subset_where(|_, tag| tag == 1).unwrap();
        assert_eq!(ids, vec![PatternId(1), PatternId(3)]);
        assert_eq!(sub.pattern(PatternId(0)), b"she");
        assert_eq!(sub.tag(PatternId(0)), 1);
        assert_eq!(sub.tag(PatternId(1)), 1);
        assert!(set.subset_where(|_, tag| tag == 9).is_none());

        for (shard, ids) in set.split(2) {
            for (local, global) in ids.iter().enumerate() {
                assert_eq!(shard.tag(PatternId(local as u32)), set.tag(*global));
            }
        }
    }

    #[test]
    fn rejects_empty_set() {
        let none: [&str; 0] = [];
        assert_eq!(PatternSet::new(none), Err(PatternSetError::Empty));
    }

    #[test]
    fn rejects_empty_pattern() {
        assert_eq!(
            PatternSet::new(["a", ""]),
            Err(PatternSetError::EmptyPattern { index: 1 })
        );
    }

    #[test]
    fn rejects_duplicates_with_positions() {
        assert_eq!(
            PatternSet::new(["ab", "cd", "ab"]),
            Err(PatternSetError::Duplicate { index: 2, first: 0 })
        );
    }

    #[test]
    fn rejects_too_long() {
        let long = vec![b'x'; MAX_PATTERN_LEN + 1];
        let err = PatternSet::new([long.as_slice()]).unwrap_err();
        assert!(matches!(err, PatternSetError::TooLong { index: 0, .. }));
    }

    #[test]
    fn nocase_folds_and_detects_folded_duplicates() {
        let set = PatternSet::new_nocase(["AbC"]).unwrap();
        assert_eq!(set.pattern(PatternId(0)), b"abc");
        assert!(set.is_case_insensitive());
        assert_eq!(set.fold(b'Z'), b'z');
        assert_eq!(
            PatternSet::new_nocase(["AB", "ab"]),
            Err(PatternSetError::Duplicate { index: 1, first: 0 })
        );
    }

    #[test]
    fn case_sensitive_fold_is_identity() {
        let set = PatternSet::new(["ab"]).unwrap();
        assert_eq!(set.fold(b'Z'), b'Z');
    }

    #[test]
    fn dedup_from_drops_duplicates() {
        let set = PatternSet::dedup_from(["ab", "cd", "ab", "ef", "cd"]).unwrap();
        assert_eq!(set.len(), 3);
        assert_eq!(set.pattern(PatternId(2)), b"ef");
    }

    #[test]
    fn iter_yields_in_id_order() {
        let set = PatternSet::new(["x", "yy", "zzz"]).unwrap();
        let collected: Vec<(u32, usize)> = set.iter().map(|(id, p)| (id.0, p.len())).collect();
        assert_eq!(collected, vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn split_partitions_all_patterns_exactly_once() {
        let strings: Vec<String> = (0..25).map(|i| format!("pattern{i:03}")).collect();
        let set = PatternSet::new(&strings).unwrap();
        let parts = set.split(4);
        assert_eq!(parts.len(), 4);
        let mut seen: Vec<u32> = parts
            .iter()
            .flat_map(|(_, ids)| ids.iter().map(|id| id.0))
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..25).collect::<Vec<_>>());
        // Every group's local pattern i equals the global pattern ids[i].
        for (sub, ids) in &parts {
            for (local, global) in ids.iter().enumerate() {
                assert_eq!(sub.pattern(PatternId(local as u32)), set.pattern(*global));
            }
        }
    }

    #[test]
    fn split_balances_total_bytes() {
        // 20 patterns with wildly varying lengths; longest-first round robin
        // keeps group byte totals within ~2x of each other.
        let strings: Vec<String> = (1..=20).map(|i| "x".repeat(i * 3)).collect();
        let set = PatternSet::new(&strings).unwrap();
        let parts = set.split(4);
        let totals: Vec<usize> = parts.iter().map(|(s, _)| s.total_bytes()).collect();
        let max = *totals.iter().max().unwrap();
        let min = *totals.iter().min().unwrap();
        assert!(max <= 2 * min, "imbalanced split: {totals:?}");
    }

    #[test]
    #[should_panic(expected = "groups must be non-zero")]
    fn split_zero_groups_panics() {
        let set = PatternSet::new(["a"]).unwrap();
        let _ = set.split(0);
    }

    #[test]
    fn prefix_split_partitions_exactly_once() {
        let strings: Vec<String> = (0..30)
            .map(|i| format!("{}tail{i}", (b'a' + (i % 6) as u8) as char))
            .collect();
        let set = PatternSet::new(&strings).unwrap();
        let parts = set.split_by_prefix(3);
        let mut seen: Vec<u32> = parts
            .iter()
            .flat_map(|(_, ids)| ids.iter().map(|id| id.0))
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..30).collect::<Vec<_>>());
    }

    #[test]
    fn prefix_split_keeps_start_bytes_together() {
        // 6 start bytes, 3 groups: each start byte should live in exactly
        // one group (clusters are small enough not to be split).
        let strings: Vec<String> = (0..60)
            .map(|i| format!("{}tail{i:03}", (b'a' + (i % 6) as u8) as char))
            .collect();
        let set = PatternSet::new(&strings).unwrap();
        let parts = set.split_by_prefix(3);
        let mut homes: std::collections::HashMap<u8, std::collections::HashSet<usize>> =
            Default::default();
        for (g, (sub, _)) in parts.iter().enumerate() {
            for (_, p) in sub.iter() {
                homes.entry(p[0]).or_default().insert(g);
            }
        }
        for (byte, groups) in homes {
            assert_eq!(groups.len(), 1, "start byte {byte} split across groups");
        }
    }

    #[test]
    fn prefix_split_fills_every_group() {
        // Single start byte, many patterns: the oversized cluster is
        // distributed so no group is empty.
        let strings: Vec<String> = (0..20).map(|i| format!("x{i:04}")).collect();
        let set = PatternSet::new(&strings).unwrap();
        let parts = set.split_by_prefix(4);
        for (sub, _) in &parts {
            assert!(!sub.is_empty());
        }
    }

    #[test]
    fn display_impls() {
        assert_eq!(PatternId(7).to_string(), "P7");
        let err = PatternSetError::Duplicate { index: 2, first: 0 };
        assert!(err.to_string().contains("duplicates"));
    }
}
