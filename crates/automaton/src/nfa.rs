//! Classic Aho-Corasick automaton with a **failure function** (the solution
//! the paper rejects for hardware, §III.A).
//!
//! Each state stores only its *goto* (tree) edges; any byte without a goto
//! edge follows the failure pointer, possibly several times, before a
//! transition is found. This minimizes memory but cannot guarantee one input
//! character per clock cycle: an adversary can craft input that maximizes
//! fail-chain walking. [`NfaMatcher::scan_counting`] exposes the number of
//! state lookups actually performed so the guarantee gap is measurable (see
//! the `adversarial` experiment).

use crate::match_event::{Match, MultiMatcher};
use crate::pattern::{PatternId, PatternSet};
use crate::trie::{StateId, Trie};

/// Aho-Corasick NFA: trie + failure function + output closure.
#[derive(Debug, Clone)]
pub struct Nfa {
    trie: Trie,
    fail: Vec<StateId>,
    /// Full output function: all patterns ending at this state, including
    /// those inherited through failure links.
    output: Vec<Vec<PatternId>>,
}

impl Nfa {
    /// Builds the NFA for `set`.
    ///
    /// # Examples
    ///
    /// ```
    /// use dpi_automaton::{Nfa, PatternSet};
    /// let set = PatternSet::new(["he", "she", "his", "hers"])?;
    /// let nfa = Nfa::build(&set);
    /// assert_eq!(nfa.len(), 10);
    /// # Ok::<(), dpi_automaton::PatternSetError>(())
    /// ```
    pub fn build(set: &PatternSet) -> Nfa {
        let trie = Trie::build(set);
        Self::from_trie(trie)
    }

    /// Builds the NFA from an existing trie (shared with the DFA builder).
    pub fn from_trie(trie: Trie) -> Nfa {
        let n = trie.len();
        let mut fail = vec![StateId::START; n];
        let mut output: Vec<Vec<PatternId>> = (0..n)
            .map(|i| trie.state(StateId(i as u32)).terminal().to_vec())
            .collect();

        // Standard BFS construction. Because `Trie` ids are already in BFS
        // order, iterating ids ascending visits parents before children.
        for i in 1..n {
            let id = StateId(i as u32);
            let state = trie.state(id);
            let byte = state.in_byte().expect("non-root state has in_byte");
            let parent = state.parent().expect("non-root state has parent");
            let f = if parent == StateId::START {
                StateId::START
            } else {
                // Walk the parent's fail chain looking for a state with a
                // goto edge on `byte`.
                let mut at = fail[parent.index()];
                loop {
                    if let Some(next) = trie.state(at).child(byte) {
                        break next;
                    }
                    if at == StateId::START {
                        break StateId::START;
                    }
                    at = fail[at.index()];
                }
            };
            fail[i] = f;
            // Output closure: inherit the fail target's outputs. Since fail
            // targets are strictly shallower, and we visit in BFS order,
            // output[f] is already closed.
            if !output[f.index()].is_empty() {
                let inherited = output[f.index()].clone();
                output[i].extend(inherited);
                output[i].sort_unstable();
                output[i].dedup();
            }
        }
        Nfa { trie, fail, output }
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.trie.len()
    }

    /// `true` if the automaton has only the start state.
    pub fn is_empty(&self) -> bool {
        self.trie.is_empty()
    }

    /// The underlying trie.
    pub fn trie(&self) -> &Trie {
        &self.trie
    }

    /// Failure target of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn fail(&self, id: StateId) -> StateId {
        self.fail[id.index()]
    }

    /// All patterns recognized on entering `id` (fail-closed).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn output(&self, id: StateId) -> &[PatternId] {
        &self.output[id.index()]
    }

    /// Resolves one input byte from `state`, following fail pointers as
    /// needed. Returns the next state and the number of state lookups
    /// consumed (1 = no fail steps; each fail step adds one).
    pub fn step_counting(&self, state: StateId, byte: u8) -> (StateId, usize) {
        let mut at = state;
        let mut lookups = 1usize;
        loop {
            if let Some(next) = self.trie.state(at).child(byte) {
                return (next, lookups);
            }
            if at == StateId::START {
                return (StateId::START, lookups);
            }
            at = self.fail[at.index()];
            lookups += 1;
        }
    }

    /// Resolves one input byte from `state`.
    pub fn step(&self, state: StateId, byte: u8) -> StateId {
        self.step_counting(state, byte).0
    }
}

/// Scanner over an [`Nfa`] with cycle (state-lookup) accounting.
#[derive(Debug, Clone)]
pub struct NfaMatcher<'a> {
    nfa: &'a Nfa,
    set: &'a PatternSet,
}

/// Result of a counting scan: the matches plus the cost actually paid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CountedScan {
    /// All occurrences, canonical order.
    pub matches: Vec<Match>,
    /// Total state lookups performed. Equals the haystack length only when
    /// no fail pointer was ever followed; the surplus is the "wasted
    /// transitions" the paper's move-function design eliminates.
    pub lookups: usize,
    /// The largest number of lookups spent on a single input byte (worst
    /// case per-byte latency).
    pub max_lookups_per_byte: usize,
}

impl<'a> NfaMatcher<'a> {
    /// Creates a matcher borrowing the automaton and its pattern set.
    pub fn new(nfa: &'a Nfa, set: &'a PatternSet) -> Self {
        NfaMatcher { nfa, set }
    }

    /// Scans and returns both matches and lookup counts.
    pub fn scan_counting(&self, haystack: &[u8]) -> CountedScan {
        let mut matches = Vec::new();
        let mut state = StateId::START;
        let mut lookups = 0usize;
        let mut max_per_byte = 0usize;
        for (i, &raw) in haystack.iter().enumerate() {
            let byte = self.set.fold(raw);
            let (next, n) = self.nfa.step_counting(state, byte);
            lookups += n;
            max_per_byte = max_per_byte.max(n);
            state = next;
            for &p in self.nfa.output(state) {
                matches.push(Match {
                    end: i + 1,
                    pattern: p,
                });
            }
        }
        CountedScan {
            matches,
            lookups,
            max_lookups_per_byte: max_per_byte,
        }
    }

    /// Resumable scan: consumes `chunk` from `state`, **appending** every
    /// occurrence to `out` with stream-absolute `end` offsets, and leaves
    /// `state` ready for the flow's next chunk. Fail-pointer walks are
    /// oblivious to chunk boundaries (they depend only on the current
    /// state), so any packetization reproduces the whole-payload matches.
    pub fn scan_chunk_into(
        &self,
        state: &mut crate::stream::ScanState,
        chunk: &[u8],
        out: &mut Vec<Match>,
    ) {
        let base = state.offset as usize;
        let mut s = state.state;
        for (i, &raw) in chunk.iter().enumerate() {
            let byte = self.set.fold(raw);
            s = self.nfa.step(s, byte);
            state.push_byte(byte);
            for &p in self.nfa.output(s) {
                out.push(Match {
                    end: base + i + 1,
                    pattern: p,
                });
            }
        }
        state.state = s;
    }
}

impl MultiMatcher for NfaMatcher<'_> {
    fn find_all(&self, haystack: &[u8]) -> Vec<Match> {
        self.scan_counting(haystack).matches
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure1() -> (PatternSet, Nfa) {
        let set = PatternSet::new(["he", "she", "his", "hers"]).unwrap();
        let nfa = Nfa::build(&set);
        (set, nfa)
    }

    #[test]
    fn finds_the_textbook_matches() {
        let (set, nfa) = figure1();
        let m = NfaMatcher::new(&nfa, &set);
        // "ushers" contains she (..4), he (..4), hers (..6); at equal end
        // positions the canonical order is pattern-id order (he = P0 first).
        let found = m.find_all(b"ushers");
        let strings: Vec<&[u8]> = found.iter().map(|m| set.pattern(m.pattern)).collect();
        assert_eq!(strings, vec![&b"he"[..], &b"she"[..], &b"hers"[..]]);
        assert_eq!(found[0].end, 4);
        assert_eq!(found[1].end, 4);
        assert_eq!(found[2].end, 6);
    }

    #[test]
    fn output_closure_reports_suffix_matches() {
        let (set, nfa) = figure1();
        // Entering state "she" must also report "he" (a proper suffix).
        let m = NfaMatcher::new(&nfa, &set);
        let found = m.find_all(b"she");
        assert_eq!(found.len(), 2);
        let mut pats: Vec<u32> = found.iter().map(|m| m.pattern.0).collect();
        pats.sort_unstable();
        assert_eq!(pats, vec![0, 1]); // he, she
    }

    #[test]
    fn overlapping_occurrences_all_reported() {
        let set = PatternSet::new(["aa"]).unwrap();
        let nfa = Nfa::build(&set);
        let m = NfaMatcher::new(&nfa, &set);
        let found = m.find_all(b"aaaa");
        assert_eq!(found.len(), 3);
        assert_eq!(
            found.iter().map(|m| m.end).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
    }

    #[test]
    fn fail_links_match_textbook_example() {
        let (_, nfa) = figure1();
        let trie = nfa.trie();
        let h = trie.state(StateId::START).child(b'h').unwrap();
        let s = trie.state(StateId::START).child(b's').unwrap();
        let sh = trie.state(s).child(b'h').unwrap();
        let she = trie.state(sh).child(b'e').unwrap();
        let he = trie.state(h).child(b'e').unwrap();
        // fail(sh) = h, fail(she) = he, fail(h) = start.
        assert_eq!(nfa.fail(sh), h);
        assert_eq!(nfa.fail(she), he);
        assert_eq!(nfa.fail(h), StateId::START);
    }

    #[test]
    fn counting_scan_charges_fail_steps() {
        let (set, nfa) = figure1();
        let m = NfaMatcher::new(&nfa, &set);
        // "shis": s->sh (goto), 'i' fails sh->h then goto h->hi: 2 lookups.
        let counted = m.scan_counting(b"shis");
        assert!(counted.lookups > 4, "expected fail-step overhead");
        assert!(counted.max_lookups_per_byte >= 2);
    }

    #[test]
    fn no_match_clean_text_costs_little() {
        let (set, nfa) = figure1();
        let m = NfaMatcher::new(&nfa, &set);
        let counted = m.scan_counting(b"zzzzzzzz");
        assert!(counted.matches.is_empty());
        assert_eq!(counted.lookups, 8);
        assert_eq!(counted.max_lookups_per_byte, 1);
    }

    #[test]
    fn empty_haystack() {
        let (set, nfa) = figure1();
        let m = NfaMatcher::new(&nfa, &set);
        assert!(m.find_all(b"").is_empty());
        assert!(!m.is_match(b""));
    }

    #[test]
    fn nocase_scan_folds_input() {
        let set = PatternSet::new_nocase(["Virus"]).unwrap();
        let nfa = Nfa::build(&set);
        let m = NfaMatcher::new(&nfa, &set);
        assert!(m.is_match(b"VIRUS"));
        assert!(m.is_match(b"virus"));
        assert!(m.is_match(b"ViRuS alert"));
    }

    #[test]
    fn duplicate_suffix_outputs_are_deduped() {
        // "aba" fails into "ba"? Construct nested suffixes: a, aa, aaa.
        let set = PatternSet::new(["a", "aa", "aaa"]).unwrap();
        let nfa = Nfa::build(&set);
        let m = NfaMatcher::new(&nfa, &set);
        let found = m.find_all(b"aaa");
        // ends: 1 (a), 2 (a, aa), 3 (a, aa, aaa) = 6 matches.
        assert_eq!(found.len(), 6);
        // No duplicates.
        let mut dedup = found.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), found.len());
    }
}
