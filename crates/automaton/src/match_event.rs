//! Match events and the common matcher interface used for differential
//! testing across every engine in the workspace.

use crate::pattern::{PatternId, PatternSet};

/// A single pattern occurrence in a haystack.
///
/// Matches are reported at the position of their **last** byte, mirroring the
/// hardware (a string matching engine learns of a match when it enters the
/// accepting state, i.e. after consuming the string's final character).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Match {
    /// Offset **one past** the final byte of the occurrence.
    pub end: usize,
    /// Which pattern matched.
    pub pattern: PatternId,
}

impl Match {
    /// Byte range of the occurrence within the haystack.
    ///
    /// # Examples
    ///
    /// ```
    /// use dpi_automaton::{Match, PatternId, PatternSet};
    /// let set = PatternSet::new(["she"])?;
    /// let m = Match { end: 5, pattern: PatternId(0) };
    /// assert_eq!(m.range(&set), 2..5);
    /// # Ok::<(), dpi_automaton::PatternSetError>(())
    /// ```
    pub fn range(&self, set: &PatternSet) -> std::ops::Range<usize> {
        let len = set.pattern_len(self.pattern);
        self.end - len..self.end
    }
}

impl std::fmt::Display for Match {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}@..{}", self.pattern, self.end)
    }
}

/// Common interface implemented by every multi-pattern matcher in the
/// workspace (NFA, full DFA, DTP matcher, Tuck baselines, hardware image
/// interpreter, cycle-accurate engine).
///
/// Implementations must report **all overlapping occurrences** of **all
/// patterns**, sorted by `(end, pattern)` — the canonical order produced by
/// scanning left to right and listing each position's output set in pattern
/// id order. The differential test suites compare these vectors across
/// implementations byte-for-byte.
pub trait MultiMatcher {
    /// Scans `haystack` and returns every occurrence in canonical order.
    fn find_all(&self, haystack: &[u8]) -> Vec<Match>;

    /// Scans `haystack`, writing every occurrence into `out` (cleared
    /// first) in canonical order.
    ///
    /// Reusing one buffer across packets removes the per-scan allocation
    /// of [`MultiMatcher::find_all`] — the intended shape for production
    /// scan loops. The default implementation still allocates internally;
    /// performance-critical matchers override it to fill `out` directly.
    fn find_all_into(&self, haystack: &[u8], out: &mut Vec<Match>) {
        out.clear();
        out.extend(self.find_all(haystack));
    }

    /// Convenience: `true` if any pattern occurs in `haystack`.
    fn is_match(&self, haystack: &[u8]) -> bool {
        !self.find_all(haystack).is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_resolves_via_pattern_length() {
        let set = PatternSet::new(["he", "hers"]).unwrap();
        let m = Match {
            end: 4,
            pattern: PatternId(1),
        };
        assert_eq!(m.range(&set), 0..4);
        let m2 = Match {
            end: 2,
            pattern: PatternId(0),
        };
        assert_eq!(m2.range(&set), 0..2);
    }

    #[test]
    fn ordering_is_end_then_pattern() {
        let a = Match {
            end: 3,
            pattern: PatternId(5),
        };
        let b = Match {
            end: 4,
            pattern: PatternId(0),
        };
        let c = Match {
            end: 4,
            pattern: PatternId(1),
        };
        let mut v = vec![c, a, b];
        v.sort();
        assert_eq!(v, vec![a, b, c]);
    }

    #[test]
    fn display_is_compact() {
        let m = Match {
            end: 9,
            pattern: PatternId(2),
        };
        assert_eq!(m.to_string(), "P2@..9");
    }
}
