//! Transition-pointer statistics — the memory metric of Table II.
//!
//! The paper quantifies automaton memory by the number of **stored transition
//! pointers**: transitions that lead anywhere other than the start state
//! (§III.B: transitions to the start state need no storage, and the
//! default-transition scheme then removes most of the rest). This module
//! computes that metric for a full DFA; `dpi-core::stats` computes it after
//! reduction.

use crate::dfa::Dfa;
use crate::trie::StateId;

/// Pointer census of a full move-function DFA.
#[derive(Debug, Clone, PartialEq)]
pub struct DfaStats {
    /// Total states, including the start state.
    pub states: usize,
    /// Total transitions not leading to the start state.
    pub non_start_pointers: usize,
    /// Mean pointers per state (the paper's "Avg.Pointers").
    pub avg_pointers: f64,
    /// Largest per-state pointer count.
    pub max_pointers: usize,
    /// States per depth (index = depth).
    pub states_by_depth: Vec<usize>,
    /// Pointer-target census: how many stored pointers lead to states of
    /// each depth (index = target depth). Depth-1/2/3 dominance of this
    /// histogram is the observation motivating default transition pointers.
    pub targets_by_depth: Vec<usize>,
}

impl DfaStats {
    /// Computes the census for `dfa`.
    ///
    /// # Examples
    ///
    /// ```
    /// use dpi_automaton::{Dfa, DfaStats, PatternSet};
    /// let set = PatternSet::new(["he", "she", "his", "hers"])?;
    /// let stats = DfaStats::compute(&Dfa::build(&set));
    /// assert_eq!(stats.states, 10);
    /// assert_eq!(stats.non_start_pointers, 26);
    /// assert!((stats.avg_pointers - 2.6).abs() < 1e-9);
    /// # Ok::<(), dpi_automaton::PatternSetError>(())
    /// ```
    pub fn compute(dfa: &Dfa) -> DfaStats {
        let states = dfa.len();
        let max_depth = dfa.states().map(|s| dfa.depth(s)).max().unwrap_or(0) as usize;
        let mut states_by_depth = vec![0usize; max_depth + 1];
        let mut targets_by_depth = vec![0usize; max_depth + 1];
        let mut total = 0usize;
        let mut max_pointers = 0usize;
        for s in dfa.states() {
            states_by_depth[dfa.depth(s) as usize] += 1;
            let mut count = 0usize;
            for &t in dfa.row(s) {
                if t != 0 {
                    count += 1;
                    targets_by_depth[dfa.depth(StateId(t)) as usize] += 1;
                }
            }
            total += count;
            max_pointers = max_pointers.max(count);
        }
        DfaStats {
            states,
            non_start_pointers: total,
            avg_pointers: total as f64 / states as f64,
            max_pointers,
            states_by_depth,
            targets_by_depth,
        }
    }

    /// Fraction of stored pointers whose target is at depth ≤ 3 — the
    /// paper's key observation ("the majority of transition pointers stored
    /// in states will point to only a few states near the start").
    pub fn shallow_target_fraction(&self) -> f64 {
        let shallow: usize = self
            .targets_by_depth
            .iter()
            .take(4)
            .sum();
        shallow as f64 / self.non_start_pointers.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::PatternSet;

    fn figure1_stats() -> DfaStats {
        let set = PatternSet::new(["he", "she", "his", "hers"]).unwrap();
        DfaStats::compute(&Dfa::build(&set))
    }

    #[test]
    fn figure1_census() {
        let s = figure1_stats();
        assert_eq!(s.states, 10);
        assert_eq!(s.non_start_pointers, 26);
        assert!((s.avg_pointers - 2.6).abs() < 1e-12);
        assert_eq!(s.states_by_depth, vec![1, 2, 3, 3, 1]);
    }

    #[test]
    fn figure1_targets_are_shallow() {
        let s = figure1_stats();
        // Depth-0 is never a stored target by definition.
        assert_eq!(s.targets_by_depth[0], 0);
        // 'h' reaches depth-1 state "h" from 7 states ("s", "his", "hers"
        // divert to "sh"); 's' reaches "s" from 8 ("hi"→"his", "her"→"hers").
        assert_eq!(s.targets_by_depth[1], 15);
        assert_eq!(s.targets_by_depth[2], 6); // sh←s,his,hers; he←h; hi←h,sh
        assert_eq!(s.targets_by_depth[3], 4); // she←sh; her←he,she; his←hi
        assert_eq!(s.targets_by_depth[4], 1); // hers←her
        assert!((s.shallow_target_fraction() - 25.0 / 26.0).abs() < 1e-12);
    }

    #[test]
    fn max_pointers_bounded_by_alphabet() {
        let s = figure1_stats();
        assert!(s.max_pointers <= 256);
        assert!(s.max_pointers >= 2);
    }

    #[test]
    fn single_pattern_chain() {
        let set = PatternSet::new(["abcd"]).unwrap();
        let s = DfaStats::compute(&Dfa::build(&set));
        assert_eq!(s.states, 5);
        // Every state transitions to "a" on byte 'a' (5 pointers) plus the
        // tree edges b,c,d (3 pointers, each from exactly one state).
        assert_eq!(s.non_start_pointers, 5 + 3);
        assert_eq!(s.states_by_depth, vec![1, 1, 1, 1, 1]);
    }
}
