//! x86 SIMD classification kernels for the compiled engine's fast lanes
//! (the `simd` cargo feature).
//!
//! Three PRs of safe-Rust lane work hit the same ceiling: the scalar
//! SWAR window classifies 8 bytes per iteration through a byte-table
//! fold, the pair-calm window probes 4 pairs through four dependent
//! bitmap loads, and the chained pair-row walk serializes on its table
//! load with no way to express a prefetch. Each time the recorded next
//! lever was shuffle-based classification — the technique modern
//! software DPI engines (Hyperscan's "shufti", the Hyperflex line of
//! work) are built on. This module admits exactly that much `unsafe`:
//!
//! - [`ByteSetTables`] — a 64-byte nibble-split representation of an
//!   **arbitrary** byte set, queried 16 or 32 bytes per `pshufb` pair;
//! - [`SimdToken`] — a runtime-detection witness whose existence proves
//!   the CPU supports the instructions, making every vector entry point
//!   on it a *safe* function;
//! - [`SimdToken::prefetch`] — `_mm_prefetch` on a reference, for the
//!   chained hot-row walk.
//!
//! # Soundness
//!
//! Every `unsafe` block in the workspace lives in this file, and each is
//! one of two shapes:
//!
//! 1. **Feature-gated intrinsics.** Functions marked
//!    `#[target_feature(enable = ...)]` are only reachable through a
//!    [`SimdToken`], which can only be constructed by
//!    [`SimdToken::detect`] returning `Some` — i.e. after
//!    `is_x86_feature_detected!` confirmed the CPU executes them. The
//!    AVX2 entry point additionally re-checks its own flag and falls
//!    back to two SSE probes, so a token from an SSSE3-only CPU stays
//!    sound even if a caller ignores [`SimdToken::avx2`].
//! 2. **Unaligned vector loads.** `_mm_loadu_si128`/`_mm256_loadu_si256`
//!    read exactly 16/32 bytes from a `&[u8; 16]`/`&[u8; 32]` borrow,
//!    which guarantees readability of every byte loaded; `loadu` has no
//!    alignment requirement.
//!
//! The *classification* correctness (vector verdicts ≡ the scalar
//! bitmaps they mirror) is not an `unsafe` precondition — it is pinned
//! by [`ByteSetTables::model_contains`], a safe scalar model of the
//! shuffle algebra that `tests/simd.rs` checks against both the vector
//! kernels and the source [`AnchorSet`](crate::AnchorSet) /
//! [`PairTable`](crate::PairTable) bitmaps over the full key space.
//!
//! # The nibble-split construction
//!
//! `pshufb` is a 16-entry byte table lookup. Splitting each input byte
//! `b` into nibbles `(hi, lo) = (b >> 4, b & 15)` and giving each of the
//! 16 possible `hi` values its own bit yields an **exact** membership
//! test for any byte set: `lo_table[lo]` holds the set of `hi` rows in
//! which column `lo` is a member, `hi_table[hi]` holds the single bit of
//! row `hi`, and `lo_table[lo] & hi_table[hi] != 0` iff `b` is in the
//! set. Sixteen rows need 16 bits but a `pshufb` lane holds 8, so the
//! set is split into two planes (`hi < 8` and `hi ≥ 8`) of two tables
//! each — four shuffles and a handful of bitwise ops classify a whole
//! vector. Unlike the single-plane "shufti" heuristic this two-plane
//! form is exact for *every* byte set, so no scalar confirmation pass
//! is needed.

#![allow(unsafe_code)]

#[cfg(target_arch = "x86_64")]
use std::arch::x86_64::*;

/// Nibble-split shuffle tables representing one byte set exactly: byte
/// `b` is a member iff
/// `(lo1[b&15] & hi1[b>>4]) | (lo2[b&15] & hi2[b>>4]) != 0`.
///
/// Plain data — building and modelling it is safe on every target; only
/// the vector queries (through [`SimdToken`]) touch intrinsics. 64 bytes
/// per set, so an [`AnchorSet`](crate::AnchorSet) or
/// [`PairTable`](crate::PairTable) carries its tables at no meaningful
/// memory cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ByteSetTables {
    /// Plane 1 (`hi < 8`): per lo-nibble, the set of hi rows present.
    lo1: [u8; 16],
    /// Plane 1 row bits: `hi1[h] = 1 << h` for `h < 8`, else 0.
    hi1: [u8; 16],
    /// Plane 2 (`hi ≥ 8`): per lo-nibble, the set of hi rows present.
    lo2: [u8; 16],
    /// Plane 2 row bits: `hi2[h] = 1 << (h - 8)` for `h ≥ 8`, else 0.
    hi2: [u8; 16],
}

impl ByteSetTables {
    /// Builds the tables for the set `{b : contains(b)}`.
    pub fn build(contains: impl Fn(u8) -> bool) -> ByteSetTables {
        let mut t = ByteSetTables {
            lo1: [0; 16],
            hi1: [0; 16],
            lo2: [0; 16],
            hi2: [0; 16],
        };
        for h in 0..8usize {
            t.hi1[h] = 1 << h;
            t.hi2[h + 8] = 1 << h;
        }
        for b in 0..=255u8 {
            if contains(b) {
                let (h, l) = ((b >> 4) as usize, (b & 15) as usize);
                if h < 8 {
                    t.lo1[l] |= 1 << h;
                } else {
                    t.lo2[l] |= 1 << (h - 8);
                }
            }
        }
        t
    }

    /// The safe scalar model of the shuffle algebra: exactly the
    /// computation the vector kernels perform, one byte at a time.
    /// `tests/simd.rs` pins `model_contains` ≡ the source bitmap (per
    /// byte) and the vector kernels ≡ `model_contains` (per lane), which
    /// together pin the kernels to the bitmaps without any traffic
    /// generation in the loop.
    #[inline(always)]
    pub fn model_contains(&self, b: u8) -> bool {
        let (h, l) = ((b >> 4) as usize, (b & 15) as usize);
        (self.lo1[l] & self.hi1[h]) | (self.lo2[l] & self.hi2[h]) != 0
    }
}

/// A nibble-box cover of a byte-*pair* relation, for vectorizing the
/// lane's per-byte danger walk.
///
/// Measurement drove this shape: on the repro traffic not a single
/// 8/16/32-byte window is fully skippable (the scalar SWAR window
/// almost never fires — the lane's throughput comes entirely from the
/// per-byte `danger[prev << 8 | c]` walk), so any probe that only
/// classifies *single bytes* has nothing to accelerate. The walk's
/// predicate is pair-keyed, and `pshufb` cannot index a 16-bit key —
/// but it can evaluate, in four shuffles, whether `(prev, c)` lies in a
/// **box** `PL×PH × CL×CH` of low/high-nibble sets. A union of such
/// boxes covering every danger pair gives a one-sided test:
///
/// - **unflagged ⇒ provably not danger** — the byte is consumable from
///   any shallow-region state, exactly as the scalar walk would have
///   consumed it;
/// - **flagged ⇒ maybe danger** — one exact bitmap probe settles it, a
///   false flag costs that probe and nothing else (no lane exit).
///
/// 32 boxes are packed 8 per plane into [`CoverPlane`]s so one plane
/// costs four `pshufb` + three `and`s; four planes classify 16/32 bytes
/// per probe. The cover is chosen by a greedy merge + reassignment pass
/// minimizing covered *volume* (= false-flag rate under a uniform byte
/// model); [`PairCover::coverage`] reports that volume so callers can
/// refuse covers too dense to profit from (dense rule sets make danger
/// itself dense — no cover can be tighter than the relation it covers).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairCover {
    planes: [CoverPlane; 4],
}

/// Eight boxes of a [`PairCover`]: entry bits of the four tables mark,
/// per nibble value, which of the plane's boxes admit it. A pair
/// `(p, c)` is flagged by the plane iff
/// `plo[p&15] & phi[p>>4] & clo[c&15] & chi[c>>4] != 0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CoverPlane {
    plo: [u8; 16],
    phi: [u8; 16],
    clo: [u8; 16],
    chi: [u8; 16],
}

/// One axis-aligned nibble box during cover construction: the pairs
/// `(p, c)` with `p`'s nibbles in `(pl, ph)` and `c`'s in `(cl, ch)`.
#[derive(Clone, Copy, Default)]
struct NibbleBox {
    pl: u16,
    ph: u16,
    cl: u16,
    ch: u16,
}

impl NibbleBox {
    fn union(self, o: NibbleBox) -> NibbleBox {
        NibbleBox {
            pl: self.pl | o.pl,
            ph: self.ph | o.ph,
            cl: self.cl | o.cl,
            ch: self.ch | o.ch,
        }
    }

    /// Number of pairs inside the box — the uniform-model cost of
    /// flagging everything it admits.
    fn volume(self) -> f64 {
        (self.pl.count_ones() * self.ph.count_ones()) as f64
            * (self.cl.count_ones() * self.ch.count_ones()) as f64
    }
}

impl PairCover {
    /// Number of boxes in a cover (8 per shuffle plane).
    pub const BOXES: usize = 32;

    /// Builds a 32-box cover of `{(p, c) : pred(p, c)}`.
    ///
    /// Seeds one box per `(p_hi, c_hi)` high-nibble cell that contains a
    /// relation member (its low-nibble sides are the cell's exact
    /// projections — within one cell the box is the tightest rectangle),
    /// then greedily merges the pair of boxes whose union grows total
    /// volume least until 32 remain, and finishes with a reassignment
    /// sweep moving each seed cell to the box it inflates least. Every
    /// step only unions boxes, so the cover invariant — every `pred`
    /// pair lies in some box — holds by construction; `tests/simd.rs`
    /// re-checks it exhaustively against the live danger bitmap.
    pub fn build(pred: impl Fn(u8, u8) -> bool) -> PairCover {
        let mut cells: Vec<NibbleBox> = Vec::new();
        for phn in 0..16u16 {
            for chn in 0..16u16 {
                let (mut pl, mut cl) = (0u16, 0u16);
                for pln in 0..16u16 {
                    for cln in 0..16u16 {
                        if pred((phn << 4 | pln) as u8, (chn << 4 | cln) as u8) {
                            pl |= 1 << pln;
                            cl |= 1 << cln;
                        }
                    }
                }
                if pl != 0 {
                    cells.push(NibbleBox {
                        pl,
                        ph: 1 << phn,
                        cl,
                        ch: 1 << chn,
                    });
                }
            }
        }
        let assign = Self::cluster(&cells);
        let mut boxes = [NibbleBox::default(); Self::BOXES];
        for (k, &g) in assign.iter().enumerate() {
            boxes[g] = boxes[g].union(cells[k]);
        }
        let mut planes = [CoverPlane::default(); 4];
        for (k, b) in boxes.iter().enumerate() {
            let (plane, bit) = (k / 8, 1u8 << (k % 8));
            let t = &mut planes[plane];
            for n in 0..16usize {
                if b.pl >> n & 1 != 0 {
                    t.plo[n] |= bit;
                }
                if b.ph >> n & 1 != 0 {
                    t.phi[n] |= bit;
                }
                if b.cl >> n & 1 != 0 {
                    t.clo[n] |= bit;
                }
                if b.ch >> n & 1 != 0 {
                    t.chi[n] |= bit;
                }
            }
        }
        PairCover { planes }
    }

    /// Clusters seed cells into at most [`PairCover::BOXES`] groups
    /// minimizing total box volume: greedy least-growth pair merges,
    /// then local reassignment until stable.
    fn cluster(cells: &[NibbleBox]) -> Vec<usize> {
        if cells.len() <= Self::BOXES {
            return (0..cells.len()).collect();
        }
        let mut groups: Vec<(NibbleBox, Vec<usize>)> =
            cells.iter().enumerate().map(|(k, &b)| (b, vec![k])).collect();
        while groups.len() > Self::BOXES {
            let mut best = (f64::MAX, 0, 1);
            for i in 0..groups.len() {
                for j in i + 1..groups.len() {
                    let grown = groups[i].0.union(groups[j].0).volume()
                        - groups[i].0.volume()
                        - groups[j].0.volume();
                    if grown < best.0 {
                        best = (grown, i, j);
                    }
                }
            }
            let (_, i, j) = best;
            let merged = groups[i].0.union(groups[j].0);
            let mut members = std::mem::take(&mut groups[i].1);
            members.extend_from_slice(&groups[j].1);
            groups.swap_remove(j);
            groups[i] = (merged, members);
        }
        let mut assign = vec![0usize; cells.len()];
        for (g, (_, members)) in groups.iter().enumerate() {
            for &k in members {
                assign[k] = g;
            }
        }
        let rebuild = |assign: &[usize]| {
            let mut boxes = [NibbleBox::default(); Self::BOXES];
            for (k, &g) in assign.iter().enumerate() {
                boxes[g] = boxes[g].union(cells[k]);
            }
            boxes
        };
        for _ in 0..12 {
            let mut moved = false;
            let mut boxes = rebuild(&assign);
            for k in 0..cells.len() {
                // This cell's home box without it (peers only).
                let mut home = NibbleBox::default();
                for (k2, &g2) in assign.iter().enumerate() {
                    if k2 != k && g2 == assign[k] {
                        home = home.union(cells[k2]);
                    }
                }
                let mut best = (f64::MAX, assign[k]);
                for (g, b) in boxes.iter().enumerate() {
                    let base = if g == assign[k] { home } else { *b };
                    let grown = base.union(cells[k]).volume() - base.volume();
                    if grown < best.0 {
                        best = (grown, g);
                    }
                }
                if best.1 != assign[k] {
                    assign[k] = best.1;
                    moved = true;
                    boxes = rebuild(&assign);
                }
            }
            if !moved {
                break;
            }
        }
        assign
    }

    /// The safe scalar model of the cover — exactly the per-byte
    /// computation the vector probe performs. `true` means "maybe in
    /// the relation" (take the exact bitmap probe); `false` proves the
    /// pair is outside every box and hence outside the relation.
    #[inline(always)]
    pub fn model_flags(&self, p: u8, c: u8) -> bool {
        let (pl, ph) = ((p & 15) as usize, (p >> 4) as usize);
        let (cl, ch) = ((c & 15) as usize, (c >> 4) as usize);
        self.planes.iter().any(|t| {
            t.plo[pl] & t.phi[ph] & t.clo[cl] & t.chi[ch] != 0
        })
    }

    /// Fraction of the 65536-pair key space the cover flags — the
    /// expected false-flag rate under a uniform byte model. Callers
    /// gate on this at build time: past roughly one key in six the
    /// probe's exact-confirmation traffic outweighs the wholesale
    /// consumption it buys (dense rule sets *are* this dense; the
    /// scalar walk is already the right engine for them).
    pub fn coverage(&self) -> f64 {
        let mut covered = 0usize;
        for p in 0..256usize {
            for c in 0..256usize {
                if self.model_flags(p as u8, c as u8) {
                    covered += 1;
                }
            }
        }
        covered as f64 / 65536.0
    }
}

/// Runtime-detection witness for the SIMD kernels.
///
/// A value of this type exists only if [`SimdToken::detect`] observed
/// SSSE3 support (`pshufb`) on the running CPU — the invariant that
/// makes the vector methods safe to expose. `Copy` and zero-sized but
/// for the AVX2 flag; thread it by value into hot loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimdToken {
    avx2: bool,
}

impl SimdToken {
    /// Probes the CPU: `Some` iff SSSE3 is available (with 32-byte
    /// probes enabled when AVX2 is too), `None` otherwise — the caller
    /// falls back to the scalar lanes. Detection is cached by the
    /// standard library, so calling this per matcher construction is
    /// cheap.
    pub fn detect() -> Option<SimdToken> {
        #[cfg(target_arch = "x86_64")]
        {
            if is_x86_feature_detected!("ssse3") {
                return Some(SimdToken {
                    avx2: is_x86_feature_detected!("avx2"),
                });
            }
            None
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            None
        }
    }

    /// Whether 32-byte (AVX2) probes are available; 16-byte SSSE3
    /// probes always are on a constructed token.
    #[inline(always)]
    pub fn avx2(self) -> bool {
        self.avx2
    }

    /// Membership mask of 16 bytes in `set`: bit `j` set iff `w[j]` is
    /// a member. Safe: the token witnesses SSSE3.
    #[inline(always)]
    pub fn member_mask16(self, set: &ByteSetTables, w: &[u8; 16]) -> u32 {
        // SAFETY: constructing `self` required `ssse3` detection; the
        // load reads exactly the 16 borrowed bytes.
        unsafe { member_mask16_ssse3(set, w) }
    }

    /// Membership mask of 32 bytes in `set`: bit `j` set iff `w[j]` is
    /// a member. Uses one AVX2 probe when the token saw AVX2, two SSSE3
    /// probes otherwise — same result either way.
    #[inline(always)]
    pub fn member_mask32(self, set: &ByteSetTables, w: &[u8; 32]) -> u32 {
        if self.avx2 {
            // SAFETY: the token's `avx2` flag witnesses AVX2 detection;
            // the load reads exactly the 32 borrowed bytes.
            unsafe { member_mask32_avx2(set, w) }
        } else {
            let lo: &[u8; 16] = w[..16].try_into().expect("16-byte half");
            let hi: &[u8; 16] = w[16..].try_into().expect("16-byte half");
            self.member_mask16(set, lo) | (self.member_mask16(set, hi) << 16)
        }
    }

    /// Executes `f` inside a frame compiled with this token's detected
    /// feature set enabled.
    ///
    /// The point is inlining, not dispatch: a `#[target_feature]` kernel
    /// cannot inline into a caller built without the feature, so a hot
    /// loop that calls [`SimdToken::danger_scan`] through the plain ABI
    /// re-loads the cover's sixteen shuffle-table vectors on every call
    /// — measured on the repro clean traffic (lane exits every ~40
    /// bytes), that reload tax alone cancels the probe's win over the
    /// scalar walk. Wrapping the whole lane call in this frame lets
    /// LLVM inline the kernels into the lane loop and keep the tables
    /// live across an entire lane entry.
    ///
    /// Safe for any `f`: the frame only *permits* vector instructions
    /// the token already witnessed the CPU executes.
    #[inline(always)]
    pub fn dispatch<R>(self, f: impl FnOnce() -> R) -> R {
        #[cfg(target_arch = "x86_64")]
        {
            if self.avx2 {
                // SAFETY: the token's `avx2` flag witnesses detection.
                unsafe { dispatch_avx2(f) }
            } else {
                // SAFETY: constructing the token required `ssse3`.
                unsafe { dispatch_ssse3(f) }
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        f()
    }

    /// Width in bytes of one [`SimdToken::danger_scan`] probe: 32 under
    /// AVX2, 16 under SSSE3.
    #[inline(always)]
    pub fn scan_width(self) -> usize {
        if self.avx2 {
            32
        } else {
            16
        }
    }

    /// The vector danger walk: probes `chunk` in
    /// [`SimdToken::scan_width`]-byte windows starting at `i`, each
    /// window classified against `cover` with the window's *own
    /// predecessor bytes* (`chunk[i-1..]`) on the prev axis. Stops at
    /// the first window with any flagged position and returns
    /// `(base, flags)` — bit `j` of `flags` marks `chunk[base + j]` as
    /// maybe-danger after `chunk[base + j - 1]`; every unflagged byte of
    /// `chunk[i..base + width]` below the first flag is proven
    /// non-danger. Returns `(i', 0)` when fewer than `width` bytes
    /// remain past `i'`.
    ///
    /// Requires `i ≥ 1` (each window reads its prev bytes from the
    /// buffer); the caller settles position 0 — whose predecessor is a
    /// suspended register, possibly `HIST_NONE`, outside the cover's
    /// key space — with the exact bitmap first.
    #[inline(always)]
    pub fn danger_scan(self, cover: &PairCover, chunk: &[u8], i: usize) -> (usize, u32) {
        debug_assert!(i >= 1, "vector walk probe needs an in-buffer prev byte");
        if self.avx2 {
            // SAFETY: the token's `avx2` flag witnesses AVX2 detection;
            // the scan loop upholds the kernel's bounds contract.
            unsafe { danger_scan_avx2(cover, chunk, i) }
        } else {
            // SAFETY: constructing `self` required `ssse3` detection.
            unsafe { danger_scan_ssse3(cover, chunk, i) }
        }
    }

    /// Issues a best-effort L1 prefetch of the cache line holding `r` —
    /// the chained pair-row walk calls this on the *next* pair's word
    /// the moment the current word (and with it the next row index)
    /// arrives, overlapping the table-load latency the safe-Rust touch
    /// prefetch could only pay for. A hint only: no memory is read or
    /// written, so any reference is a valid argument.
    #[inline(always)]
    pub fn prefetch<T>(self, r: &T) {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `_mm_prefetch` is a hint instruction available on
        // every x86_64 CPU (SSE is baseline); it performs no access.
        unsafe {
            _mm_prefetch::<_MM_HINT_T0>(r as *const T as *const i8);
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = r;
    }
}

/// One two-plane shuffle classification of 16 bytes.
///
/// # Safety
///
/// Requires SSSE3 (`pshufb`).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "ssse3")]
unsafe fn member_mask16_ssse3(set: &ByteSetTables, w: &[u8; 16]) -> u32 {
    // SAFETY (caller-upheld): ssse3 enabled; loads read the borrowed
    // 16-byte arrays, unaligned loads carry no alignment requirement.
    unsafe {
        let v = _mm_loadu_si128(w.as_ptr() as *const __m128i);
        let lo1 = _mm_loadu_si128(set.lo1.as_ptr() as *const __m128i);
        let hi1 = _mm_loadu_si128(set.hi1.as_ptr() as *const __m128i);
        let lo2 = _mm_loadu_si128(set.lo2.as_ptr() as *const __m128i);
        let hi2 = _mm_loadu_si128(set.hi2.as_ptr() as *const __m128i);
        let nib = _mm_set1_epi8(0x0f);
        let lo = _mm_and_si128(v, nib);
        let hi = _mm_and_si128(_mm_srli_epi16(v, 4), nib);
        let m = _mm_or_si128(
            _mm_and_si128(_mm_shuffle_epi8(lo1, lo), _mm_shuffle_epi8(hi1, hi)),
            _mm_and_si128(_mm_shuffle_epi8(lo2, lo), _mm_shuffle_epi8(hi2, hi)),
        );
        // Nonzero lanes are members: compare against zero and invert.
        let zero = _mm_cmpeq_epi8(m, _mm_setzero_si128());
        (!_mm_movemask_epi8(zero) as u32) & 0xFFFF
    }
}

/// One two-plane shuffle classification of 32 bytes.
///
/// # Safety
///
/// Requires AVX2 (`vpshufb` operates per 128-bit half, which the
/// half-local nibble tables are built for — both halves get the same
/// broadcast tables).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn member_mask32_avx2(set: &ByteSetTables, w: &[u8; 32]) -> u32 {
    // SAFETY (caller-upheld): avx2 enabled; loads read the borrowed
    // arrays; `_mm256_broadcastsi128_si256` duplicates each 16-byte
    // table into both halves so the per-half `vpshufb` indexes match
    // the SSE kernel exactly.
    unsafe {
        let v = _mm256_loadu_si256(w.as_ptr() as *const __m256i);
        let b128 = |t: &[u8; 16]| {
            _mm256_broadcastsi128_si256(_mm_loadu_si128(t.as_ptr() as *const __m128i))
        };
        let lo1 = b128(&set.lo1);
        let hi1 = b128(&set.hi1);
        let lo2 = b128(&set.lo2);
        let hi2 = b128(&set.hi2);
        let nib = _mm256_set1_epi8(0x0f);
        let lo = _mm256_and_si256(v, nib);
        let hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), nib);
        let m = _mm256_or_si256(
            _mm256_and_si256(_mm256_shuffle_epi8(lo1, lo), _mm256_shuffle_epi8(hi1, hi)),
            _mm256_and_si256(_mm256_shuffle_epi8(lo2, lo), _mm256_shuffle_epi8(hi2, hi)),
        );
        let zero = _mm256_cmpeq_epi8(m, _mm256_setzero_si256());
        !(_mm256_movemask_epi8(zero) as u32)
    }
}

/// AVX2 inlining frame for [`SimdToken::dispatch`].
///
/// # Safety
///
/// Requires AVX2 (the frame itself executes no vector instruction, but
/// kernels inlined into it may be compiled to any AVX2 sequence).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[inline]
unsafe fn dispatch_avx2<R>(f: impl FnOnce() -> R) -> R {
    f()
}

/// SSSE3 inlining frame for [`SimdToken::dispatch`].
///
/// # Safety
///
/// Requires SSSE3.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "ssse3")]
#[inline]
unsafe fn dispatch_ssse3<R>(f: impl FnOnce() -> R) -> R {
    f()
}

/// SSSE3 [`SimdToken::danger_scan`] loop: the sixteen plane tables stay
/// in registers across probes, so the per-window cost is two loads,
/// sixteen shuffles and the bitwise folds.
///
/// # Safety
///
/// Requires SSSE3 and `i ≥ 1`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "ssse3")]
unsafe fn danger_scan_ssse3(cover: &PairCover, chunk: &[u8], mut i: usize) -> (usize, u32) {
    // SAFETY (caller-upheld): ssse3 enabled; each iteration reads 16
    // bytes from `i - 1` and from `i` with `i ≥ 1` and
    // `i + 16 ≤ chunk.len()`, so both loads stay inside the slice.
    unsafe {
        let ld = |t: &[u8; 16]| _mm_loadu_si128(t.as_ptr() as *const __m128i);
        let mut tabs = [[_mm_setzero_si128(); 4]; 4];
        for (k, plane) in cover.planes.iter().enumerate() {
            tabs[k] = [ld(&plane.plo), ld(&plane.phi), ld(&plane.clo), ld(&plane.chi)];
        }
        let nib = _mm_set1_epi8(0x0f);
        while i + 16 <= chunk.len() {
            let pv = _mm_loadu_si128(chunk.as_ptr().add(i - 1) as *const __m128i);
            let cv = _mm_loadu_si128(chunk.as_ptr().add(i) as *const __m128i);
            let pl = _mm_and_si128(pv, nib);
            let ph = _mm_and_si128(_mm_srli_epi16(pv, 4), nib);
            let cl = _mm_and_si128(cv, nib);
            let ch = _mm_and_si128(_mm_srli_epi16(cv, 4), nib);
            let mut acc = _mm_setzero_si128();
            for t in &tabs {
                let p = _mm_and_si128(_mm_shuffle_epi8(t[0], pl), _mm_shuffle_epi8(t[1], ph));
                let c = _mm_and_si128(_mm_shuffle_epi8(t[2], cl), _mm_shuffle_epi8(t[3], ch));
                acc = _mm_or_si128(acc, _mm_and_si128(p, c));
            }
            let zero = _mm_cmpeq_epi8(acc, _mm_setzero_si128());
            let f = (!_mm_movemask_epi8(zero) as u32) & 0xFFFF;
            if f != 0 {
                return (i, f);
            }
            i += 16;
        }
        (i, 0)
    }
}

/// AVX2 [`SimdToken::danger_scan`] loop — 32 bytes per probe, tables
/// broadcast into both halves once per call.
///
/// # Safety
///
/// Requires AVX2 and `i ≥ 1`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn danger_scan_avx2(cover: &PairCover, chunk: &[u8], mut i: usize) -> (usize, u32) {
    // SAFETY (caller-upheld): avx2 enabled; each iteration reads 32
    // bytes from `i - 1` and from `i` with `i ≥ 1` and
    // `i + 32 ≤ chunk.len()`, so both loads stay inside the slice.
    unsafe {
        let ld = |t: &[u8; 16]| {
            _mm256_broadcastsi128_si256(_mm_loadu_si128(t.as_ptr() as *const __m128i))
        };
        let mut tabs = [[_mm256_setzero_si256(); 4]; 4];
        for (k, plane) in cover.planes.iter().enumerate() {
            tabs[k] = [ld(&plane.plo), ld(&plane.phi), ld(&plane.clo), ld(&plane.chi)];
        }
        let nib = _mm256_set1_epi8(0x0f);
        while i + 32 <= chunk.len() {
            let pv = _mm256_loadu_si256(chunk.as_ptr().add(i - 1) as *const __m256i);
            let cv = _mm256_loadu_si256(chunk.as_ptr().add(i) as *const __m256i);
            let pl = _mm256_and_si256(pv, nib);
            let ph = _mm256_and_si256(_mm256_srli_epi16(pv, 4), nib);
            let cl = _mm256_and_si256(cv, nib);
            let ch = _mm256_and_si256(_mm256_srli_epi16(cv, 4), nib);
            let mut acc = _mm256_setzero_si256();
            for t in &tabs {
                let p =
                    _mm256_and_si256(_mm256_shuffle_epi8(t[0], pl), _mm256_shuffle_epi8(t[1], ph));
                let c =
                    _mm256_and_si256(_mm256_shuffle_epi8(t[2], cl), _mm256_shuffle_epi8(t[3], ch));
                acc = _mm256_or_si256(acc, _mm256_and_si256(p, c));
            }
            let zero = _mm256_cmpeq_epi8(acc, _mm256_setzero_si256());
            let f = !(_mm256_movemask_epi8(zero) as u32);
            if f != 0 {
                return (i, f);
            }
            i += 32;
        }
        (i, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exhaustive: the scalar model reproduces arbitrary byte sets.
    #[test]
    fn model_is_exact_for_arbitrary_sets() {
        let sets: [Box<dyn Fn(u8) -> bool>; 5] = [
            Box::new(|_| false),
            Box::new(|_| true),
            Box::new(|b| b.is_ascii_alphanumeric()),
            Box::new(|b| b % 3 == 0),
            Box::new(|b| (b as u32).wrapping_mul(2654435761) & 0x8000_0000 != 0),
        ];
        for contains in sets {
            let t = ByteSetTables::build(&contains);
            for b in 0..=255u8 {
                assert_eq!(t.model_contains(b), contains(b), "byte {b:#04x}");
            }
        }
    }

    /// Vector kernels agree with the scalar model on every lane, for
    /// windows sweeping all byte values through all positions.
    #[test]
    fn vector_masks_match_model() {
        let Some(tok) = SimdToken::detect() else {
            eprintln!("skipping: no SSSE3 on this host");
            return;
        };
        let t = ByteSetTables::build(|b| b % 5 == 0 || b > 0xE0);
        let mut w32 = [0u8; 32];
        for phase in 0..=255usize {
            for (j, slot) in w32.iter_mut().enumerate() {
                *slot = ((phase + 7 * j) % 256) as u8;
            }
            let m32 = tok.member_mask32(&t, &w32);
            let w16: &[u8; 16] = w32[..16].try_into().unwrap();
            let m16 = tok.member_mask16(&t, w16);
            for (j, &b) in w32.iter().enumerate() {
                assert_eq!((m32 >> j) & 1 != 0, t.model_contains(b), "lane {j}");
            }
            assert_eq!(m16, m32 & 0xFFFF);
        }
    }

    /// The cover invariant: every relation pair is flagged, for
    /// relations of varying density and shape.
    #[test]
    fn cover_flags_every_relation_pair() {
        let preds: [Box<dyn Fn(u8, u8) -> bool>; 4] = [
            Box::new(|_, _| false),
            Box::new(|p, c| p == c),
            Box::new(|p, c| p.is_ascii_lowercase() && (c == b'/' || c.is_ascii_digit())),
            Box::new(|p, c| (p as u32 * 31 + c as u32).wrapping_mul(2654435761).is_multiple_of(97)),
        ];
        for pred in preds {
            let cover = PairCover::build(&pred);
            for p in 0..=255u8 {
                for c in 0..=255u8 {
                    if pred(p, c) {
                        assert!(cover.model_flags(p, c), "hole at ({p:#04x}, {c:#04x})");
                    }
                }
            }
            assert!(cover.coverage() <= 1.0);
        }
    }

    /// An empty relation covers nothing; a sparse boxy relation is
    /// covered tightly.
    #[test]
    fn coverage_tracks_relation_density() {
        assert_eq!(PairCover::build(|_, _| false).coverage(), 0.0);
        // One exact box: lowercase prevs × digit bytes.
        let boxy = PairCover::build(|p, c| (0x61..=0x6F).contains(&p) && (0x30..=0x39).contains(&c));
        let cov = boxy.coverage();
        assert!(
            (cov - (15.0 * 10.0) / 65536.0).abs() < 1e-9,
            "one-box relation should cover exactly its volume, got {cov}"
        );
    }

    /// The vector scan agrees with the scalar model at every position
    /// of a pseudorandom buffer, for both probe widths a token offers.
    #[test]
    fn danger_scan_matches_model() {
        let Some(tok) = SimdToken::detect() else {
            eprintln!("skipping: no SSSE3 on this host");
            return;
        };
        let cover = PairCover::build(|p, c| (p ^ c) % 23 == 0);
        let mut buf = [0u8; 512];
        let mut x = 0x2545_F491u32;
        for b in buf.iter_mut() {
            x = x.wrapping_mul(747796405).wrapping_add(2891336453);
            *b = (x >> 17) as u8;
        }
        let width = tok.scan_width();
        let mut i = 1usize;
        while i + width <= buf.len() {
            let (base, flags) = tok.danger_scan(&cover, &buf, i);
            if flags == 0 {
                // Every probed window ([i, base)) was clear: verify and stop.
                for j in i..base {
                    assert!(!cover.model_flags(buf[j - 1], buf[j]), "missed flag at {j}");
                }
                break;
            }
            // Windows before `base` were clear; `base`'s mask is exact.
            for j in i..base {
                assert!(!cover.model_flags(buf[j - 1], buf[j]), "missed flag at {j}");
            }
            for bit in 0..width {
                let j = base + bit;
                assert_eq!(
                    flags >> bit & 1 != 0,
                    cover.model_flags(buf[j - 1], buf[j]),
                    "flag mismatch at {j}"
                );
            }
            i = base + width;
        }
    }

    /// Prefetch is a pure hint — callable on any reference.
    #[test]
    fn prefetch_is_inert() {
        if let Some(tok) = SimdToken::detect() {
            let data = [1u32, 2, 3];
            tok.prefetch(&data[2]);
        }
    }
}
