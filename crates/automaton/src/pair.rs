//! Pair-transition derivation: dense `state × byte-pair → state` rows for
//! a budgeted set of *hot* states, so a scanner can consume **two bytes
//! per step** where the automaton spends most of its time.
//!
//! The move-function DFA consumes one byte per lookup; a software scan
//! loop is therefore serialized on one dependent load per byte. Bouma2
//! (see PAPERS.md) builds its whole matching scheme on 2-byte atoms, and
//! the wide-consumption DFA literature (Hyperflex) shows multi-byte
//! stepping is where software DPI throughput comes from. The obstacle is
//! memory: a full pair-indexed transition table is `states × 2¹⁶`
//! entries — 256 KiB *per state* — which no automaton of interesting size
//! can afford wholesale.
//!
//! [`PairTable`] resolves the tension with a budget: scan traffic spends
//! the overwhelming majority of its bytes in a handful of states — the
//! start state, the shallow states under it, and a few high-in-degree
//! hub states (measured on the repro workloads: the top 32 states by
//! occupancy cover 87–95 % of scanned bytes). The builder ranks states
//! by DFA in-degree (the static proxy for occupancy: how many
//! `(state, byte)` transitions land on a state bounds how often a scan
//! can sit in it), always includes the start state, and materializes
//! dense pair rows for as many top states as the byte budget allows.
//!
//! Each row entry packs the *exact* outcome of two DFA steps
//! `mid = δ(s, b₁); fin = δ(mid, b₂)`:
//!
//! - bits 0..22 — `fin`, the state after both half-steps;
//! - bits 22..30 — `fin`'s **own hot-row index** (or
//!   [`PairTable::NO_HOT`]): the address of the next pair step rides in
//!   the word just loaded, so the stepping loop's serial dependency is
//!   one load per two bytes;
//! - bit 31 ([`PairTable::FIN_ACCEPT`]) — `fin` accepts: the scanner
//!   emits `fin`'s outputs at the pair's end offset;
//! - bit 30 ([`PairTable::MID_ACCEPT`]) — `mid` accepts: the *interior*
//!   half-step completes a pattern, so the scanner must replay the two
//!   bytes through its byte stepper to emit at the interior offset
//!   (rare: it fires only when a match ends inside the pair).
//!
//! Because the DFA transition function depends on the state alone (the
//! DTP runtime's history registers reproduce exactly δ — pinned by the
//! reduction equivalence proof and the differential suites), the pair
//! outcome is well-defined per state, and the history registers after a
//! consumed pair are simply the pair's own (case-folded) bytes — no
//! history enters the table at all. That is what keeps a pair-stepping
//! scanner byte-exact: registers and match ends are reconstructible from
//! the input, and suspend/resume at *odd* stream offsets needs no
//! alignment (pairs are taken from wherever the scan stands, not from
//! even payload offsets).
//!
//! Case folding is baked into both byte axes (like [`AnchorSet`]'s
//! tables), so the scan loop indexes rows with raw input bytes.
//!
//! The analysis lives here, beside [`AnchorSet`] and the shard planner,
//! because it is a property of the pattern set's DFA alone — independent
//! of the DTP configuration the automaton is reduced under. The compiled
//! engine (`dpi-core::compiled`) embeds a `PairTable` and runs the
//! stride-2 lane; per-shard tables are built under a per-core budget by
//! `ShardedMatcher`.
//!
//! [`AnchorSet`]: crate::AnchorSet

use crate::anchor::AnchorSet;
use crate::dfa::Dfa;
use crate::pattern::PatternSet;
use crate::trie::StateId;

/// Budgeted dense pair-transition rows over a DFA's hot states. Build
/// once with [`PairTable::build`]; the compiled engine embeds it via
/// `CompiledAutomaton::with_pair_table`.
///
/// # Examples
///
/// ```
/// use dpi_automaton::{Dfa, PairTable, PatternSet, StateId};
///
/// let set = PatternSet::new(["he", "she", "his", "hers"])?;
/// let dfa = Dfa::build(&set);
/// // Budget for four rows: the start state plus the next three states
/// // by in-degree get dense pair rows.
/// let pairs = PairTable::build(&dfa, &set, 4 * PairTable::ROW_BYTES);
/// assert_eq!(pairs.hot_states(), 4);
/// let start = pairs.hot_index(StateId::START.0);
/// assert_ne!(start, PairTable::NO_HOT);
/// // One load resolves both half-steps: "he" from the start state ends
/// // on an accepting state.
/// let w = pairs.word(start, b'h', b'e');
/// assert_ne!(w & PairTable::FIN_ACCEPT, 0);
/// # Ok::<(), dpi_automaton::PatternSetError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairTable {
    /// States in the source DFA (compatibility checks downstream).
    states: usize,
    /// Byte budget the hot set was sized under.
    budget_bytes: usize,
    /// State id → hot row index, or [`PairTable::NO_HOT`] (as a byte).
    hot_of: Vec<u8>,
    /// Hot row index → state id (selection order: in-degree descending).
    hot_ids: Vec<u32>,
    /// `hot_ids.len() × 65536` packed pair words, row-major; the pair
    /// `(b₁, b₂)` of hot row `h` lives at `h << 16 | b₁ << 8 | b₂`.
    rows: Vec<u32>,
    /// The **region pair row**: one bit per byte pair `(b₁, b₂)`, set
    /// when consuming `b₁` then `b₂` from *every* shallow-region state
    /// provably stays in (or returns to) the region with nothing to
    /// report. 2¹⁶ bits (8 KiB, L1-resident); empty unless built with
    /// [`PairTable::build_with_region`]. This is the pair rows of the
    /// whole region collapsed by universal quantification over its
    /// states: the scanner needs no state, no history and no serial
    /// dependency to consume two bytes on a set bit — and measured on
    /// the repro traffic the collapse costs only 2–5 points of
    /// coverage against the exact per-state test (93–98 % of positions
    /// are universally calm), while keying the exact test on the
    /// implied-state byte would cost 2 MiB and cache-miss on every
    /// high-entropy region of the payload.
    calm: Vec<u64>,
    /// The **follow row**: one bit per byte pair `(b₁, b₂)`, set when —
    /// *given* `b₁` is already known non-danger for the current
    /// predecessor — consuming `b₂` as well provably stays in the
    /// region with nothing to report. Unlike [`PairTable::is_calm`]
    /// this is **exact**, not universally quantified: a non-danger
    /// first byte pins the mid state to `depth1(b₁)` (the
    /// longest-suffix invariant), so the second half-step has a unique
    /// outcome. 2¹⁶ bits (8 KiB); built with the calm row.
    follow: Vec<u64>,
}

/// The two region-row bitmaps, built together.
struct RegionRows {
    calm: Vec<u64>,
    follow: Vec<u64>,
}

impl PairTable {
    /// Sentinel for "no pair row": returned by [`PairTable::hot_index`]
    /// and [`PairTable::fin_hot`] for states outside the hot set.
    pub const NO_HOT: u32 = 0xFF;

    /// Bit set in a pair word when the *final* state (after both
    /// half-steps) accepts: the scanner emits that state's outputs at
    /// the pair's end offset.
    pub const FIN_ACCEPT: u32 = 1 << 31;

    /// Bit set in a pair word when the *mid* state (after the first
    /// half-step) accepts: a match ends inside the pair, so the scanner
    /// replays the two bytes through its byte stepper for exact interior
    /// emission.
    pub const MID_ACCEPT: u32 = 1 << 30;

    /// Bit position of the final state's own hot-row index inside a
    /// pair word (8 bits, [`PairTable::NO_HOT`] when the final state is
    /// cold). Carrying the *next* row index inside the word keeps the
    /// pair-stepping loop's serial dependency at **one load per pair**:
    /// the scanner never touches the state → row map between steps.
    pub const HOT_SHIFT: u32 = 22;

    /// Mask extracting the final state id from a pair word. Pair tables
    /// therefore require automata below 2²² states (enforced by
    /// [`PairTable::build`]) — 4.1 M states, an order of magnitude
    /// beyond the largest ruleset in the paper's range.
    pub const TARGET_MASK: u32 = (1 << Self::HOT_SHIFT) - 1;

    /// Hard ceiling on hot rows: the in-word row index is 8 bits with
    /// [`PairTable::NO_HOT`] reserved.
    pub const MAX_ROWS: usize = 255;

    /// Bytes one dense pair row occupies: 2¹⁶ packed words.
    pub const ROW_BYTES: usize = 65536 * 4;

    /// Bytes the region pair rows occupy when built: the calm and
    /// follow bitmaps, 2¹⁶ bits each.
    pub const REGION_ROW_BYTES: usize = 2 * 65536 / 8;

    /// Minimum fraction of byte pairs that must be provably calm for
    /// the region rows to be built at all. Below it, the stride-2 walk
    /// tests fail too often to pay for themselves — measured on the
    /// repro workloads: the 300-rule set sits at ~98 % density and
    /// gains, the 6,275-rule master at ~69 % and regresses ~8 %, so
    /// the builder opts out and spends the budget on hot rows.
    pub const REGION_MIN_DENSITY: f64 = 0.80;

    /// Default budget: the region pair rows plus 16 hot rows
    /// (~4 MiB). Measured on the repro workloads, the top-16 excursion
    /// states by occupancy cover ~95 % of excursion bytes, and the
    /// whole-payload ratio plateaus between 16 and 32 rows as extra
    /// rows' cache pressure cancels their coverage. Only the touched
    /// cache lines of a row become resident, so the budget bounds
    /// *capacity*, not steady-state cache pressure.
    pub const DEFAULT_BUDGET: usize = Self::REGION_ROW_BYTES + 16 * Self::ROW_BYTES;

    /// Derives pair rows for the top states of `dfa` (built for `set`)
    /// by in-degree, spending at most `budget_bytes` on rows (capped at
    /// [`PairTable::MAX_ROWS`]). A budget below
    /// [`PairTable::ROW_BYTES`] yields a table with no hot states
    /// (valid, but a scanner gains nothing from it). The start state is
    /// always included when any row fits.
    ///
    /// # Panics
    ///
    /// Panics if `dfa` has 2²² or more states (the packed-word encoding
    /// spends the bits above on the chained row index and accept flags).
    pub fn build(dfa: &Dfa, set: &PatternSet, budget_bytes: usize) -> PairTable {
        // Rank states by in-degree over the full move function — the
        // static proxy for scan-time occupancy (a scan enters a state
        // once per transition landing on it).
        let mut indeg = vec![0u64; dfa.len()];
        for s in dfa.states() {
            for &t in dfa.row(s) {
                indeg[t as usize] += 1;
            }
        }
        Self::build_ranked(dfa, set, budget_bytes, &indeg)
    }

    /// [`PairTable::build`] with a caller-supplied per-state score in
    /// place of the in-degree proxy — the profile-guided path: rank
    /// hot states by **measured occupancy** over a representative
    /// traffic sample ([`PairTable::occupancy_profile`]). Static
    /// rankings cannot see which excursion states a traffic mix
    /// actually dwells in (measured on the repro workloads, the
    /// in-degree top-32 covers < 1 % of excursion bytes while the
    /// occupancy top-16 covers ~95 %); a short profile scan can.
    pub fn build_scored(
        dfa: &Dfa,
        set: &PatternSet,
        budget_bytes: usize,
        scores: &[u64],
    ) -> PairTable {
        Self::build_ranked(dfa, set, budget_bytes, scores)
    }

    /// Per-state occupancy of a simulated scan over `sample` — the
    /// score vector for [`PairTable::build_scored`]. When `anchors` is
    /// given, occupancy is counted only outside its shallow region:
    /// with the skip lane composed in, region-resident bytes never
    /// reach the pair rows, so spending budget on region states would
    /// be waste (the region pair rows cover them instead).
    pub fn occupancy_profile(
        dfa: &Dfa,
        set: &PatternSet,
        anchors: Option<&AnchorSet>,
        sample: &[u8],
    ) -> Vec<u64> {
        let mut occ = vec![0u64; dfa.len()];
        let mut s = StateId::START;
        for &raw in sample {
            s = dfa.step(s, set.fold(raw));
            if anchors.is_none_or(|a| !a.contains_state(s.0)) {
                occ[s.index()] += 1;
            }
        }
        occ
    }

    fn build_ranked(
        dfa: &Dfa,
        set: &PatternSet,
        budget_bytes: usize,
        scores: &[u64],
    ) -> PairTable {
        let n = dfa.len();
        assert_eq!(scores.len(), n, "one score per state required");
        assert!(
            (n as u64) < (1u64 << Self::HOT_SHIFT),
            "pair tables cap at 2^22 - 1 states"
        );
        let max_rows = (budget_bytes / Self::ROW_BYTES).min(n).min(Self::MAX_ROWS);

        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_by_key(|&s| {
            (
                std::cmp::Reverse(scores[s as usize]),
                dfa.depth(StateId(s)),
                s,
            )
        });
        let mut hot_ids: Vec<u32> = order.into_iter().take(max_rows).collect();
        if max_rows > 0
            && scores[StateId::START.index()] > 0
            && !hot_ids.contains(&StateId::START.0)
        {
            // In-degree makes this unreachable in practice (every state
            // steps to START on most bytes), but a scored start state
            // must never be cold — it is the pairs-only lane's entry
            // point. Excursion-restricted profiles score it zero, and
            // then the row is better spent on a state the lane cannot
            // cover.
            *hot_ids.last_mut().expect("max_rows > 0") = StateId::START.0;
        }
        let mut hot_of = vec![Self::NO_HOT as u8; n];
        for (h, &s) in hot_ids.iter().enumerate() {
            hot_of[s as usize] = h as u8;
        }

        // Materialize the rows: both half-steps resolved through the
        // case fold, accept flags read off the DFA outputs, and the
        // final state's own row index chained into the word.
        let mut rows = vec![0u32; hot_ids.len() * 65536];
        let fold: Vec<u8> = (0..=255u8).map(|b| set.fold(b)).collect();
        for (h, &s) in hot_ids.iter().enumerate() {
            let base = h << 16;
            for b1 in 0..256usize {
                let mid = dfa.step(StateId(s), fold[b1]);
                let mid_flag = if dfa.output(mid).is_empty() {
                    0
                } else {
                    Self::MID_ACCEPT
                };
                let row = &mut rows[base | (b1 << 8)..][..256];
                for (b2, slot) in row.iter_mut().enumerate() {
                    let fin = dfa.step(mid, fold[b2]);
                    let fin_flag = if dfa.output(fin).is_empty() {
                        0
                    } else {
                        Self::FIN_ACCEPT
                    };
                    let fin_hot = (hot_of[fin.index()] as u32) << Self::HOT_SHIFT;
                    *slot = fin.0 | fin_hot | fin_flag | mid_flag;
                }
            }
        }
        PairTable {
            states: n,
            budget_bytes,
            hot_of,
            hot_ids,
            rows,
            calm: Vec::new(),
            follow: Vec::new(),
        }
    }

    /// [`PairTable::build`] plus the collapsed **region pair row**:
    /// spends [`PairTable::REGION_ROW_BYTES`] of the budget first on
    /// the universal calm bitmap (see [`PairTable::is_calm`]), then
    /// fills the remainder with dense hot-state rows as
    /// [`PairTable::build`] does.
    ///
    /// The bitmap is quantified over the anchor analysis's *whole*
    /// shallow region, so it is valid for any horizon — but deeper
    /// horizons widen the region and can only clear bits (the
    /// horizon-vs-stride interaction: at horizon 2 every depth-2 state
    /// joins the quantifier, and pairs that are calm from depth ≤ 1
    /// stop being provably calm from depth 2). Horizon 1 is where the
    /// stride-2 walk earns its keep.
    ///
    /// `anchors` must be derived from the same `dfa`.
    ///
    /// # Panics
    ///
    /// Panics if `anchors` was derived from an automaton with a
    /// different state count, or if `dfa` exceeds the
    /// [`PairTable::build`] state cap.
    pub fn build_with_region(
        dfa: &Dfa,
        set: &PatternSet,
        anchors: &AnchorSet,
        budget_bytes: usize,
    ) -> PairTable {
        Self::build_with_region_impl(dfa, set, anchors, budget_bytes, None)
    }

    /// [`PairTable::build_with_region`] with profile-guided hot-state
    /// selection: hot rows are ranked by the occupancy of a simulated
    /// scan over `sample` (restricted to excursion states — see
    /// [`PairTable::occupancy_profile`]) instead of the static
    /// in-degree proxy. `sample` should be representative traffic, a
    /// few hundred KiB is plenty; it is scanned once at build time.
    pub fn build_profiled(
        dfa: &Dfa,
        set: &PatternSet,
        anchors: &AnchorSet,
        budget_bytes: usize,
        sample: &[u8],
    ) -> PairTable {
        let scores = Self::occupancy_profile(dfa, set, Some(anchors), sample);
        Self::build_with_region_impl(dfa, set, anchors, budget_bytes, Some(&scores))
    }

    fn build_with_region_impl(
        dfa: &Dfa,
        set: &PatternSet,
        anchors: &AnchorSet,
        budget_bytes: usize,
        scores: Option<&[u64]>,
    ) -> PairTable {
        assert_eq!(
            anchors.states(),
            dfa.len(),
            "anchor analysis belongs to a different automaton"
        );
        let build_hot = |budget: usize| match scores {
            Some(sc) => Self::build_scored(dfa, set, budget, sc),
            None => Self::build(dfa, set, budget),
        };
        if budget_bytes < Self::REGION_ROW_BYTES {
            return build_hot(budget_bytes);
        }
        let region_rows = Self::build_region_rows(dfa, set, anchors);
        let density = region_rows
            .calm
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum::<usize>() as f64
            / 65536.0;
        if density < Self::REGION_MIN_DENSITY {
            // Too few provably-calm pairs: the stride-2 walk would
            // test and fail too often to pay (measured: the 6,275-rule
            // master drops to ~69 % density and the walk regresses
            // ~8 %). Spend the whole budget on hot rows instead.
            return build_hot(budget_bytes);
        }
        let mut table = build_hot(budget_bytes - Self::REGION_ROW_BYTES);
        table.budget_bytes = budget_bytes;
        table.calm = region_rows.calm;
        table.follow = region_rows.follow;
        table
    }

    /// Builds the calm and follow bitmaps for the shallow region of
    /// `anchors`.
    fn build_region_rows(dfa: &Dfa, set: &PatternSet, anchors: &AnchorSet) -> RegionRows {
        // calm(b₁, b₂) ⇔ from every region state s: the half-step
        // states δ(s, b₁) and δ(δ(s, b₁), b₂) report nothing and the
        // pair lands back inside the region. The distinct mid states
        // per b₁ are few (the region's one-step successors), so the
        // build reduces to one 256-entry continuation row per mid.
        let fold: Vec<u8> = (0..=255u8).map(|b| set.fold(b)).collect();
        let region: Vec<StateId> = dfa
            .states()
            .filter(|&s| anchors.contains_state(s.0))
            .collect();
        let mut calm = vec![u64::MAX; 65536 / 64];
        let mut cont: Vec<Option<Box<[u64; 4]>>> = vec![None; dfa.len()];
        for c in 0..256usize {
            let mut mids: Vec<StateId> =
                region.iter().map(|&s| dfa.step(s, fold[c])).collect();
            mids.sort_unstable();
            mids.dedup();
            let row = &mut calm[c * 4..c * 4 + 4];
            for &mid in &mids {
                if !dfa.output(mid).is_empty() {
                    row.copy_from_slice(&[0; 4]);
                    break;
                }
                let cr = cont[mid.index()].get_or_insert_with(|| {
                    let mut bits = Box::new([0u64; 4]);
                    for d in 0..256usize {
                        let fin = dfa.step(mid, fold[d]);
                        if anchors.contains_state(fin.0) && dfa.output(fin).is_empty() {
                            bits[d >> 6] |= 1u64 << (d & 63);
                        }
                    }
                    bits
                });
                for (slot, &m) in row.iter_mut().zip(cr.iter()) {
                    *slot &= m;
                }
            }
        }
        // follow(b₁, b₂): second-half-step safety under a non-danger
        // first byte. A non-danger step from the region lands on a
        // region state whose path ends in fold(b₁) (the longest-suffix
        // invariant) — for horizons ≤ 1 that state is uniquely
        // depth1(b₁) (or START) and the test is exact; horizon 2 adds
        // the depth-2 states ending in b₁ to the quantifier, making
        // the bit conservative there.
        let mut follow = vec![u64::MAX; 65536 / 64];
        let safe = |mid: StateId, row: &mut [u64]| {
            for d in 0..256usize {
                let fin = dfa.step(mid, fold[d]);
                if !anchors.contains_state(fin.0) || !dfa.output(fin).is_empty() {
                    row[d >> 6] &= !(1u64 << (d & 63));
                }
            }
        };
        for (c, row) in follow.chunks_mut(4).enumerate() {
            let d1 = StateId(anchors.depth1_state(c as u8));
            safe(d1, row);
            if anchors.horizon() >= 2 {
                for &s in &region {
                    if dfa.depth(s) == 2 && dfa.last_byte(s) == Some(fold[c]) {
                        safe(s, row);
                    }
                }
            }
        }
        RegionRows { calm, follow }
    }

    /// States in the DFA the table was derived from.
    pub fn states(&self) -> usize {
        self.states
    }

    /// Number of states with a dense pair row.
    pub fn hot_states(&self) -> usize {
        self.hot_ids.len()
    }

    /// `true` when the table holds neither hot rows nor region rows —
    /// a scanner gains nothing from embedding it.
    pub fn is_empty(&self) -> bool {
        self.hot_ids.is_empty() && self.calm.is_empty()
    }

    /// The byte budget the hot set was sized under.
    pub fn budget_bytes(&self) -> usize {
        self.budget_bytes
    }

    /// State ids of the hot set, in selection order (in-degree
    /// descending) — exposed for diagnostics and budget sweeps.
    pub fn hot_state_ids(&self) -> &[u32] {
        &self.hot_ids
    }

    /// Resident bytes of the table (hot pair rows, region pair rows,
    /// and the state → hot-row index map).
    pub fn memory_bytes(&self) -> usize {
        self.rows.len() * 4
            + (self.calm.len() + self.follow.len()) * 8
            + self.hot_of.len()
            + self.hot_ids.len() * 4
    }

    /// `true` when the region pair rows are present (built via
    /// [`PairTable::build_with_region`] with enough budget).
    pub fn has_region_rows(&self) -> bool {
        !self.calm.is_empty()
    }

    /// The exact stride-2 continuation test: `true` when, **given**
    /// that raw byte `c` is non-danger for the walk's current
    /// predecessor (so the state after `c` is exactly the region state
    /// `depth1(c)` — the longest-suffix invariant), consuming raw byte
    /// `d` too provably keeps the automaton in the shallow region with
    /// nothing to report. The conditional makes the test exact rather
    /// than universally quantified, which is what keeps its branch
    /// ~97 % biased on any traffic mix.
    ///
    /// Callable only when [`PairTable::has_region_rows`] is `true`.
    #[inline(always)]
    pub fn is_follow_calm(&self, c: u8, d: u8) -> bool {
        let idx = (c as usize) << 8 | d as usize;
        (self.follow[idx >> 6] >> (idx & 63)) & 1 != 0
    }

    /// The stride-2 region test: `true` when consuming **raw** bytes
    /// `c` then `d` from *any* shallow-region state provably keeps the
    /// automaton inside the region with nothing to report — so a lane
    /// may consume both bytes with one L1 bit test, independent of its
    /// state and history. A clear bit implies nothing (the exact
    /// per-byte tests take over).
    ///
    /// Callable only when [`PairTable::has_region_rows`] is `true`.
    #[inline(always)]
    pub fn is_calm(&self, c: u8, d: u8) -> bool {
        let idx = (c as usize) << 8 | d as usize;
        (self.calm[idx >> 6] >> (idx & 63)) & 1 != 0
    }

    /// Hot row index of `state`, or [`PairTable::NO_HOT`]. Needed only
    /// to *enter* the pair lane — while pair-stepping, the next row
    /// index rides inside each word ([`PairTable::fin_hot`]).
    #[inline(always)]
    pub fn hot_index(&self, state: u32) -> u32 {
        self.hot_of[state as usize] as u32
    }

    /// `true` when `state` has a dense pair row.
    #[inline(always)]
    pub fn contains_state(&self, state: u32) -> bool {
        self.hot_of[state as usize] as u32 != Self::NO_HOT
    }

    /// The hot row index of a pair word's final state, or
    /// [`PairTable::NO_HOT`] — the chained address for the next pair
    /// step, read off the word the scanner just loaded.
    #[inline(always)]
    pub fn fin_hot(w: u32) -> u32 {
        (w >> Self::HOT_SHIFT) & 0xFF
    }

    /// The packed pair word of hot row `hot` for **raw** input bytes
    /// `(b1, b2)` (case fold baked in): bits 0..30 the state after both
    /// half-steps, plus the [`PairTable::FIN_ACCEPT`] /
    /// [`PairTable::MID_ACCEPT`] flags.
    ///
    /// # Panics
    ///
    /// Panics if `hot >= self.hot_states()`.
    #[inline(always)]
    pub fn word(&self, hot: u32, b1: u8, b2: u8) -> u32 {
        self.rows[(hot as usize) << 16 | (b1 as usize) << 8 | b2 as usize]
    }

    /// Issues a prefetch hint for the pair word of hot row `hot` at
    /// `(b1, b2)` — the chained walk calls this for the *next* pair the
    /// moment the current word delivers its [`PairTable::fin_hot`]
    /// index, overlapping the next table load with the accept checks.
    /// A `hot` of [`PairTable::NO_HOT`] is safely out of range (row
    /// indices cap at [`PairTable::MAX_ROWS`]) and hints nothing.
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    #[inline(always)]
    pub fn prefetch_word(
        &self,
        token: crate::simd::SimdToken,
        hot: u32,
        b1: u8,
        b2: u8,
    ) {
        let idx = (hot as usize) << 16 | (b1 as usize) << 8 | b2 as usize;
        if let Some(r) = self.rows.get(idx) {
            token.prefetch(r);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure1() -> (PatternSet, Dfa) {
        let set = PatternSet::new(["he", "she", "his", "hers"]).unwrap();
        let dfa = Dfa::build(&set);
        (set, dfa)
    }

    /// The defining contract, exhaustively: every pair word equals two
    /// DFA steps, with the accept flags reporting each half-step's
    /// outputs.
    fn assert_exact(set: &PatternSet, dfa: &Dfa, table: &PairTable) {
        for (h, &s) in table.hot_state_ids().iter().enumerate() {
            assert_eq!(table.hot_index(s), h as u32);
            assert!(table.contains_state(s));
            for b1 in 0..=255u8 {
                let mid = dfa.step(StateId(s), set.fold(b1));
                for b2 in 0..=255u8 {
                    let fin = dfa.step(mid, set.fold(b2));
                    let w = table.word(h as u32, b1, b2);
                    assert_eq!(w & PairTable::TARGET_MASK, fin.0, "target S{s} {b1:#04x} {b2:#04x}");
                    assert_eq!(
                        PairTable::fin_hot(w),
                        table.hot_index(fin.0),
                        "chained row index S{s} {b1:#04x} {b2:#04x}"
                    );
                    assert_eq!(
                        w & PairTable::MID_ACCEPT != 0,
                        !dfa.output(mid).is_empty(),
                        "mid flag S{s} {b1:#04x} {b2:#04x}"
                    );
                    assert_eq!(
                        w & PairTable::FIN_ACCEPT != 0,
                        !dfa.output(fin).is_empty(),
                        "fin flag S{s} {b1:#04x} {b2:#04x}"
                    );
                }
            }
        }
    }

    #[test]
    fn figure1_all_states_hot_is_exact() {
        let (set, dfa) = figure1();
        let table = PairTable::build(&dfa, &set, dfa.len() * PairTable::ROW_BYTES);
        assert_eq!(table.hot_states(), dfa.len());
        assert_eq!(table.states(), dfa.len());
        assert_exact(&set, &dfa, &table);
    }

    #[test]
    fn assorted_sets_exact_under_partial_budgets() {
        for patterns in [
            vec!["a".to_string()],
            vec!["aa".into(), "ab".into(), "ba".into()],
            vec!["GET /".into(), "POST /".into(), "Host:".into()],
            vec!["x".into(), "xy".into(), "xyz".into(), "yz".into()],
        ] {
            let set = PatternSet::new(&patterns).unwrap();
            let dfa = Dfa::build(&set);
            for rows in [1usize, 2, dfa.len()] {
                let table = PairTable::build(&dfa, &set, rows * PairTable::ROW_BYTES);
                assert_eq!(table.hot_states(), rows.min(dfa.len()));
                assert_exact(&set, &dfa, &table);
            }
        }
    }

    #[test]
    fn start_state_is_always_hot() {
        let (set, dfa) = figure1();
        for rows in 1..=3usize {
            let table = PairTable::build(&dfa, &set, rows * PairTable::ROW_BYTES);
            assert!(
                table.contains_state(StateId::START.0),
                "start missing at {rows} rows"
            );
        }
    }

    #[test]
    fn budget_below_one_row_yields_empty_table() {
        let (set, dfa) = figure1();
        let table = PairTable::build(&dfa, &set, PairTable::ROW_BYTES - 1);
        assert!(table.is_empty());
        assert_eq!(table.hot_states(), 0);
        for s in dfa.states() {
            assert!(!table.contains_state(s.0));
        }
    }

    #[test]
    fn selection_prefers_high_in_degree_shallow_states() {
        let (set, dfa) = figure1();
        let table = PairTable::build(&dfa, &set, 3 * PairTable::ROW_BYTES);
        // START has by far the highest in-degree (most bytes reset);
        // the depth-1 states 'h' and 's' are next (every state maps
        // their head bytes to them).
        let h = dfa.step(StateId::START, b'h');
        let s = dfa.step(StateId::START, b's');
        assert_eq!(table.hot_state_ids()[0], StateId::START.0);
        let rest: Vec<u32> = table.hot_state_ids()[1..].to_vec();
        assert!(rest.contains(&h.0) && rest.contains(&s.0), "{rest:?}");
    }

    #[test]
    fn nocase_fold_is_baked_into_both_axes() {
        let set = PatternSet::new_nocase(["He"]).unwrap();
        let dfa = Dfa::build(&set);
        let table = PairTable::build(&dfa, &set, dfa.len() * PairTable::ROW_BYTES);
        let start = table.hot_index(StateId::START.0);
        for (b1, b2) in [(b'h', b'e'), (b'H', b'E'), (b'h', b'E'), (b'H', b'e')] {
            let w = table.word(start, b1, b2);
            assert_ne!(w & PairTable::FIN_ACCEPT, 0, "{b1} {b2}");
        }
        assert_exact(&set, &dfa, &table);
    }

    #[test]
    fn mid_accept_marks_interior_matches() {
        let (set, dfa) = figure1();
        let table = PairTable::build(&dfa, &set, dfa.len() * PairTable::ROW_BYTES);
        // From "h": pair (e, x) — "he" completes on the first half-step.
        let h = dfa.step(StateId::START, b'h');
        let hot = table.hot_index(h.0);
        assert_ne!(hot, PairTable::NO_HOT);
        let w = table.word(hot, b'e', b'x');
        assert_ne!(w & PairTable::MID_ACCEPT, 0);
        assert_eq!(w & PairTable::FIN_ACCEPT, 0);
        // Pair (e, r): interior "he" plus a non-accepting final "her".
        let w = table.word(hot, b'e', b'r');
        assert_ne!(w & PairTable::MID_ACCEPT, 0);
        assert_eq!(w & PairTable::FIN_ACCEPT, 0);
    }

    #[test]
    fn memory_accounting_counts_rows_and_index() {
        let (set, dfa) = figure1();
        let table = PairTable::build(&dfa, &set, 2 * PairTable::ROW_BYTES);
        assert_eq!(
            table.memory_bytes(),
            2 * PairTable::ROW_BYTES + dfa.len() + 2 * 4
        );
        assert_eq!(table.budget_bytes(), 2 * PairTable::ROW_BYTES);
        assert!(!table.has_region_rows());
    }

    /// The region-row contracts, exhaustively against the DFA: a set
    /// calm bit must mean both half-steps from *every* region state
    /// stay in the region and report nothing; a set follow bit must
    /// mean the same for the second half-step from every region state
    /// whose path ends in the first byte (the states a non-danger
    /// first byte can land on).
    fn assert_region_rows_sound(set: &PatternSet, dfa: &Dfa, horizon: u8) {
        use crate::anchor::AnchorSet;
        let anchors = AnchorSet::build(dfa, set, horizon);
        let table =
            PairTable::build_with_region(dfa, set, &anchors, PairTable::REGION_ROW_BYTES);
        assert!(table.has_region_rows());
        assert_eq!(table.hot_states(), 0); // budget spent on region rows
        let region: Vec<StateId> = dfa
            .states()
            .filter(|&s| anchors.contains_state(s.0))
            .collect();
        for c in 0..=255u8 {
            for d in 0..=255u8 {
                if table.is_calm(c, d) {
                    for &s in &region {
                        let mid = dfa.step(s, set.fold(c));
                        let fin = dfa.step(mid, set.fold(d));
                        assert!(dfa.output(mid).is_empty(), "calm mid accepts: {c:#04x} {d:#04x} from {s}");
                        assert!(dfa.output(fin).is_empty(), "calm fin accepts: {c:#04x} {d:#04x} from {s}");
                        assert!(
                            anchors.contains_state(fin.0),
                            "calm fin left region: {c:#04x} {d:#04x} from {s} (h{horizon})"
                        );
                    }
                }
                if table.is_follow_calm(c, d) {
                    // Mid states a non-danger `c` can land on: region
                    // states whose path ends in fold(c), or START.
                    let mut mids: Vec<StateId> =
                        vec![StateId(anchors.depth1_state(c))];
                    if horizon >= 2 {
                        mids.extend(region.iter().copied().filter(|&s| {
                            dfa.depth(s) == 2 && dfa.last_byte(s) == Some(set.fold(c))
                        }));
                    }
                    for mid in mids {
                        let fin = dfa.step(mid, set.fold(d));
                        assert!(
                            anchors.contains_state(fin.0) && dfa.output(fin).is_empty(),
                            "follow unsound: {c:#04x} {d:#04x} via {mid} (h{horizon})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn region_rows_sound_under_every_horizon() {
        let (set, dfa) = figure1();
        for h in 0..=2u8 {
            assert_region_rows_sound(&set, &dfa, h);
        }
        let set = PatternSet::new_nocase(["He", "SHE", "his", "hers", "a"]).unwrap();
        let dfa = Dfa::build(&set);
        for h in 0..=2u8 {
            assert_region_rows_sound(&set, &dfa, h);
        }
    }

    #[test]
    fn region_rows_cover_skippable_pairs() {
        // Calm generalizes the skip bitmap: a pair of skippable bytes
        // is always calm (both reset to START with nothing to report).
        use crate::anchor::AnchorSet;
        let (set, dfa) = figure1();
        let anchors = AnchorSet::build(&dfa, &set, 1);
        let table =
            PairTable::build_with_region(&dfa, &set, &anchors, PairTable::DEFAULT_BUDGET);
        for c in 0..=255u8 {
            for d in 0..=255u8 {
                if anchors.is_skippable(c) && anchors.is_skippable(d) {
                    assert!(table.is_calm(c, d), "skippable pair {c:#04x} {d:#04x} not calm");
                }
            }
        }
    }

    #[test]
    fn profiled_build_ranks_by_sample_occupancy() {
        use crate::anchor::AnchorSet;
        // Patterns sharing the stem "ab": a sample dwelling on "ab…"
        // must rank the "ab" excursion state hot; a sample that never
        // leaves the region must not.
        let set = PatternSet::new(["abcx", "abdx", "q"]).unwrap();
        let dfa = Dfa::build(&set);
        let anchors = AnchorSet::build(&dfa, &set, 1);
        let budget = PairTable::REGION_ROW_BYTES + PairTable::ROW_BYTES;
        let ab = {
            let a = dfa.step(StateId::START, b'a');
            dfa.step(a, b'b')
        };
        assert_eq!(dfa.depth(ab), 2);
        let dwelling = PairTable::build_profiled(&dfa, &set, &anchors, budget, b"abababababab");
        assert!(dwelling.contains_state(ab.0), "dwelt-on state must be hot");
        // occupancy_profile counts only excursion states when anchors
        // are given.
        let occ = PairTable::occupancy_profile(&dfa, &set, Some(&anchors), b"zzzzzz");
        assert!(occ.iter().all(|&x| x == 0), "region-only sample has no excursions");
    }

    #[test]
    fn region_budget_spends_before_hot_rows() {
        use crate::anchor::AnchorSet;
        let (set, dfa) = figure1();
        let anchors = AnchorSet::build(&dfa, &set, 1);
        // Budget below the region rows: falls back to hot rows only.
        let tiny = PairTable::build_with_region(&dfa, &set, &anchors, 0);
        assert!(!tiny.has_region_rows());
        assert!(tiny.is_empty());
        // Region rows plus one hot row.
        let one = PairTable::build_with_region(
            &dfa,
            &set,
            &anchors,
            PairTable::REGION_ROW_BYTES + PairTable::ROW_BYTES,
        );
        assert!(one.has_region_rows());
        assert_eq!(one.hot_states(), 1);
        assert_eq!(
            one.budget_bytes(),
            PairTable::REGION_ROW_BYTES + PairTable::ROW_BYTES
        );
        assert!(one.memory_bytes() >= PairTable::REGION_ROW_BYTES + PairTable::ROW_BYTES);
    }
}
