//! Resumable per-flow scan state.
//!
//! Every software path in the workspace originally scanned a payload at
//! once, which disqualifies it from real DPI traffic: a pattern split
//! across two TCP segments is invisible to a payload-at-once matcher. The
//! hardware has no such problem — an engine's registers (current state +
//! the previous two input characters, Figure 5) simply persist between
//! packets of the same flow. [`ScanState`] is the software rendering of
//! exactly those registers, plus the absolute byte offset of the flow so
//! resumed chunks report stream-absolute match positions.
//!
//! Each matcher exposes the same pair of operations over it:
//!
//! - `ScanState::fresh()` — a flow that has consumed no bytes (the
//!   paper's *start signal*: both history registers masked);
//! - `scan_chunk_into(&mut state, chunk, out)` — consume one chunk,
//!   **appending** matches with stream-absolute `end` offsets, leaving
//!   the state ready for the next chunk.
//!
//! The defining property, pinned by `tests/streaming.rs`: for any
//! payload and any split of it into chunks, scanning the chunks in order
//! through one `ScanState` yields byte-for-byte the same matches as one
//! whole-payload scan. Note the history registers are what make this
//! non-trivial — the DTP scheme's depth-2/3 default transitions compare
//! against the previous one/two *stream* bytes, which at a chunk
//! boundary live in the previous chunk.

use crate::trie::StateId;

/// The resumable scan registers of one flow: a cheap plain value
/// (16 bytes) that any matcher in the workspace can suspend and resume.
///
/// The fields mirror the hardware engine's registers. `prev`/`prev2` are
/// `None` while the register has not yet observed a byte — the start
/// signal's masking, which prevents depth-2/3 default transitions from
/// firing on stale history at flow start. By construction `prev2` is
/// only `Some` when `prev` is (a flow that has seen two bytes has seen
/// one).
///
/// States are matcher-specific: a `ScanState` advanced by one automaton
/// must not be resumed under a different automaton (state ids would be
/// meaningless). Fresh states are universal.
///
/// # Examples
///
/// ```
/// use dpi_automaton::ScanState;
/// let state = ScanState::fresh();
/// assert_eq!(state.offset, 0);
/// assert!(state.prev.is_none() && state.prev2.is_none());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanState {
    /// Current automaton state.
    pub state: StateId,
    /// Previous (case-folded) stream byte, or `None` before the first.
    pub prev: Option<u8>,
    /// Second-previous stream byte, or `None` before the second.
    pub prev2: Option<u8>,
    /// Bytes of the flow consumed so far; match `end` offsets are
    /// reported relative to the whole stream, i.e. past chunks included.
    pub offset: u64,
}

impl ScanState {
    /// A flow that has consumed no bytes: start state, both history
    /// registers masked, offset zero.
    pub fn fresh() -> ScanState {
        ScanState {
            state: StateId::START,
            prev: None,
            prev2: None,
            offset: 0,
        }
    }

    /// Returns the state to [`ScanState::fresh`] in place (flow-table
    /// slot reuse: evicting a flow must not leak its predecessor's
    /// automaton state or history into the new flow).
    pub fn reset(&mut self) {
        *self = ScanState::fresh();
    }

    /// A fresh state positioned at stream offset `offset`: start state,
    /// both history registers masked, as if the flow began there.
    ///
    /// This is the resume primitive for lossy stream events (a TCP
    /// reassembler skipping an unfillable hole): history is masked
    /// exactly like a flow start — so no default transition can fire on
    /// bytes from before the gap — while later matches still report
    /// stream-absolute `end` offsets. The loss is boundary-local by the
    /// same argument as flow-table eviction: only occurrences
    /// *overlapping* the skipped bytes can be missed.
    pub fn fresh_at(offset: u64) -> ScanState {
        ScanState {
            offset,
            ..ScanState::fresh()
        }
    }

    /// Resets the state to [`ScanState::fresh_at`]`(offset)` in place.
    pub fn reset_at(&mut self, offset: u64) {
        *self = ScanState::fresh_at(offset);
    }

    /// Records the consumption of one case-folded byte: shifts the
    /// history registers and advances the offset. `state` is updated by
    /// the matcher separately (each engine steps its own automaton).
    #[inline(always)]
    pub fn push_byte(&mut self, byte: u8) {
        self.prev2 = self.prev;
        self.prev = Some(byte);
        self.offset += 1;
    }
}

impl Default for ScanState {
    fn default() -> Self {
        ScanState::fresh()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_state_is_masked() {
        let s = ScanState::fresh();
        assert_eq!(s.state, StateId::START);
        assert_eq!(s.prev, None);
        assert_eq!(s.prev2, None);
        assert_eq!(s.offset, 0);
        assert_eq!(s, ScanState::default());
    }

    #[test]
    fn push_byte_shifts_history_and_offset() {
        let mut s = ScanState::fresh();
        s.push_byte(b'a');
        assert_eq!((s.prev, s.prev2, s.offset), (Some(b'a'), None, 1));
        s.push_byte(b'b');
        assert_eq!((s.prev, s.prev2, s.offset), (Some(b'b'), Some(b'a'), 2));
        s.reset();
        assert_eq!(s, ScanState::fresh());
    }

    #[test]
    fn fresh_at_masks_history_but_keeps_offset() {
        let mut s = ScanState::fresh();
        s.push_byte(b'a');
        s.push_byte(b'b');
        s.reset_at(100);
        assert_eq!(s, ScanState::fresh_at(100));
        assert_eq!(s.state, StateId::START);
        assert_eq!((s.prev, s.prev2), (None, None));
        assert_eq!(s.offset, 100);
    }
}
