//! Full Aho-Corasick DFA using the **move function** (the representation the
//! paper's hardware is based on, §III.A).
//!
//! Every state stores the transition for *all* 256 byte values, so there are
//! no failure pointers and exactly one state lookup is performed per input
//! byte — the property that lets the hardware guarantee one character per
//! clock cycle. The price is memory: this is the "Original Aho-Corasick" row
//! of Table II, which the default-transition-pointer scheme in `dpi-core`
//! then compresses by over 96 %.

use crate::match_event::{Match, MultiMatcher};
use crate::nfa::Nfa;
use crate::pattern::{PatternId, PatternSet};
use crate::stream::ScanState;
use crate::trie::{StateId, Trie};

/// Dense move-function DFA.
///
/// # Examples
///
/// ```
/// use dpi_automaton::{Dfa, PatternSet, StateId};
/// let set = PatternSet::new(["he", "she", "his", "hers"])?;
/// let dfa = Dfa::build(&set);
/// assert_eq!(dfa.len(), 10);
/// // The move function never leaves the automaton stuck: every byte has a
/// // transition from every state.
/// let s = dfa.step(StateId::START, b'x');
/// assert_eq!(s, StateId::START);
/// # Ok::<(), dpi_automaton::PatternSetError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Dfa {
    /// Row-major `states × 256` next-state table.
    next: Vec<u32>,
    /// Depth of each state.
    depth: Vec<u16>,
    /// Byte on the tree edge into each state (undefined for the start state).
    last_byte: Vec<u8>,
    /// Last two path bytes for states of depth ≥ 2 (undefined otherwise).
    last_two: Vec<[u8; 2]>,
    /// Fail-closed output sets.
    output: Vec<Vec<PatternId>>,
    /// Failure pointers (retained for analysis; the DFA itself never
    /// follows them).
    fail: Vec<StateId>,
    /// Tree parent of each state (the start state is its own parent).
    parent: Vec<StateId>,
}

impl Dfa {
    /// Builds the full DFA for `set`.
    pub fn build(set: &PatternSet) -> Dfa {
        Self::from_nfa(&Nfa::build(set))
    }

    /// Builds the full DFA from an existing NFA.
    ///
    /// Uses the standard breadth-first subset-free construction:
    /// `next[s][c] = goto(s, c)` if the tree edge exists, otherwise
    /// `next[fail(s)][c]` (already computed because fail targets are
    /// strictly shallower and ids are BFS-ordered).
    pub fn from_nfa(nfa: &Nfa) -> Dfa {
        let trie = nfa.trie();
        let n = trie.len();
        let mut next = vec![0u32; n * 256];
        let mut depth = vec![0u16; n];
        let mut last_byte = vec![0u8; n];
        let mut last_two = vec![[0u8; 2]; n];
        let mut output = Vec::with_capacity(n);
        let mut fail = Vec::with_capacity(n);
        let mut parent = Vec::with_capacity(n);

        // Root row: tree edges where present, self-loop otherwise.
        for &(b, c) in trie.state(StateId::START).children() {
            next[b as usize] = c.0;
        }

        for i in 0..n {
            let id = StateId(i as u32);
            let st = trie.state(id);
            depth[i] = st.depth();
            last_byte[i] = st.in_byte().unwrap_or(0);
            last_two[i] = trie.last_two_bytes(id).unwrap_or([0, 0]);
            output.push(nfa.output(id).to_vec());
            fail.push(nfa.fail(id));
            parent.push(st.parent().unwrap_or(StateId::START));
            if i == 0 {
                continue;
            }
            let f = nfa.fail(id).index();
            debug_assert!(f < i, "fail target must precede in BFS order");
            let (done, row) = next.split_at_mut(i * 256);
            let frow = &done[f * 256..f * 256 + 256];
            row[..256].copy_from_slice(frow);
            for &(b, c) in st.children() {
                row[b as usize] = c.0;
            }
        }
        Dfa {
            next,
            depth,
            last_byte,
            last_two,
            output,
            fail,
            parent,
        }
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.depth.len()
    }

    /// `true` if only the start state exists.
    pub fn is_empty(&self) -> bool {
        self.depth.len() == 1
    }

    /// The move function: next state from `state` on `byte`. Exactly one
    /// lookup, never fails.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    #[inline]
    pub fn step(&self, state: StateId, byte: u8) -> StateId {
        StateId(self.next[state.index() * 256 + byte as usize])
    }

    /// The full 256-entry transition row of `state`.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    pub fn row(&self, state: StateId) -> &[u32] {
        &self.next[state.index() * 256..state.index() * 256 + 256]
    }

    /// Depth of `state`.
    #[inline]
    pub fn depth(&self, state: StateId) -> u16 {
        self.depth[state.index()]
    }

    /// Byte consumed to enter `state` (`None` for the start state).
    #[inline]
    pub fn last_byte(&self, state: StateId) -> Option<u8> {
        if state == StateId::START {
            None
        } else {
            Some(self.last_byte[state.index()])
        }
    }

    /// Last two path bytes of `state` (`None` below depth 2).
    #[inline]
    pub fn last_two_bytes(&self, state: StateId) -> Option<[u8; 2]> {
        if self.depth[state.index()] < 2 {
            None
        } else {
            Some(self.last_two[state.index()])
        }
    }

    /// Patterns recognized on entering `state`.
    #[inline]
    pub fn output(&self, state: StateId) -> &[PatternId] {
        &self.output[state.index()]
    }

    /// Failure pointer of `state` (analysis only; never followed at scan
    /// time).
    pub fn fail(&self, state: StateId) -> StateId {
        self.fail[state.index()]
    }

    /// Tree parent of `state` (the start state is its own parent).
    pub fn parent(&self, state: StateId) -> StateId {
        self.parent[state.index()]
    }

    /// Iterates over all state ids.
    pub fn states(&self) -> impl Iterator<Item = StateId> {
        (0..self.len() as u32).map(StateId)
    }

    /// Number of transitions out of `state` that do **not** lead to the
    /// start state — the quantity the paper reports as stored "transition
    /// pointers" for the original algorithm ("Even only storing the pointers
    /// which point to a state other than the start state can lead to large
    /// memory usage", §III.B).
    pub fn non_start_out_degree(&self, state: StateId) -> usize {
        self.row(state).iter().filter(|&&t| t != 0).count()
    }

    /// Builds both the trie-derived NFA and this DFA, returning the pair
    /// (used where both representations are compared).
    pub fn build_with_nfa(set: &PatternSet) -> (Nfa, Dfa) {
        let nfa = Nfa::build(set);
        let dfa = Dfa::from_nfa(&nfa);
        (nfa, dfa)
    }

    /// Re-derives the trie used to build this DFA's shape (depths, paths) —
    /// convenience for tools that only kept the DFA.
    pub fn rebuild_trie(set: &PatternSet) -> Trie {
        Trie::build(set)
    }
}

/// Scanner over a [`Dfa`].
#[derive(Debug, Clone)]
pub struct DfaMatcher<'a> {
    dfa: &'a Dfa,
    set: &'a PatternSet,
}

impl<'a> DfaMatcher<'a> {
    /// Creates a matcher borrowing the automaton and its pattern set.
    pub fn new(dfa: &'a Dfa, set: &'a PatternSet) -> Self {
        DfaMatcher { dfa, set }
    }

    /// The one copy of the scan loop; every entry point layers its
    /// bookkeeping on this via `on_state`.
    #[inline(always)]
    fn scan_core(&self, haystack: &[u8], mut on_state: impl FnMut(usize, StateId)) {
        let mut state = StateId::START;
        for (i, &raw) in haystack.iter().enumerate() {
            state = self.dfa.step(state, self.set.fold(raw));
            on_state(i, state);
        }
    }

    /// Resumable scan: consumes `chunk` from `state`, **appending** every
    /// occurrence to `out` with stream-absolute `end` offsets, and leaves
    /// `state` ready for the flow's next chunk. Scanning a payload split
    /// at arbitrary boundaries yields exactly the matches of one
    /// whole-payload scan (the full DFA carries all cross-chunk context
    /// in its state alone; history registers are maintained anyway so the
    /// same [`ScanState`] value drives every matcher uniformly).
    pub fn scan_chunk_into(&self, state: &mut ScanState, chunk: &[u8], out: &mut Vec<Match>) {
        let base = state.offset as usize;
        let mut s = state.state;
        for (i, &raw) in chunk.iter().enumerate() {
            let byte = self.set.fold(raw);
            s = self.dfa.step(s, byte);
            state.push_byte(byte);
            for &p in self.dfa.output(s) {
                out.push(Match {
                    end: base + i + 1,
                    pattern: p,
                });
            }
        }
        state.state = s;
    }

    /// Scans `haystack`, also returning the sequence of states visited
    /// (one per input byte). Differential tests use the state trace to check
    /// the DTP matcher is *state-equivalent*, not merely match-equivalent.
    pub fn scan_with_trace(&self, haystack: &[u8]) -> (Vec<Match>, Vec<StateId>) {
        let mut matches = Vec::new();
        let mut trace = Vec::with_capacity(haystack.len());
        self.scan_core(haystack, |i, state| {
            trace.push(state);
            for &p in self.dfa.output(state) {
                matches.push(Match {
                    end: i + 1,
                    pattern: p,
                });
            }
        });
        (matches, trace)
    }
}

impl MultiMatcher for DfaMatcher<'_> {
    fn find_all(&self, haystack: &[u8]) -> Vec<Match> {
        let mut out = Vec::new();
        self.find_all_into(haystack, &mut out);
        out
    }

    fn find_all_into(&self, haystack: &[u8], out: &mut Vec<Match>) {
        out.clear();
        self.scan_core(haystack, |i, state| {
            for &p in self.dfa.output(state) {
                out.push(Match {
                    end: i + 1,
                    pattern: p,
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nfa::NfaMatcher;

    fn figure1() -> (PatternSet, Dfa) {
        let set = PatternSet::new(["he", "she", "his", "hers"]).unwrap();
        let dfa = Dfa::build(&set);
        (set, dfa)
    }

    #[test]
    fn same_matches_as_nfa_on_ushers() {
        let set = PatternSet::new(["he", "she", "his", "hers"]).unwrap();
        let (nfa, dfa) = Dfa::build_with_nfa(&set);
        let d = DfaMatcher::new(&dfa, &set);
        let n = NfaMatcher::new(&nfa, &set);
        assert_eq!(d.find_all(b"ushers"), n.find_all(b"ushers"));
    }

    #[test]
    fn move_function_resolves_cross_transitions() {
        let (_, dfa) = figure1();
        // From "sh" (path s,h), byte 'i' must reach "hi" (suffix "hi" of
        // "shi" is a pattern prefix) — the transition the failure function
        // would need two steps for.
        let s = dfa.step(StateId::START, b's');
        let sh = dfa.step(s, b'h');
        assert_eq!(dfa.depth(sh), 2);
        let hi = dfa.step(sh, b'i');
        assert_eq!(dfa.depth(hi), 2);
        assert_eq!(dfa.last_two_bytes(hi), Some([b'h', b'i']));
    }

    #[test]
    fn figure1_non_start_pointer_census() {
        // Recomputed from the four strings (see DESIGN.md §2): 26 non-start
        // transitions across 10 states. 'h' and 's' contribute one from
        // every state (10 + 10), 'e'/'i'/'r' two each.
        let (_, dfa) = figure1();
        let total: usize = dfa
            .states()
            .map(|s| dfa.non_start_out_degree(s))
            .sum();
        assert_eq!(total, 26);
    }

    #[test]
    fn every_state_reaches_depth1_on_start_bytes() {
        let (_, dfa) = figure1();
        // From any state, 'h' and 's' always lead to a non-start state.
        for s in dfa.states() {
            assert_ne!(dfa.step(s, b'h'), StateId::START);
            assert_ne!(dfa.step(s, b's'), StateId::START);
        }
    }

    #[test]
    fn start_state_self_loops_on_unused_bytes() {
        let (_, dfa) = figure1();
        for b in [b'a', b'z', 0u8, 0xff] {
            assert_eq!(dfa.step(StateId::START, b), StateId::START);
        }
    }

    #[test]
    fn depth_metadata_matches_trie() {
        let set = PatternSet::new(["abcde", "abx", "q"]).unwrap();
        let trie = Trie::build(&set);
        let dfa = Dfa::build(&set);
        assert_eq!(trie.len(), dfa.len());
        for (id, st) in trie.iter() {
            assert_eq!(st.depth(), dfa.depth(id));
        }
    }

    #[test]
    fn trace_has_one_state_per_byte() {
        let (set, dfa) = figure1();
        let m = DfaMatcher::new(&dfa, &set);
        let (_, trace) = m.scan_with_trace(b"ushers");
        assert_eq!(trace.len(), 6);
    }

    #[test]
    fn output_suffix_closure_present() {
        let (set, dfa) = figure1();
        let m = DfaMatcher::new(&dfa, &set);
        let found = m.find_all(b"she");
        assert_eq!(found.len(), 2); // she + he
        let _ = &set;
    }

    #[test]
    fn nocase_dfa() {
        let set = PatternSet::new_nocase(["EvIl"]).unwrap();
        let dfa = Dfa::build(&set);
        let m = DfaMatcher::new(&dfa, &set);
        assert!(m.is_match(b"EVIL payload"));
        assert!(m.is_match(b"evil payload"));
    }

    #[test]
    fn longest_suffix_invariant_holds_on_random_walk() {
        // After consuming any input, the DFA state's path must equal the
        // input's suffix of that length — the invariant the DTP runtime
        // relies on (DESIGN.md §5).
        let set = PatternSet::new(["abab", "babb", "bbba", "aab"]).unwrap();
        let trie = Trie::build(&set);
        let dfa = Dfa::build(&set);
        let mut input = Vec::new();
        let mut state = StateId::START;
        // Deterministic pseudo-random byte sequence over a tiny alphabet.
        let mut x: u32 = 12345;
        for _ in 0..2000 {
            x = x.wrapping_mul(1103515245).wrapping_add(12345);
            let b = if (x >> 16) & 1 == 0 { b'a' } else { b'b' };
            input.push(b);
            state = dfa.step(state, b);
            let path = trie.path(state);
            assert!(input.ends_with(&path), "state path must be input suffix");
        }
    }
}
