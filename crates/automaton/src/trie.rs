//! Keyword trie (the *goto function* of Aho-Corasick).
//!
//! The trie is the common skeleton from which both the fail-pointer NFA and
//! the full move-function DFA are derived. States are renumbered into
//! breadth-first order after construction, so state ids are grouped by depth:
//! id 0 is the start state, ids `1..=k` are the depth-1 states, and so on.
//! Depth-ordered ids make the default-transition analysis in `dpi-core`
//! straightforward and keep debug output readable.

use crate::pattern::{PatternId, PatternSet};

/// Identifier of a state in a [`Trie`] (and in the automata derived from it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StateId(pub u32);

impl StateId {
    /// The start (root) state: the state in which no pattern characters have
    /// been matched.
    pub const START: StateId = StateId(0);

    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for StateId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// One trie state.
#[derive(Debug, Clone)]
pub struct TrieState {
    /// Outgoing tree edges, sorted by byte value.
    children: Vec<(u8, StateId)>,
    /// Number of tree edges from the start state to this state.
    depth: u16,
    /// The byte on the tree edge into this state (`None` for the start state).
    in_byte: Option<u8>,
    /// Parent state (`None` for the start state).
    parent: Option<StateId>,
    /// Patterns that end exactly at this state (before fail-closure).
    terminal: Vec<PatternId>,
}

impl TrieState {
    /// Outgoing tree edges, sorted by byte.
    pub fn children(&self) -> &[(u8, StateId)] {
        &self.children
    }

    /// Depth of the state (0 for the start state).
    pub fn depth(&self) -> u16 {
        self.depth
    }

    /// Byte labelling the tree edge into this state.
    pub fn in_byte(&self) -> Option<u8> {
        self.in_byte
    }

    /// Parent state id.
    pub fn parent(&self) -> Option<StateId> {
        self.parent
    }

    /// Patterns ending exactly here.
    pub fn terminal(&self) -> &[PatternId] {
        &self.terminal
    }

    /// Looks up the child reached on `byte`, if any.
    pub fn child(&self, byte: u8) -> Option<StateId> {
        self.children
            .binary_search_by_key(&byte, |&(b, _)| b)
            .ok()
            .map(|i| self.children[i].1)
    }
}

/// Keyword trie over a [`PatternSet`], states in breadth-first (depth) order.
///
/// # Examples
///
/// ```
/// use dpi_automaton::{PatternSet, Trie};
///
/// let set = PatternSet::new(["he", "she", "his", "hers"])?;
/// let trie = Trie::build(&set);
/// // Figure 1 of the paper: 10 states (start + 9).
/// assert_eq!(trie.len(), 10);
/// assert_eq!(trie.states_at_depth(1).count(), 2); // "h", "s"
/// # Ok::<(), dpi_automaton::PatternSetError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Trie {
    states: Vec<TrieState>,
    max_depth: u16,
}

impl Trie {
    /// Builds the trie for `set` and renumbers states breadth-first.
    pub fn build(set: &PatternSet) -> Trie {
        // Phase 1: insertion-ordered construction.
        let mut states = vec![TrieState {
            children: Vec::new(),
            depth: 0,
            in_byte: None,
            parent: None,
            terminal: Vec::new(),
        }];
        for (id, pattern) in set.iter() {
            let mut at = 0usize;
            for (i, &byte) in pattern.iter().enumerate() {
                let next = match states[at].child(byte) {
                    Some(s) => s.index(),
                    None => {
                        let new_id = StateId(states.len() as u32);
                        states.push(TrieState {
                            children: Vec::new(),
                            depth: (i + 1) as u16,
                            in_byte: Some(byte),
                            parent: Some(StateId(at as u32)),
                            terminal: Vec::new(),
                        });
                        let pos = states[at]
                            .children
                            .binary_search_by_key(&byte, |&(b, _)| b)
                            .unwrap_err();
                        states[at].children.insert(pos, (byte, new_id));
                        new_id.index()
                    }
                };
                at = next;
            }
            states[at].terminal.push(id);
        }

        // Phase 2: BFS renumbering so ids are grouped by depth.
        let mut order = Vec::with_capacity(states.len());
        let mut queue = std::collections::VecDeque::from([0usize]);
        while let Some(s) = queue.pop_front() {
            order.push(s);
            for &(_, c) in &states[s].children {
                queue.push_back(c.index());
            }
        }
        debug_assert_eq!(order.len(), states.len());
        let mut new_of_old = vec![0u32; states.len()];
        for (new, &old) in order.iter().enumerate() {
            new_of_old[old] = new as u32;
        }
        let mut renumbered: Vec<TrieState> = Vec::with_capacity(states.len());
        let mut max_depth = 0;
        for &old in &order {
            let s = &states[old];
            max_depth = max_depth.max(s.depth);
            renumbered.push(TrieState {
                children: s
                    .children
                    .iter()
                    .map(|&(b, c)| (b, StateId(new_of_old[c.index()])))
                    .collect(),
                depth: s.depth,
                in_byte: s.in_byte,
                parent: s.parent.map(|p| StateId(new_of_old[p.index()])),
                terminal: s.terminal.clone(),
            });
        }
        Trie {
            states: renumbered,
            max_depth,
        }
    }

    /// Number of states, including the start state.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// `true` if the trie has only the start state (never the case for a
    /// valid [`PatternSet`], which is non-empty).
    pub fn is_empty(&self) -> bool {
        self.states.len() == 1
    }

    /// Greatest state depth (= length of the longest pattern).
    pub fn max_depth(&self) -> u16 {
        self.max_depth
    }

    /// Access a state.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn state(&self, id: StateId) -> &TrieState {
        &self.states[id.index()]
    }

    /// Iterates over all states in BFS (depth-grouped) order.
    pub fn iter(&self) -> impl Iterator<Item = (StateId, &TrieState)> {
        self.states
            .iter()
            .enumerate()
            .map(|(i, s)| (StateId(i as u32), s))
    }

    /// Iterates over state ids at exactly `depth`.
    pub fn states_at_depth(&self, depth: u16) -> impl Iterator<Item = StateId> + '_ {
        self.iter()
            .filter(move |(_, s)| s.depth == depth)
            .map(|(id, _)| id)
    }

    /// The path (byte string) from the start state to `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn path(&self, id: StateId) -> Vec<u8> {
        let mut bytes = Vec::with_capacity(self.states[id.index()].depth as usize);
        let mut cur = id;
        while let Some(b) = self.states[cur.index()].in_byte {
            bytes.push(b);
            cur = self.states[cur.index()].parent.expect("non-root has parent");
        }
        bytes.reverse();
        bytes
    }

    /// Last byte of the path to `id` (the byte consumed to enter it), or
    /// `None` for the start state.
    pub fn last_byte(&self, id: StateId) -> Option<u8> {
        self.states[id.index()].in_byte
    }

    /// Last two bytes of the path to `id`, `None` if the state is shallower
    /// than depth 2. Used by the depth-3 default-transition comparisons.
    pub fn last_two_bytes(&self, id: StateId) -> Option<[u8; 2]> {
        let s = &self.states[id.index()];
        if s.depth < 2 {
            return None;
        }
        let b1 = s.in_byte.expect("depth >= 2 has in_byte");
        let p = s.parent.expect("depth >= 2 has parent");
        let b0 = self.states[p.index()].in_byte.expect("depth >= 1 parent");
        Some([b0, b1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure1() -> (PatternSet, Trie) {
        let set = PatternSet::new(["he", "she", "his", "hers"]).unwrap();
        let trie = Trie::build(&set);
        (set, trie)
    }

    #[test]
    fn figure1_has_ten_states() {
        let (_, trie) = figure1();
        assert_eq!(trie.len(), 10);
        assert!(!trie.is_empty());
        assert_eq!(trie.max_depth(), 4);
    }

    #[test]
    fn bfs_ids_are_depth_monotone() {
        let (_, trie) = figure1();
        let depths: Vec<u16> = trie.iter().map(|(_, s)| s.depth()).collect();
        for w in depths.windows(2) {
            assert!(w[0] <= w[1], "ids not grouped by depth: {depths:?}");
        }
    }

    #[test]
    fn depth_census_matches_figure1() {
        let (_, trie) = figure1();
        assert_eq!(trie.states_at_depth(0).count(), 1);
        assert_eq!(trie.states_at_depth(1).count(), 2); // h, s
        assert_eq!(trie.states_at_depth(2).count(), 3); // he, hi, sh
        assert_eq!(trie.states_at_depth(3).count(), 3); // her, his, she
        assert_eq!(trie.states_at_depth(4).count(), 1); // hers
    }

    #[test]
    fn paths_roundtrip() {
        let (set, trie) = figure1();
        // Walk each pattern down the trie; the final state's path must equal
        // the pattern, and the pattern must be terminal there.
        for (id, pattern) in set.iter() {
            let mut at = StateId::START;
            for &b in pattern {
                at = trie.state(at).child(b).expect("pattern walks the trie");
            }
            assert_eq!(trie.path(at), pattern);
            assert!(trie.state(at).terminal().contains(&id));
        }
    }

    #[test]
    fn shared_prefixes_share_states() {
        // "he" and "hers" share h-e; "his" shares h.
        let (_, trie) = figure1();
        let h = trie.state(StateId::START).child(b'h').unwrap();
        let he = trie.state(h).child(b'e').unwrap();
        let hi = trie.state(h).child(b'i').unwrap();
        assert_ne!(he, hi);
        assert_eq!(trie.state(h).depth(), 1);
        assert_eq!(trie.state(he).depth(), 2);
        // 4 patterns, 12 total bytes, but only 9 non-root states.
        assert_eq!(trie.len() - 1, 9);
    }

    #[test]
    fn last_bytes_helpers() {
        let (_, trie) = figure1();
        let h = trie.state(StateId::START).child(b'h').unwrap();
        let he = trie.state(h).child(b'e').unwrap();
        let her = trie.state(he).child(b'r').unwrap();
        assert_eq!(trie.last_byte(StateId::START), None);
        assert_eq!(trie.last_byte(h), Some(b'h'));
        assert_eq!(trie.last_two_bytes(h), None);
        assert_eq!(trie.last_two_bytes(he), Some([b'h', b'e']));
        assert_eq!(trie.last_two_bytes(her), Some([b'e', b'r']));
    }

    #[test]
    fn terminal_only_at_pattern_ends() {
        let (_, trie) = figure1();
        let terminals: usize = trie.iter().map(|(_, s)| s.terminal().len()).sum();
        assert_eq!(terminals, 4);
    }

    #[test]
    fn children_sorted_by_byte() {
        let set = PatternSet::new(["zz", "za", "zm", "zb"]).unwrap();
        let trie = Trie::build(&set);
        let z = trie.state(StateId::START).child(b'z').unwrap();
        let bytes: Vec<u8> = trie.state(z).children().iter().map(|&(b, _)| b).collect();
        assert_eq!(bytes, vec![b'a', b'b', b'm', b'z']);
    }

    #[test]
    fn single_byte_pattern() {
        let set = PatternSet::new(["a"]).unwrap();
        let trie = Trie::build(&set);
        assert_eq!(trie.len(), 2);
        let a = trie.state(StateId::START).child(b'a').unwrap();
        assert_eq!(trie.state(a).terminal(), &[PatternId(0)]);
    }

    #[test]
    fn prefix_pattern_is_terminal_mid_trie() {
        let set = PatternSet::new(["ab", "abcd"]).unwrap();
        let trie = Trie::build(&set);
        let a = trie.state(StateId::START).child(b'a').unwrap();
        let ab = trie.state(a).child(b'b').unwrap();
        assert_eq!(trie.state(ab).terminal(), &[PatternId(0)]);
        assert_eq!(trie.len(), 5);
    }

    #[test]
    fn binary_bytes_supported() {
        let set = PatternSet::new([&[0x00u8, 0xff, 0x90][..], &[0xff, 0xff][..]]).unwrap();
        let trie = Trie::build(&set);
        assert_eq!(trie.len(), 6);
        let s = trie.state(StateId::START).child(0x00).unwrap();
        assert_eq!(trie.last_byte(s), Some(0x00));
    }
}
