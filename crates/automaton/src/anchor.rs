//! Anchor-byte analysis: which bytes can pull the automaton out of its
//! start-state neighborhood — and, by complement, which bytes a scanner
//! may skip without stepping the automaton at all.
//!
//! Real DPI traffic is overwhelmingly *clean*: the scanner sits in the
//! start state's neighborhood for almost every input byte, yet a
//! move-function scanner still pays a full transition lookup per byte.
//! The hardware shrugs — it does one lookup per cycle no matter what —
//! but the software fast path can exploit the skew: derive, once at
//! build time, byte classifications that prove most steps boring, and
//! fast-forward through them.
//!
//! [`AnchorSet`] is that derivation, with a configurable **shallow-depth
//! horizon** `H` (0, 1 or 2; default 1):
//!
//! - the *shallow region* is the set of states of depth ≤ `H`;
//! - the **danger table** is the exact per-byte exit test: bit
//!   `(prev, c)` says whether consuming byte `c` right after byte `prev`
//!   may leave the region or enter an accepting state. A clear bit
//!   proves the step stays shallow with nothing to report — resolved
//!   without touching the automaton's arenas at all;
//! - a byte is **skippable** when it is non-danger under *every*
//!   predecessor and resets the automaton to the start state. Skippable
//!   runs of any length need no per-byte test — a SWAR loop classifies
//!   8 bytes per iteration and jumps to the next candidate anchor.
//!
//! The correctness backbone is the longest-suffix invariant (DESIGN.md
//! §5, pinned by `dfa::tests`): after any input, the DFA state's path is
//! exactly the longest input suffix that is a pattern prefix. Hence a
//! state of depth ≤ `H ≤ 2` is a *function of the last two input bytes*,
//! and those bytes are precisely the two history registers every scanner
//! already carries ([`ScanState::prev`]/[`ScanState::prev2`]) or —
//! mid-chunk — sit in the input buffer itself. That is what makes a skip
//! lane resumable: the DTP history registers are provably **dead** at
//! every skip point (nothing a skipped byte would have written into them
//! can ever be observed), and the exact `(state, prev, prev2)` registers
//! the plain scan would hold are reconstructible on demand from the
//! buffer tail — the state by replaying at most two bytes from the start
//! state under start-signal masking.
//!
//! Why the exit test can key on a byte *pair* even though depth-3 paths
//! have three bytes: from a region state (depth ≤ 2, path a suffix of
//! `(y, c)` where `y, c` are the previous two stream bytes), consuming
//! `d` lands on
//!
//! - the depth-3 state `(y, c, d)` — only if such a path exists, which
//!   implies `(c, d)` are the *last two* bytes of some depth-3 path:
//!   over-approximated by one pair bit (a false hit just wakes the
//!   exact stepper early — soundness is one-directional);
//! - the depth-2 state `(c, d)` — inside the region; an exit only if it
//!   accepts;
//! - the depth-1 state `(d)` or the start state — an exit only if it
//!   accepts (single-byte patterns).
//!
//! Depth ≥ 4 is impossible: a suffix of length 4 ending at `d` would
//! need the pre-`d` state at depth ≥ 3, contradicting region residency.
//! So one 257 × 256-bit table — indexed by the previous byte, with row
//! 256 for "no byte observed yet" (start-signal masking) — is an exact
//! *sound* exit test, and everything the lane consumes is provably
//! matchless and shallow.
//!
//! The analysis lives here, beside the shard planning, because it is a
//! property of the *pattern set's DFA* alone — independent of the DTP
//! configuration the automaton is later reduced and compiled under. The
//! compiled engine (`dpi-core::compiled`) embeds an `AnchorSet` and runs
//! the skip lane; per-shard automata get *smaller* anchor sets than the
//! master's (fewer patterns → fewer anchors), so sharded scanning skips
//! strictly more of the same traffic.
//!
//! [`ScanState::prev`]: crate::ScanState::prev
//! [`ScanState::prev2`]: crate::ScanState::prev2

use crate::dfa::Dfa;
use crate::pattern::PatternSet;
use crate::trie::StateId;

/// Number of 64-bit words in a 256-bit byte bitmap.
const BYTE_WORDS: usize = 4;

/// Rows in the danger table: one per possible previous-byte value
/// `0..=255`, plus row 256 for "no byte observed yet" (the same
/// encoding the compiled engine's `HIST_NONE` register uses).
const DANGER_ROWS: usize = 257;

/// The build-time anchor analysis of one pattern set's DFA: byte
/// classifications and state bitsets that let a scanner fast-forward
/// through clean traffic. Build once with [`AnchorSet::build`]; the
/// compiled engine embeds it via `CompiledAutomaton::compile_with_prefilter`.
///
/// # Examples
///
/// ```
/// use dpi_automaton::{AnchorSet, Dfa, PatternSet};
///
/// let set = PatternSet::new(["he", "she", "his", "hers"])?;
/// let dfa = Dfa::build(&set);
/// let anchors = AnchorSet::build(&dfa, &set, AnchorSet::DEFAULT_HORIZON);
/// // 'h' heads two patterns: a candidate anchor. 'z' appears nowhere:
/// // skippable.
/// assert!(!anchors.is_skippable(b'h'));
/// assert!(anchors.is_skippable(b'z'));
/// // "he" completes a pattern — its second byte is dangerous after 'h',
/// // but harmless after anything else.
/// assert!(anchors.is_danger(b'h' as u32, b'e'));
/// assert!(!anchors.is_danger(b'x' as u32, b'e'));
/// # Ok::<(), dpi_automaton::PatternSetError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnchorSet {
    /// Shallow-region depth bound (0, 1 or 2).
    horizon: u8,
    /// States in the source DFA (for compatibility checks downstream).
    states: usize,
    /// 256-bit bitmap over **raw** input bytes (case fold baked in):
    /// bit set ⇔ the byte is skippable from anywhere in the region.
    skip: [u64; BYTE_WORDS],
    /// 257 × 256-bit rows, both axes **raw** bytes (case fold baked in;
    /// row 256 = no history): bit `(prev, c)` set ⇔ consuming byte `c`
    /// with previous stream byte `prev` may leave the shallow region or
    /// enter an accepting state — the exact per-byte exit test of the
    /// lane. Folded register values index the same rows correctly
    /// because folding is idempotent.
    danger: Vec<u64>,
    /// Same shape as `danger`: the subset of danger bits that are
    /// **soft** — the step provably stays in the region and lands on
    /// `d1[c]`, it merely *accepts* (single-byte patterns). The lane
    /// emits those matches itself and keeps going; only hard bits wake
    /// the stepper.
    soft: Vec<u64>,
    /// Raw byte → id of the depth-1 state whose (folded) path is that
    /// byte, or `StateId::START` when no pattern starts with it.
    d1: [u32; 256],
    /// Bitset over state ids: depth ≤ `horizon` (lane residency test).
    shallow: Vec<u64>,
    /// Byte-indexed mirror of the skip bitmap (`0` = skippable, `1` =
    /// candidate): the SWAR window loop folds eight of these into its
    /// candidate mask with one indexed load each — half the µops of
    /// re-deriving the bit from the packed bitmap per byte.
    cand: [u8; 256],
    /// Conditional `(prev, c)` exit pairs installed in the danger table
    /// (pairs beyond the unconditional per-byte exits).
    pair_count: usize,
    /// Nibble-split shuffle tables of the candidate-anchor byte set
    /// (`{b : !is_skippable(b)}`) — the conformance surface
    /// `tests/simd.rs` pins the shuffle classifier against the skip
    /// bitmap on (the engine's vector lane walks the danger cover
    /// below instead). Cheap to derive (one 256-byte sweep), so it is
    /// built unconditionally.
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    simd_cand: crate::simd::ByteSetTables,
    /// Nibble-box cover of the *byte-keyed* danger rows (`prev ≤ 0xFF`;
    /// the `HIST_NONE` row stays scalar — the lane settles its entry
    /// byte exactly before the vector walk engages), or `None` when the
    /// cover is too dense to profit — see
    /// [`AnchorSet::SIMD_COVER_MAX_COVERAGE`].
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    simd_danger: Option<crate::simd::PairCover>,
}

impl AnchorSet {
    /// The default shallow-depth horizon: depth ≤ 1. Measured on the
    /// clean-traffic workloads, horizon 1 dominates: horizon 0 exits on
    /// every pattern-heading byte (a fifth of clean traffic), while
    /// horizon 2 *shrinks* the skippable set (at 6,275 rules to zero —
    /// nearly every byte value ends some depth-3 path) and its
    /// pair-keyed over-approximation of the triple boundary test fires
    /// more, not less, than horizon 1's exact pair test. The
    /// shallow-accept fast path ([`AnchorSet::is_soft`]) removes the
    /// exit class horizon 2 was meant to absorb.
    pub const DEFAULT_HORIZON: u8 = 1;

    /// Largest supported horizon. Depth-3 residency would need a 2²⁴-bit
    /// triple table for the exit test, and — decisively — the region
    /// state would stop being a function of the two history bytes a
    /// [`ScanState`](crate::ScanState) carries across chunk boundaries,
    /// so a mid-skip suspend could not be reconstructed.
    pub const MAX_HORIZON: u8 = 2;

    /// Derives the anchor analysis of `dfa` (built for `set`) under the
    /// given shallow-depth `horizon`.
    ///
    /// # Panics
    ///
    /// Panics if `horizon > AnchorSet::MAX_HORIZON`.
    pub fn build(dfa: &Dfa, set: &PatternSet, horizon: u8) -> AnchorSet {
        assert!(
            horizon <= Self::MAX_HORIZON,
            "anchor horizon {horizon} exceeds the supported maximum {}",
            Self::MAX_HORIZON
        );
        let n = dfa.len();
        // Folded-space facts: depth-1 map and accepts, depth-2 paths and
        // accepts, last-two-byte pairs of depth-3 paths.
        let mut d1f = [StateId::START.0; 256];
        let mut accept1 = [false; 256];
        let mut pair2 = vec![0u64; 256 * BYTE_WORDS];
        let mut accept2 = vec![0u64; 256 * BYTE_WORDS];
        let mut trip23 = vec![0u64; 256 * BYTE_WORDS];
        let mut last_of = [false; 256]; // folded byte ends some ≤H-depth path
        for s in dfa.states() {
            match dfa.depth(s) {
                1 => {
                    let c = dfa.last_byte(s).expect("depth-1 state has a last byte");
                    d1f[c as usize] = s.0;
                    if !dfa.output(s).is_empty() {
                        accept1[c as usize] = true;
                    }
                }
                2 if horizon >= 1 => {
                    let [y, c] = dfa.last_two_bytes(s).expect("depth-2 has two bytes");
                    set_bit(&mut pair2, y as usize * 256 + c as usize);
                    if !dfa.output(s).is_empty() {
                        set_bit(&mut accept2, y as usize * 256 + c as usize);
                    }
                    last_of[c as usize] = true;
                }
                3 if horizon >= 2 => {
                    let [y, c] = dfa.last_two_bytes(s).expect("depth-3 has two bytes");
                    set_bit(&mut trip23, y as usize * 256 + c as usize);
                    last_of[c as usize] = true;
                }
                _ => {}
            }
        }
        // Expand into the raw-indexed runtime tables, baking the case
        // fold into both axes so the scan loop never folds a byte just
        // to classify it. Row 256 is the no-history row: only
        // unconditional (single-byte) exits can fire on a flow's first
        // byte — the start-signal masking, in table form.
        let mut d1 = [StateId::START.0; 256];
        let mut danger = vec![0u64; DANGER_ROWS * BYTE_WORDS];
        let mut soft = vec![0u64; DANGER_ROWS * BYTE_WORDS];
        let mut pair_count = 0usize;
        for (c_raw, d1_slot) in d1.iter_mut().enumerate() {
            let c = set.fold(c_raw as u8) as usize;
            *d1_slot = d1f[c];
            for p_raw in 0..DANGER_ROWS {
                // Hard exits: the step may leave the region (or land on
                // a state the lane cannot identify); the stepper takes
                // over.
                let hard = if p_raw < 256 {
                    let p = set.fold(p_raw as u8) as usize;
                    let idx = p * 256 + c;
                    match horizon {
                        0 => d1f[c] != StateId::START.0,
                        1 => get_bit(&pair2, idx),
                        _ => get_bit(&trip23, idx) || get_bit(&accept2, idx),
                    }
                } else {
                    // No-history row: on a flow's first byte no pair or
                    // triple can complete (start-signal masking).
                    horizon == 0 && d1f[c] != StateId::START.0
                };
                // Soft exits: the step provably lands on d1[c] inside
                // the region and merely accepts — the suffix argument
                // needs every deeper candidate ruled out, which the
                // hard conditions above do exactly.
                let is_soft = !hard && horizon >= 1 && accept1[c];
                if hard || is_soft {
                    if hard && horizon >= 1 && p_raw < 256 {
                        pair_count += 1;
                    }
                    set_bit(&mut danger, p_raw * 256 + c_raw);
                }
                if is_soft {
                    set_bit(&mut soft, p_raw * 256 + c_raw);
                }
            }
        }
        // Skippable raw bytes: the folded byte must head no pattern — so
        // every region state steps on it to START — and end no path the
        // region's exit test keys on, so it can complete nothing with
        // any predecessor. That is what makes whole runs skippable
        // without per-byte pair tests.
        let mut skip = [0u64; BYTE_WORDS];
        for raw in 0..256usize {
            let f = set.fold(raw as u8) as usize;
            if d1f[f] == StateId::START.0 && !last_of[f] {
                skip[raw >> 6] |= 1u64 << (raw & 63);
            }
        }
        let mut shallow = vec![0u64; n.div_ceil(64)];
        for s in dfa.states() {
            if dfa.depth(s) <= horizon as u16 {
                shallow[s.index() >> 6] |= 1u64 << (s.index() & 63);
            }
        }
        let mut cand = [1u8; 256];
        for (raw, slot) in cand.iter_mut().enumerate() {
            if (skip[raw >> 6] >> (raw & 63)) & 1 != 0 {
                *slot = 0;
            }
        }
        AnchorSet {
            horizon,
            states: n,
            skip,
            soft,
            d1,
            shallow,
            pair_count,
            #[cfg(all(feature = "simd", target_arch = "x86_64"))]
            simd_cand: crate::simd::ByteSetTables::build(|raw| {
                cand[raw as usize] != 0
            }),
            #[cfg(all(feature = "simd", target_arch = "x86_64"))]
            simd_danger: {
                // The greedy cover clustering is the expensive part of
                // this build; skip it wholesale on CPUs the vector walk
                // can never run on (no SSSE3 ⇒ no SimdToken ⇒ the lane
                // stays scalar and never reads the cover).
                crate::simd::SimdToken::detect().and_then(|_| {
                    let cover = crate::simd::PairCover::build(|p, c| {
                        let idx = p as usize * 256 + c as usize;
                        (danger[idx >> 6] >> (idx & 63)) & 1 != 0
                    });
                    (cover.coverage() <= Self::SIMD_COVER_MAX_COVERAGE).then_some(cover)
                })
            },
            cand,
            danger,
        }
    }

    /// The shallow-depth horizon this analysis was built with.
    pub fn horizon(&self) -> u8 {
        self.horizon
    }

    /// States in the DFA the analysis was derived from.
    pub fn states(&self) -> usize {
        self.states
    }

    /// Number of raw byte values the skip lane may fast-forward over.
    pub fn skippable_bytes(&self) -> usize {
        self.skip.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of raw byte values that are candidate anchors
    /// (`256 − skippable`).
    pub fn anchor_bytes(&self) -> usize {
        256 - self.skippable_bytes()
    }

    /// Conditional `(prev, byte)` exit pairs installed in the danger
    /// table (beyond the unconditional single-byte exits).
    pub fn pair_count(&self) -> usize {
        self.pair_count
    }

    /// Resident bytes of the analysis tables (what the scan loop can
    /// touch: skip bitmap, danger rows, depth-1 map, shallow bitset).
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of_val(&self.skip)
            + self.danger.len() * 8
            + self.soft.len() * 8
            + self.d1.len() * 4
            + self.shallow.len() * 8
            + self.cand.len()
    }

    /// `true` when **raw** input byte `raw` is skippable (case fold is
    /// baked into the bitmap).
    #[inline(always)]
    pub fn is_skippable(&self, raw: u8) -> bool {
        (self.skip[(raw >> 6) as usize] >> (raw & 63)) & 1 != 0
    }

    /// SWAR classification of 8 raw bytes at once: `w` is a little-endian
    /// window (`u64::from_le_bytes`), the result has bit `j` set ⇔ byte
    /// `j` of the window is a candidate anchor. `0` means the whole
    /// window is skippable; otherwise `trailing_zeros()` is the offset of
    /// the first candidate. Each lane's bitmap test folds into the mask
    /// with no branches.
    #[inline(always)]
    pub fn candidate_mask(&self, w: u64) -> u32 {
        let mut m = 0u32;
        for j in 0..8 {
            let b = (w >> (8 * j)) as u8;
            m |= (self.cand[b as usize] as u32) << j;
        }
        m
    }

    /// Nibble-split shuffle tables of the candidate-anchor byte set: a
    /// byte is in the set ⇔ `!is_skippable(b)` — the exact complement
    /// of the skip bitmap, as `tests/simd.rs` pins exhaustively. This
    /// is the conformance surface for the shuffle classifier (and the
    /// kernel/model differential suite); the engine's vector lane walks
    /// the [`AnchorSet::simd_danger`] cover, not these tables.
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    #[inline(always)]
    pub fn simd_candidates(&self) -> &crate::simd::ByteSetTables {
        &self.simd_cand
    }

    /// Profitability ceiling for the vector danger cover: a cover
    /// flagging more than this fraction of the uniform `(prev, byte)`
    /// key space spends more on exact confirmations than its wholesale
    /// consumption saves, so [`AnchorSet::simd_danger`] withholds it and
    /// the lane stays scalar. Measured on the repro rule sets: the
    /// 300-rule cover sits at ~4 % (vector walk profitable), the
    /// 6,275-rule one at ~36 % (danger itself is ~24 % of traffic
    /// bytes — there is nothing for a one-sided probe to skip).
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    pub const SIMD_COVER_MAX_COVERAGE: f64 = 0.15;

    /// The nibble-box cover of the danger relation for the vector walk
    /// ([`SimdToken::danger_scan`](crate::simd::SimdToken::danger_scan)),
    /// or `None` when the relation is too dense for the probe to pay
    /// for itself — or when the running CPU lacks SSSE3, in which case
    /// the cover was never built (no token can exist to consume it).
    /// Covers only byte-valued prevs; the `HIST_NONE` row is the
    /// caller's to settle exactly.
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    #[inline(always)]
    pub fn simd_danger(&self) -> Option<&crate::simd::PairCover> {
        self.simd_danger.as_ref()
    }

    /// Exact per-byte exit test of the lane: `true` when consuming
    /// **raw** byte `c` with previous stream byte `prev` may leave the
    /// shallow region or enter an accepting state; `false` guarantees
    /// the step stays in the region with nothing to report. `prev` is a
    /// raw *or* folded byte value (folding is idempotent, both index the
    /// same row), or `0x100` for "no byte observed yet" (the
    /// start-signal masking).
    ///
    /// # Panics
    ///
    /// Debug-asserts `prev ≤ 0x100`.
    #[inline(always)]
    pub fn is_danger(&self, prev: u32, c: u8) -> bool {
        debug_assert!(prev <= 0x100, "prev register out of range: {prev:#x}");
        let idx = prev as usize * 256 + c as usize;
        (self.danger[idx >> 6] >> (idx & 63)) & 1 != 0
    }

    /// Discriminates a [`AnchorSet::is_danger`] hit: `true` when the
    /// step is a **soft** exit — it provably stays in the region,
    /// landing on [`AnchorSet::depth1_state`]`(c)`, and merely enters an
    /// accepting state (single-byte patterns). The lane emits that
    /// state's outputs itself and continues; only hard hits wake the
    /// stepper. Meaningful only for `(prev, c)` pairs whose danger bit
    /// is set.
    #[inline(always)]
    pub fn is_soft(&self, prev: u32, c: u8) -> bool {
        debug_assert!(prev <= 0x100, "prev register out of range: {prev:#x}");
        let idx = prev as usize * 256 + c as usize;
        (self.soft[idx >> 6] >> (idx & 63)) & 1 != 0
    }

    /// The depth-1 state whose (folded) path is **raw** byte `c`, or the
    /// start state. For horizons ≤ 1 this alone reconstructs the lane's
    /// resume state; horizon 2 replays the last two bytes through the
    /// stepper instead (the state may sit at depth 2).
    #[inline(always)]
    pub fn depth1_state(&self, c: u8) -> u32 {
        self.d1[c as usize]
    }

    /// `true` when `state` lies in the shallow region (depth ≤ horizon)
    /// — the lane residency test the scan loop runs after each stepped
    /// byte.
    #[inline(always)]
    pub fn contains_state(&self, state: u32) -> bool {
        (self.shallow[(state >> 6) as usize] >> (state & 63)) & 1 != 0
    }
}

#[inline]
fn set_bit(words: &mut [u64], idx: usize) {
    words[idx >> 6] |= 1u64 << (idx & 63);
}

#[inline]
fn get_bit(words: &[u64], idx: usize) -> bool {
    (words[idx >> 6] >> (idx & 63)) & 1 != 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::match_event::MultiMatcher;
    use crate::naive::NaiveMatcher;

    fn figure1() -> (PatternSet, Dfa) {
        let set = PatternSet::new(["he", "she", "his", "hers"]).unwrap();
        let dfa = Dfa::build(&set);
        (set, dfa)
    }

    /// The safety contract, checked exhaustively against the DFA: from
    /// every shallow state with every *consistent* history, a non-danger
    /// byte must keep the automaton in the region with no output, and a
    /// skippable byte must land on START. Consistent histories are
    /// enumerated from the suffix invariant: the previous byte(s) are
    /// the state's path suffix, and for states shallower than the
    /// horizon any predecessor bytes that would *not* have produced a
    /// deeper state.
    fn assert_sound(set: &PatternSet, dfa: &Dfa, horizon: u8) {
        let anchors = AnchorSet::build(dfa, set, horizon);
        for s in dfa.states() {
            if dfa.depth(s) > horizon as u16 {
                assert!(!anchors.contains_state(s.0), "{s} must not be shallow");
                continue;
            }
            assert!(anchors.contains_state(s.0), "{s} must be shallow");
            // Previous-byte values consistent with residing in `s`.
            let prevs: Vec<u32> = match dfa.depth(s) {
                0 => {
                    // START: the previous byte (if any) heads no pattern.
                    let mut p: Vec<u32> = (0..256u32)
                        .filter(|&b| anchors.depth1_state(b as u8) == StateId::START.0)
                        .collect();
                    p.push(0x100);
                    p
                }
                _ => vec![dfa.last_byte(s).expect("depth ≥ 1") as u32],
            };
            for c in 0..=255u8 {
                let next = dfa.step(s, c);
                let accepts = !dfa.output(next).is_empty();
                if anchors.is_skippable(c) {
                    // Test sets are case-sensitive: fold = identity.
                    assert_eq!(next, StateId::START, "skip byte {c:#04x} from {s}");
                    assert!(!accepts);
                }
                for &prev in &prevs {
                    if !anchors.is_danger(prev, c) {
                        assert!(
                            dfa.depth(next) <= horizon as u16,
                            "non-danger byte {c:#04x} from {s} (prev {prev:#x}) left the region"
                        );
                        assert!(!accepts, "non-danger byte {c:#04x} accepts from {s}");
                        assert!(anchors.contains_state(next.0));
                        if horizon <= 1 {
                            assert_eq!(
                                next.0,
                                anchors.depth1_state(c),
                                "h≤1 resume state diverged on {c:#04x} from {s}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn figure1_sound_under_every_horizon() {
        let (set, dfa) = figure1();
        for h in 0..=AnchorSet::MAX_HORIZON {
            assert_sound(&set, &dfa, h);
        }
    }

    #[test]
    fn assorted_sets_sound() {
        for patterns in [
            vec!["a".to_string()],
            vec!["aa".into(), "ab".into(), "ba".into()],
            vec!["GET /".into(), "POST /".into(), "Host:".into()],
            vec!["x".into(), "xy".into(), "xyz".into(), "yz".into()],
            (0..40).map(|i| format!("p{i:02}x")).collect::<Vec<_>>(),
        ] {
            let set = PatternSet::new(&patterns).unwrap();
            let dfa = Dfa::build(&set);
            for h in 0..=AnchorSet::MAX_HORIZON {
                assert_sound(&set, &dfa, h);
            }
        }
    }

    #[test]
    fn horizon0_anchors_are_exactly_start_bytes() {
        let (set, dfa) = figure1();
        let anchors = AnchorSet::build(&dfa, &set, 0);
        assert_eq!(anchors.anchor_bytes(), 2); // 'h' and 's'
        assert!(!anchors.is_skippable(b'h'));
        assert!(!anchors.is_skippable(b's'));
        assert!(anchors.is_skippable(b'e')); // continuation bytes skippable at H=0
        assert_eq!(anchors.pair_count(), 0);
        // Shallow region is the start state alone.
        assert!(anchors.contains_state(StateId::START.0));
        for s in dfa.states().skip(1) {
            assert!(!anchors.contains_state(s.0));
        }
    }

    #[test]
    fn horizon1_pairs_and_second_bytes() {
        let (set, dfa) = figure1();
        let anchors = AnchorSet::build(&dfa, &set, 1);
        // Depth-2 paths he, hi, sh become conditional exits.
        assert_eq!(anchors.pair_count(), 3);
        // 'e', 'i' end pairs → candidate anchors even though they head
        // no pattern; 'r' ends nothing at depth ≤ 2.
        assert!(!anchors.is_skippable(b'e'));
        assert!(!anchors.is_skippable(b'i'));
        assert!(anchors.is_skippable(b'r'));
        // Danger fires exactly on the pair, not on unrelated history.
        assert!(anchors.is_danger(b'h' as u32, b'e'));
        assert!(!anchors.is_danger(b'x' as u32, b'e'));
        assert!(!anchors.is_danger(0x100, b'e'));
        // Depth-1 map round-trips.
        let h = dfa.step(StateId::START, b'h');
        assert_eq!(anchors.depth1_state(b'h'), h.0);
        assert_eq!(anchors.depth1_state(b'q'), StateId::START.0);
    }

    #[test]
    fn horizon2_exits_on_third_bytes_and_accepting_pairs() {
        let (set, dfa) = figure1();
        let anchors = AnchorSet::build(&dfa, &set, 2);
        // Depth-2 states (he, hi, sh) are now *residents*; the pair
        // "he" still exits — it accepts. "sh"/"hi" do not exit...
        assert!(anchors.is_danger(b'h' as u32, b'e')); // he accepts
        assert!(!anchors.is_danger(b's' as u32, b'h')); // sh resident
        assert!(!anchors.is_danger(b'h' as u32, b'i')); // hi resident
        // ...but the last two bytes of depth-3 paths (she, her, his) do.
        assert!(anchors.is_danger(b'h' as u32, b'e')); // (s)he
        assert!(anchors.is_danger(b'e' as u32, b'r')); // (h)er
        assert!(anchors.is_danger(b'i' as u32, b's')); // (h)is
        // 's' ends "his"→ not skippable; 'r' ends "her" → not skippable.
        assert!(!anchors.is_skippable(b'r'));
        assert!(!anchors.is_skippable(b's'));
        assert!(anchors.is_skippable(b'z'));
        // Depth-2 states are in the region, depth-3 are not.
        let h = dfa.step(StateId::START, b'h');
        let hi = dfa.step(h, b'i');
        assert_eq!(dfa.depth(hi), 2);
        assert!(anchors.contains_state(hi.0));
        let his = dfa.step(hi, b's');
        assert!(!anchors.contains_state(his.0));
    }

    #[test]
    fn single_byte_patterns_are_danger_everywhere() {
        let set = PatternSet::new(["a", "bc"]).unwrap();
        let dfa = Dfa::build(&set);
        for h in 0..=AnchorSet::MAX_HORIZON {
            let anchors = AnchorSet::build(&dfa, &set, h);
            assert!(!anchors.is_skippable(b'a'), "horizon {h}");
            for prev in (0..256u32).chain([0x100]) {
                assert!(anchors.is_danger(prev, b'a'), "horizon {h} prev {prev:#x}");
            }
        }
        // ... and the naive matcher confirms why: 'a' alone is a match.
        assert_eq!(NaiveMatcher::new(&set).find_all(b"a").len(), 1);
    }

    #[test]
    fn nocase_fold_is_baked_into_tables() {
        let set = PatternSet::new_nocase(["attack"]).unwrap();
        let dfa = Dfa::build(&set);
        let anchors = AnchorSet::build(&dfa, &set, 2);
        // Both cases of the start byte are anchors; unrelated bytes skip.
        assert!(!anchors.is_skippable(b'a'));
        assert!(!anchors.is_skippable(b'A'));
        assert!(anchors.is_skippable(b'z'));
        assert!(anchors.is_skippable(b'Z'));
        // The danger rows fold both axes: "tt" (3rd byte after "at").
        assert!(anchors.is_danger(b't' as u32, b't'));
        assert!(anchors.is_danger(b'T' as u32, b'T'));
        assert_eq!(anchors.depth1_state(b'A'), anchors.depth1_state(b'a'));
    }

    #[test]
    fn candidate_mask_matches_scalar_classification() {
        let (set, dfa) = figure1();
        let anchors = AnchorSet::build(&dfa, &set, 1);
        let windows: [[u8; 8]; 4] = [
            *b"zzzzzzzz",
            *b"zzzhzzzz",
            *b"hershey!",
            [0u8, 255, b'e', b'z', b's', 1, 2, 3],
        ];
        for bytes in windows {
            let m = anchors.candidate_mask(u64::from_le_bytes(bytes));
            for (j, &b) in bytes.iter().enumerate() {
                assert_eq!(
                    (m >> j) & 1 != 0,
                    !anchors.is_skippable(b),
                    "byte {j} of {bytes:?}"
                );
            }
        }
        assert_eq!(anchors.candidate_mask(u64::from_le_bytes(*b"zzzzzzzz")), 0);
    }

    #[test]
    fn horizon_cap_is_enforced() {
        let (set, dfa) = figure1();
        let err = std::panic::catch_unwind(|| AnchorSet::build(&dfa, &set, 3));
        assert!(err.is_err(), "horizon 3 must be rejected");
    }

    #[test]
    fn deeper_horizons_trade_skip_set_for_fewer_exit_pairs() {
        // More patterns than figure 1, so every horizon has work to do.
        let patterns: Vec<String> = ["he", "she", "his", "hers", "GET /", "Host:", "ab", "abc"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let set = PatternSet::new(&patterns).unwrap();
        let dfa = Dfa::build(&set);
        let h0 = AnchorSet::build(&dfa, &set, 0);
        let h1 = AnchorSet::build(&dfa, &set, 1);
        let h2 = AnchorSet::build(&dfa, &set, 2);
        // The skippable set can only shrink as the horizon deepens...
        assert!(h0.skippable_bytes() >= h1.skippable_bytes());
        assert!(h1.skippable_bytes() >= h2.skippable_bytes());
        // ...while the region grows.
        let shallow = |a: &AnchorSet| dfa.states().filter(|s| a.contains_state(s.0)).count();
        assert!(shallow(&h0) < shallow(&h1));
        assert!(shallow(&h1) < shallow(&h2));
    }

    #[test]
    fn memory_accounting_counts_all_tables() {
        let (set, dfa) = figure1();
        let anchors = AnchorSet::build(&dfa, &set, 1);
        // skip 32 B + (danger + soft) 2×257×32 B + d1 1 KiB + shallow.
        assert!(anchors.memory_bytes() >= 32 + 2 * 257 * 32 + 1024 + 8);
        assert!(anchors.memory_bytes() < 32 * 1024);
        assert_eq!(anchors.states(), dfa.len());
        assert_eq!(anchors.horizon(), 1);
    }
}
