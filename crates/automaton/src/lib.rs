//! # dpi-automaton
//!
//! Aho-Corasick multi-pattern matching substrate for the DATE 2010
//! reproduction ("Ultra-High Throughput String Matching for Deep Packet
//! Inspection", Kennedy, Wang, Liu & Liu).
//!
//! This crate provides the *unmodified* algorithms the paper builds on and
//! compares against:
//!
//! - [`Trie`] — the keyword trie (Aho-Corasick *goto function*), states in
//!   breadth-first order;
//! - [`Nfa`] — classic Aho-Corasick with a **failure function**: minimal
//!   memory, but a variable number of state lookups per input byte
//!   (measured by [`NfaMatcher::scan_counting`]);
//! - [`Dfa`] — the full **move function** DFA: one lookup per byte,
//!   guaranteed, at the cost of dense transition storage. This is the
//!   starting point of the paper's memory reduction (crate `dpi-core`);
//! - [`NaiveMatcher`] — brute-force ground truth for differential tests;
//! - [`DfaStats`] — the "stored transition pointer" census reported in
//!   Table II for the original algorithm;
//! - [`AnchorSet`] — build-time anchor-byte analysis of the DFA (which
//!   bytes can pull the automaton out of its shallow region), the basis
//!   of the compiled engine's clean-traffic skip lane;
//! - [`PairTable`] — budgeted dense `state × byte-pair` transition rows
//!   over the DFA's hot states, the basis of the compiled engine's
//!   stride-2 pair-stepping lane.
//!
//! ## Quick example
//!
//! ```
//! use dpi_automaton::{Dfa, DfaMatcher, MultiMatcher, PatternSet};
//!
//! // Figure 1 of the paper.
//! let set = PatternSet::new(["he", "she", "his", "hers"])?;
//! let dfa = Dfa::build(&set);
//! let matches = DfaMatcher::new(&dfa, &set).find_all(b"ushers");
//! assert_eq!(matches.len(), 3); // she, he, hers
//! # Ok::<(), dpi_automaton::PatternSetError>(())
//! ```

// The `simd` feature admits `unsafe` in exactly one module (`simd`,
// runtime-detected intrinsics); the portable build still forbids it
// outright, and even with the feature on, `deny` keeps every unsafe
// block behind an explicit per-item `allow` in that module.
#![cfg_attr(not(feature = "simd"), forbid(unsafe_code))]
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod anchor;
mod approx;
mod dfa;
mod match_event;
mod naive;
mod nfa;
mod pair;
mod pattern;
mod proptests;
mod shard;
// x86 SIMD classification kernels behind the `simd` cargo feature; see
// the module docs. (No outer doc comment: rustdoc resolves merged
// outer+inner module docs in the parent scope, breaking the module's
// intra-doc links.)
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
pub mod simd;
mod stats;
mod stream;
mod trie;

pub use anchor::AnchorSet;
pub use approx::{
    replay_profile, ApproxConfig, ApproxCover, ApproxState, Flag, GramCover, PreClassifier,
    PrefixCover, ReplayProfile,
};
pub use dfa::{Dfa, DfaMatcher};
pub use match_event::{Match, MultiMatcher};
pub use naive::NaiveMatcher;
pub use nfa::{CountedScan, Nfa, NfaMatcher};
pub use pair::PairTable;
pub use pattern::{PatternId, PatternSet, PatternSetError, MAX_PATTERN_LEN};
pub use shard::{ShardCostModel, ShardPlan, ShardPlanError, ShardSpec, SplitStrategy};
pub use stats::DfaStats;
pub use stream::ScanState;
pub use trie::{StateId, Trie, TrieState};

/// Whether the SIMD scan kernels can run here: the crate was built with
/// the `simd` feature on an x86_64 target **and** the running CPU
/// supports SSSE3. Portable builds return `false` and every matcher
/// uses the safe scalar lanes.
pub fn simd_available() -> bool {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        simd::SimdToken::detect().is_some()
    }
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    {
        false
    }
}

#[cfg(test)]
mod crate_tests {
    use super::*;

    #[test]
    fn public_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PatternSet>();
        assert_send_sync::<Trie>();
        assert_send_sync::<Nfa>();
        assert_send_sync::<Dfa>();
        assert_send_sync::<Match>();
        assert_send_sync::<DfaStats>();
    }

    #[test]
    fn debug_is_never_empty() {
        let set = PatternSet::new(["a"]).unwrap();
        assert!(!format!("{set:?}").is_empty());
        assert!(!format!("{:?}", StateId::START).is_empty());
        assert!(!format!("{:?}", PatternId(0)).is_empty());
    }
}
