//! In-crate property tests for the Tuck et al. baselines: differential
//! correctness against the naive reference and structural/memory
//! invariants of both compressed representations.

#![cfg(test)]

use crate::{BitmapAc, BitmapMatcher, PathAc, PathMatcher};
use dpi_automaton::{MultiMatcher, NaiveMatcher, PatternSet};
use proptest::prelude::*;

fn pattern_vec() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(
        proptest::collection::vec(
            prop_oneof![Just(b'p'), Just(b'q'), Just(b'r'), any::<u8>()],
            1..9,
        ),
        1..10,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Both baselines agree with the naive reference on arbitrary inputs.
    #[test]
    fn baselines_differential(
        patterns in pattern_vec(),
        haystack in proptest::collection::vec(any::<u8>(), 0..160),
    ) {
        let Ok(set) = PatternSet::new(&patterns) else { return Ok(()); };
        let want = NaiveMatcher::new(&set).find_all(&haystack);
        let bitmap = BitmapAc::build(&set);
        prop_assert_eq!(&BitmapMatcher::new(&bitmap, &set).find_all(&haystack), &want);
        let path = PathAc::build(&set);
        prop_assert_eq!(&PathMatcher::new(&path, &set).find_all(&haystack), &want);
    }

    /// Inputs stitched from the patterns themselves (guaranteed matches,
    /// deep fail-path activity).
    #[test]
    fn baselines_differential_on_pattern_soup(
        patterns in pattern_vec(),
        order in proptest::collection::vec(any::<prop::sample::Index>(), 1..8),
    ) {
        let Ok(set) = PatternSet::new(&patterns) else { return Ok(()); };
        let mut haystack = Vec::new();
        for idx in &order {
            haystack.extend_from_slice(&patterns[idx.index(patterns.len())]);
        }
        let want = NaiveMatcher::new(&set).find_all(&haystack);
        prop_assert!(!want.is_empty());
        let bitmap = BitmapAc::build(&set);
        prop_assert_eq!(&BitmapMatcher::new(&bitmap, &set).find_all(&haystack), &want);
        let path = PathAc::build(&set);
        prop_assert_eq!(&PathMatcher::new(&path, &set).find_all(&haystack), &want);
    }

    /// Path compression conserves characters: the compressed chars plus
    /// one per branch node's incoming edge equal the trie's non-root
    /// states.
    #[test]
    fn path_compression_conserves_states(patterns in pattern_vec()) {
        let Ok(set) = PatternSet::new(&patterns) else { return Ok(()); };
        let trie = dpi_automaton::Trie::build(&set);
        let path = PathAc::build(&set);
        let (branches, _, chars) = path.census();
        // Every non-root trie state is either a branch node or one
        // character of a path node.
        prop_assert_eq!(chars + (branches - 1), trie.len() - 1);
    }

    /// Memory accounting is monotone in ruleset size for both baselines.
    #[test]
    fn memory_monotone(patterns in pattern_vec()) {
        let Ok(set) = PatternSet::new(&patterns) else { return Ok(()); };
        if set.len() < 2 {
            return Ok(());
        }
        let half: Vec<&[u8]> = set.iter().take(set.len() / 2).map(|(_, p)| p).collect();
        let half_set = PatternSet::new(&half).expect("subset valid");
        prop_assert!(
            BitmapAc::build(&half_set).memory_bytes() <= BitmapAc::build(&set).memory_bytes()
        );
        prop_assert!(
            PathAc::build(&half_set).memory_bytes() <= PathAc::build(&set).memory_bytes()
        );
    }

    /// Counting scans: lookups ≥ bytes for both baselines (each byte costs
    /// at least one node access).
    #[test]
    fn lookup_floor(
        patterns in pattern_vec(),
        haystack in proptest::collection::vec(any::<u8>(), 0..120),
    ) {
        let Ok(set) = PatternSet::new(&patterns) else { return Ok(()); };
        let bitmap = BitmapAc::build(&set);
        let scan = bitmap.scan_counting(&set, &haystack);
        prop_assert!(scan.lookups >= haystack.len());
        let path = PathAc::build(&set);
        let scan = path.scan_counting(&set, &haystack);
        prop_assert!(scan.lookups >= haystack.len());
    }
}
