//! # dpi-baselines
//!
//! The comparison systems of Table III: faithful reimplementations of the
//! two memory-efficient Aho-Corasick variants of Tuck, Sherwood, Calder &
//! Varghese ("Deterministic memory-efficient string matching algorithms for
//! intrusion detection", INFOCOM 2004), which the DATE 2010 paper
//! outperforms by 8–20× in memory and beats on guaranteed throughput.
//!
//! - [`BitmapAc`] — 256-bit child bitmaps + popcount indexing, failure
//!   pointers;
//! - [`PathAc`] — bitmap nodes for branching states, path nodes
//!   (compressed single-child runs with per-character failure pointers)
//!   elsewhere.
//!
//! Both expose byte-accurate [`memory_bytes`](BitmapAc::memory_bytes)
//! accounting and counting scans whose `lookups`/`max_lookups_per_byte`
//! quantify the fail-pointer throughput penalty that the DATE 2010 design
//! eliminates (see the `adversarial` experiment).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitmap;
mod path;
mod proptests;

pub use bitmap::{BitmapAc, BitmapMatcher, BitmapScan};
pub use path::{PathAc, PathMatcher, MAX_PATH_LEN};
