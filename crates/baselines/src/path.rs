//! Path-compressed Aho-Corasick (Tuck et al., INFOCOM 2004) — the second
//! baseline of Table III.
//!
//! Maximal runs of single-child states are collapsed into **path nodes**
//! that store the run's characters sequentially; branching states keep the
//! bitmap representation. Every character position still needs its own
//! failure pointer (a mismatch mid-path must resume at the failure target
//! of exactly that prefix), which is why the scheme saves space over plain
//! bitmaps but keeps the fail-pointer throughput problem.

use crate::bitmap::BitmapScan;
use dpi_automaton::{Match, MultiMatcher, Nfa, PatternId, PatternSet, StateId};

/// Maximum characters a single path node may hold (bounds node size; a
/// longer run spills into a second path node via `exit`).
pub const MAX_PATH_LEN: usize = 16;

/// A position inside the compressed structure: node + offset. Offset is
/// meaningful only for path nodes (0 = the node's entry state is *not yet*
/// reached — positions are 1-based: offset j means j characters of the
/// path consumed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ref {
    node: u32,
    offset: u8,
}

#[derive(Debug, Clone)]
enum Node {
    Branch {
        bitmap: [u64; 4],
        /// `children[rank]` — target refs in byte order.
        children: Vec<Ref>,
        fail: Ref,
        outputs: Vec<PatternId>,
    },
    Path {
        /// The run's characters; consuming `bytes[j]` moves from offset j
        /// to offset j+1.
        bytes: Vec<u8>,
        /// Failure ref per offset 1..=len (index j-1 ↔ offset j).
        fails: Vec<Ref>,
        /// Outputs per offset 1..=len.
        outputs: Vec<Vec<PatternId>>,
        /// Transition out of the final offset: the byte and target of the
        /// final state's single child, when the run was cut by
        /// [`MAX_PATH_LEN`] rather than by branching.
        exit: Option<(u8, Ref)>,
    },
}

/// The path-compressed automaton.
#[derive(Debug, Clone)]
pub struct PathAc {
    nodes: Vec<Node>,
    root: Ref,
    /// Census: (branch nodes, path nodes, compressed characters).
    census: (usize, usize, usize),
}

impl PathAc {
    /// Builds from a pattern set.
    pub fn build(set: &PatternSet) -> PathAc {
        let nfa = Nfa::build(set);
        let trie = nfa.trie();
        let n = trie.len();

        // A non-root state is path-interior if its parent has exactly one
        // child... more precisely we form runs: starting from each state
        // that is either root or has ≥ 2 children, each child starts a run
        // that extends while states have exactly 1 child (and stops after
        // MAX_PATH_LEN characters).
        // First pass: decide the head of each run and assign node ids.
        let mut ref_of: Vec<Option<Ref>> = vec![None; n];
        let mut nodes: Vec<Node> = Vec::new();
        let mut branch_count = 0usize;
        let mut path_count = 0usize;
        let mut path_chars = 0usize;

        // Root is always a branch node, id 0.
        nodes.push(Node::Branch {
            bitmap: [0; 4],
            children: Vec::new(),
            fail: Ref { node: 0, offset: 0 },
            outputs: nfa.output(StateId::START).to_vec(),
        });
        branch_count += 1;
        ref_of[0] = Some(Ref { node: 0, offset: 0 });

        // BFS so parents are materialized before children.
        let mut queue: std::collections::VecDeque<StateId> =
            std::collections::VecDeque::from([StateId::START]);
        while let Some(s) = queue.pop_front() {
            for &(_, child) in trie.state(s).children() {
                // Build the run starting at `child`.
                let mut run = vec![child];
                let mut cur = child;
                while trie.state(cur).children().len() == 1 && run.len() < MAX_PATH_LEN {
                    let (_, next) = trie.state(cur).children()[0];
                    if trie.state(next).children().len() > 1 {
                        // `next` will be a branch head; stop before it.
                        break;
                    }
                    run.push(next);
                    cur = next;
                }
                let last = *run.last().expect("non-empty run");
                if trie.state(child).children().len() > 1 {
                    // Branch node for `child` itself.
                    let id = nodes.len() as u32;
                    nodes.push(Node::Branch {
                        bitmap: [0; 4],
                        children: Vec::new(),
                        fail: Ref { node: 0, offset: 0 },
                        outputs: nfa.output(child).to_vec(),
                    });
                    branch_count += 1;
                    ref_of[child.index()] = Some(Ref { node: id, offset: 0 });
                    queue.push_back(child);
                } else {
                    // Path node covering `run` (all single-child or leaf).
                    let id = nodes.len() as u32;
                    let bytes: Vec<u8> = run
                        .iter()
                        .map(|&s| trie.state(s).in_byte().expect("non-root"))
                        .collect();
                    path_chars += bytes.len();
                    for (j, &s) in run.iter().enumerate() {
                        ref_of[s.index()] = Some(Ref {
                            node: id,
                            offset: (j + 1) as u8,
                        });
                    }
                    nodes.push(Node::Path {
                        bytes,
                        // Filled in pass 2, once every state has a ref.
                        fails: vec![Ref { node: 0, offset: 0 }; run.len()],
                        outputs: run.iter().map(|&s| nfa.output(s).to_vec()).collect(),
                        exit: None, // filled in pass 2
                    });
                    path_count += 1;
                    // Continue BFS from the run's last state (its children,
                    // if any, start new nodes).
                    queue.push_back(last);
                }
            }
        }

        // Pass 2: now every state has a ref; fill bitmaps/children, fails
        // and exits.
        for s in (0..n).map(|i| StateId(i as u32)) {
            let r = ref_of[s.index()].expect("all states mapped");
            match &nodes[r.node as usize] {
                Node::Branch { .. } => {
                    let mut bitmap = [0u64; 4];
                    let mut children = Vec::new();
                    for &(b, c) in trie.state(s).children() {
                        bitmap[b as usize / 64] |= 1u64 << (b % 64);
                        children.push(ref_of[c.index()].expect("mapped"));
                    }
                    let fail = ref_of[nfa.fail(s).index()].expect("mapped");
                    if let Node::Branch {
                        bitmap: bm,
                        children: ch,
                        fail: f,
                        ..
                    } = &mut nodes[r.node as usize]
                    {
                        *bm = bitmap;
                        *ch = children;
                        *f = fail;
                    }
                }
                Node::Path { bytes, .. } => {
                    let len = bytes.len();
                    let fail = ref_of[nfa.fail(s).index()].expect("mapped");
                    let is_last = r.offset as usize == len;
                    let exit = if is_last {
                        trie.state(s).children().first().map(|&(b, c)| {
                            (b, ref_of[c.index()].expect("mapped"))
                        })
                    } else {
                        None
                    };
                    if let Node::Path {
                        fails, exit: ex, ..
                    } = &mut nodes[r.node as usize]
                    {
                        fails[r.offset as usize - 1] = fail;
                        if exit.is_some() {
                            *ex = exit;
                        }
                    }
                }
            }
        }

        PathAc {
            nodes,
            root: Ref { node: 0, offset: 0 },
            census: (branch_count, path_count, path_chars),
        }
    }

    /// `(branch nodes, path nodes, characters held in path nodes)`.
    pub fn census(&self) -> (usize, usize, usize) {
        self.census
    }

    /// Data-structure bytes under the Tuck et al. layout: branch nodes as
    /// in the bitmap scheme (44 bytes); path nodes pay an 8-byte header
    /// plus per character 1 byte of text, a 4-byte failure pointer and a
    /// 1-byte match flag; plus 2 bytes per output entry.
    pub fn memory_bytes(&self) -> usize {
        let mut bytes = 0usize;
        let mut output_entries = 0usize;
        for node in &self.nodes {
            match node {
                Node::Branch { outputs, .. } => {
                    bytes += 44;
                    output_entries += outputs.len();
                }
                Node::Path { bytes: b, outputs, .. } => {
                    bytes += 8 + b.len() * (1 + 4 + 1);
                    output_entries += outputs.iter().map(Vec::len).sum::<usize>();
                }
            }
        }
        bytes + 2 * output_entries
    }

    fn outputs_at(&self, r: Ref) -> &[PatternId] {
        match &self.nodes[r.node as usize] {
            Node::Branch { outputs, .. } => outputs,
            Node::Path { outputs, .. } => &outputs[r.offset as usize - 1],
        }
    }

    /// One transition with fail-chain accounting. Returns `(next, lookups)`.
    fn step(&self, mut at: Ref, byte: u8) -> (Ref, usize) {
        let mut lookups = 0usize;
        loop {
            lookups += 1;
            match &self.nodes[at.node as usize] {
                Node::Branch {
                    bitmap,
                    children,
                    fail,
                    ..
                } => {
                    if bitmap[byte as usize / 64] >> (byte % 64) & 1 == 1 {
                        let limb = byte as usize / 64;
                        let bit = byte as usize % 64;
                        let mut rank = 0usize;
                        for b in bitmap.iter().take(limb) {
                            rank += b.count_ones() as usize;
                        }
                        if bit > 0 {
                            rank += (bitmap[limb] & ((1u64 << bit) - 1)).count_ones() as usize;
                        }
                        return (children[rank], lookups);
                    }
                    if at == self.root {
                        return (self.root, lookups);
                    }
                    at = *fail;
                }
                Node::Path {
                    bytes,
                    fails,
                    exit,
                    ..
                } => {
                    let j = at.offset as usize;
                    if j < bytes.len() {
                        if bytes[j] == byte {
                            return (
                                Ref {
                                    node: at.node,
                                    offset: at.offset + 1,
                                },
                                lookups,
                            );
                        }
                    } else if let Some((b, target)) = exit {
                        if *b == byte {
                            return (*target, lookups);
                        }
                    }
                    at = fails[j - 1];
                }
            }
        }
    }

    /// Scans with lookup accounting (same contract as
    /// [`crate::BitmapAc::scan_counting`]).
    pub fn scan_counting(&self, set: &PatternSet, haystack: &[u8]) -> BitmapScan {
        let mut matches = Vec::new();
        let mut lookups = 0usize;
        let mut max_per_byte = 0usize;
        let mut at = self.root;
        for (i, &raw) in haystack.iter().enumerate() {
            let byte = set.fold(raw);
            let (next, n) = self.step(at, byte);
            lookups += n;
            max_per_byte = max_per_byte.max(n);
            at = next;
            for &p in self.outputs_at(at) {
                matches.push(Match {
                    end: i + 1,
                    pattern: p,
                });
            }
        }
        BitmapScan {
            matches,
            lookups,
            max_lookups_per_byte: max_per_byte,
            popcounts: 0,
        }
    }
}

/// Borrowing matcher adapter.
#[derive(Debug, Clone)]
pub struct PathMatcher<'a> {
    ac: &'a PathAc,
    set: &'a PatternSet,
}

impl<'a> PathMatcher<'a> {
    /// Creates the adapter.
    pub fn new(ac: &'a PathAc, set: &'a PatternSet) -> Self {
        PathMatcher { ac, set }
    }
}

impl MultiMatcher for PathMatcher<'_> {
    fn find_all(&self, haystack: &[u8]) -> Vec<Match> {
        self.ac.scan_counting(self.set, haystack).matches
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpi_automaton::NaiveMatcher;

    #[test]
    fn agrees_with_naive_on_figure1() {
        let set = PatternSet::new(["he", "she", "his", "hers"]).unwrap();
        let ac = PathAc::build(&set);
        let naive = NaiveMatcher::new(&set);
        for text in [
            &b"ushers"[..],
            b"she sells his seashells hers",
            b"hishishis",
            b"",
            b"h",
        ] {
            assert_eq!(
                PathMatcher::new(&ac, &set).find_all(text),
                naive.find_all(text),
                "{text:?}"
            );
        }
    }

    #[test]
    fn long_chains_are_compressed() {
        let set = PatternSet::new(["abcdefghij"]).unwrap();
        let ac = PathAc::build(&set);
        let (branches, paths, chars) = ac.census();
        assert_eq!(branches, 1); // root only
        assert_eq!(paths, 1);
        assert_eq!(chars, 10);
        // Memory: far below 11 bitmap nodes.
        assert!(ac.memory_bytes() < 11 * 44);
    }

    #[test]
    fn chains_longer_than_cap_split() {
        let long: String = ('a'..='z').collect();
        let set = PatternSet::new([long.as_str()]).unwrap();
        let ac = PathAc::build(&set);
        let (_, paths, chars) = ac.census();
        assert_eq!(chars, 26);
        assert_eq!(paths, 2); // 16 + 10
        let naive = NaiveMatcher::new(&set);
        let text = format!("xx{long}yy{long}");
        assert_eq!(
            PathMatcher::new(&ac, &set).find_all(text.as_bytes()),
            naive.find_all(text.as_bytes())
        );
    }

    #[test]
    fn mid_path_failure_resumes_correctly() {
        // "abcde" and "bcd": failing at "abc|x" must land in "bc…"-land.
        let set = PatternSet::new(["abcde", "bcd"]).unwrap();
        let ac = PathAc::build(&set);
        let naive = NaiveMatcher::new(&set);
        for text in [&b"abcd"[..], b"abcde", b"ababcde", b"abcbcd", b"xbcdx"] {
            assert_eq!(
                PathMatcher::new(&ac, &set).find_all(text),
                naive.find_all(text),
                "{text:?}"
            );
        }
    }

    #[test]
    fn matches_inside_paths_are_reported() {
        // "ab" ends inside the compressed run of "abcd".
        let set = PatternSet::new(["abcd", "ab"]).unwrap();
        let ac = PathAc::build(&set);
        let naive = NaiveMatcher::new(&set);
        let text = b"zabcdz";
        assert_eq!(
            PathMatcher::new(&ac, &set).find_all(text),
            naive.find_all(text)
        );
    }

    #[test]
    fn memory_below_bitmap_scheme() {
        // Realistic-ish mix with long tails → path compression must win.
        let strings: Vec<String> = (0..50)
            .map(|i| format!("prefix{i:02}longsuffixtail{i:02}"))
            .collect();
        let set = PatternSet::new(&strings).unwrap();
        let path = PathAc::build(&set);
        let bitmap = crate::BitmapAc::build(&set);
        assert!(
            path.memory_bytes() < bitmap.memory_bytes(),
            "path {} >= bitmap {}",
            path.memory_bytes(),
            bitmap.memory_bytes()
        );
    }

    #[test]
    fn fail_costs_counted() {
        let set = PatternSet::new(["aaaa", "aaab"]).unwrap();
        let ac = PathAc::build(&set);
        let scan = ac.scan_counting(&set, b"aaabaaabaaab");
        assert!(scan.lookups >= 12);
        assert!(scan.max_lookups_per_byte >= 1);
    }
}
