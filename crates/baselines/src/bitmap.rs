//! Bitmap-compressed Aho-Corasick (Tuck, Sherwood, Calder & Varghese,
//! INFOCOM 2004) — the first baseline of Table III.
//!
//! Each node stores a 256-bit child bitmap instead of 256 pointers;
//! children live consecutively in an array and are indexed by popcount of
//! the bitmap below the input byte. Missing transitions follow a **failure
//! pointer**, so (unlike the DATE 2010 design) a byte may cost several
//! node lookups — the property that makes throughput input-dependent. The
//! paper's §II also notes the "large logic delay" of summing 256 bitmap
//! bits per transition; [`BitmapScan::popcounts`] counts those operations.

use dpi_automaton::{Match, MultiMatcher, Nfa, PatternId, PatternSet, StateId};

/// One bitmap node.
#[derive(Debug, Clone)]
struct Node {
    /// 256-bit child bitmap (limb `b / 64`, bit `b % 64`).
    bitmap: [u64; 4],
    /// Index of the first child in `BitmapAc::nodes`; children are stored
    /// consecutively in byte order.
    first_child: u32,
    /// Failure node.
    fail: u32,
    /// Fail-closed output set.
    outputs: Vec<PatternId>,
}

impl Node {
    #[inline]
    fn has(&self, byte: u8) -> bool {
        self.bitmap[byte as usize / 64] >> (byte % 64) & 1 == 1
    }

    /// Popcount of bitmap bits strictly below `byte` — the child's rank.
    #[inline]
    fn rank(&self, byte: u8) -> u32 {
        let limb = byte as usize / 64;
        let bit = byte as usize % 64;
        let mut count = 0u32;
        for l in 0..limb {
            count += self.bitmap[l].count_ones();
        }
        if bit > 0 {
            count += (self.bitmap[limb] & ((1u64 << bit) - 1)).count_ones();
        }
        count
    }
}

/// Result of a counting scan over the bitmap automaton.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitmapScan {
    /// Matches in canonical order.
    pub matches: Vec<Match>,
    /// Total node lookups (≥ bytes scanned; each fail step adds one).
    pub lookups: usize,
    /// Worst per-byte lookup count.
    pub max_lookups_per_byte: usize,
    /// 256-bit popcount operations performed (one per successful child
    /// index computation).
    pub popcounts: usize,
}

/// The bitmap-compressed automaton.
#[derive(Debug, Clone)]
pub struct BitmapAc {
    nodes: Vec<Node>,
}

impl BitmapAc {
    /// Builds from a pattern set.
    pub fn build(set: &PatternSet) -> BitmapAc {
        let nfa = Nfa::build(set);
        let trie = nfa.trie();
        let n = trie.len();
        // Children must be consecutive; BFS ids from our trie do not
        // guarantee contiguity, so renumber: parents in BFS order allocate
        // their children consecutively (which *is* BFS order — our trie ids
        // are assigned exactly that way, so the identity map works).
        let mut nodes = Vec::with_capacity(n);
        for i in 0..n {
            let id = StateId(i as u32);
            let st = trie.state(id);
            let mut bitmap = [0u64; 4];
            let mut first_child = 0u32;
            for (k, &(b, c)) in st.children().iter().enumerate() {
                bitmap[b as usize / 64] |= 1u64 << (b % 64);
                if k == 0 {
                    first_child = c.0;
                }
                // Contiguity invariant: the j-th child id is first + j.
                debug_assert_eq!(c.0, first_child + k as u32);
            }
            nodes.push(Node {
                bitmap,
                first_child,
                fail: nfa.fail(id).0,
                outputs: nfa.output(id).to_vec(),
            });
        }
        BitmapAc { nodes }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if only the root exists.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// Data-structure size in bytes, per the Tuck et al. layout: 32 bytes
    /// of bitmap + 4 bytes first-child pointer + 4 bytes failure pointer +
    /// 4 bytes match-list reference per node, plus 2 bytes per output
    /// entry in a separate match region.
    pub fn memory_bytes(&self) -> usize {
        let node_bytes = self.nodes.len() * (32 + 4 + 4 + 4);
        let output_entries: usize = self.nodes.iter().map(|n| n.outputs.len()).sum();
        node_bytes + 2 * output_entries
    }

    /// Scans with lookup/popcount accounting.
    pub fn scan_counting(&self, set: &PatternSet, haystack: &[u8]) -> BitmapScan {
        let mut matches = Vec::new();
        let mut lookups = 0usize;
        let mut popcounts = 0usize;
        let mut max_per_byte = 0usize;
        let mut at = 0u32;
        for (i, &raw) in haystack.iter().enumerate() {
            let byte = set.fold(raw);
            let mut this_byte = 0usize;
            loop {
                this_byte += 1;
                let node = &self.nodes[at as usize];
                if node.has(byte) {
                    popcounts += 1;
                    at = node.first_child + node.rank(byte);
                    break;
                }
                if at == 0 {
                    break;
                }
                at = node.fail;
            }
            lookups += this_byte;
            max_per_byte = max_per_byte.max(this_byte);
            for &p in &self.nodes[at as usize].outputs {
                matches.push(Match {
                    end: i + 1,
                    pattern: p,
                });
            }
        }
        BitmapScan {
            matches,
            lookups,
            max_lookups_per_byte: max_per_byte,
            popcounts,
        }
    }
}

/// Borrowing matcher adapter.
#[derive(Debug, Clone)]
pub struct BitmapMatcher<'a> {
    ac: &'a BitmapAc,
    set: &'a PatternSet,
}

impl<'a> BitmapMatcher<'a> {
    /// Creates the adapter.
    pub fn new(ac: &'a BitmapAc, set: &'a PatternSet) -> Self {
        BitmapMatcher { ac, set }
    }
}

impl MultiMatcher for BitmapMatcher<'_> {
    fn find_all(&self, haystack: &[u8]) -> Vec<Match> {
        self.ac.scan_counting(self.set, haystack).matches
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpi_automaton::NaiveMatcher;

    fn figure1() -> (PatternSet, BitmapAc) {
        let set = PatternSet::new(["he", "she", "his", "hers"]).unwrap();
        let ac = BitmapAc::build(&set);
        (set, ac)
    }

    #[test]
    fn agrees_with_naive() {
        let (set, ac) = figure1();
        let naive = NaiveMatcher::new(&set);
        for text in [
            &b"ushers"[..],
            b"she sells seashells by the seashore",
            b"hishershehe",
            b"",
        ] {
            assert_eq!(
                BitmapMatcher::new(&ac, &set).find_all(text),
                naive.find_all(text),
                "{text:?}"
            );
        }
    }

    #[test]
    fn node_count_equals_trie_states() {
        let (_, ac) = figure1();
        assert_eq!(ac.len(), 10);
        assert!(!ac.is_empty());
    }

    #[test]
    fn memory_model_is_44_bytes_per_node_plus_outputs() {
        let (_, ac) = figure1();
        // 10 nodes × 44 + output entries × 2: he→{he}, she→{she,he},
        // his→{his}, hers→{hers} = 5 entries.
        assert_eq!(ac.memory_bytes(), 10 * 44 + 2 * 5);
    }

    #[test]
    fn fail_steps_cost_extra_lookups() {
        let (set, ac) = figure1();
        let scan = ac.scan_counting(&set, b"shis");
        assert!(scan.lookups > 4);
        assert!(scan.max_lookups_per_byte >= 2);
        // Popcounts happen only on successful transitions.
        assert!(scan.popcounts <= scan.lookups);
    }

    #[test]
    fn rank_popcount_is_correct() {
        // Node with children on bytes {3, 64, 200}: rank(200) == 2.
        let set = PatternSet::new([&[3u8][..], &[64u8][..], &[200u8][..]]).unwrap();
        let ac = BitmapAc::build(&set);
        let scan = ac.scan_counting(&set, &[200u8]);
        assert_eq!(scan.matches.len(), 1);
        assert_eq!(scan.matches[0].pattern, PatternId(2));
    }

    #[test]
    fn children_contiguity_invariant_holds_on_dense_sets() {
        // Dense branching: every 2-byte combination of a small alphabet.
        let strings: Vec<Vec<u8>> = (b'a'..=b'f')
            .flat_map(|x| (b'a'..=b'f').map(move |y| vec![x, y]))
            .collect();
        let set = PatternSet::new(&strings).unwrap();
        let ac = BitmapAc::build(&set);
        let naive = NaiveMatcher::new(&set);
        let text = b"abcdeffedcba".repeat(4);
        assert_eq!(
            BitmapMatcher::new(&ac, &set).find_all(&text),
            naive.find_all(&text)
        );
    }
}
