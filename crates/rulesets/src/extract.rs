//! Distribution-preserving ruleset extraction.
//!
//! §V.A: "we created a program which reduced the number of strings by
//! randomly extracting strings while keeping the same character
//! distribution". This module is that program: it buckets the master
//! ruleset by string length and samples each bucket proportionally, so the
//! derived ruleset's Figure 6 histogram is a scaled copy of the master's.

use dpi_automaton::PatternSet;
use rand::prelude::*;
use rand::rngs::StdRng;

/// Extracts `target` strings from `master`, preserving the length
/// distribution (largest-remainder apportionment per length bucket,
/// uniform sampling within buckets).
///
/// # Panics
///
/// Panics if `target` is zero or exceeds `master.len()`.
pub fn extract_preserving(master: &PatternSet, target: usize, seed: u64) -> PatternSet {
    assert!(target > 0, "target must be non-zero");
    assert!(
        target <= master.len(),
        "cannot extract {target} from {} strings",
        master.len()
    );
    let mut rng = StdRng::seed_from_u64(seed);

    // Bucket pattern indices by length.
    let mut buckets: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
    for (id, p) in master.iter() {
        buckets.entry(p.len()).or_default().push(id.index());
    }

    // Apportion the target count across buckets (largest remainder).
    let n = master.len() as f64;
    let mut alloc: Vec<(usize, usize, f64)> = buckets
        .iter()
        .map(|(&len, v)| {
            let exact = v.len() as f64 / n * target as f64;
            (len, exact.floor() as usize, exact - exact.floor())
        })
        .collect();
    let mut assigned: usize = alloc.iter().map(|&(_, c, _)| c).sum();
    let mut order: Vec<usize> = (0..alloc.len()).collect();
    order.sort_by(|&a, &b| alloc[b].2.partial_cmp(&alloc[a].2).expect("finite"));
    for &i in &order {
        if assigned == target {
            break;
        }
        // Never allocate more than the bucket holds.
        let len = alloc[i].0;
        let room = buckets[&len].len();
        if alloc[i].1 < room {
            alloc[i].1 += 1;
            assigned += 1;
        }
    }
    // If some buckets saturated, spill remaining quota anywhere with room.
    let mut i = 0;
    while assigned < target {
        let slot = i % alloc.len();
        let len = alloc[slot].0;
        let room = buckets[&len].len();
        if alloc[slot].1 < room {
            alloc[slot].1 += 1;
            assigned += 1;
        }
        i += 1;
    }

    let mut chosen: Vec<usize> = Vec::with_capacity(target);
    for (len, count, _) in alloc {
        let bucket = &buckets[&len];
        let mut idxs: Vec<usize> = bucket.clone();
        idxs.shuffle(&mut rng);
        chosen.extend(idxs.into_iter().take(count));
    }
    chosen.sort_unstable();
    let patterns: Vec<&[u8]> = chosen
        .iter()
        .map(|&i| master.pattern(dpi_automaton::PatternId(i as u32)))
        .collect();
    PatternSet::new(patterns).expect("subset of a valid set is valid")
}

/// Extracts strings from `master` until the total character count is as
/// close as possible to (and not exceeding) `target_chars`, preserving the
/// length distribution. Used for the Table III comparison set ("we reduced
/// the 6,275 strings ... until it had 19,124 characters").
///
/// # Panics
///
/// Panics if `target_chars` is smaller than the shortest string in
/// `master`.
pub fn extract_chars(master: &PatternSet, target_chars: usize, seed: u64) -> PatternSet {
    let min_len = master.iter().map(|(_, p)| p.len()).min().expect("non-empty");
    assert!(
        target_chars >= min_len,
        "target_chars {target_chars} below the shortest string"
    );
    // Binary search the string count whose proportional extraction lands
    // nearest the character budget.
    let mean = master.total_bytes() as f64 / master.len() as f64;
    let mut count = ((target_chars as f64 / mean).round() as usize)
        .clamp(1, master.len());
    let mut best = extract_preserving(master, count, seed);
    // Refine: nudge the count until the byte total brackets the target.
    for _ in 0..64 {
        let bytes = best.total_bytes();
        if bytes > target_chars && count > 1 {
            count -= 1;
        } else if bytes < target_chars && count < master.len() {
            let next = extract_preserving(master, count + 1, seed);
            if next.total_bytes() > target_chars {
                break;
            }
            count += 1;
            best = next;
            continue;
        } else {
            break;
        }
        best = extract_preserving(master, count, seed);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::RulesetGenerator;

    #[test]
    fn extraction_preserves_length_histogram_shape() {
        let master = RulesetGenerator::new().generate(2000);
        let subset = extract_preserving(&master, 500, 7);
        assert_eq!(subset.len(), 500);
        // Mean length within 10% of the master's.
        let master_mean = master.total_bytes() as f64 / master.len() as f64;
        let sub_mean = subset.total_bytes() as f64 / subset.len() as f64;
        assert!(
            (sub_mean - master_mean).abs() / master_mean < 0.10,
            "means diverge: {master_mean} vs {sub_mean}"
        );
    }

    #[test]
    fn extraction_is_a_subset() {
        let master = RulesetGenerator::new().generate(300);
        let subset = extract_preserving(&master, 100, 3);
        let master_strings: std::collections::HashSet<&[u8]> =
            master.iter().map(|(_, p)| p).collect();
        for (_, p) in subset.iter() {
            assert!(master_strings.contains(p));
        }
    }

    #[test]
    fn extraction_deterministic_per_seed() {
        let master = RulesetGenerator::new().generate(300);
        assert_eq!(
            extract_preserving(&master, 120, 9),
            extract_preserving(&master, 120, 9)
        );
        assert_ne!(
            extract_preserving(&master, 120, 9),
            extract_preserving(&master, 120, 10)
        );
    }

    #[test]
    fn full_extraction_is_identity_sized() {
        let master = RulesetGenerator::new().generate(100);
        let all = extract_preserving(&master, 100, 1);
        assert_eq!(all.len(), 100);
    }

    #[test]
    fn char_extraction_hits_budget() {
        let master = RulesetGenerator::new().generate(3000);
        let sub = extract_chars(&master, 19_124, 11);
        let bytes = sub.total_bytes();
        // Within 2% under budget (never over by construction loop).
        assert!(bytes <= 19_124 + 200, "bytes {bytes}");
        assert!(bytes as f64 > 19_124.0 * 0.95, "bytes {bytes}");
    }
}
