//! Snort-like synthetic ruleset generation.
//!
//! The paper's strings are Snort *content* patterns: byte strings extracted
//! by hand from exploits — HTTP requests, path traversals, SQL fragments,
//! shellcode, format-string probes, protocol keywords and raw binary
//! signatures. The generator reproduces the two structural properties the
//! DATE 2010 evaluation depends on:
//!
//! 1. **length distribution** — drawn from [`LengthDistribution`]
//!    (Figure 6); and
//! 2. **prefix statistics** — strings cluster into families sharing short
//!    stems ("GET /", "/cgi-bin/", `0x90 0x90 …`), which gives the
//!    automaton its characteristic few-dozen depth-1 states and
//!    popularity-skewed depth-2/3 states ("the content varies widely
//!    between the strings", §III.B).

use crate::distribution::LengthDistribution;
use dpi_automaton::PatternSet;
use rand::prelude::*;
use rand::rngs::StdRng;

/// Default RNG seed for the builtin rulesets (fixed so that every build of
/// the repository reproduces identical tables).
pub const DEFAULT_SEED: u64 = 0x2010_DA7E;

/// Suffix alphabet of a string family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Alphabet {
    /// Printable ASCII mix (letters, digits, URL/protocol punctuation).
    Text,
    /// Any byte value — raw binary signatures.
    Binary,
}

impl Alphabet {
    fn sample(self, rng: &mut StdRng) -> u8 {
        const TEXT: &[u8] =
            b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-/%=&?+:;()[]<> ";
        match self {
            Alphabet::Text => *TEXT.choose(rng).expect("non-empty"),
            Alphabet::Binary => rng.gen(),
        }
    }
}

/// Branch-factor cap applied immediately after a stem.
///
/// The byte following a stem is drawn from a 12-value pool derived from the
/// stem, so no trie state fans out to more children than a hardware state
/// can store pointers for (13). Real Snort content strings show the same
/// property — the paper's engines "handle states with up to 13 transition
/// pointers, which is adequate" (§IV.A) — whereas unconstrained random
/// suffixes would synthesize hub states far wider than anything in Snort.
const POOL_SIZE: usize = 12;

fn stem_pool(stem: &[u8], alphabet: Alphabet, salt: u64) -> Vec<u8> {
    // Small deterministic PRNG keyed by the stem bytes.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ salt;
    for &b in stem {
        h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
    }
    let mut pool = Vec::with_capacity(POOL_SIZE);
    const TEXT: &[u8] =
        b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-/%=&?+:;()[]<> ";
    while pool.len() < POOL_SIZE {
        h = h.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let b = match alphabet {
            Alphabet::Text => TEXT[(h >> 33) as usize % TEXT.len()],
            Alphabet::Binary => (h >> 33) as u8,
        };
        if !pool.contains(&b) {
            pool.push(b);
        }
    }
    pool
}

/// A family of related content strings sharing a stem and an alphabet.
#[derive(Debug, Clone)]
struct Family {
    /// Shared leading bytes (possibly truncated for short strings).
    stems: &'static [&'static [u8]],
    /// Bytes used to extend past the stem.
    alphabet: Alphabet,
    /// Relative weight of the family.
    weight: f64,
}

fn families() -> Vec<Family> {
    // Weights tuned so that stem-sharing families hold ≈ 25% of strings,
    // giving ≈ 8% byte-level prefix sharing overall — the level implied by
    // Table II's states-per-string ratio (see DESIGN.md §2).
    vec![
        Family {
            stems: &[
                b"GET /", b"POST /", b"HEAD /", b"OPTIONS /", b"Host: ", b"User-Agent: ",
                b"Content-Type: ", b"Authorization: ",
            ],
            alphabet: Alphabet::Text,
            weight: 6.0,
        },
        Family {
            stems: &[
                b"/cgi-bin/", b"/scripts/", b"/msadc/", b"/iisadmpwd/", b"/../../", b"/etc/passwd",
                b"/bin/sh", b"/usr/bin/",
            ],
            alphabet: Alphabet::Text,
            weight: 5.0,
        },
        Family {
            stems: &[
                b"SELECT ", b"UNION ", b"INSERT ", b"DROP TABLE ", b"xp_cmdshell", b"EXEC ",
                b"' OR 1=1",
            ],
            alphabet: Alphabet::Text,
            weight: 3.0,
        },
        Family {
            stems: &[b"USER ", b"PASS ", b"SITE ", b"RETR ", b"CWD ", b"MKD ", b"EXPN ", b"VRFY "],
            alphabet: Alphabet::Text,
            weight: 3.0,
        },
        Family {
            stems: &[b"%n%n", b"%x%x", b"%s%s%s", b"AAAA", b"%u9090"],
            alphabet: Alphabet::Text,
            weight: 2.0,
        },
        Family {
            // Shellcode-ish: NOP sleds, jmp/call stubs, int 0x80 sequences.
            stems: &[
                &[0x90, 0x90, 0x90, 0x90],
                &[0xeb, 0x1f, 0x5e, 0x89],
                &[0x6a, 0x0b, 0x58, 0x99],
                &[0xcd, 0x80, 0x31, 0xdb],
                &[0xe8, 0xff, 0xff, 0xff],
            ],
            alphabet: Alphabet::Binary,
            weight: 6.0,
        },
        Family {
            // Raw binary signatures: unrelated contents, but first bytes
            // cluster on common opcodes/markers (Snort content strings do
            // not start with arbitrary bytes — Table II reports only 67–125
            // distinct depth-1 states).
            stems: BIN_FIRST,
            alphabet: Alphabet::Binary,
            weight: 40.0,
        },
        Family {
            // Free text keywords: unrelated contents, letter-ish starts.
            stems: TEXT_FIRST,
            alphabet: Alphabet::Text,
            weight: 35.0,
        },
    ]
}

/// One-byte stems for the raw-binary family: common opcode, marker and
/// header bytes seen at the start of binary signatures.
///
/// Deliberately **disjoint** from every other family's first byte (the
/// multi-byte stems' starts, the shellcode stems' starts, and
/// [`TEXT_FIRST`]): a depth-1 state whose children came from two unrelated
/// families would fan out beyond the 13 pointers a hardware state can
/// store. Real Snort start bytes partition the same way — each protocol's
/// signatures own their leading byte.
const BIN_FIRST: &[&[u8]] = &[
    &[0x00], &[0x01], &[0x02], &[0x04], &[0x05], &[0x06], &[0x0b], &[0x0d], &[0x10], &[0x17],
    &[0x1b], &[0x1f], &[0x7f], &[0x80], &[0x83], &[0x85], &[0x8b], &[0x9a], &[0xa4], &[0xb1],
    &[0xbe], &[0xc3], &[0xcc], &[0xd0], &[0xd8], &[0xf4],
];

/// One-byte stems for the free-text family: letter/symbol starts that
/// dominate textual Snort content strings, disjoint from the starts of
/// the protocol/path/SQL/format/shellcode stems and from [`BIN_FIRST`].
const TEXT_FIRST: &[&[u8]] = &[
    b"a", b"b", b"c", b"d", b"e", b"f", b"g", b"h", b"i", b"k", b"l", b"m", b"n", b"o", b"p",
    b"q", b"r", b"s", b"t", b"u", b"v", b"w", b"y", b"z", b"B", b"F", b"J", b"K", b"L", b"N",
    b"Q", b"T", b"W", b"X", b"Y", b"Z", b"0", b"1", b"2", b"3", b"<", b"=",
];

/// Configurable generator for Snort-like rulesets.
#[derive(Debug, Clone)]
pub struct RulesetGenerator {
    distribution: LengthDistribution,
    seed: u64,
}

impl RulesetGenerator {
    /// Failed uniqueness draws at one length before the generator deems
    /// the length saturated and spills the string to the next longer
    /// length (see [`RulesetGenerator::generate`]). High enough that no
    /// unsaturated length ever comes close (measured worst case is two
    /// orders of magnitude lower), so spilling cannot perturb rulesets
    /// that fit their length spaces.
    pub const SPILL_ATTEMPTS: usize = 10_000;

    /// Generator with the paper's Figure 6 distribution and the default
    /// seed.
    pub fn new() -> RulesetGenerator {
        RulesetGenerator {
            distribution: LengthDistribution::paper_figure6(),
            seed: DEFAULT_SEED,
        }
    }

    /// Replaces the length distribution.
    pub fn with_distribution(mut self, distribution: LengthDistribution) -> Self {
        self.distribution = distribution;
        self
    }

    /// Replaces the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generates exactly `n` unique strings whose length histogram follows
    /// the distribution (largest-remainder apportionment, so repeated calls
    /// with the same parameters are byte-identical).
    ///
    /// **Saturation spill** (what makes 25k–100k-rule sets possible): the
    /// family structure admits only ~85 distinct starts, so short lengths
    /// have small string spaces — at 100k rules Figure 6 demands more
    /// 1- and 2-byte strings than can exist. When a length fails to yield
    /// a fresh string after [`RulesetGenerator::SPILL_ATTEMPTS`] draws it
    /// is marked saturated and the string spills to the next longer
    /// length, deterministically. At sizes where no length saturates
    /// (every size the pinned-histogram tests cover) the output is
    /// byte-identical to the pre-spill generator, because the spill path
    /// only runs where the old code panicked.
    pub fn generate(&self, n: usize) -> PatternSet {
        let mut rng = StdRng::seed_from_u64(self.seed ^ n as u64);
        let fams = families();
        let fam_total: f64 = fams.iter().map(|f| f.weight).sum();
        let counts = self.distribution.counts_for(n);
        let mut seen = std::collections::HashSet::new();
        let mut saturated = std::collections::HashSet::new();
        let mut out: Vec<Vec<u8>> = Vec::with_capacity(n);
        for (len, count) in counts {
            for _ in 0..count {
                let mut len = len;
                // A length already proven saturated is skipped outright:
                // burning SPILL_ATTEMPTS draws per string again would
                // change nothing (the space is full) and cost minutes at
                // the 100k scale.
                while saturated.contains(&len) {
                    len += 1;
                }
                let mut attempt = 0usize;
                loop {
                    let s = {
                        // Pick a family by weight.
                        let mut pick = rng.gen_range(0.0..fam_total);
                        let fam = fams
                            .iter()
                            .find(|f| {
                                if pick < f.weight {
                                    true
                                } else {
                                    pick -= f.weight;
                                    false
                                }
                            })
                            .expect("weights cover the range");
                        let stem = fam.stems[rng.gen_range(0..fam.stems.len())];
                        let mut s: Vec<u8> = stem.iter().copied().take(len).collect();
                        // The first two bytes past the stem come from the
                        // prefix's 12-value pool (bounds every hub state's
                        // fan-out; see `stem_pool`), the rest from the full
                        // alphabet.
                        let pooled_until = (stem.len() + 2).min(len);
                        while s.len() < pooled_until {
                            let pool = stem_pool(&s, fam.alphabet, self.seed);
                            s.push(*pool.choose(&mut rng).expect("non-empty pool"));
                        }
                        while s.len() < len {
                            s.push(fam.alphabet.sample(&mut rng));
                        }
                        s
                    };
                    if seen.insert(s.clone()) {
                        out.push(s);
                        break;
                    }
                    attempt += 1;
                    if attempt >= Self::SPILL_ATTEMPTS {
                        // The space at this length is (effectively)
                        // exhausted: spill to the next length, which has
                        // at least a 12× larger space (the suffix pool),
                        // and remember the saturation so later strings
                        // skip straight past it.
                        saturated.insert(len);
                        len += 1;
                        attempt = 0;
                        assert!(
                            len <= dpi_automaton::MAX_PATTERN_LEN,
                            "cannot generate {n} unique strings: every length saturated"
                        );
                    }
                }
            }
        }
        // Shuffle so pattern ids don't correlate with length (the paper's
        // strings arrive in rule order, not length order).
        out.shuffle(&mut rng);
        PatternSet::new(out).expect("generator emits unique non-empty strings")
    }
}

impl Default for RulesetGenerator {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_count_unique() {
        let set = RulesetGenerator::new().generate(500);
        assert_eq!(set.len(), 500);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = RulesetGenerator::new().generate(200);
        let b = RulesetGenerator::new().generate(200);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = RulesetGenerator::new().generate(200);
        let b = RulesetGenerator::new().with_seed(42).generate(200);
        assert_ne!(a, b);
    }

    #[test]
    fn scales_to_100k_rules_with_absolute_short_bins() {
        // Scaling Figure 6 to 100k rules must NOT scale the 1–2-byte
        // bins with it: those bins are absolute (a snapshot artifact,
        // capped by `counts_for`), so the synthesized set carries the
        // snapshot's ~20/60 short strings — not a third of the byte
        // alphabet — and the long tail absorbs the difference.
        let n = 100_000;
        let set = RulesetGenerator::new().generate(n);
        assert_eq!(set.len(), n, "all strings generated and unique");

        let mut hist = std::collections::HashMap::new();
        for (_, p) in set.iter() {
            *hist.entry(p.len()).or_insert(0usize) += 1;
        }
        let ones = hist.get(&1).copied().unwrap_or(0);
        let twos = hist.get(&2).copied().unwrap_or(0);
        assert!(ones <= 20, "len-1 bin must stay at snapshot scale, got {ones}");
        assert!(twos <= 60, "len-2 bin must stay at snapshot scale, got {twos}");
        let expected = LengthDistribution::paper_figure6().counts_for(n);
        for &(len, count) in &expected {
            let got = hist.get(&len).copied().unwrap_or(0);
            if got < count {
                // Saturated length: it must actually be full relative to
                // its tiny string space, not arbitrarily short-changed.
                assert!(len <= 4, "only short lengths may saturate, {len} did");
            }
        }
    }

    #[test]
    fn saturated_lengths_spill_to_longer_ones() {
        // A distribution that demands more short strings than the
        // family-clustered space admits (len-3 asks for ~3k of a space
        // with ~85 starts × limited stems) must spill the excess to
        // longer lengths instead of panicking.
        let dist = LengthDistribution::from_weights([(3, 900.0), (12, 100.0)]);
        let n = 20_000;
        let set = RulesetGenerator::new().with_distribution(dist).generate(n);
        assert_eq!(set.len(), n, "all strings generated and unique");
        let mut hist = std::collections::HashMap::new();
        for (_, p) in set.iter() {
            *hist.entry(p.len()).or_insert(0usize) += 1;
        }
        let threes = hist.get(&3).copied().unwrap_or(0);
        assert!(threes < 18_000, "len-3 must saturate below its demand");
        let spilled: usize = hist
            .iter()
            .filter(|&(&l, _)| l != 3 && l != 12)
            .map(|(_, &c)| c)
            .sum();
        assert!(spilled > 0, "the spill path must engage");
    }

    #[test]
    fn scale_25k_preserves_prefix_structure() {
        let set = RulesetGenerator::new().generate(25_000);
        assert_eq!(set.len(), 25_000);
        // Start-byte clustering survives scale: the families cap the
        // distinct depth-1 states regardless of ruleset size.
        let firsts: std::collections::HashSet<u8> = set.iter().map(|(_, p)| p[0]).collect();
        assert!(
            (50..=130).contains(&firsts.len()),
            "{} unique start bytes at 25k",
            firsts.len()
        );
        // Sharing stays Snort-mild: most bytes still become distinct
        // trie states.
        let trie = dpi_automaton::Trie::build(&set);
        let total_bytes = set.total_bytes();
        assert!((trie.len() - 1) as f64 > 0.80 * total_bytes as f64);
    }

    #[test]
    fn spill_does_not_perturb_unsaturated_sizes() {
        // The sizes every pinned test uses stay byte-identical: at these
        // scales no length saturates, so the spill path never runs.
        // (Spot-checked here against the known histogram property; the
        // pinned tests above are the real guard.)
        for &n in &[500usize, 2588] {
            let set = RulesetGenerator::new().generate(n);
            let expected = LengthDistribution::paper_figure6().counts_for(n);
            let mut hist = std::collections::HashMap::new();
            for (_, p) in set.iter() {
                *hist.entry(p.len()).or_insert(0usize) += 1;
            }
            for (len, count) in expected {
                assert_eq!(
                    hist.get(&len).copied().unwrap_or(0),
                    count,
                    "n={n} len={len} must hold its exact apportionment"
                );
            }
        }
    }

    #[test]
    fn length_histogram_follows_distribution() {
        let set = RulesetGenerator::new().generate(1000);
        let lengths: Vec<usize> = set.iter().map(|(_, p)| p.len()).collect();
        let expected = LengthDistribution::paper_figure6().counts_for(1000);
        let mut hist = std::collections::HashMap::new();
        for l in lengths {
            *hist.entry(l).or_insert(0usize) += 1;
        }
        for (len, count) in expected {
            assert_eq!(hist.get(&len).copied().unwrap_or(0), count, "length {len}");
        }
    }

    #[test]
    fn prefix_sharing_exists() {
        // Many strings share family stems, so the trie must be noticeably
        // smaller than the sum of lengths.
        let set = RulesetGenerator::new().generate(600);
        let trie = dpi_automaton::Trie::build(&set);
        let total_bytes = set.total_bytes();
        assert!(
            trie.len() - 1 < total_bytes,
            "trie {} should share prefixes below {total_bytes} bytes",
            trie.len()
        );
        // ... but sharing stays mild (Snort-like): 85–98% of bytes become
        // distinct states.
        assert!((trie.len() - 1) as f64 > 0.85 * total_bytes as f64);
    }

    #[test]
    fn unique_start_bytes_in_paper_band() {
        // Table II: 67–125 distinct depth-1 states across its rulesets.
        for &n in &[500usize, 2588] {
            let set = RulesetGenerator::new().generate(n);
            let firsts: std::collections::HashSet<u8> =
                set.iter().map(|(_, p)| p[0]).collect();
            assert!(
                (50..=130).contains(&firsts.len()),
                "{} unique start bytes for {n} strings",
                firsts.len()
            );
        }
    }

    #[test]
    fn mean_states_per_string_matches_table2_band() {
        let set = RulesetGenerator::new().generate(634);
        let trie = dpi_automaton::Trie::build(&set);
        let per_string = trie.len() as f64 / 634.0;
        // Paper: 11,796 / 634 ≈ 18.6.
        assert!(
            (14.0..23.0).contains(&per_string),
            "states per string {per_string}"
        );
    }
}
