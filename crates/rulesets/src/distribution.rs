//! String-length distribution of the paper's rulesets (Figure 6).
//!
//! The paper characterizes its Snort snapshot by the histogram of unique
//! string lengths: a peak between 4 and 13 bytes, a long tail, and a "50+"
//! bucket. The real Snort ruleset is not redistributable, so this module
//! carries a digitized weight table with the same shape; all synthetic
//! rulesets in this crate draw lengths from it. The resulting automata
//! reproduce the paper's states-per-string ratio (≈ 17–18.7 states per
//! string across Table II's rulesets), which is what the memory-reduction
//! results actually depend on.

/// The ruleset sizes evaluated in the paper (Figure 6 / Table II).
pub const PAPER_RULESET_SIZES: [usize; 6] = [500, 634, 1204, 1603, 2588, 6275];

/// Character count of the Table III comparison ruleset (matching the
/// Tuck et al. test set).
pub const TABLE3_CHAR_COUNT: usize = 19_124;

/// A discrete distribution over string lengths.
///
/// Weights are relative (they need not sum to anything in particular);
/// [`LengthDistribution::counts_for`] converts them to exact integer counts
/// for a given ruleset size using largest-remainder rounding, so every
/// derived ruleset has the *same* character distribution — the property the
/// paper's extraction program preserves.
#[derive(Debug, Clone, PartialEq)]
pub struct LengthDistribution {
    /// `(length, weight)` pairs, strictly increasing lengths, weights > 0.
    weights: Vec<(usize, f64)>,
}

impl LengthDistribution {
    /// Builds a distribution from `(length, weight)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `pairs` is empty, lengths are not strictly increasing,
    /// any length is zero, or any weight is non-positive.
    pub fn from_weights<I>(pairs: I) -> LengthDistribution
    where
        I: IntoIterator<Item = (usize, f64)>,
    {
        let weights: Vec<(usize, f64)> = pairs.into_iter().collect();
        assert!(!weights.is_empty(), "distribution must be non-empty");
        for w in weights.windows(2) {
            assert!(w[0].0 < w[1].0, "lengths must be strictly increasing");
        }
        for &(len, weight) in &weights {
            assert!(len > 0, "length zero is not a valid pattern length");
            assert!(weight > 0.0, "weights must be positive");
        }
        LengthDistribution { weights }
    }

    /// The digitized Figure 6 distribution (6,275-string master shape):
    /// sparse below 4 bytes, a broad peak over 4–13, a declining tail and a
    /// sizeable 50+ bucket (spread over 50–110 with geometric decay).
    pub fn paper_figure6() -> LengthDistribution {
        let mut pairs: Vec<(usize, f64)> = vec![
            (1, 20.0),
            (2, 60.0),
            (3, 180.0),
            (4, 420.0),
            (5, 430.0),
            (6, 425.0),
            (7, 415.0),
            (8, 405.0),
            (9, 395.0),
            (10, 385.0),
            (11, 375.0),
            (12, 365.0),
            (13, 355.0),
            (14, 250.0),
            (15, 220.0),
            (16, 195.0),
            (17, 175.0),
            (18, 160.0),
            (19, 145.0),
            (20, 132.0),
            (21, 120.0),
            (22, 110.0),
            (23, 100.0),
            (24, 92.0),
            (25, 85.0),
            (26, 78.0),
            (27, 72.0),
            (28, 66.0),
            (29, 61.0),
            (30, 56.0),
            (31, 52.0),
            (32, 48.0),
            (33, 44.0),
            (34, 41.0),
            (35, 38.0),
            (36, 35.0),
            (37, 32.0),
            (38, 30.0),
            (39, 28.0),
            (40, 26.0),
            (41, 24.0),
            (42, 22.0),
            (43, 21.0),
            (44, 19.0),
            (45, 18.0),
            (46, 17.0),
            (47, 16.0),
            (48, 15.0),
            (49, 14.0),
        ];
        // "50+" bucket: ~690 weight spread over 50..=110 with geometric
        // decay, mean ≈ 71 — this is what lifts the overall mean length to
        // the ≈ 19 bytes that, together with ≈ 8% prefix sharing, yields
        // the paper's ≈ 17.4 states per string (Table II).
        let mut w = 30.0;
        for len in 50..=110usize {
            pairs.push((len, w));
            w *= 0.96;
        }
        LengthDistribution::from_weights(pairs)
    }

    /// The `(length, weight)` pairs.
    pub fn weights(&self) -> &[(usize, f64)] {
        &self.weights
    }

    /// Scales every length by `factor` (rounding, merging lengths that
    /// collide), keeping weights. Used by capacity studies such as the
    /// M144K experiment, which needs rulesets whose state count — not
    /// string count — stresses the device.
    ///
    /// # Panics
    ///
    /// Panics unless `factor` is finite and at least 1/minimum-length
    /// (every scaled length must stay ≥ 1).
    pub fn scale_lengths(&self, factor: f64) -> LengthDistribution {
        assert!(factor.is_finite() && factor > 0.0, "factor must be positive");
        let mut scaled: Vec<(usize, f64)> = self
            .weights
            .iter()
            .map(|&(l, w)| ((l as f64 * factor).round().max(1.0) as usize, w))
            .collect();
        scaled.sort_by_key(|&(l, _)| l);
        let mut merged: Vec<(usize, f64)> = Vec::with_capacity(scaled.len());
        for (l, w) in scaled {
            match merged.last_mut() {
                Some(last) if last.0 == l => last.1 += w,
                _ => merged.push((l, w)),
            }
        }
        LengthDistribution::from_weights(merged)
    }

    /// Smallest and largest representable lengths.
    pub fn length_range(&self) -> (usize, usize) {
        (
            self.weights.first().expect("non-empty").0,
            self.weights.last().expect("non-empty").0,
        )
    }

    /// Mean string length under the distribution.
    pub fn mean(&self) -> f64 {
        let total: f64 = self.weights.iter().map(|&(_, w)| w).sum();
        let acc: f64 = self.weights.iter().map(|&(l, w)| l as f64 * w).sum();
        acc / total
    }

    /// Exact per-length counts for a ruleset of `n` strings, using
    /// largest-remainder apportionment (counts sum to exactly `n`).
    ///
    /// **Short bins are absolute, not proportional.** The weights are a
    /// histogram of one real ruleset snapshot, and 1–2-byte content
    /// strings live in a 256/64k-bounded space that real rulesets do
    /// not fill linearly as they grow — a rule author writes a 1-byte
    /// content a handful of times ever, not once per thousand rules.
    /// Scaling the snapshot past its own size therefore holds every
    /// length ≤ 2 bin at its snapshot count (its weight — the weights
    /// are calibrated so `counts_for(snapshot_total)` reproduces the
    /// snapshot) and apportions the excess over the longer bins. Below
    /// snapshot scale the caps never bind and the split is purely
    /// proportional.
    pub fn counts_for(&self, n: usize) -> Vec<(usize, usize)> {
        let total: f64 = self.weights.iter().map(|&(_, w)| w).sum();
        // Fix any short bin whose proportional share exceeds its
        // snapshot count, then apportion the rest over the free bins.
        let fixed: Vec<Option<usize>> = self
            .weights
            .iter()
            .map(|&(len, w)| {
                let cap = w.round() as usize;
                (len <= 2 && w / total * n as f64 > cap as f64).then_some(cap)
            })
            .collect();
        let fixed_sum: usize = fixed.iter().flatten().sum();
        let free_total: f64 = self
            .weights
            .iter()
            .zip(&fixed)
            .filter(|(_, f)| f.is_none())
            .map(|(&(_, w), _)| w)
            .sum();
        let free_n = n - fixed_sum;
        let mut floors: Vec<(usize, usize, f64)> = self
            .weights
            .iter()
            .zip(&fixed)
            .map(|(&(len, w), f)| match f {
                Some(cap) => (len, *cap, 0.0),
                None => {
                    let exact = w / free_total * free_n as f64;
                    (len, exact.floor() as usize, exact - exact.floor())
                }
            })
            .collect();
        let assigned: usize = floors.iter().map(|&(_, f, _)| f).sum();
        let mut remaining = n - assigned;
        // Distribute the remainder to the largest fractional parts.
        let mut by_frac: Vec<usize> = (0..floors.len()).collect();
        by_frac.sort_by(|&a, &b| {
            floors[b]
                .2
                .partial_cmp(&floors[a].2)
                .expect("weights are finite")
        });
        for &i in &by_frac {
            if remaining == 0 {
                break;
            }
            floors[i].1 += 1;
            remaining -= 1;
        }
        floors
            .into_iter()
            .map(|(len, count, _)| (len, count))
            .filter(|&(_, count)| count > 0)
            .collect()
    }

    /// Histogram of the lengths present in `lengths`, bucketed like
    /// Figure 6 (1..=49 individually, 50+ pooled). Returns
    /// `(bucket_label_start, count)` pairs.
    pub fn figure6_histogram(lengths: &[usize]) -> Vec<(usize, usize)> {
        let mut buckets = vec![0usize; 51];
        for &l in lengths {
            let idx = l.min(50);
            buckets[idx] += 1;
        }
        buckets.into_iter().enumerate().skip(1).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure6_shape_peaks_between_4_and_13() {
        let d = LengthDistribution::paper_figure6();
        let w = d.weights();
        let weight_of = |len: usize| {
            w.iter()
                .find(|&&(l, _)| l == len)
                .map(|&(_, wt)| wt)
                .unwrap_or(0.0)
        };
        // The peak bucket dominates both the short head and the tail.
        assert!(weight_of(5) > weight_of(1) * 10.0);
        assert!(weight_of(5) > weight_of(20) * 2.0);
        assert!(weight_of(13) > weight_of(14));
    }

    #[test]
    fn figure6_mean_matches_paper_states_per_string() {
        // Table II implies ≈ 17.5–19 states per string (e.g. 11,796 / 634);
        // our distribution's mean length must land in that band.
        let d = LengthDistribution::paper_figure6();
        let m = d.mean();
        assert!((17.0..20.0).contains(&m), "mean length {m} out of band");
    }

    #[test]
    fn counts_sum_exactly_for_all_paper_sizes() {
        let d = LengthDistribution::paper_figure6();
        for &n in &PAPER_RULESET_SIZES {
            let counts = d.counts_for(n);
            let total: usize = counts.iter().map(|&(_, c)| c).sum();
            assert_eq!(total, n, "counts must apportion exactly to {n}");
        }
    }

    #[test]
    fn counts_scale_proportionally() {
        let d = LengthDistribution::paper_figure6();
        let big = d.counts_for(6275);
        let small = d.counts_for(500);
        let get = |v: &[(usize, usize)], len: usize| {
            v.iter().find(|&&(l, _)| l == len).map(|&(_, c)| c).unwrap_or(0)
        };
        // Ratio preserved within rounding for the peak bucket.
        let ratio = get(&big, 5) as f64 / get(&small, 5).max(1) as f64;
        assert!((ratio - 6275.0 / 500.0).abs() < 2.0, "ratio {ratio}");
    }

    #[test]
    fn histogram_pools_fifty_plus() {
        let lengths = [1, 4, 50, 77, 110, 4];
        let h = LengthDistribution::figure6_histogram(&lengths);
        assert_eq!(h.len(), 50);
        let count_at = |len: usize| h.iter().find(|&&(l, _)| l == len).unwrap().1;
        assert_eq!(count_at(4), 2);
        assert_eq!(count_at(50), 3); // 50, 77, 110 pooled
    }

    #[test]
    fn scaling_doubles_mean() {
        let d = LengthDistribution::paper_figure6();
        let d2 = d.scale_lengths(2.0);
        assert!((d2.mean() - 2.0 * d.mean()).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted_lengths() {
        let _ = LengthDistribution::from_weights([(5, 1.0), (3, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "length zero")]
    fn rejects_zero_length() {
        let _ = LengthDistribution::from_weights([(0, 1.0)]);
    }
}
