//! Packet and traffic generation for throughput and detection experiments.
//!
//! Three profiles cover the evaluation's needs:
//!
//! - **clean** — protocol-flavoured background traffic (HTTP-ish text mixed
//!   with binary payload), no deliberately embedded patterns;
//! - **infected** — clean traffic with known pattern occurrences injected at
//!   recorded offsets (ground truth for end-to-end detection tests);
//! - **adversarial** — input crafted against a fail-pointer Aho-Corasick
//!   automaton to maximize fail-chain walking. The paper's architecture is
//!   immune by construction ("This prevents attacks being constructed which
//!   flood a system with packets it performs poorly on", §I); the
//!   `adversarial` experiment quantifies what the immunity is worth.

use dpi_automaton::{Nfa, PatternId, PatternSet, StateId};
use rand::prelude::*;
use rand::rngs::StdRng;

/// A generated packet plus the ground truth of injected occurrences.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Payload bytes.
    pub payload: Vec<u8>,
    /// Injected occurrences as `(pattern, end_offset)` pairs — a subset of
    /// what a matcher will report (background bytes may match patterns by
    /// chance; matchers must report a **superset** of this list).
    pub injected: Vec<(PatternId, usize)>,
}

/// Traffic generator with a fixed seed.
#[derive(Debug, Clone)]
pub struct TrafficGenerator {
    rng: StdRng,
}

const HTTP_CHATTER: &[&[u8]] = &[
    b"GET /index.html HTTP/1.1\r\n",
    b"Host: www.example.com\r\n",
    b"Accept: text/html,application/xhtml\r\n",
    b"Connection: keep-alive\r\n\r\n",
    b"HTTP/1.1 200 OK\r\nContent-Length: 512\r\n",
];

impl TrafficGenerator {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> TrafficGenerator {
        TrafficGenerator {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// One clean packet of exactly `len` bytes.
    pub fn clean_packet(&mut self, len: usize) -> Packet {
        let mut payload = Vec::with_capacity(len);
        while payload.len() < len {
            if self.rng.gen_bool(0.6) {
                let chunk = HTTP_CHATTER[self.rng.gen_range(0..HTTP_CHATTER.len())];
                payload.extend_from_slice(chunk);
            } else {
                let n = self.rng.gen_range(8..64usize);
                for _ in 0..n {
                    payload.push(self.rng.gen());
                }
            }
        }
        payload.truncate(len);
        Packet {
            payload,
            injected: Vec::new(),
        }
    }

    /// A clean packet with `count` occurrences of patterns from `set`
    /// injected at random non-overlapping offsets. Ground truth offsets are
    /// recorded in the returned [`Packet::injected`] (sorted by end offset).
    ///
    /// # Panics
    ///
    /// Panics if the packet cannot hold `count` occurrences of the chosen
    /// patterns.
    pub fn infected_packet(&mut self, len: usize, set: &PatternSet, count: usize) -> Packet {
        let mut packet = self.clean_packet(len);
        let mut occupied: Vec<(usize, usize)> = Vec::new();
        let mut injected = Vec::new();
        let mut attempts = 0usize;
        while injected.len() < count {
            attempts += 1;
            assert!(
                attempts < 10_000,
                "cannot place {count} patterns in a {len}-byte packet"
            );
            let id = PatternId(self.rng.gen_range(0..set.len() as u32));
            let p = set.pattern(id);
            if p.len() > len {
                continue;
            }
            let start = self.rng.gen_range(0..=len - p.len());
            let range = (start, start + p.len());
            if occupied
                .iter()
                .any(|&(s, e)| range.0 < e && s < range.1)
            {
                continue;
            }
            occupied.push(range);
            packet.payload[range.0..range.1].copy_from_slice(p);
            injected.push((id, range.1));
        }
        injected.sort_by_key(|&(_, end)| end);
        packet.injected = injected;
        packet
    }

    /// A clean stream shaped like real transport-encrypted traffic: a
    /// short TLS handshake preamble followed by `ApplicationData`
    /// records — 5-byte headers (`0x17 0x03 0x03` + big-endian body
    /// length) framing high-entropy bodies of 512 bytes to 16 KiB.
    ///
    /// This is the honest "clean" workload for fast-path claims: unlike
    /// [`TrafficGenerator::clean_packet`] (60 % HTTP chatter whose
    /// literal header text keeps brushing rule stems), encrypted spans
    /// have no protocol text for a ruleset to graze, so long runs stay
    /// on whatever clean-traffic lane an engine has (anchor skipping,
    /// SIMD classification, a pre-classifier that never flags). Most
    /// bytes on a modern link look like this, not like plaintext HTTP.
    ///
    /// The stream is exactly `len` bytes and injects nothing; combine
    /// with [`TrafficGenerator::infected_packet`]-style injection by
    /// overwriting ranges if ground-truth occurrences are needed.
    pub fn tls_stream(&mut self, len: usize) -> Packet {
        let mut payload = Vec::with_capacity(len);
        // Handshake preamble: one ClientHello-shaped record (type 0x16,
        // TLS 1.0 legacy version on the record layer, random session
        // and cipher bytes). Realistic links carry a few plaintext
        // frames before the encrypted bulk begins.
        if len >= 8 {
            let body = self.rng.gen_range(64..=192usize).min(len - 5);
            payload.extend_from_slice(&[0x16, 0x03, 0x01]);
            payload.extend_from_slice(&(body as u16).to_be_bytes());
            payload.push(0x01); // ClientHello
            for _ in 1..body {
                payload.push(self.rng.gen());
            }
        }
        // Encrypted bulk: ApplicationData records with long
        // high-entropy bodies.
        while payload.len() < len {
            let remaining = len - payload.len();
            let body = self.rng.gen_range(512..=16_384usize).min(remaining.saturating_sub(5).max(1));
            payload.extend_from_slice(&[0x17, 0x03, 0x03]);
            payload.extend_from_slice(&(body as u16).to_be_bytes());
            for _ in 0..body {
                payload.push(self.rng.gen());
            }
        }
        payload.truncate(len);
        Packet {
            payload,
            injected: Vec::new(),
        }
    }

    /// A burst of packets under one profile.
    pub fn packets(
        &mut self,
        n: usize,
        len: usize,
        set: &PatternSet,
        injections_per_packet: usize,
    ) -> Vec<Packet> {
        (0..n)
            .map(|_| {
                if injections_per_packet == 0 {
                    self.clean_packet(len)
                } else {
                    self.infected_packet(len, set, injections_per_packet)
                }
            })
            .collect()
    }
}

/// How a payload is chopped into packet-sized chunks for streaming-scan
/// experiments (used by [`TrafficGenerator::chop_points`]).
///
/// Streaming correctness is only interesting at *bad* boundaries, so the
/// profiles deliberately include the shapes a payload-at-once scanner
/// gets wrong: segments cut mid-pattern and degenerate one-byte packets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChopProfile {
    /// Fixed-size segments (e.g. a 1,500-byte MTU).
    Mtu(usize),
    /// One byte per packet — the pathological worst case for any
    /// per-chunk overhead.
    SingleByte,
    /// Segment lengths drawn uniformly from `min..=max`.
    Random {
        /// Minimum segment length (≥ 1).
        min: usize,
        /// Maximum segment length.
        max: usize,
    },
    /// Adversarial: a boundary strictly inside **every** injected
    /// occurrence of [`Packet::injected`], so every ground-truth match
    /// straddles two packets, with `mtu`-sized fill cuts between.
    /// Single-byte patterns cannot be cut and are left whole.
    MidPattern {
        /// Fill segment size between the forced mid-pattern cuts.
        mtu: usize,
    },
}

impl TrafficGenerator {
    /// Chooses cut offsets for `packet`'s payload under `profile`:
    /// a strictly increasing sequence of interior boundaries
    /// (`0 < cut < len`). Feed to [`chop`] to materialize the segments.
    pub fn chop_points(
        &mut self,
        packet: &Packet,
        set: &PatternSet,
        profile: ChopProfile,
    ) -> Vec<usize> {
        let len = packet.payload.len();
        let mut cuts: Vec<usize> = Vec::new();
        match profile {
            ChopProfile::Mtu(mtu) => {
                let mtu = mtu.max(1);
                cuts.extend((1..len.div_ceil(mtu)).map(|i| i * mtu));
            }
            ChopProfile::SingleByte => cuts.extend(1..len),
            ChopProfile::Random { min, max } => {
                let min = min.max(1);
                let max = max.max(min);
                let mut pos = 0usize;
                loop {
                    pos += self.rng.gen_range(min..=max);
                    if pos >= len {
                        break;
                    }
                    cuts.push(pos);
                }
            }
            ChopProfile::MidPattern { mtu } => {
                // One cut strictly inside each injected occurrence.
                for &(id, end) in &packet.injected {
                    let start = end - set.pattern_len(id);
                    if end - start >= 2 {
                        cuts.push(self.rng.gen_range(start + 1..end));
                    }
                }
                // MTU fill between/around the forced cuts.
                let mtu = mtu.max(1);
                cuts.extend((1..len.div_ceil(mtu)).map(|i| i * mtu));
                cuts.sort_unstable();
                cuts.dedup();
                cuts.retain(|&c| c < len);
            }
        }
        cuts
    }

    /// A randomized arrival order for interleaved flows: flow `i`
    /// contributes `chunk_counts[i]` packets, each flow's packets appear
    /// in order, and flows are shuffled against each other — the shape a
    /// flow table sees on real links (and the shape that catches state
    /// leaking between flows).
    pub fn interleave_schedule(&mut self, chunk_counts: &[usize]) -> Vec<usize> {
        let mut remaining: Vec<usize> = chunk_counts.to_vec();
        let total: usize = remaining.iter().sum();
        let mut schedule = Vec::with_capacity(total);
        let mut live: Vec<usize> = (0..remaining.len())
            .filter(|&f| remaining[f] > 0)
            .collect();
        while !live.is_empty() {
            let pick = self.rng.gen_range(0..live.len());
            let flow = live[pick];
            schedule.push(flow);
            remaining[flow] -= 1;
            if remaining[flow] == 0 {
                live.swap_remove(pick);
            }
        }
        schedule
    }

    /// A ready-to-offer service workload: `flows` concurrent flows of
    /// `flow_len` bytes each, segmented in-order into `seg`-byte
    /// segments and interleaved across flows with
    /// [`TrafficGenerator::interleave_schedule`]. Every
    /// `infected_every`-th flow (0 = none) carries
    /// [`TrafficGenerator::infected_packet`] traffic with `injections`
    /// planted occurrences; the rest are
    /// [`TrafficGenerator::clean_packet`] chatter. Returns the arrival
    /// sequence as `(flow, segment)` pairs — the exact shape a
    /// flow-steering ingest loop consumes.
    pub fn service_mix(
        &mut self,
        flows: usize,
        flow_len: usize,
        seg: usize,
        set: &PatternSet,
        infected_every: usize,
        injections: usize,
    ) -> Vec<(usize, Segment)> {
        assert!(seg > 0, "segment size must be positive");
        let payloads: Vec<Vec<u8>> = (0..flows)
            .map(|f| {
                if infected_every > 0 && f % infected_every == 0 {
                    self.infected_packet(flow_len, set, injections).payload
                } else {
                    self.clean_packet(flow_len).payload
                }
            })
            .collect();
        let segmented: Vec<Vec<Segment>> = payloads
            .iter()
            .map(|p| {
                p.chunks(seg)
                    .enumerate()
                    .map(|(i, c)| Segment {
                        seq: (i * seg) as u64,
                        bytes: c.to_vec(),
                    })
                    .collect()
            })
            .collect();
        let counts: Vec<usize> = segmented.iter().map(Vec::len).collect();
        let mut cursors = vec![0usize; flows];
        self.interleave_schedule(&counts)
            .into_iter()
            .map(|flow| {
                let segment = segmented[flow][cursors[flow]].clone();
                cursors[flow] += 1;
                (flow, segment)
            })
            .collect()
    }
}

/// One TCP segment of a generated schedule: the payload bytes and their
/// position in the flow's sequence space (relative byte offset from
/// flow start). Produced by [`TrafficGenerator::segment_schedule`];
/// consumed by a reassembler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// Sequence offset of the first payload byte, relative to flow
    /// start.
    pub seq: u64,
    /// Segment payload.
    pub bytes: Vec<u8>,
}

/// How a chopped payload's segments are scheduled onto the wire —
/// the adversarial transport behaviours a TCP reassembler must survive.
/// Combine with any [`ChopProfile`] (notably
/// [`ChopProfile::MidPattern`], which guarantees cuts *inside* injected
/// pattern occurrences, so every profile here reorders/overlaps/drops
/// mid-pattern).
///
/// Every profile except [`SegmentProfile::Holes`] is
/// **in-order-deliverable**: a reassembler with sufficient budget
/// (≥ the profile's displacement bound, see
/// [`TrafficGenerator::segment_schedule`]) reconstructs the exact
/// original byte stream, so scan results must equal the whole-payload
/// scan byte for byte. `Holes` deliberately loses segments; only
/// matches overlapping the dropped ranges may be lost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentProfile {
    /// Segments in sequence order — the reassembler's no-copy fast
    /// path.
    InOrder,
    /// Segments shuffled within consecutive blocks of `window`
    /// segments: arrival displacement is strictly bounded, so the
    /// schedule is in-order-deliverable under a budget of `window + 1`
    /// max-size segments.
    Reorder {
        /// Shuffle block size in segments (≥ 2 to actually reorder).
        window: usize,
    },
    /// In-order, but every `every`-th segment is followed by a
    /// retransmission of a random earlier segment (identical bytes) —
    /// the duplicate-suppression path.
    Retransmit {
        /// Retransmit cadence in segments (≥ 1).
        every: usize,
    },
    /// Consecutive segment pairs arrive swapped, with the earlier
    /// segment's tail extended up to `extend` bytes into its
    /// successor's range carrying the **true** stream bytes — a
    /// consistent overlap the policy resolves without information loss.
    OverlapConsistent {
        /// Maximum overlap extension in bytes (≥ 1).
        extend: usize,
    },
    /// Like [`SegmentProfile::OverlapConsistent`], but the extension
    /// bytes are **corrupted** (bit-flipped): the overlap content
    /// disagrees with the true bytes that arrived first. Under the
    /// default first-wins policy the true bytes survive — the delivered
    /// stream still equals the original payload — and every such pair
    /// counts an `overlap_conflicts` event (the evasion signature).
    OverlapConflicting {
        /// Maximum overlap extension in bytes (≥ 1).
        extend: usize,
    },
    /// In-order, but every `every`-th segment is dropped entirely —
    /// unfillable holes the reassembler must eventually skip. Matches
    /// overlapping a dropped range may be lost; nothing else may be.
    Holes {
        /// Drop cadence in segments (≥ 2 so some segments survive).
        every: usize,
    },
}

impl TrafficGenerator {
    /// Builds a deterministic adversarial segment schedule: chops
    /// `packet`'s payload with `chop` (mid-pattern cuts included when
    /// the profile asks for them), then arranges the segments per
    /// `profile`. The result is what the wire delivers — feed each
    /// [`Segment`] to a reassembler in order.
    ///
    /// Displacement bound: for every profile except
    /// [`SegmentProfile::Holes`], a reassembler whose per-flow budget is
    /// at least `(window + 1) × max_segment_len` bytes (where `window`
    /// is the reorder block size, 2 for the overlap profiles, 1
    /// otherwise) reconstructs the exact original stream.
    pub fn segment_schedule(
        &mut self,
        packet: &Packet,
        set: &PatternSet,
        chop: ChopProfile,
        profile: SegmentProfile,
    ) -> Vec<Segment> {
        let cuts = self.chop_points(packet, set, chop);
        let pieces = crate::traffic::chop(&packet.payload, &cuts);
        let mut base = Vec::with_capacity(pieces.len());
        let mut seq = 0u64;
        for piece in pieces {
            base.push(Segment {
                seq,
                bytes: piece.to_vec(),
            });
            seq += piece.len() as u64;
        }
        match profile {
            SegmentProfile::InOrder => base,
            SegmentProfile::Reorder { window } => {
                let window = window.max(2);
                for block in base.chunks_mut(window) {
                    block.shuffle(&mut self.rng);
                }
                base
            }
            SegmentProfile::Retransmit { every } => {
                let every = every.max(1);
                let mut out = Vec::with_capacity(base.len() + base.len() / every);
                for (i, seg) in base.iter().enumerate() {
                    out.push(seg.clone());
                    if (i + 1) % every == 0 {
                        let j = self.rng.gen_range(0..=i);
                        out.push(base[j].clone());
                    }
                }
                out
            }
            SegmentProfile::OverlapConsistent { extend }
            | SegmentProfile::OverlapConflicting { extend } => {
                let conflicting =
                    matches!(profile, SegmentProfile::OverlapConflicting { .. });
                let extend = extend.max(1);
                let mut out = Vec::with_capacity(base.len());
                let mut i = 0;
                while i < base.len() {
                    if i + 1 >= base.len() {
                        out.push(base[i].clone());
                        break;
                    }
                    let next = &base[i + 1];
                    let ext = self.rng.gen_range(1..=extend).min(next.bytes.len());
                    let mut first = base[i].clone();
                    let mut tail = next.bytes[..ext].to_vec();
                    if conflicting {
                        // Corrupt the extension: the successor's true
                        // bytes (which arrive first) must win.
                        for b in &mut tail {
                            *b ^= 0xFF;
                        }
                    }
                    first.bytes.extend_from_slice(&tail);
                    // Successor first (buffered behind the hole), then
                    // the extended predecessor filling it.
                    out.push(next.clone());
                    out.push(first);
                    i += 2;
                }
                out
            }
            SegmentProfile::Holes { every } => {
                let every = every.max(2);
                base.into_iter()
                    .enumerate()
                    .filter(|(i, _)| (i + 1) % every != 0)
                    .map(|(_, s)| s)
                    .collect()
            }
        }
    }
}

/// Materializes the segments of `payload` between the interior `cuts`
/// produced by [`TrafficGenerator::chop_points`] (concatenating the
/// result reproduces `payload` exactly).
///
/// # Panics
///
/// Panics if `cuts` is not strictly increasing within `0..len`.
pub fn chop<'a>(payload: &'a [u8], cuts: &[usize]) -> Vec<&'a [u8]> {
    let mut segments = Vec::with_capacity(cuts.len() + 1);
    let mut start = 0usize;
    for &cut in cuts {
        assert!(
            start < cut && cut < payload.len(),
            "cuts must be strictly increasing interior offsets"
        );
        segments.push(&payload[start..cut]);
        start = cut;
    }
    segments.push(&payload[start..]);
    segments
}

/// Crafts a `len`-byte payload that maximizes fail-pointer work for the
/// fail-function Aho-Corasick automaton of `set`.
///
/// Greedy construction: from the current NFA state, choose the next byte
/// that costs the most state lookups (deep fail chains), tie-breaking
/// toward bytes that keep the automaton deep so the next step is expensive
/// again. The result typically forces several lookups per byte, while the
/// paper's move-function design performs exactly one — the gap measured by
/// the `adversarial` bench.
pub fn adversarial_payload(set: &PatternSet, len: usize) -> Vec<u8> {
    let nfa = Nfa::build(set);
    let trie = nfa.trie();
    // Candidate bytes: those appearing in patterns (others instantly reset
    // to the start state and cost only one lookup).
    let mut alphabet: Vec<u8> = set.iter().flat_map(|(_, p)| p.iter().copied()).collect();
    alphabet.sort_unstable();
    alphabet.dedup();
    // Per-state *potential*: the deepest depth reachable through tree
    // edges. Fail-chain length — and hence the worst-case cost of a future
    // mismatch — is bounded by depth, so the crafter prefers moves that
    // keep the deepest continuations open (a plain depth tie-break gets
    // stuck in shallow local optima).
    let mut potential = vec![0u16; trie.len()];
    for i in (0..trie.len()).rev() {
        let id = StateId(i as u32);
        let own = trie.state(id).depth();
        let best_child = trie
            .state(id)
            .children()
            .iter()
            .map(|&(_, c)| potential[c.index()])
            .max()
            .unwrap_or(own);
        potential[i] = own.max(best_child);
    }
    let mut payload = Vec::with_capacity(len);
    let mut state = StateId::START;
    for _ in 0..len {
        // Phase 1 — deepen: while tree edges exist, walk toward the
        // deepest reachable state (a mismatch there walks the longest
        // fail chain). The *average* cost of Aho-Corasick is amortized
        // below 2 lookups/byte whatever we do; what an attacker maximizes
        // is the worst single-byte latency, which grows with depth for
        // self-overlapping rulesets.
        let children = trie.state(state).children();
        if !children.is_empty() {
            let &(byte, child) = children
                .iter()
                .max_by_key(|&&(_, c)| potential[c.index()])
                .expect("non-empty children");
            payload.push(byte);
            state = child;
            continue;
        }
        // Phase 2 — cash out: no deeper tree edge; pick the byte with the
        // most expensive resolution.
        let mut best = (alphabet.first().copied().unwrap_or(0), 0usize, 0u16);
        for &b in &alphabet {
            let (next, lookups) = nfa.step_counting(state, b);
            let pot = potential[next.index()];
            if lookups > best.1 || (lookups == best.1 && pot > best.2) {
                best = (b, lookups, pot);
            }
        }
        payload.push(best.0);
        state = nfa.step(state, best.0);
    }
    payload
}

/// A generated HTTP/1.x connection with its normalizer ground truth.
///
/// `decoded` is the byte stream a correct protocol normalizer feeds the
/// scanner over the connection's lifetime: header sections verbatim
/// (the probe prefix included — a normalizer raw-scans it, it is never
/// lost) followed by decoded body bytes. For Content-Length-framed
/// messages `decoded == wire`; chunked framing metadata (size lines,
/// chunk CRLFs, trailers) is absent from `decoded`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpStream {
    /// Wire bytes as sent on the connection.
    pub wire: Vec<u8>,
    /// The decoded stream (see type docs).
    pub decoded: Vec<u8>,
    /// Ground-truth injections as `(pattern, end)` pairs, with `end` in
    /// **decoded-stream offsets** — what a scanner fed by the
    /// normalizer reports, not a wire offset.
    pub injected: Vec<(PatternId, usize)>,
}

/// Hostile HTTP framing shapes for
/// [`TrafficGenerator::malformed_http_stream`]. Every variant must make
/// a strict normalizer **fail open** (downgrade to raw scanning) rather
/// than mis-frame; none may panic it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HttpMalformation {
    /// Chunk-size line that is not hex (`"ZZ\r\n"`).
    BadChunkSize,
    /// Legal hex chunk size far beyond any sane decoder cap.
    OversizedChunk,
    /// Chunk-size line carrying a chunk extension (`";a=b"`), which a
    /// strict decoder refuses rather than guess at.
    ChunkExtension,
    /// Connection dies mid-chunk: framing promises more bytes than
    /// arrive. Not a parse error — the property under test is that
    /// truncation leaves the ledger balanced and nothing wedged.
    TruncatedMidChunk,
    /// Header lines terminated by bare LF instead of CRLF.
    BareLf,
    /// A NUL byte inside a header line.
    NulHeader,
    /// Two `Content-Length` headers with different values — the classic
    /// request-smuggling ambiguity.
    DuplicateContentLength,
    /// `Content-Length` and `Transfer-Encoding: chunked` together —
    /// the other smuggling ambiguity.
    ChunkedPlusContentLength,
    /// An endless header section intended to exhaust parser budgets.
    HeaderFlood,
    /// A chunk-size line of hundreds of leading-zero hex digits: the
    /// parsed value never trips a size cap, so only a digit-count guard
    /// stops it (an unbounded counter would overflow).
    ChunkSizeZeroFlood,
    /// `Transfer-Encoding: xchunked` — a substring imposter a naive
    /// detector decodes as chunked while endpoints frame it
    /// differently (request-smuggling desync).
    TransferEncodingImposter,
    /// A framing header padded with OWS far past any header-line cap,
    /// hiding its value from bounded-copy parsers.
    PaddedContentLength,
}

/// All malformation shapes, for sweep-style tests and repros.
pub const HTTP_MALFORMATIONS: &[HttpMalformation] = &[
    HttpMalformation::BadChunkSize,
    HttpMalformation::OversizedChunk,
    HttpMalformation::ChunkExtension,
    HttpMalformation::TruncatedMidChunk,
    HttpMalformation::BareLf,
    HttpMalformation::NulHeader,
    HttpMalformation::DuplicateContentLength,
    HttpMalformation::ChunkedPlusContentLength,
    HttpMalformation::HeaderFlood,
    HttpMalformation::ChunkSizeZeroFlood,
    HttpMalformation::TransferEncodingImposter,
    HttpMalformation::PaddedContentLength,
];

const HTTP_METHODS: &[&[u8]] = &[b"GET", b"POST", b"PUT", b"HEAD", b"DELETE"];
const HTTP_PATHS: &[&[u8]] = &[
    b"/index.html",
    b"/api/v2/items",
    b"/static/app.js",
    b"/upload",
    b"/search?q=dpi",
];

impl TrafficGenerator {
    fn header_token(&mut self, len: usize) -> Vec<u8> {
        const ALPHA: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789-";
        (0..len)
            .map(|_| ALPHA[self.rng.gen_range(0..ALPHA.len())])
            .collect()
    }

    /// Emits one well-formed request head (start line + headers + blank
    /// line) onto `wire`, declaring the given framing.
    fn http_head(&mut self, wire: &mut Vec<u8>, framing: &[u8]) {
        let method = HTTP_METHODS[self.rng.gen_range(0..HTTP_METHODS.len())];
        let path = HTTP_PATHS[self.rng.gen_range(0..HTTP_PATHS.len())];
        wire.extend_from_slice(method);
        wire.push(b' ');
        wire.extend_from_slice(path);
        wire.extend_from_slice(b" HTTP/1.1\r\nHost: www.example.com\r\n");
        for _ in 0..self.rng.gen_range(0..3usize) {
            wire.extend_from_slice(b"X-Fill: ");
            let token_len = self.rng.gen_range(4..24);
            let token = self.header_token(token_len);
            wire.extend_from_slice(&token);
            wire.extend_from_slice(b"\r\n");
        }
        wire.extend_from_slice(framing);
        wire.extend_from_slice(b"\r\n");
    }

    /// Frames `body` as chunked transfer coding onto `wire`, cutting at
    /// the given ascending `cuts` (body offsets strictly inside the
    /// body). Ends with the zero chunk and empty trailer section.
    fn frame_chunked(&mut self, wire: &mut Vec<u8>, body: &[u8], cuts: &[usize]) {
        let mut start = 0usize;
        let mut bounds: Vec<usize> = cuts.to_vec();
        bounds.push(body.len());
        for &end in &bounds {
            if end <= start {
                continue;
            }
            let chunk = &body[start..end];
            let size = if self.rng.gen_bool(0.5) {
                format!("{:x}", chunk.len())
            } else {
                format!("{:X}", chunk.len())
            };
            wire.extend_from_slice(size.as_bytes());
            wire.extend_from_slice(b"\r\n");
            wire.extend_from_slice(chunk);
            wire.extend_from_slice(b"\r\n");
            start = end;
        }
        wire.extend_from_slice(b"0\r\n");
        if self.rng.gen_bool(0.25) {
            // Occasional trailer line: pure metadata to a normalizer.
            wire.extend_from_slice(b"X-Trailer: ok\r\n");
        }
        wire.extend_from_slice(b"\r\n");
    }

    /// A well-formed keep-alive HTTP/1.x connection: `messages`
    /// requests, each with a body of exactly `body_len` bytes, framed
    /// by Content-Length or (with probability `chunked_ratio`) chunked
    /// transfer coding split at random chunk boundaries. Injects
    /// nothing; ground truth is the `decoded` stream itself.
    pub fn http_stream(&mut self, messages: usize, body_len: usize, chunked_ratio: f64) -> HttpStream {
        let mut wire = Vec::new();
        let mut decoded = Vec::new();
        for _ in 0..messages {
            let body: Vec<u8> = (0..body_len)
                .map(|_| {
                    // Printable payload bytes; CR/LF/NUL excluded so a
                    // body never fakes header structure on re-parse.
                    let b: u8 = self.rng.gen_range(0x20..0x7f);
                    b
                })
                .collect();
            let chunked = body_len > 0 && self.rng.gen_bool(chunked_ratio);
            let head_start = wire.len();
            if chunked {
                self.http_head(&mut wire, b"Transfer-Encoding: chunked\r\n");
                decoded.extend_from_slice(&wire[head_start..]);
                let mut cuts: Vec<usize> = (0..self.rng.gen_range(0..4usize))
                    .map(|_| self.rng.gen_range(1..body.len().max(2)))
                    .collect();
                cuts.sort_unstable();
                cuts.dedup();
                cuts.retain(|&c| c < body.len());
                self.frame_chunked(&mut wire, &body, &cuts);
            } else {
                let framing = format!("Content-Length: {}\r\n", body.len());
                self.http_head(&mut wire, framing.as_bytes());
                decoded.extend_from_slice(&wire[head_start..]);
                wire.extend_from_slice(&body);
            }
            decoded.extend_from_slice(&body);
        }
        HttpStream {
            wire,
            decoded,
            injected: Vec::new(),
        }
    }

    /// The chunk-boundary evasion stream: one chunked POST whose body
    /// carries `count` injected patterns from `set`, each split by a
    /// chunk boundary placed strictly *inside* the pattern. The decoded
    /// body contains every pattern contiguously; the wire provably does
    /// not (framing metadata interrupts each occurrence), so a raw
    /// scanner misses what a normalizing scanner must find.
    ///
    /// Body filler is `'.'` so patterns containing any other byte
    /// cannot occur by accident in either stream.
    ///
    /// # Panics
    ///
    /// Panics if `set` has no pattern of length ≥ 2 (a 1-byte pattern
    /// cannot be split) or the body cannot hold `count` occurrences.
    pub fn chunked_evasion_stream(&mut self, set: &PatternSet, count: usize) -> HttpStream {
        let splittable: Vec<PatternId> = set
            .iter()
            .filter(|(_, p)| p.len() >= 2)
            .map(|(id, _)| id)
            .collect();
        assert!(
            !splittable.is_empty(),
            "need a pattern of length >= 2 to split across a chunk boundary"
        );
        let longest = splittable
            .iter()
            .map(|&id| set.pattern(id).len())
            .max()
            .unwrap();
        let body_len = (count * (longest + 32)).max(128);
        let mut body = vec![b'.'; body_len];
        let mut occupied: Vec<(usize, usize)> = Vec::new();
        let mut placed: Vec<(PatternId, usize, usize)> = Vec::new();
        let mut attempts = 0usize;
        while placed.len() < count {
            attempts += 1;
            assert!(
                attempts < 10_000,
                "cannot place {count} patterns in a {body_len}-byte body"
            );
            let id = splittable[self.rng.gen_range(0..splittable.len())];
            let p = set.pattern(id);
            let start = self.rng.gen_range(0..=body_len - p.len());
            if occupied
                .iter()
                .any(|&(s, e)| start < e && s < start + p.len())
            {
                continue;
            }
            occupied.push((start, start + p.len()));
            body[start..start + p.len()].copy_from_slice(p);
            placed.push((id, start, p.len()));
        }
        // One cut strictly inside every placed pattern: the wire never
        // carries the occurrence contiguously.
        let mut cuts: Vec<usize> = placed
            .iter()
            .map(|&(_, start, len)| start + self.rng.gen_range(1..len))
            .collect();
        cuts.sort_unstable();
        cuts.dedup();

        let mut wire = Vec::new();
        self.http_head(&mut wire, b"Transfer-Encoding: chunked\r\n");
        let head_len = wire.len();
        let mut decoded = wire.clone();
        decoded.extend_from_slice(&body);
        self.frame_chunked(&mut wire, &body, &cuts);

        let mut injected: Vec<(PatternId, usize)> = placed
            .iter()
            .map(|&(id, start, len)| (id, head_len + start + len))
            .collect();
        injected.sort_by_key(|&(_, end)| end);
        HttpStream {
            wire,
            decoded,
            injected,
        }
    }

    /// A hostile HTTP connection exercising one malformation shape. The
    /// returned wire begins as plausible HTTP (so a detector engages
    /// the normalizer) and then presents the hostile framing; callers
    /// append whatever payload should still be caught by the raw
    /// fallback after the fail-open downgrade.
    pub fn malformed_http_stream(&mut self, kind: HttpMalformation) -> Vec<u8> {
        let mut wire = Vec::new();
        match kind {
            HttpMalformation::BadChunkSize => {
                self.http_head(&mut wire, b"Transfer-Encoding: chunked\r\n");
                wire.extend_from_slice(b"ZZ\r\n");
            }
            HttpMalformation::OversizedChunk => {
                self.http_head(&mut wire, b"Transfer-Encoding: chunked\r\n");
                wire.extend_from_slice(b"FFFFFFF9\r\n");
            }
            HttpMalformation::ChunkExtension => {
                self.http_head(&mut wire, b"Transfer-Encoding: chunked\r\n");
                wire.extend_from_slice(b"4;a=b\r\nbody\r\n");
            }
            HttpMalformation::TruncatedMidChunk => {
                self.http_head(&mut wire, b"Transfer-Encoding: chunked\r\n");
                wire.extend_from_slice(b"400\r\ntruncated-");
            }
            HttpMalformation::BareLf => {
                wire.extend_from_slice(b"GET /lf HTTP/1.1\nHost: bare\n\n");
            }
            HttpMalformation::NulHeader => {
                wire.extend_from_slice(b"GET /nul HTTP/1.1\r\nX-Bad: a\0b\r\n\r\n");
            }
            HttpMalformation::DuplicateContentLength => {
                self.http_head(
                    &mut wire,
                    b"Content-Length: 4\r\nContent-Length: 5\r\n",
                );
            }
            HttpMalformation::ChunkedPlusContentLength => {
                self.http_head(
                    &mut wire,
                    b"Content-Length: 8\r\nTransfer-Encoding: chunked\r\n",
                );
            }
            HttpMalformation::HeaderFlood => {
                wire.extend_from_slice(b"GET /flood HTTP/1.1\r\n");
                for i in 0..4096usize {
                    wire.extend_from_slice(format!("X-Flood-{i}: ").as_bytes());
                    let token = self.header_token(24);
                    wire.extend_from_slice(&token);
                    wire.extend_from_slice(b"\r\n");
                }
                // No blank line: the section just keeps growing.
            }
            HttpMalformation::ChunkSizeZeroFlood => {
                self.http_head(&mut wire, b"Transfer-Encoding: chunked\r\n");
                wire.extend(std::iter::repeat(b'0').take(300));
                wire.extend_from_slice(b"5\r\n");
            }
            HttpMalformation::TransferEncodingImposter => {
                self.http_head(&mut wire, b"Transfer-Encoding: xchunked\r\n");
            }
            HttpMalformation::PaddedContentLength => {
                let mut framing = b"Content-Length:".to_vec();
                framing.extend(std::iter::repeat(b' ').take(160));
                framing.extend_from_slice(b"8\r\n");
                self.http_head(&mut wire, &framing);
            }
        }
        wire
    }

    /// Protocol mimicry: a perfectly plausible HTTP connection intended
    /// for delivery to a flow whose port hint promises TLS (or vice
    /// versa) — the detect stage must count `mimicry_suspected` and
    /// fall back to raw scanning rather than trust either signal.
    pub fn mimicry_stream(&mut self, body_len: usize) -> Vec<u8> {
        self.http_stream(1, body_len, 0.0).wire
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpi_automaton::{MultiMatcher, NaiveMatcher, NfaMatcher};

    fn small_set() -> PatternSet {
        PatternSet::new(["he", "she", "his", "hers", "attack", "aback"]).unwrap()
    }

    fn contains_subslice(haystack: &[u8], needle: &[u8]) -> bool {
        haystack.windows(needle.len()).any(|w| w == needle)
    }

    #[test]
    fn content_length_http_stream_decodes_to_wire() {
        let mut g = TrafficGenerator::new(7);
        let stream = g.http_stream(3, 256, 0.0);
        assert_eq!(stream.wire, stream.decoded);
        assert!(stream.injected.is_empty());
    }

    #[test]
    fn chunked_http_stream_strips_framing() {
        let mut g = TrafficGenerator::new(8);
        let stream = g.http_stream(4, 512, 1.0);
        assert!(stream.wire.len() > stream.decoded.len());
        assert!(contains_subslice(&stream.wire, b"Transfer-Encoding: chunked"));
        assert!(contains_subslice(&stream.decoded, b"Transfer-Encoding: chunked"));
        assert!(contains_subslice(&stream.wire, b"0\r\n"));
    }

    #[test]
    fn evasion_stream_splits_every_injection() {
        let set = PatternSet::new(["attack-sig", "evil-payload"]).unwrap();
        for seed in 0..8 {
            let mut g = TrafficGenerator::new(seed);
            let stream = g.chunked_evasion_stream(&set, 3);
            assert_eq!(stream.injected.len(), 3);
            for &(id, end) in &stream.injected {
                let p = set.pattern(id);
                assert_eq!(&stream.decoded[end - p.len()..end], p);
                assert!(
                    !contains_subslice(&stream.wire, p),
                    "seed {seed}: wire must not carry {:?} contiguously",
                    std::str::from_utf8(p)
                );
            }
        }
    }

    #[test]
    fn malformed_streams_start_like_http() {
        let mut g = TrafficGenerator::new(9);
        for &kind in HTTP_MALFORMATIONS {
            let wire = g.malformed_http_stream(kind);
            assert!(!wire.is_empty(), "{kind:?}");
            let head = &wire[..4.min(wire.len())];
            assert!(
                HTTP_METHODS.iter().any(|m| {
                    let k = m.len().min(head.len());
                    head[..k] == m[..k]
                }),
                "{kind:?} must engage the HTTP detector: {head:?}"
            );
        }
    }

    #[test]
    fn clean_packet_has_exact_length() {
        let mut g = TrafficGenerator::new(1);
        for len in [1usize, 64, 1500] {
            assert_eq!(g.clean_packet(len).payload.len(), len);
        }
    }

    #[test]
    fn service_mix_reassembles_to_per_flow_payloads() {
        let set = small_set();
        let mix = TrafficGenerator::new(9).service_mix(5, 700, 96, &set, 2, 3);
        // Per flow: segments arrive in order and concatenate to exactly
        // flow_len bytes.
        let mut streams: Vec<Vec<u8>> = vec![Vec::new(); 5];
        for (flow, segment) in &mix {
            assert_eq!(segment.seq as usize, streams[*flow].len());
            streams[*flow].extend_from_slice(&segment.bytes);
        }
        for (f, stream) in streams.iter().enumerate() {
            assert_eq!(stream.len(), 700, "flow {f} truncated");
        }
        // Infected flows (0, 2, 4) carry planted occurrences; the naive
        // matcher must find at least the injected count.
        let naive = NaiveMatcher::new(&set);
        for f in [0usize, 2, 4] {
            assert!(
                naive.find_all(&streams[f]).len() >= 3,
                "flow {f} lost its injections"
            );
        }
        // Determinism: the same seed reproduces the same schedule.
        let again = TrafficGenerator::new(9).service_mix(5, 700, 96, &set, 2, 3);
        assert_eq!(mix, again);
    }

    #[test]
    fn tls_stream_is_exact_length_and_deterministic() {
        let mut g = TrafficGenerator::new(7);
        for len in [1usize, 8, 512, 65_536] {
            assert_eq!(g.tls_stream(len).payload.len(), len);
        }
        let a = TrafficGenerator::new(7).tls_stream(32_768);
        let b = TrafficGenerator::new(7).tls_stream(32_768);
        assert_eq!(a, b, "same seed must reproduce the stream");
        assert!(a.injected.is_empty());
    }

    #[test]
    fn tls_stream_frames_parse_back() {
        let p = TrafficGenerator::new(11).tls_stream(100_000);
        let buf = &p.payload;
        // Walk the record layer: handshake first, ApplicationData
        // after, every header length honoured (the final record may be
        // truncated by the exact-length cut).
        let mut pos = 0usize;
        let mut records = 0usize;
        while pos + 5 <= buf.len() {
            let typ = buf[pos];
            assert_eq!(typ, if records == 0 { 0x16 } else { 0x17 }, "record {records}");
            assert_eq!(buf[pos + 1], 0x03);
            assert_eq!(buf[pos + 2], if records == 0 { 0x01 } else { 0x03 });
            let body = u16::from_be_bytes([buf[pos + 3], buf[pos + 4]]) as usize;
            pos += 5 + body;
            records += 1;
        }
        assert!(records >= 5, "100 KB must span several records");
        assert!(pos >= buf.len(), "no trailing garbage between records");
    }

    #[test]
    fn tls_stream_bodies_are_high_entropy_long_spans() {
        let p = TrafficGenerator::new(13).tls_stream(1 << 16);
        let mut seen = [0u32; 256];
        for &b in &p.payload {
            seen[b as usize] += 1;
        }
        let distinct = seen.iter().filter(|&&c| c > 0).count();
        assert!(distinct > 250, "encrypted bodies must use the full byte alphabet");
        // Nothing resembling the HTTP chatter of `clean_packet`.
        let hay = &p.payload;
        assert!(
            !hay.windows(4).any(|w| w == b"HTTP"),
            "a 64 KB encrypted stream should not contain protocol text"
        );
    }

    #[test]
    fn infected_packet_ground_truth_is_found_by_matchers() {
        let set = small_set();
        let mut g = TrafficGenerator::new(2);
        let p = g.infected_packet(512, &set, 5);
        assert_eq!(p.injected.len(), 5);
        let naive = NaiveMatcher::new(&set);
        let found = naive.find_all(&p.payload);
        for &(id, end) in &p.injected {
            assert!(
                found.iter().any(|m| m.pattern == id && m.end == end),
                "injected {id:?}@{end} not found"
            );
        }
    }

    #[test]
    fn injections_do_not_overlap() {
        let set = small_set();
        let mut g = TrafficGenerator::new(3);
        let p = g.infected_packet(256, &set, 8);
        let mut ranges: Vec<(usize, usize)> = p
            .injected
            .iter()
            .map(|&(id, end)| (end - set.pattern_len(id), end))
            .collect();
        ranges.sort();
        for w in ranges.windows(2) {
            assert!(w[0].1 <= w[1].0, "overlap: {w:?}");
        }
    }

    #[test]
    fn traffic_is_deterministic() {
        let set = small_set();
        let a = TrafficGenerator::new(9).packets(3, 128, &set, 2);
        let b = TrafficGenerator::new(9).packets(3, 128, &set, 2);
        assert_eq!(a, b);
    }

    #[test]
    fn chop_profiles_partition_the_payload() {
        let set = small_set();
        let mut g = TrafficGenerator::new(7);
        let p = g.infected_packet(600, &set, 4);
        for profile in [
            ChopProfile::Mtu(128),
            ChopProfile::SingleByte,
            ChopProfile::Random { min: 1, max: 40 },
            ChopProfile::MidPattern { mtu: 100 },
        ] {
            let cuts = g.chop_points(&p, &set, profile);
            assert!(cuts.windows(2).all(|w| w[0] < w[1]), "{profile:?}");
            let segments = chop(&p.payload, &cuts);
            let rebuilt: Vec<u8> = segments.concat();
            assert_eq!(rebuilt, p.payload, "{profile:?} must partition exactly");
            if profile == ChopProfile::SingleByte {
                assert!(segments.iter().all(|s| s.len() == 1));
            }
        }
    }

    #[test]
    fn mid_pattern_cuts_every_injected_occurrence() {
        let set = small_set();
        let mut g = TrafficGenerator::new(8);
        let p = g.infected_packet(512, &set, 6);
        let cuts = g.chop_points(&p, &set, ChopProfile::MidPattern { mtu: 4096 });
        for &(id, end) in &p.injected {
            let start = end - set.pattern_len(id);
            assert!(
                cuts.iter().any(|&c| c > start && c < end),
                "occurrence {id:?}@{start}..{end} not cut by {cuts:?}"
            );
        }
    }

    #[test]
    fn interleave_schedule_preserves_per_flow_order_and_counts() {
        let mut g = TrafficGenerator::new(9);
        let counts = [3usize, 0, 5, 1];
        let schedule = g.interleave_schedule(&counts);
        assert_eq!(schedule.len(), 9);
        for (flow, &want) in counts.iter().enumerate() {
            assert_eq!(schedule.iter().filter(|&&f| f == flow).count(), want);
        }
        // Some interleaving actually happened (flows 0 and 2 overlap).
        let first2 = schedule.iter().position(|&f| f == 2).unwrap();
        let last0 = schedule.iter().rposition(|&f| f == 0).unwrap();
        assert!(first2 < last0 || schedule[0] == 2, "degenerate shuffle");
    }

    /// Replays a schedule through a first-wins oracle reassembler:
    /// bytes keep their first-arrival value, coverage is tracked.
    fn first_wins_replay(schedule: &[Segment], len: usize) -> (Vec<u8>, Vec<bool>) {
        let mut stream = vec![0u8; len];
        let mut covered = vec![false; len];
        for seg in schedule {
            for (i, &b) in seg.bytes.iter().enumerate() {
                let pos = seg.seq as usize + i;
                if !covered[pos] {
                    stream[pos] = b;
                    covered[pos] = true;
                }
            }
        }
        (stream, covered)
    }

    fn lossless_profiles() -> Vec<SegmentProfile> {
        vec![
            SegmentProfile::InOrder,
            SegmentProfile::Reorder { window: 4 },
            SegmentProfile::Retransmit { every: 3 },
            SegmentProfile::OverlapConsistent { extend: 8 },
            SegmentProfile::OverlapConflicting { extend: 8 },
        ]
    }

    #[test]
    fn segment_schedules_are_deterministic() {
        let set = small_set();
        for profile in lossless_profiles() {
            let mut g1 = TrafficGenerator::new(11);
            let mut g2 = TrafficGenerator::new(11);
            let p1 = g1.infected_packet(512, &set, 3);
            let p2 = g2.infected_packet(512, &set, 3);
            let chop = ChopProfile::MidPattern { mtu: 64 };
            let s1 = g1.segment_schedule(&p1, &set, chop, profile);
            let s2 = g2.segment_schedule(&p2, &set, chop, profile);
            assert_eq!(s1, s2, "{profile:?} must be seed-deterministic");
        }
    }

    #[test]
    fn lossless_schedules_reconstruct_the_payload_first_wins() {
        let set = small_set();
        let mut g = TrafficGenerator::new(12);
        let p = g.infected_packet(700, &set, 4);
        for profile in lossless_profiles() {
            let schedule =
                g.segment_schedule(&p, &set, ChopProfile::MidPattern { mtu: 90 }, profile);
            let (stream, covered) = first_wins_replay(&schedule, p.payload.len());
            assert!(covered.iter().all(|&c| c), "{profile:?} must cover all bytes");
            assert_eq!(
                stream, p.payload,
                "{profile:?} must reconstruct the payload under first-wins"
            );
        }
    }

    #[test]
    fn reorder_displacement_is_bounded_by_the_window() {
        let set = small_set();
        let mut g = TrafficGenerator::new(13);
        let p = g.clean_packet(2000);
        let window = 4;
        let schedule = g.segment_schedule(
            &p,
            &set,
            ChopProfile::Mtu(100),
            SegmentProfile::Reorder { window },
        );
        // Within any prefix of arrivals, the furthest-back missing byte
        // is at most window segments behind the furthest-ahead seen one.
        let max_len = schedule.iter().map(|s| s.bytes.len()).max().unwrap() as u64;
        let mut delivered_to = 0u64;
        for seg in &schedule {
            let tail = seg.seq + seg.bytes.len() as u64;
            assert!(
                tail <= delivered_to + (window as u64 + 1) * max_len,
                "displacement beyond the documented bound"
            );
            delivered_to = delivered_to.max(tail);
        }
        // And some actual reordering happened.
        assert!(
            schedule.windows(2).any(|w| w[0].seq > w[1].seq),
            "degenerate shuffle: schedule arrived fully in order"
        );
    }

    #[test]
    fn retransmit_schedule_duplicates_earlier_segments_verbatim() {
        let set = small_set();
        let mut g = TrafficGenerator::new(14);
        let p = g.clean_packet(1000);
        let schedule = g.segment_schedule(
            &p,
            &set,
            ChopProfile::Mtu(100),
            SegmentProfile::Retransmit { every: 2 },
        );
        assert!(schedule.len() > 10, "duplicates must be injected");
        // Every duplicate carries bytes identical to the original.
        for seg in &schedule {
            let start = seg.seq as usize;
            assert_eq!(
                &p.payload[start..start + seg.bytes.len()],
                &seg.bytes[..],
                "retransmissions must be verbatim"
            );
        }
    }

    #[test]
    fn conflicting_overlaps_disagree_but_true_bytes_arrive_first() {
        let set = small_set();
        let mut g = TrafficGenerator::new(15);
        let p = g.clean_packet(1000);
        let schedule = g.segment_schedule(
            &p,
            &set,
            ChopProfile::Mtu(100),
            SegmentProfile::OverlapConflicting { extend: 16 },
        );
        // At least one arriving byte must disagree with the payload
        // (the corrupted extensions)...
        let mut conflicts = 0usize;
        for seg in &schedule {
            let start = seg.seq as usize;
            if p.payload[start..start + seg.bytes.len()] != seg.bytes[..] {
                conflicts += 1;
            }
        }
        assert!(conflicts > 0, "no conflicting bytes were scheduled");
        // ...yet first-wins reconstruction still equals the payload:
        // the true copy of every conflicted range arrives first.
        let (stream, covered) = first_wins_replay(&schedule, p.payload.len());
        assert!(covered.iter().all(|&c| c));
        assert_eq!(stream, p.payload);
    }

    #[test]
    fn holes_schedule_drops_segments_and_only_segments() {
        let set = small_set();
        let mut g = TrafficGenerator::new(16);
        let p = g.clean_packet(1000);
        let in_order = g.segment_schedule(
            &p,
            &set,
            ChopProfile::Mtu(100),
            SegmentProfile::InOrder,
        );
        let mut g2 = TrafficGenerator::new(16);
        let p2 = g2.clean_packet(1000);
        let holes = g2.segment_schedule(
            &p2,
            &set,
            ChopProfile::Mtu(100),
            SegmentProfile::Holes { every: 3 },
        );
        assert!(holes.len() < in_order.len(), "some segments must drop");
        // Survivors arrive in order and verbatim.
        assert!(holes.windows(2).all(|w| w[0].seq < w[1].seq));
        for seg in &holes {
            let start = seg.seq as usize;
            assert_eq!(&p2.payload[start..start + seg.bytes.len()], &seg.bytes[..]);
        }
    }

    #[test]
    fn mid_pattern_chop_composes_with_schedules() {
        // The adversarial combination the reassembler exists for:
        // cuts inside every injected occurrence AND reordered arrival.
        let set = small_set();
        let mut g = TrafficGenerator::new(17);
        let p = g.infected_packet(600, &set, 4);
        let schedule = g.segment_schedule(
            &p,
            &set,
            ChopProfile::MidPattern { mtu: 80 },
            SegmentProfile::Reorder { window: 3 },
        );
        for &(id, end) in &p.injected {
            let start = end - set.pattern_len(id);
            // Some segment boundary falls strictly inside [start, end):
            // no single segment contains the whole occurrence.
            assert!(
                !schedule.iter().any(|s| {
                    let ss = s.seq as usize;
                    ss <= start && end <= ss + s.bytes.len()
                }),
                "occurrence {id:?}@{start}..{end} fit inside one segment"
            );
        }
    }

    #[test]
    fn adversarial_payload_costs_more_than_random() {
        // Patterns with heavy self-overlap produce long fail chains.
        let set = PatternSet::new(["aaaa", "aaab", "aabaa", "abaaa"]).unwrap();
        let nfa = Nfa::build(&set);
        let m = NfaMatcher::new(&nfa, &set);
        let adv = adversarial_payload(&set, 400);
        let adv_cost = m.scan_counting(&adv).lookups;
        let mut g = TrafficGenerator::new(4);
        let rand_cost = m.scan_counting(&g.clean_packet(400).payload).lookups;
        assert!(
            adv_cost > rand_cost,
            "adversarial {adv_cost} should exceed random {rand_cost}"
        );
        // And strictly more than one lookup per byte on average.
        assert!(adv_cost > 400);
    }
}
