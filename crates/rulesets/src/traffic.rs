//! Packet and traffic generation for throughput and detection experiments.
//!
//! Three profiles cover the evaluation's needs:
//!
//! - **clean** — protocol-flavoured background traffic (HTTP-ish text mixed
//!   with binary payload), no deliberately embedded patterns;
//! - **infected** — clean traffic with known pattern occurrences injected at
//!   recorded offsets (ground truth for end-to-end detection tests);
//! - **adversarial** — input crafted against a fail-pointer Aho-Corasick
//!   automaton to maximize fail-chain walking. The paper's architecture is
//!   immune by construction ("This prevents attacks being constructed which
//!   flood a system with packets it performs poorly on", §I); the
//!   `adversarial` experiment quantifies what the immunity is worth.

use dpi_automaton::{Nfa, PatternId, PatternSet, StateId};
use rand::prelude::*;
use rand::rngs::StdRng;

/// A generated packet plus the ground truth of injected occurrences.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Payload bytes.
    pub payload: Vec<u8>,
    /// Injected occurrences as `(pattern, end_offset)` pairs — a subset of
    /// what a matcher will report (background bytes may match patterns by
    /// chance; matchers must report a **superset** of this list).
    pub injected: Vec<(PatternId, usize)>,
}

/// Traffic generator with a fixed seed.
#[derive(Debug, Clone)]
pub struct TrafficGenerator {
    rng: StdRng,
}

const HTTP_CHATTER: &[&[u8]] = &[
    b"GET /index.html HTTP/1.1\r\n",
    b"Host: www.example.com\r\n",
    b"Accept: text/html,application/xhtml\r\n",
    b"Connection: keep-alive\r\n\r\n",
    b"HTTP/1.1 200 OK\r\nContent-Length: 512\r\n",
];

impl TrafficGenerator {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> TrafficGenerator {
        TrafficGenerator {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// One clean packet of exactly `len` bytes.
    pub fn clean_packet(&mut self, len: usize) -> Packet {
        let mut payload = Vec::with_capacity(len);
        while payload.len() < len {
            if self.rng.gen_bool(0.6) {
                let chunk = HTTP_CHATTER[self.rng.gen_range(0..HTTP_CHATTER.len())];
                payload.extend_from_slice(chunk);
            } else {
                let n = self.rng.gen_range(8..64usize);
                for _ in 0..n {
                    payload.push(self.rng.gen());
                }
            }
        }
        payload.truncate(len);
        Packet {
            payload,
            injected: Vec::new(),
        }
    }

    /// A clean packet with `count` occurrences of patterns from `set`
    /// injected at random non-overlapping offsets. Ground truth offsets are
    /// recorded in the returned [`Packet::injected`] (sorted by end offset).
    ///
    /// # Panics
    ///
    /// Panics if the packet cannot hold `count` occurrences of the chosen
    /// patterns.
    pub fn infected_packet(&mut self, len: usize, set: &PatternSet, count: usize) -> Packet {
        let mut packet = self.clean_packet(len);
        let mut occupied: Vec<(usize, usize)> = Vec::new();
        let mut injected = Vec::new();
        let mut attempts = 0usize;
        while injected.len() < count {
            attempts += 1;
            assert!(
                attempts < 10_000,
                "cannot place {count} patterns in a {len}-byte packet"
            );
            let id = PatternId(self.rng.gen_range(0..set.len() as u32));
            let p = set.pattern(id);
            if p.len() > len {
                continue;
            }
            let start = self.rng.gen_range(0..=len - p.len());
            let range = (start, start + p.len());
            if occupied
                .iter()
                .any(|&(s, e)| range.0 < e && s < range.1)
            {
                continue;
            }
            occupied.push(range);
            packet.payload[range.0..range.1].copy_from_slice(p);
            injected.push((id, range.1));
        }
        injected.sort_by_key(|&(_, end)| end);
        packet.injected = injected;
        packet
    }

    /// A burst of packets under one profile.
    pub fn packets(
        &mut self,
        n: usize,
        len: usize,
        set: &PatternSet,
        injections_per_packet: usize,
    ) -> Vec<Packet> {
        (0..n)
            .map(|_| {
                if injections_per_packet == 0 {
                    self.clean_packet(len)
                } else {
                    self.infected_packet(len, set, injections_per_packet)
                }
            })
            .collect()
    }
}

/// How a payload is chopped into packet-sized chunks for streaming-scan
/// experiments (used by [`TrafficGenerator::chop_points`]).
///
/// Streaming correctness is only interesting at *bad* boundaries, so the
/// profiles deliberately include the shapes a payload-at-once scanner
/// gets wrong: segments cut mid-pattern and degenerate one-byte packets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChopProfile {
    /// Fixed-size segments (e.g. a 1,500-byte MTU).
    Mtu(usize),
    /// One byte per packet — the pathological worst case for any
    /// per-chunk overhead.
    SingleByte,
    /// Segment lengths drawn uniformly from `min..=max`.
    Random {
        /// Minimum segment length (≥ 1).
        min: usize,
        /// Maximum segment length.
        max: usize,
    },
    /// Adversarial: a boundary strictly inside **every** injected
    /// occurrence of [`Packet::injected`], so every ground-truth match
    /// straddles two packets, with `mtu`-sized fill cuts between.
    /// Single-byte patterns cannot be cut and are left whole.
    MidPattern {
        /// Fill segment size between the forced mid-pattern cuts.
        mtu: usize,
    },
}

impl TrafficGenerator {
    /// Chooses cut offsets for `packet`'s payload under `profile`:
    /// a strictly increasing sequence of interior boundaries
    /// (`0 < cut < len`). Feed to [`chop`] to materialize the segments.
    pub fn chop_points(
        &mut self,
        packet: &Packet,
        set: &PatternSet,
        profile: ChopProfile,
    ) -> Vec<usize> {
        let len = packet.payload.len();
        let mut cuts: Vec<usize> = Vec::new();
        match profile {
            ChopProfile::Mtu(mtu) => {
                let mtu = mtu.max(1);
                cuts.extend((1..len.div_ceil(mtu)).map(|i| i * mtu));
            }
            ChopProfile::SingleByte => cuts.extend(1..len),
            ChopProfile::Random { min, max } => {
                let min = min.max(1);
                let max = max.max(min);
                let mut pos = 0usize;
                loop {
                    pos += self.rng.gen_range(min..=max);
                    if pos >= len {
                        break;
                    }
                    cuts.push(pos);
                }
            }
            ChopProfile::MidPattern { mtu } => {
                // One cut strictly inside each injected occurrence.
                for &(id, end) in &packet.injected {
                    let start = end - set.pattern_len(id);
                    if end - start >= 2 {
                        cuts.push(self.rng.gen_range(start + 1..end));
                    }
                }
                // MTU fill between/around the forced cuts.
                let mtu = mtu.max(1);
                cuts.extend((1..len.div_ceil(mtu)).map(|i| i * mtu));
                cuts.sort_unstable();
                cuts.dedup();
                cuts.retain(|&c| c < len);
            }
        }
        cuts
    }

    /// A randomized arrival order for interleaved flows: flow `i`
    /// contributes `chunk_counts[i]` packets, each flow's packets appear
    /// in order, and flows are shuffled against each other — the shape a
    /// flow table sees on real links (and the shape that catches state
    /// leaking between flows).
    pub fn interleave_schedule(&mut self, chunk_counts: &[usize]) -> Vec<usize> {
        let mut remaining: Vec<usize> = chunk_counts.to_vec();
        let total: usize = remaining.iter().sum();
        let mut schedule = Vec::with_capacity(total);
        let mut live: Vec<usize> = (0..remaining.len())
            .filter(|&f| remaining[f] > 0)
            .collect();
        while !live.is_empty() {
            let pick = self.rng.gen_range(0..live.len());
            let flow = live[pick];
            schedule.push(flow);
            remaining[flow] -= 1;
            if remaining[flow] == 0 {
                live.swap_remove(pick);
            }
        }
        schedule
    }
}

/// Materializes the segments of `payload` between the interior `cuts`
/// produced by [`TrafficGenerator::chop_points`] (concatenating the
/// result reproduces `payload` exactly).
///
/// # Panics
///
/// Panics if `cuts` is not strictly increasing within `0..len`.
pub fn chop<'a>(payload: &'a [u8], cuts: &[usize]) -> Vec<&'a [u8]> {
    let mut segments = Vec::with_capacity(cuts.len() + 1);
    let mut start = 0usize;
    for &cut in cuts {
        assert!(
            start < cut && cut < payload.len(),
            "cuts must be strictly increasing interior offsets"
        );
        segments.push(&payload[start..cut]);
        start = cut;
    }
    segments.push(&payload[start..]);
    segments
}

/// Crafts a `len`-byte payload that maximizes fail-pointer work for the
/// fail-function Aho-Corasick automaton of `set`.
///
/// Greedy construction: from the current NFA state, choose the next byte
/// that costs the most state lookups (deep fail chains), tie-breaking
/// toward bytes that keep the automaton deep so the next step is expensive
/// again. The result typically forces several lookups per byte, while the
/// paper's move-function design performs exactly one — the gap measured by
/// the `adversarial` bench.
pub fn adversarial_payload(set: &PatternSet, len: usize) -> Vec<u8> {
    let nfa = Nfa::build(set);
    let trie = nfa.trie();
    // Candidate bytes: those appearing in patterns (others instantly reset
    // to the start state and cost only one lookup).
    let mut alphabet: Vec<u8> = set.iter().flat_map(|(_, p)| p.iter().copied()).collect();
    alphabet.sort_unstable();
    alphabet.dedup();
    // Per-state *potential*: the deepest depth reachable through tree
    // edges. Fail-chain length — and hence the worst-case cost of a future
    // mismatch — is bounded by depth, so the crafter prefers moves that
    // keep the deepest continuations open (a plain depth tie-break gets
    // stuck in shallow local optima).
    let mut potential = vec![0u16; trie.len()];
    for i in (0..trie.len()).rev() {
        let id = StateId(i as u32);
        let own = trie.state(id).depth();
        let best_child = trie
            .state(id)
            .children()
            .iter()
            .map(|&(_, c)| potential[c.index()])
            .max()
            .unwrap_or(own);
        potential[i] = own.max(best_child);
    }
    let mut payload = Vec::with_capacity(len);
    let mut state = StateId::START;
    for _ in 0..len {
        // Phase 1 — deepen: while tree edges exist, walk toward the
        // deepest reachable state (a mismatch there walks the longest
        // fail chain). The *average* cost of Aho-Corasick is amortized
        // below 2 lookups/byte whatever we do; what an attacker maximizes
        // is the worst single-byte latency, which grows with depth for
        // self-overlapping rulesets.
        let children = trie.state(state).children();
        if !children.is_empty() {
            let &(byte, child) = children
                .iter()
                .max_by_key(|&&(_, c)| potential[c.index()])
                .expect("non-empty children");
            payload.push(byte);
            state = child;
            continue;
        }
        // Phase 2 — cash out: no deeper tree edge; pick the byte with the
        // most expensive resolution.
        let mut best = (alphabet.first().copied().unwrap_or(0), 0usize, 0u16);
        for &b in &alphabet {
            let (next, lookups) = nfa.step_counting(state, b);
            let pot = potential[next.index()];
            if lookups > best.1 || (lookups == best.1 && pot > best.2) {
                best = (b, lookups, pot);
            }
        }
        payload.push(best.0);
        state = nfa.step(state, best.0);
    }
    payload
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpi_automaton::{MultiMatcher, NaiveMatcher, NfaMatcher};

    fn small_set() -> PatternSet {
        PatternSet::new(["he", "she", "his", "hers", "attack", "aback"]).unwrap()
    }

    #[test]
    fn clean_packet_has_exact_length() {
        let mut g = TrafficGenerator::new(1);
        for len in [1usize, 64, 1500] {
            assert_eq!(g.clean_packet(len).payload.len(), len);
        }
    }

    #[test]
    fn infected_packet_ground_truth_is_found_by_matchers() {
        let set = small_set();
        let mut g = TrafficGenerator::new(2);
        let p = g.infected_packet(512, &set, 5);
        assert_eq!(p.injected.len(), 5);
        let naive = NaiveMatcher::new(&set);
        let found = naive.find_all(&p.payload);
        for &(id, end) in &p.injected {
            assert!(
                found.iter().any(|m| m.pattern == id && m.end == end),
                "injected {id:?}@{end} not found"
            );
        }
    }

    #[test]
    fn injections_do_not_overlap() {
        let set = small_set();
        let mut g = TrafficGenerator::new(3);
        let p = g.infected_packet(256, &set, 8);
        let mut ranges: Vec<(usize, usize)> = p
            .injected
            .iter()
            .map(|&(id, end)| (end - set.pattern_len(id), end))
            .collect();
        ranges.sort();
        for w in ranges.windows(2) {
            assert!(w[0].1 <= w[1].0, "overlap: {w:?}");
        }
    }

    #[test]
    fn traffic_is_deterministic() {
        let set = small_set();
        let a = TrafficGenerator::new(9).packets(3, 128, &set, 2);
        let b = TrafficGenerator::new(9).packets(3, 128, &set, 2);
        assert_eq!(a, b);
    }

    #[test]
    fn chop_profiles_partition_the_payload() {
        let set = small_set();
        let mut g = TrafficGenerator::new(7);
        let p = g.infected_packet(600, &set, 4);
        for profile in [
            ChopProfile::Mtu(128),
            ChopProfile::SingleByte,
            ChopProfile::Random { min: 1, max: 40 },
            ChopProfile::MidPattern { mtu: 100 },
        ] {
            let cuts = g.chop_points(&p, &set, profile);
            assert!(cuts.windows(2).all(|w| w[0] < w[1]), "{profile:?}");
            let segments = chop(&p.payload, &cuts);
            let rebuilt: Vec<u8> = segments.concat();
            assert_eq!(rebuilt, p.payload, "{profile:?} must partition exactly");
            if profile == ChopProfile::SingleByte {
                assert!(segments.iter().all(|s| s.len() == 1));
            }
        }
    }

    #[test]
    fn mid_pattern_cuts_every_injected_occurrence() {
        let set = small_set();
        let mut g = TrafficGenerator::new(8);
        let p = g.infected_packet(512, &set, 6);
        let cuts = g.chop_points(&p, &set, ChopProfile::MidPattern { mtu: 4096 });
        for &(id, end) in &p.injected {
            let start = end - set.pattern_len(id);
            assert!(
                cuts.iter().any(|&c| c > start && c < end),
                "occurrence {id:?}@{start}..{end} not cut by {cuts:?}"
            );
        }
    }

    #[test]
    fn interleave_schedule_preserves_per_flow_order_and_counts() {
        let mut g = TrafficGenerator::new(9);
        let counts = [3usize, 0, 5, 1];
        let schedule = g.interleave_schedule(&counts);
        assert_eq!(schedule.len(), 9);
        for (flow, &want) in counts.iter().enumerate() {
            assert_eq!(schedule.iter().filter(|&&f| f == flow).count(), want);
        }
        // Some interleaving actually happened (flows 0 and 2 overlap).
        let first2 = schedule.iter().position(|&f| f == 2).unwrap();
        let last0 = schedule.iter().rposition(|&f| f == 0).unwrap();
        assert!(first2 < last0 || schedule[0] == 2, "degenerate shuffle");
    }

    #[test]
    fn adversarial_payload_costs_more_than_random() {
        // Patterns with heavy self-overlap produce long fail chains.
        let set = PatternSet::new(["aaaa", "aaab", "aabaa", "abaaa"]).unwrap();
        let nfa = Nfa::build(&set);
        let m = NfaMatcher::new(&nfa, &set);
        let adv = adversarial_payload(&set, 400);
        let adv_cost = m.scan_counting(&adv).lookups;
        let mut g = TrafficGenerator::new(4);
        let rand_cost = m.scan_counting(&g.clean_packet(400).payload).lookups;
        assert!(
            adv_cost > rand_cost,
            "adversarial {adv_cost} should exceed random {rand_cost}"
        );
        // And strictly more than one lookup per byte on average.
        assert!(adv_cost > 400);
    }
}
