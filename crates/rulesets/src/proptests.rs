//! In-crate property tests for the workload substrate, including the
//! structural guarantee the hardware depends on: generated rulesets keep
//! every automaton state within the 13-pointer budget.

#![cfg(test)]

use crate::distribution::LengthDistribution;
use crate::extract::extract_preserving;
use crate::generator::RulesetGenerator;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Apportionment: counts sum exactly for any size, never produce a
    /// zero-length string, and respect the distribution's support.
    #[test]
    fn counts_for_any_size(n in 1usize..5000) {
        let d = LengthDistribution::paper_figure6();
        let counts = d.counts_for(n);
        prop_assert_eq!(counts.iter().map(|&(_, c)| c).sum::<usize>(), n);
        let (lo, hi) = d.length_range();
        for (len, count) in counts {
            prop_assert!(len >= lo && len <= hi);
            prop_assert!(count > 0);
        }
    }

    /// Scaling lengths scales the mean proportionally (within rounding).
    #[test]
    fn scale_lengths_scales_mean(factor in 0.5f64..4.0) {
        let d = LengthDistribution::paper_figure6();
        let scaled = d.scale_lengths(factor);
        let expect = d.mean() * factor;
        prop_assert!(
            (scaled.mean() - expect).abs() / expect < 0.05,
            "mean {} vs expected {}",
            scaled.mean(),
            expect
        );
    }

    /// Generation size is exact, strings unique and non-empty, for
    /// arbitrary seeds and sizes.
    #[test]
    fn generation_contract(n in 1usize..400, seed in any::<u64>()) {
        let set = RulesetGenerator::new().with_seed(seed).generate(n);
        prop_assert_eq!(set.len(), n);
        for (_, p) in set.iter() {
            prop_assert!(!p.is_empty());
        }
    }

    /// Extraction size and subset-ness for arbitrary targets and seeds.
    #[test]
    fn extraction_contract(target_frac in 1usize..99, seed in any::<u64>()) {
        let master = RulesetGenerator::new().generate(300);
        let target = (300 * target_frac / 100).max(1);
        let sub = extract_preserving(&master, target, seed);
        prop_assert_eq!(sub.len(), target);
    }
}

/// The structural guarantee behind "13 is adequate" (§IV.A): with the
/// paper's DTP configuration, every state of every builtin ruleset stays
/// within the widest state type once deployed. Checked here at generator
/// level on two sizes (the planner re-checks at deployment).
#[test]
fn generated_rulesets_respect_pointer_budget() {
    use dpi_automaton::Dfa;
    use dpi_core::{DtpConfig, ReducedAutomaton};
    for n in [500usize, 1204] {
        let set = crate::builtin::paper_ruleset(match n {
            500 => crate::builtin::PaperRuleset::S500,
            _ => crate::builtin::PaperRuleset::S1204,
        });
        let dfa = Dfa::build(&set);
        let red = ReducedAutomaton::reduce(&dfa, DtpConfig::PAPER);
        assert!(
            red.max_pointers() <= 13,
            "{n}-string ruleset has a state with {} pointers",
            red.max_pointers()
        );
    }
}

/// Stem pools cap trie fan-out: no state may have more children than the
/// pool size plus the start-byte alphabet allows.
#[test]
fn stem_pools_bound_fanout() {
    use dpi_automaton::{StateId, Trie};
    let set = RulesetGenerator::new().generate(1500);
    let trie = Trie::build(&set);
    for (id, state) in trie.iter() {
        if id == StateId::START {
            continue; // the root fans out to all start bytes by design
        }
        assert!(
            state.children().len() <= 13,
            "state at depth {} has {} children",
            state.depth(),
            state.children().len()
        );
    }
}
