//! # dpi-rulesets
//!
//! Workload substrate for the DATE 2010 reproduction: synthetic Snort-like
//! rulesets with the paper's Figure 6 length distribution, the paper's
//! distribution-preserving extraction program, and traffic generators for
//! the throughput/detection experiments.
//!
//! The actual Snort ruleset snapshot the paper used is proprietary to its
//! moment in time; the substitution rationale is recorded in DESIGN.md §2.
//! In short, every result in the paper depends only on *structural*
//! statistics of the strings — count, length histogram, prefix sharing,
//! start-byte diversity — all of which [`RulesetGenerator`] reproduces and
//! the tests in this crate pin.
//!
//! ## Quick example
//!
//! ```
//! use dpi_rulesets::{paper_ruleset, PaperRuleset};
//!
//! let set = paper_ruleset(PaperRuleset::S500);
//! assert_eq!(set.len(), 500);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builtin;
mod distribution;
mod extract;
mod generator;
mod proptests;
mod traffic;

pub use builtin::{master_ruleset, paper_ruleset, table3_ruleset, PaperRuleset};
pub use distribution::{LengthDistribution, PAPER_RULESET_SIZES, TABLE3_CHAR_COUNT};
pub use extract::{extract_chars, extract_preserving};
pub use generator::{RulesetGenerator, DEFAULT_SEED};
pub use traffic::{
    adversarial_payload, chop, ChopProfile, HttpMalformation, HttpStream, Packet, Segment,
    SegmentProfile, TrafficGenerator, HTTP_MALFORMATIONS,
};
