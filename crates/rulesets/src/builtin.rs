//! The paper's concrete rulesets, reproduced deterministically.
//!
//! Six sizes (Figure 6 / Table II) derived from a single 6,275-string
//! master by distribution-preserving extraction, plus the 19,124-character
//! set used for the Table III comparison against Tuck et al.

use crate::distribution::TABLE3_CHAR_COUNT;
use crate::extract::{extract_chars, extract_preserving};
use crate::generator::RulesetGenerator;
use dpi_automaton::PatternSet;

/// The six ruleset sizes evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PaperRuleset {
    /// 500 rules (Cyclone 3 column of Table II).
    S500,
    /// 634 rules (Stratix 3 column).
    S634,
    /// 1,204 rules (Cyclone 3).
    S1204,
    /// 1,603 rules (Stratix 3).
    S1603,
    /// 2,588 rules (both devices).
    S2588,
    /// The full 6,275-rule master set (Stratix 3).
    S6275,
}

impl PaperRuleset {
    /// All six sizes in ascending order.
    pub const ALL: [PaperRuleset; 6] = [
        PaperRuleset::S500,
        PaperRuleset::S634,
        PaperRuleset::S1204,
        PaperRuleset::S1603,
        PaperRuleset::S2588,
        PaperRuleset::S6275,
    ];

    /// Number of strings in the set.
    pub fn size(self) -> usize {
        match self {
            PaperRuleset::S500 => 500,
            PaperRuleset::S634 => 634,
            PaperRuleset::S1204 => 1204,
            PaperRuleset::S1603 => 1603,
            PaperRuleset::S2588 => 2588,
            PaperRuleset::S6275 => 6275,
        }
    }

    /// The ruleset sizes Table II evaluates on the Stratix 3.
    pub const STRATIX3: [PaperRuleset; 4] = [
        PaperRuleset::S634,
        PaperRuleset::S1603,
        PaperRuleset::S2588,
        PaperRuleset::S6275,
    ];

    /// The ruleset sizes Table II evaluates on the Cyclone 3.
    pub const CYCLONE3: [PaperRuleset; 3] = [
        PaperRuleset::S500,
        PaperRuleset::S1204,
        PaperRuleset::S2588,
    ];
}

impl std::fmt::Display for PaperRuleset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} strings", self.size())
    }
}

/// The 6,275-string master ruleset (deterministic).
pub fn master_ruleset() -> PatternSet {
    RulesetGenerator::new().generate(6275)
}

/// One of the paper's rulesets, extracted from the master with the paper's
/// distribution-preserving method (the 6,275 case *is* the master).
pub fn paper_ruleset(which: PaperRuleset) -> PatternSet {
    let master = master_ruleset();
    match which {
        PaperRuleset::S6275 => master,
        other => extract_preserving(&master, other.size(), 0xEDA0 + other.size() as u64),
    }
}

/// The Table III comparison set: the master reduced to 19,124 characters
/// (matching the Tuck et al. test set's character count).
pub fn table3_ruleset() -> PatternSet {
    extract_chars(&master_ruleset(), TABLE3_CHAR_COUNT, 0x7AB1E3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_are_exact() {
        // Only the small ones here; the full master is exercised in
        // integration tests and benches (it is expensive to build
        // repeatedly under the test runner).
        for which in [PaperRuleset::S500, PaperRuleset::S634] {
            assert_eq!(paper_ruleset(which).len(), which.size());
        }
    }

    #[test]
    fn master_is_deterministic() {
        assert_eq!(master_ruleset(), master_ruleset());
    }

    #[test]
    fn table3_char_count_close() {
        let set = table3_ruleset();
        let bytes = set.total_bytes();
        assert!(
            (18_000..=19_324).contains(&bytes),
            "table3 set has {bytes} chars"
        );
    }

    #[test]
    fn display_and_ordering() {
        assert_eq!(PaperRuleset::S500.to_string(), "500 strings");
        let sizes: Vec<usize> = PaperRuleset::ALL.iter().map(|r| r.size()).collect();
        assert_eq!(sizes, vec![500, 634, 1204, 1603, 2588, 6275]);
    }
}
