//! Table III's comparison systems: construction time and scan throughput
//! of the Tuck et al. bitmap and path-compressed automata against the DTP
//! design, on the 19,124-character comparison ruleset.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dpi_automaton::{Dfa, MultiMatcher};
use dpi_baselines::{BitmapAc, BitmapMatcher, PathAc, PathMatcher};
use dpi_core::{DtpConfig, DtpMatcher, ReducedAutomaton};
use dpi_rulesets::{table3_ruleset, TrafficGenerator};
use std::hint::black_box;

const PAYLOAD: usize = 1 << 15;

fn bench_table3(c: &mut Criterion) {
    let set = table3_ruleset();
    let mut gen = TrafficGenerator::new(1313);
    let payload = gen.infected_packet(PAYLOAD, &set, 8).payload;

    let mut group = c.benchmark_group("table3_build");
    group.sample_size(10);
    group.bench_function("bitmap_build", |b| {
        b.iter(|| black_box(BitmapAc::build(black_box(&set))));
    });
    group.bench_function("path_build", |b| {
        b.iter(|| black_box(PathAc::build(black_box(&set))));
    });
    group.bench_function("dtp_build", |b| {
        b.iter(|| {
            let dfa = Dfa::build(black_box(&set));
            black_box(ReducedAutomaton::reduce(&dfa, DtpConfig::PAPER))
        });
    });
    group.finish();

    let bitmap = BitmapAc::build(&set);
    let path = PathAc::build(&set);
    let dfa = Dfa::build(&set);
    let reduced = ReducedAutomaton::reduce(&dfa, DtpConfig::PAPER);

    let mut group = c.benchmark_group("table3_scan");
    group.throughput(Throughput::Bytes(PAYLOAD as u64));
    group.sample_size(20);
    group.bench_function("bitmap_scan", |b| {
        let m = BitmapMatcher::new(&bitmap, &set);
        b.iter(|| black_box(m.find_all(black_box(&payload))));
    });
    group.bench_function("path_scan", |b| {
        let m = PathMatcher::new(&path, &set);
        b.iter(|| black_box(m.find_all(black_box(&payload))));
    });
    group.bench_function("dtp_scan", |b| {
        let m = DtpMatcher::new(&reduced, &set);
        b.iter(|| black_box(m.find_all(black_box(&payload))));
    });
    group.finish();
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
