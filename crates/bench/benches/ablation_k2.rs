//! Ablation of the depth-2 default count (k2): reduction time and the
//! resulting pointer density, supporting the paper's "4 was the optimum
//! value" claim (§III.B). The `repro ablation-k2` binary prints the
//! quality numbers; this bench shows the build-time cost is flat in k2.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpi_automaton::Dfa;
use dpi_core::{DtpConfig, ReducedAutomaton};
use dpi_rulesets::{paper_ruleset, PaperRuleset};
use std::hint::black_box;

fn bench_k2(c: &mut Criterion) {
    let set = paper_ruleset(PaperRuleset::S500);
    let dfa = Dfa::build(&set);
    let mut group = c.benchmark_group("ablation_k2");
    group.sample_size(10);
    for k2 in [0usize, 1, 2, 4, 8] {
        let cfg = DtpConfig {
            depth1: true,
            k2,
            k3: 1,
        };
        group.bench_with_input(BenchmarkId::new("reduce", k2), &cfg, |b, &cfg| {
            b.iter(|| black_box(ReducedAutomaton::reduce(black_box(&dfa), cfg)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_k2);
criterion_main!(benches);
