//! Streaming-scan overhead: the resumable core vs the whole-payload scan,
//! plus the flow-table ingest path.
//!
//! `stream-mtu1500` vs `whole` is the number that matters for real DPI
//! deployment: the per-chunk suspend/resume (one stepper dispatch + one
//! register load/store) amortized over an MTU of per-byte work. The
//! `stream-mtu64` entry shows the overhead floor at small packets, and
//! `flowtable-mtu1500` adds the per-packet set-associative flow lookup on
//! an interleaved multi-flow arrival order.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dpi_automaton::{Dfa, Match, ScanState};
use dpi_core::{
    CompiledAutomaton, CompiledMatcher, DtpConfig, FlowKey, FlowPacket, FlowTable,
    ReducedAutomaton,
};
use dpi_rulesets::{extract_preserving, master_ruleset, TrafficGenerator};
use std::hint::black_box;

const PAYLOAD: usize = 1 << 18;

fn bench_streaming(c: &mut Criterion) {
    let set = extract_preserving(&master_ruleset(), 300, 42);
    let dfa = Dfa::build(&set);
    let reduced = ReducedAutomaton::reduce(&dfa, DtpConfig::PAPER);
    let compiled = CompiledAutomaton::compile(&reduced);
    let matcher = CompiledMatcher::new(&compiled, &set);
    let mut gen = TrafficGenerator::new(0x51E);
    let payload = gen.infected_packet(PAYLOAD, &set, 32).payload;

    let mut group = c.benchmark_group("stream_scan");
    group.throughput(Throughput::Bytes(PAYLOAD as u64));
    group.sample_size(10);

    group.bench_with_input(BenchmarkId::new("whole", "300"), &payload, |b, p| {
        let mut out: Vec<Match> = Vec::with_capacity(256);
        b.iter(|| {
            matcher.scan_into(black_box(p), &mut out);
            black_box(out.len())
        });
    });

    for mtu in [1500usize, 64] {
        let chunks: Vec<&[u8]> = payload.chunks(mtu).collect();
        group.bench_with_input(
            BenchmarkId::new(format!("stream-mtu{mtu}"), "300"),
            &chunks,
            |b, segs| {
                let mut out: Vec<Match> = Vec::with_capacity(256);
                b.iter(|| {
                    out.clear();
                    let mut state = ScanState::fresh();
                    for seg in segs {
                        matcher.scan_chunk_into(&mut state, black_box(seg), &mut out);
                    }
                    black_box(out.len())
                });
            },
        );
    }

    // Flow-table ingest: the payload as 32 interleaved flows of 1,500-byte
    // packets, each packet routed through the table to its flow's state.
    const FLOWS: usize = 32;
    let flow_payloads: Vec<&[u8]> = payload.chunks(PAYLOAD / FLOWS).collect();
    let segmented: Vec<Vec<&[u8]>> =
        flow_payloads.iter().map(|p| p.chunks(1500).collect()).collect();
    let schedule =
        gen.interleave_schedule(&segmented.iter().map(Vec::len).collect::<Vec<_>>());
    group.bench_with_input(
        BenchmarkId::new("flowtable-mtu1500", "300"),
        &schedule,
        |b, order| {
            let mut alerts = Vec::new();
            b.iter(|| {
                let mut table = FlowTable::new(FLOWS * 2, ScanState::fresh());
                let mut cursors = vec![0usize; segmented.len()];
                let mut total = 0usize;
                for &flow in order {
                    let packet = FlowPacket {
                        key: FlowKey(flow as u128),
                        payload: segmented[flow][cursors[flow]],
                    };
                    cursors[flow] += 1;
                    table.ingest_batch(
                        [packet],
                        |state, chunk, out| matcher.scan_chunk_into(state, chunk, out),
                        &mut alerts,
                    );
                    total += alerts.len();
                }
                black_box(total)
            });
        },
    );
    group.finish();
}

criterion_group!(benches, bench_streaming);
criterion_main!(benches);
