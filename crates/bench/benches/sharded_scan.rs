//! Sharded per-core scanning vs the monolithic compiled engine, per core
//! count, plus the next-row-touch prefetch A/B.
//!
//! Complements `scan_throughput` (which compares scan *engines* on one
//! automaton): here the automaton itself is split. On a multi-core host
//! the `sharded/coresN` entries show wall-clock scaling; on a single
//! hardware core they degrade to the sum of shard scans — see the repro
//! `sharded-throughput` experiment for the per-core decomposition.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dpi_automaton::{Dfa, Match};
use dpi_core::{
    CompiledAutomaton, CompiledMatcher, DtpConfig, ReducedAutomaton, ShardedConfig,
    ShardedMatcher,
};
use dpi_rulesets::{extract_preserving, master_ruleset, TrafficGenerator};
use std::hint::black_box;

const PAYLOAD: usize = 1 << 18;

fn bench_sharded(c: &mut Criterion) {
    // Large workload: ~1,600 rules put the monolithic arena well past the
    // per-shard budget, the regime sharding exists for.
    let set = extract_preserving(&master_ruleset(), 1600, 0x5D);
    let dfa = Dfa::build(&set);
    let reduced = ReducedAutomaton::reduce(&dfa, DtpConfig::PAPER);
    let compiled = CompiledAutomaton::compile(&reduced);
    let mut gen = TrafficGenerator::new(17);
    let payload = gen.infected_packet(PAYLOAD, &set, 32).payload;

    let mut group = c.benchmark_group("sharded_scan");
    group.throughput(Throughput::Bytes(PAYLOAD as u64));
    group.sample_size(10);

    group.bench_with_input(BenchmarkId::new("compiled-seq", "1600"), &payload, |b, p| {
        let m = CompiledMatcher::new(&compiled, &set);
        let mut out: Vec<Match> = Vec::with_capacity(256);
        b.iter(|| {
            m.scan_into(black_box(p), &mut out);
            black_box(out.len())
        });
    });
    group.bench_with_input(
        BenchmarkId::new("compiled-prefetch", "1600"),
        &payload,
        |b, p| {
            let m = CompiledMatcher::new(&compiled, &set).with_prefetch(true);
            let mut out: Vec<Match> = Vec::with_capacity(256);
            b.iter(|| {
                m.scan_into(black_box(p), &mut out);
                black_box(out.len())
            });
        },
    );
    for cores in [1usize, 2, 4] {
        let sharded = ShardedMatcher::build(&set, &ShardedConfig::with_cores(cores))
            .expect("ruleset fits the default shard budget");
        group.bench_with_input(
            BenchmarkId::new(format!("sharded-cores{cores}"), "1600"),
            &payload,
            |b, p| {
                let mut scratch = sharded.scratch();
                let mut out: Vec<Match> = Vec::with_capacity(256);
                b.iter(|| {
                    sharded.scan_into(black_box(p), &mut scratch, &mut out);
                    black_box(out.len())
                });
            },
        );
    }
    // The flows shape: many small payloads streamed across cores.
    let flows: Vec<&[u8]> = payload.chunks(1500).collect();
    for cores in [1usize, 4] {
        let sharded = ShardedMatcher::build(&set, &ShardedConfig::with_cores(cores))
            .expect("ruleset fits the default shard budget");
        group.bench_with_input(
            BenchmarkId::new(format!("stream-cores{cores}"), "1600"),
            &flows,
            |b, fl| {
                let mut out: Vec<Vec<Match>> = Vec::new();
                b.iter(|| {
                    sharded.scan_stream_into(black_box(fl), &mut out);
                    black_box(out.len())
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sharded);
criterion_main!(benches);
