//! Software scan throughput of every matcher in the workspace.
//!
//! This is the software-side complement to Table II/III's hardware
//! throughput numbers: all matchers produce identical matches, so the only
//! question is bytes per second. The full-DFA and DTP matchers do constant
//! work per byte; the fail-pointer designs (NFA, bitmap, path compression)
//! pay input-dependent extra lookups; the bit-level `HwMatcher` pays for
//! word decoding (it exists for verification, not speed).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dpi_automaton::{AnchorSet, Dfa, DfaMatcher, Match, MultiMatcher, Nfa, NfaMatcher, PairTable};
use dpi_baselines::{BitmapAc, BitmapMatcher, PathAc, PathMatcher};
use dpi_core::{BatchScanner, CompiledAutomaton, CompiledMatcher, DtpConfig, DtpMatcher, ReducedAutomaton};
use dpi_hw::{HwImage, HwMatcher};
use dpi_rulesets::{extract_preserving, master_ruleset, TrafficGenerator};
use std::hint::black_box;

const PAYLOAD: usize = 1 << 16;

fn bench_scans(c: &mut Criterion) {
    let set = extract_preserving(&master_ruleset(), 300, 42);
    let dfa = Dfa::build(&set);
    let nfa = Nfa::build(&set);
    let reduced = ReducedAutomaton::reduce(&dfa, DtpConfig::PAPER);
    let anchors = AnchorSet::build(&dfa, &set, AnchorSet::DEFAULT_HORIZON);
    let profile = TrafficGenerator::new(0x9A9A).clean_packet(128 << 10).payload;
    let pairs =
        PairTable::build_profiled(&dfa, &set, &anchors, PairTable::DEFAULT_BUDGET, &profile);
    let compiled =
        CompiledAutomaton::compile_with_prefilter(&reduced, anchors).with_pair_table(pairs);
    let image = HwImage::build(&reduced).expect("fits");
    let bitmap = BitmapAc::build(&set);
    let path = PathAc::build(&set);
    let mut gen = TrafficGenerator::new(99);
    let payload = gen.infected_packet(PAYLOAD, &set, 16).payload;
    let clean = gen.clean_packet(PAYLOAD).payload;

    let mut group = c.benchmark_group("scan_throughput");
    group.throughput(Throughput::Bytes(PAYLOAD as u64));
    group.sample_size(20);

    group.bench_with_input(BenchmarkId::new("dtp", "300"), &payload, |b, p| {
        let m = DtpMatcher::new(&reduced, &set);
        b.iter(|| black_box(m.find_all(black_box(p))));
    });
    // "compiled" rows track the shipped default (prefilter lane plus the
    // stride-2 pair layer); "-nopairs" isolates the pair layer against
    // the lane alone, "-noprefilter" the pairs-only core, and
    // "-stepper" the bare byte stepper — on infected and clean payloads.
    for (label, m) in [
        ("compiled", CompiledMatcher::new(&compiled, &set)),
        (
            "compiled-nopairs",
            CompiledMatcher::new(&compiled, &set).with_pairs(false),
        ),
        (
            "compiled-noprefilter",
            CompiledMatcher::new(&compiled, &set).with_prefilter(false),
        ),
        (
            "compiled-stepper",
            CompiledMatcher::new(&compiled, &set)
                .with_prefilter(false)
                .with_pairs(false),
        ),
    ] {
        for (traffic, p) in [("300", &payload), ("300-clean", &clean)] {
            group.bench_with_input(
                BenchmarkId::new(label, traffic),
                p,
                |b, p| {
                    let mut out: Vec<Match> = Vec::with_capacity(64);
                    b.iter(|| {
                        m.scan_into(black_box(p), &mut out);
                        black_box(out.len())
                    });
                },
            );
        }
    }
    // Batch scanning: the same bytes split across N packets interleaved
    // round-robin — the software mirror of the paper's parallel engines.
    for lanes in [4usize, 8] {
        let packets: Vec<&[u8]> = payload.chunks(PAYLOAD / lanes).collect();
        group.bench_with_input(
            BenchmarkId::new(format!("batch{lanes}"), "300"),
            &packets,
            |b, pkts| {
                let scanner = BatchScanner::new(&compiled, &set, lanes);
                let mut out: Vec<Vec<Match>> = Vec::new();
                b.iter(|| {
                    scanner.scan_batch_into(black_box(pkts), &mut out);
                    black_box(out.len())
                });
            },
        );
    }
    group.bench_with_input(BenchmarkId::new("full_dfa", "300"), &payload, |b, p| {
        let m = DfaMatcher::new(&dfa, &set);
        b.iter(|| black_box(m.find_all(black_box(p))));
    });
    group.bench_with_input(BenchmarkId::new("nfa_fail", "300"), &payload, |b, p| {
        let m = NfaMatcher::new(&nfa, &set);
        b.iter(|| black_box(m.find_all(black_box(p))));
    });
    group.bench_with_input(BenchmarkId::new("bitmap_tuck", "300"), &payload, |b, p| {
        let m = BitmapMatcher::new(&bitmap, &set);
        b.iter(|| black_box(m.find_all(black_box(p))));
    });
    group.bench_with_input(BenchmarkId::new("path_tuck", "300"), &payload, |b, p| {
        let m = PathMatcher::new(&path, &set);
        b.iter(|| black_box(m.find_all(black_box(p))));
    });
    group.bench_with_input(BenchmarkId::new("hw_image", "300"), &payload, |b, p| {
        let m = HwMatcher::new(&image, &set);
        b.iter(|| black_box(m.find_all(black_box(p))));
    });
    group.finish();
}

criterion_group!(benches, bench_scans);
criterion_main!(benches);
