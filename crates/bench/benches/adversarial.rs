//! The guaranteed-throughput experiment as a benchmark: fail-pointer
//! matchers slow down on crafted traffic, the DTP matcher does not.
//!
//! Benchmarks the same matcher on benign vs adversarial payloads; the
//! paper's architectural claim (§I) predicts the DTP ratio is 1.0 and the
//! fail-pointer ratios exceed it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dpi_automaton::{Dfa, MultiMatcher, Nfa, NfaMatcher, PatternSet};
use dpi_baselines::{BitmapAc, BitmapMatcher};
use dpi_core::{DtpConfig, DtpMatcher, ReducedAutomaton};
use dpi_rulesets::{adversarial_payload, TrafficGenerator};
use std::hint::black_box;

const PAYLOAD: usize = 1 << 14;

/// Self-overlap-heavy ruleset (NOP sleds + markers): deep fail chains.
fn sled_set() -> PatternSet {
    let mut patterns: Vec<Vec<u8>> = (2..=32).map(|k| vec![0x90u8; k]).collect();
    patterns.push(b"/bin/sh".to_vec());
    patterns.push(b"attack".to_vec());
    PatternSet::new(&patterns).expect("valid")
}

fn bench_adversarial(c: &mut Criterion) {
    let set = sled_set();
    let nfa = Nfa::build(&set);
    let bitmap = BitmapAc::build(&set);
    let dfa = Dfa::build(&set);
    let reduced = ReducedAutomaton::reduce(&dfa, DtpConfig::PAPER);

    let crafted = adversarial_payload(&set, PAYLOAD);
    let benign = TrafficGenerator::new(7).clean_packet(PAYLOAD).payload;

    let mut group = c.benchmark_group("adversarial");
    group.throughput(Throughput::Bytes(PAYLOAD as u64));
    group.sample_size(20);
    for (label, payload) in [("benign", &benign), ("crafted", &crafted)] {
        group.bench_with_input(BenchmarkId::new("nfa_fail", label), payload, |b, p| {
            let m = NfaMatcher::new(&nfa, &set);
            b.iter(|| black_box(m.find_all(black_box(p))));
        });
        group.bench_with_input(BenchmarkId::new("bitmap_tuck", label), payload, |b, p| {
            let m = BitmapMatcher::new(&bitmap, &set);
            b.iter(|| black_box(m.find_all(black_box(p))));
        });
        group.bench_with_input(BenchmarkId::new("dtp", label), payload, |b, p| {
            let m = DtpMatcher::new(&reduced, &set);
            b.iter(|| black_box(m.find_all(black_box(p))));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_adversarial);
criterion_main!(benches);
