//! Build-side costs behind Table II: trie/DFA construction, lookup-table
//! selection and transition reduction, per ruleset size.
//!
//! The paper builds its search structures offline, but rule updates are
//! frequent in production IDS deployments, so construction time matters to
//! a downstream adopter.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dpi_automaton::Dfa;
use dpi_core::{DtpConfig, ReducedAutomaton};
use dpi_rulesets::{paper_ruleset, PaperRuleset};
use std::hint::black_box;

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_build");
    group.sample_size(10);
    for which in [PaperRuleset::S500, PaperRuleset::S634, PaperRuleset::S1204] {
        let set = paper_ruleset(which);
        group.throughput(Throughput::Bytes(set.total_bytes() as u64));
        group.bench_with_input(
            BenchmarkId::new("dfa_build", which.size()),
            &set,
            |b, set| {
                b.iter(|| black_box(Dfa::build(black_box(set))));
            },
        );
        let dfa = Dfa::build(&set);
        group.bench_with_input(
            BenchmarkId::new("dtp_reduce", which.size()),
            &dfa,
            |b, dfa| {
                b.iter(|| black_box(ReducedAutomaton::reduce(black_box(dfa), DtpConfig::PAPER)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_build);
criterion_main!(benches);
