//! Micro-bench on the paper's running example (Figure 1/2): the complete
//! build-reduce-verify pipeline for {he, she, his, hers}. A canary: if
//! this regresses, every larger build regressed.

use criterion::{criterion_group, criterion_main, Criterion};
use dpi_automaton::{Dfa, PatternSet};
use dpi_core::{DtpConfig, ReducedAutomaton};
use std::hint::black_box;

fn bench_fig2(c: &mut Criterion) {
    let set = PatternSet::new(["he", "she", "his", "hers"]).expect("valid");
    c.bench_function("fig2_pipeline", |b| {
        b.iter(|| {
            let dfa = Dfa::build(black_box(&set));
            let red = ReducedAutomaton::reduce(&dfa, DtpConfig::PAPER);
            assert!(red.verify_against(&dfa).is_none());
            black_box(red.stored_pointers())
        });
    });
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
