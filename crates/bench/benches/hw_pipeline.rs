//! Hardware-side pipeline costs: memory-image packing/encoding and the
//! cycle-accurate block simulation (the substrate behind the Table II
//! throughput and `sim-validate` numbers).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dpi_automaton::Dfa;
use dpi_core::{DtpConfig, ReducedAutomaton};
use dpi_hw::HwImage;
use dpi_rulesets::{paper_ruleset, PaperRuleset, TrafficGenerator};
use dpi_sim::{Block, SimPacket};
use std::hint::black_box;

fn bench_hw(c: &mut Criterion) {
    let set = paper_ruleset(PaperRuleset::S500);
    let dfa = Dfa::build(&set);
    let reduced = ReducedAutomaton::reduce(&dfa, DtpConfig::PAPER);

    let mut group = c.benchmark_group("hw_image");
    group.sample_size(10);
    group.bench_function("pack_encode_500", |b| {
        b.iter(|| black_box(HwImage::build(black_box(&reduced)).expect("fits")));
    });
    group.finish();

    let image = HwImage::build(&reduced).expect("fits");
    let block = Block::from_image(image, set.clone());
    let mut gen = TrafficGenerator::new(31);
    let packets: Vec<SimPacket> = (0..6)
        .map(|id| SimPacket {
            id,
            bytes: gen.infected_packet(4096, &set, 4).payload,
        })
        .collect();
    let total: usize = packets.iter().map(|p| p.bytes.len()).sum();

    let mut group = c.benchmark_group("cycle_sim");
    group.throughput(Throughput::Bytes(total as u64));
    group.sample_size(10);
    group.bench_function("block_6x4096B", |b| {
        b.iter(|| black_box(block.run(black_box(packets.clone()))));
    });
    group.finish();
}

criterion_group!(benches, bench_hw);
criterion_main!(benches);
