//! # dpi-bench
//!
//! Benchmark harness and table/figure reproduction for the DATE 2010
//! paper. The `repro` binary regenerates every table and figure
//! (`cargo run -p dpi-bench --release --bin repro -- all`); the Criterion
//! benches under `benches/` measure the software-side costs (automaton
//! construction, reduction, scanning, baseline comparison, ablations).
//!
//! This library holds the pieces shared between them: the paper's
//! published numbers (for paper-vs-measured rows) and small formatting
//! helpers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The paper's published values, used to print paper-vs-measured rows.
pub mod paper {
    /// One column of Table II (a ruleset on a device).
    #[derive(Debug, Clone, Copy)]
    pub struct Table2Column {
        /// Ruleset size (strings).
        pub strings: usize,
        /// Device name.
        pub device: &'static str,
        /// States in the original automaton.
        pub states: usize,
        /// Original Aho-Corasick average pointers per state.
        pub original_avg: f64,
        /// Blocks per packet group.
        pub blocks: usize,
        /// Depth-1 default pointers.
        pub d1: usize,
        /// Average pointers after depth-1 defaults.
        pub avg_d1: f64,
        /// Depth-1+2 default pointers.
        pub d1_d2: usize,
        /// Average pointers after depth-1+2 defaults.
        pub avg_d2: f64,
        /// Depth-1+2+3 default pointers.
        pub d1_d2_d3: usize,
        /// Average pointers after the full scheme.
        pub avg_d3: f64,
        /// Reduction percentage.
        pub reduction_pct: f64,
        /// Total memory bytes.
        pub mem_bytes: usize,
        /// Throughput in Gbps.
        pub gbps: f64,
    }

    /// Table II, all seven columns as printed in the paper.
    pub const TABLE2: [Table2Column; 7] = [
        Table2Column { strings: 634, device: "Stratix 3", states: 11_796, original_avg: 68.29, blocks: 1, d1: 68, avg_d1: 8.16, d1_d2: 262, avg_d2: 3.43, d1_d2_d3: 323, avg_d3: 2.39, reduction_pct: 96.5, mem_bytes: 148_259, gbps: 44.2 },
        Table2Column { strings: 1603, device: "Stratix 3", states: 29_155, original_avg: 81.07, blocks: 2, d1: 97, avg_d1: 6.77, d1_d2: 493, avg_d2: 2.68, d1_d2_d3: 622, avg_d3: 2.01, reduction_pct: 97.5, mem_bytes: 296_967, gbps: 22.1 },
        Table2Column { strings: 2588, device: "Stratix 3", states: 46_301, original_avg: 85.00, blocks: 3, d1: 108, avg_d1: 5.33, d1_d2: 662, avg_d2: 2.09, d1_d2_d3: 850, avg_d3: 1.90, reduction_pct: 97.8, mem_bytes: 445_641, gbps: 14.7 },
        Table2Column { strings: 6275, device: "Stratix 3", states: 109_467, original_avg: 87.01, blocks: 6, d1: 110, avg_d1: 4.16, d1_d2: 1131, avg_d2: 1.92, d1_d2_d3: 1509, avg_d3: 1.54, reduction_pct: 98.2, mem_bytes: 838_298, gbps: 7.4 },
        Table2Column { strings: 500, device: "Cyclone 3", states: 9_329, original_avg: 67.28, blocks: 1, d1: 67, avg_d1: 7.17, d1_d2: 246, avg_d2: 2.87, d1_d2_d3: 306, avg_d3: 2.09, reduction_pct: 96.9, mem_bytes: 105_599, gbps: 14.9 },
        Table2Column { strings: 1204, device: "Cyclone 3", states: 22_026, original_avg: 77.07, blocks: 2, d1: 83, avg_d1: 5.70, d1_d2: 415, avg_d2: 2.21, d1_d2_d3: 531, avg_d3: 1.88, reduction_pct: 97.6, mem_bytes: 214_141, gbps: 7.5 },
        Table2Column { strings: 2588, device: "Cyclone 3", states: 46_301, original_avg: 85.00, blocks: 4, d1: 125, avg_d1: 5.28, d1_d2: 723, avg_d2: 2.20, d1_d2_d3: 955, avg_d3: 1.18, reduction_pct: 98.6, mem_bytes: 429_656, gbps: 3.7 },
    ];

    /// Table I rows: (device, logic used, logic total, m9k used, m9k
    /// total, fmax MHz).
    pub const TABLE1: [(&str, usize, usize, usize, usize, f64); 2] = [
        ("Cyclone 3", 35_511, 119_088, 404, 432, 233.15),
        ("Stratix 3", 69_585, 254_400, 822, 864, 460.19),
    ];

    /// Table III rows: (approach, device, memory bytes, Gbps).
    pub const TABLE3: [(&str, &str, usize, f64); 4] = [
        ("Our method", "Cyclone 3", 138_470, 7.5),
        ("Our method", "Stratix 3", 138_470, 22.1),
        ("Bitmap [13]", "ASIC", 2_800_000, 7.8),
        ("Path compression [13]", "ASIC", 1_100_000, 7.8),
    ];

    /// Figure 2: average stored pointers for {he, she, his, hers} as
    /// defaults are added (original, d1, d1+d2, d1+d2+d3).
    pub const FIGURE2: [f64; 4] = [2.5, 1.1, 0.5, 0.1];

    /// Maximum power consumption reported in §V.D, watts (Cyclone 3).
    pub const FIG7_CYCLONE_MAX_W: f64 = 2.78;
    /// Maximum power consumption reported in §V.D, watts (Stratix 3).
    pub const FIG8_STRATIX_MAX_W: f64 = 13.28;
}

/// Appends one JSON line to the file named by `BENCH_JSON` (no-op when
/// the variable is unset) — `{"id": …, "median_ns": …, "bytes_per_iter":
/// …}`. Delegates to the criterion shim's emitter so repro experiments
/// and criterion benches share one schema and one trackable stream.
pub fn bench_json_row(id: &str, median_ns: f64, bytes_per_iter: u64) {
    criterion::emit_bench_json(id, median_ns, bytes_per_iter);
}

/// Right-pads or truncates a cell to `width` characters.
pub fn cell(text: &str, width: usize) -> String {
    let mut s = text.to_string();
    if s.len() > width {
        s.truncate(width);
    }
    while s.len() < width {
        s.push(' ');
    }
    s
}

/// Formats a byte count with thousands separators.
pub fn thousands(n: usize) -> String {
    let digits: Vec<char> = n.to_string().chars().rev().collect();
    let mut out = String::new();
    for (i, c) in digits.iter().enumerate() {
        if i > 0 && i % 3 == 0 {
            out.push(',');
        }
        out.push(*c);
    }
    out.chars().rev().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thousands_formatting() {
        assert_eq!(thousands(0), "0");
        assert_eq!(thousands(999), "999");
        assert_eq!(thousands(1000), "1,000");
        assert_eq!(thousands(148_259), "148,259");
        assert_eq!(thousands(2_800_000), "2,800,000");
    }

    #[test]
    fn cell_pads_and_truncates() {
        assert_eq!(cell("ab", 4), "ab  ");
        assert_eq!(cell("abcdef", 4), "abcd");
    }

    #[test]
    fn paper_constants_consistent() {
        // Table II running sums are monotone.
        for col in paper::TABLE2 {
            assert!(col.d1 <= col.d1_d2);
            assert!(col.d1_d2 <= col.d1_d2_d3);
            assert!(col.avg_d1 >= col.avg_d2);
            assert!(col.avg_d2 >= col.avg_d3);
            assert!(col.original_avg > col.avg_d1);
        }
    }
}
