//! Regenerates every table and figure of the DATE 2010 paper.
//!
//! ```text
//! cargo run -p dpi-bench --release --bin repro -- <experiment>
//! ```
//!
//! Experiments: `fig1 fig2 fig3 fig6 table1 table2 table3 fig7 fig8
//! ablation-k2 ablation-depth match-sharing m144k asic adversarial
//! sim-validate sw-throughput sw-throughput-clean sw-throughput-stride
//! sw-throughput-simd sharded-throughput two-stage flow-throughput
//! stream-robustness service-robustness protocol-robustness swap-drain
//! all`.
//!
//! `sw-throughput-simd` needs the `simd` cargo feature
//! (`cargo run --release --features simd -p dpi-bench --bin repro --
//! sw-throughput-simd`); without it the experiment prints a note and
//! emits no rows.
//!
//! Each experiment prints the paper's published values next to this
//! reproduction's measured values. Absolute agreement is not expected for
//! workload-dependent quantities (the rulesets are synthetic; DESIGN.md
//! §2); *shape* agreement — who wins, scaling factors, crossover group
//! sizes — is asserted in `tests/repro_shapes.rs`.

use dpi_automaton::{Dfa, Nfa, NfaMatcher, PatternSet, Trie};
use dpi_baselines::{BitmapAc, PathAc};
use dpi_bench::{cell, paper, thousands};
use dpi_core::{DtpConfig, ReductionReport};
use dpi_fpga::{plan, FpgaDevice, PowerModel, ResourceReport};
use dpi_hw::StateType;
use dpi_rulesets::{
    adversarial_payload, master_ruleset, paper_ruleset, table3_ruleset, LengthDistribution,
    PaperRuleset, TrafficGenerator,
};
use dpi_sim::{Accelerator, AcceleratorConfig};

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let experiments: &[(&str, fn())] = &[
        ("fig1", fig1),
        ("fig2", fig2),
        ("fig3", fig3),
        ("fig6", fig6),
        ("table1", table1),
        ("table2", table2),
        ("table3", table3),
        ("fig7", fig7),
        ("fig8", fig8),
        ("ablation-k2", ablation_k2),
        ("ablation-depth", ablation_depth),
        ("match-sharing", match_sharing),
        ("m144k", m144k),
        ("asic", asic),
        ("adversarial", adversarial),
        ("sim-validate", sim_validate),
        ("sw-throughput", sw_throughput),
        ("sw-throughput-clean", sw_throughput_clean),
        ("sw-throughput-stride", sw_throughput_stride),
        ("sw-throughput-simd", sw_throughput_simd),
        ("sharded-throughput", sharded_throughput),
        ("two-stage", two_stage),
        ("flow-throughput", flow_throughput),
        ("stream-robustness", stream_robustness),
        ("service-robustness", service_robustness),
        ("protocol-robustness", protocol_robustness),
        ("swap-drain", swap_drain),
    ];
    if arg == "all" {
        for (name, f) in experiments {
            println!("\n================ {name} ================");
            f();
        }
        return;
    }
    match experiments.iter().find(|(name, _)| *name == arg) {
        Some((_, f)) => f(),
        None => {
            eprintln!(
                "unknown experiment {arg:?}; choose one of: {} all",
                experiments
                    .iter()
                    .map(|(n, _)| *n)
                    .collect::<Vec<_>>()
                    .join(" ")
            );
            std::process::exit(2);
        }
    }
}

fn figure1_set() -> PatternSet {
    PatternSet::new(["he", "she", "his", "hers"]).expect("valid patterns")
}

/// Figure 1: the Aho-Corasick DFA for {he, she, his, hers}.
fn fig1() {
    let set = figure1_set();
    let trie = Trie::build(&set);
    let dfa = Dfa::build(&set);
    println!("Aho-Corasick DFA for {{he, she, his, hers}} (move function)\n");
    println!("{} states (paper Figure 1: 10)", dfa.len());
    for s in dfa.states() {
        let path = trie.path(s);
        let outs: Vec<String> = dfa
            .output(s)
            .iter()
            .map(|&p| String::from_utf8_lossy(set.pattern(p)).into_owned())
            .collect();
        let nonstart: Vec<String> = dfa
            .row(s)
            .iter()
            .enumerate()
            .filter(|&(_, &t)| t != 0)
            .map(|(c, &t)| format!("{}→S{}", c as u8 as char, t))
            .collect();
        println!(
            "  S{} depth {} path {:?}{}  [{}]",
            s.0,
            dfa.depth(s),
            String::from_utf8_lossy(&path),
            if outs.is_empty() {
                String::new()
            } else {
                format!("  matches {outs:?}")
            },
            nonstart.join(" ")
        );
    }
}

/// Figure 2: average stored pointers as defaults are added.
fn fig2() {
    let set = figure1_set();
    let r = ReductionReport::compute(&set, DtpConfig::PAPER);
    println!("average stored transition pointers, {{he, she, his, hers}}\n");
    println!("{}{}measured", cell("stage", 16), cell("paper", 10));
    let rows = [
        ("original", paper::FIGURE2[0], r.original_avg),
        ("+ depth-1", paper::FIGURE2[1], r.avg_after_d1),
        ("+ depth-2", paper::FIGURE2[2], r.avg_after_d2),
        ("+ depth-3", paper::FIGURE2[3], r.avg_after_d3),
    ];
    for (stage, p, m) in rows {
        println!("{}{}{m:.1}", cell(stage, 16), cell(&format!("{p:.1}"), 10));
    }
    println!(
        "\n(the 2.6 vs 2.5 original count is a known diagram-census\n discrepancy; the three reduced stages match exactly — see EXPERIMENTS.md)"
    );
}

/// Figure 3: the 15 state types.
fn fig3() {
    println!("state types: position in the 324-bit word and size in bits\n");
    println!(
        "{}{}{}{}36-bit slots",
        cell("type", 6),
        cell("pointers", 10),
        cell("width(b)", 10),
        cell("bit offset", 12),
    );
    for ty in StateType::all() {
        let class = ty.class();
        let lo = match class.capacity() {
            1 => 0,
            4 => 2,
            7 => 5,
            10 => 8,
            _ => 11,
        };
        println!(
            "{}{}{}{}{}..{}",
            cell(&ty.to_string(), 6),
            cell(&format!("{}-{}", lo, class.capacity()), 10),
            cell(&ty.width_bits().to_string(), 10),
            cell(&ty.bit_offset().to_string(), 12),
            ty.start_slot(),
            ty.start_slot() + class.slots() - 1,
        );
    }
}

/// Figure 6: string-length distribution of the rulesets.
fn fig6() {
    println!("string length histograms (Figure 6; '50' pools 50+)\n");
    let master = master_ruleset();
    for which in PaperRuleset::ALL {
        let set = if which == PaperRuleset::S6275 {
            master.clone()
        } else {
            paper_ruleset(which)
        };
        let lengths: Vec<usize> = set.iter().map(|(_, p)| p.len()).collect();
        let hist = LengthDistribution::figure6_histogram(&lengths);
        let peak = hist
            .iter()
            .filter(|&&(l, _)| l < 50)
            .max_by_key(|&&(_, c)| c)
            .expect("non-empty");
        println!(
            "{}: {} chars, mean len {:.1}, peak {} strings at len {}",
            which,
            set.total_bytes(),
            set.total_bytes() as f64 / set.len() as f64,
            peak.1,
            peak.0
        );
    }
    println!("\nfull histogram of the 6,275-string master:");
    let lengths: Vec<usize> = master.iter().map(|(_, p)| p.len()).collect();
    for (len, count) in LengthDistribution::figure6_histogram(&lengths) {
        if count > 0 {
            println!("  len {:>3}{}: {:>4} {}", len, if len == 50 { "+" } else { " " }, count, "#".repeat(count / 8));
        }
    }
}

/// Table I: resource utilization.
fn table1() {
    println!("resource utilization (Table I)\n");
    println!(
        "{}{}{}fmax",
        cell("device", 12),
        cell("logic model (paper)", 36),
        cell("M9K model (paper)", 22),
    );
    for (device, (p_logic, p_logic_t, p_m9k, p_m9k_t, p_mhz)) in [
        (FpgaDevice::cyclone3(), {
            let r = paper::TABLE1[0];
            (r.1, r.2, r.3, r.4, r.5)
        }),
        (FpgaDevice::stratix3(), {
            let r = paper::TABLE1[1];
            (r.1, r.2, r.3, r.4, r.5)
        }),
    ] {
        let m = ResourceReport::for_device(&device);
        println!(
            "{}{}{}{:.2} MHz",
            cell(&m.device, 12),
            cell(
                &format!(
                    "{} ({}/{})",
                    m.logic_cell(),
                    thousands(p_logic),
                    thousands(p_logic_t)
                ),
                36
            ),
            cell(&format!("{} ({p_m9k}/{p_m9k_t})", m.m9k_cell()), 22),
            p_mhz
        );
    }
    println!("\nM9K model: 9·⌈words/256⌉ state + 6 match + 2 LUT-compare + 3 LUT-target per block");
}

/// Table II: transition-pointer reduction, memory and throughput.
fn table2() {
    println!("reduction in transition pointers (Table II)\n");
    println!(
        "{}{}{}{}{}{}{}{}{}Gbps",
        cell("ruleset", 9),
        cell("device", 10),
        cell("blocks", 7),
        cell("states", 8),
        cell("orig avg", 9),
        cell("d1/d1+2/d1+2+3", 16),
        cell("avg d3", 7),
        cell("reduction", 10),
        cell("mem bytes", 11),
    );
    let master = master_ruleset();
    for col in paper::TABLE2 {
        let device = if col.device == "Stratix 3" {
            FpgaDevice::stratix3()
        } else {
            FpgaDevice::cyclone3()
        };
        let set = if col.strings == 6275 {
            master.clone()
        } else {
            let which = PaperRuleset::ALL
                .into_iter()
                .find(|w| w.size() == col.strings)
                .expect("paper size");
            paper_ruleset(which)
        };
        // Paper row first.
        println!(
            "{}{}{}{}{}{}{}{}{}{}",
            cell(&col.strings.to_string(), 9),
            cell(col.device, 10),
            cell(&format!("{} (paper)", col.blocks), 15),
            cell(&thousands(col.states), 8),
            cell(&format!("{:.2}", col.original_avg), 9),
            cell(
                &format!("{}/{}/{}", col.d1, col.d1_d2, col.d1_d2_d3),
                16
            ),
            cell(&format!("{:.2}", col.avg_d3), 7),
            cell(&format!("{:.1}%", col.reduction_pct), 10),
            cell(&thousands(col.mem_bytes), 11),
            col.gbps,
        );
        match plan(&set, &device) {
            Ok(p) => {
                // The paper's "Original Aho-Corasick" block describes the
                // *unsplit* automaton, and its "Reduction" row compares the
                // split averages against that unsplit baseline (e.g.
                // 1.18 vs 85.00 = 98.6% for 2588 strings on the Cyclone).
                let unsplit = dpi_automaton::DfaStats::compute(&Dfa::build(&set));
                let reduction = 1.0 - p.reduction.avg_after.2 / unsplit.avg_pointers;
                println!(
                    "{}{}{}{}{}{}{}{}{}{:.1}",
                    cell("", 9),
                    cell("", 10),
                    cell(&format!("{} (ours) ", p.group_size), 15),
                    cell(&thousands(p.reduction.total_states), 8),
                    cell(&format!("{:.2}", unsplit.avg_pointers), 9),
                    cell(
                        &format!(
                            "{}/{}/{}",
                            p.reduction.entries.0, p.reduction.entries.1, p.reduction.entries.2
                        ),
                        16
                    ),
                    cell(&format!("{:.2}", p.reduction.avg_after.2), 7),
                    cell(&format!("{:.1}%", reduction * 100.0), 10),
                    cell(&thousands(p.memory_bytes), 11),
                    p.throughput_bps / 1e9,
                );
            }
            Err(e) => println!("          (ours) does not fit: {e}"),
        }
    }
}

/// Table III: comparison against the Tuck et al. baselines.
fn table3() {
    println!("performance comparison on the 19,124-character ruleset (Table III)\n");
    let set = table3_ruleset();
    println!(
        "ruleset: {} strings, {} characters\n",
        set.len(),
        set.total_bytes()
    );
    println!(
        "{}{}{}throughput",
        cell("approach", 26),
        cell("device", 11),
        cell("memory bytes", 22),
    );
    for (approach, device, p_mem, p_gbps) in paper::TABLE3 {
        let (m_mem, m_gbps): (Option<usize>, Option<f64>) = match (approach, device) {
            ("Our method", "Cyclone 3") => {
                let p = plan(&set, &FpgaDevice::cyclone3()).expect("fits");
                (Some(p.memory_bytes), Some(p.throughput_bps / 1e9))
            }
            ("Our method", "Stratix 3") => {
                let p = plan(&set, &FpgaDevice::stratix3()).expect("fits");
                (Some(p.memory_bytes), Some(p.throughput_bps / 1e9))
            }
            ("Bitmap [13]", _) => (Some(BitmapAc::build(&set).memory_bytes()), None),
            _ => (Some(PathAc::build(&set).memory_bytes()), None),
        };
        println!(
            "{}{}{}{}",
            cell(approach, 26),
            cell(device, 11),
            cell(
                &format!(
                    "{} ({} ours)",
                    thousands(p_mem),
                    m_mem.map(thousands).unwrap_or_default()
                ),
                32
            ),
            match m_gbps {
                Some(g) => format!("{p_gbps} Gbps ({g:.1} ours)"),
                None => format!("{p_gbps} Gbps (fail-pointer bound, see `adversarial`)"),
            }
        );
    }
    let ours = plan(&set, &FpgaDevice::stratix3()).expect("fits").memory_bytes;
    let bitmap = BitmapAc::build(&set).memory_bytes();
    let path = PathAc::build(&set).memory_bytes();
    println!(
        "\nmemory ratios vs our method:\n  bitmap          {:>5.1}x measured reimplementation, {:>5.1}x using [13]'s published bytes (paper: 20x)\n  path compression{:>5.1}x measured reimplementation, {:>5.1}x using [13]'s published bytes (paper: 8x)",
        bitmap as f64 / ours as f64,
        2_800_000.0 / ours as f64,
        path as f64 / ours as f64,
        1_100_000.0 / ours as f64,
    );
    println!(
        "(our Tuck reimplementation is leaner than the original ASIC layout —\n fixed-size node records and match bitmaps are not modeled — so the\n measured ratios understate the published ones; direction is preserved)"
    );
}

fn power_figure(device: FpgaDevice, rulesets: &[PaperRuleset], max_w: f64) {
    let model = PowerModel::for_device(&device);
    println!(
        "power/throughput sweep, {} (paper max {:.2} W; model {:.2} W)\n",
        device.family,
        max_w,
        model.power_w(device.fmax_hz)
    );
    let master = master_ruleset();
    for &which in rulesets {
        let set = if which == PaperRuleset::S6275 {
            master.clone()
        } else {
            paper_ruleset(which)
        };
        match plan(&set, &device) {
            Ok(p) => {
                let curve = model.sweep(device.fmax_hz, p.group_size, 8);
                print!("{} (g={}): ", which, p.group_size);
                for pt in curve {
                    print!("({:.2}W,{:.1}G) ", pt.power_w, pt.throughput_bps / 1e9);
                }
                println!();
            }
            Err(e) => println!("{which}: does not fit ({e})"),
        }
    }
}

/// Figure 7: power vs throughput on the Cyclone 3.
fn fig7() {
    power_figure(
        FpgaDevice::cyclone3(),
        &PaperRuleset::CYCLONE3,
        paper::FIG7_CYCLONE_MAX_W,
    );
}

/// Figure 8: power vs throughput on the Stratix 3.
fn fig8() {
    power_figure(
        FpgaDevice::stratix3(),
        &PaperRuleset::STRATIX3,
        paper::FIG8_STRATIX_MAX_W,
    );
}

/// §III.B ablation: "We found through testing of strings used in the Snort
/// ruleset that 4 was the optimum value" for depth-2 defaults per char.
fn ablation_k2() {
    let set = paper_ruleset(PaperRuleset::S634);
    println!("depth-2 default count (k2) ablation, 634-string ruleset\n");
    println!(
        "{}{}{}LUT compare bits/row (1 + 8*k2 + 16)",
        cell("k2", 5),
        cell("LUT entries", 12),
        cell("avg ptrs", 10),
    );
    for k2 in [0usize, 1, 2, 4, 8, 16] {
        let cfg = DtpConfig {
            depth1: true,
            k2,
            k3: 1,
        };
        let r = ReductionReport::compute(&set, cfg);
        println!(
            "{}{}{}{}",
            cell(&k2.to_string(), 5),
            cell(&r.d1_d2_d3_entries.to_string(), 12),
            cell(&format!("{:.3}", r.avg_after_d3), 10),
            17 + 8 * k2,
        );
    }
    println!("\npast k2 = 4 the pointer average barely moves while the row widens:");
    println!("the paper's 49-bit row (k2 = 4) is the knee.");
}

/// Extension: share identical match lists in the match-number memory.
///
/// Suffix closure repeats the same output list at many states; interning
/// one copy slashes match-memory pressure — the constraint the `m144k`
/// experiment shows binding on the master ruleset — at zero hardware cost
/// (the match field already stores an arbitrary word address).
fn match_sharing() {
    use dpi_fpga::{plan_with_options, PlanOptions};
    println!("match-list sharing extension (beyond the paper)\n");
    let master = master_ruleset();
    for (label, device) in [
        ("Stratix 3        ", FpgaDevice::stratix3()),
        ("Stratix 3 + M144K", FpgaDevice::stratix3().with_m144k()),
    ] {
        for shared in [false, true] {
            let options = PlanOptions {
                shared_match_lists: shared,
                ..PlanOptions::default()
            };
            match plan_with_options(&master, &device, options) {
                Ok(p) => {
                    let hw = p
                        .blocks
                        .iter()
                        .map(|b| b.memory.match_words_used)
                        .max()
                        .unwrap_or(0);
                    println!(
                        "{label} {}: group size {}, {:.1} Gbps, match-mem high water {hw}/2048",
                        if shared { "shared " } else { "private" },
                        p.group_size,
                        p.throughput_bps / 1e9,
                    );
                }
                Err(e) => println!("{label} {}: {e}", if shared { "shared" } else { "private" }),
            }
        }
    }
    println!(
        "\n(sharing cuts the match-memory high water ~16% and drops the group\n size from 5 to 4 blocks — freeing two device blocks for a second\n ruleset; throughput is unchanged because both sizes yield one group.\n The residual constraint is per-block *state* words, which sharing\n cannot touch)"
    );
}

/// What-if ablation: would depth-4 default pointers pay?
///
/// The paper stops the default hierarchy at depth 3. Extending it would
/// cost 24 more compare bits per row (three preceding bytes) and another
/// 256 target entries; this experiment counts how many stored pointers a
/// top-1-per-character depth-4 default would actually remove.
fn ablation_depth() {
    use dpi_core::ReducedAutomaton;
    let set = paper_ruleset(PaperRuleset::S634);
    let dfa = Dfa::build(&set);
    let reduced = ReducedAutomaton::reduce(&dfa, DtpConfig::PAPER);
    // Count stored pointers by target depth, and the best-case removal a
    // depth-4 default could achieve (top-1 per character value).
    let mut by_depth: std::collections::BTreeMap<u16, usize> = Default::default();
    let mut d4_indegree: std::collections::HashMap<(u8, u32), usize> = Default::default();
    for s in reduced.state_ids() {
        for &(c, t) in reduced.stored(s) {
            *by_depth.entry(reduced.depth(t).min(7)).or_default() += 1;
            if reduced.depth(t) == 4 {
                *d4_indegree.entry((c, t.0)).or_default() += 1;
            }
        }
    }
    // Top-1 per character value.
    let mut best_per_char: std::collections::HashMap<u8, usize> = Default::default();
    for (&(c, _), &n) in &d4_indegree {
        let e = best_per_char.entry(c).or_default();
        *e = (*e).max(n);
    }
    let removable: usize = best_per_char.values().sum();
    let total = reduced.stored_pointers();
    println!("stored-pointer census by target depth, 634-string ruleset\n");
    for (depth, count) in &by_depth {
        println!(
            "  depth {}{}: {count} stored pointers ({:.1}%)",
            depth,
            if *depth == 7 { "+" } else { "" },
            *count as f64 / total as f64 * 100.0
        );
    }
    println!(
        "\na depth-4 default (top-1 per character, +24 compare bits/row, 73-bit\nrows) would remove {removable} of {total} stored pointers ({:.1}%) —\ndiminishing returns justify the paper stopping at depth 3",
        removable as f64 / total as f64 * 100.0
    );
}

/// §V.D extension: spend the M144K blocks to double block memory.
///
/// The paper predicts this "would allow the number of strings which could
/// be searched to grow". The experiment deploys a 12,000-string ruleset
/// that exceeds the base device and fits the extended one — and also
/// surfaces a constraint the paper does not discuss: for the 6,275-string
/// set, the fixed 2,048-word *match-number* memory binds before state
/// memory does, so doubling state words alone cannot reduce the group
/// size there.
fn m144k() {
    let base = FpgaDevice::stratix3();
    let doubled = FpgaDevice::stratix3().with_m144k();
    println!("M144K extension (§V.D): doubling per-block state memory\n");
    // Long-string ruleset: same string count as the master, twice the
    // length — state words, not string numbers, become the constraint.
    let big = dpi_rulesets::RulesetGenerator::new()
        .with_distribution(LengthDistribution::paper_figure6().scale_lengths(1.8))
        .generate(6_275);
    println!(
        "capacity: a {}-string long-string ruleset ({} chars)",
        big.len(),
        thousands(big.total_bytes())
    );
    for (label, device) in [("  base (M9K only)", &base), ("  with M144K     ", &doubled)] {
        match plan(&big, device) {
            Ok(p) => println!(
                "{label}: fits — group size {}, throughput {:.1} Gbps",
                p.group_size,
                p.throughput_bps / 1e9
            ),
            Err(e) => println!("{label}: {e}"),
        }
    }
    println!("\nthroughput: the 6,275-string master");
    let master = master_ruleset();
    for (label, device) in [("  base (M9K only)", &base), ("  with M144K     ", &doubled)] {
        match plan(&master, device) {
            Ok(p) => println!(
                "{label}: group size {}, throughput {:.1} Gbps, match-mem high water {} of 2048 words",
                p.group_size,
                p.throughput_bps / 1e9,
                p.blocks
                    .iter()
                    .map(|b| b.memory.match_words_used)
                    .max()
                    .unwrap_or(0)
            ),
            Err(e) => println!("{label}: {e}"),
        }
    }
    println!(
        "(group size is unchanged on the master: the fixed 2,048-word match\n memory — not state memory — is the binding constraint, a limit the\n paper's §V.D projection does not account for)"
    );
}

/// §VI future work: project the architecture onto a 65 nm ASIC and put it
/// beside the Tuck et al. ASIC numbers of Table III (projection, not
/// measurement — every constant is documented in `dpi_fpga::AsicModel`).
fn asic() {
    use dpi_fpga::{AsicModel, AsicReport};
    let model = AsicModel::tsmc65();
    println!(
        "65 nm ASIC projection (paper §VI future work); clock {:.0} MHz\n",
        model.fmax_hz / 1e6
    );
    // Our architecture sized for the Table III ruleset: one block's
    // memories (state words used on that ruleset + fixed memories).
    let set = table3_ruleset();
    let dfa = Dfa::build(&set);
    let reduced = dpi_core::ReducedAutomaton::reduce(&dfa, DtpConfig::PAPER);
    let image = dpi_hw::HwImage::build(&reduced).expect("fits");
    let stats = image.stats();
    let bits_per_block =
        stats.state_bits + stats.match_bits + stats.lut_compare_bits + stats.lut_target_bits;
    println!(
        "{}{}{}peak Gbps",
        cell("design", 28),
        cell("memory bits", 13),
        cell("area mm2", 10),
    );
    for (label, blocks) in [("ours, 1 block", 1usize), ("ours, 6 blocks", 6)] {
        let r = AsicReport::project(label, &model, blocks, bits_per_block);
        println!(
            "{}{}{}{:.1}",
            cell(label, 28),
            cell(&thousands(r.memory_bits), 13),
            cell(&format!("{:.2}", r.area_mm2), 10),
            r.throughput_bps / 1e9
        );
    }
    // The baselines' published memory footprints on the same model (their
    // papers report bytes; throughput stays fail-pointer-bound).
    for (label, bytes) in [("bitmap [13] (published)", 2_800_000usize), ("path comp. [13] (published)", 1_100_000)] {
        let bits = bytes * 8;
        println!(
            "{}{}{}input-dependent (fail pointers)",
            cell(label, 28),
            cell(&thousands(bits), 13),
            cell(&format!("{:.2}", model.area_mm2(1, bits)), 10),
        );
    }
    let stratix = FpgaDevice::stratix3();
    println!(
        "\nprojected power, 6 blocks at full clock: {:.1} W (FPGA: 13.28 W)",
        model.power_w(&stratix, 6)
    );
}

/// The guaranteed-throughput experiment (§I / §II claims).
fn adversarial() {
    let set = dpi_rulesets::extract_preserving(&master_ruleset(), 400, 0xADE);
    let nfa = Nfa::build(&set);
    let bitmap = BitmapAc::build(&set);
    let path = PathAc::build(&set);
    let crafted = adversarial_payload(&set, 8192);
    let benign = TrafficGenerator::new(3).clean_packet(8192).payload;
    println!("state lookups per byte (1.0 = the guaranteed floor)\n");
    println!(
        "{}{}{}worst byte",
        cell("matcher", 28),
        cell("benign", 9),
        cell("crafted", 9),
    );
    let nm = NfaMatcher::new(&nfa, &set);
    let rows: [(&str, dpi_automaton::CountedScan, dpi_automaton::CountedScan); 1] = [(
        "AC + fail pointers",
        nm.scan_counting(&benign),
        nm.scan_counting(&crafted),
    )];
    for (name, b, a) in rows {
        println!(
            "{}{}{}{}",
            cell(name, 28),
            cell(&format!("{:.3}", b.lookups as f64 / benign.len() as f64), 9),
            cell(&format!("{:.3}", a.lookups as f64 / crafted.len() as f64), 9),
            a.max_lookups_per_byte
        );
    }
    let b = bitmap.scan_counting(&set, &benign);
    let a = bitmap.scan_counting(&set, &crafted);
    println!(
        "{}{}{}{}",
        cell("bitmap AC [13]", 28),
        cell(&format!("{:.3}", b.lookups as f64 / benign.len() as f64), 9),
        cell(&format!("{:.3}", a.lookups as f64 / crafted.len() as f64), 9),
        a.max_lookups_per_byte
    );
    let b = path.scan_counting(&set, &benign);
    let a = path.scan_counting(&set, &crafted);
    println!(
        "{}{}{}{}",
        cell("path compression [13]", 28),
        cell(&format!("{:.3}", b.lookups as f64 / benign.len() as f64), 9),
        cell(&format!("{:.3}", a.lookups as f64 / crafted.len() as f64), 9),
        a.max_lookups_per_byte
    );
    println!(
        "{}{}{}{}",
        cell("this paper (no fail ptrs)", 28),
        cell("1.000", 9),
        cell("1.000", 9),
        1
    );

    // Second round on a self-overlap-heavy ruleset (NOP sleds): the fail
    // chains are as deep as the sled, so crafted traffic costs tens of
    // lookups on single bytes.
    let mut sleds: Vec<Vec<u8>> = (2..=32).map(|k| vec![0x90u8; k]).collect();
    sleds.push(b"attack".to_vec());
    let set = PatternSet::new(&sleds).expect("valid sled set");
    let nfa = Nfa::build(&set);
    let nm = NfaMatcher::new(&nfa, &set);
    let crafted = adversarial_payload(&set, 4096);
    let benign = TrafficGenerator::new(5).clean_packet(4096).payload;
    let b = nm.scan_counting(&benign);
    let a = nm.scan_counting(&crafted);
    println!("\nNOP-sled ruleset (31 overlapping sleds), AC + fail pointers:");
    println!(
        "  benign {:.3}, crafted {:.3} lookups/byte; worst single byte: {} lookups",
        b.lookups as f64 / benign.len() as f64,
        a.lookups as f64 / crafted.len() as f64,
        a.max_lookups_per_byte
    );
    println!("  this paper: still exactly 1.000 lookups/byte, worst byte 1");
}

/// Warm-up plus best-of-`reps` timing of one scan closure. Returns
/// `(best_seconds, matches)`. Shared by every throughput experiment —
/// the per-run *best* filters scheduler noise on shared hardware.
fn best_secs(reps: usize, mut scan: impl FnMut() -> usize) -> (f64, usize) {
    use std::time::Instant;
    let mut matches = scan(); // warm-up
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        matches = scan();
        best = best.min(start.elapsed().as_secs_f64());
    }
    (best, matches)
}

/// One measured on/off A/B pair, shared by every experiment that
/// compares a fast-path switch against its baseline (`sw-throughput`,
/// `sw-throughput-clean`, `sw-throughput-stride`): alternates the two
/// scans rep by rep and takes each side's best, so slow clock drift
/// (thermal throttling, noisy neighbors) hits both sides equally
/// instead of biasing whichever ran second.
struct AbRow {
    off_secs: f64,
    on_secs: f64,
    matches: usize,
}

impl AbRow {
    fn speedup(&self) -> f64 {
        self.off_secs / self.on_secs
    }
}

/// Times `off` vs `on` interleaved (best of `reps`), asserts both sides
/// agree on the match count, and emits `{id}-off` / `{id}-on`
/// BENCH_JSON rows over `payload_len` bytes.
fn ab_bench_row(
    id: &str,
    payload_len: usize,
    reps: usize,
    mut off: impl FnMut() -> usize,
    mut on: impl FnMut() -> usize,
) -> AbRow {
    use std::time::Instant;
    let (mut off_matches, mut on_matches) = (off(), on()); // warm-up
    let (mut off_best, mut on_best) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..reps {
        let start = Instant::now();
        off_matches = off();
        off_best = off_best.min(start.elapsed().as_secs_f64());
        let start = Instant::now();
        on_matches = on();
        on_best = on_best.min(start.elapsed().as_secs_f64());
    }
    assert_eq!(
        on_matches, off_matches,
        "fast-path switch must be scan-invisible ({id})"
    );
    dpi_bench::bench_json_row(&format!("{id}-off"), off_best * 1e9, payload_len as u64);
    dpi_bench::bench_json_row(&format!("{id}-on"), on_best * 1e9, payload_len as u64);
    AbRow {
        off_secs: off_best,
        on_secs: on_best,
        matches: on_matches,
    }
}

/// Software scan throughput: reference scanners vs the compiled
/// flat-memory engine and its batch scanner (`dpi_core::compiled`).
///
/// The hardware tables measure the FPGA; this experiment measures the
/// *software* fast path the workspace ships for hosts without an
/// accelerator, and records the speedup of compiling the reduced
/// automaton into CSR/branch-free form.
fn sw_throughput() {
    use dpi_automaton::{AnchorSet, DfaMatcher, Match, MultiMatcher, PairTable};
    use dpi_core::{BatchScanner, CompiledAutomaton, CompiledMatcher, DtpMatcher};

    const PAYLOAD: usize = 1 << 20;
    let set = dpi_rulesets::extract_preserving(&master_ruleset(), 300, 42);
    let dfa = Dfa::build(&set);
    let reduced = dpi_core::ReducedAutomaton::reduce(&dfa, DtpConfig::PAPER);
    let anchors = AnchorSet::build(&dfa, &set, AnchorSet::DEFAULT_HORIZON);
    // The production stack: anchor lane plus the stride-2 pair layer,
    // hot rows ranked by a profile scan over *separate* clean traffic
    // (never the benchmark payload).
    let profile = TrafficGenerator::new(0x9A9A).clean_packet(256 * 1024).payload;
    let pairs = PairTable::build_profiled(
        &dfa,
        &set,
        &anchors,
        PairTable::DEFAULT_BUDGET,
        &profile,
    );
    let compiled =
        CompiledAutomaton::compile_with_prefilter(&reduced, anchors).with_pair_table(pairs);
    let mut gen = TrafficGenerator::new(99);
    let payload = gen.infected_packet(PAYLOAD, &set, 64).payload;

    println!("software scan throughput, 300-string ruleset, 1 MiB infected payload\n");
    println!(
        "{}{}{}matches",
        cell("scanner", 22),
        cell("MB/s", 12),
        cell("vs dtp", 9),
    );

    let dtp = DtpMatcher::new(&reduced, &set);
    let (dtp_secs, dtp_matches) = best_secs(5, || dtp.find_all(&payload).len());

    let full = DfaMatcher::new(&dfa, &set);
    let (dfa_secs, dfa_matches) = best_secs(5, || full.find_all(&payload).len());

    let fast = CompiledMatcher::new(&compiled, &set);
    let mut buf: Vec<Match> = Vec::with_capacity(256);
    let (fast_secs, fast_matches) = best_secs(5, || {
        fast.scan_into(&payload, &mut buf);
        buf.len()
    });

    let mut rows = vec![
        ("dtp (reference)", "dtp", dtp_secs, dtp_matches),
        ("full_dfa", "full_dfa", dfa_secs, dfa_matches),
        ("compiled", "compiled", fast_secs, fast_matches),
    ];
    for lanes in [4usize, 8] {
        let packets: Vec<&[u8]> = payload.chunks(PAYLOAD / lanes).collect();
        let scanner = BatchScanner::new(&compiled, &set, lanes);
        let mut out: Vec<Vec<Match>> = Vec::new();
        let (secs, matches) = best_secs(5, || {
            scanner.scan_batch_into(&packets, &mut out);
            out.iter().map(Vec::len).sum()
        });
        rows.push(if lanes == 4 {
            ("batch(4)", "batch4", secs, matches)
        } else {
            ("batch(8)", "batch8", secs, matches)
        });
    }
    for (name, id, secs, matches) in &rows {
        dpi_bench::bench_json_row(
            &format!("sw-throughput/{id}"),
            secs * 1e9,
            PAYLOAD as u64,
        );
        println!(
            "{}{}{}{}",
            cell(name, 22),
            cell(&format!("{:.0}", PAYLOAD as f64 / secs / 1e6), 12),
            cell(&format!("{:.2}x", dtp_secs / secs), 9),
            matches
        );
    }
    assert_eq!(dtp_matches, fast_matches, "scanners must agree to be comparable");
    println!(
        "\n(compiled speedup: CSR flat layout, stride-specialized branch-free\n LUT resolution, accept bits folded into transition words, buffer\n reuse, the anchor-byte skip lane over the payload's clean majority\n (A/B in `sw-throughput-clean`), and the stride-2 pair layer over the\n lane's danger bytes and excursions (A/B in `sw-throughput-stride`).\n batch lanes mirror the paper's engine interleave but share one cache\n where hardware engines own their memory ports — and scan without the\n lane, so sequential wins by more than before. batch match counts can\n differ where occurrences straddle the packet split; full_dfa trades\n ~26x the memory for a plain scan the compiled path overtakes)"
    );
}

/// Clean-traffic fast lane: the anchor-byte SWAR prefilter A/B.
///
/// The throughput rows above measure *infected* payloads — the workload
/// the automaton exists for, but not the workload it mostly sees. Real
/// DPI traffic is overwhelmingly clean: the scanner sits in the start
/// state's neighborhood for almost every byte. The prefilter
/// (`dpi_automaton::AnchorSet` + the compiled engine's skip lane)
/// fast-forwards through bytes that provably cannot advance the
/// automaton out of that neighborhood, and this experiment measures what
/// that is worth — per ruleset size, on clean and infected payloads,
/// prefilter on vs off (identical matches asserted for every pairing).
///
/// BENCH_JSON rows are emitted for every row printed.
fn sw_throughput_clean() {
    use dpi_automaton::{AnchorSet, Match};
    use dpi_core::{CompiledAutomaton, CompiledMatcher};

    const PAYLOAD: usize = 1 << 20;

    println!("anchor-byte SWAR prefilter, 1 MiB payloads, on/off A/B\n");
    println!(
        "{}{}{}{}{}matches",
        cell("workload", 18),
        cell("off MB/s", 10),
        cell("on MB/s", 10),
        cell("speedup", 9),
        cell("lane?", 7),
    );
    let master = master_ruleset();
    let mut clean_speedups: Vec<f64> = Vec::new();
    for (label, set) in [
        ("300", dpi_rulesets::extract_preserving(&master, 300, 42)),
        ("6275", master.clone()),
    ] {
        let dfa = Dfa::build(&set);
        let reduced = dpi_core::ReducedAutomaton::reduce(&dfa, DtpConfig::PAPER);
        let anchors = AnchorSet::build(&dfa, &set, AnchorSet::DEFAULT_HORIZON);
        let anchor_note = format!(
            "[{label}] {} skippable bytes, {} pair exits, {} B tables",
            anchors.skippable_bytes(),
            anchors.pair_count(),
            anchors.memory_bytes()
        );
        let compiled = CompiledAutomaton::compile_with_prefilter(&reduced, anchors);
        let mut gen = TrafficGenerator::new(0xC1EA);
        let clean = gen.clean_packet(PAYLOAD).payload;
        let infected = gen.infected_packet(PAYLOAD, &set, 64).payload;
        let on = CompiledMatcher::new(&compiled, &set);
        let off = CompiledMatcher::new(&compiled, &set).with_prefilter(false);
        let mut buf: Vec<Match> = Vec::with_capacity(1024);
        for (traffic, payload) in [("clean", &clean), ("infected", &infected)] {
            let mut buf2: Vec<Match> = Vec::with_capacity(1024);
            let row = ab_bench_row(
                &format!("sw-throughput-clean/{label}-{traffic}"),
                PAYLOAD,
                7,
                || {
                    off.scan_into(payload, &mut buf);
                    buf.len()
                },
                || {
                    on.scan_into(payload, &mut buf2);
                    buf2.len()
                },
            );
            if traffic == "clean" {
                clean_speedups.push(row.speedup());
            }
            println!(
                "{}{}{}{}{}{}",
                cell(&format!("[{label}] {traffic}"), 18),
                cell(&format!("{:.0}", PAYLOAD as f64 / row.off_secs / 1e6), 10),
                cell(&format!("{:.0}", PAYLOAD as f64 / row.on_secs / 1e6), 10),
                cell(&format!("{:.2}x", row.speedup()), 9),
                cell("yes", 7),
                row.matches
            );
        }
        println!("{anchor_note}");
    }
    // The design target is >=2x on clean payloads at both ruleset sizes
    // (measured 2.1-3.7x on the reference container). The hard floor
    // sits below the target so ordinary hardware/noise variance cannot
    // flake CI — a measurement under it means the lane actually broke.
    for s in &clean_speedups {
        assert!(
            *s >= 1.7,
            "clean-traffic prefilter speedup {s:.2}x collapsed (target 2x, floor 1.7x)"
        );
        if *s < 2.0 {
            eprintln!("warning: clean speedup {s:.2}x below the 2x target on this host");
        }
    }
    println!(
        "\n(the lane consumes every byte the automaton provably stays shallow\n on: skippable runs advance 8 bytes per SWAR iteration, candidate\n anchors resolve through the 8 KiB pair table without touching the\n automaton arenas, and only pair-completing bytes wake the stepper.\n infected payloads are clean background plus 64 occurrences, so the\n lane wins there too — the off column is the pre-lane baseline)"
    );
}

/// SIMD scan lane: the `simd` feature's on/off A/B
/// (`dpi_automaton::simd` + the compiled engine's vector window
/// probes and hot-row prefetch).
///
/// Three interleaved A/B pairs per ruleset size, both sides the same
/// matcher with only [`dpi_core::CompiledMatcher::with_simd`] flipped — so every
/// pair isolates exactly one kernel:
///
/// - **window** (prefilter on, pairs off): the scalar danger walk vs
///   the 16/32-byte nibble-box vector walk on generator traffic. These
///   rows are *exit-bound*: on generator clean traffic at 300 rules a
///   danger byte lands every ~51 bytes on average (median lane span is
///   just 13 bytes), so per-exit stepper/rebuild costs dominate and
///   Amdahl caps any lane kernel at ~1.1-1.2x — the rows assert
///   no-regression, not the 2x target;
/// - **window-laneclean** (300 rules only): a deterministic exit-free
///   clean payload (bytes that are non-skippable — defeating the SWAR
///   skip window — and never danger under any history). This isolates
///   the lane walk itself, which is the thing the `simd` feature
///   rebuilds, and carries the >=2x assertion;
/// - **stack** (prefilter + pairs, the production stack): the full
///   lane stack with the vector danger walk in the prefilter lane;
/// - **pairsonly** (prefilter off, pairs on, infected): the chained
///   pair-row walk with vs without `_mm_prefetch` on the next row —
///   the prefetch kernel in isolation (the only thing `simd` changes
///   in that lane).
///
/// Requires the `simd` cargo feature; prints a note and emits no rows
/// otherwise, so the portable bench pipeline is unaffected.
fn sw_throughput_simd() {
    use dpi_automaton::{AnchorSet, Match, PairTable};
    use dpi_core::{CompiledAutomaton, CompiledMatcher};

    const PAYLOAD: usize = 1 << 20;

    if !dpi_automaton::simd_available() {
        println!(
            "simd kernels unavailable (built without `--features simd`, non-x86_64,\nor no SSSE3 on this CPU) — nothing to A/B; skipping.\n\n  cargo run --release --features simd -p dpi-bench --bin repro -- sw-throughput-simd"
        );
        return;
    }

    println!("simd scan lane (nibble-split shuffle windows + hot-row prefetch), 1 MiB payloads, on/off A/B\n");
    println!(
        "{}{}{}{}{}matches",
        cell("workload", 26),
        cell("off MB/s", 10),
        cell("on MB/s", 10),
        cell("speedup", 9),
        cell("kernel", 10),
    );
    let master = master_ruleset();
    let mut window_speedups: Vec<(String, String, f64)> = Vec::new();
    for (label, set) in [
        ("300", dpi_rulesets::extract_preserving(&master, 300, 42)),
        ("6275", master.clone()),
    ] {
        let dfa = Dfa::build(&set);
        let reduced = dpi_core::ReducedAutomaton::reduce(&dfa, DtpConfig::PAPER);
        let anchors = AnchorSet::build(&dfa, &set, AnchorSet::DEFAULT_HORIZON);
        let profile = TrafficGenerator::new(0x9A9A).clean_packet(256 * 1024).payload;
        let pairs =
            PairTable::build_profiled(&dfa, &set, &anchors, PairTable::DEFAULT_BUDGET, &profile);
        // Exit-free clean payload: bytes the SWAR skip window cannot
        // skip, yet which never raise danger under any history —
        // the lane consumes them wholesale in both builds, zero
        // matches, zero lane exits. The pair must also be unflagged by
        // the nibble-box cover so the vector walk stays on its
        // consume path (the cover false-flags ~11% of keys; this row
        // measures the walk on the ~89% clean-key majority, which is
        // the regime the cover's profitability gate guarantees).
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        let cover_clean = |x: u8, y: u8| {
            anchors.simd_danger().is_none_or(|cov| {
                !cov.model_flags(x, y) && !cov.model_flags(y, x)
            })
        };
        #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
        let cover_clean = |_x: u8, _y: u8| true;
        let lane_ok = |b: u8| {
            !anchors.is_skippable(b) && !(0..=256u32).any(|p| anchors.is_danger(p, b))
        };
        let lane_pair = (0..=255u8)
            .flat_map(|x| (x..=255u8).map(move |y| (x, y)))
            .find(|&(x, y)| lane_ok(x) && lane_ok(y) && cover_clean(x, y));
        let laneclean: Option<Vec<u8>> = lane_pair.map(|(x, y)| {
            (0..PAYLOAD)
                .map(|i| if i % 2 == 0 { x } else { y })
                .collect()
        });
        let compiled = CompiledAutomaton::compile_with_prefilter(&reduced, anchors)
            .with_pair_table(pairs);
        let mut gen = TrafficGenerator::new(0x51D0);
        let clean = gen.clean_packet(PAYLOAD).payload;
        let infected = gen.infected_packet(PAYLOAD, &set, 64).payload;
        // Realistic long-span traffic: a TLS session (handshake +
        // uniform-byte records). Like generator clean traffic it is
        // exit-bound for the lane, so the row asserts no-regression,
        // not the exit-free 2x — an honest number for the traffic mix
        // the two-stage experiment runs on.
        let tls = TrafficGenerator::new(0x715_0DD).tls_stream(PAYLOAD).payload;

        // (configuration, kernel isolated, traffic) per A/B pair.
        let window_on = CompiledMatcher::new(&compiled, &set).with_pairs(false);
        let window_off = window_on.clone().with_simd(false);
        let stack_on = CompiledMatcher::new(&compiled, &set);
        let stack_off = stack_on.clone().with_simd(false);
        let pairsonly_on = CompiledMatcher::new(&compiled, &set).with_prefilter(false);
        let pairsonly_off = pairsonly_on.clone().with_simd(false);
        assert!(
            window_on.simd() && stack_on.simd() && pairsonly_on.simd(),
            "simd_available() implies matcher tokens"
        );

        let mut rows: Vec<(&str, &CompiledMatcher, &CompiledMatcher, &Vec<u8>, &str)> = vec![
            ("window-clean", &window_off, &window_on, &clean, "shuffle"),
            ("window-tls", &window_off, &window_on, &tls, "shuffle"),
            ("window-infected", &window_off, &window_on, &infected, "shuffle"),
            ("stack-clean", &stack_off, &stack_on, &clean, "shuffle"),
            ("pairsonly-infected", &pairsonly_off, &pairsonly_on, &infected, "prefetch"),
        ];
        if let Some(laneclean) = laneclean.as_ref() {
            if label == "300" {
                rows.insert(
                    1,
                    ("window-laneclean", &window_off, &window_on, laneclean, "shuffle"),
                );
            }
        }
        for (kind, off, on, payload, kernel) in rows {
            let mut buf: Vec<Match> = Vec::with_capacity(1024);
            let mut buf2: Vec<Match> = Vec::with_capacity(1024);
            let row = ab_bench_row(
                &format!("sw-throughput-simd/{label}-{kind}"),
                PAYLOAD,
                7,
                || {
                    off.scan_into(payload, &mut buf);
                    buf.len()
                },
                || {
                    on.scan_into(payload, &mut buf2);
                    buf2.len()
                },
            );
            if kind == "window-clean" || kind == "window-laneclean" || kind == "window-tls" {
                window_speedups.push((label.to_string(), kind.to_string(), row.speedup()));
            }
            println!(
                "{}{}{}{}{}{}",
                cell(&format!("[{label}] {kind}"), 26),
                cell(&format!("{:.0}", PAYLOAD as f64 / row.off_secs / 1e6), 10),
                cell(&format!("{:.0}", PAYLOAD as f64 / row.on_secs / 1e6), 10),
                cell(&format!("{:.2}x", row.speedup()), 9),
                cell(kernel, 10),
                row.matches
            );
        }
    }
    // The >=2x-over-the-scalar-SWAR-window target is asserted on the
    // exit-free laneclean row, where the lane walk is the whole cost
    // (measured ~7x here). Generator-traffic and TLS window rows are
    // exit-bound — a danger byte every ~51 bytes, median lane span 13,
    // ~19k lane exits per MiB — so per-exit stepper/rebuild costs cap
    // any lane kernel near parity; they assert no-regression only.
    // Floors sit below targets so hardware/noise variance cannot flake
    // CI — under them the vector walk actually broke.
    for (label, kind, s) in &window_speedups {
        if kind == "window-laneclean" {
            assert!(
                *s >= 2.0,
                "[{label}] simd lane-walk speedup {s:.2}x lost the exit-free 2x target"
            );
        } else {
            assert!(
                *s >= 0.85,
                "[{label}] simd window speedup {s:.2}x regressed on generator traffic (floor 0.85x)"
            );
        }
    }
    assert!(
        window_speedups.iter().any(|(_, k, _)| k == "window-laneclean"),
        "no exit-free byte pair at 300 rules — laneclean row missing"
    );
    println!(
        "\n(window rows run the vector danger walk — nibble-box pshufb cover of\n the (prev, byte) danger relation, 16/32 bytes per probe, flagged\n positions re-checked against the exact bitmap — against the scalar\n per-byte danger walk. generator-traffic rows are exit-bound (median\n lane span 13 bytes at 300 rules) and assert no-regression; the\n laneclean row is exit-free and carries the 2x target. pairsonly rows\n isolate _mm_prefetch on the chained hot-row walk — the only simd\n change in that lane; its win is capacity-miss dependent, so expect\n parity at cache-resident sizes. matches are asserted identical for\n every pairing — the lane is scan-invisible)"
    );
}

/// Stride-2 pair layer: the on/off A/B of the budgeted hot-state pair
/// rows composed with the anchor lane (`dpi_automaton::PairTable` +
/// the compiled engine's pair lanes).
///
/// Both sides run the anchor lane; the switch isolates the pair layer:
/// region pair rows (the stride-2 calm/follow walk and windows) plus
/// profile-ranked hot rows (excursion pair-stepping, two bytes per
/// chained load). Rows are measured whole-payload (the payload streams
/// through the cache) and cache-warm (a 256 KiB slice rescanned, the
/// per-core-shard regime) — the layer's benefit is cache-residency-
/// dependent, and both numbers are the truth.
///
/// BENCH_JSON rows are emitted for every row printed.
fn sw_throughput_stride() {
    use dpi_automaton::{AnchorSet, Match, PairTable};
    use dpi_core::{CompiledAutomaton, CompiledMatcher};

    const PAYLOAD: usize = 1 << 20;
    const WARM: usize = 256 * 1024;

    println!("stride-2 pair layer, pairs on/off A/B (anchor lane on both sides)\n");
    println!(
        "{}{}{}{}matches",
        cell("workload", 24),
        cell("off MB/s", 10),
        cell("on MB/s", 10),
        cell("speedup", 9),
    );
    let master = master_ruleset();
    let profile = TrafficGenerator::new(0x9A9A).clean_packet(256 * 1024).payload;
    let mut whole_ratios: Vec<f64> = Vec::new();
    let mut warm_ratios: Vec<f64> = Vec::new();
    for (label, set) in [
        ("300", dpi_rulesets::extract_preserving(&master, 300, 42)),
        ("6275", master.clone()),
    ] {
        let dfa = Dfa::build(&set);
        let reduced = dpi_core::ReducedAutomaton::reduce(&dfa, DtpConfig::PAPER);
        let anchors = AnchorSet::build(&dfa, &set, AnchorSet::DEFAULT_HORIZON);
        let pairs = PairTable::build_profiled(
            &dfa,
            &set,
            &anchors,
            PairTable::DEFAULT_BUDGET,
            &profile,
        );
        let pair_note = format!(
            "[{label}] pair layer: {} hot rows, region rows {}, {} B resident ({} B row budget)",
            pairs.hot_states(),
            if pairs.has_region_rows() { "yes" } else { "no" },
            pairs.memory_bytes(),
            pairs.budget_bytes(),
        );
        let compiled =
            CompiledAutomaton::compile_with_prefilter(&reduced, anchors).with_pair_table(pairs);
        let on = CompiledMatcher::new(&compiled, &set);
        let off = CompiledMatcher::new(&compiled, &set).with_pairs(false);
        assert!(on.pairs() && !off.pairs());
        let mut gen = TrafficGenerator::new(99);
        let infected = gen.infected_packet(PAYLOAD, &set, 64).payload;
        let clean = gen.clean_packet(PAYLOAD).payload;
        let mut buf: Vec<Match> = Vec::with_capacity(1024);
        let mut buf2: Vec<Match> = Vec::with_capacity(1024);
        for (traffic, payload, len) in [
            ("infected", &infected[..], PAYLOAD),
            ("clean", &clean[..], PAYLOAD),
            ("infected-warm", &infected[..WARM], WARM),
        ] {
            let row = ab_bench_row(
                &format!("sw-throughput-stride/{label}-{traffic}"),
                len,
                9,
                || {
                    off.scan_into(payload, &mut buf);
                    buf.len()
                },
                || {
                    on.scan_into(payload, &mut buf2);
                    buf2.len()
                },
            );
            if traffic == "infected" {
                whole_ratios.push(row.speedup());
            }
            if traffic == "infected-warm" {
                warm_ratios.push(row.speedup());
            }
            println!(
                "{}{}{}{}{}",
                cell(&format!("[{label}] {traffic}"), 24),
                cell(&format!("{:.0}", len as f64 / row.off_secs / 1e6), 10),
                cell(&format!("{:.0}", len as f64 / row.on_secs / 1e6), 10),
                cell(&format!("{:.2}x", row.speedup()), 9),
                row.matches
            );
        }
        println!("{pair_note}");
    }
    // Floors sit well below the design targets so hardware variance
    // cannot flake CI; a measurement under them means the layer broke.
    // Whole-payload: the layer must never regress beyond noise.
    for r in &whole_ratios {
        assert!(
            *r >= 0.85,
            "pairs-on regressed the whole-payload scan: {r:.2}x (floor 0.85x)"
        );
    }
    // Cache-warm: the stride-2 layer must actually pay where the
    // payload is resident (measured 1.1-1.5x on the 300-rule row).
    // The hard floor sits below the build-to-build noise band (README:
    // +/-15% between builds) so code-layout shifts cannot flake CI; a
    // measurement under it means the layer actually broke.
    assert!(
        warm_ratios[0] >= 0.9,
        "cache-warm stride speedup collapsed: {:.2}x (floor 0.9x)",
        warm_ratios[0]
    );
    if warm_ratios[0] < 1.05 {
        eprintln!(
            "warning: cache-warm stride speedup {:.2}x below the 1.1x target on this host",
            warm_ratios[0]
        );
    }
    println!(
        "\n(both sides run the anchor lane; the switch isolates the pair\n layer. region pair rows make the lane's danger walk stride-2 — the\n follow row consumes a byte's successor at ~97% branch bias, the calm\n row resolves two thirds of danger hits without the exit/rebuild/\n stepper-wake round trip, and calm-quad windows skip binary regions\n the skip bitmap cannot — while profile-ranked hot rows pair-step the\n remaining excursions two bytes per chained load. the whole-payload\n rows stream 1 MiB through the cache hierarchy; the warm rows rescan\n a 256 KiB slice — the regime a per-core shard actually runs in — and\n show the layer's headroom once payload residency stops dominating)"
    );
}

/// Shard-per-core scanning on the large workload: the monolithic
/// compiled automaton for the full 6,275-string master exceeds any
/// per-core cache and pays a miss-bound scan rate; `ShardedMatcher`
/// splits the ruleset into cache-sized automata, one per core.
///
/// Two numbers per core count, both measured:
///
/// - **wall** — the scoped-thread scan's wall clock *on this machine*.
///   On a single-core container every thread shares one core, so wall
///   degenerates to the sum of shard scans and shows no speedup.
/// - **per-core** — the slowest single core's measured work: shard scans
///   are timed individually and summed within each core's assignment
///   (shards share nothing but read-only arenas, so on a machine with
///   enough cores the wall clock is this bound plus scheduling noise).
///
/// BENCH_JSON rows are emitted for every row printed.
fn sharded_throughput() {
    use dpi_automaton::Match;
    use dpi_core::{CompiledAutomaton, CompiledMatcher, ShardedConfig, ShardedMatcher};

    const PAYLOAD: usize = 1 << 20;
    let set = master_ruleset();
    let dfa = Dfa::build(&set);
    let reduced = dpi_core::ReducedAutomaton::reduce(&dfa, DtpConfig::PAPER);
    // The monolith baseline carries the same prefilter + pair-layer
    // defaults the shards do, so the shard-vs-monolith ratios compare
    // layouts, not lane availability.
    let anchors =
        dpi_automaton::AnchorSet::build(&dfa, &set, dpi_automaton::AnchorSet::DEFAULT_HORIZON);
    let pairs = dpi_automaton::PairTable::build_with_region(
        &dfa,
        &set,
        &anchors,
        dpi_core::sharded::ShardedConfig::DEFAULT_PAIR_BUDGET,
    );
    let compiled =
        CompiledAutomaton::compile_with_prefilter(&reduced, anchors).with_pair_table(pairs);
    let mut gen = TrafficGenerator::new(0x5AD);
    let payload = gen.infected_packet(PAYLOAD, &set, 64).payload;

    let emit = |id: &str, secs: f64| {
        dpi_bench::bench_json_row(
            &format!("sharded-throughput/{id}"),
            secs * 1e9,
            PAYLOAD as u64,
        );
    };
    let mbps = |secs: f64| PAYLOAD as f64 / secs / 1e6;

    println!(
        "shard-per-core scanning, {}-string master ruleset, 1 MiB infected payload",
        set.len()
    );
    println!(
        "monolithic compiled arena: {} KiB (vs {} KiB per-shard budget)\n",
        compiled.memory_bytes() / 1024,
        ShardedConfig::with_cores(1).budget_bytes / 1024
    );
    println!(
        "{}{}{}{}matches",
        cell("scanner", 26),
        cell("wall MB/s", 11),
        cell("per-core MB/s", 14),
        cell("vs seq", 9),
    );

    let seq = CompiledMatcher::new(&compiled, &set);
    let mut buf: Vec<Match> = Vec::with_capacity(1024);
    let (seq_secs, seq_matches) = best_secs(5, || {
        seq.scan_into(&payload, &mut buf);
        buf.len()
    });
    emit("compiled-seq", seq_secs);
    println!(
        "{}{}{}{}{}",
        cell("compiled (monolith)", 26),
        cell(&format!("{:.0}", mbps(seq_secs)), 11),
        cell(&format!("{:.0}", mbps(seq_secs)), 14),
        cell("1.00x", 9),
        seq_matches
    );

    let pf = CompiledMatcher::new(&compiled, &set).with_prefetch(true);
    let (pf_secs, pf_matches) = best_secs(5, || {
        pf.scan_into(&payload, &mut buf);
        buf.len()
    });
    emit("compiled-prefetch", pf_secs);
    println!(
        "{}{}{}{}{}",
        cell("compiled + prefetch", 26),
        cell(&format!("{:.0}", mbps(pf_secs)), 11),
        cell(&format!("{:.0}", mbps(pf_secs)), 14),
        cell(&format!("{:.2}x", seq_secs / pf_secs), 9),
        pf_matches
    );

    for cores in [1usize, 2, 4, 8] {
        let sharded = ShardedMatcher::build(&set, &ShardedConfig::with_cores(cores))
            .expect("master ruleset fits the default shard budget");
        let shards = sharded.shard_count();
        let mut scratch = sharded.scratch();
        let mut out: Vec<Match> = Vec::with_capacity(1024);
        let (wall_secs, sharded_matches) = best_secs(5, || {
            sharded.scan_into(&payload, &mut scratch, &mut out);
            out.len()
        });
        assert_eq!(
            sharded_matches, seq_matches,
            "sharded scan must find exactly the monolith's matches"
        );
        // Per-core bound: time every shard alone, then take the slowest
        // core's assignment sum.
        let mut shard_secs = vec![0f64; shards];
        let mut sbuf: Vec<Match> = Vec::with_capacity(1024);
        for (s, slot) in shard_secs.iter_mut().enumerate() {
            let (secs, _) = best_secs(5, || {
                sharded.scan_shard_into(s, &payload, &mut sbuf);
                sbuf.len()
            });
            *slot = secs;
        }
        let percore_secs = sharded
            .core_assignments()
            .into_iter()
            .map(|r| shard_secs[r].iter().sum::<f64>())
            .fold(0f64, f64::max);
        let label = format!("shards{shards}-cores{cores}");
        emit(&format!("{label}-wall"), wall_secs);
        emit(&format!("{label}-percore"), percore_secs);
        println!(
            "{}{}{}{}{}",
            cell(
                &format!("sharded({shards} shards, {cores}c)"),
                26
            ),
            cell(&format!("{:.0}", mbps(wall_secs)), 11),
            cell(&format!("{:.0}", mbps(percore_secs)), 14),
            cell(&format!("{:.2}x", seq_secs / percore_secs), 9),
            sharded_matches
        );
    }
    println!(
        "\n(per-core = slowest core's measured shard scans; shards share only\n read-only arenas, so with >= `cores` hardware cores the wall clock\n converges to it. wall on this container reflects however many cores\n the host actually grants. each shard automaton fits the per-core\n cache budget, so per-shard scan rate recovers the small-automaton\n speed the monolith loses to cache misses — that recovery, times\n cores, is the scaling the ROADMAP's batch-lane experiment showed\n software cannot get from intra-core interleaving)"
    );
}

/// Two-stage scanning at deployed-IDS scale: the L2-resident
/// pre-classifier + windowed exact verifier on generated 25k- and
/// 100k-rule sets, against the full-fast-path monolith on the
/// 6,275-rule master set — every scanner over the same 1 MiB clean TLS
/// stream (the steady state a DPI box actually spends its cycles on),
/// plus an infected-stream row so the flagged path is costed too.
///
/// The acceptance claim this experiment pins: **a 100k-rule two-stage
/// scan is at least as fast per core as the 6,275-rule monolith**,
/// because stage 1's scan tables are budget-bounded (cache-resident at
/// any rule count) and clean traffic almost never leaves stage 1.
/// Alongside the throughput rows it emits the honesty counters as
/// value rows (`bytes_per_iter = 0`, value in the `median_ns` slot):
/// false-positive window rate and replay fraction in parts-per-million,
/// and stage-1 resident bytes in KiB.
fn two_stage() {
    use dpi_automaton::Match;
    use dpi_core::{
        CompiledAutomaton, CompiledMatcher, ShardedMatcher, TwoStageConfig, TwoStageMatcher,
    };
    use dpi_rulesets::RulesetGenerator;

    const PAYLOAD: usize = 1 << 20;
    let tls = TrafficGenerator::new(0x715_0DD).tls_stream(PAYLOAD).payload;
    // Profile sample from a *different* stream than the measured one, so
    // profile-guided layers cannot overfit the benchmark input.
    let sample = TrafficGenerator::new(0x5A3917E).tls_stream(1 << 16).payload;

    let emit = |id: &str, secs: f64| {
        dpi_bench::bench_json_row(&format!("two-stage/{id}"), secs * 1e9, PAYLOAD as u64);
    };
    let value = |id: &str, v: f64| {
        dpi_bench::bench_json_row(&format!("two-stage/{id}"), v, 0);
    };
    let mbps = |secs: f64| PAYLOAD as f64 / secs / 1e6;

    // Baseline: the 6,275-rule monolith with its whole fast-path stack
    // (prefilter anchors + pair lane), exactly as `sharded-throughput`
    // builds it.
    let master = master_ruleset();
    let dfa = Dfa::build(&master);
    let reduced = dpi_core::ReducedAutomaton::reduce(&dfa, DtpConfig::PAPER);
    let anchors =
        dpi_automaton::AnchorSet::build(&dfa, &master, dpi_automaton::AnchorSet::DEFAULT_HORIZON);
    let pairs = dpi_automaton::PairTable::build_with_region(
        &dfa,
        &master,
        &anchors,
        dpi_core::sharded::ShardedConfig::DEFAULT_PAIR_BUDGET,
    );
    let compiled =
        CompiledAutomaton::compile_with_prefilter(&reduced, anchors).with_pair_table(pairs);
    let mono = CompiledMatcher::new(&compiled, &master);
    let mut buf: Vec<Match> = Vec::with_capacity(1024);
    let (mono_secs, mono_matches) = best_secs(5, || {
        mono.scan_into(&tls, &mut buf);
        buf.len()
    });
    emit("monolith-6275-tls", mono_secs);

    println!("two-stage scan vs monolith, 1 MiB clean TLS stream\n");
    println!(
        "{}{}{}{}{}{}vs monolith",
        cell("scanner", 24),
        cell("stage-1", 12),
        cell("pre KiB", 9),
        cell("replay", 9),
        cell("fp-win", 9),
        cell("MB/s", 8),
    );
    println!(
        "{}{}{}{}{}{}1.00x",
        cell("monolith (6,275)", 24),
        cell("-", 12),
        cell(&format!("{}", compiled.memory_bytes() / 1024), 9),
        cell("100%", 9),
        cell("-", 9),
        cell(&format!("{:.0}", mbps(mono_secs)), 8),
    );
    // "Clean" means no injected occurrences; the rulesets' own 1- and
    // 2-byte strings still legitimately hit random bytes, so every
    // scanner reports a nonzero match stream here.
    println!(
        "{}  ({} short-rule matches in the TLS stream)",
        cell("", 24),
        thousands(mono_matches),
    );

    for rules in [25_000usize, 100_000] {
        let set = RulesetGenerator::new().generate(rules);
        // Stage 1 gets the whole per-core L2 (2 MiB on current server
        // cores). The frontier depth is no longer hand-pinned per
        // ruleset scale: the profiled build sweeps candidate depths,
        // measures each cover's real table size and flag rate on the
        // sample stream, and keeps the best cost-model pick (see
        // `PrefixCover::build_depth_tuned`). Stage 2 is replay-only, so
        // it wants few big shards (fewer automata walked per replayed
        // byte), not cache-resident ones.
        let mut config = TwoStageConfig::with_cores(1);
        config.approx = dpi_automaton::ApproxConfig::with_budget(2 << 20);
        config.exact.budget_bytes = 8 << 20;
        let two = TwoStageMatcher::build_with_profile(&set, &config, &sample)
            .expect("generated set fits the shard plan");
        let mut scratch = two.scratch();
        let mut out: Vec<Match> = Vec::with_capacity(1024);
        let (secs, _) = best_secs(5, || {
            two.scan_into(&tls, &mut scratch, &mut out);
            out.len()
        });
        let stats = two.scan_into(&tls, &mut scratch, &mut out);
        let tag = format!("rules{}k", rules / 1000);
        emit(&format!("{tag}-tls"), secs);
        value(&format!("{tag}-replay-ppm"), stats.replay_fraction() * 1e6);
        value(&format!("{tag}-fp-window-ppm"), stats.fp_window_rate() * 1e6);
        value(
            &format!("{tag}-pre-kib"),
            two.pre_memory_bytes() as f64 / 1024.0,
        );
        value(&format!("{tag}-pre-depth"), two.pre_depth() as f64);

        // The speed is only admissible if the composition stays exact:
        // replay an infected stream through both engines.
        let mut gen = TrafficGenerator::new(0xBAD_F00D ^ rules as u64);
        let infected = gen.infected_packet(1 << 18, &set, 48).payload;
        let exact = ShardedMatcher::build(&set, &config.exact).expect("same plan as stage 2");
        let mut ex_scratch = exact.scratch();
        let mut want: Vec<Match> = Vec::new();
        exact.scan_into(&infected, &mut ex_scratch, &mut want);
        let mut got: Vec<Match> = Vec::new();
        let inf_stats = two.scan_into(&infected, &mut scratch, &mut got);
        assert_eq!(got, want, "two-stage diverged from exact at {rules} rules");
        let (inf_secs, _) = best_secs(3, || {
            two.scan_into(&infected, &mut scratch, &mut got);
            got.len()
        });
        dpi_bench::bench_json_row(
            &format!("two-stage/{tag}-infected"),
            inf_secs * 1e9,
            1u64 << 18,
        );

        println!(
            "{}{}{}{}{}{}{:.2}x",
            cell(&format!("two-stage ({rules})"), 24),
            cell(two.pre_kind(), 12),
            cell(&format!("{}", two.pre_memory_bytes() / 1024), 9),
            cell(&format!("{:.2}%", 100.0 * stats.replay_fraction()), 9),
            cell(&format!("{:.2}%", 100.0 * stats.fp_window_rate()), 9),
            cell(&format!("{:.0}", mbps(secs)), 8),
            mono_secs / secs,
        );
        println!(
            "{}  infected 256 KiB: {:.0} MB/s, replay {:.1}%, {} matches",
            cell("", 24),
            (1 << 18) as f64 / inf_secs / 1e6,
            100.0 * inf_stats.replay_fraction(),
            want.len(),
        );
    }
    println!(
        "\n(stage-1 tables are budget-bounded, so they stay cache-resident at\n any rule count; 1- and 2-byte rules ride an exact table lane inside\n stage 1 so saturated short lengths cannot flood the windowing. the\n acceptance gate — 100k-rule two-stage >= 6,275-rule monolith per\n core on clean TLS — is asserted by CI over the BENCH_JSON rows)"
    );
}

/// Streaming-vs-whole-payload overhead of the resumable scan core, plus
/// the flow-table pipeline on interleaved flows.
///
/// The resumable `ScanState` suspends/resumes the stride-specialized hot
/// loop once per chunk; at a 1,500-byte MTU that bookkeeping should be
/// within ~10% of the payload-at-once scan (the per-chunk cost is O(1)
/// against 1,500 bytes of per-byte work). The 64-byte row shows the
/// overhead's scaling floor; the flow-table row adds per-packet flow
/// lookup and state routing on adversarially interleaved flows.
///
/// BENCH_JSON rows are emitted for every row printed.
fn flow_throughput() {
    use dpi_automaton::{Match, ScanState};
    use dpi_core::{CompiledAutomaton, CompiledMatcher, FlowKey, FlowPacket, FlowTable};

    const PAYLOAD: usize = 1 << 20;

    println!("streaming scan overhead vs whole-payload, 1 MiB infected payload\n");
    println!(
        "{}{}{}{}matches",
        cell("scanner", 30),
        cell("MB/s", 10),
        cell("vs whole", 10),
        cell("overhead", 10),
    );

    let master = master_ruleset();
    for (label, set) in [
        ("300", dpi_rulesets::extract_preserving(&master, 300, 42)),
        ("6275", master.clone()),
    ] {
        let dfa = Dfa::build(&set);
        let reduced = dpi_core::ReducedAutomaton::reduce(&dfa, DtpConfig::PAPER);
        let anchors = dpi_automaton::AnchorSet::build(
            &dfa,
            &set,
            dpi_automaton::AnchorSet::DEFAULT_HORIZON,
        );
        let pairs = dpi_automaton::PairTable::build_with_region(
            &dfa,
            &set,
            &anchors,
            dpi_automaton::PairTable::DEFAULT_BUDGET,
        );
        let compiled =
            CompiledAutomaton::compile_with_prefilter(&reduced, anchors).with_pair_table(pairs);
        let matcher = CompiledMatcher::new(&compiled, &set);
        let mut gen = TrafficGenerator::new(0xF70);
        let payload = gen.infected_packet(PAYLOAD, &set, 64).payload;
        let emit = |id: &str, secs: f64| {
            dpi_bench::bench_json_row(
                &format!("flow-throughput/{label}-{id}"),
                secs * 1e9,
                PAYLOAD as u64,
            );
        };
        let row = |name: &str, secs: f64, matches: usize, whole_secs: f64| {
            println!(
                "{}{}{}{}{}",
                cell(&format!("[{label}] {name}"), 30),
                cell(&format!("{:.0}", PAYLOAD as f64 / secs / 1e6), 10),
                cell(&format!("{:.2}x", whole_secs / secs), 10),
                cell(&format!("{:+.1}%", (secs / whole_secs - 1.0) * 100.0), 10),
                matches
            );
        };

        let mut buf: Vec<Match> = Vec::with_capacity(1024);
        let (whole_secs, whole_matches) = best_secs(5, || {
            matcher.scan_into(&payload, &mut buf);
            buf.len()
        });
        emit("whole", whole_secs);
        row("whole-payload", whole_secs, whole_matches, whole_secs);

        for mtu in [1500usize, 64] {
            let chunks: Vec<&[u8]> = payload.chunks(mtu).collect();
            let (secs, matches) = best_secs(5, || {
                buf.clear();
                let mut state = ScanState::fresh();
                for chunk in &chunks {
                    matcher.scan_chunk_into(&mut state, chunk, &mut buf);
                }
                buf.len()
            });
            assert_eq!(
                matches, whole_matches,
                "streaming must find exactly the whole-payload matches"
            );
            emit(&format!("mtu{mtu}"), secs);
            row(&format!("stream {mtu} B chunks"), secs, matches, whole_secs);
        }

        // Flow-table pipeline: the same bytes as 64 flows' worth of
        // 1,500-byte packets, interleaved, each packet routed through
        // the table to its flow's state.
        const FLOWS: usize = 64;
        let flow_payloads: Vec<&[u8]> = payload.chunks(PAYLOAD / FLOWS).collect();
        let segmented: Vec<Vec<&[u8]>> =
            flow_payloads.iter().map(|p| p.chunks(1500).collect()).collect();
        let counts: Vec<usize> = segmented.iter().map(Vec::len).collect();
        let schedule = gen.interleave_schedule(&counts);
        let mut table = FlowTable::new(FLOWS * 2, ScanState::fresh());
        let mut alerts = Vec::new();
        let (secs, matches) = best_secs(5, || {
            let mut cursors = vec![0usize; segmented.len()];
            let mut total = 0usize;
            for &flow in &schedule {
                let packet = FlowPacket {
                    key: FlowKey(flow as u128),
                    payload: segmented[flow][cursors[flow]],
                };
                cursors[flow] += 1;
                table.ingest_batch(
                    [packet],
                    |state, chunk, out| matcher.scan_chunk_into(state, chunk, out),
                    &mut alerts,
                );
                total += alerts.len();
            }
            // Flows re-touched next iteration carry stale state; reset
            // the table so every timed pass scans identical work.
            table = FlowTable::new(FLOWS * 2, ScanState::fresh());
            total
        });
        emit("flowtable", secs);
        row("flow table (64 flows)", secs, matches, whole_secs);

        // Same interleaved arrival routed through the reassembly layer
        // (explicit sequence numbers, in-order per flow): the full
        // adversary-tolerant segment path, plus its counters.
        use dpi_core::{FlowSegment, ReassemblyConfig, ReassemblyStats, StreamFlow};
        let sequenced: Vec<Vec<(u64, &[u8])>> = flow_payloads
            .iter()
            .map(|p| {
                let mut seq = 0u64;
                p.chunks(1500)
                    .map(|c| {
                        let s = seq;
                        seq += c.len() as u64;
                        (s, c)
                    })
                    .collect()
            })
            .collect();
        let template = StreamFlow::new(ReassemblyConfig::default(), ScanState::fresh());
        let mut rtable = FlowTable::new(FLOWS * 2, template.clone());
        let mut counters = ReassemblyStats::default();
        let (secs, matches) = best_secs(5, || {
            let mut cursors = vec![0usize; sequenced.len()];
            let mut total = 0usize;
            for &flow in &schedule {
                let (seq, payload) = sequenced[flow][cursors[flow]];
                cursors[flow] += 1;
                rtable.ingest_segments(
                    [FlowSegment {
                        key: FlowKey(flow as u128),
                        seq,
                        payload,
                    }],
                    |state, chunk, out| matcher.scan_chunk_into(state, chunk, out),
                    &mut alerts,
                );
                total += alerts.len();
            }
            counters = rtable.stats().reassembly;
            rtable = FlowTable::new(FLOWS * 2, template.clone());
            total
        });
        emit("reassembly", secs);
        row("reassembly (64 flows)", secs, matches, whole_secs);
        println!(
            "{}segments {} buffered {} dup B {} held-peak {}",
            cell("  └ reassembly counters", 30),
            counters.segments,
            counters.segments_buffered,
            counters.dup_bytes,
            counters.bytes_held_peak,
        );
    }
    println!(
        "\n(streaming carries the scan registers across chunk boundaries — the\n per-chunk cost is one stepper dispatch and one register load/store,\n amortized over the chunk; matches straddling boundaries are found,\n which no payload-at-once scan can do. the flow-table row adds the\n per-packet flow lookup on an interleaved 64-flow arrival order)"
    );
}

/// Robustness cost and graceful-degradation rates of the TCP reassembly
/// layer (`dpi_core::reassembly`).
///
/// The `inorder` A/B pair is the acceptance gate: clean in-order traffic
/// through `StreamFlow::ingest` (sequence tracking on, nothing ever
/// buffered) vs the raw resumable scan at MTU chunks — the bookkeeping
/// must stay within 10% of the raw scan, asserted here. The `adv-*` rows
/// then measure throughput and the degradation counters for each hostile
/// schedule family, including a deliberately starved budget that forces
/// hole-skips: memory stays bounded, the scan keeps going.
///
/// BENCH_JSON rows are emitted for every row printed.
fn stream_robustness() {
    use dpi_automaton::{Match, ScanState};
    use dpi_core::{
        CompiledAutomaton, CompiledMatcher, FlowKey, FlowSegment, FlowTable, ReassemblyConfig,
        ReassemblyStats, StreamFlow,
    };
    use dpi_rulesets::{ChopProfile, Segment, SegmentProfile};

    const PAYLOAD: usize = 1 << 20;
    const MTU: usize = 1500;

    let set = dpi_rulesets::extract_preserving(&master_ruleset(), 300, 42);
    let dfa = Dfa::build(&set);
    let reduced = dpi_core::ReducedAutomaton::reduce(&dfa, DtpConfig::PAPER);
    let compiled = CompiledAutomaton::compile(&reduced);
    let matcher = CompiledMatcher::new(&compiled, &set);
    let mut gen = TrafficGenerator::new(0x0B57);

    println!("reassembly overhead on clean traffic, 1 MiB infected payload, {MTU} B segments\n");
    let payload = gen.infected_packet(PAYLOAD, &set, 64).payload;
    let chunks: Vec<&[u8]> = payload.chunks(MTU).collect();
    let mut buf_off: Vec<Match> = Vec::with_capacity(1024);
    let mut buf_on: Vec<Match> = Vec::with_capacity(1024);
    let ab = ab_bench_row(
        "stream-robustness/inorder",
        PAYLOAD,
        7,
        || {
            buf_off.clear();
            let mut state = ScanState::fresh();
            for chunk in &chunks {
                matcher.scan_chunk_into(&mut state, chunk, &mut buf_off);
            }
            buf_off.len()
        },
        || {
            buf_on.clear();
            let mut flow = StreamFlow::new(ReassemblyConfig::default(), ScanState::fresh());
            let mut stats = ReassemblyStats::default();
            let mut scan = |s: &mut ScanState, c: &[u8], o: &mut Vec<Match>| {
                matcher.scan_chunk_into(s, c, o)
            };
            let mut seq = 0u64;
            for chunk in &chunks {
                flow.ingest(seq, chunk, &mut scan, &mut buf_on, &mut stats);
                seq += chunk.len() as u64;
            }
            assert_eq!(stats.segments_buffered, 0, "in-order traffic must not buffer");
            buf_on.len()
        },
    );
    let overhead = (ab.on_secs / ab.off_secs - 1.0) * 100.0;
    println!(
        "{}{}{}{}",
        cell("raw resumable scan", 26),
        cell(&format!("{:.0} MB/s", PAYLOAD as f64 / ab.off_secs / 1e6), 14),
        cell("-", 12),
        ab.matches,
    );
    println!(
        "{}{}{}{}",
        cell("reassembly (in-order)", 26),
        cell(&format!("{:.0} MB/s", PAYLOAD as f64 / ab.on_secs / 1e6), 14),
        cell(&format!("{overhead:+.1}%"), 12),
        ab.matches,
    );
    assert!(
        ab.on_secs <= ab.off_secs * 1.10,
        "in-order reassembly overhead must stay within 10% (measured {overhead:+.1}%)"
    );

    // Adversarial mixes: 64 flows of 16 KiB each, interleaved arrival,
    // through the full FlowTable segment path. The starved-budget row
    // runs a reorder window wider than its 4 KiB budget on purpose.
    const FLOWS: usize = 64;
    const FLOW_BYTES: usize = 16 * 1024;
    let total_bytes = (FLOWS * FLOW_BYTES) as u64;
    println!("\nadversarial mixes, {FLOWS} flows x {FLOW_BYTES} B, interleaved arrival\n");
    println!(
        "{}{}{}{}{}{}{}",
        cell("schedule", 22),
        cell("MB/s", 10),
        cell("buffered", 10),
        cell("conflicts", 11),
        cell("holes", 8),
        cell("hole B", 10),
        cell("budget drops", 14),
    );
    let mixes: &[(&str, SegmentProfile, usize)] = &[
        ("reorder-w4", SegmentProfile::Reorder { window: 4 }, ReassemblyConfig::DEFAULT_BUDGET),
        ("retransmit-e3", SegmentProfile::Retransmit { every: 3 }, ReassemblyConfig::DEFAULT_BUDGET),
        (
            "overlap-conflict",
            SegmentProfile::OverlapConflicting { extend: 32 },
            ReassemblyConfig::DEFAULT_BUDGET,
        ),
        ("holes-e4", SegmentProfile::Holes { every: 4 }, ReassemblyConfig::DEFAULT_BUDGET),
        ("starved-budget", SegmentProfile::Reorder { window: 8 }, 4 * 1024),
    ];
    for &(name, profile, budget) in mixes {
        let schedules: Vec<Vec<Segment>> = (0..FLOWS)
            .map(|_| {
                let packet = gen.infected_packet(FLOW_BYTES, &set, 4);
                gen.segment_schedule(&packet, &set, ChopProfile::MidPattern { mtu: MTU }, profile)
            })
            .collect();
        let counts: Vec<usize> = schedules.iter().map(Vec::len).collect();
        let arrival = gen.interleave_schedule(&counts);
        let template = StreamFlow::new(ReassemblyConfig::new(budget), ScanState::fresh());
        let mut table = FlowTable::new(FLOWS * 2, template.clone());
        let mut alerts = Vec::new();
        let mut counters = ReassemblyStats::default();
        let (secs, _) = best_secs(5, || {
            let mut cursors = vec![0usize; FLOWS];
            let mut total = 0usize;
            for &flow in &arrival {
                let seg = &schedules[flow][cursors[flow]];
                cursors[flow] += 1;
                table.ingest_segments(
                    [FlowSegment {
                        key: FlowKey(flow as u128),
                        seq: seg.seq,
                        payload: &seg.bytes,
                    }],
                    |state, chunk, out| matcher.scan_chunk_into(state, chunk, out),
                    &mut alerts,
                );
                total += alerts.len();
            }
            table.flush_flows(
                |state, chunk, out| matcher.scan_chunk_into(state, chunk, out),
                &mut alerts,
            );
            total += alerts.len();
            counters = table.stats().reassembly;
            table = FlowTable::new(FLOWS * 2, template.clone());
            total
        });
        assert!(
            counters.bytes_held_peak <= (FLOWS * budget) as u64,
            "table-wide buffered bytes must respect the per-flow budget"
        );
        match name {
            "retransmit-e3" => assert!(counters.dup_bytes > 0),
            "overlap-conflict" => assert!(counters.overlap_conflicts > 0),
            "holes-e4" => assert!(counters.holes_skipped > 0),
            "starved-budget" => assert!(counters.budget_drops > 0),
            _ => {}
        }
        dpi_bench::bench_json_row(
            &format!("stream-robustness/adv-{name}"),
            secs * 1e9,
            total_bytes,
        );
        println!(
            "{}{}{}{}{}{}{}",
            cell(name, 22),
            cell(&format!("{:.0}", total_bytes as f64 / secs / 1e6), 10),
            cell(&thousands(counters.segments_buffered as usize), 10),
            cell(&thousands(counters.overlap_conflicts as usize), 11),
            cell(&thousands(counters.holes_skipped as usize), 8),
            cell(&thousands(counters.hole_bytes as usize), 10),
            cell(&thousands(counters.budget_drops as usize), 14),
        );
    }
    println!(
        "\n(the reassembler buffers at most the per-flow budget whatever the\n schedule does — starving the budget converts memory pressure into\n counted hole-skips with scanning resumed at the skip boundary, so a\n hostile sender can cost at most its own stream's coverage, never the\n scanner's memory or other flows' throughput)"
    );
}

/// End-to-end cycle-accurate validation: throughput formula + detection.
fn sim_validate() {
    let set = paper_ruleset(PaperRuleset::S500);
    let acc = Accelerator::build(&set, AcceleratorConfig::STRATIX3).expect("fits");
    let mut gen = TrafficGenerator::new(11);
    let mut packets = Vec::new();
    let mut expected = 0usize;
    for i in 0..36 {
        let p = if i % 3 == 0 {
            let p = gen.infected_packet(1500, &set, 3);
            expected += p.injected.len();
            p
        } else {
            gen.clean_packet(1500)
        };
        packets.push(p.payload);
    }
    let report = acc.scan(&packets);
    println!("cycle-accurate accelerator validation, 500-string ruleset on Stratix 3\n");
    println!(
        "packets: {} x 1500 B; mem cycles: {}; measured {:.2} Gbps of peak {:.2} Gbps",
        packets.len(),
        report.mem_cycles,
        report.throughput_bps(acc.config().fmax_hz) / 1e9,
        acc.peak_throughput_bps() / 1e9
    );
    println!(
        "matches found: {} (>= {} injected); groups {}, group size {}",
        report.matches.len(),
        expected,
        acc.group_count(),
        acc.group_size()
    );
    assert!(report.matches.len() >= expected);
    // Architectural invariant: 16 bits per memory cycle per group when
    // saturated.
    let bits_per_cycle =
        report.bytes_scanned as f64 * 8.0 / report.mem_cycles as f64 / acc.group_count() as f64;
    println!("bits per memory cycle per group: {bits_per_cycle:.2} (architecture bound: 16)");
}

/// The resident service runtime under offered overload: throughput,
/// latency percentiles, and the robustness ledger at 1x / 1.5x / 2x of
/// the measured scan capacity.
fn service_robustness() {
    use dpi_core::{
        FlowKey, FlowState, RulesetArena, Service, ServiceConfig, TwoStageConfig,
    };
    use std::sync::Arc;
    use std::time::Instant;

    let set = master_ruleset();
    let mut config = TwoStageConfig::with_cores(1);
    config.approx = dpi_automaton::ApproxConfig::with_budget(2 << 20);
    config.exact.budget_bytes = 8 << 20;
    let arena = Arc::new(RulesetArena::build(&set, &config, 1).expect("master set fits"));
    // The hot-swap payload, built once up front the way a control plane
    // would: compiling 6,275 rules takes seconds, and paying that on
    // the producer thread mid-run would poison the pacing measurement.
    let arena2 = Arc::new(RulesetArena::build(&set, &config, 2).expect("same set fits"));

    // The workload: concurrent flows, in-order segments, interleaved
    // arrivals, one flow in eight infected.
    const FLOWS: usize = 96;
    const FLOW_LEN: usize = 96 * 1024;
    const SEG: usize = 1200;
    let mix = TrafficGenerator::new(0x5EC_0DE).service_mix(FLOWS, FLOW_LEN, SEG, &set, 8, 6);
    let total_bytes: u64 = mix.iter().map(|(_, s)| s.bytes.len() as u64).sum();

    // Calibrate each fidelity tier's *chunked* scan rate over this very
    // byte stream — the per-segment path the workers actually run, so
    // "1x" means "exactly what one worker can scan at full fidelity",
    // independent of the host machine.
    let tier_bps = |tier: usize| {
        let mut out = Vec::new();
        let mut exact_scratch = arena.exact().scratch();
        let mut two_scratch = arena.two_stage().scratch();
        let mut exact_state = arena.exact().flow_state();
        let mut two_state = arena.two_stage().flow_state();
        let (secs, _) = best_secs(3, || {
            out.clear();
            match tier {
                0 => {
                    exact_state.reset_at(0);
                    for (_, s) in &mix {
                        arena.exact().scan_chunk_into(
                            &mut exact_state,
                            &s.bytes,
                            &mut exact_scratch,
                            &mut out,
                        );
                    }
                }
                1 => {
                    two_state.reset_at(0);
                    for (_, s) in &mix {
                        arena.two_stage().scan_chunk_into(
                            &mut two_state,
                            &s.bytes,
                            &mut two_scratch,
                            &mut out,
                        );
                    }
                }
                _ => {
                    two_state.reset_at(0);
                    for (_, s) in &mix {
                        arena.two_stage().scan_chunk_flag_only(
                            &mut two_state,
                            &s.bytes,
                            &mut two_scratch,
                            &mut out,
                        );
                    }
                }
            }
            out.len()
        });
        total_bytes as f64 / secs
    };
    let exact_bps = tier_bps(0);
    let two_bps = tier_bps(1);
    let flag_bps = tier_bps(2);

    // The deterministic simulator over the same mix: the whole service
    // path (steer, queue, flow table, reassembly, tier dispatch) minus
    // threads and pacing — the honest "what does residency cost"
    // number, and the capacity baseline the offered loads are scaled
    // against.
    let service_bps = {
        let mut sim_config = dpi_core::ServiceConfig::with_workers(1);
        sim_config.queue_cap = 512;
        let (secs, _) = best_secs(3, || {
            let mut sim = dpi_core::ServiceSim::new(Arc::clone(&arena), sim_config)
                .expect("valid sim config");
            for (i, (flow, segment)) in mix.iter().enumerate() {
                sim.offer(
                    FlowKey(0xFACE + *flow as u128),
                    segment.seq,
                    &segment.bytes,
                    i as u64,
                );
                if i % 256 == 0 {
                    sim.pump();
                }
            }
            let report = sim.finish();
            report.stats.workers.packets as usize
        });
        total_bytes as f64 / secs
    };
    let capacity_bps = service_bps;

    // One worker per hardware core beyond the producer's — a resident
    // worker owns its core the way the paper's engines own their block
    // RAMs. On a single-core host the producer must *sleep*, not spin,
    // or it starves the worker it is measuring.
    let workers = std::thread::available_parallelism()
        .map(|n| n.get().saturating_sub(1).max(1))
        .unwrap_or(1);
    println!("resident service runtime, {FLOWS} flows x {} KiB, {workers} workers", FLOW_LEN / 1024);
    println!(
        "calibrated chunk rate: exact {:.0} MB/s, two-stage {:.0} MB/s, flag-only {:.0} MB/s\nresident service rate (sim, full path): {:.0} MB/s\n",
        exact_bps / 1e6,
        two_bps / 1e6,
        flag_bps / 1e6,
        service_bps / 1e6,
    );
    println!(
        "{}{}{}{}{}{}{}",
        cell("offered", 9),
        cell("core MB/s", 11),
        cell("p50 us", 9),
        cell("p99 us", 9),
        cell("p999 us", 9),
        cell("shed %", 8),
        cell("degraded %", 11),
    );

    for (tag, load) in [("load1x", 1.0f64), ("load15x", 1.5), ("load2x", 2.0)] {
        let mut svc_config = ServiceConfig::with_workers(workers);
        svc_config.queue_cap = 256;
        svc_config.flow_capacity = 4096;
        let mut service =
            Service::start(Arc::clone(&arena), svc_config).expect("valid service config");

        // Offered rate: `load` x the aggregate scan capacity, paced by
        // wall clock. The producer never blocks — over capacity, the
        // shed gate does its job instead.
        let rate = load * capacity_bps * workers as f64;
        let start = Instant::now();
        let mut sent = 0u64;
        let mut swapped = false;
        // Burst pacing (a NIC ring drained every interrupt): release
        // segments in bursts and *sleep* between them. Fine-grained
        // yield pacing would monopolise a single-core host's CPU and
        // starve the very workers being measured.
        const BURST: usize = 64;
        for (i, (flow, segment)) in mix.iter().enumerate() {
            if i % BURST == 0 {
                let ahead = sent as f64 / rate - start.elapsed().as_secs_f64();
                if ahead > 100e-6 {
                    std::thread::sleep(std::time::Duration::from_secs_f64(ahead));
                }
            }
            let time = start.elapsed().as_nanos() as u64;
            service.offer(FlowKey(0xFACE + *flow as u128), segment.seq, &segment.bytes, time);
            sent += segment.bytes.len() as u64;
            // One in-band hot swap mid-run: same ruleset, next
            // generation — the swap must not disturb the ledger.
            if !swapped && i == mix.len() / 2 {
                swapped = true;
                service.install_arena(Arc::clone(&arena2));
            }
        }
        let wall = start.elapsed().as_secs_f64();
        let report = service.shutdown();
        let s = &report.stats;

        let scanned = s.scanned_bytes();
        let core_mbps = scanned as f64 / wall / workers as f64 / 1e6;
        let p50 = report.latency.quantile(0.50) as f64 / 1e3;
        let p99 = report.latency.quantile(0.99) as f64 / 1e3;
        let p999 = report.latency.quantile(0.999) as f64 / 1e3;
        let shed_pct = 100.0 * s.shed_bytes as f64 / s.offered_bytes as f64;
        let degraded = s.workers.tier_bytes[1] + s.workers.tier_bytes[2];
        let degraded_pct = if scanned > 0 {
            100.0 * degraded as f64 / scanned as f64
        } else {
            0.0
        };
        // The ledger: every admitted byte scanned or accounted.
        let unaccounted =
            s.admitted_bytes as i64 - scanned as i64 - s.workers.panic_lost_bytes as i64;

        println!(
            "{}{}{}{}{}{}{:.1}",
            cell(&format!("{load:.1}x"), 9),
            cell(&format!("{core_mbps:.0}"), 11),
            cell(&format!("{p50:.0}"), 9),
            cell(&format!("{p99:.0}"), 9),
            cell(&format!("{p999:.0}"), 9),
            cell(&format!("{shed_pct:.1}"), 8),
            degraded_pct,
        );

        dpi_bench::bench_json_row(&format!("service/{tag}-wall"), wall * 1e9, scanned);
        let value = |id: &str, v: f64| {
            dpi_bench::bench_json_row(&format!("service/{tag}-{id}"), v, 0);
        };
        value("core-mbps", core_mbps);
        value("p50-us", p50);
        value("p99-us", p99);
        value("p999-us", p999);
        value("shed-pct", shed_pct);
        value("degraded-pct", degraded_pct);
        value("flows-resident", s.flows_resident as f64);
        value("unaccounted-bytes", unaccounted as f64);
        value("swaps", s.swaps as f64);
        value("matches", s.workers.matches as f64);

        assert_eq!(
            s.offered_packets,
            s.admitted_packets + s.shed_packets,
            "shed accounting must balance at {load}x"
        );
        assert_eq!(unaccounted, 0, "silent byte loss at {load}x offered load");
        assert_eq!(s.offered_bytes, total_bytes);
    }
    println!(
        "\n(offered load is paced against the calibrated scan rate; past 1x the\n shed gate drops whole flows with exact accounting and the fidelity\n ladder trades match granularity for drain rate — the ledger\n `admitted == scanned + panic-lost` holds at every load)"
    );
}

/// Protocol normalization robustness: the chunk-boundary evasion a raw
/// scanner provably misses is caught post-normalization, every
/// malformation shape fails open with a balanced byte ledger, and the
/// normalizer's overhead on well-formed traffic stays within budget
/// (CI gates the `protocol/wellformed-{off,on}` pair at +10%).
fn protocol_robustness() {
    use dpi_automaton::{Match, PatternSet, ScanState};
    use dpi_core::{Lane, ProtoConfig, ProtoFlow, ProtocolId, ProtocolStats, ScopedRuleset};
    use dpi_rulesets::HTTP_MALFORMATIONS;

    /// Runs `wire` through detect → normalize → scan in `mtu`-sized
    /// in-order chunks and returns the matches.
    fn pipeline(
        rules: &ScopedRuleset,
        config: ProtoConfig,
        wire: &[u8],
        mtu: usize,
        stats: &mut ProtocolStats,
    ) -> Vec<Match> {
        let full = rules.lane(Lane::Raw);
        let http = rules.lane(Lane::Normalized(ProtocolId::Http));
        let tls = rules.lane(Lane::Normalized(ProtocolId::Tls));
        let mut flow = ProtoFlow::new(ScanState::fresh(), config);
        let mut out = Vec::new();
        for chunk in wire.chunks(mtu.max(1)) {
            flow.deliver(
                chunk,
                false,
                stats,
                |lane, scan: &mut ScanState, bytes, out| {
                    let view = match lane {
                        Lane::Raw => &full,
                        Lane::Normalized(ProtocolId::Http) => &http,
                        Lane::Normalized(ProtocolId::Tls) => &tls,
                        Lane::Normalized(_) => &full,
                    };
                    view.scan_chunk_into(scan, bytes, out);
                },
                &mut out,
            );
        }
        out
    }

    let disabled = ProtoConfig {
        enabled: false,
        ..ProtoConfig::default()
    };

    // --- Evasion: every injected signature split by a chunk boundary.
    let sig_set =
        PatternSet::new(["attack-sig", "evil-payload", "cmd-exec-42"]).expect("valid patterns");
    let sig_rules = ScopedRuleset::build(&sig_set);
    let mut gen = TrafficGenerator::new(0x90A7);
    let stream = gen.chunked_evasion_stream(&sig_set, 24);
    let mut stats = ProtocolStats::default();
    let normalized = pipeline(&sig_rules, ProtoConfig::default(), &stream.wire, 1460, &mut stats);
    let caught = stream
        .injected
        .iter()
        .filter(|&&(id, end)| normalized.iter().any(|m| m.pattern == id && m.end == end))
        .count();
    assert_eq!(stats.unaccounted_bytes(), 0, "evasion ledger must balance");
    let mut raw_stats = ProtocolStats::default();
    let raw = pipeline(&sig_rules, disabled, &stream.wire, 1460, &mut raw_stats);
    println!(
        "chunk-boundary evasion: {} injected, normalized caught {}, raw scan caught {}",
        stream.injected.len(),
        caught,
        raw.len(),
    );
    assert_eq!(caught, stream.injected.len(), "normalizer must catch every split signature");
    assert!(raw.is_empty(), "the raw scan must miss every split signature");
    dpi_bench::bench_json_row("protocol/evasion-injected", stream.injected.len() as f64, 0);
    dpi_bench::bench_json_row("protocol/evasion-caught", caught as f64, 0);
    dpi_bench::bench_json_row("protocol/evasion-raw-caught", raw.len() as f64, 0);

    // --- Malformed sweep: fail open, count the downgrade, keep the
    // ledger balanced, still find the signature after the framing dies.
    let mut unaccounted_total = 0i64;
    let mut downgrades = 0u64;
    for &kind in HTTP_MALFORMATIONS {
        let mut wire = gen.malformed_http_stream(kind);
        wire.extend_from_slice(b"....attack-sig....");
        let mut stats = ProtocolStats::default();
        let got = pipeline(&sig_rules, ProtoConfig::default(), &wire, 7, &mut stats);
        assert!(
            got.iter().any(|m| m.pattern.index() == 0),
            "{kind:?}: signature after hostile framing must still be found"
        );
        assert_eq!(stats.delivered_bytes, wire.len() as u64);
        unaccounted_total += stats.unaccounted_bytes().abs();
        downgrades += stats.malformed_downgrades;
        println!(
            "  {kind:?}: downgrades {}, raw bytes {}, ledger {}",
            stats.malformed_downgrades,
            stats.raw_bytes,
            stats.unaccounted_bytes(),
        );
    }
    println!(
        "malformed sweep: {} shapes, {downgrades} downgrades, {unaccounted_total} unaccounted bytes",
        HTTP_MALFORMATIONS.len(),
    );
    assert_eq!(unaccounted_total, 0, "malformed sweep must not lose a byte");
    dpi_bench::bench_json_row("protocol/ledger-unaccounted", unaccounted_total as f64, 0);
    dpi_bench::bench_json_row("protocol/malformed-downgrades", downgrades as f64, 0);

    // --- Well-formed overhead: Content-Length framing decodes to the
    // wire bytes themselves, so normalizer-on and normalizer-off scan
    // identical streams and must report identical matches — the A/B
    // helper asserts that, and CI gates the timing pair at +10%.
    let rules = ScopedRuleset::build(&dpi_rulesets::extract_preserving(
        &master_ruleset(),
        300,
        0x0B07,
    ));
    let well = gen.http_stream(96, 8192, 0.0);
    let ab = ab_bench_row(
        "protocol/wellformed",
        well.wire.len(),
        30,
        || {
            let mut stats = ProtocolStats::default();
            pipeline(&rules, disabled, &well.wire, 1460, &mut stats).len()
        },
        || {
            let mut stats = ProtocolStats::default();
            pipeline(&rules, ProtoConfig::default(), &well.wire, 1460, &mut stats).len()
        },
    );
    println!(
        "well-formed overhead: raw {:.0} MB/s, normalized {:.0} MB/s ({:+.1}% overhead, {} matches)",
        well.wire.len() as f64 / ab.off_secs / 1e6,
        well.wire.len() as f64 / ab.on_secs / 1e6,
        (ab.on_secs / ab.off_secs - 1.0) * 100.0,
        ab.matches,
    );
}

/// In-band hot-swap drain stretch: how many extra lockstep steps a
/// stalled worker adds between the swap broadcast and the last worker
/// installing the new generation — measured clean vs under a
/// `SlowWorker` fault on the deterministic simulator, with the
/// byte-ledger asserted on both runs.
fn swap_drain() {
    use dpi_core::{
        FaultKind, FaultPlan, FlowKey, RulesetArena, ServiceConfig, ServiceSim, TwoStageConfig,
    };
    use std::sync::Arc;

    let set = dpi_rulesets::extract_preserving(&master_ruleset(), 200, 0x51AB);
    let config = TwoStageConfig::with_cores(1);
    let arena = Arc::new(RulesetArena::build(&set, &config, 1).expect("set fits"));
    const WORKERS: usize = 4;
    const STALL: u32 = 24;
    let mut gen = TrafficGenerator::new(0xD8A1);
    let packets = gen.packets(64, 1200, &set, 1);

    let run = |plan: FaultPlan| -> u64 {
        let mut svc = ServiceConfig::with_workers(WORKERS);
        svc.queue_cap = 512;
        let mut sim =
            ServiceSim::with_faults(Arc::clone(&arena), svc, plan).expect("valid sim config");
        let mut time = 0u64;
        for (i, p) in packets.iter().enumerate() {
            time += 1;
            sim.offer(FlowKey(i as u128), 0, &p.payload, time);
        }
        let generation = sim.hot_swap(&set, &config).expect("swap builds");
        let mut steps = 0u64;
        while sim.workers_at_generation(generation) < WORKERS {
            sim.step();
            steps += 1;
            assert!(steps < 100_000, "swap drain never completed");
        }
        let report = sim.finish();
        assert_eq!(report.stats.swaps, 1);
        assert_eq!(report.stats.workers.swaps as usize, WORKERS);
        assert_eq!(
            report.stats.scanned_bytes(),
            report.stats.admitted_bytes,
            "drain measurement must not lose bytes"
        );
        steps
    };

    let clean = run(FaultPlan::none());
    let stalled = run(FaultPlan::new(vec![(0, FaultKind::SlowWorker(0, STALL))]));
    assert!(
        stalled > clean,
        "a {STALL}-step stall must stretch the drain ({clean} -> {stalled})"
    );
    println!(
        "in-band swap drain over {WORKERS} workers, {} queued segments:",
        packets.len()
    );
    println!("  clean:                {clean} steps");
    println!("  SlowWorker({STALL} steps): {stalled} steps (+{})", stalled - clean);
    dpi_bench::bench_json_row("swap-drain/clean-steps", clean as f64, 0);
    dpi_bench::bench_json_row("swap-drain/stalled-steps", stalled as f64, 0);
    dpi_bench::bench_json_row("swap-drain/stretch-steps", (stalled - clean) as f64, 0);
}
