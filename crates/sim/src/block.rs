//! One string matching block (Figure 4): true-dual-port memories, six
//! engines (three per port, 120° out of phase, engine clock = memory clock
//! ÷ 3), and one match scheduler per port.
//!
//! The simulation advances in **memory clock cycles**. On memory cycle `m`,
//! the engine with phase `m mod 3` on each port takes its engine-clock
//! step; because exactly one of a port's three engines is active per memory
//! cycle, read commands can simply be multiplexed — the model asserts this
//! single-access-per-port-per-cycle invariant rather than arbitrating.

use crate::engine::{Engine, SimPacket};
use crate::scheduler::{MatchScheduler, PacketMatch, SchedulerStats};
use dpi_automaton::PatternSet;
use dpi_core::{DtpConfig, ReducedAutomaton};
use dpi_hw::{HwError, HwImage};

/// Engines per block (fixed by the architecture).
pub const ENGINES_PER_BLOCK: usize = 6;
/// Memory ports (true dual port).
pub const PORTS: usize = 2;
/// Engine clock division: memory runs at 3× the engine clock.
pub const PHASES: usize = 3;

/// A block's report after draining its packet queue.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockReport {
    /// All matches found, in scheduler drain order (block-local pattern
    /// ids).
    pub matches: Vec<PacketMatch>,
    /// Memory clock cycles elapsed.
    pub mem_cycles: usize,
    /// Total payload bytes scanned.
    pub bytes_scanned: usize,
    /// State-memory reads per port.
    pub port_state_reads: [usize; PORTS],
    /// Lookup-table reads per port.
    pub port_lut_reads: [usize; PORTS],
    /// Per-port scheduler counters.
    pub scheduler: [SchedulerStats; PORTS],
    /// Per-engine byte counts.
    pub engine_bytes: [usize; ENGINES_PER_BLOCK],
}

impl BlockReport {
    /// Scan throughput in bits per memory cycle. The architectural bound is
    /// 16 (6 engines × 8 bits ÷ 3); a fully loaded block approaches it.
    pub fn bits_per_mem_cycle(&self) -> f64 {
        self.bytes_scanned as f64 * 8.0 / self.mem_cycles as f64
    }

    /// Scan throughput in bits/s for a given memory clock.
    pub fn throughput_bps(&self, fmax_hz: f64) -> f64 {
        self.bits_per_mem_cycle() * fmax_hz
    }
}

/// Reusable cross-scan state for [`Block::run_with`]: the engine array,
/// the per-port match schedulers (whose event queues are the ROADMAP-
/// flagged per-scan allocation this type removes) and the packet queue.
/// Keep one per block and repeated scans allocate nothing for queue
/// bookkeeping in steady state.
#[derive(Debug, Clone, Default)]
pub struct BlockScratch {
    engines: Vec<Engine>,
    schedulers: Vec<MatchScheduler>,
    queue: std::collections::VecDeque<SimPacket>,
}

impl BlockScratch {
    /// Creates empty scratch; buffers grow to steady size on first use.
    pub fn new() -> BlockScratch {
        BlockScratch::default()
    }
}

/// One string matching block: image + engines + schedulers + packet queue.
#[derive(Debug, Clone)]
pub struct Block {
    image: HwImage,
    set: PatternSet,
}

impl Block {
    /// Builds a block for `set` under the paper's DTP configuration, with
    /// `max_words` of state memory.
    ///
    /// # Errors
    ///
    /// Propagates [`HwError`] when the ruleset does not fit the block (too
    /// many words, match-memory overflow, >13 pointers in a state).
    pub fn build(set: &PatternSet, max_words: usize) -> Result<Block, HwError> {
        Self::build_with_config(set, max_words, DtpConfig::PAPER)
    }

    /// Builds with an explicit DTP configuration.
    ///
    /// # Errors
    ///
    /// Same as [`Block::build`].
    pub fn build_with_config(
        set: &PatternSet,
        max_words: usize,
        config: DtpConfig,
    ) -> Result<Block, HwError> {
        let dfa = dpi_automaton::Dfa::build(set);
        let reduced = ReducedAutomaton::reduce(&dfa, config);
        let image = HwImage::build_with_capacity(&reduced, max_words)?;
        Ok(Block {
            image,
            set: set.clone(),
        })
    }

    /// Builds directly from a prepared image (used by the accelerator).
    pub fn from_image(image: HwImage, set: PatternSet) -> Block {
        Block { image, set }
    }

    /// The block's memory image.
    pub fn image(&self) -> &HwImage {
        &self.image
    }

    /// The block's pattern subset.
    pub fn set(&self) -> &PatternSet {
        &self.set
    }

    /// Scans `packets` to completion and reports matches plus cycle-level
    /// accounting. Packets are assigned to the six engines greedily: an
    /// engine that finishes its packet pulls the next from the queue on its
    /// following engine cycle ("a string matching block needs 6 packets to
    /// keep its engines busy").
    ///
    /// Convenience wrapper allocating fresh scratch; scan loops should
    /// hold a [`BlockScratch`] and call [`Block::run_with`].
    pub fn run(&self, packets: Vec<SimPacket>) -> BlockReport {
        let mut scratch = BlockScratch::new();
        self.run_with(packets, &mut scratch)
    }

    /// [`Block::run`] with caller-owned queues: the engine array, packet
    /// queue and per-port match-scheduler event buffers live in `scratch`
    /// and are reused (capacity and all) across scans.
    pub fn run_with(
        &self,
        packets: impl IntoIterator<Item = SimPacket>,
        scratch: &mut BlockScratch,
    ) -> BlockReport {
        let start_record = self.image.decode_state(self.image.start());
        let BlockScratch {
            engines,
            schedulers,
            queue,
        } = scratch;
        // Reuse the engine array in place when the scratch has been
        // through a run already: each engine's record keeps its pointer
        // capacity, so repeat scans touch the allocator for nothing but
        // result growth.
        if engines.len() == ENGINES_PER_BLOCK {
            for e in engines.iter_mut() {
                e.reset(&start_record);
            }
        } else {
            engines.clear();
            engines.extend((0..ENGINES_PER_BLOCK).map(|i| Engine::new(i, &start_record)));
        }
        schedulers.resize_with(PORTS, MatchScheduler::new);
        for s in schedulers.iter_mut() {
            s.reset();
        }
        queue.clear();
        queue.extend(packets);
        let mut matches = Vec::new();
        let mut port_state_reads = [0usize; PORTS];
        let mut port_lut_reads = [0usize; PORTS];
        let mut bytes_scanned = 0usize;
        let mut mem_cycle = 0usize;

        loop {
            let phase = mem_cycle % PHASES;
            for port in 0..PORTS {
                let idx = port * PHASES + phase;
                // Feed an idle engine before its step.
                if engines[idx].is_idle() {
                    if let Some(p) = queue.pop_front() {
                        engines[idx].load_packet(p, &start_record);
                    }
                }
                let (activity, event) = engines[idx].step(&self.image, &self.set);
                // Single access per port per memory cycle, by construction.
                port_state_reads[port] += usize::from(activity.state_read);
                port_lut_reads[port] += usize::from(activity.lut_read);
                bytes_scanned += usize::from(activity.state_read);
                if let Some(ev) = event {
                    schedulers[port].push(ev);
                }
                // The match-number memory is dual-ported too: one word per
                // port per memory cycle.
                schedulers[port].drain_one(self.image.match_mem(), &mut matches);
            }
            mem_cycle += 1;

            let all_idle = engines.iter().all(Engine::is_idle);
            let drained = schedulers.iter().all(MatchScheduler::is_empty);
            if all_idle && queue.is_empty() && drained {
                break;
            }
            // Safety valve against modelling bugs.
            debug_assert!(
                mem_cycle < 100_000_000,
                "simulation failed to terminate"
            );
        }

        let mut engine_bytes = [0usize; ENGINES_PER_BLOCK];
        for (i, e) in engines.iter().enumerate() {
            engine_bytes[i] = e.stats().bytes;
        }
        BlockReport {
            matches,
            mem_cycles: mem_cycle,
            bytes_scanned,
            port_state_reads,
            port_lut_reads,
            scheduler: [schedulers[0].stats(), schedulers[1].stats()],
            engine_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpi_automaton::{MultiMatcher, NaiveMatcher};

    fn block() -> Block {
        let set = PatternSet::new(["he", "she", "his", "hers"]).unwrap();
        Block::build(&set, 4096).unwrap()
    }

    fn packets_of(payloads: &[&[u8]]) -> Vec<SimPacket> {
        payloads
            .iter()
            .enumerate()
            .map(|(id, p)| SimPacket {
                id,
                bytes: p.to_vec(),
            })
            .collect()
    }

    #[test]
    fn matches_agree_with_naive_per_packet() {
        let b = block();
        let payloads: Vec<&[u8]> = vec![
            b"ushers", b"his hats", b"nothing", b"she sells seashells", b"hers", b"hhh",
            b"shehehers", b"x",
        ];
        let report = b.run(packets_of(&payloads));
        let naive = NaiveMatcher::new(b.set());
        for (id, payload) in payloads.iter().enumerate() {
            let mut got: Vec<(usize, u32)> = report
                .matches
                .iter()
                .filter(|m| m.packet == id)
                .map(|m| (m.end, m.pattern.0))
                .collect();
            got.sort_unstable();
            let mut want: Vec<(usize, u32)> = naive
                .find_all(payload)
                .into_iter()
                .map(|m| (m.end, m.pattern.0))
                .collect();
            want.sort_unstable();
            assert_eq!(got, want, "packet {id}");
        }
    }

    #[test]
    fn six_engines_share_the_load() {
        let b = block();
        let payloads: Vec<Vec<u8>> = (0..12).map(|_| vec![b'x'; 300]).collect();
        let refs: Vec<&[u8]> = payloads.iter().map(Vec::as_slice).collect();
        let report = b.run(packets_of(&refs));
        // Every engine processed some bytes.
        for (i, &bytes) in report.engine_bytes.iter().enumerate() {
            assert!(bytes > 0, "engine {i} starved");
        }
        assert_eq!(report.bytes_scanned, 12 * 300);
    }

    #[test]
    fn throughput_approaches_16_bits_per_mem_cycle() {
        let b = block();
        // 6 equal packets saturate the block exactly.
        let payloads: Vec<Vec<u8>> = (0..6).map(|_| vec![b'q'; 1000]).collect();
        let refs: Vec<&[u8]> = payloads.iter().map(Vec::as_slice).collect();
        let report = b.run(packets_of(&refs));
        let bpc = report.bits_per_mem_cycle();
        assert!(bpc > 15.5, "bits/mem-cycle {bpc}");
        assert!(bpc <= 16.0 + 1e-9);
        // 16 × fmax: at 460.19 MHz this is the paper's 7.36 Gbps per block.
        let gbps = report.throughput_bps(460.19e6) / 1e9;
        assert!((7.0..7.4).contains(&gbps), "per-block Gbps {gbps}");
    }

    #[test]
    fn port_reads_equal_bytes_scanned() {
        let b = block();
        let payloads: Vec<&[u8]> = vec![b"abcdefgh"; 6];
        let report = b.run(packets_of(&payloads));
        let total_reads: usize = report.port_state_reads.iter().sum();
        assert_eq!(total_reads, report.bytes_scanned);
        let total_lut: usize = report.port_lut_reads.iter().sum();
        assert_eq!(total_lut, report.bytes_scanned);
    }

    #[test]
    fn single_packet_uses_one_engine() {
        let b = block();
        let report = b.run(packets_of(&[b"ushers ushers ushers"]));
        let active = report.engine_bytes.iter().filter(|&&x| x > 0).count();
        assert_eq!(active, 1);
        // Utilization is 1/6 of peak: ~2.67 bits/mem-cycle.
        assert!(report.bits_per_mem_cycle() < 3.0);
    }

    #[test]
    fn scratch_reuse_changes_nothing_and_keeps_queue_capacity() {
        let b = block();
        let payloads: Vec<&[u8]> = vec![b"ushers", b"his hats", b"she sells", b"hers", b"hhh"];
        let fresh = b.run(packets_of(&payloads));
        let mut scratch = BlockScratch::new();
        let first = b.run_with(packets_of(&payloads), &mut scratch);
        assert_eq!(first, fresh, "scratch path must be scan-invisible");
        // Second run through the same scratch: identical report, and the
        // scheduler event buffers start from reset (not accumulated).
        let second = b.run_with(packets_of(&payloads), &mut scratch);
        assert_eq!(second, fresh);
        assert_eq!(second.scheduler[0].events, fresh.scheduler[0].events);
    }

    #[test]
    fn engine_array_is_reused_across_runs() {
        // Same scratch, three runs: the engine vector must survive in
        // place (reset, not rebuilt) and reports must stay identical —
        // the per-packet start-record clone this replaced is gone.
        let b = block();
        let payloads: Vec<&[u8]> = vec![b"ushers", b"she", b"hers", b"x", b"his hats"];
        let mut scratch = BlockScratch::new();
        let first = b.run_with(packets_of(&payloads), &mut scratch);
        assert_eq!(scratch.engines.len(), ENGINES_PER_BLOCK);
        let caps: Vec<usize> = scratch
            .engines
            .iter()
            .map(|e| e.stats().packets) // engines were used...
            .collect();
        assert!(caps.iter().sum::<usize>() >= payloads.len());
        for _ in 0..2 {
            let again = b.run_with(packets_of(&payloads), &mut scratch);
            assert_eq!(again, first);
        }
    }

    #[test]
    fn empty_queue_returns_quickly() {
        let b = block();
        let report = b.run(Vec::new());
        assert_eq!(report.bytes_scanned, 0);
        assert!(report.matches.is_empty());
    }

    #[test]
    fn dense_matches_all_recovered() {
        // Pattern "aa" in "aaaa..." matches at every position ≥ 2: stresses
        // the scheduler's buffering.
        let set = PatternSet::new(["aa"]).unwrap();
        let b = Block::build(&set, 4096).unwrap();
        let payload = vec![b'a'; 64];
        let report = b.run(vec![SimPacket {
            id: 0,
            bytes: payload.clone(),
        }]);
        assert_eq!(report.matches.len(), 63);
        let naive = NaiveMatcher::new(&set);
        assert_eq!(naive.find_all(&payload).len(), 63);
        assert!(report.scheduler[0].events == 63);
    }
}
