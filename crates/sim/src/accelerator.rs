//! The complete hardware accelerator: several string matching blocks on one
//! FPGA (§IV.B).
//!
//! Two deployment modes, chosen automatically from the ruleset size:
//!
//! - **independent** (group size 1): every block holds the whole state
//!   machine and scans its own packets — maximum throughput;
//! - **grouped** (group size g > 1): the ruleset is split across g blocks
//!   which scan the *same* packets together; system throughput divides
//!   by g ("the engines working together to scan a packet").
//!
//! The builder picks the smallest g whose per-block images satisfy every
//! hardware limit (state words, 13-pointer cap, match-memory words, 13-bit
//! string numbers), mirroring the capacity planning behind Table II.

use crate::block::{Block, BlockReport, BlockScratch, ENGINES_PER_BLOCK};
use crate::engine::SimPacket;
use dpi_automaton::{PatternId, PatternSet};
use dpi_core::DtpConfig;
use dpi_hw::HwError;

/// Device-level configuration of the accelerator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AcceleratorConfig {
    /// String matching blocks available on the device (6 on the paper's
    /// Stratix 3, 4 on its Cyclone 3).
    pub blocks: usize,
    /// State-memory words per block (3,584 / 2,560 in the paper).
    pub words_per_block: usize,
    /// Memory clock in Hz (460.19 MHz / 233.15 MHz in Table I).
    pub fmax_hz: f64,
}

impl AcceleratorConfig {
    /// The paper's Stratix 3 configuration.
    pub const STRATIX3: AcceleratorConfig = AcceleratorConfig {
        blocks: 6,
        words_per_block: 3584,
        fmax_hz: 460.19e6,
    };

    /// The paper's Cyclone 3 configuration.
    pub const CYCLONE3: AcceleratorConfig = AcceleratorConfig {
        blocks: 4,
        words_per_block: 2560,
        fmax_hz: 233.15e6,
    };
}

/// Error raised when a ruleset cannot be deployed on a device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeployError {
    /// The failure for the largest group size attempted (= all blocks).
    pub last: HwError,
    /// Blocks available.
    pub blocks: usize,
}

impl std::fmt::Display for DeployError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ruleset does not fit even when split across all {} blocks: {}",
            self.blocks, self.last
        )
    }
}

impl std::error::Error for DeployError {}

/// A match reported by the accelerator, with global pattern ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct GlobalMatch {
    /// Packet identifier.
    pub packet: usize,
    /// Offset one past the occurrence's final byte.
    pub end: usize,
    /// Pattern id in the *original* (unsplit) pattern set.
    pub pattern: PatternId,
}

/// System-level report of a scan.
#[derive(Debug, Clone, PartialEq)]
pub struct AcceleratorReport {
    /// All matches, sorted by (packet, end, pattern).
    pub matches: Vec<GlobalMatch>,
    /// Memory cycles until the slowest block finished.
    pub mem_cycles: usize,
    /// Distinct payload bytes scanned (each packet counted once, however
    /// many blocks scanned it).
    pub bytes_scanned: usize,
    /// Per-block raw reports.
    pub block_reports: Vec<BlockReport>,
}

impl AcceleratorReport {
    /// Measured throughput in bits/s at memory clock `fmax_hz`.
    pub fn throughput_bps(&self, fmax_hz: f64) -> f64 {
        self.bytes_scanned as f64 * 8.0 / self.mem_cycles as f64 * fmax_hz
    }
}

/// Reusable cross-scan state for [`Accelerator::scan_with`]: per-group
/// packet assignments plus the block-level queues ([`BlockScratch`]).
/// Keep one per traffic loop and repeated scans reuse every queue's
/// capacity instead of reallocating it.
#[derive(Debug, Clone, Default)]
pub struct ScanScratch {
    per_group: Vec<Vec<SimPacket>>,
    block: BlockScratch,
}

impl ScanScratch {
    /// Creates empty scratch; buffers grow to steady size on first use.
    pub fn new() -> ScanScratch {
        ScanScratch::default()
    }
}

/// The accelerator: `groups × group_size` blocks plus id-translation maps.
#[derive(Debug, Clone)]
pub struct Accelerator {
    config: AcceleratorConfig,
    /// Blocks of each group, with local→global pattern id maps.
    groups: Vec<Vec<(Block, Vec<PatternId>)>>,
    group_size: usize,
}

impl Accelerator {
    /// Deploys `set` on a device, choosing the smallest workable group
    /// size.
    ///
    /// # Errors
    ///
    /// [`DeployError`] when even one block per pattern subset across all
    /// blocks cannot hold the ruleset.
    pub fn build(set: &PatternSet, config: AcceleratorConfig) -> Result<Accelerator, DeployError> {
        Self::build_with_config(set, config, DtpConfig::PAPER)
    }

    /// Deploys with an explicit DTP configuration.
    ///
    /// # Errors
    ///
    /// See [`Accelerator::build`].
    pub fn build_with_config(
        set: &PatternSet,
        config: AcceleratorConfig,
        dtp: DtpConfig,
    ) -> Result<Accelerator, DeployError> {
        let mut last_err: Option<HwError> = None;
        for g in 1..=config.blocks {
            if g > set.len() {
                break;
            }
            match Self::try_group_size(set, config, dtp, g) {
                Ok(acc) => return Ok(acc),
                Err(e) => last_err = Some(e),
            }
        }
        Err(DeployError {
            last: last_err.expect("at least one group size attempted"),
            blocks: config.blocks,
        })
    }

    fn try_group_size(
        set: &PatternSet,
        config: AcceleratorConfig,
        dtp: DtpConfig,
        g: usize,
    ) -> Result<Accelerator, HwError> {
        // Prefix-grouped split first (fewest duplicated shallow states),
        // then the round-robin split, which dilutes wide states' fan-out
        // when prefix grouping trips the 13-pointer cap.
        type SplitFn = fn(&PatternSet, usize) -> Vec<(PatternSet, Vec<PatternId>)>;
        let attempts: &[SplitFn] = &[PatternSet::split_by_prefix, PatternSet::split];
        let mut last: Option<HwError> = None;
        for (i, split) in attempts.iter().enumerate() {
            let parts = if g == 1 {
                vec![(set.clone(), set.iter().map(|(id, _)| id).collect())]
            } else {
                split(set, g)
            };
            // Build the g distinct block images once.
            let mut built: Vec<(Block, Vec<PatternId>)> = Vec::with_capacity(g);
            let mut failed = None;
            for (sub, ids) in parts {
                match Block::build_with_config(&sub, config.words_per_block, dtp) {
                    Ok(block) => built.push((block, ids)),
                    Err(e) => {
                        failed = Some(e);
                        break;
                    }
                }
            }
            if let Some(e) = failed {
                last = Some(e);
                if g == 1 && i == 0 {
                    break; // both splits identical at g = 1
                }
                continue;
            }
            // Replicate images across the device's groups.
            let group_count = config.blocks / g;
            let groups = (0..group_count).map(|_| built.clone()).collect();
            return Ok(Accelerator {
                config,
                groups,
                group_size: g,
            });
        }
        Err(last.expect("at least one split attempted"))
    }

    /// Group size g chosen at build time (blocks scanning each packet).
    pub fn group_size(&self) -> usize {
        self.group_size
    }

    /// Number of independent packet-scanning groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Device configuration.
    pub fn config(&self) -> AcceleratorConfig {
        self.config
    }

    /// Architectural peak throughput in bits/s: groups × 6 engines × 8 bits
    /// × (f_max / 3) — i.e. groups × 16 × f_max, the paper's formula.
    pub fn peak_throughput_bps(&self) -> f64 {
        self.group_count() as f64 * 16.0 * self.config.fmax_hz
    }

    /// Scans `packets` (id = index) and merges all blocks' matches with
    /// global pattern ids.
    ///
    /// Convenience wrapper allocating fresh scratch; traffic loops should
    /// hold a [`ScanScratch`] and call [`Accelerator::scan_with`].
    pub fn scan(&self, packets: &[Vec<u8>]) -> AcceleratorReport {
        let mut scratch = ScanScratch::new();
        self.scan_with(packets, &mut scratch)
    }

    /// [`Accelerator::scan`] with caller-owned queues: the per-group
    /// packet assignments and every block's engine/scheduler/packet
    /// queues live in `scratch` and are reused across scans.
    pub fn scan_with(&self, packets: &[Vec<u8>], scratch: &mut ScanScratch) -> AcceleratorReport {
        let ScanScratch { per_group, block } = scratch;
        // Round-robin packets across groups.
        per_group.resize_with(self.groups.len(), Vec::new);
        for assigned in per_group.iter_mut() {
            assigned.clear();
        }
        let mut bytes = 0usize;
        for (i, p) in packets.iter().enumerate() {
            bytes += p.len();
            per_group[i % self.groups.len()].push(SimPacket {
                id: i,
                bytes: p.clone(),
            });
        }
        let mut matches: Vec<GlobalMatch> = Vec::new();
        let mut block_reports = Vec::new();
        let mut mem_cycles = 0usize;
        for (group, assigned) in self.groups.iter().zip(per_group.iter()) {
            for (block_model, id_map) in group {
                // Every block of a group scans the same packets; hand each
                // a cloned stream off the shared assignment (engines take
                // packets by value) through the reused scratch queues.
                let report = block_model.run_with(assigned.iter().cloned(), block);
                mem_cycles = mem_cycles.max(report.mem_cycles);
                for m in &report.matches {
                    matches.push(GlobalMatch {
                        packet: m.packet,
                        end: m.end,
                        pattern: id_map[m.pattern.index()],
                    });
                }
                block_reports.push(report);
            }
        }
        matches.sort_unstable();
        AcceleratorReport {
            matches,
            mem_cycles,
            bytes_scanned: bytes,
            block_reports,
        }
    }

    /// Total engines on the device.
    pub fn engines(&self) -> usize {
        self.config.blocks * ENGINES_PER_BLOCK
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpi_automaton::{MultiMatcher, NaiveMatcher};

    fn tiny_config(blocks: usize, words: usize) -> AcceleratorConfig {
        AcceleratorConfig {
            blocks,
            words_per_block: words,
            fmax_hz: 100e6,
        }
    }

    #[test]
    fn small_set_deploys_independent() {
        let set = PatternSet::new(["he", "she", "his", "hers"]).unwrap();
        let acc = Accelerator::build(&set, tiny_config(4, 4096)).unwrap();
        assert_eq!(acc.group_size(), 1);
        assert_eq!(acc.group_count(), 4);
        assert_eq!(acc.engines(), 24);
    }

    #[test]
    fn grouped_when_memory_tight() {
        // 600 patterns cannot fit a 160-word block; the builder must split.
        let strings: Vec<String> = (0..600).map(|i| format!("pattern{i:05}xyz")).collect();
        let set = PatternSet::new(&strings).unwrap();
        let acc = Accelerator::build(&set, tiny_config(4, 160)).unwrap();
        assert!(acc.group_size() > 1, "expected a grouped deployment");
    }

    #[test]
    fn deploy_error_when_hopeless() {
        let strings: Vec<String> = (0..500).map(|i| format!("p{i:05}")).collect();
        let set = PatternSet::new(&strings).unwrap();
        let err = Accelerator::build(&set, tiny_config(2, 32)).unwrap_err();
        assert!(err.to_string().contains("does not fit"));
    }

    #[test]
    fn matches_complete_and_globally_numbered() {
        let set = PatternSet::new(["alpha", "beta", "gamma", "delta", "epsilon"]).unwrap();
        let acc = Accelerator::build(&set, tiny_config(2, 4096)).unwrap();
        let packets: Vec<Vec<u8>> = vec![
            b"xxalphaxx".to_vec(),
            b"betagamma".to_vec(),
            b"nothing here".to_vec(),
            b"deltaepsilondelta".to_vec(),
        ];
        let report = acc.scan(&packets);
        let naive = NaiveMatcher::new(&set);
        let mut want: Vec<GlobalMatch> = Vec::new();
        for (i, p) in packets.iter().enumerate() {
            for m in naive.find_all(p) {
                want.push(GlobalMatch {
                    packet: i,
                    end: m.end,
                    pattern: m.pattern,
                });
            }
        }
        want.sort_unstable();
        assert_eq!(report.matches, want);
    }

    #[test]
    fn grouped_deployment_finds_everything() {
        // Force grouping with a small word budget, then verify global ids.
        let strings: Vec<String> = (0..300).map(|i| format!("needle{i:04}")).collect();
        let set = PatternSet::new(&strings).unwrap();
        let acc = Accelerator::build(&set, tiny_config(4, 32)).unwrap();
        assert!(acc.group_size() >= 2);
        // Embed three needles in packets.
        let packets: Vec<Vec<u8>> = vec![
            b"xx needle0007 yy".to_vec(),
            b"-- needle0123 --".to_vec(),
            b"needle0299".to_vec(),
        ];
        let report = acc.scan(&packets);
        let found: std::collections::HashSet<u32> =
            report.matches.iter().map(|m| m.pattern.0).collect();
        assert!(found.contains(&7));
        assert!(found.contains(&123));
        assert!(found.contains(&299));
    }

    #[test]
    fn scan_with_reused_scratch_equals_scan() {
        let set = PatternSet::new(["alpha", "beta", "gamma", "delta"]).unwrap();
        let acc = Accelerator::build(&set, tiny_config(2, 4096)).unwrap();
        let packets: Vec<Vec<u8>> = vec![
            b"xxalphaxx".to_vec(),
            b"betagamma".to_vec(),
            b"deltaepsilondelta".to_vec(),
        ];
        let want = acc.scan(&packets);
        let mut scratch = ScanScratch::new();
        assert_eq!(acc.scan_with(&packets, &mut scratch), want);
        // Repeat through the same scratch: queues were reset correctly.
        assert_eq!(acc.scan_with(&packets, &mut scratch), want);
    }

    #[test]
    fn peak_throughput_formula() {
        let set = PatternSet::new(["he", "she"]).unwrap();
        let acc = Accelerator::build(&set, AcceleratorConfig::STRATIX3).unwrap();
        // 6 groups × 16 × 460.19 MHz = 44.18 Gbps (paper: 44.2).
        let gbps = acc.peak_throughput_bps() / 1e9;
        assert!((44.0..44.4).contains(&gbps), "{gbps}");
        let acc = Accelerator::build(&set, AcceleratorConfig::CYCLONE3).unwrap();
        let gbps = acc.peak_throughput_bps() / 1e9;
        assert!((14.8..15.0).contains(&gbps), "{gbps}");
    }

    #[test]
    fn measured_throughput_approaches_peak_when_saturated() {
        let set = PatternSet::new(["he", "she"]).unwrap();
        let config = tiny_config(2, 4096);
        let acc = Accelerator::build(&set, config).unwrap();
        // 12 packets keep both groups' 6 engines busy.
        let packets: Vec<Vec<u8>> = (0..12).map(|_| vec![b'x'; 2000]).collect();
        let report = acc.scan(&packets);
        let measured = report.throughput_bps(config.fmax_hz);
        let peak = acc.peak_throughput_bps();
        assert!(
            measured > 0.9 * peak,
            "measured {measured:.3e} vs peak {peak:.3e}"
        );
    }
}
