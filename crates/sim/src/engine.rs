//! One string matching engine (Figure 5), modeled at engine-clock
//! granularity.
//!
//! The hardware engine is a short pipeline: registers for the input
//! character, the previous two characters, the state information returned
//! from search-structure memory and the default-transition information from
//! the lookup table, feeding 15 per-type comparator blocks plus the default
//! comparator. Its defining property is **one input character per engine
//! clock cycle, unconditionally** — there is no code path that consumes a
//! cycle without consuming a byte.
//!
//! The model performs the functional work (decode, compare, resolve) at
//! issue time but charges the architectural costs exactly: one
//! state-memory read per byte on the engine's port, one lookup-table read
//! per byte, and a one-engine-cycle latency between issuing a state read
//! and acting on the returned record (engines act on `record` — the
//! previous cycle's fetch — before replacing it).

use dpi_automaton::PatternSet;
use dpi_hw::{HwImage, StateRecord, StateRef};

/// A packet assigned to an engine.
#[derive(Debug, Clone)]
pub struct SimPacket {
    /// Caller-chosen packet identifier (reported back with matches).
    pub id: usize,
    /// Payload bytes.
    pub bytes: Vec<u8>,
}

/// A match event found by an engine: the state's match-memory address is
/// handed to the match scheduler together with provenance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatchEvent {
    /// Engine that found the match (0..=5 within its block).
    pub engine: usize,
    /// Packet in which it was found.
    pub packet: usize,
    /// Offset one past the final byte of the occurrence.
    pub end: usize,
    /// First word of the string numbers in match memory.
    pub match_addr: u16,
}

/// Per-engine performance counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Bytes consumed.
    pub bytes: usize,
    /// Engine cycles during which a byte was consumed.
    pub busy_cycles: usize,
    /// Engine cycles spent with no packet available.
    pub idle_cycles: usize,
    /// Packets completed.
    pub packets: usize,
}

/// What an engine did in one engine cycle (used by the block to account
/// memory-port traffic).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineActivity {
    /// Issued a state-memory read on its port.
    pub state_read: bool,
    /// Issued a lookup-table read on its port.
    pub lut_read: bool,
    /// Emitted a match event to the scheduler.
    pub matched: bool,
}

/// The engine model.
#[derive(Debug, Clone)]
pub struct Engine {
    index: usize,
    /// Record of the state entered on the previous cycle (architecturally:
    /// the data returned from the read issued last cycle).
    record: StateRecord,
    prev: Option<u8>,
    prev2: Option<u8>,
    packet: Option<SimPacket>,
    pos: usize,
    stats: EngineStats,
}

impl Engine {
    /// Creates engine `index` parked at the start state. The start
    /// record is copied in (reusing nothing yet — the engine's pointer
    /// vector grows once and is recycled ever after).
    pub fn new(index: usize, start_record: &StateRecord) -> Engine {
        Engine {
            index,
            record: start_record.clone(),
            prev: None,
            prev2: None,
            packet: None,
            pos: 0,
            stats: EngineStats::default(),
        }
    }

    /// Returns the engine to its post-construction state — parked at the
    /// start record, counters zeroed — **in place**: the record's pointer
    /// vector keeps its capacity, so a block rerunning scans resets its
    /// engine array without touching the allocator.
    pub fn reset(&mut self, start_record: &StateRecord) {
        self.record.copy_from(start_record);
        self.prev = None;
        self.prev2 = None;
        self.packet = None;
        self.pos = 0;
        self.stats = EngineStats::default();
    }

    /// `true` when no packet is loaded.
    pub fn is_idle(&self) -> bool {
        self.packet.is_none()
    }

    /// Counters so far.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Loads the next packet and asserts the start signal: the state
    /// returns to the start state and both history registers are masked
    /// (their stale contents must not fire depth-2/3 defaults — see
    /// `dpi_core::DtpMatcher`).
    ///
    /// The start record is copied **into** the engine's resident record
    /// (reusing its pointer capacity) — this call was the simulator's
    /// last per-packet allocation.
    ///
    /// A zero-length payload completes immediately (no bytes, no cycles);
    /// the engine stays idle and ready for the next packet.
    pub fn load_packet(&mut self, packet: SimPacket, start_record: &StateRecord) {
        debug_assert!(self.packet.is_none(), "engine already busy");
        if packet.bytes.is_empty() {
            self.stats.packets += 1;
            return;
        }
        self.packet = Some(packet);
        self.pos = 0;
        self.record.copy_from(start_record);
        self.prev = None;
        self.prev2 = None;
    }

    /// Advances one engine clock cycle: consume exactly one byte (or idle
    /// if no packet is loaded). Returns the activity and, if a match state
    /// was entered, the event for the scheduler.
    pub fn step(
        &mut self,
        image: &HwImage,
        set: &PatternSet,
    ) -> (EngineActivity, Option<MatchEvent>) {
        let Some(packet) = &self.packet else {
            self.stats.idle_cycles += 1;
            return (EngineActivity::default(), None);
        };
        let raw = packet.bytes[self.pos];
        let byte = set.fold(raw);
        let packet_id = packet.id;

        // Comparator blocks: stored pointers first, then the default
        // comparator over the lookup-table row.
        let next: StateRef = match self.record.lookup(byte) {
            Some(target) => target,
            None => image
                .lut()
                .resolve(byte, self.prev, self.prev2)
                .unwrap_or(image.start()),
        };
        // Issue the state-memory read for `next`; the decoded record is
        // registered for the next cycle. Decoding in place reuses the
        // record's pointer capacity — one engine decodes one record per
        // byte, and this was the simulator's last per-scan allocation.
        image.decode_state_into(next, &mut self.record);
        let mut activity = EngineActivity {
            state_read: true,
            lut_read: true,
            matched: false,
        };
        let mut event = None;
        if let Some(addr) = self.record.match_field.match_addr {
            activity.matched = true;
            event = Some(MatchEvent {
                engine: self.index,
                packet: packet_id,
                end: self.pos + 1,
                match_addr: addr,
            });
        }

        self.prev2 = self.prev;
        self.prev = Some(byte);
        self.pos += 1;
        self.stats.bytes += 1;
        self.stats.busy_cycles += 1;
        if self.pos == self.packet.as_ref().expect("packet loaded").bytes.len() {
            self.packet = None;
            self.stats.packets += 1;
        }
        (activity, event)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpi_automaton::Dfa;
    use dpi_core::{DtpConfig, ReducedAutomaton};

    fn setup() -> (PatternSet, HwImage) {
        let set = PatternSet::new(["he", "she", "his", "hers"]).unwrap();
        let red = ReducedAutomaton::reduce(&Dfa::build(&set), DtpConfig::PAPER);
        let image = HwImage::build(&red).unwrap();
        (set, image)
    }

    fn run_packet(set: &PatternSet, image: &HwImage, bytes: &[u8]) -> (Vec<MatchEvent>, EngineStats) {
        let start_record = image.decode_state(image.start());
        let mut engine = Engine::new(0, &start_record);
        engine.load_packet(
            SimPacket {
                id: 7,
                bytes: bytes.to_vec(),
            },
            &start_record,
        );
        let mut events = Vec::new();
        while !engine.is_idle() {
            let (activity, ev) = engine.step(image, set);
            assert!(activity.state_read, "busy engine reads every cycle");
            assert!(activity.lut_read);
            events.extend(ev);
        }
        (events, engine.stats())
    }

    #[test]
    fn one_byte_per_cycle_exactly() {
        let (set, image) = setup();
        let (_, stats) = run_packet(&set, &image, b"ushers and his herd");
        assert_eq!(stats.bytes, 19);
        assert_eq!(stats.busy_cycles, 19);
        assert_eq!(stats.idle_cycles, 0);
        assert_eq!(stats.packets, 1);
    }

    #[test]
    fn match_events_at_correct_offsets() {
        let (set, image) = setup();
        let (events, _) = run_packet(&set, &image, b"ushers");
        // she+he at end=4 (one state entry → one event), hers at end=6.
        let ends: Vec<usize> = events.iter().map(|e| e.end).collect();
        assert_eq!(ends, vec![4, 6]);
        assert_eq!(events[0].packet, 7);
        assert_eq!(events[0].engine, 0);
    }

    #[test]
    fn idle_engine_counts_idle_cycles() {
        let (set, image) = setup();
        let start_record = image.decode_state(image.start());
        let mut engine = Engine::new(3, &start_record);
        for _ in 0..5 {
            let (activity, ev) = engine.step(&image, &set);
            assert_eq!(activity, EngineActivity::default());
            assert!(ev.is_none());
        }
        assert_eq!(engine.stats().idle_cycles, 5);
        assert_eq!(engine.stats().bytes, 0);
    }

    #[test]
    fn history_masked_between_packets() {
        let (set, image) = setup();
        let start_record = image.decode_state(image.start());
        let mut engine = Engine::new(0, &start_record);
        // First packet primes history with "sh".
        engine.load_packet(
            SimPacket {
                id: 0,
                bytes: b"sh".to_vec(),
            },
            &start_record,
        );
        while !engine.is_idle() {
            engine.step(&image, &set);
        }
        // Second packet "e" must NOT produce matches (stale "sh" history
        // would fire the depth-3 default for 'e' without the start signal).
        engine.load_packet(
            SimPacket {
                id: 1,
                bytes: b"e".to_vec(),
            },
            &start_record,
        );
        let mut events = Vec::new();
        while !engine.is_idle() {
            let (_, ev) = engine.step(&image, &set);
            events.extend(ev);
        }
        assert!(events.is_empty(), "stale history leaked across packets");
    }
}
