//! In-crate property tests for the cycle-accurate simulator: determinism,
//! conservation laws and equivalence with the software matcher under
//! arbitrary packet mixes.

#![cfg(test)]

use crate::block::Block;
use crate::engine::SimPacket;
use dpi_automaton::{MultiMatcher, NaiveMatcher, PatternSet};
use proptest::prelude::*;

fn small_set() -> PatternSet {
    PatternSet::new(["ab", "bc", "abc", "ccc", "a"]).expect("valid")
}

fn packets_strategy() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(
        proptest::collection::vec(prop_oneof![Just(b'a'), Just(b'b'), Just(b'c'), Just(b'x')], 0..80),
        0..12,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The block finds exactly the naive matches in every packet, whatever
    /// the packet mix, and bytes/reads/cycles obey conservation.
    #[test]
    fn block_matches_and_conservation(payloads in packets_strategy()) {
        let set = small_set();
        let block = Block::build(&set, 4096).expect("fits");
        let packets: Vec<SimPacket> = payloads
            .iter()
            .enumerate()
            .map(|(id, p)| SimPacket { id, bytes: p.clone() })
            .collect();
        let report = block.run(packets);
        let naive = NaiveMatcher::new(&set);
        for (id, payload) in payloads.iter().enumerate() {
            let mut got: Vec<(usize, u32)> = report
                .matches
                .iter()
                .filter(|m| m.packet == id)
                .map(|m| (m.end, m.pattern.0))
                .collect();
            got.sort_unstable();
            let mut want: Vec<(usize, u32)> = naive
                .find_all(payload)
                .into_iter()
                .map(|m| (m.end, m.pattern.0))
                .collect();
            want.sort_unstable();
            prop_assert_eq!(got, want, "packet {}", id);
        }
        // Conservation: bytes scanned == sum of payload lengths == reads.
        let total: usize = payloads.iter().map(Vec::len).sum();
        prop_assert_eq!(report.bytes_scanned, total);
        prop_assert_eq!(
            report.port_state_reads[0] + report.port_state_reads[1],
            total
        );
        prop_assert_eq!(
            report.engine_bytes.iter().sum::<usize>(),
            total
        );
        // Throughput bound: never above 16 bits per memory cycle.
        if report.mem_cycles > 0 {
            prop_assert!(report.bits_per_mem_cycle() <= 16.0 + 1e-9);
        }
    }

    /// Simulation is deterministic: identical inputs, identical reports.
    #[test]
    fn simulation_deterministic(payloads in packets_strategy()) {
        let set = small_set();
        let block = Block::build(&set, 4096).expect("fits");
        let mk = || -> Vec<SimPacket> {
            payloads
                .iter()
                .enumerate()
                .map(|(id, p)| SimPacket { id, bytes: p.clone() })
                .collect()
        };
        let a = block.run(mk());
        let b = block.run(mk());
        prop_assert_eq!(a, b);
    }

    /// Packet order does not change the set of matches (only provenance
    /// timing), because engines are independent.
    #[test]
    fn match_set_order_independent(payloads in packets_strategy()) {
        let set = small_set();
        let block = Block::build(&set, 4096).expect("fits");
        let forward: Vec<SimPacket> = payloads
            .iter()
            .enumerate()
            .map(|(id, p)| SimPacket { id, bytes: p.clone() })
            .collect();
        let mut reversed = forward.clone();
        reversed.reverse();
        let mut a: Vec<_> = block.run(forward).matches;
        let mut b: Vec<_> = block.run(reversed).matches;
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }
}
