//! The match scheduler (§IV.B, Figure 4).
//!
//! When an engine enters a state whose match bit is set, it hands the
//! match-memory address (plus provenance) to the scheduler, which buffers
//! events for the three engines of its port. The scheduler walks match
//! memory one word per memory cycle — each word yields up to two 13-bit
//! string numbers — until the word's done bit is set, then starts on the
//! next buffered event. Match readout therefore never steals bandwidth
//! from the scan path (the match memory is a separate block).

use crate::engine::MatchEvent;
use dpi_automaton::{Match, PatternId};
use dpi_hw::MatchMemory;

/// A fully resolved match: which packet, which pattern, where.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct PacketMatch {
    /// Packet identifier (as provided in `SimPacket::id`).
    pub packet: usize,
    /// Offset one past the occurrence's final byte.
    pub end: usize,
    /// The matched pattern (block-local string number).
    pub pattern: PatternId,
}

impl PacketMatch {
    /// Converts to the plain [`Match`] form (dropping packet provenance).
    pub fn to_match(self) -> Match {
        Match {
            end: self.end,
            pattern: self.pattern,
        }
    }
}

/// Scheduler counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedulerStats {
    /// Match events buffered in total.
    pub events: usize,
    /// Match-memory words read while draining.
    pub words_read: usize,
    /// Largest buffer occupancy observed (the paper's hardware sizes this
    /// buffer for 3 engines; the model lets tests confirm small depths
    /// suffice on realistic traffic).
    pub max_depth: usize,
}

/// One port's match scheduler.
#[derive(Debug, Clone)]
pub struct MatchScheduler {
    buffer: std::collections::VecDeque<MatchEvent>,
    /// Progress within the event currently being drained.
    current: Option<(MatchEvent, u16)>,
    stats: SchedulerStats,
}

impl MatchScheduler {
    /// Creates an empty scheduler.
    pub fn new() -> MatchScheduler {
        MatchScheduler {
            buffer: std::collections::VecDeque::new(),
            current: None,
            stats: SchedulerStats::default(),
        }
    }

    /// Buffers one match event from an engine.
    pub fn push(&mut self, event: MatchEvent) {
        self.buffer.push_back(event);
        self.stats.events += 1;
        self.stats.max_depth = self
            .stats
            .max_depth
            .max(self.buffer.len() + usize::from(self.current.is_some()));
    }

    /// `true` when no events are buffered or in flight.
    pub fn is_empty(&self) -> bool {
        self.buffer.is_empty() && self.current.is_none()
    }

    /// Clears buffered events, in-flight drain progress and counters while
    /// keeping the event buffer's capacity — so a scheduler reused across
    /// scans (see `Block::run_with`) allocates nothing in steady state.
    pub fn reset(&mut self) {
        self.buffer.clear();
        self.current = None;
        self.stats = SchedulerStats::default();
    }

    /// Counters so far.
    pub fn stats(&self) -> SchedulerStats {
        self.stats
    }

    /// Advances one memory cycle: reads at most one match-memory word and
    /// emits its string numbers into `out`.
    pub fn drain_one(&mut self, mem: &MatchMemory, out: &mut Vec<PacketMatch>) {
        if self.current.is_none() {
            let Some(event) = self.buffer.pop_front() else {
                return;
            };
            self.current = Some((event, event.match_addr));
        }
        let (event, addr) = self.current.expect("set above");
        let word = mem.word(addr);
        self.stats.words_read += 1;
        let first = word & 0x1FFF;
        let second = (word >> 13) & 0x1FFF;
        out.push(PacketMatch {
            packet: event.packet,
            end: event.end,
            pattern: PatternId(first),
        });
        if second != 0x1FFF {
            out.push(PacketMatch {
                packet: event.packet,
                end: event.end,
                pattern: PatternId(second),
            });
        }
        if word >> 26 & 1 == 1 {
            self.current = None;
        } else {
            self.current = Some((event, addr + 1));
        }
    }
}

impl Default for MatchScheduler {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpi_automaton::PatternId;

    fn memory_with(lists: &[Vec<PatternId>]) -> (MatchMemory, Vec<Option<u16>>) {
        MatchMemory::build(lists).unwrap()
    }

    fn ev(addr: u16, end: usize) -> MatchEvent {
        MatchEvent {
            engine: 0,
            packet: 1,
            end,
            match_addr: addr,
        }
    }

    #[test]
    fn drains_one_word_per_cycle() {
        let (mem, addrs) = memory_with(&[vec![PatternId(3), PatternId(4), PatternId(5)]]);
        let mut s = MatchScheduler::new();
        s.push(ev(addrs[0].unwrap(), 10));
        let mut out = Vec::new();
        s.drain_one(&mem, &mut out);
        assert_eq!(out.len(), 2); // first word: two numbers
        assert!(!s.is_empty());
        s.drain_one(&mem, &mut out);
        assert_eq!(out.len(), 3); // second word: one number + done
        assert!(s.is_empty());
        assert_eq!(s.stats().words_read, 2);
        let ids: Vec<u32> = out.iter().map(|m| m.pattern.0).collect();
        assert_eq!(ids, vec![3, 4, 5]);
        assert!(out.iter().all(|m| m.end == 10 && m.packet == 1));
    }

    #[test]
    fn multiple_events_processed_in_order() {
        let (mem, addrs) = memory_with(&[vec![PatternId(1)], vec![PatternId(2)]]);
        let mut s = MatchScheduler::new();
        s.push(ev(addrs[0].unwrap(), 5));
        s.push(ev(addrs[1].unwrap(), 6));
        let mut out = Vec::new();
        s.drain_one(&mem, &mut out);
        s.drain_one(&mem, &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].end, 5);
        assert_eq!(out[1].end, 6);
        assert_eq!(s.stats().max_depth, 2);
    }

    #[test]
    fn idle_drain_is_noop() {
        let (mem, _) = memory_with(&[vec![PatternId(1)]]);
        let mut s = MatchScheduler::new();
        let mut out = Vec::new();
        s.drain_one(&mem, &mut out);
        assert!(out.is_empty());
        assert_eq!(s.stats().words_read, 0);
    }
}
