//! # dpi-sim
//!
//! Cycle-accurate model of the DATE 2010 string matching hardware: the
//! engine pipeline of Figure 5, the six-engine dual-port block of Figure 4
//! and the multi-block accelerator, simulated at memory-clock granularity.
//!
//! The model enforces the architecture's defining contracts and exposes the
//! counters proving them:
//!
//! - every busy engine consumes **exactly one byte per engine cycle**
//!   (no fail transitions, no stalls);
//! - engines sharing a port are clocked 120° apart, so each port carries at
//!   most one state-memory read per memory cycle (the simple multiplexed
//!   interface the paper describes);
//! - block throughput is 16 bits per memory cycle — 6 engines × 8 bits ÷ 3
//!   — hence 16 × f_max bit/s, the formula behind every Table II speed;
//! - match readout runs on the separate match-number memory and never
//!   stalls the scan path.
//!
//! ## Quick example
//!
//! ```
//! use dpi_automaton::PatternSet;
//! use dpi_sim::{Accelerator, AcceleratorConfig};
//!
//! let set = PatternSet::new(["he", "she", "his", "hers"])?;
//! let acc = Accelerator::build(&set, AcceleratorConfig::STRATIX3)?;
//! let report = acc.scan(&[b"ushers".to_vec()]);
//! assert_eq!(report.matches.len(), 3);
//! // 6 independent groups → the paper's 44.2 Gbps peak.
//! assert!((acc.peak_throughput_bps() / 1e9 - 44.2).abs() < 0.2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod accelerator;
mod block;
mod engine;
mod proptests;
mod scheduler;

pub use accelerator::{
    Accelerator, AcceleratorConfig, AcceleratorReport, DeployError, GlobalMatch, ScanScratch,
};
pub use block::{Block, BlockReport, BlockScratch, ENGINES_PER_BLOCK, PHASES, PORTS};
pub use engine::{Engine, EngineActivity, EngineStats, MatchEvent, SimPacket};
pub use scheduler::{MatchScheduler, PacketMatch, SchedulerStats};
