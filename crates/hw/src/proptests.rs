//! In-crate property tests for the hardware layer: packer invariants over
//! arbitrary state populations and match-memory layouts over arbitrary
//! output lists.

#![cfg(test)]

use crate::match_mem::MatchMemory;
use crate::packer::pack;
use crate::state_type::StateClass;
use dpi_automaton::PatternId;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Packing arbitrary (valid) pointer counts never overlaps slots,
    /// never misaligns classes, and never wastes more than the final
    /// partial word per class mix.
    #[test]
    fn packer_invariants(counts in proptest::collection::vec(0usize..14, 1..300)) {
        let layout = pack(&counts, 4096).expect("small populations fit");
        // Root pinned.
        prop_assert_eq!(layout.placement(0).addr, 0);
        prop_assert_eq!(layout.placement(0).ty.start_slot(), 0);
        // Class and capacity agree with the requested pointer count.
        let mut used: std::collections::HashMap<u16, u16> = Default::default();
        let mut slots_used = 0usize;
        for (i, &count) in counts.iter().enumerate() {
            let p = layout.placement(i);
            prop_assert!(p.ty.capacity() >= count);
            prop_assert_eq!(p.ty.class(), StateClass::for_pointers(count).expect("<14"));
            let slots = p.ty.class().slots();
            slots_used += slots;
            let mask = ((1u16 << slots) - 1) << p.ty.start_slot();
            let w = used.entry(p.addr).or_insert(0);
            prop_assert_eq!(*w & mask, 0, "slot overlap in word {}", p.addr);
            *w |= mask;
        }
        // Addresses dense: every word below words_used is touched.
        prop_assert!(used.keys().all(|&a| (a as usize) < layout.words_used()));
        // Fill accounting consistent.
        let ratio = slots_used as f64 / (layout.words_used() * 9) as f64;
        prop_assert!((layout.fill_ratio() - ratio).abs() < 1e-12);
    }

    /// Match memory: every list reads back exactly, shared or private,
    /// and sharing never uses more words.
    #[test]
    fn match_memory_roundtrip(
        lists in proptest::collection::vec(
            proptest::collection::vec(0u32..8000, 0..7),
            1..60,
        ),
    ) {
        let lists: Vec<Vec<PatternId>> = lists
            .into_iter()
            .map(|l| {
                let mut l: Vec<PatternId> = l.into_iter().map(PatternId).collect();
                l.sort_unstable();
                l.dedup();
                l
            })
            .collect();
        let (private, addrs_p) = MatchMemory::build(&lists).expect("fits");
        let (shared, addrs_s) = MatchMemory::build_shared(&lists).expect("fits");
        prop_assert!(shared.words_used() <= private.words_used());
        for (i, list) in lists.iter().enumerate() {
            match (addrs_p[i], addrs_s[i]) {
                (None, None) => prop_assert!(list.is_empty()),
                (Some(a), Some(b)) => {
                    prop_assert_eq!(&private.read_sequence(a), list);
                    prop_assert_eq!(&shared.read_sequence(b), list);
                }
                other => prop_assert!(false, "address mismatch {other:?}"),
            }
        }
    }

    /// 16-bit encode/decode of state references is injective over the
    /// valid domain.
    #[test]
    fn state_ref_bits_injective(addr in 0u16..4096, ty in 1u8..16) {
        use crate::encode::StateRef;
        use crate::state_type::StateType;
        let r = StateRef { addr, ty: StateType::new(ty).expect("1..=15") };
        let bits = r.to_bits();
        prop_assert_eq!(StateRef::from_bits(bits), Some(r));
        // Type nibble 0 is never produced.
        prop_assert_ne!(bits >> 12, 0);
    }

    /// Transition pointers survive the 24-bit round trip for the whole
    /// valid domain.
    #[test]
    fn pointer_bits_roundtrip(byte in any::<u8>(), addr in 0u16..4096, ty in 1u8..16) {
        use crate::encode::{StateRef, TransitionPointer};
        use crate::state_type::StateType;
        let p = TransitionPointer {
            byte,
            target: StateRef { addr, ty: StateType::new(ty).expect("valid") },
        };
        prop_assert_eq!(TransitionPointer::from_bits(p.to_bits()), Some(p));
        prop_assert!(p.to_bits() < (1 << 24));
    }
}
