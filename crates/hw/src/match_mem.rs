//! The match-number memory (§IV.B).
//!
//! "Each block has 2,048 27-bit memory words to store the matching string
//! numbers. Each of these memory words holds two 13-bit string numbers and
//! 1 bit to indicate if all matching numbers have been outputted."
//!
//! A state with matches stores the address of its first word in its 12-bit
//! match field; the match scheduler then streams words (two string numbers
//! per memory cycle) until it sees a set done bit. Keeping this memory
//! separate from the state machine preserves scan throughput while matches
//! drain (§IV.A).

use dpi_automaton::PatternId;

/// Number of words in a block's match-number memory.
pub const MATCH_MEM_WORDS: usize = 2048;
/// Bits per match-number word.
pub const MATCH_WORD_BITS: usize = 27;
/// Width of a string number.
pub const STRING_NUMBER_BITS: usize = 13;
/// Largest usable string number. `0x1FFF` is reserved to mark an empty
/// second slot in a word holding an odd number of matches.
pub const MAX_STRING_NUMBER: u32 = (1 << STRING_NUMBER_BITS) - 2;
const EMPTY_SLOT: u32 = (1 << STRING_NUMBER_BITS) - 1;

/// Error raised while building the match memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatchMemError {
    /// More than [`MATCH_MEM_WORDS`] words would be needed.
    Full {
        /// Words required by the automaton's output sets.
        needed: usize,
    },
    /// A pattern id exceeds [`MAX_STRING_NUMBER`].
    StringNumberTooLarge {
        /// The offending pattern id.
        id: u32,
    },
}

impl std::fmt::Display for MatchMemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MatchMemError::Full { needed } => write!(
                f,
                "match memory overflow: {needed} words needed, {MATCH_MEM_WORDS} available"
            ),
            MatchMemError::StringNumberTooLarge { id } => write!(
                f,
                "string number {id} exceeds the 13-bit maximum {MAX_STRING_NUMBER}"
            ),
        }
    }
}

impl std::error::Error for MatchMemError {}

/// The populated match-number memory plus per-state first-word addresses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatchMemory {
    /// 27-bit words, little-endian packed into `u32`s:
    /// bits 0..13 = first string number, 13..26 = second, 26 = done.
    words: Vec<u32>,
}

impl MatchMemory {
    /// Lays out one output list per state. Returns the memory and, for each
    /// input list, the address of its first word (`None` for empty lists).
    ///
    /// # Errors
    ///
    /// [`MatchMemError::Full`] when the lists need more than 2,048 words;
    /// [`MatchMemError::StringNumberTooLarge`] when a pattern id does not
    /// fit in 13 bits.
    pub fn build<L>(output_lists: L) -> Result<(MatchMemory, Vec<Option<u16>>), MatchMemError>
    where
        L: IntoIterator,
        L::Item: AsRef<[PatternId]>,
    {
        Self::build_inner(output_lists, false)
    }

    /// Like [`MatchMemory::build`], but states with byte-identical output
    /// lists share one stored copy.
    ///
    /// Suffix closure makes identical lists common (every state whose
    /// proper suffix chain ends in the same accepting states repeats that
    /// list), so sharing typically shrinks the memory severalfold. This is
    /// an extension beyond the paper — whose fixed 2,048-word match memory
    /// turns out to be the binding constraint on its largest ruleset (see
    /// the `m144k` and `match-sharing` experiments) — and costs nothing in
    /// hardware: the match field already holds an arbitrary word address.
    ///
    /// # Errors
    ///
    /// Same as [`MatchMemory::build`].
    pub fn build_shared<L>(
        output_lists: L,
    ) -> Result<(MatchMemory, Vec<Option<u16>>), MatchMemError>
    where
        L: IntoIterator,
        L::Item: AsRef<[PatternId]>,
    {
        Self::build_inner(output_lists, true)
    }

    fn build_inner<L>(
        output_lists: L,
        share: bool,
    ) -> Result<(MatchMemory, Vec<Option<u16>>), MatchMemError>
    where
        L: IntoIterator,
        L::Item: AsRef<[PatternId]>,
    {
        let mut words: Vec<u32> = Vec::new();
        // Word indices kept as usize until the final capacity check, so an
        // over-full memory cannot silently wrap the 16-bit addresses.
        let mut addrs: Vec<Option<usize>> = Vec::new();
        let mut interned: std::collections::HashMap<Vec<PatternId>, usize> = Default::default();
        for list in output_lists {
            let ids = list.as_ref();
            if ids.is_empty() {
                addrs.push(None);
                continue;
            }
            if share {
                if let Some(&addr) = interned.get(ids) {
                    addrs.push(Some(addr));
                    continue;
                }
            }
            let first = words.len();
            for chunk in ids.chunks(2) {
                let a = chunk[0].0;
                if a > MAX_STRING_NUMBER {
                    return Err(MatchMemError::StringNumberTooLarge { id: a });
                }
                let b = match chunk.get(1) {
                    Some(p) => {
                        if p.0 > MAX_STRING_NUMBER {
                            return Err(MatchMemError::StringNumberTooLarge { id: p.0 });
                        }
                        p.0
                    }
                    None => EMPTY_SLOT,
                };
                words.push(a | (b << STRING_NUMBER_BITS));
            }
            let last = words.len() - 1;
            words[last] |= 1 << (2 * STRING_NUMBER_BITS); // done bit
            if share {
                interned.insert(ids.to_vec(), first);
            }
            addrs.push(Some(first));
        }
        if words.len() > MATCH_MEM_WORDS {
            return Err(MatchMemError::Full {
                needed: words.len(),
            });
        }
        let addrs = addrs
            .into_iter()
            .map(|a| a.map(|x| x as u16))
            .collect();
        Ok((MatchMemory { words }, addrs))
    }

    /// Number of words in use.
    pub fn words_used(&self) -> usize {
        self.words.len()
    }

    /// Raw 27-bit word at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of the used range.
    pub fn word(&self, addr: u16) -> u32 {
        self.words[addr as usize]
    }

    /// Streams the string numbers starting at `addr`, stopping at the done
    /// bit — exactly what the match scheduler does, two numbers per cycle.
    ///
    /// # Panics
    ///
    /// Panics if the walk runs past the used region (corrupt image).
    pub fn read_sequence(&self, addr: u16) -> Vec<PatternId> {
        let mut out = Vec::new();
        let mut at = addr as usize;
        loop {
            let w = self.words[at];
            let a = w & EMPTY_SLOT;
            let b = (w >> STRING_NUMBER_BITS) & EMPTY_SLOT;
            out.push(PatternId(a));
            if b != EMPTY_SLOT {
                out.push(PatternId(b));
            }
            if w >> (2 * STRING_NUMBER_BITS) & 1 == 1 {
                return out;
            }
            at += 1;
        }
    }

    /// Total bits of the fixed-size memory (the paper allocates all 2,048
    /// words per block regardless of use).
    pub fn allocated_bits() -> usize {
        MATCH_MEM_WORDS * MATCH_WORD_BITS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Vec<PatternId> {
        v.iter().map(|&i| PatternId(i)).collect()
    }

    #[test]
    fn even_and_odd_lists_roundtrip() {
        let lists = vec![ids(&[1, 2, 3]), ids(&[7]), vec![], ids(&[10, 11])];
        let (mem, addrs) = MatchMemory::build(&lists).unwrap();
        assert_eq!(addrs.len(), 4);
        assert_eq!(mem.read_sequence(addrs[0].unwrap()), ids(&[1, 2, 3]));
        assert_eq!(mem.read_sequence(addrs[1].unwrap()), ids(&[7]));
        assert_eq!(addrs[2], None);
        assert_eq!(mem.read_sequence(addrs[3].unwrap()), ids(&[10, 11]));
        // 2 + 1 + 0 + 1 words.
        assert_eq!(mem.words_used(), 4);
    }

    #[test]
    fn done_bit_terminates_exactly() {
        let lists = vec![ids(&[5, 6]), ids(&[8, 9])];
        let (mem, addrs) = MatchMemory::build(&lists).unwrap();
        // Reading the first sequence must NOT run into the second.
        assert_eq!(mem.read_sequence(addrs[0].unwrap()), ids(&[5, 6]));
    }

    #[test]
    fn string_number_range_enforced() {
        let lists = vec![ids(&[8190])];
        assert!(MatchMemory::build(&lists).is_ok());
        let lists = vec![ids(&[8191])];
        assert_eq!(
            MatchMemory::build(&lists),
            Err(MatchMemError::StringNumberTooLarge { id: 8191 })
        );
    }

    #[test]
    fn capacity_enforced() {
        // 2049 single-pattern lists → 2049 words.
        let lists: Vec<Vec<PatternId>> = (0..2049).map(|i| ids(&[i % 8000])).collect();
        assert_eq!(
            MatchMemory::build(&lists),
            Err(MatchMemError::Full { needed: 2049 })
        );
    }

    #[test]
    fn exactly_full_is_ok() {
        let lists: Vec<Vec<PatternId>> = (0..2048).map(|i| ids(&[i % 8000])).collect();
        let (mem, addrs) = MatchMemory::build(&lists).unwrap();
        assert_eq!(mem.words_used(), 2048);
        assert_eq!(mem.read_sequence(addrs[2047].unwrap()), ids(&[2047]));
    }

    #[test]
    fn word_bit_layout() {
        let lists = vec![ids(&[0x0001, 0x1ffe])];
        let (mem, addrs) = MatchMemory::build(&lists).unwrap();
        let w = mem.word(addrs[0].unwrap());
        assert_eq!(w & 0x1FFF, 0x0001);
        assert_eq!((w >> 13) & 0x1FFF, 0x1FFE);
        assert_eq!(w >> 26 & 1, 1);
        assert!(w < (1 << MATCH_WORD_BITS));
    }

    #[test]
    fn display_errors() {
        assert!(MatchMemError::Full { needed: 3000 }.to_string().contains("3000"));
        assert!(MatchMemError::StringNumberTooLarge { id: 9000 }
            .to_string()
            .contains("9000"));
    }

    #[test]
    fn shared_layout_interns_identical_lists() {
        let lists = vec![
            ids(&[1, 2]),
            ids(&[3]),
            ids(&[1, 2]),
            ids(&[1, 2]),
            ids(&[3]),
        ];
        let (mem, addrs) = MatchMemory::build_shared(&lists).unwrap();
        // Two distinct lists → 1 + 1 words instead of 5.
        assert_eq!(mem.words_used(), 2);
        assert_eq!(addrs[0], addrs[2]);
        assert_eq!(addrs[0], addrs[3]);
        assert_eq!(addrs[1], addrs[4]);
        assert_eq!(mem.read_sequence(addrs[0].unwrap()), ids(&[1, 2]));
        assert_eq!(mem.read_sequence(addrs[1].unwrap()), ids(&[3]));
    }

    #[test]
    fn shared_never_uses_more_words_than_private() {
        let lists: Vec<Vec<PatternId>> = (0..500)
            .map(|i| ids(&[i % 7, (i % 7) + 100]))
            .collect();
        let (private, _) = MatchMemory::build(&lists).unwrap();
        let (shared, _) = MatchMemory::build_shared(&lists).unwrap();
        assert!(shared.words_used() <= private.words_used());
        assert_eq!(shared.words_used(), 7); // 7 distinct lists
        assert_eq!(private.words_used(), 500);
    }

    #[test]
    fn shared_capacity_check_still_applies() {
        // 2049 *distinct* single-pattern lists overflow even when shared.
        let lists: Vec<Vec<PatternId>> = (0..2049).map(|i| ids(&[i % 8000])).collect();
        assert!(matches!(
            MatchMemory::build_shared(&lists),
            Err(MatchMemError::Full { .. })
        ));
    }
}
