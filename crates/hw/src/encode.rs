//! Bit-level encodings: transition pointers, match fields and state
//! records (§IV.A).
//!
//! - **Transition pointer** — 24 bits: 8-bit character value, 12-bit word
//!   address of the target state, 4-bit target state type. A type nibble of
//!   0 marks an unused pointer slot.
//! - **Match field** — 12 bits: 1 valid bit + 11-bit address into the
//!   2048-word match-number memory.
//! - **State record** — one match field followed by `capacity` pointer
//!   slots, laid out at the state type's bit offset inside a 324-bit word.

use crate::state_type::StateType;
use crate::word::Word324;

/// Number of bits in an encoded transition pointer.
pub const POINTER_BITS: usize = 24;
/// Number of bits in an encoded match field.
pub const MATCH_FIELD_BITS: usize = 12;
/// Word-address width: 12 bits, so a block's state memory holds at most
/// 4096 words.
pub const ADDR_BITS: usize = 12;
/// Maximum word address.
pub const MAX_ADDR: u16 = (1 << ADDR_BITS) - 1;

/// A hardware reference to a state: word address + state type (which
/// encodes the position inside the word).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StateRef {
    /// 12-bit word address.
    pub addr: u16,
    /// Target state's type.
    pub ty: StateType,
}

impl std::fmt::Display for StateRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "@{}:{}", self.addr, self.ty)
    }
}

impl StateRef {
    /// Encodes as the 16-bit `addr | type` form used by pointer slots and
    /// the default-target table.
    pub fn to_bits(self) -> u16 {
        debug_assert!(self.addr <= MAX_ADDR);
        self.addr | ((self.ty.code() as u16) << ADDR_BITS)
    }

    /// Decodes a 16-bit `addr | type` value; `None` if the type nibble is 0
    /// (the invalid/unused marker).
    pub fn from_bits(bits: u16) -> Option<StateRef> {
        let ty = StateType::new((bits >> ADDR_BITS) as u8)?;
        Some(StateRef {
            addr: bits & MAX_ADDR,
            ty,
        })
    }
}

/// A stored transition pointer: input byte + target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransitionPointer {
    /// The character value that must match to follow the pointer.
    pub byte: u8,
    /// The target state.
    pub target: StateRef,
}

impl TransitionPointer {
    /// Encodes to 24 bits: `byte(8) | addr(12) | type(4)`.
    pub fn to_bits(self) -> u32 {
        self.byte as u32 | (self.target.to_bits() as u32) << 8
    }

    /// Decodes 24 bits; `None` if the slot is unused (type nibble 0).
    pub fn from_bits(bits: u32) -> Option<TransitionPointer> {
        debug_assert!(bits < (1 << POINTER_BITS));
        let target = StateRef::from_bits((bits >> 8) as u16)?;
        Some(TransitionPointer {
            byte: bits as u8,
            target,
        })
    }
}

/// A state's 12-bit match field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MatchField {
    /// Address of the first match-number word, or `None` when the state
    /// matches nothing.
    pub match_addr: Option<u16>,
}

impl MatchField {
    /// Encodes to 12 bits: `valid(1) | addr(11)`.
    pub fn to_bits(self) -> u16 {
        match self.match_addr {
            Some(addr) => {
                debug_assert!(addr < 2048);
                1 | (addr << 1)
            }
            None => 0,
        }
    }

    /// Decodes from 12 bits.
    pub fn from_bits(bits: u16) -> MatchField {
        if bits & 1 == 1 {
            MatchField {
                match_addr: Some((bits >> 1) & 0x7FF),
            }
        } else {
            MatchField { match_addr: None }
        }
    }
}

/// A fully decoded state as stored in memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateRecord {
    /// The match field.
    pub match_field: MatchField,
    /// Stored pointers (at most the type's capacity).
    pub pointers: Vec<TransitionPointer>,
}

impl StateRecord {
    /// Writes the record into `word` at the position/width dictated by
    /// `ty`. Unused pointer slots are zeroed (type nibble 0 = invalid).
    ///
    /// # Panics
    ///
    /// Panics if the record holds more pointers than `ty`'s capacity.
    pub fn encode_into(&self, word: &mut Word324, ty: StateType) {
        assert!(
            self.pointers.len() <= ty.capacity(),
            "{} pointers exceed {ty} capacity {}",
            self.pointers.len(),
            ty.capacity()
        );
        let base = ty.bit_offset();
        word.set_bits(base, MATCH_FIELD_BITS, self.match_field.to_bits() as u64);
        for i in 0..ty.capacity() {
            let bits = self
                .pointers
                .get(i)
                .map(|p| p.to_bits() as u64)
                .unwrap_or(0);
            word.set_bits(base + MATCH_FIELD_BITS + i * POINTER_BITS, POINTER_BITS, bits);
        }
    }

    /// Reads the record of type `ty` from `word`.
    pub fn decode_from(word: &Word324, ty: StateType) -> StateRecord {
        let mut record = StateRecord {
            match_field: MatchField::default(),
            pointers: Vec::new(),
        };
        record.decode_from_into(word, ty);
        record
    }

    /// [`StateRecord::decode_from`] into `self`, reusing the pointer
    /// vector's capacity — the pooled form the per-byte decode paths use
    /// (an engine decodes one record per input byte; allocating a `Vec`
    /// each time was the last per-scan allocation in the simulator).
    /// Pointer capacity is at most 13, so after one decode of a
    /// max-capacity type the vector never grows again.
    pub fn decode_from_into(&mut self, word: &Word324, ty: StateType) {
        let base = ty.bit_offset();
        self.match_field = MatchField::from_bits(word.bits(base, MATCH_FIELD_BITS) as u16);
        self.pointers.clear();
        for i in 0..ty.capacity() {
            let bits = word.bits(base + MATCH_FIELD_BITS + i * POINTER_BITS, POINTER_BITS) as u32;
            if let Some(p) = TransitionPointer::from_bits(bits) {
                self.pointers.push(p);
            }
        }
    }

    /// Copies `other` into `self`, reusing the pointer vector's capacity
    /// — the in-place sibling of `clone()` for paths that reset a pooled
    /// record (an engine re-arms its start record once per packet; the
    /// derived `Clone` would allocate a fresh vector each time).
    pub fn copy_from(&mut self, other: &StateRecord) {
        self.match_field = other.match_field;
        self.pointers.clear();
        self.pointers.extend_from_slice(&other.pointers);
    }

    /// Looks up the stored pointer for `byte` (the hardware does this with
    /// one comparator per pointer slot, in parallel).
    pub fn lookup(&self, byte: u8) -> Option<StateRef> {
        self.pointers
            .iter()
            .find(|p| p.byte == byte)
            .map(|p| p.target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(code: u8) -> StateType {
        StateType::new(code).unwrap()
    }

    #[test]
    fn pointer_bits_roundtrip() {
        let p = TransitionPointer {
            byte: 0xAB,
            target: StateRef {
                addr: 0xFFF,
                ty: t(15),
            },
        };
        let bits = p.to_bits();
        assert!(bits < (1 << 24));
        assert_eq!(TransitionPointer::from_bits(bits), Some(p));
    }

    #[test]
    fn zero_bits_is_invalid_pointer() {
        assert_eq!(TransitionPointer::from_bits(0), None);
        // Any type-0 value is invalid regardless of byte/addr bits.
        assert_eq!(TransitionPointer::from_bits(0x0F_FFAB & 0x0FFFFF), None);
    }

    #[test]
    fn match_field_roundtrip() {
        for addr in [0u16, 1, 1024, 2047] {
            let f = MatchField {
                match_addr: Some(addr),
            };
            assert_eq!(MatchField::from_bits(f.to_bits()), f);
        }
        let none = MatchField { match_addr: None };
        assert_eq!(none.to_bits(), 0);
        assert_eq!(MatchField::from_bits(0), none);
    }

    #[test]
    fn copy_from_reuses_pointer_capacity() {
        let source = StateRecord {
            match_field: MatchField {
                match_addr: Some(42),
            },
            pointers: vec![
                TransitionPointer {
                    byte: 1,
                    target: StateRef { addr: 7, ty: t(3) },
                },
                TransitionPointer {
                    byte: 2,
                    target: StateRef { addr: 9, ty: t(3) },
                },
            ],
        };
        let mut dst = StateRecord {
            match_field: MatchField { match_addr: None },
            pointers: Vec::with_capacity(13),
        };
        let cap = dst.pointers.capacity();
        dst.copy_from(&source);
        assert_eq!(dst, source);
        assert_eq!(dst.pointers.capacity(), cap, "capacity must be reused");
    }

    #[test]
    fn record_roundtrips_in_every_type() {
        for ty in StateType::all() {
            let pointers: Vec<TransitionPointer> = (0..ty.capacity())
                .map(|i| TransitionPointer {
                    byte: i as u8 * 17 + 1,
                    target: StateRef {
                        addr: (i as u16 * 31) & MAX_ADDR,
                        ty: t((i % 15 + 1) as u8),
                    },
                })
                .collect();
            let rec = StateRecord {
                match_field: MatchField {
                    match_addr: Some(77),
                },
                pointers,
            };
            let mut word = Word324::ZERO;
            rec.encode_into(&mut word, ty);
            assert_eq!(StateRecord::decode_from(&word, ty), rec, "{ty}");
        }
    }

    #[test]
    fn partial_pointer_fill_decodes_compactly() {
        let ty = t(13); // capacity 7
        let rec = StateRecord {
            match_field: MatchField { match_addr: None },
            pointers: vec![TransitionPointer {
                byte: b'x',
                target: StateRef { addr: 9, ty: t(2) },
            }],
        };
        let mut word = Word324::ZERO;
        rec.encode_into(&mut word, ty);
        let back = StateRecord::decode_from(&word, ty);
        assert_eq!(back.pointers.len(), 1);
        assert_eq!(back, rec);
    }

    #[test]
    fn two_states_in_one_word_do_not_clobber() {
        // Medium at slots 0-4 (type 13) + single at slot 5 (type 6) +
        // small at slots 6-8 (type 12), as in Figure 3's mixed words.
        let mut word = Word324::ZERO;
        let medium = StateRecord {
            match_field: MatchField { match_addr: Some(1) },
            pointers: (0..5)
                .map(|i| TransitionPointer {
                    byte: i,
                    target: StateRef { addr: 100 + i as u16, ty: t(1) },
                })
                .collect(),
        };
        let single = StateRecord {
            match_field: MatchField { match_addr: Some(2) },
            pointers: vec![TransitionPointer {
                byte: 0xEE,
                target: StateRef { addr: 4095, ty: t(9) },
            }],
        };
        let small = StateRecord {
            match_field: MatchField { match_addr: None },
            pointers: (0..3)
                .map(|i| TransitionPointer {
                    byte: 0x80 + i,
                    target: StateRef { addr: 200 + i as u16, ty: t(10) },
                })
                .collect(),
        };
        medium.encode_into(&mut word, t(13));
        single.encode_into(&mut word, t(6));
        small.encode_into(&mut word, t(12));
        assert_eq!(StateRecord::decode_from(&word, t(13)), medium);
        assert_eq!(StateRecord::decode_from(&word, t(6)), single);
        assert_eq!(StateRecord::decode_from(&word, t(12)), small);
    }

    #[test]
    fn lookup_finds_stored_byte() {
        let rec = StateRecord {
            match_field: MatchField { match_addr: None },
            pointers: vec![
                TransitionPointer {
                    byte: b'a',
                    target: StateRef { addr: 1, ty: t(1) },
                },
                TransitionPointer {
                    byte: b'z',
                    target: StateRef { addr: 2, ty: t(2) },
                },
            ],
        };
        assert_eq!(rec.lookup(b'z').unwrap().addr, 2);
        assert_eq!(rec.lookup(b'q'), None);
    }

    #[test]
    fn state_ref_display() {
        let r = StateRef { addr: 12, ty: t(5) };
        assert_eq!(r.to_string(), "@12:T5");
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn over_capacity_encode_panics() {
        let rec = StateRecord {
            match_field: MatchField { match_addr: None },
            pointers: (0..2)
                .map(|i| TransitionPointer {
                    byte: i,
                    target: StateRef { addr: 0, ty: t(1) },
                })
                .collect(),
        };
        let mut word = Word324::ZERO;
        rec.encode_into(&mut word, t(1)); // capacity 1
    }
}
