//! # dpi-hw
//!
//! Bit-exact hardware memory layout for the DATE 2010 string matching
//! accelerator (§IV of the paper): 324-bit state-machine words, the 15
//! state types of Figure 3, 24-bit transition pointers, the 2,048 × 27-bit
//! match-number memory, and the 256 × 49-bit default-transition lookup
//! table with its 16-bit default-target entries.
//!
//! The crate turns a [`dpi_core::ReducedAutomaton`] into a [`HwImage`] — the
//! exact bits a string matching block's memories would be initialized with —
//! and provides [`HwMatcher`], a bit-level interpreter proving the image
//! equivalent to the software automaton. The cycle-accurate engine model in
//! `dpi-sim` executes these same images.
//!
//! ## Quick example
//!
//! ```
//! use dpi_automaton::{Dfa, MultiMatcher, PatternSet};
//! use dpi_core::{DtpConfig, ReducedAutomaton};
//! use dpi_hw::{HwImage, HwMatcher};
//!
//! let set = PatternSet::new(["he", "she", "his", "hers"])?;
//! let reduced = ReducedAutomaton::reduce(&Dfa::build(&set), DtpConfig::PAPER);
//! let image = HwImage::build(&reduced)?;
//! let matches = HwMatcher::new(&image, &set).find_all(b"ushers");
//! assert_eq!(matches.len(), 3);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod encode;
mod image;
mod lut_mem;
mod match_mem;
mod mif;
mod packer;
mod proptests;
mod state_type;
mod word;

pub use encode::{
    MatchField, StateRecord, StateRef, TransitionPointer, ADDR_BITS, MATCH_FIELD_BITS, MAX_ADDR,
    POINTER_BITS,
};
pub use image::{HwError, HwImage, HwMatcher, ImageOptions, MemoryStats, DEFAULT_MAX_WORDS};
pub use lut_mem::{
    LutMemories, LutTooWide, D2_SLOTS, D3_SLOTS, LUT_COMPARE_BITS, LUT_ROWS, TARGET_BITS,
    TARGET_SLOTS,
};
pub use mif::{parse_mif, to_mif, BlockMemory};
pub use match_mem::{
    MatchMemError, MatchMemory, MATCH_MEM_WORDS, MATCH_WORD_BITS, MAX_STRING_NUMBER,
    STRING_NUMBER_BITS,
};
pub use packer::{class_of, pack, PackError, PackedLayout, Placement};
pub use state_type::{StateClass, StateType};
pub use word::{Word324, WORD_BITS};
