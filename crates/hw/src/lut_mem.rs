//! Hardware encoding of the default-transition lookup table (§IV.B).
//!
//! Two small memories per string matching block:
//!
//! - **compare memory** — 256 × 49-bit words, exactly as the paper sizes
//!   it: 1 bit (depth-1 default exists / falls through to the start state),
//!   4 × 8 bits (preceding byte of each depth-2 default) and 16 bits (two
//!   preceding bytes of the depth-3 default).
//! - **default-target table** — 256 rows × 6 slots × 16 bits
//!   (`addr(12) | type(4)`). The paper states default pointers point to
//!   *fixed addresses* and therefore need no address storage in the 49-bit
//!   row; this table is our concrete realization of those fixed addresses
//!   (the per-slot target registers), with a type nibble of 0 marking an
//!   unused slot. Its 24,576 bits account for 3 M9K blocks in the Table I
//!   resource model (see `dpi-fpga::resource`).

use crate::encode::StateRef;
use dpi_core::DefaultLut;

/// Rows in the lookup table (one per character value).
pub const LUT_ROWS: usize = 256;
/// Bits per compare-memory word.
pub const LUT_COMPARE_BITS: usize = 49;
/// Depth-2 default slots per row (the paper's optimum, §III.B).
pub const D2_SLOTS: usize = 4;
/// Depth-3 default slots per row.
pub const D3_SLOTS: usize = 1;
/// Total target-table slots per row: depth-1 + depth-2 + depth-3.
pub const TARGET_SLOTS: usize = 1 + D2_SLOTS + D3_SLOTS;
/// Bits per target-table entry.
pub const TARGET_BITS: usize = 16;

/// Error raised when a [`DefaultLut`] does not fit the hardware row format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LutTooWide {
    /// Depth-2 entries found for some character value.
    pub k2: usize,
    /// Depth-3 entries found for some character value.
    pub k3: usize,
}

impl std::fmt::Display for LutTooWide {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "lookup table has {}/{} depth-2/3 entries per row; hardware rows hold {D2_SLOTS}/{D3_SLOTS}",
            self.k2, self.k3
        )
    }
}

impl std::error::Error for LutTooWide {}

/// The two encoded lookup-table memories of one string matching block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LutMemories {
    /// 49-bit compare rows (bit 0 = depth-1 valid; bits 1+8i..9+8i =
    /// depth-2 slot i's preceding byte; bits 33..41 / 41..49 = depth-3
    /// preceding bytes x / y).
    compare: Vec<u64>,
    /// `LUT_ROWS × TARGET_SLOTS` 16-bit target entries
    /// (row-major; slot 0 = depth-1, 1..=4 = depth-2, 5 = depth-3).
    targets: Vec<u16>,
}

impl LutMemories {
    /// Encodes `lut`, mapping each target state through `state_ref` (the
    /// packer's placement function).
    ///
    /// # Errors
    ///
    /// [`LutTooWide`] if any row holds more than 4 depth-2 or 1 depth-3
    /// entries (build the [`DefaultLut`] with `k2 ≤ 4`, `k3 ≤ 1`).
    pub fn encode(
        lut: &DefaultLut,
        mut state_ref: impl FnMut(dpi_automaton::StateId) -> StateRef,
    ) -> Result<LutMemories, LutTooWide> {
        let mut compare = vec![0u64; LUT_ROWS];
        let mut targets = vec![0u16; LUT_ROWS * TARGET_SLOTS];
        for (c, row) in lut.iter() {
            let ci = c as usize;
            if row.depth2.len() > D2_SLOTS || row.depth3.len() > D3_SLOTS {
                return Err(LutTooWide {
                    k2: row.depth2.len(),
                    k3: row.depth3.len(),
                });
            }
            let mut bits = 0u64;
            if let Some(d1) = row.depth1 {
                bits |= 1;
                targets[ci * TARGET_SLOTS] = state_ref(d1).to_bits();
            }
            for (i, e) in row.depth2.iter().enumerate() {
                bits |= (e.prev as u64) << (1 + 8 * i);
                targets[ci * TARGET_SLOTS + 1 + i] = state_ref(e.target).to_bits();
            }
            if let Some(e) = row.depth3.first() {
                bits |= (e.prev2[0] as u64) << 33;
                bits |= (e.prev2[1] as u64) << 41;
                targets[ci * TARGET_SLOTS + 1 + D2_SLOTS] = state_ref(e.target).to_bits();
            }
            debug_assert!(bits < (1u64 << LUT_COMPARE_BITS));
            compare[ci] = bits;
        }
        Ok(LutMemories { compare, targets })
    }

    /// Raw 49-bit compare row for character `c`.
    pub fn compare_row(&self, c: u8) -> u64 {
        self.compare[c as usize]
    }

    /// Raw 16-bit target entry for `(c, slot)`.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= TARGET_SLOTS`.
    pub fn target_entry(&self, c: u8, slot: usize) -> Option<StateRef> {
        assert!(slot < TARGET_SLOTS);
        StateRef::from_bits(self.targets[c as usize * TARGET_SLOTS + slot])
    }

    /// Resolves the default transition for input byte `c` with runtime
    /// history (`prev`, `prev2` masked at packet start as in
    /// `dpi_core::DefaultLut::resolve`), returning the target reference or
    /// `None` for "go to the start state".
    ///
    /// Priority is depth-3, depth-2 (slot order), depth-1 — implemented in
    /// hardware by the engine's default comparator block (Figure 5).
    pub fn resolve(&self, c: u8, prev: Option<u8>, prev2: Option<u8>) -> Option<StateRef> {
        let ci = c as usize;
        let bits = self.compare[ci];
        if let (Some(p), Some(pp)) = (prev, prev2) {
            if let Some(target) = self.target_entry(c, 1 + D2_SLOTS) {
                let x = (bits >> 33) as u8;
                let y = (bits >> 41) as u8;
                if [pp, p] == [x, y] {
                    return Some(target);
                }
            }
        }
        if let Some(p) = prev {
            for i in 0..D2_SLOTS {
                if let Some(target) = self.target_entry(c, 1 + i) {
                    let byte = (bits >> (1 + 8 * i)) as u8;
                    if byte == p {
                        return Some(target);
                    }
                }
            }
        }
        if bits & 1 == 1 {
            self.target_entry(c, 0)
        } else {
            None
        }
    }

    /// Bits of the compare memory (fixed allocation).
    pub fn compare_bits() -> usize {
        LUT_ROWS * LUT_COMPARE_BITS
    }

    /// Bits of the target table (fixed allocation).
    pub fn target_bits() -> usize {
        LUT_ROWS * TARGET_SLOTS * TARGET_BITS
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state_type::StateType;
    use dpi_automaton::{Dfa, PatternSet, StateId};
    use dpi_core::DtpConfig;

    /// Fake placement: state id n → addr n, type 1.
    fn fake_ref(s: StateId) -> StateRef {
        StateRef {
            addr: s.0 as u16,
            ty: StateType::new(1).unwrap(),
        }
    }

    fn figure1_lut() -> (Dfa, DefaultLut) {
        let set = PatternSet::new(["he", "she", "his", "hers"]).unwrap();
        let dfa = Dfa::build(&set);
        let lut = DefaultLut::build(&dfa, DtpConfig::PAPER);
        (dfa, lut)
    }

    #[test]
    fn encode_resolve_agrees_with_software_lut() {
        let (dfa, lut) = figure1_lut();
        let mem = LutMemories::encode(&lut, fake_ref).unwrap();
        // Exhaustive: every byte × history combination over a small pool.
        let hist: [Option<u8>; 5] = [None, Some(b'h'), Some(b's'), Some(b'e'), Some(b'q')];
        for c in 0..=255u8 {
            for &prev in &hist {
                for &prev2 in &hist {
                    // Skip invalid mask combination (prev2 valid without prev).
                    if prev.is_none() && prev2.is_some() {
                        continue;
                    }
                    let sw = lut.resolve(c, prev, prev2);
                    let hw = mem.resolve(c, prev, prev2);
                    match hw {
                        None => assert_eq!(sw, StateId::START, "byte {c} {prev:?} {prev2:?}"),
                        Some(r) => assert_eq!(
                            r.addr as u32, sw.0,
                            "byte {c} {prev:?} {prev2:?}"
                        ),
                    }
                }
            }
        }
        let _ = dfa;
    }

    #[test]
    fn compare_rows_fit_49_bits() {
        let (_, lut) = figure1_lut();
        let mem = LutMemories::encode(&lut, fake_ref).unwrap();
        for c in 0..=255u8 {
            assert!(mem.compare_row(c) < (1u64 << LUT_COMPARE_BITS));
        }
    }

    #[test]
    fn unused_slots_have_type_zero() {
        let (_, lut) = figure1_lut();
        let mem = LutMemories::encode(&lut, fake_ref).unwrap();
        // Row 'q' has no defaults at all.
        for slot in 0..TARGET_SLOTS {
            assert_eq!(mem.target_entry(b'q', slot), None);
        }
        // Row 'e' has no depth-1 ('e' starts no pattern) but has d2 + d3.
        assert_eq!(mem.target_entry(b'e', 0), None);
        assert!(mem.target_entry(b'e', 1).is_some());
        assert!(mem.target_entry(b'e', 1 + D2_SLOTS).is_some());
    }

    #[test]
    fn too_wide_lut_rejected() {
        let strings: Vec<String> = (b'a'..=b'z').map(|c| format!("{}z", c as char)).collect();
        let set = PatternSet::new(&strings).unwrap();
        let dfa = Dfa::build(&set);
        let wide = DefaultLut::build(&dfa, DtpConfig { depth1: true, k2: 8, k3: 1 });
        let err = LutMemories::encode(&wide, fake_ref).unwrap_err();
        assert_eq!(err.k2, 8);
        assert!(err.to_string().contains("depth-2/3"));
    }

    #[test]
    fn fixed_sizes_match_paper() {
        assert_eq!(LutMemories::compare_bits(), 256 * 49);
        assert_eq!(LutMemories::target_bits(), 1536 * 16);
    }
}
