//! 324-bit memory words (§IV.A: "To store this many pointers, 324-bit
//! memory words are needed").
//!
//! A word is addressed by a 12-bit word address and holds up to nine 36-bit
//! state slots (see [`crate::StateType`]). Bit numbering is little-endian:
//! bit 0 is the least significant bit of limb 0.

/// Number of bits in a state-machine memory word.
pub const WORD_BITS: usize = 324;

/// One 324-bit memory word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Word324 {
    limbs: [u64; 6],
}

impl Word324 {
    /// The all-zero word.
    pub const ZERO: Word324 = Word324 { limbs: [0; 6] };

    /// Reads `len` bits (≤ 64) starting at bit `offset`.
    ///
    /// # Panics
    ///
    /// Panics if `len > 64` or `offset + len > 324`.
    pub fn bits(&self, offset: usize, len: usize) -> u64 {
        assert!(len <= 64, "cannot read more than 64 bits at once");
        assert!(offset + len <= WORD_BITS, "read past end of word");
        if len == 0 {
            return 0;
        }
        let limb = offset / 64;
        let shift = offset % 64;
        let mut value = self.limbs[limb] >> shift;
        if shift + len > 64 {
            value |= self.limbs[limb + 1] << (64 - shift);
        }
        if len == 64 {
            value
        } else {
            value & ((1u64 << len) - 1)
        }
    }

    /// Writes `len` bits (≤ 64) of `value` starting at bit `offset`.
    ///
    /// # Panics
    ///
    /// Panics if `len > 64`, `offset + len > 324`, or `value` does not fit
    /// in `len` bits.
    pub fn set_bits(&mut self, offset: usize, len: usize, value: u64) {
        assert!(len <= 64, "cannot write more than 64 bits at once");
        assert!(offset + len <= WORD_BITS, "write past end of word");
        if len == 0 {
            return;
        }
        if len < 64 {
            assert!(value < (1u64 << len), "value {value:#x} exceeds {len} bits");
        }
        let limb = offset / 64;
        let shift = offset % 64;
        let mask = if len == 64 { u64::MAX } else { (1u64 << len) - 1 };
        self.limbs[limb] &= !(mask << shift);
        self.limbs[limb] |= value << shift;
        if shift + len > 64 {
            let hi_bits = shift + len - 64;
            let hi_mask = (1u64 << hi_bits) - 1;
            self.limbs[limb + 1] &= !hi_mask;
            self.limbs[limb + 1] |= value >> (64 - shift);
        }
    }

    /// `true` if every bit is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.iter().all(|&l| l == 0)
    }

    /// Serializes to 41 little-endian bytes (324 bits rounded up; the top
    /// 4 bits of the final byte are zero).
    pub fn to_bytes(&self) -> [u8; 41] {
        let mut out = [0u8; 41];
        for (i, limb) in self.limbs.iter().enumerate() {
            for (j, b) in limb.to_le_bytes().iter().enumerate() {
                let idx = i * 8 + j;
                if idx < 41 {
                    out[idx] = *b;
                }
            }
        }
        out
    }

    /// Deserializes from 41 little-endian bytes.
    ///
    /// # Panics
    ///
    /// Panics if any bit above 324 is set.
    pub fn from_bytes(bytes: &[u8; 41]) -> Word324 {
        let mut limbs = [0u64; 6];
        for (i, limb) in limbs.iter_mut().enumerate() {
            let mut raw = [0u8; 8];
            for (j, r) in raw.iter_mut().enumerate() {
                let idx = i * 8 + j;
                if idx < 41 {
                    *r = bytes[idx];
                }
            }
            *limb = u64::from_le_bytes(raw);
        }
        assert!(
            limbs[5] >> (WORD_BITS - 320) == 0,
            "bits above 324 must be zero"
        );
        Word324 { limbs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_within_one_limb() {
        let mut w = Word324::ZERO;
        w.set_bits(3, 12, 0xABC);
        assert_eq!(w.bits(3, 12), 0xABC);
        assert_eq!(w.bits(0, 3), 0);
        assert_eq!(w.bits(15, 10), 0);
    }

    #[test]
    fn roundtrip_across_limb_boundary() {
        let mut w = Word324::ZERO;
        // Bits 60..84 straddle limbs 0 and 1.
        w.set_bits(60, 24, 0xDEADBE);
        assert_eq!(w.bits(60, 24), 0xDEADBE);
        // Neighbours untouched.
        assert_eq!(w.bits(0, 60), 0);
        assert_eq!(w.bits(84, 64), 0);
    }

    #[test]
    fn overwrite_clears_old_bits() {
        let mut w = Word324::ZERO;
        w.set_bits(100, 16, 0xFFFF);
        w.set_bits(100, 16, 0x0001);
        assert_eq!(w.bits(100, 16), 0x0001);
    }

    #[test]
    fn full_64_bit_field() {
        let mut w = Word324::ZERO;
        w.set_bits(128, 64, u64::MAX);
        assert_eq!(w.bits(128, 64), u64::MAX);
        w.set_bits(128, 64, 0x0123_4567_89AB_CDEF);
        assert_eq!(w.bits(128, 64), 0x0123_4567_89AB_CDEF);
    }

    #[test]
    fn last_addressable_bits() {
        let mut w = Word324::ZERO;
        w.set_bits(WORD_BITS - 4, 4, 0xF);
        assert_eq!(w.bits(WORD_BITS - 4, 4), 0xF);
        assert!(!w.is_zero());
    }

    #[test]
    #[should_panic(expected = "read past end")]
    fn read_past_end_panics() {
        let w = Word324::ZERO;
        let _ = w.bits(WORD_BITS - 3, 4);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_value_panics() {
        let mut w = Word324::ZERO;
        w.set_bits(0, 4, 0x10);
    }

    #[test]
    fn byte_roundtrip() {
        let mut w = Word324::ZERO;
        w.set_bits(0, 36, 0x9_ABCD_EF01);
        w.set_bits(288, 36, 0x8_7654_3210);
        w.set_bits(160, 24, 0x123456);
        let bytes = w.to_bytes();
        assert_eq!(Word324::from_bytes(&bytes), w);
    }

    #[test]
    fn nine_36bit_slots_are_disjoint() {
        let mut w = Word324::ZERO;
        for slot in 0..9 {
            w.set_bits(slot * 36, 36, ((slot as u64 + 1) * 0x1_0000_0001) & 0xF_FFFF_FFFF);
        }
        for slot in 0..9 {
            assert_eq!(
                w.bits(slot * 36, 36),
                ((slot as u64 + 1) * 0x1_0000_0001) & 0xF_FFFF_FFFF
            );
        }
    }
}
