//! The complete memory image of one string matching block, plus a bit-level
//! interpreter used to prove the image equivalent to the software matcher.

use crate::encode::{StateRecord, StateRef, TransitionPointer, MatchField};
use crate::lut_mem::{LutMemories, LutTooWide};
use crate::match_mem::{MatchMemError, MatchMemory, MATCH_WORD_BITS, MATCH_MEM_WORDS};
use crate::packer::{pack, PackError, PackedLayout};
use crate::word::{Word324, WORD_BITS};
use dpi_automaton::{Match, MultiMatcher, PatternSet, StateId};
use dpi_core::ReducedAutomaton;

/// Default state-memory capacity: the full 12-bit address space.
pub const DEFAULT_MAX_WORDS: usize = 4096;

/// Build-time options for a block image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ImageOptions {
    /// State-memory words available (block capacity).
    pub max_words: usize,
    /// Share one stored copy between states with identical output lists
    /// (extension beyond the paper; see
    /// [`MatchMemory::build_shared`](crate::MatchMemory::build_shared)).
    pub shared_match_lists: bool,
}

impl Default for ImageOptions {
    fn default() -> Self {
        ImageOptions {
            max_words: DEFAULT_MAX_WORDS,
            shared_match_lists: false,
        }
    }
}

/// Any failure while building a hardware image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HwError {
    /// State packing failed.
    Pack(PackError),
    /// Match-number memory overflowed or a string number was too large.
    MatchMem(MatchMemError),
    /// The lookup table exceeds the hardware row format.
    Lut(LutTooWide),
}

impl std::fmt::Display for HwError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HwError::Pack(e) => write!(f, "packing failed: {e}"),
            HwError::MatchMem(e) => write!(f, "match memory: {e}"),
            HwError::Lut(e) => write!(f, "lookup table: {e}"),
        }
    }
}

impl std::error::Error for HwError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HwError::Pack(e) => Some(e),
            HwError::MatchMem(e) => Some(e),
            HwError::Lut(e) => Some(e),
        }
    }
}

impl From<PackError> for HwError {
    fn from(e: PackError) -> Self {
        HwError::Pack(e)
    }
}

impl From<MatchMemError> for HwError {
    fn from(e: MatchMemError) -> Self {
        HwError::MatchMem(e)
    }
}

impl From<LutTooWide> for HwError {
    fn from(e: LutTooWide) -> Self {
        HwError::Lut(e)
    }
}

/// Byte/bit accounting for one block's memories (Table II "Mem.(bytes)"
/// and the Table I M9K model are both derived from these numbers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryStats {
    /// 324-bit state-machine words actually used.
    pub state_words: usize,
    /// Bits of used state-machine words.
    pub state_bits: usize,
    /// Match-number words actually used (of the fixed 2,048).
    pub match_words_used: usize,
    /// Bits of the fixed match-number memory allocation.
    pub match_bits: usize,
    /// Bits of the 256 × 49 compare lookup table.
    pub lut_compare_bits: usize,
    /// Bits of the 1,536 × 16 default-target table.
    pub lut_target_bits: usize,
}

impl MemoryStats {
    /// Total bytes over all memories, rounding bits up per region — the
    /// figure reported in Table II's "Mem.(bytes)" row.
    pub fn total_bytes(&self) -> usize {
        [
            self.state_bits,
            self.match_bits,
            self.lut_compare_bits,
            self.lut_target_bits,
        ]
        .iter()
        .map(|b| b.div_ceil(8))
        .sum()
    }
}

/// The memory image of one string matching block: packed state machine,
/// match-number memory and lookup-table memories.
#[derive(Debug, Clone)]
pub struct HwImage {
    words: Vec<Word324>,
    layout: PackedLayout,
    match_mem: MatchMemory,
    lut: LutMemories,
    start: StateRef,
}

impl HwImage {
    /// Builds the image for a reduced automaton, with the full 4,096-word
    /// state memory available.
    ///
    /// # Errors
    ///
    /// See [`HwImage::build_with_capacity`].
    pub fn build(reduced: &ReducedAutomaton) -> Result<HwImage, HwError> {
        Self::build_with_capacity(reduced, DEFAULT_MAX_WORDS)
    }

    /// Builds the image with at most `max_words` state-memory words (a
    /// block's physical capacity: 3,584 on the paper's Stratix 3
    /// configuration, 2,560 on the Cyclone 3).
    ///
    /// # Errors
    ///
    /// [`HwError::Pack`] when a state stores more than 13 pointers or the
    /// packed machine exceeds `max_words`; [`HwError::MatchMem`] when the
    /// output lists exceed 2,048 words or 13-bit string numbers;
    /// [`HwError::Lut`] when the lookup table was built wider than the
    /// hardware rows (k2 > 4 or k3 > 1).
    pub fn build_with_capacity(
        reduced: &ReducedAutomaton,
        max_words: usize,
    ) -> Result<HwImage, HwError> {
        Self::build_with_options(
            reduced,
            ImageOptions {
                max_words,
                ..ImageOptions::default()
            },
        )
    }

    /// Builds the image with explicit [`ImageOptions`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`HwImage::build_with_capacity`].
    pub fn build_with_options(
        reduced: &ReducedAutomaton,
        options: ImageOptions,
    ) -> Result<HwImage, HwError> {
        let counts: Vec<usize> = reduced
            .state_ids()
            .map(|s| reduced.stored(s).len())
            .collect();
        let layout = pack(&counts, options.max_words)?;

        let output_lists: Vec<&[dpi_automaton::PatternId]> =
            reduced.state_ids().map(|s| reduced.output(s)).collect();
        let (match_mem, match_addrs) = if options.shared_match_lists {
            MatchMemory::build_shared(output_lists)?
        } else {
            MatchMemory::build(output_lists)?
        };

        let mut words = vec![Word324::ZERO; layout.words_used()];
        for s in reduced.state_ids() {
            let placement = layout.placement(s.index());
            let record = StateRecord {
                match_field: MatchField {
                    match_addr: match_addrs[s.index()],
                },
                pointers: reduced
                    .stored(s)
                    .iter()
                    .map(|&(byte, target)| TransitionPointer {
                        byte,
                        target: layout.placement(target.index()),
                    })
                    .collect(),
            };
            record.encode_into(&mut words[placement.addr as usize], placement.ty);
        }

        let lut = LutMemories::encode(reduced.lut(), |s| layout.placement(s.index()))?;
        let start = layout.placement(StateId::START.index());
        Ok(HwImage {
            words,
            layout,
            match_mem,
            lut,
            start,
        })
    }

    /// The engine's reset target: where the start state lives (always word
    /// 0, position 0 by construction).
    pub fn start(&self) -> StateRef {
        self.start
    }

    /// Raw state-memory word at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is beyond the used words.
    pub fn word(&self, addr: u16) -> &Word324 {
        &self.words[addr as usize]
    }

    /// Number of state-memory words used.
    pub fn words_used(&self) -> usize {
        self.words.len()
    }

    /// The packing layout (placements, census, fill ratio).
    pub fn layout(&self) -> &PackedLayout {
        &self.layout
    }

    /// The match-number memory.
    pub fn match_mem(&self) -> &MatchMemory {
        &self.match_mem
    }

    /// The lookup-table memories.
    pub fn lut(&self) -> &LutMemories {
        &self.lut
    }

    /// Decodes the state record at `r` straight from the bits.
    pub fn decode_state(&self, r: StateRef) -> StateRecord {
        StateRecord::decode_from(&self.words[r.addr as usize], r.ty)
    }

    /// [`HwImage::decode_state`] into a caller-owned record, reusing its
    /// pointer capacity — the allocation-free form the per-byte scan
    /// paths use (see [`StateRecord::decode_from_into`]).
    pub fn decode_state_into(&self, r: StateRef, record: &mut StateRecord) {
        record.decode_from_into(&self.words[r.addr as usize], r.ty);
    }

    /// Memory accounting for this image.
    pub fn stats(&self) -> MemoryStats {
        MemoryStats {
            state_words: self.words.len(),
            state_bits: self.words.len() * WORD_BITS,
            match_words_used: self.match_mem.words_used(),
            match_bits: MATCH_MEM_WORDS * MATCH_WORD_BITS,
            lut_compare_bits: LutMemories::compare_bits(),
            lut_target_bits: LutMemories::target_bits(),
        }
    }
}

/// Bit-level interpreter over a [`HwImage`]: scans packets by decoding
/// memory words exactly as a string matching engine would. The
/// cycle-accurate engine in `dpi-sim` reuses these decode paths; this
/// matcher is the bridge proving image ≡ software automaton.
#[derive(Debug, Clone)]
pub struct HwMatcher<'a> {
    image: &'a HwImage,
    set: &'a PatternSet,
}

impl<'a> HwMatcher<'a> {
    /// Creates an interpreter over `image` for patterns `set` (needed only
    /// for case folding).
    pub fn new(image: &'a HwImage, set: &'a PatternSet) -> Self {
        HwMatcher { image, set }
    }

    /// Scans one packet, returning matches and the trace of visited state
    /// references.
    pub fn scan_with_trace(&self, packet: &[u8]) -> (Vec<Match>, Vec<StateRef>) {
        let mut matches = Vec::new();
        let mut trace = Vec::with_capacity(packet.len());
        let mut at = self.image.start();
        let mut record = self.image.decode_state(at);
        let mut prev: Option<u8> = None;
        let mut prev2: Option<u8> = None;
        for (i, &raw) in packet.iter().enumerate() {
            let byte = self.set.fold(raw);
            at = match record.lookup(byte) {
                Some(next) => next,
                None => self
                    .image
                    .lut()
                    .resolve(byte, prev, prev2)
                    .unwrap_or(self.image.start()),
            };
            self.image.decode_state_into(at, &mut record);
            trace.push(at);
            if let Some(addr) = record.match_field.match_addr {
                for id in self.image.match_mem().read_sequence(addr) {
                    matches.push(Match {
                        end: i + 1,
                        pattern: id,
                    });
                }
            }
            prev2 = prev;
            prev = Some(byte);
        }
        (matches, trace)
    }
}

impl MultiMatcher for HwMatcher<'_> {
    fn find_all(&self, haystack: &[u8]) -> Vec<Match> {
        self.scan_with_trace(haystack).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpi_automaton::{Dfa, DfaMatcher};
    use dpi_core::{DtpConfig, DtpMatcher};

    fn build(patterns: &[&str]) -> (PatternSet, Dfa, ReducedAutomaton, HwImage) {
        let set = PatternSet::new(patterns).unwrap();
        let dfa = Dfa::build(&set);
        let red = ReducedAutomaton::reduce(&dfa, DtpConfig::PAPER);
        let image = HwImage::build(&red).unwrap();
        (set, dfa, red, image)
    }

    #[test]
    fn figure1_image_matches_software() {
        let (set, dfa, red, image) = build(&["he", "she", "his", "hers"]);
        let hw = HwMatcher::new(&image, &set);
        let sw = DtpMatcher::new(&red, &set);
        let full = DfaMatcher::new(&dfa, &set);
        for text in [
            &b"ushers"[..],
            b"shishershehehehers",
            b"",
            b"hhhh",
            b"xyzzy",
        ] {
            assert_eq!(hw.find_all(text), sw.find_all(text), "{text:?}");
            assert_eq!(hw.find_all(text), full.find_all(text), "{text:?}");
        }
    }

    #[test]
    fn start_is_word0_position0() {
        let (_, _, _, image) = build(&["abc", "bcd"]);
        assert_eq!(image.start().addr, 0);
        assert_eq!(image.start().ty.bit_offset(), 0);
    }

    #[test]
    fn decode_roundtrips_every_state() {
        let (_, _, red, image) = build(&["he", "she", "his", "hers", "abcdefgh"]);
        for s in red.state_ids() {
            let placement = image.layout().placement(s.index());
            let rec = image.decode_state(placement);
            assert_eq!(rec.pointers.len(), red.stored(s).len(), "state {s}");
            // Pointer bytes agree.
            let bytes: Vec<u8> = rec.pointers.iter().map(|p| p.byte).collect();
            let expect: Vec<u8> = red.stored(s).iter().map(|&(b, _)| b).collect();
            assert_eq!(bytes, expect);
            // Match field presence agrees with outputs.
            assert_eq!(
                rec.match_field.match_addr.is_some(),
                !red.output(s).is_empty()
            );
        }
    }

    #[test]
    fn match_sequences_stored_and_retrieved() {
        // "aaa" ending states have multi-pattern outputs (a, aa, aaa).
        let (set, _, red, image) = build(&["a", "aa", "aaa"]);
        let hw = HwMatcher::new(&image, &set);
        let found = hw.find_all(b"aaa");
        assert_eq!(found.len(), 6);
        let _ = red;
    }

    #[test]
    fn capacity_error_propagates() {
        let (_, _, red, _) = build(&["he", "she", "his", "hers"]);
        let err = HwImage::build_with_capacity(&red, 1).unwrap_err();
        assert!(matches!(err, HwError::Pack(PackError::AddressSpaceExceeded { .. })));
        assert!(err.to_string().contains("packing failed"));
    }

    #[test]
    fn stats_account_all_regions() {
        let (_, _, _, image) = build(&["he", "she", "his", "hers"]);
        let stats = image.stats();
        assert_eq!(stats.state_words, image.words_used());
        assert_eq!(stats.state_bits, image.words_used() * 324);
        assert_eq!(stats.match_bits, 2048 * 27);
        assert_eq!(stats.lut_compare_bits, 256 * 49);
        assert_eq!(stats.lut_target_bits, 1536 * 16);
        // Total: state + 6912 + 1568 + 3072 bytes.
        let expected =
            stats.state_bits.div_ceil(8) + 6912 + 1568 + 3072;
        assert_eq!(stats.total_bytes(), expected);
    }

    #[test]
    fn nocase_image() {
        let set = PatternSet::new_nocase(["Snort"]).unwrap();
        let dfa = Dfa::build(&set);
        let red = ReducedAutomaton::reduce(&dfa, DtpConfig::PAPER);
        let image = HwImage::build(&red).unwrap();
        let hw = HwMatcher::new(&image, &set);
        assert!(hw.is_match(b"SNORT rules"));
    }

    #[test]
    fn binary_patterns_image() {
        let set = PatternSet::new([&[0x00u8, 0xff][..], &[0xff, 0x00][..]]).unwrap();
        let dfa = Dfa::build(&set);
        let red = ReducedAutomaton::reduce(&dfa, DtpConfig::PAPER);
        let image = HwImage::build(&red).unwrap();
        let hw = HwMatcher::new(&image, &set);
        let found = hw.find_all(&[0x00, 0xff, 0x00, 0xff]);
        assert_eq!(found.len(), 3);
    }
}
