//! Assignment of states to memory words (§IV.A: "A state machine's states
//! are carefully assigned a state type and memory word after it has been
//! built to insure no gaps of unused memory").
//!
//! The word is a grid of nine 36-bit slots; each state class may start only
//! at certain slots (see [`StateClass::allowed_slots`]). Packing is
//! first-fit decreasing: the start state first (pinned to word 0, slot 0,
//! so engines know where to begin a packet), then all remaining states
//! largest class first. Because allocation is monotone (slots only fill),
//! a per-class scan cursor keeps the packer near-linear.

use crate::encode::{StateRef, MAX_ADDR};
use crate::state_type::StateClass;

/// Where one state landed: word address + state type (type encodes the
/// slot position).
pub type Placement = StateRef;

/// Error raised when packing fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PackError {
    /// A state has more stored pointers than any state type can hold
    /// (the hardware maximum is 13; split the ruleset across more blocks).
    StateTooWide {
        /// The state's index.
        state: u32,
        /// Its stored pointer count.
        pointers: usize,
    },
    /// The packed machine needs more words than the address space or the
    /// block provides.
    AddressSpaceExceeded {
        /// Words required.
        needed: usize,
        /// Words available.
        available: usize,
    },
}

impl std::fmt::Display for PackError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PackError::StateTooWide { state, pointers } => write!(
                f,
                "state {state} stores {pointers} pointers; the widest state type holds 13"
            ),
            PackError::AddressSpaceExceeded { needed, available } => write!(
                f,
                "state machine needs {needed} memory words but only {available} are available"
            ),
        }
    }
}

impl std::error::Error for PackError {}

/// The result of packing: one placement per state plus occupancy stats.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedLayout {
    placements: Vec<Placement>,
    words_used: usize,
    class_census: [usize; 5],
    slots_used: usize,
}

impl PackedLayout {
    /// Placement of state `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn placement(&self, i: usize) -> Placement {
        self.placements[i]
    }

    /// All placements, indexed by state.
    pub fn placements(&self) -> &[Placement] {
        &self.placements
    }

    /// Number of memory words allocated.
    pub fn words_used(&self) -> usize {
        self.words_used
    }

    /// States per class, ordered `[Single, Small, Medium, Large, Full]`.
    pub fn class_census(&self) -> [usize; 5] {
        self.class_census
    }

    /// Fraction of allocated 36-bit slots actually occupied — the paper's
    /// "no gaps" claim corresponds to this staying near 1.0.
    pub fn fill_ratio(&self) -> f64 {
        if self.words_used == 0 {
            return 1.0;
        }
        self.slots_used as f64 / (self.words_used * 9) as f64
    }
}

fn census_index(class: StateClass) -> usize {
    match class {
        StateClass::Single => 0,
        StateClass::Small => 1,
        StateClass::Medium => 2,
        StateClass::Large => 3,
        StateClass::Full => 4,
    }
}

/// Packs states (given their stored-pointer counts, indexed by state id)
/// into at most `max_words` words. State 0 is pinned to word 0, slot 0.
///
/// # Errors
///
/// [`PackError::StateTooWide`] if any count exceeds 13;
/// [`PackError::AddressSpaceExceeded`] if the packed machine does not fit.
pub fn pack(pointer_counts: &[usize], max_words: usize) -> Result<PackedLayout, PackError> {
    let available = max_words.min(MAX_ADDR as usize + 1);
    assert!(!pointer_counts.is_empty(), "at least the start state exists");

    // Classify all states up front.
    let mut classes = Vec::with_capacity(pointer_counts.len());
    let mut class_census = [0usize; 5];
    for (i, &count) in pointer_counts.iter().enumerate() {
        let class = StateClass::for_pointers(count).ok_or(PackError::StateTooWide {
            state: i as u32,
            pointers: count,
        })?;
        class_census[census_index(class)] += 1;
        classes.push(class);
    }

    // Free-slot masks, one 9-bit mask per word.
    let mut free: Vec<u16> = Vec::new();
    let mut placements: Vec<Option<Placement>> = vec![None; pointer_counts.len()];
    let mut slots_used = 0usize;

    let place = |free: &mut Vec<u16>, class: StateClass| -> (usize, usize) {
        // (word, slot); grows `free` as needed.
        let need = class.slots();
        let mask_of = |slot: usize| ((1u16 << need) - 1) << slot;
        let mut w = 0;
        loop {
            if w == free.len() {
                free.push(0x1FF); // all 9 slots free
            }
            for &slot in class.allowed_slots() {
                let m = mask_of(slot);
                if free[w] & m == m {
                    free[w] &= !m;
                    return (w, slot);
                }
            }
            w += 1;
        }
    };

    // Start state first, pinned at word 0 slot 0.
    {
        let class = classes[0];
        let (w, slot) = place(&mut free, class);
        debug_assert_eq!((w, slot), (0, 0), "start state must land at 0:0");
        placements[0] = Some(StateRef {
            addr: w as u16,
            ty: class.type_at(slot),
        });
        slots_used += class.slots();
    }

    // Remaining states: first-fit decreasing with a per-class cursor.
    for class in StateClass::DESCENDING {
        let mut cursor = 0usize;
        for (i, &c) in classes.iter().enumerate().skip(1) {
            if c != class {
                continue;
            }
            let need = class.slots();
            let mask_of = |slot: usize| ((1u16 << need) - 1) << slot;
            let chosen: Option<(usize, usize)>;
            let mut w = cursor;
            loop {
                if w == free.len() {
                    free.push(0x1FF);
                }
                let mut found = None;
                for &slot in class.allowed_slots() {
                    let m = mask_of(slot);
                    if free[w] & m == m {
                        found = Some(slot);
                        break;
                    }
                }
                match found {
                    Some(slot) => {
                        free[w] &= !mask_of(slot);
                        chosen = Some((w, slot));
                        break;
                    }
                    None => {
                        if w == cursor {
                            cursor += 1;
                        }
                        w += 1;
                    }
                }
            }
            let (w, slot) = chosen.expect("loop always places");
            placements[i] = Some(StateRef {
                addr: w as u16,
                ty: class.type_at(slot),
            });
            slots_used += class.slots();
        }
    }

    let words_used = free.len();
    if words_used > available {
        return Err(PackError::AddressSpaceExceeded {
            needed: words_used,
            available,
        });
    }
    Ok(PackedLayout {
        placements: placements
            .into_iter()
            .map(|p| p.expect("every state placed"))
            .collect(),
        words_used,
        class_census,
        slots_used,
    })
}

/// The state type a state of `pointers` stored pointers will be given,
/// ignoring its position (useful for width pre-checks).
pub fn class_of(pointers: usize) -> Option<StateClass> {
    StateClass::for_pointers(pointers)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singles_pack_nine_per_word() {
        let counts = vec![0usize; 18];
        let layout = pack(&counts, 4096).unwrap();
        assert_eq!(layout.words_used(), 2);
        assert!((layout.fill_ratio() - 1.0).abs() < 1e-12);
        // All addresses < 2, all types 1..=9.
        for p in layout.placements() {
            assert!(p.addr < 2);
            assert!((1..=9).contains(&p.ty.code()));
        }
    }

    #[test]
    fn start_state_at_word0_slot0() {
        let counts = vec![3usize, 0, 0, 12];
        let layout = pack(&counts, 4096).unwrap();
        let root = layout.placement(0);
        assert_eq!(root.addr, 0);
        assert_eq!(root.ty.bit_offset(), 0);
        assert_eq!(root.ty.code(), 10); // Small class at slot 0
    }

    #[test]
    fn mixed_classes_share_words() {
        // One Medium (5 slots) + one Single + one Small = exactly one word.
        let counts = vec![0usize, 6, 2]; // root Single, Medium, Small
        let layout = pack(&counts, 4096).unwrap();
        // Medium at slots 0-4 of word 1? Root takes word 0 slot 0 first;
        // Medium needs slots 0-4 → word 1; Small needs 3-aligned group →
        // word 0 slots 3-5; root single at 0.
        assert_eq!(layout.placement(1).ty.code(), 13);
        let total_words = layout.words_used();
        assert_eq!(total_words, 2);
    }

    #[test]
    fn full_state_gets_own_word() {
        let counts = vec![0usize, 13];
        let layout = pack(&counts, 4096).unwrap();
        let full = layout.placement(1);
        assert_eq!(full.ty.code(), 15);
        // Root's word (0) cannot host the full state.
        assert_ne!(full.addr, 0);
    }

    #[test]
    fn no_overlapping_placements() {
        // Random-ish mix of widths; verify slot-exact non-overlap.
        let counts: Vec<usize> = (0..200).map(|i| (i * 7) % 14).collect();
        let layout = pack(&counts, 4096).unwrap();
        let mut used: std::collections::HashMap<u16, u16> = Default::default();
        for p in layout.placements() {
            let slots = p.ty.class().slots();
            let mask = ((1u16 << slots) - 1) << p.ty.start_slot();
            let w = used.entry(p.addr).or_insert(0);
            assert_eq!(*w & mask, 0, "overlap in word {}", p.addr);
            *w |= mask;
        }
    }

    #[test]
    fn fill_ratio_high_for_realistic_mix() {
        // 85% single, 12% small, 3% medium — the post-reduction census.
        let mut counts = vec![0usize];
        for i in 0..1000 {
            counts.push(match i % 100 {
                0..=84 => 1,
                85..=96 => 3,
                _ => 6,
            });
        }
        let layout = pack(&counts, 4096).unwrap();
        assert!(
            layout.fill_ratio() > 0.95,
            "fill ratio {}",
            layout.fill_ratio()
        );
    }

    #[test]
    fn too_wide_state_rejected() {
        let counts = vec![0usize, 14];
        assert_eq!(
            pack(&counts, 4096),
            Err(PackError::StateTooWide {
                state: 1,
                pointers: 14
            })
        );
    }

    #[test]
    fn word_budget_enforced() {
        let counts = vec![0usize; 19]; // needs 3 words (9+9+1)
        assert!(pack(&counts, 3).is_ok());
        assert_eq!(
            pack(&counts, 2),
            Err(PackError::AddressSpaceExceeded {
                needed: 3,
                available: 2
            })
        );
    }

    #[test]
    fn address_space_cap_is_4096() {
        let counts = vec![0usize; 9 * 4097];
        assert_eq!(
            pack(&counts, usize::MAX),
            Err(PackError::AddressSpaceExceeded {
                needed: 4097,
                available: 4096
            })
        );
    }

    #[test]
    fn census_counts_by_class() {
        let counts = vec![0usize, 1, 3, 6, 9, 13];
        let layout = pack(&counts, 4096).unwrap();
        assert_eq!(layout.class_census(), [2, 1, 1, 1, 1]);
    }

    #[test]
    fn errors_display() {
        let e = PackError::StateTooWide {
            state: 5,
            pointers: 20,
        };
        assert!(e.to_string().contains("20"));
        let e = PackError::AddressSpaceExceeded {
            needed: 5000,
            available: 4096,
        };
        assert!(e.to_string().contains("5000"));
    }
}
