//! Memory Initialization File (MIF) emission — the artifact a Quartus
//! flow consumes to preload block RAM.
//!
//! The paper's accelerator is configured by writing the packed state
//! machine, match-number memory and lookup tables into the FPGA's M9K
//! blocks at configuration time; this module serializes a built
//! [`HwImage`] into the standard Altera MIF text format, one file per
//! memory. A minimal parser is included so tests can round-trip the
//! output (and so users can diff images).

use crate::image::HwImage;
use crate::lut_mem::{LUT_ROWS, TARGET_SLOTS};
use crate::word::Word324;

/// Which of a block's four memories to serialize.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlockMemory {
    /// 324-bit state-machine words.
    StateMachine,
    /// 27-bit match-number words.
    MatchNumbers,
    /// 49-bit lookup-table compare rows.
    LutCompare,
    /// 16-bit default-target entries.
    LutTargets,
}

impl BlockMemory {
    /// All four memories.
    pub const ALL: [BlockMemory; 4] = [
        BlockMemory::StateMachine,
        BlockMemory::MatchNumbers,
        BlockMemory::LutCompare,
        BlockMemory::LutTargets,
    ];

    /// Data width in bits.
    pub fn width(self) -> usize {
        match self {
            BlockMemory::StateMachine => 324,
            BlockMemory::MatchNumbers => 27,
            BlockMemory::LutCompare => 49,
            BlockMemory::LutTargets => 16,
        }
    }
}

/// Serializes one memory of `image` as MIF text.
pub fn to_mif(image: &HwImage, memory: BlockMemory) -> String {
    let width = memory.width();
    let rows: Vec<String> = match memory {
        BlockMemory::StateMachine => (0..image.words_used())
            .map(|a| word_hex(image.word(a as u16)))
            .collect(),
        BlockMemory::MatchNumbers => (0..image.match_mem().words_used())
            .map(|a| format!("{:07X}", image.match_mem().word(a as u16)))
            .collect(),
        BlockMemory::LutCompare => (0..LUT_ROWS)
            .map(|c| format!("{:013X}", image.lut().compare_row(c as u8)))
            .collect(),
        BlockMemory::LutTargets => (0..LUT_ROWS)
            .flat_map(|c| {
                (0..TARGET_SLOTS).map(move |slot| (c as u8, slot))
            })
            .map(|(c, slot)| {
                let bits = image
                    .lut()
                    .target_entry(c, slot)
                    .map(|r| r.to_bits())
                    .unwrap_or(0);
                format!("{bits:04X}")
            })
            .collect(),
    };
    let mut out = String::new();
    out.push_str(&format!("DEPTH = {};\n", rows.len()));
    out.push_str(&format!("WIDTH = {width};\n"));
    out.push_str("ADDRESS_RADIX = HEX;\nDATA_RADIX = HEX;\nCONTENT BEGIN\n");
    for (addr, row) in rows.iter().enumerate() {
        out.push_str(&format!("{addr:04X} : {row};\n"));
    }
    out.push_str("END;\n");
    out
}

/// 81 hex digits (324 bits), most significant first.
fn word_hex(word: &Word324) -> String {
    // 324 bits = 81 nibbles.
    let mut nibbles = Vec::with_capacity(81);
    for i in 0..81 {
        let offset = i * 4;
        nibbles.push(word.bits(offset, 4.min(324 - offset)) as u8);
    }
    nibbles
        .iter()
        .rev()
        .map(|n| char::from_digit(*n as u32, 16).expect("nibble").to_ascii_uppercase())
        .collect()
}

/// A parsed MIF: `(width, rows as big-endian hex strings)`.
///
/// # Errors
///
/// Returns a message describing the first malformed line.
pub fn parse_mif(text: &str) -> Result<(usize, Vec<String>), String> {
    let mut width = None;
    let mut depth = None;
    let mut rows: Vec<(usize, String)> = Vec::new();
    let mut in_content = false;
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("WIDTH = ") {
            width = Some(
                rest.trim_end_matches(';')
                    .parse::<usize>()
                    .map_err(|e| format!("bad WIDTH: {e}"))?,
            );
        } else if let Some(rest) = line.strip_prefix("DEPTH = ") {
            depth = Some(
                rest.trim_end_matches(';')
                    .parse::<usize>()
                    .map_err(|e| format!("bad DEPTH: {e}"))?,
            );
        } else if line == "CONTENT BEGIN" {
            in_content = true;
        } else if line == "END;" {
            in_content = false;
        } else if in_content {
            let (addr, data) = line
                .split_once(" : ")
                .ok_or_else(|| format!("malformed content line {line:?}"))?;
            let addr = usize::from_str_radix(addr, 16).map_err(|e| format!("bad addr: {e}"))?;
            rows.push((addr, data.trim_end_matches(';').to_string()));
        }
    }
    let width = width.ok_or("missing WIDTH")?;
    let depth = depth.ok_or("missing DEPTH")?;
    if rows.len() != depth {
        return Err(format!("DEPTH = {depth} but {} rows present", rows.len()));
    }
    rows.sort_by_key(|&(a, _)| a);
    for (i, &(a, _)) in rows.iter().enumerate() {
        if a != i {
            return Err(format!("addresses not dense at {a}"));
        }
    }
    Ok((width, rows.into_iter().map(|(_, d)| d).collect()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpi_automaton::{Dfa, PatternSet};
    use dpi_core::{DtpConfig, ReducedAutomaton};

    fn image() -> HwImage {
        let set = PatternSet::new(["he", "she", "his", "hers"]).unwrap();
        let reduced = ReducedAutomaton::reduce(&Dfa::build(&set), DtpConfig::PAPER);
        HwImage::build(&reduced).unwrap()
    }

    #[test]
    fn all_memories_serialize_and_parse_back() {
        let image = image();
        for memory in BlockMemory::ALL {
            let text = to_mif(&image, memory);
            let (width, rows) = parse_mif(&text).unwrap_or_else(|e| panic!("{memory:?}: {e}"));
            assert_eq!(width, memory.width());
            assert!(!rows.is_empty(), "{memory:?}");
        }
    }

    #[test]
    fn state_words_roundtrip_bit_exactly() {
        let image = image();
        let text = to_mif(&image, BlockMemory::StateMachine);
        let (_, rows) = parse_mif(&text).unwrap();
        assert_eq!(rows.len(), image.words_used());
        for (addr, hex) in rows.iter().enumerate() {
            assert_eq!(hex.len(), 81, "81 nibbles for 324 bits");
            // Re-derive the hex from the word and compare.
            assert_eq!(hex, &word_hex(image.word(addr as u16)));
        }
    }

    #[test]
    fn lut_targets_depth_is_1536() {
        let image = image();
        let text = to_mif(&image, BlockMemory::LutTargets);
        let (_, rows) = parse_mif(&text).unwrap();
        assert_eq!(rows.len(), 1536);
    }

    #[test]
    fn compare_rows_fit_49_bits() {
        let image = image();
        let text = to_mif(&image, BlockMemory::LutCompare);
        let (_, rows) = parse_mif(&text).unwrap();
        assert_eq!(rows.len(), 256);
        for r in rows {
            let v = u64::from_str_radix(&r, 16).unwrap();
            assert!(v < 1u64 << 49);
        }
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_mif("WIDTH = x;").is_err());
        assert!(parse_mif("DEPTH = 1;\nWIDTH = 8;\nCONTENT BEGIN\nEND;").is_err());
        assert!(parse_mif("").is_err());
    }

    #[test]
    fn deterministic_output() {
        let a = to_mif(&image(), BlockMemory::StateMachine);
        let b = to_mif(&image(), BlockMemory::StateMachine);
        assert_eq!(a, b);
    }
}
