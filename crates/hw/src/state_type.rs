//! The 15 state types of Figure 3.
//!
//! A state's *type* encodes two things at once: how many transition
//! pointers it can hold (its size class) and where it sits inside the
//! 324-bit memory word. A transition pointer carries the 4-bit type of its
//! target, so a string matching engine knows exactly which bit range of the
//! fetched word to parse — no per-word directory is needed.
//!
//! | Types | Pointers | Width (bits) | Positions (bit offset)       |
//! |-------|----------|--------------|------------------------------|
//! | 1–9   | 0–1      | 36           | 0, 36, 72, …, 288 (slot 0–8) |
//! | 10–12 | 2–4      | 108          | 0, 108, 216                  |
//! | 13    | 5–7      | 180          | 0                            |
//! | 14    | 8–10     | 252          | 0                            |
//! | 15    | 11–13    | 324          | 0                            |
//!
//! Every width is `12 + 24·capacity` bits: a 12-bit match field plus one
//! 24-bit slot per pointer.

/// Size class of a state (how many pointers its encoding can hold).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum StateClass {
    /// 0–1 pointers, 36 bits, nine positions per word (types 1–9).
    Single,
    /// 2–4 pointers, 108 bits, three positions per word (types 10–12).
    Small,
    /// 5–7 pointers, 180 bits, position 0 only (type 13).
    Medium,
    /// 8–10 pointers, 252 bits, position 0 only (type 14).
    Large,
    /// 11–13 pointers, 324 bits, the full word (type 15).
    Full,
}

impl StateClass {
    /// All classes, largest first (the packer's processing order).
    pub const DESCENDING: [StateClass; 5] = [
        StateClass::Full,
        StateClass::Large,
        StateClass::Medium,
        StateClass::Small,
        StateClass::Single,
    ];

    /// The smallest class able to hold `pointers` transition pointers.
    ///
    /// Returns `None` when `pointers` exceeds 13 — the hardware limit the
    /// paper calls "adequate once the memory reduction techniques have been
    /// applied".
    pub fn for_pointers(pointers: usize) -> Option<StateClass> {
        match pointers {
            0..=1 => Some(StateClass::Single),
            2..=4 => Some(StateClass::Small),
            5..=7 => Some(StateClass::Medium),
            8..=10 => Some(StateClass::Large),
            11..=13 => Some(StateClass::Full),
            _ => None,
        }
    }

    /// Maximum pointers the class holds.
    pub fn capacity(self) -> usize {
        match self {
            StateClass::Single => 1,
            StateClass::Small => 4,
            StateClass::Medium => 7,
            StateClass::Large => 10,
            StateClass::Full => 13,
        }
    }

    /// Encoded width in bits (12-bit match field + 24 bits per pointer).
    pub fn width_bits(self) -> usize {
        12 + 24 * self.capacity()
    }

    /// Number of 36-bit slots the class occupies.
    pub fn slots(self) -> usize {
        match self {
            StateClass::Single => 1,
            StateClass::Small => 3,
            StateClass::Medium => 5,
            StateClass::Large => 7,
            StateClass::Full => 9,
        }
    }

    /// Word positions (as starting slot indices) this class may occupy.
    pub fn allowed_slots(self) -> &'static [usize] {
        match self {
            StateClass::Single => &[0, 1, 2, 3, 4, 5, 6, 7, 8],
            StateClass::Small => &[0, 3, 6],
            StateClass::Medium | StateClass::Large | StateClass::Full => &[0],
        }
    }

    /// The state type for this class at starting slot `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is not one of [`StateClass::allowed_slots`].
    pub fn type_at(self, slot: usize) -> StateType {
        assert!(
            self.allowed_slots().contains(&slot),
            "{self:?} cannot start at slot {slot}"
        );
        let t = match self {
            StateClass::Single => 1 + slot as u8,
            StateClass::Small => 10 + (slot / 3) as u8,
            StateClass::Medium => 13,
            StateClass::Large => 14,
            StateClass::Full => 15,
        };
        StateType::new(t).expect("constructed in range")
    }
}

/// One of the 15 state types (1..=15). Type 0 is reserved as the *invalid*
/// marker in transition-pointer and default-target encodings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StateType(u8);

impl StateType {
    /// Constructs a type from its 4-bit code.
    ///
    /// Returns `None` for 0 (invalid marker) and anything above 15.
    pub fn new(code: u8) -> Option<StateType> {
        if (1..=15).contains(&code) {
            Some(StateType(code))
        } else {
            None
        }
    }

    /// The 4-bit code (1..=15).
    pub fn code(self) -> u8 {
        self.0
    }

    /// This type's size class.
    pub fn class(self) -> StateClass {
        match self.0 {
            1..=9 => StateClass::Single,
            10..=12 => StateClass::Small,
            13 => StateClass::Medium,
            14 => StateClass::Large,
            _ => StateClass::Full,
        }
    }

    /// Bit offset of the state's encoding inside its memory word
    /// (Figure 3's "position").
    pub fn bit_offset(self) -> usize {
        match self.0 {
            t @ 1..=9 => (t as usize - 1) * 36,
            t @ 10..=12 => (t as usize - 10) * 108,
            _ => 0,
        }
    }

    /// Width of the state's encoding in bits (Figure 3's "size in bits").
    pub fn width_bits(self) -> usize {
        self.class().width_bits()
    }

    /// Pointer capacity.
    pub fn capacity(self) -> usize {
        self.class().capacity()
    }

    /// Starting 36-bit slot index.
    pub fn start_slot(self) -> usize {
        self.bit_offset() / 36
    }

    /// All fifteen types.
    pub fn all() -> impl Iterator<Item = StateType> {
        (1..=15u8).map(StateType)
    }
}

impl std::fmt::Display for StateType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "T{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure3_widths_and_positions() {
        // Types 1-9: 36 bits at positions 0,36,...,288.
        for t in 1..=9u8 {
            let ty = StateType::new(t).unwrap();
            assert_eq!(ty.width_bits(), 36);
            assert_eq!(ty.bit_offset(), (t as usize - 1) * 36);
            assert_eq!(ty.capacity(), 1);
        }
        // Types 10-12: 108 bits at 0, 108, 216.
        for (i, t) in (10..=12u8).enumerate() {
            let ty = StateType::new(t).unwrap();
            assert_eq!(ty.width_bits(), 108);
            assert_eq!(ty.bit_offset(), i * 108);
            assert_eq!(ty.capacity(), 4);
        }
        let t13 = StateType::new(13).unwrap();
        assert_eq!((t13.width_bits(), t13.bit_offset(), t13.capacity()), (180, 0, 7));
        let t14 = StateType::new(14).unwrap();
        assert_eq!((t14.width_bits(), t14.bit_offset(), t14.capacity()), (252, 0, 10));
        let t15 = StateType::new(15).unwrap();
        assert_eq!((t15.width_bits(), t15.bit_offset(), t15.capacity()), (324, 0, 13));
    }

    #[test]
    fn every_encoding_fits_in_the_word() {
        for ty in StateType::all() {
            assert!(ty.bit_offset() + ty.width_bits() <= crate::WORD_BITS);
        }
    }

    #[test]
    fn class_for_pointer_counts() {
        assert_eq!(StateClass::for_pointers(0), Some(StateClass::Single));
        assert_eq!(StateClass::for_pointers(1), Some(StateClass::Single));
        assert_eq!(StateClass::for_pointers(2), Some(StateClass::Small));
        assert_eq!(StateClass::for_pointers(4), Some(StateClass::Small));
        assert_eq!(StateClass::for_pointers(5), Some(StateClass::Medium));
        assert_eq!(StateClass::for_pointers(7), Some(StateClass::Medium));
        assert_eq!(StateClass::for_pointers(8), Some(StateClass::Large));
        assert_eq!(StateClass::for_pointers(10), Some(StateClass::Large));
        assert_eq!(StateClass::for_pointers(11), Some(StateClass::Full));
        assert_eq!(StateClass::for_pointers(13), Some(StateClass::Full));
        assert_eq!(StateClass::for_pointers(14), None);
    }

    #[test]
    fn width_is_match_field_plus_pointer_slots() {
        for class in StateClass::DESCENDING {
            assert_eq!(class.width_bits(), 12 + 24 * class.capacity());
            assert_eq!(class.slots() * 36, class.width_bits());
        }
    }

    #[test]
    fn type_at_maps_slots() {
        assert_eq!(StateClass::Single.type_at(0).code(), 1);
        assert_eq!(StateClass::Single.type_at(8).code(), 9);
        assert_eq!(StateClass::Small.type_at(0).code(), 10);
        assert_eq!(StateClass::Small.type_at(3).code(), 11);
        assert_eq!(StateClass::Small.type_at(6).code(), 12);
        assert_eq!(StateClass::Medium.type_at(0).code(), 13);
        assert_eq!(StateClass::Full.type_at(0).code(), 15);
    }

    #[test]
    #[should_panic(expected = "cannot start at slot")]
    fn misaligned_small_panics() {
        let _ = StateClass::Small.type_at(1);
    }

    #[test]
    fn zero_is_invalid_type() {
        assert!(StateType::new(0).is_none());
        assert!(StateType::new(16).is_none());
    }

    #[test]
    fn roundtrip_type_class_slot() {
        for ty in StateType::all() {
            let again = ty.class().type_at(ty.start_slot());
            assert_eq!(again, ty);
        }
    }
}
