//! Calibrated power model — regenerates Figures 7 and 8.
//!
//! The paper measured power with Quartus PowerPlay on post-place-and-route
//! simulations, sweeping the clock to trade throughput against power. CMOS
//! dynamic power is linear in clock frequency, so the sweep produces a
//! straight line per ruleset whose slope depends only on how many blocks
//! must cooperate per packet (the group size):
//!
//! `P(f) = P_static + α · f · blocks` and `T(f) = (blocks / g) · 16 · f`
//!
//! `α` is calibrated per device from the paper's reported maxima (2.78 W
//! for the Cyclone 3, 13.28 W for the Stratix 3, both at full clock with
//! every block active); `P_static` uses datasheet-typical leakage. The
//! substitution is recorded in DESIGN.md §2.

use crate::device::FpgaDevice;

/// One point of a Figure 7/8 curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerPoint {
    /// Memory clock (Hz) at this operating point.
    pub fmax_hz: f64,
    /// Total device power (W).
    pub power_w: f64,
    /// System throughput (bit/s) for the ruleset's group size.
    pub throughput_bps: f64,
}

/// The device power model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerModel {
    /// Leakage + always-on power (W).
    pub static_w: f64,
    /// Dynamic power per GHz of memory clock per active block (W).
    pub alpha_w_per_ghz_block: f64,
    /// Active string matching blocks.
    pub blocks: usize,
}

impl PowerModel {
    /// Model for a device's paper configuration.
    pub fn for_device(device: &FpgaDevice) -> PowerModel {
        PowerModel {
            static_w: device.static_power_w,
            alpha_w_per_ghz_block: device.dynamic_w_per_ghz_block,
            blocks: device.blocks,
        }
    }

    /// Power at memory clock `fmax_hz` with all blocks active.
    pub fn power_w(&self, fmax_hz: f64) -> f64 {
        self.static_w + self.alpha_w_per_ghz_block * (fmax_hz / 1e9) * self.blocks as f64
    }

    /// Sweeps the clock from near zero to `device_fmax_hz` in `steps`
    /// points, producing the Figure 7/8 curve for a ruleset needing
    /// `group_size` blocks per packet.
    ///
    /// # Panics
    ///
    /// Panics if `group_size` is zero or exceeds the block count, or if
    /// `steps` < 2.
    pub fn sweep(&self, device_fmax_hz: f64, group_size: usize, steps: usize) -> Vec<PowerPoint> {
        assert!(steps >= 2, "need at least two sweep points");
        assert!(
            (1..=self.blocks).contains(&group_size),
            "group size {group_size} out of range"
        );
        let groups = (self.blocks / group_size) as f64;
        (0..steps)
            .map(|i| {
                let f = device_fmax_hz * (i + 1) as f64 / steps as f64;
                PowerPoint {
                    fmax_hz: f,
                    power_w: self.power_w(f),
                    throughput_bps: groups * 16.0 * f,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cyclone_max_power_calibrated() {
        let d = FpgaDevice::cyclone3();
        let m = PowerModel::for_device(&d);
        let p = m.power_w(d.fmax_hz);
        assert!((p - 2.78).abs() < 0.02, "Cyclone max power {p}");
    }

    #[test]
    fn stratix_max_power_calibrated() {
        let d = FpgaDevice::stratix3();
        let m = PowerModel::for_device(&d);
        let p = m.power_w(d.fmax_hz);
        assert!((p - 13.28).abs() < 0.05, "Stratix max power {p}");
    }

    #[test]
    fn power_linear_in_frequency() {
        let d = FpgaDevice::stratix3();
        let m = PowerModel::for_device(&d);
        let p1 = m.power_w(100e6) - m.static_w;
        let p2 = m.power_w(200e6) - m.static_w;
        assert!((p2 / p1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn sweep_endpoint_hits_table2_throughput() {
        let d = FpgaDevice::stratix3();
        let m = PowerModel::for_device(&d);
        // Group size 1 (small ruleset): the last point is 44.2 Gbps.
        let curve = m.sweep(d.fmax_hz, 1, 20);
        let last = curve.last().unwrap();
        assert!((last.throughput_bps / 1e9 - 44.18).abs() < 0.05);
        assert!((last.power_w - 13.28).abs() < 0.05);
        // Group size 6 (6,275 strings): 7.36 Gbps at the same power.
        let curve = m.sweep(d.fmax_hz, 6, 20);
        let last = curve.last().unwrap();
        assert!((last.throughput_bps / 1e9 - 7.36).abs() < 0.05);
    }

    #[test]
    fn larger_rulesets_get_less_throughput_per_watt() {
        let d = FpgaDevice::cyclone3();
        let m = PowerModel::for_device(&d);
        let g1 = m.sweep(d.fmax_hz, 1, 10);
        let g4 = m.sweep(d.fmax_hz, 4, 10);
        for (a, b) in g1.iter().zip(&g4) {
            assert!((a.power_w - b.power_w).abs() < 1e-9, "same power axis");
            assert!(a.throughput_bps > b.throughput_bps);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_group_panics() {
        let d = FpgaDevice::cyclone3();
        PowerModel::for_device(&d).sweep(d.fmax_hz, 5, 10);
    }
}
