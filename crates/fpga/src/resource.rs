//! Block-RAM and logic occupancy model — regenerates Table I from first
//! principles.
//!
//! An Altera M9K block holds 9,216 bits and can be configured as
//! 256 × 36, 512 × 18 or 1024 × 9 (amongst others). Each string matching
//! block's memories map onto M9Ks as follows:
//!
//! | memory | geometry | M9K mapping |
//! |---|---|---|
//! | state machine | `words × 324` | 9 lanes of 36 bits, `⌈words/256⌉` banks per lane |
//! | match numbers | `2048 × 27` | 3 lanes of 9 bits, 2 banks per lane (1024 × 9 mode) |
//! | LUT compare | `256 × 49` | 2 lanes (36 + 13 bits) in 256 × 36 mode |
//! | LUT targets | `1536 × 16` | 3 banks in 512 × 18 mode |
//!
//! With the paper's depths this yields 137 M9K per Stratix 3 block
//! (126 + 6 + 2 + 3) × 6 = **822/864**, and 101 per Cyclone 3 block
//! (90 + 6 + 2 + 3) × 4 = **404/432** — exactly Table I's memory row.

use crate::device::FpgaDevice;

/// Bits per M9K block.
pub const M9K_BITS: usize = 9216;

/// Per-block M9K occupancy, by memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockM9k {
    /// State-machine memory banks.
    pub state: usize,
    /// Match-number memory banks.
    pub match_mem: usize,
    /// Lookup-table compare memory banks.
    pub lut_compare: usize,
    /// Default-target table banks.
    pub lut_target: usize,
}

impl BlockM9k {
    /// M9K blocks consumed by one string matching block with `words` of
    /// state memory.
    pub fn for_words(words: usize) -> BlockM9k {
        BlockM9k {
            // 324 bits = 9 lanes × 36 bits, each lane 256 words deep.
            state: 9 * words.div_ceil(256),
            // 27 bits = 3 lanes × 9 bits, each lane 1024 words deep,
            // 2048 deep total.
            match_mem: 3 * 2048usize.div_ceil(1024),
            // 49 bits = 36 + 13 → 2 lanes in 256 × 36 mode.
            lut_compare: 2,
            // 1536 × 16 in 512 × 18 mode → 3 banks.
            lut_target: 1536usize.div_ceil(512),
        }
    }

    /// Total M9K for the block.
    pub fn total(&self) -> usize {
        self.state + self.match_mem + self.lut_compare + self.lut_target
    }
}

/// A device-level resource report (one Table I row).
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceReport {
    /// Device name (Table I's "Device" column).
    pub device: String,
    /// Logic used / capacity.
    pub logic_used: usize,
    /// Logic capacity.
    pub logic_total: usize,
    /// M9K blocks used / total.
    pub m9k_used: usize,
    /// M9K capacity.
    pub m9k_total: usize,
    /// Memory clock (Hz).
    pub fmax_hz: f64,
}

impl ResourceReport {
    /// Computes the report for a device's paper configuration.
    pub fn for_device(device: &FpgaDevice) -> ResourceReport {
        let per_block = BlockM9k::for_words(device.words_per_block);
        ResourceReport {
            device: device.family.to_string(),
            logic_used: device.logic_per_block * device.blocks,
            logic_total: device.logic_capacity,
            m9k_used: per_block.total() * device.blocks,
            m9k_total: device.m9k_total,
            fmax_hz: device.fmax_hz,
        }
    }

    /// Formats like Table I: `"404/432"`.
    pub fn m9k_cell(&self) -> String {
        format!("{}/{}", self.m9k_used, self.m9k_total)
    }

    /// Formats like Table I: `"35,511/119,088"` (without separators).
    pub fn logic_cell(&self) -> String {
        format!("{}/{}", self.logic_used, self.logic_total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stratix3_block_is_137_m9k() {
        let b = BlockM9k::for_words(3584);
        assert_eq!(b.state, 126); // 9 × ⌈3584/256⌉ = 9 × 14
        assert_eq!(b.match_mem, 6);
        assert_eq!(b.lut_compare, 2);
        assert_eq!(b.lut_target, 3);
        assert_eq!(b.total(), 137);
    }

    #[test]
    fn cyclone3_block_is_101_m9k() {
        let b = BlockM9k::for_words(2560);
        assert_eq!(b.state, 90); // 9 × 10
        assert_eq!(b.total(), 101);
    }

    #[test]
    fn table1_memory_row_reproduced_exactly() {
        let s = ResourceReport::for_device(&crate::FpgaDevice::stratix3());
        assert_eq!(s.m9k_cell(), "822/864");
        let c = ResourceReport::for_device(&crate::FpgaDevice::cyclone3());
        assert_eq!(c.m9k_cell(), "404/432");
    }

    #[test]
    fn table1_logic_row_reproduced() {
        let s = ResourceReport::for_device(&crate::FpgaDevice::stratix3());
        assert_eq!(s.logic_used, 69_588); // calibrated: paper reports 69,585
        assert!(s.logic_used < s.logic_total);
        let c = ResourceReport::for_device(&crate::FpgaDevice::cyclone3());
        assert_eq!(c.logic_used, 35_512); // paper: 35,511
        assert!(c.logic_used < c.logic_total);
    }

    #[test]
    fn memory_fits_every_memory_in_m9k_bits() {
        // Sanity: lane mappings never exceed an M9K's 9,216 bits.
        // State lane: 256 × 36 = 9216. Match lane: 1024 × 9 = 9216.
        // Compare lane: 256 × 36. Target bank: 512 × 18 = 9216.
        assert_eq!(256 * 36, M9K_BITS);
        assert_eq!(1024 * 9, M9K_BITS);
        assert_eq!(512 * 18, M9K_BITS);
    }

    #[test]
    fn m144k_extension_doubles_state_banks() {
        let b = BlockM9k::for_words(7168);
        assert_eq!(b.state, 252);
    }
}
