//! Device models for the paper's two FPGAs (§V.B).
//!
//! Both are TSMC 65 nm parts: the low-power **Cyclone 3 EP3C120F484C7**
//! (1.2 V) and the high-performance **Stratix 3 EP3SE260H780C2** (1.1 V).
//! Capacities and clock rates come from Table I and the Altera datasheets;
//! the string-matching-block counts and per-block word depths are the
//! paper's chosen configurations.

/// FPGA family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// Altera Cyclone 3 (low power, 1.2 V).
    Cyclone3,
    /// Altera Stratix 3 (high performance, 1.1 V).
    Stratix3,
}

impl std::fmt::Display for Family {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Family::Cyclone3 => write!(f, "Cyclone 3"),
            Family::Stratix3 => write!(f, "Stratix 3"),
        }
    }
}

/// One FPGA device with the paper's accelerator configuration on it.
#[derive(Debug, Clone, PartialEq)]
pub struct FpgaDevice {
    /// Device family.
    pub family: Family,
    /// Part number.
    pub part: &'static str,
    /// Logic capacity (LEs for Cyclone, ALUTs for Stratix — Table I's
    /// denominators).
    pub logic_capacity: usize,
    /// M9K block RAM count.
    pub m9k_total: usize,
    /// M144K block RAM count (Stratix only; unused by the paper's design,
    /// which is why §V.D notes the memory could be doubled).
    pub m144k_total: usize,
    /// Core voltage.
    pub voltage: f64,
    /// Memory clock from Table I (f_max).
    pub fmax_hz: f64,
    /// String matching blocks instantiated.
    pub blocks: usize,
    /// State-machine words per block.
    pub words_per_block: usize,
    /// Calibrated logic cost per string matching block (engines,
    /// comparators, scheduler, muxing), fitted to Table I's usage row.
    pub logic_per_block: usize,
    /// Calibrated power-model constants (see `crate::power`).
    pub static_power_w: f64,
    /// Dynamic power per GHz of memory clock per active block.
    pub dynamic_w_per_ghz_block: f64,
}

impl FpgaDevice {
    /// The paper's Cyclone 3 configuration: 4 blocks × 2,560 words at
    /// 233.15 MHz.
    pub fn cyclone3() -> FpgaDevice {
        FpgaDevice {
            family: Family::Cyclone3,
            part: "EP3C120F484C7",
            logic_capacity: 119_088,
            m9k_total: 432,
            m144k_total: 0,
            voltage: 1.2,
            fmax_hz: 233.15e6,
            blocks: 4,
            words_per_block: 2560,
            logic_per_block: 8_878, // 35,511 / 4 (Table I)
            static_power_w: 0.12,
            // (2.78 - 0.12) W at 0.23315 GHz × 4 blocks.
            dynamic_w_per_ghz_block: 2.852,
        }
    }

    /// The paper's Stratix 3 configuration: 6 blocks × 3,584 words at
    /// 460.19 MHz.
    pub fn stratix3() -> FpgaDevice {
        FpgaDevice {
            family: Family::Stratix3,
            part: "EP3SE260H780C2",
            logic_capacity: 254_400,
            m9k_total: 864,
            m144k_total: 48,
            voltage: 1.1,
            fmax_hz: 460.19e6,
            blocks: 6,
            words_per_block: 3584,
            logic_per_block: 11_598, // 69,585 / 6 (Table I)
            static_power_w: 1.30,
            // (13.28 - 1.30) W at 0.46019 GHz × 6 blocks.
            dynamic_w_per_ghz_block: 4.338,
        }
    }

    /// The §V.D extension: also spend the M144K blocks, growing each
    /// block's state memory ("it is possible to double the memory
    /// available to the string matching blocks").
    ///
    /// Growth is capped at 4,096 words — the paper's own 24-bit transition
    /// pointer carries a 12-bit word address, so no amount of physical
    /// memory lets a block address more words without widening every
    /// pointer and the state types with them. The §V.D doubling projection
    /// silently assumes that redesign; this model does not (the `m144k`
    /// experiment quantifies the difference).
    ///
    /// # Panics
    ///
    /// Panics on devices without M144K blocks (the Cyclone 3).
    pub fn with_m144k(mut self) -> FpgaDevice {
        assert!(
            self.m144k_total > 0,
            "{} has no M144K blocks to spend",
            self.part
        );
        self.words_per_block = (self.words_per_block * 2).min(4096);
        self
    }

    /// Throughput of one string matching block at this device's clock:
    /// 16 × f_max bit/s.
    pub fn block_throughput_bps(&self) -> f64 {
        16.0 * self.fmax_hz
    }

    /// Peak device throughput with independent blocks.
    pub fn peak_throughput_bps(&self) -> f64 {
        self.blocks as f64 * self.block_throughput_bps()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configurations() {
        let c = FpgaDevice::cyclone3();
        assert_eq!(c.blocks, 4);
        assert_eq!(c.words_per_block, 2560);
        assert_eq!(c.m9k_total, 432);
        let s = FpgaDevice::stratix3();
        assert_eq!(s.blocks, 6);
        assert_eq!(s.words_per_block, 3584);
        assert_eq!(s.m9k_total, 864);
    }

    #[test]
    fn block_throughput_matches_table2_speeds() {
        // Stratix: 16 × 460.19 MHz = 7.363 Gbps per block; × 6 = 44.18
        // (Table II: 44.2). Cyclone: × 4 = 14.92 (Table II: 14.9).
        let s = FpgaDevice::stratix3();
        assert!((s.block_throughput_bps() / 1e9 - 7.363).abs() < 0.01);
        assert!((s.peak_throughput_bps() / 1e9 - 44.18).abs() < 0.05);
        let c = FpgaDevice::cyclone3();
        assert!((c.peak_throughput_bps() / 1e9 - 14.92).abs() < 0.05);
    }

    #[test]
    fn m144k_extension_grows_words_to_address_limit() {
        let s = FpgaDevice::stratix3().with_m144k();
        // 2 × 3584 = 7168 would exceed the 12-bit word address space.
        assert_eq!(s.words_per_block, 4096);
        let mut small = FpgaDevice::stratix3();
        small.words_per_block = 1024;
        assert_eq!(small.with_m144k().words_per_block, 2048);
    }

    #[test]
    #[should_panic(expected = "no M144K")]
    fn cyclone_has_no_m144k() {
        let _ = FpgaDevice::cyclone3().with_m144k();
    }

    #[test]
    fn family_display() {
        assert_eq!(Family::Cyclone3.to_string(), "Cyclone 3");
        assert_eq!(Family::Stratix3.to_string(), "Stratix 3");
    }
}
