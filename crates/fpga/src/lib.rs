//! # dpi-fpga
//!
//! FPGA-level models for the DATE 2010 accelerator: the two target devices
//! (§V.B), an M9K block-RAM occupancy model that regenerates Table I's
//! memory row *exactly* (822/864 and 404/432), a calibrated linear power
//! model for Figures 7–8, and the deployment planner that chooses how many
//! string matching blocks must cooperate per packet — the group size
//! behind every throughput figure in Table II.
//!
//! These models substitute for the paper's Quartus II synthesis and
//! PowerPlay measurements; the substitution rationale and calibration
//! points are documented in DESIGN.md §2.
//!
//! ## Quick example
//!
//! ```
//! use dpi_fpga::{FpgaDevice, ResourceReport};
//!
//! let stratix = FpgaDevice::stratix3();
//! let report = ResourceReport::for_device(&stratix);
//! assert_eq!(report.m9k_cell(), "822/864"); // Table I, memory row
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod asic;
mod device;
mod planner;
mod power;
mod resource;

pub use asic::{AsicModel, AsicReport};
pub use device::{Family, FpgaDevice};
pub use planner::{plan, plan_with_config, plan_with_options, BlockPlan, DeploymentPlan, PlanError, PlanOptions};
pub use power::{PowerModel, PowerPoint};
pub use resource::{BlockM9k, ResourceReport, M9K_BITS};
