//! Analytic deployment planner — the capacity reasoning behind Table II.
//!
//! Given a ruleset and a device, the planner finds the smallest group size
//! `g` (blocks cooperating per packet) such that each of the `g` per-block
//! images satisfies every hardware limit: state-memory words, the
//! 13-pointer state cap, the 2,048-word match memory and 13-bit string
//! numbers. It then reports exactly the quantities Table II prints per
//! ruleset: total states, default-pointer counts, running pointer
//! averages, reduction, memory bytes and system throughput.

use crate::device::FpgaDevice;
use dpi_automaton::PatternSet;
use dpi_core::{DtpConfig, SplitReductionReport};
use dpi_hw::{HwError, HwImage, ImageOptions, MemoryStats};

/// Planner knobs beyond the paper's defaults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanOptions {
    /// Default-transition configuration.
    pub dtp: DtpConfig,
    /// Share identical match lists (extension; see
    /// [`dpi_hw::MatchMemory::build_shared`]).
    pub shared_match_lists: bool,
}

impl Default for PlanOptions {
    fn default() -> Self {
        PlanOptions {
            dtp: DtpConfig::PAPER,
            shared_match_lists: false,
        }
    }
}

/// Everything known about one planned block.
#[derive(Debug, Clone)]
pub struct BlockPlan {
    /// The block's pattern subset size.
    pub patterns: usize,
    /// Memory accounting of the block's image.
    pub memory: MemoryStats,
    /// Packing fill ratio (the "no gaps" figure of merit).
    pub fill_ratio: f64,
}

/// A complete deployment plan for one ruleset on one device.
#[derive(Debug, Clone)]
pub struct DeploymentPlan {
    /// Blocks scanning each packet together.
    pub group_size: usize,
    /// Independent groups (device blocks ÷ group size).
    pub group_count: usize,
    /// Per-block details.
    pub blocks: Vec<BlockPlan>,
    /// Aggregate reduction statistics over the same split.
    pub reduction: SplitReductionReport,
    /// System throughput in bit/s: group_count × 16 × f_max.
    pub throughput_bps: f64,
    /// Total memory bytes across the `group_size` distinct images
    /// (Table II's "Mem.(bytes)").
    pub memory_bytes: usize,
}

/// Error: the ruleset cannot be deployed on the device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanError {
    /// The failure at the largest group size tried.
    pub last: HwError,
    /// Blocks available on the device.
    pub blocks: usize,
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ruleset does not fit the device even split across {} blocks: {}",
            self.blocks, self.last
        )
    }
}

impl std::error::Error for PlanError {}

/// Plans `set` onto `device` under the paper's DTP configuration.
///
/// # Errors
///
/// [`PlanError`] when no group size up to the device's block count fits.
pub fn plan(set: &PatternSet, device: &FpgaDevice) -> Result<DeploymentPlan, PlanError> {
    plan_with_config(set, device, DtpConfig::PAPER)
}

/// Plans with an explicit DTP configuration (used by ablations).
///
/// # Errors
///
/// See [`plan`].
pub fn plan_with_config(
    set: &PatternSet,
    device: &FpgaDevice,
    dtp: DtpConfig,
) -> Result<DeploymentPlan, PlanError> {
    plan_with_options(
        set,
        device,
        PlanOptions {
            dtp,
            ..PlanOptions::default()
        },
    )
}

/// Plans with full [`PlanOptions`] (DTP configuration + extensions).
///
/// # Errors
///
/// See [`plan`].
pub fn plan_with_options(
    set: &PatternSet,
    device: &FpgaDevice,
    options: PlanOptions,
) -> Result<DeploymentPlan, PlanError> {
    let dtp = options.dtp;
    let mut last: Option<HwError> = None;
    for g in 1..=device.blocks {
        if g > set.len() {
            break;
        }
        // Prefer the prefix-grouped split (minimal duplicated shallow
        // states, hence the paper's low d1 counts); fall back to the
        // round-robin split, which spreads a wide state's children across
        // blocks when prefix grouping trips the 13-pointer cap.
        let splits: [Vec<PatternSet>; 2] = if g == 1 {
            [vec![set.clone()], vec![set.clone()]]
        } else {
            [
                set.split_by_prefix(g).into_iter().map(|(s, _)| s).collect(),
                set.split(g).into_iter().map(|(s, _)| s).collect(),
            ]
        };
        for parts in &splits {
            match try_parts(parts, device, options) {
                Ok(blocks) => {
                    let reduction = SplitReductionReport::compute_parts(parts, dtp);
                    let group_count = device.blocks / g;
                    let memory_bytes = blocks.iter().map(|b| b.memory.total_bytes()).sum();
                    return Ok(DeploymentPlan {
                        group_size: g,
                        group_count,
                        blocks,
                        reduction,
                        throughput_bps: group_count as f64 * 16.0 * device.fmax_hz,
                        memory_bytes,
                    });
                }
                Err(e) => last = Some(e),
            }
            if g == 1 {
                break; // both splits identical
            }
        }
    }
    Err(PlanError {
        last: last.expect("tried at least one group size"),
        blocks: device.blocks,
    })
}

fn try_parts(
    parts: &[PatternSet],
    device: &FpgaDevice,
    options: PlanOptions,
) -> Result<Vec<BlockPlan>, HwError> {
    let mut blocks = Vec::with_capacity(parts.len());
    for sub in parts {
        let dfa = dpi_automaton::Dfa::build(sub);
        let reduced = dpi_core::ReducedAutomaton::reduce(&dfa, options.dtp);
        let image = HwImage::build_with_options(
            &reduced,
            ImageOptions {
                max_words: device.words_per_block,
                shared_match_lists: options.shared_match_lists,
            },
        )?;
        blocks.push(BlockPlan {
            patterns: sub.len(),
            memory: image.stats(),
            fill_ratio: image.layout().fill_ratio(),
        });
    }
    Ok(blocks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_ruleset_plans_group_of_one() {
        let set = PatternSet::new(["he", "she", "his", "hers"]).unwrap();
        let device = FpgaDevice::stratix3();
        let p = plan(&set, &device).unwrap();
        assert_eq!(p.group_size, 1);
        assert_eq!(p.group_count, 6);
        assert!((p.throughput_bps / 1e9 - 44.18).abs() < 0.05);
        assert_eq!(p.blocks.len(), 1);
        assert!(p.memory_bytes > 0);
    }

    #[test]
    fn throughput_divides_by_group_size() {
        // A ruleset big enough to force splitting on a shrunken device.
        let strings: Vec<String> = (0..800)
            .map(|i| format!("{}{:06}tail", (b'a' + (i % 23) as u8) as char, i))
            .collect();
        let set = PatternSet::new(&strings).unwrap();
        let mut device = FpgaDevice::stratix3();
        device.words_per_block = 320;
        let p = plan(&set, &device).unwrap();
        assert!(p.group_size >= 2, "group size {}", p.group_size);
        let expect = (device.blocks / p.group_size) as f64 * 16.0 * device.fmax_hz;
        assert!((p.throughput_bps - expect).abs() < 1.0);
    }

    #[test]
    fn plan_error_when_device_too_small() {
        let strings: Vec<String> = (0..2000)
            .map(|i| format!("{}{:08}", (b'a' + (i % 26) as u8) as char, i))
            .collect();
        let set = PatternSet::new(&strings).unwrap();
        let mut device = FpgaDevice::cyclone3();
        device.words_per_block = 64;
        let err = plan(&set, &device).unwrap_err();
        assert!(err.to_string().contains("does not fit"));
    }

    #[test]
    fn reduction_stats_cover_same_split() {
        let strings: Vec<String> = (0..200)
            .map(|i| format!("{}x{:05}", (b'a' + (i % 11) as u8) as char, i))
            .collect();
        let set = PatternSet::new(&strings).unwrap();
        let device = FpgaDevice::cyclone3();
        let p = plan(&set, &device).unwrap();
        assert_eq!(p.reduction.blocks, p.group_size);
        let total_patterns: usize = p.blocks.iter().map(|b| b.patterns).sum();
        assert_eq!(total_patterns, 200);
    }

    #[test]
    fn m144k_extension_reduces_group_size() {
        // A set that needs g=2 normally should fit g=1 with doubled words.
        let strings: Vec<String> = (0..900)
            .map(|i| format!("{}{:07}suffix", (b'a' + (i % 19) as u8) as char, i))
            .collect();
        let set = PatternSet::new(&strings).unwrap();
        let mut device = FpgaDevice::stratix3();
        device.words_per_block = 1024;
        let base = plan(&set, &device).unwrap();
        let extended_device = FpgaDevice {
            words_per_block: device.words_per_block * 2,
            ..device
        };
        let extended = plan(&set, &extended_device).unwrap();
        assert!(
            extended.group_size <= base.group_size,
            "extended {} vs base {}",
            extended.group_size,
            base.group_size
        );
    }
}
