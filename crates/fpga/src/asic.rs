//! ASIC projection — the paper's stated future work ("we will extend our
//! architecture to more types of platforms such as ASIC", §VI).
//!
//! A first-order 65 nm standard-cell/SRAM model, enough to compare the
//! architecture against the Tuck et al. baselines on their home turf
//! (Table III lists them as ASIC designs):
//!
//! - **area** — SRAM macro density plus a per-block logic allowance;
//! - **clock** — compiled SRAM macros at 65 nm comfortably reach
//!   ~2× the Stratix 3's block-RAM f_max;
//! - **throughput** — same architecture, so still 16 × f per block;
//! - **power** — dynamic energy per memory access scaled from the
//!   calibrated FPGA model by a configurable ASIC efficiency factor
//!   (literature range ≈ 5–15× for 65 nm; default 8×).
//!
//! Every constant is a named, documented knob: this is a projection, not
//! a measurement, and is labelled as such in `repro`'s output.

use crate::device::FpgaDevice;
use crate::power::PowerModel;

/// First-order ASIC technology model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AsicModel {
    /// Process node, for display (the paper's devices are 65 nm TSMC).
    pub process_nm: u32,
    /// SRAM density in mm² per megabit (65 nm compiled macros ≈ 0.5–0.7).
    pub sram_mm2_per_mbit: f64,
    /// Logic area per string matching block, mm² (6 engines, comparators,
    /// scheduler; ≈ 120k gates at ~0.52 µm²/gate with overhead).
    pub logic_mm2_per_block: f64,
    /// Achievable memory clock (Hz).
    pub fmax_hz: f64,
    /// Dynamic-power advantage over the calibrated FPGA model (×).
    pub efficiency_over_fpga: f64,
}

impl AsicModel {
    /// Default 65 nm projection.
    pub fn tsmc65() -> AsicModel {
        AsicModel {
            process_nm: 65,
            sram_mm2_per_mbit: 0.6,
            logic_mm2_per_block: 0.35,
            fmax_hz: 900e6,
            efficiency_over_fpga: 8.0,
        }
    }

    /// Area of `blocks` string matching blocks holding `bits_per_block`
    /// memory bits each.
    pub fn area_mm2(&self, blocks: usize, bits_per_block: usize) -> f64 {
        let sram = blocks as f64 * bits_per_block as f64 / 1e6 * self.sram_mm2_per_mbit;
        sram + blocks as f64 * self.logic_mm2_per_block
    }

    /// Peak throughput of `blocks` independent blocks (bit/s): the
    /// architecture's 16 bits per memory cycle, at the ASIC clock.
    pub fn peak_throughput_bps(&self, blocks: usize) -> f64 {
        blocks as f64 * 16.0 * self.fmax_hz
    }

    /// Projected power (W) with all `blocks` active, derived from the
    /// calibrated FPGA dynamic coefficient of `reference` scaled by the
    /// efficiency factor (static power of a dedicated die is taken as
    /// one tenth of the FPGA's).
    pub fn power_w(&self, reference: &FpgaDevice, blocks: usize) -> f64 {
        let fpga = PowerModel::for_device(reference);
        let dynamic =
            fpga.alpha_w_per_ghz_block / self.efficiency_over_fpga * (self.fmax_hz / 1e9);
        fpga.static_w / 10.0 + dynamic * blocks as f64
    }
}

/// One row of the ASIC comparison (`repro asic`).
#[derive(Debug, Clone, PartialEq)]
pub struct AsicReport {
    /// Design label.
    pub design: String,
    /// Total memory bits.
    pub memory_bits: usize,
    /// Die area, mm².
    pub area_mm2: f64,
    /// Peak throughput, bit/s.
    pub throughput_bps: f64,
}

impl AsicReport {
    /// Projects this architecture (blocks of `bits_per_block` bits) onto
    /// `model`.
    pub fn project(
        design: &str,
        model: &AsicModel,
        blocks: usize,
        bits_per_block: usize,
    ) -> AsicReport {
        AsicReport {
            design: design.to_string(),
            memory_bits: blocks * bits_per_block,
            area_mm2: model.area_mm2(blocks, bits_per_block),
            throughput_bps: model.peak_throughput_bps(blocks),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_scales_linearly_with_memory() {
        let m = AsicModel::tsmc65();
        let a1 = m.area_mm2(1, 1_000_000);
        let a2 = m.area_mm2(1, 2_000_000);
        assert!((a2 - a1 - m.sram_mm2_per_mbit).abs() < 1e-9);
    }

    #[test]
    fn asic_clock_beats_fpga() {
        let m = AsicModel::tsmc65();
        assert!(m.fmax_hz > FpgaDevice::stratix3().fmax_hz);
        // Per-block throughput ≈ 14.4 Gbps at 900 MHz.
        assert!((m.peak_throughput_bps(1) / 1e9 - 14.4).abs() < 0.01);
    }

    #[test]
    fn power_projection_below_fpga() {
        let m = AsicModel::tsmc65();
        let stratix = FpgaDevice::stratix3();
        let fpga_w = PowerModel::for_device(&stratix).power_w(stratix.fmax_hz);
        let asic_w = m.power_w(&stratix, stratix.blocks);
        assert!(
            asic_w < fpga_w,
            "ASIC {asic_w} W should undercut FPGA {fpga_w} W despite the higher clock"
        );
    }

    #[test]
    fn report_projection() {
        let m = AsicModel::tsmc65();
        let r = AsicReport::project("ours", &m, 6, 1_200_000);
        assert_eq!(r.memory_bits, 7_200_000);
        assert!(r.area_mm2 > 4.0 && r.area_mm2 < 7.0, "{}", r.area_mm2);
        assert!((r.throughput_bps / 1e9 - 86.4).abs() < 0.1);
    }
}
